module smoke

go 1.24
