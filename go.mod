module smoke

go 1.23
