package smoke_test

import (
	"fmt"

	"smoke"
)

// Example demonstrates lineage capture and a backward query end-to-end.
func Example() {
	rel := smoke.NewEmpty("orders", smoke.Schema{
		{Name: "customer", Type: smoke.TString},
		{Name: "total", Type: smoke.TFloat},
	})
	rel.AppendRow("ada", 10.0)
	rel.AppendRow("bob", 20.0)
	rel.AppendRow("ada", 5.0)

	db := smoke.Open()
	db.Register(rel)

	res, _ := db.Query().
		From("orders", nil).
		GroupBy("customer").
		Agg(smoke.Sum, smoke.C("total"), "spend").
		Run(smoke.CaptureOptions{Mode: smoke.Inject})

	rids, _ := res.Backward("orders", []smoke.Rid{0})
	fmt.Printf("%s spent %.0f across rows %v\n", res.Out.Str(0, 0), res.Out.Float(1, 0), rids)
	// Output: ada spent 15 across rows [0 2]
}

// ExampleResult_ConsumeGroupBy shows a lineage-consuming query: drilling
// into one output group's lineage with a new grouping.
func ExampleResult_ConsumeGroupBy() {
	rel := smoke.NewEmpty("events", smoke.Schema{
		{Name: "region", Type: smoke.TString},
		{Name: "kind", Type: smoke.TString},
	})
	for _, row := range [][2]string{
		{"east", "click"}, {"east", "view"}, {"west", "click"}, {"east", "click"},
	} {
		rel.AppendRow(row[0], row[1])
	}
	db := smoke.Open()
	db.Register(rel)
	base, _ := db.Query().From("events", nil).
		GroupBy("region").Agg(smoke.Count, nil, "n").
		Run(smoke.CaptureOptions{Mode: smoke.Inject})

	east, _ := base.Backward("events", []smoke.Rid{0})
	drill, _ := base.ConsumeGroupBy(east, smoke.GroupBySpec{
		Keys: []string{"kind"},
		Aggs: []smoke.AggSpec{{Fn: smoke.Count, Name: "n"}},
	}, smoke.CaptureOptions{})

	for i := 0; i < drill.Out.N; i++ {
		fmt.Printf("%s=%d\n", drill.Out.Str(0, i), drill.Out.Int(1, i))
	}
	// Output:
	// click=2
	// view=1
}
