// Package smoke is a Go reproduction of "Smoke: Fine-grained Lineage at
// Interactive Speed" (Psallidas & Wu, VLDB 2018): an in-memory, hash-based
// query engine that captures record-level (rid-to-rid) lineage inside its
// physical operators with low overhead and answers backward/forward lineage
// queries — and lineage-consuming queries — at interactive speed.
//
// Execution is morsel-parallel: opening with smoke.WithWorkers(n) splits
// every scan into contiguous row-range partitions executed over a shared
// worker pool, with partition-local lineage capture merged in partition
// order — the paper's tight-integration principle (P1) holds per partition,
// and the merged lineage is identical to a serial run (float aggregates can
// differ in the final ulp from partial-sum order; nothing else does). The
// workers=1 default is the serial specialization the paper describes (and
// the one its experiments reproduce); a DB is safe for concurrent
// Query().Run() calls either way.
//
// Captured indexes can be stored compressed: CaptureOptions{Compress: true}
// encodes every finished rid list adaptively (raw rids, delta+varint,
// run-length, or bitmap — whichever is smallest per list) after capture, and
// Backward/Forward and lineage-consuming queries read the encoded indexes in
// place, element-identically to raw capture. Dense capture shapes (range
// scans, clustered groups) shrink by an order of magnitude; adversarial
// shapes are bounded at raw cost. See DESIGN.md "Compressed lineage
// representations".
//
// Queries — from this builder API or the SQL front end (internal/sql,
// cmd/smokecli) — lower onto one logical plan layer (internal/plan), where
// an optimizer pushes predicates into scans, prunes join materialization,
// detects pk-fk joins, and fuses SPJA blocks onto the single-pass fused
// capture executor; multi-block shapes (aggregates over joins over grouped
// subqueries, HAVING, ORDER BY, LIMIT, unions) run their residue on a
// composing generic runner with the same parallelism and compression, and
// with end-to-end lineage composed across blocks. See DESIGN.md "Plan layer
// & optimizer".
//
// Lineage consumption is a plan citizen too: Query.Backward/Forward (and
// the SQL LINEAGE BACKWARD/FORWARD clause) start a query from a trace of a
// prior result's captured indexes, re-aggregating the traced rows through
// the same optimizer (consuming predicates push through the trace;
// key-predicate seeds may rewrite to scan-and-filter by selectivity) and
// the same morsel-parallel kernels — duplicate rid sets included, via the
// duplicate-tolerant aggregation. Result.ConsumeGroupBy is the direct
// rid-set form of the same operation and shares those kernels. See
// DESIGN.md "Lineage-consuming queries".
//
// The engine also runs as a network service: cmd/smoked serves ingest, SQL,
// and session-scoped bound traces over HTTP (internal/server), so clients
// capture once and trace per interaction across requests — see
// docs/http-api.md.
//
// The root package re-exports the engine facade (internal/core), the storage
// and expression substrates, and the capture knobs, so in-process
// applications program against one import:
//
//	db := smoke.Open(smoke.WithWorkers(4))
//	defer db.Close() // releases the worker pool
//	db.Register(rel)
//	res, err := db.Query().
//	    From("lineitem", smoke.LtE(smoke.C("l_shipdate"), smoke.I(cutoff))).
//	    GroupBy("l_returnflag", "l_linestatus").
//	    Agg(smoke.Sum, smoke.C("l_quantity"), "sum_qty").
//	    Run(smoke.CaptureOptions{Mode: smoke.Inject})
//	rids, err := res.Backward("lineitem", []smoke.Rid{0})
//
// See DESIGN.md for the documentation index (docs/architecture.md has the
// full system map) and docs/benchmarks.md for the measured record.
package smoke

import (
	"smoke/internal/core"
	"smoke/internal/cube"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// Engine facade.
type (
	// DB is an in-memory database instance.
	DB = core.DB
	// Query builds an SPJA block.
	Query = core.Query
	// Result is an executed base query with its captured lineage.
	Result = core.Result
	// CaptureOptions selects instrumentation and workload-aware optimizations.
	CaptureOptions = core.CaptureOptions
	// Rid is a record id within a relation.
	Rid = lineage.Rid
	// Option configures a DB at Open time.
	Option = core.Option
)

// Open returns an empty database. Parallel databases (WithWorkers(n > 1))
// own worker goroutines once a parallel query has run; call db.Close when
// done with a DB you will abandon.
func Open(opts ...Option) *DB { return core.Open(opts...) }

// Trace strategy and the unified seed API (see internal/core/strategy.go):
// CaptureOptions.Strategy selects eager index capture, lazy re-execution,
// a hybrid, or a cost-based automatic choice; Query.Trace / Result.Trace
// take a direction plus a Seed in place of the four legacy constructors.
type (
	// Strategy selects how a query's result provides lineage.
	Strategy = core.Strategy
	// Seed is a unified trace seed: Rids(...), Where(pred), or the zero
	// value for everything.
	Seed = core.Seed
	// TraceDir is a lineage direction (TraceBackward/TraceForward).
	TraceDir = core.TraceDir
)

// Capture strategies.
const (
	// StrategyDefault lets Mode decide (capturing Mode → eager; None → lazy).
	StrategyDefault = core.StrategyDefault
	// StrategyEager captures lineage indexes during execution.
	StrategyEager = core.StrategyEager
	// StrategyLazy captures nothing; traces re-execute the stored plan.
	StrategyLazy = core.StrategyLazy
	// StrategyHybrid captures backward eagerly, answers forward lazily.
	StrategyHybrid = core.StrategyHybrid
	// StrategyAuto chooses per query from plan shape and trace rate.
	StrategyAuto = core.StrategyAuto
)

// Trace directions.
const (
	// TraceBackward asks which base rows produced the seeded output rows.
	TraceBackward = core.TraceBackward
	// TraceForward asks which output rows depend on the seeded base rows.
	TraceForward = core.TraceForward
)

// Rids seeds a trace with an explicit rid set (Rids() with no arguments is
// an explicit empty seed set; the zero Seed traces everything).
func Rids(rids ...Rid) Seed { return core.Rids(rids...) }

// Where seeds a trace with a predicate over the seed relation's rows.
func Where(pred Expr) Seed { return core.Where(pred) }

// ParseStrategy maps a wire spelling ("eager", "lazy", "hybrid", "auto",
// "") to a Strategy; unknown spellings are a structured Invalid error.
func ParseStrategy(s string) (Strategy, error) { return core.ParseStrategy(s) }

// WithWorkers sets the DB's default intra-query parallelism: n > 1 runs the
// morsel-parallel kernels over a shared worker pool; n <= 1 keeps the serial
// specialization. CaptureOptions.Parallelism overrides it per query.
func WithWorkers(n int) Option { return core.WithWorkers(n) }

// Storage substrate.
type (
	// Relation is an in-memory table addressed by rid.
	Relation = storage.Relation
	// Schema is an ordered list of fields.
	Schema = storage.Schema
	// Field is a named, typed attribute.
	Field = storage.Field
	// Type identifies a column type.
	Type = storage.Type
)

// Column types.
const (
	TInt    = storage.TInt
	TFloat  = storage.TFloat
	TString = storage.TString
)

// NewRelation allocates a relation with n zero-valued rows.
func NewRelation(name string, schema Schema, n int) *Relation {
	return storage.NewRelation(name, schema, n)
}

// NewEmpty allocates an empty relation for AppendRow-style construction.
func NewEmpty(name string, schema Schema) *Relation { return storage.NewEmpty(name, schema) }

// Capture modes (§3.2): Baseline / Inject / Defer.
const (
	// NoCapture runs the base query without lineage capture.
	NoCapture = ops.None
	// Inject captures lineage inside operator execution.
	Inject = ops.Inject
	// Defer postpones index construction until after execution.
	Defer = ops.Defer
)

// CaptureMode selects the instrumentation paradigm.
type CaptureMode = ops.CaptureMode

// Directions selects which lineage directions to capture.
type Directions = ops.Directions

// Direction values; pruning the unused one is the §4.1 optimization.
const (
	CaptureBackward = ops.CaptureBackward
	CaptureForward  = ops.CaptureForward
	CaptureBoth     = ops.CaptureBoth
)

// Aggregation functions.
type AggFn = ops.AggFn

// Supported aggregates (algebraic and distributive, plus COUNT DISTINCT for
// profiling workloads).
const (
	Count         = ops.Count
	Sum           = ops.Sum
	Avg           = ops.Avg
	Min           = ops.Min
	Max           = ops.Max
	CountDistinct = ops.CountDistinct
)

// GroupBySpec describes a hash aggregation for consuming queries.
type GroupBySpec = ops.GroupBySpec

// AggSpec is one aggregate in a GroupBySpec.
type AggSpec = ops.AggSpec

// Expression language.
type (
	// Expr is an expression tree node.
	Expr = expr.Expr
	// Params binds named parameters at compile time.
	Params = expr.Params
)

// Expression constructors (see internal/expr for the full AST).
var (
	// C references a column.
	C = expr.C
	// I is an integer literal.
	I = expr.I
	// F is a float literal.
	F = expr.F
	// S is a string literal.
	S = expr.S
	// P is a named parameter (:name).
	P = expr.P
	// EqE, LtE, LeE, GtE, GeE build comparisons.
	EqE = expr.EqE
	LtE = expr.LtE
	LeE = expr.LeE
	GtE = expr.GtE
	GeE = expr.GeE
	// AndE conjoins expressions; MulE/SubE/AddE build arithmetic.
	AndE = expr.AndE
	MulE = expr.MulE
	SubE = expr.SubE
	AddE = expr.AddE
)

// Group-by push-down (partial data cubes, §4.2).
type (
	// CubeSpec declares drill-down dimensions and per-cell aggregates.
	CubeSpec = cube.Spec
	// CubeAgg is one materialized aggregate per cube cell.
	CubeAgg = cube.AggDef
	// Cube is the materialized result, queryable per output group.
	Cube = cube.Cube
)
