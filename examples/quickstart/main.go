// Quickstart: load a table, run an aggregation with lineage capture, and
// trace backward and forward between inputs and outputs.
package main

import (
	"fmt"
	"log"

	"smoke"
)

func main() {
	// A small sales table.
	rel := smoke.NewEmpty("sales", smoke.Schema{
		{Name: "region", Type: smoke.TString},
		{Name: "product", Type: smoke.TString},
		{Name: "amount", Type: smoke.TFloat},
	})
	rows := []struct {
		region, product string
		amount          float64
	}{
		{"east", "widget", 120}, {"east", "gadget", 80}, {"west", "widget", 200},
		{"west", "widget", 40}, {"east", "widget", 60}, {"west", "gadget", 90},
	}
	for _, r := range rows {
		rel.AppendRow(r.region, r.product, r.amount)
	}

	db := smoke.Open()
	db.Register(rel)

	// Base query with Inject capture: revenue per region.
	res, err := db.Query().
		From("sales", nil).
		GroupBy("region").
		Agg(smoke.Sum, smoke.C("amount"), "revenue").
		Agg(smoke.Count, nil, "orders").
		Run(smoke.CaptureOptions{Mode: smoke.Inject})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("revenue per region:")
	for o := 0; o < res.Out.N; o++ {
		fmt.Printf("  %-6s revenue=%6.0f orders=%d\n",
			res.Out.Str(0, o), res.Out.Float(1, o), res.Out.Int(2, o))
	}

	// Backward lineage: which input rows produced the first output group?
	back, err := res.Backward("sales", []smoke.Rid{0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbackward lineage of %q:\n", res.Out.Str(0, 0))
	for _, rid := range back {
		fmt.Printf("  row %d: %s/%s amount=%.0f\n",
			rid, rel.Str(0, int(rid)), rel.Str(1, int(rid)), rel.Float(2, int(rid)))
	}

	// Forward lineage: which output does input row 2 feed?
	fwd, err := res.Forward("sales", []smoke.Rid{2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrow 2 (%s/%s) contributes to group %q\n",
		rel.Str(0, 2), rel.Str(1, 2), res.Out.Str(0, int(fwd[0])))

	// Lineage-consuming query: re-aggregate the first group's lineage by
	// product (the drill-down pattern of the paper's §6.4).
	drill, err := res.ConsumeGroupBy(back, smoke.GroupBySpec{
		Keys: []string{"product"},
		Aggs: []smoke.AggSpec{{Fn: smoke.Sum, Arg: smoke.C("amount"), Name: "revenue"}},
	}, smoke.CaptureOptions{Mode: smoke.NoCapture})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndrill-down of %q by product:\n", res.Out.Str(0, 0))
	for o := 0; o < drill.Out.N; o++ {
		fmt.Printf("  %-7s revenue=%6.0f\n", drill.Out.Str(0, o), drill.Out.Float(1, o))
	}
}
