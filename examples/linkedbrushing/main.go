// Linked brushing (Figure 1 of the paper): two visualization views derive
// from queries sharing a base table X. Selecting marks in view V1 is
// expressed as a backward lineage query to X followed by a forward lineage
// query into V2 — no hand-written brushing logic.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"smoke"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// X: shared fact table of product sales events.
	x := smoke.NewEmpty("X", smoke.Schema{
		{Name: "product_id", Type: smoke.TInt},
		{Name: "price", Type: smoke.TFloat},
		{Name: "cost", Type: smoke.TFloat},
	})
	nProducts := 8
	for i := 0; i < 400; i++ {
		p := rng.Intn(nProducts) + 1
		price := 10 + rng.Float64()*90
		x.AppendRow(p, price, price*(0.4+rng.Float64()*0.3))
	}
	// Y: product dimension (names), used by V1.
	y := smoke.NewEmpty("Y", smoke.Schema{
		{Name: "pid", Type: smoke.TInt},
		{Name: "name", Type: smoke.TString},
	})
	for p := 1; p <= nProducts; p++ {
		y.AppendRow(p, fmt.Sprintf("product-%d", p))
	}

	db := smoke.Open()
	db.Register(x)
	db.Register(y)

	// V1: profit per product (a scatter plot: one circle per product),
	// computed over Y ⋈ X.
	v1, err := db.Query().
		From("Y", nil).
		Join("X", nil, "Y", "pid", "product_id").
		GroupBy("name").
		Agg(smoke.Sum, smoke.SubE(smoke.C("price"), smoke.C("cost")), "profit").
		Run(smoke.CaptureOptions{Mode: smoke.Inject, Dirs: smoke.CaptureBackward})
	if err != nil {
		log.Fatal(err)
	}

	// V2: revenue per price band (a bar chart), computed over X alone.
	// Price bands are discretized into $20 buckets at load time would be
	// usual; here a derived predicate keeps the example compact.
	v2, err := db.Query().
		From("X", nil).
		GroupBy("product_id").
		Agg(smoke.Sum, smoke.C("price"), "revenue").
		Run(smoke.CaptureOptions{Mode: smoke.Inject, Dirs: smoke.CaptureForward})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("V1 (profit per product):")
	for o := 0; o < v1.Out.N; o++ {
		fmt.Printf("  %-10s profit=%8.1f\n", v1.Out.Str(0, o), v1.Out.Float(1, o))
	}

	// The user brushes two circles in V1.
	brushed := []smoke.Rid{0, 2}
	fmt.Printf("\nbrushing V1 marks: %s, %s\n", v1.Out.Str(0, 0), v1.Out.Str(0, 2))

	// backward_trace(V1' ⊆ V1, X): base records behind the brushed circles.
	xRids, err := v1.BackwardDistinct("X", brushed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backward trace reaches %d records of X\n", len(xRids))

	// forward_trace(X' ⊆ X, V2): bars in V2 to highlight.
	bars, err := v2.ForwardDistinct("X", xRids)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nV2 (revenue per product), highlighted bars marked *:")
	hl := map[smoke.Rid]bool{}
	for _, b := range bars {
		hl[b] = true
	}
	for o := 0; o < v2.Out.N; o++ {
		mark := " "
		if hl[smoke.Rid(o)] {
			mark = "*"
		}
		fmt.Printf("  %s product %d revenue=%8.1f\n", mark, v2.Out.Int(0, o), v2.Out.Float(1, o))
	}
}
