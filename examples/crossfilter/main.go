// Crossfilter (§6.5.1): four group-by views over flight records; brushing a
// bar in one view updates the others over the lineage subset. BT+FT uses
// backward indexes to find the subset and forward indexes as perfect hashes
// to update the other views without rebuilding hash tables.
package main

import (
	"fmt"
	"log"
	"time"

	"smoke/internal/crossfilter"
	"smoke/internal/ontime"
)

func main() {
	cfg := ontime.Config{Rows: 300_000, Airports: 300, Days: 365, Seed: 1}
	rel := ontime.Generate(cfg)
	dims := ontime.Dims()

	start := time.Now()
	app, err := crossfilter.New(rel, dims, crossfilter.BTFT)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d flights; views + lineage capture in %s\n",
		rel.N, time.Since(start).Round(time.Millisecond))
	for v, d := range dims {
		fmt.Printf("  view %-8s %5d bars\n", d, app.NumBars(v))
	}

	// Brush the busiest carrier and watch the delay view update.
	carrierView, delayView := 3, 2
	busiest, most := 0, int64(0)
	out := app.View(carrierView)
	cc := out.Schema.MustCol("count")
	for i := 0; i < out.N; i++ {
		if out.Int(cc, i) > most {
			most = out.Int(cc, i)
			busiest = i
		}
	}
	fmt.Printf("\nbrushing carrier %d (%d flights)...\n", out.Int(0, busiest), most)
	start = time.Now()
	counts, err := app.HighlightBar(carrierView, int32(busiest))
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("delay distribution for that carrier (computed in %s):\n", elapsed.Round(time.Microsecond))
	for bin := int64(0); bin < ontime.DelayBins; bin++ {
		if c, ok := counts[delayView][bin]; ok {
			fmt.Printf("  delay bin %d: %7d flights\n", bin, c)
		}
	}
	if elapsed < 150*time.Millisecond {
		fmt.Println("under the 150ms interactive threshold ✓")
	}

	// Brush every date bar and report the worst-case latency.
	dateView := 1
	worst := time.Duration(0)
	for bar := 0; bar < app.NumBars(dateView); bar++ {
		s := time.Now()
		if _, err := app.HighlightBar(dateView, int32(bar)); err != nil {
			log.Fatal(err)
		}
		if d := time.Since(s); d > worst {
			worst = d
		}
	}
	fmt.Printf("\nbrushed all %d date bars; worst interaction latency: %s\n",
		app.NumBars(dateView), worst.Round(time.Microsecond))
}
