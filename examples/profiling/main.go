// Data profiling (§6.5.2): check functional dependencies over a
// physician-registry-like table and build the bipartite violation graph —
// expressed as lineage rather than hand-written bookkeeping.
package main

import (
	"fmt"
	"log"
	"time"

	"smoke/internal/physician"
	"smoke/internal/profiling"
)

func main() {
	rel := physician.Generate(physician.Config{
		Rows: 200_000, Zips: 2000, Orgs: 800, ViolationRate: 0.0005, Seed: 3,
	})
	fmt.Printf("profiling %d physician records\n\n", rel.N)

	for _, fd := range physician.FDs() {
		lhs, rhs := fd[0], fd[1]
		start := time.Now()
		res, err := profiling.CheckCD(rel, lhs, rhs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("FD %s → %s: %d violating values (checked in %s)\n",
			lhs, rhs, len(res.Violations), time.Since(start).Round(time.Millisecond))

		// Show the bipartite graph for the first violation: the violating
		// value connected to the tuples responsible for it.
		if len(res.Violations) > 0 {
			v := res.Violations[0]
			fmt.Printf("  e.g. %s=%q disagrees on %s across %d tuples:\n", lhs, v.Value, rhs, len(v.Rids))
			rc := rel.Schema.MustCol(rhs)
			shown := 0
			seen := map[string]bool{}
			for _, rid := range v.Rids {
				val := fmt.Sprintf("%v", rel.Value(rc, int(rid)))
				if !seen[val] {
					seen[val] = true
					fmt.Printf("    row %-8d %s=%q\n", rid, rhs, val)
					shown++
				}
				if shown >= 3 {
					break
				}
			}
		}
	}
}
