package ops

import (
	"reflect"
	"testing"

	"smoke/internal/datagen"
	"smoke/internal/expr"
	"smoke/internal/storage"
)

func selFixture(t *testing.T) (*storage.Relation, expr.Pred) {
	t.Helper()
	rel := datagen.Zipf("zipf", 0.5, 1000, 20, 1)
	pred, err := expr.CompilePred(expr.LtE(expr.C("v"), expr.F(30)), rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rel, pred
}

func naiveSelect(rel *storage.Relation, pred expr.Pred) []Rid {
	var out []Rid
	for i := int32(0); i < int32(rel.N); i++ {
		if pred(i) {
			out = append(out, i)
		}
	}
	return out
}

func TestSelectBaselineMatchesNaive(t *testing.T) {
	rel, pred := selFixture(t)
	res := Select(rel.N, pred, SelectOpts{Mode: None})
	if !reflect.DeepEqual(res.OutRids, naiveSelect(rel, pred)) {
		t.Fatal("baseline selection differs from naive scan")
	}
	if res.BW != nil || res.FW != nil {
		t.Fatal("baseline must not capture lineage")
	}
}

func TestSelectInjectLineage(t *testing.T) {
	rel, pred := selFixture(t)
	want := naiveSelect(rel, pred)
	res := Select(rel.N, pred, SelectOpts{Mode: Inject, Dirs: CaptureBoth})
	if !reflect.DeepEqual(res.OutRids, want) {
		t.Fatal("inject selection output differs")
	}
	if !reflect.DeepEqual(res.BW, want) {
		t.Fatal("backward rid array must equal selected rids")
	}
	if len(res.FW) != rel.N {
		t.Fatalf("forward array len %d, want %d", len(res.FW), rel.N)
	}
	// Round trip: fw(bw(o)) == o and fw of filtered records is -1.
	sel := map[Rid]Rid{}
	for o, in := range res.BW {
		sel[in] = Rid(o)
	}
	for in := int32(0); in < int32(rel.N); in++ {
		if o, ok := sel[in]; ok {
			if res.FW[in] != o {
				t.Fatalf("fw[%d] = %d, want %d", in, res.FW[in], o)
			}
		} else if res.FW[in] != -1 {
			t.Fatalf("fw[%d] = %d, want -1 for filtered record", in, res.FW[in])
		}
	}
}

func TestSelectEstimatePreallocates(t *testing.T) {
	rel, pred := selFixture(t)
	want := naiveSelect(rel, pred)
	// Overestimate: the backward array should never reallocate.
	res := Select(rel.N, pred, SelectOpts{Mode: Inject, Dirs: CaptureBoth, EstimatedSelectivity: 0.5})
	if !reflect.DeepEqual(res.BW, want) {
		t.Fatal("estimated-capacity selection output differs")
	}
	if cap(res.BW) < len(want) {
		t.Fatal("estimate should preallocate enough capacity")
	}
	// Underestimate must still be correct (falls back to growth).
	res = Select(rel.N, pred, SelectOpts{Mode: Inject, Dirs: CaptureBoth, EstimatedSelectivity: 0.01})
	if !reflect.DeepEqual(res.BW, want) {
		t.Fatal("underestimated selection output differs")
	}
}

func TestSelectDirectionPruning(t *testing.T) {
	rel, pred := selFixture(t)
	want := naiveSelect(rel, pred)

	bwOnly := Select(rel.N, pred, SelectOpts{Mode: Inject, Dirs: CaptureBackward})
	if bwOnly.FW != nil {
		t.Fatal("forward index should be pruned")
	}
	if !reflect.DeepEqual(bwOnly.BW, want) {
		t.Fatal("backward-only output differs")
	}

	fwOnly := Select(rel.N, pred, SelectOpts{Mode: Inject, Dirs: CaptureForward})
	if fwOnly.BW != nil {
		t.Fatal("backward index should be pruned")
	}
	if !reflect.DeepEqual(fwOnly.OutRids, want) {
		t.Fatal("forward-only output differs")
	}
	count := 0
	for _, o := range fwOnly.FW {
		if o >= 0 {
			count++
		}
	}
	if count != len(want) {
		t.Fatalf("forward entries = %d, want %d", count, len(want))
	}

	neither := Select(rel.N, pred, SelectOpts{Mode: Inject})
	if neither.BW != nil || neither.FW != nil {
		t.Fatal("fully pruned capture should produce no indexes")
	}
	if !reflect.DeepEqual(neither.OutRids, want) {
		t.Fatal("fully pruned output differs")
	}
}

func TestSelectMaterialize(t *testing.T) {
	rel, pred := selFixture(t)
	out, res := SelectMaterialize(rel, pred, SelectOpts{Mode: Inject, Dirs: CaptureBoth})
	if out.N != len(res.OutRids) {
		t.Fatalf("materialized %d rows, rid list has %d", out.N, len(res.OutRids))
	}
	vcol := out.Schema.MustCol("v")
	for i := 0; i < out.N; i++ {
		if out.Float(vcol, i) >= 30 {
			t.Fatalf("row %d violates predicate: v = %v", i, out.Float(vcol, i))
		}
	}
}

func TestSelectEmptyAndFullSelectivity(t *testing.T) {
	rel, _ := selFixture(t)
	never, err := expr.CompilePred(expr.LtE(expr.C("v"), expr.F(-1)), rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Select(rel.N, never, SelectOpts{Mode: Inject, Dirs: CaptureBoth})
	if len(res.OutRids) != 0 {
		t.Fatal("impossible predicate selected rows")
	}
	always, err := expr.CompilePred(expr.GeE(expr.C("v"), expr.F(0)), rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	res = Select(rel.N, always, SelectOpts{Mode: Inject, Dirs: CaptureBoth})
	if len(res.OutRids) != rel.N {
		t.Fatalf("tautology selected %d of %d", len(res.OutRids), rel.N)
	}
	for i, o := range res.FW {
		if o != Rid(i) {
			t.Fatal("full selection forward array must be identity")
		}
	}
}
