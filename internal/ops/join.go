package ops

import (
	"fmt"

	"smoke/internal/hashtab"
	"smoke/internal/lineage"
	"smoke/internal/pool"
	"smoke/internal/storage"
)

// JoinOpts configures hash-join instrumentation.
type JoinOpts struct {
	Dirs Directions
	// CountsByBuildKey supplies exact match counts per integer build key k in
	// [1, len], used by Smoke-I+TC (§6.1.2) to preallocate the build side's
	// forward rid index and avoid resizing. Serial only: the parallel probe
	// builds partition-local indexes under the growth policy and merges them
	// into an exactly-sized index instead (global counts would overallocate
	// every partition).
	CountsByBuildKey []int32
	// Materialize controls whether the joined output relation is produced.
	// The M:N microbenchmark (§6.1.3) disables it because the skewed join is
	// nearly a cross product and materialization would dominate.
	Materialize bool
	// Cols, when non-nil, restricts the materialized output to the named
	// columns (projection pruning — the plan optimizer passes the column set
	// the ancestors actually read). Lineage is unaffected.
	Cols []string
	// Workers > 1 runs the probe phase morsel-parallel (both the pk-fk and
	// the M:N join): the build is always serial (the hash table is then
	// shared read-only), probe partitions capture into partition-local
	// arrays, and the merge rebases partition-local output rids by each
	// partition's output offset. The merged result is identical to
	// workers=1. Parallel pk-fk execution requires probeRids entries to be
	// distinct (rid sets from selections are): partitions share the
	// probe-side forward array keyed by rid.
	Workers int
	// Pool schedules the probe partitions; nil runs them inline.
	Pool *pool.Pool
}

// PKFKResult is the output of an instrumented primary-key/foreign-key join
// with the hash table built on the primary-key side. Backward lineage is a
// rid array per side (each output joins exactly one build row and one probe
// row); the probe (foreign-key) side's forward index is a rid array because
// each fk row produces at most one output; the build side's forward index is
// a rid index. Inject and Defer coincide for pk-fk joins (§3.2.4).
type PKFKResult struct {
	Out     *storage.Relation
	OutN    int
	BuildBW []Rid
	ProbeBW []Rid
	BuildFW *lineage.RidIndex
	ProbeFW []Rid
}

// intKeyCol validates and returns an integer join-key column.
func intKeyCol(rel *storage.Relation, key string) ([]int64, error) {
	c := rel.Schema.Col(key)
	if c < 0 {
		return nil, fmt.Errorf("ops: unknown join column %q in %s", key, rel.Name)
	}
	if rel.Schema[c].Type != storage.TInt {
		return nil, fmt.Errorf("ops: join column %s.%s must be INT", rel.Name, key)
	}
	return rel.Cols[c].Ints, nil
}

// HashJoinPKFK joins build ⋈ probe on build.buildKey = probe.probeKey where
// buildKey is unique (a primary key). buildRids/probeRids restrict each side
// to a rid subset (nil = all rows), which is how filters pipeline into the
// join inside SPJA blocks.
//
// Because the build key is unique, hash entries hold a single rid instead of
// a rid array, and because the output cardinality is bounded by the probe
// cardinality, backward arrays are preallocated (§3.2.4 "Further
// optimizations").
func HashJoinPKFK(build *storage.Relation, buildKey string, buildRids []Rid,
	probe *storage.Relation, probeKey string, probeRids []Rid, opts JoinOpts) (PKFKResult, error) {

	buildCol, err := intKeyCol(build, buildKey)
	if err != nil {
		return PKFKResult{}, err
	}
	probeCol, err := intKeyCol(probe, probeKey)
	if err != nil {
		return PKFKResult{}, err
	}

	// Build phase: pk side, single rid per entry.
	nBuild := build.N
	if buildRids != nil {
		nBuild = len(buildRids)
	}
	ht := hashtab.New(nBuild)
	if buildRids == nil {
		for rid := int32(0); rid < int32(build.N); rid++ {
			ht.Put(buildCol[rid], rid)
		}
	} else {
		for _, rid := range buildRids {
			ht.Put(buildCol[rid], rid)
		}
	}

	nProbe := probe.N
	if probeRids != nil {
		nProbe = len(probeRids)
	}

	if opts.Workers > 1 && nProbe > 1 {
		return pkfkParallelProbe(build, probe, probeCol, ht, probeRids, nProbe, opts), nil
	}

	// Serial probe: one range kernel invocation covering the whole input
	// (the workers=1 specialization of the parallel path). Backward arrays
	// preallocate at the probe-side output bound; without capture, the
	// baseline's materialization pairs preallocate the same way so the
	// capture-vs-baseline comparison measures lineage writes, not
	// incidental append growth.
	res := PKFKResult{}
	capture := opts.Dirs != 0
	var l pkfkLocal
	if capture && opts.Dirs.Forward() {
		// Initialized to -1 unconditionally: even a pk-fk probe row can miss
		// when the build side was filtered.
		res.ProbeFW = newForwardArray(probe.N, true)
		if opts.CountsByBuildKey != nil {
			counts := make([]int32, build.N)
			for rid := 0; rid < build.N; rid++ {
				k := buildCol[rid]
				if k >= 1 && int(k) <= len(opts.CountsByBuildKey) {
					counts[rid] = opts.CountsByBuildKey[k-1]
				}
			}
			l.buildFW = lineage.NewRidIndexWithCounts(counts)
		} else {
			l.buildFW = lineage.NewRidIndex(build.N)
		}
		res.BuildFW = l.buildFW
	}
	pkfkProbeRange(0, nProbe, probeCol, ht, probeRids, res.ProbeFW,
		opts.CountsByBuildKey != nil, false, capture && opts.Dirs.Backward(), opts.Materialize, &l)
	res.BuildBW, res.ProbeBW = l.buildBW, l.probeBW
	res.OutN = int(l.outN)

	if opts.Materialize {
		b, p := res.BuildBW, res.ProbeBW
		if b == nil {
			b, p = l.outBuild, l.outProbe
		}
		res.Out = materializeJoinCols(build, probe, b, p, opts.Cols)
	}
	return res, nil
}

// MNVariant selects the M:N join instrumentation (§3.2.4, Listings 10/11).
type MNVariant uint8

const (
	// MNInject populates all four indexes inside the probe loop; the left
	// forward rid index resizes whenever an input record has many matches.
	MNInject MNVariant = iota
	// MNDeferForward defers only the left forward index (Smoke-D-DeferForw):
	// match cardinalities collected during the probe allow exact
	// preallocation afterwards.
	MNDeferForward
	// MNDefer defers both left indexes (Smoke-D).
	MNDefer
)

// MNResult is the output of an instrumented M:N hash join (build on left).
// Backward lineage per side is a rid array over outputs; forward lineage per
// side is a rid index (an input record can generate multiple join results).
type MNResult struct {
	Out     *storage.Relation
	OutN    int
	LeftBW  []Rid
	RightBW []Rid
	LeftFW  *lineage.RidIndex
	RightFW *lineage.RidIndex
}

// mnEntry is a hash-table entry of the M:N build phase: the left rids sharing
// a join key, plus (Defer variants) the first output rid of each probe match.
type mnEntry struct {
	iRids []Rid
	oRids []Rid // Defer: output rid where each matching probe row's block starts
}

// HashJoinMN joins left ⋈ right on integer keys with general M:N
// multiplicity, capturing lineage per the selected variant.
func HashJoinMN(left *storage.Relation, leftKey string, right *storage.Relation, rightKey string,
	variant MNVariant, opts JoinOpts) (MNResult, error) {

	leftCol, err := intKeyCol(left, leftKey)
	if err != nil {
		return MNResult{}, err
	}
	rightCol, err := intKeyCol(right, rightKey)
	if err != nil {
		return MNResult{}, err
	}

	// Build phase (⋈ht): group left rids by key.
	ht := hashtab.New(64)
	var entries []mnEntry
	for rid := int32(0); rid < int32(left.N); rid++ {
		k := leftCol[rid]
		idx, inserted := ht.GetOrPut(k, int32(len(entries)))
		if inserted {
			entries = append(entries, mnEntry{})
			idx = int32(len(entries) - 1)
		}
		e := &entries[idx]
		e.iRids = lineage.AppendRid(e.iRids, rid)
	}

	if opts.Workers > 1 && right.N > 1 {
		// Morsel-parallel probe (mn_parallel.go). Partition-local capture is
		// inject-style for every variant: serial Inject and Defer build
		// element-identical indexes, so the merged result matches both.
		return mnParallelProbe(left, right, rightCol, ht, entries, opts), nil
	}

	res := MNResult{}
	capture := opts.Dirs != 0
	deferLeft := variant != MNInject

	if capture && opts.Dirs.Backward() {
		res.RightBW = make([]Rid, 0, right.N)
		if variant != MNDefer {
			res.LeftBW = make([]Rid, 0, right.N)
		}
	}
	if capture && opts.Dirs.Forward() {
		res.RightFW = lineage.NewRidIndex(right.N)
		if !deferLeft {
			res.LeftFW = lineage.NewRidIndex(left.N)
		}
	}

	// Probe phase (⋈probe).
	o := int32(0)
	for rrid := int32(0); rrid < int32(right.N); rrid++ {
		idx, ok := ht.Get(rightCol[rrid])
		if !ok {
			continue
		}
		e := &entries[idx]
		if capture && deferLeft {
			// Outputs of this probe row are emitted contiguously, so o_rids
			// only stores the first output rid of the block (§3.2.4).
			e.oRids = lineage.AppendRid(e.oRids, o)
		}
		for j := 0; j < len(e.iRids); j++ {
			if capture {
				if res.LeftBW != nil && variant != MNDefer {
					res.LeftBW = lineage.AppendRid(res.LeftBW, e.iRids[j])
				}
				if res.RightBW != nil {
					res.RightBW = lineage.AppendRid(res.RightBW, rrid)
				}
				if res.LeftFW != nil {
					res.LeftFW.Append(int(e.iRids[j]), o)
				}
				if res.RightFW != nil {
					res.RightFW.Append(int(rrid), o)
				}
			}
			o++
		}
	}
	res.OutN = int(o)

	// Deferred construction for the left side (scanht, Listing 11): exact
	// cardinalities are now known, so indexes are preallocated and never
	// resize.
	if capture && deferLeft {
		if opts.Dirs.Forward() {
			counts := make([]int32, left.N)
			for i := range entries {
				e := &entries[i]
				for _, r := range e.iRids {
					counts[r] = int32(len(e.oRids))
				}
			}
			res.LeftFW = lineage.NewRidIndexWithCounts(counts)
		}
		needBW := opts.Dirs.Backward() && variant == MNDefer
		if needBW {
			res.LeftBW = make([]Rid, res.OutN)
		}
		for i := range entries {
			e := &entries[i]
			for s, r := range e.iRids {
				for _, first := range e.oRids {
					out := first + Rid(s)
					if res.LeftFW != nil {
						res.LeftFW.AppendFast(int(r), out)
					}
					if needBW {
						res.LeftBW[out] = r
					}
				}
			}
		}
	}

	if opts.Materialize {
		lb, rb := res.LeftBW, res.RightBW
		if lb == nil || rb == nil {
			// Re-derive output pairs for materialization when backward
			// capture was pruned.
			lb = make([]Rid, 0, res.OutN)
			rb = make([]Rid, 0, res.OutN)
			for rrid := int32(0); rrid < int32(right.N); rrid++ {
				idx, ok := ht.Get(rightCol[rrid])
				if !ok {
					continue
				}
				for _, lrid := range entries[idx].iRids {
					lb = append(lb, lrid)
					rb = append(rb, rrid)
				}
			}
		}
		res.Out = materializeJoinCols(left, right, lb, rb, opts.Cols)
	}
	return res, nil
}

// materializeJoin gathers both sides into a single output relation. Columns
// whose names collide get a relation-name prefix.
func materializeJoin(left, right *storage.Relation, leftRids, rightRids []Rid) *storage.Relation {
	return materializeJoinCols(left, right, leftRids, rightRids, nil)
}

// materializeJoinCols is materializeJoin restricted to the named columns
// (nil = all): the gather loops only touch columns the caller needs, which is
// the physical half of the optimizer's projection-pruning rule. Columns whose
// names collide between the sides are always kept (under a relation-name
// prefix) — the optimizer never prunes across a collision.
func materializeJoinCols(left, right *storage.Relation, leftRids, rightRids []Rid, keep []string) *storage.Relation {
	kept := func(name string) bool {
		if keep == nil {
			return true
		}
		for _, k := range keep {
			if k == name {
				return true
			}
		}
		return false
	}
	schema := make(storage.Schema, 0, len(left.Schema)+len(right.Schema))
	cols := make([]storage.Column, 0, cap(schema))
	gatherCol := func(rel *storage.Relation, c int, rids []Rid, name string) {
		f := rel.Schema[c]
		schema = append(schema, storage.Field{Name: name, Type: f.Type})
		var col storage.Column
		switch f.Type {
		case storage.TInt:
			src := rel.Cols[c].Ints
			col.Ints = make([]int64, len(rids))
			for i, rid := range rids {
				col.Ints[i] = src[rid]
			}
		case storage.TFloat:
			src := rel.Cols[c].Floats
			col.Floats = make([]float64, len(rids))
			for i, rid := range rids {
				col.Floats[i] = src[rid]
			}
		case storage.TString:
			src := rel.Cols[c].Strs
			col.Strs = make([]string, len(rids))
			for i, rid := range rids {
				col.Strs[i] = src[rid]
			}
		}
		cols = append(cols, col)
	}
	for c, f := range left.Schema {
		name := f.Name
		collides := right.Schema.Col(name) >= 0
		if collides {
			name = left.Name + "." + name
		}
		if collides || kept(f.Name) {
			gatherCol(left, c, leftRids, name)
		}
	}
	for c, f := range right.Schema {
		name := f.Name
		collides := left.Schema.Col(name) >= 0
		if collides {
			name = right.Name + "." + name
		}
		if collides || kept(f.Name) {
			gatherCol(right, c, rightRids, name)
		}
	}
	return &storage.Relation{
		Name:   left.Name + "_join_" + right.Name,
		Schema: schema,
		Cols:   cols,
		N:      len(leftRids),
	}
}
