package ops

import (
	"smoke/internal/lineage"
	"smoke/internal/pool"
	"smoke/internal/storage"
)

// Morsel-parallel M:N hash-join probe. The build phase stays serial (its
// hash table and entry lists are then shared read-only); the probe side
// splits into contiguous rid-range partitions, each capturing into
// partition-local arrays with partition-local output rids, merged in
// partition order via the shared merge primitives — which reproduces the
// serial probe loop's output and lineage exactly.
//
// Partitions capture inject-style for every variant: serial Inject and Defer
// build element-identical indexes (a left rid's outputs are appended in
// ascending output order either way), so the merged parallel result matches
// both.

// mnLocal is one probe partition's capture state.
type mnLocal struct {
	leftBW, rightBW   []Rid
	outLeft, outRight []Rid // materialization pairs when backward capture is off
	fwPairL, fwPairLO []Rid // (left rid, local output rid)
	fwPairR, fwPairRO []Rid // (right rid, local output rid)
	outN              Rid
}

// mnProbeRange probes right rids [lo, hi) against the shared read-only build
// table, capturing into l with range-local output rids.
func mnProbeRange(lo, hi int, rightCol []int64, ht htGetter, entries []mnEntry,
	wantBW, wantFW, wantPairs bool, l *mnLocal) {

	if wantBW {
		l.leftBW = make([]Rid, 0, hi-lo)
		l.rightBW = make([]Rid, 0, hi-lo)
	} else if wantPairs {
		l.outLeft = make([]Rid, 0, hi-lo)
		l.outRight = make([]Rid, 0, hi-lo)
	}
	o := Rid(0)
	for rrid := int32(lo); rrid < int32(hi); rrid++ {
		idx, ok := ht.Get(rightCol[rrid])
		if !ok {
			continue
		}
		e := &entries[idx]
		for _, lrid := range e.iRids {
			if wantBW {
				l.leftBW = append(l.leftBW, lrid)
				l.rightBW = append(l.rightBW, rrid)
			} else if wantPairs {
				l.outLeft = append(l.outLeft, lrid)
				l.outRight = append(l.outRight, rrid)
			}
			if wantFW {
				l.fwPairL = append(l.fwPairL, lrid)
				l.fwPairLO = append(l.fwPairLO, o)
				l.fwPairR = append(l.fwPairR, rrid)
				l.fwPairRO = append(l.fwPairRO, o)
			}
			o++
		}
	}
	l.outN = o
}

// htGetter is the read-only view of the build hash table the probe needs.
type htGetter interface {
	Get(k int64) (int32, bool)
}

// mnParallelProbe runs the probe phase of HashJoinMN morsel-parallel and
// merges partition-local captures in partition order.
func mnParallelProbe(left, right *storage.Relation, rightCol []int64, ht htGetter,
	entries []mnEntry, opts JoinOpts) MNResult {

	capture := opts.Dirs != 0
	wantBW := capture && opts.Dirs.Backward()
	wantFW := capture && opts.Dirs.Forward()

	ranges := pool.Split(right.N, opts.Workers)
	locals := make([]mnLocal, len(ranges))
	opts.Pool.RunSplit(ranges, func(part, lo, hi int) {
		mnProbeRange(lo, hi, rightCol, ht, entries, wantBW, wantFW,
			opts.Materialize && !wantBW, &locals[part])
	})

	offsets := make([]Rid, len(locals))
	off := Rid(0)
	for p := range locals {
		offsets[p] = off
		off += locals[p].outN
	}
	res := MNResult{OutN: int(off)}

	if wantBW {
		lb := make([][]Rid, len(locals))
		rb := make([][]Rid, len(locals))
		for p := range locals {
			lb[p] = locals[p].leftBW
			rb[p] = locals[p].rightBW
		}
		res.LeftBW = lineage.ConcatRidArrays(lb)
		res.RightBW = lineage.ConcatRidArrays(rb)
		if res.LeftBW == nil {
			// Zero matches: keep the serial kernel's non-nil empty shape.
			res.LeftBW, res.RightBW = locals[0].leftBW, locals[0].rightBW
		}
	}
	if wantFW {
		pairL := make([][]Rid, len(locals))
		pairLO := make([][]Rid, len(locals))
		pairR := make([][]Rid, len(locals))
		pairRO := make([][]Rid, len(locals))
		for p := range locals {
			pairL[p] = locals[p].fwPairL
			pairLO[p] = locals[p].fwPairLO
			pairR[p] = locals[p].fwPairR
			pairRO[p] = locals[p].fwPairRO
		}
		rebase := func(part int, o Rid) Rid { return o + offsets[part] }
		res.LeftFW = lineage.MergePairsByRid(pairL, pairLO, left.N, rebase)
		res.RightFW = lineage.MergePairsByRid(pairR, pairRO, right.N, rebase)
	}
	if opts.Materialize {
		lb, rb := res.LeftBW, res.RightBW
		if lb == nil || rb == nil {
			ol := make([][]Rid, len(locals))
			or := make([][]Rid, len(locals))
			for p := range locals {
				ol[p] = locals[p].outLeft
				or[p] = locals[p].outRight
			}
			lb, rb = lineage.ConcatRidArrays(ol), lineage.ConcatRidArrays(or)
		}
		res.Out = materializeJoinCols(left, right, lb, rb, opts.Cols)
	}
	return res
}
