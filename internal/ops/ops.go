// Package ops implements the paper's physical algebra (§3.2, Appendix F):
// relational operators whose dual form both executes the operator's logic and
// generates lineage. Every operator supports three capture modes:
//
//   - None:   plain execution, no lineage (the Baseline of §5).
//   - Inject: the full capture cost is paid inside operator execution.
//   - Defer:  parts of index construction move after operator execution,
//     reusing operator data structures (hash tables) and exact cardinalities
//     to avoid rid-array resizing.
//
// Capture writes are inlined in the operator loops — no function call (let
// alone a dynamic dispatch) separates execution from capture. That is the
// paper's tight-integration principle P1; the Phys-Mem baseline in
// internal/baselines deliberately violates it to measure the cost.
//
// Operators are written in range-kernel form: the hot loop runs over a
// contiguous rid range (lo, hi) with partition-local capture state. With
// Workers > 1 in the operator options, the input splits into morsels
// (contiguous ranges) executed concurrently over a shared pool, and
// partition-local indexes merge in partition order into structures identical
// to a serial run's (see agg_parallel.go and internal/lineage/merge.go).
// Workers <= 1 is the serial specialization, which reproduces the paper's
// single-threaded experiments exactly.
package ops

import "smoke/internal/lineage"

// CaptureMode selects the instrumentation paradigm.
type CaptureMode uint8

const (
	// None disables lineage capture.
	None CaptureMode = iota
	// Inject captures lineage inside operator execution.
	Inject
	// Defer postpones index construction until after operator execution.
	Defer
)

// String names the mode for bench output.
func (m CaptureMode) String() string {
	switch m {
	case None:
		return "none"
	case Inject:
		return "inject"
	case Defer:
		return "defer"
	}
	return "?"
}

// Directions selects which lineage directions to capture; pruning the unused
// direction is the §4.1 "pruning lineage direction" optimization.
type Directions uint8

const (
	// CaptureBackward captures output→input indexes.
	CaptureBackward Directions = 1 << iota
	// CaptureForward captures input→output indexes.
	CaptureForward
	// CaptureBoth captures both directions (the workload-agnostic default).
	CaptureBoth = CaptureBackward | CaptureForward
)

// Backward reports whether backward capture is enabled.
func (d Directions) Backward() bool { return d&CaptureBackward != 0 }

// Forward reports whether forward capture is enabled.
func (d Directions) Forward() bool { return d&CaptureForward != 0 }

// Rid re-exports the lineage record id type for brevity inside this package.
type Rid = lineage.Rid
