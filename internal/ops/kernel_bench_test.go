package ops

import (
	"testing"

	"smoke/internal/datagen"
	"smoke/internal/expr"
)

// Selection microbenchmarks: the two-pass bitmap kernel with a compiled
// column kernel vs the same two-pass harness driven by a row-at-a-time
// compiled predicate (the fallback when no kernel form exists).

func benchSelInputs(b *testing.B) (n int, pred expr.Pred, kern expr.BitKernel) {
	b.Helper()
	rel := datagen.Zipf("zipf", 0.5, 1<<20, 100, 1)
	filter := expr.LtE(expr.C("v"), expr.F(50))
	pred, err := expr.CompilePred(filter, rel, nil)
	if err != nil {
		b.Fatal(err)
	}
	kern = expr.CompileBitKernel(filter, rel, nil)
	if kern == nil {
		b.Fatal("filter should compile to a bit kernel")
	}
	return rel.N, pred, kern
}

func BenchmarkSelectBitmapKernel(b *testing.B) {
	b.ReportAllocs()
	n, pred, kern := benchSelInputs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Select(n, pred, SelectOpts{Kernel: kern})
	}
}

func BenchmarkSelectPredFallback(b *testing.B) {
	b.ReportAllocs()
	n, pred, _ := benchSelInputs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Select(n, pred, SelectOpts{})
	}
}

func BenchmarkSelectBitmapKernelInject(b *testing.B) {
	b.ReportAllocs()
	n, pred, kern := benchSelInputs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Select(n, pred, SelectOpts{Kernel: kern, Mode: Inject, Dirs: CaptureBoth})
	}
}
