package ops

import (
	"reflect"
	"sort"
	"testing"

	"smoke/internal/storage"
)

func setRel(name string, vals ...int) *storage.Relation {
	r := storage.NewEmpty(name, storage.Schema{{Name: "k", Type: storage.TInt}})
	for _, v := range vals {
		r.AppendRow(v)
	}
	return r
}

func outInts(r *storage.Relation) []int64 {
	out := append([]int64(nil), r.Cols[0].Ints...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestSetUnionBothModes(t *testing.T) {
	a := setRel("a", 1, 2, 2, 3)
	b := setRel("b", 3, 4, 4)
	for _, mode := range []CaptureMode{Inject, Defer} {
		res, err := SetUnion(a, []string{"k"}, b, []string{"k"}, mode, CaptureBoth)
		if err != nil {
			t.Fatal(err)
		}
		if got := outInts(res.Out); !reflect.DeepEqual(got, []int64{1, 2, 3, 4}) {
			t.Fatalf("mode %v: union = %v", mode, got)
		}
		// Backward lists must cover all input duplicates.
		if res.ABW.Cardinality() != a.N {
			t.Fatalf("mode %v: A backward covers %d, want %d", mode, res.ABW.Cardinality(), a.N)
		}
		if res.BBW.Cardinality() != b.N {
			t.Fatalf("mode %v: B backward covers %d, want %d", mode, res.BBW.Cardinality(), b.N)
		}
		// fw/bw consistency on both sides.
		for o := 0; o < res.Out.N; o++ {
			for _, r := range res.ABW.List(o) {
				if res.AFW[r] != Rid(o) {
					t.Fatalf("mode %v: A fw/bw mismatch", mode)
				}
			}
			for _, r := range res.BBW.List(o) {
				if res.BFW[r] != Rid(o) {
					t.Fatalf("mode %v: B fw/bw mismatch", mode)
				}
			}
		}
		// Every output value's lineage must hold records with that value.
		for o := 0; o < res.Out.N; o++ {
			v := res.Out.Int(0, o)
			for _, r := range res.ABW.List(o) {
				if a.Int(0, int(r)) != v {
					t.Fatalf("mode %v: lineage of %d includes A row with %d", mode, v, a.Int(0, int(r)))
				}
			}
		}
	}
}

func TestSetUnionInjectDeferEquivalent(t *testing.T) {
	a := setRel("a", 5, 6, 7, 5)
	b := setRel("b", 7, 8)
	inj, err := SetUnion(a, []string{"k"}, b, []string{"k"}, Inject, CaptureBoth)
	if err != nil {
		t.Fatal(err)
	}
	def, err := SetUnion(a, []string{"k"}, b, []string{"k"}, Defer, CaptureBoth)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inj.AFW, def.AFW) || !reflect.DeepEqual(inj.BFW, def.BFW) {
		t.Fatal("forward indexes differ between modes")
	}
	for o := 0; o < inj.Out.N; o++ {
		if !reflect.DeepEqual(inj.ABW.List(o), def.ABW.List(o)) {
			t.Fatalf("A backward lists differ at output %d", o)
		}
	}
}

func TestSetIntersect(t *testing.T) {
	a := setRel("a", 1, 2, 2, 3, 5)
	b := setRel("b", 2, 3, 4, 3)
	for _, mode := range []CaptureMode{Inject, Defer} {
		res, err := SetIntersect(a, []string{"k"}, b, []string{"k"}, mode, CaptureBoth)
		if err != nil {
			t.Fatal(err)
		}
		if got := outInts(res.Out); !reflect.DeepEqual(got, []int64{2, 3}) {
			t.Fatalf("mode %v: intersect = %v", mode, got)
		}
		// A rows with values 1 and 5 (rids 0, 4) produce no output.
		if res.AFW[0] != -1 || res.AFW[4] != -1 {
			t.Fatalf("mode %v: non-intersecting rows must map to -1", mode)
		}
		// Value 2's lineage in A must be rids {1, 2}.
		for o := 0; o < res.Out.N; o++ {
			if res.Out.Int(0, o) == 2 {
				got := append([]Rid(nil), res.ABW.List(o)...)
				sortRids(got)
				if !reflect.DeepEqual(got, []Rid{1, 2}) {
					t.Fatalf("mode %v: lineage of 2 in A = %v", mode, got)
				}
			}
		}
	}
}

func TestSetDiff(t *testing.T) {
	a := setRel("a", 1, 2, 2, 3)
	b := setRel("b", 2, 9)
	for _, mode := range []CaptureMode{Inject, Defer} {
		res, err := SetDiff(a, []string{"k"}, b, []string{"k"}, mode, CaptureBoth)
		if err != nil {
			t.Fatal(err)
		}
		if got := outInts(res.Out); !reflect.DeepEqual(got, []int64{1, 3}) {
			t.Fatalf("mode %v: diff = %v", mode, got)
		}
		if res.BBW != nil || res.BFW != nil {
			t.Fatalf("mode %v: set difference must not capture lineage for B", mode)
		}
		// Rids of 2s must map nowhere.
		if res.AFW[1] != -1 || res.AFW[2] != -1 {
			t.Fatalf("mode %v: subtracted rows must map to -1", mode)
		}
		if res.AFW[0] == -1 || res.AFW[3] == -1 {
			t.Fatalf("mode %v: surviving rows must have forward entries", mode)
		}
	}
}

func TestBagUnion(t *testing.T) {
	a := setRel("a", 1, 2)
	b := setRel("b", 2, 3, 4)
	out, lin, err := BagUnion(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 5 {
		t.Fatalf("bag union N = %d", out.N)
	}
	if got := out.Cols[0].Ints; !reflect.DeepEqual(got, []int64{1, 2, 2, 3, 4}) {
		t.Fatalf("bag union = %v", got)
	}
	fromB, rid := lin.Backward(1)
	if fromB || rid != 1 {
		t.Fatal("backward of output 1 should be A rid 1")
	}
	fromB, rid = lin.Backward(3)
	if !fromB || rid != 1 {
		t.Fatal("backward of output 3 should be B rid 1")
	}
	if lin.ForwardA(1) != 1 || lin.ForwardB(1) != 3 {
		t.Fatal("forward arithmetic wrong")
	}
}

func TestBagUnionErrors(t *testing.T) {
	a := setRel("a", 1)
	mismatch := storage.NewEmpty("m", storage.Schema{{Name: "k", Type: storage.TString}})
	if _, _, err := BagUnion(a, mismatch); err == nil {
		t.Error("type mismatch should error")
	}
	wide := storage.NewEmpty("w", storage.Schema{{Name: "k", Type: storage.TInt}, {Name: "j", Type: storage.TInt}})
	if _, _, err := BagUnion(a, wide); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestBagIntersect(t *testing.T) {
	// value 2: mA=2, mB=1 -> 2 outputs; value 3: mA=1, mB=2 -> 2 outputs.
	a := setRel("a", 1, 2, 2, 3)
	b := setRel("b", 2, 3, 3)
	res, err := BagIntersect(a, []string{"k"}, b, []string{"k"}, CaptureBoth)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutN != 4 {
		t.Fatalf("OutN = %d, want 4 (mA*mB per value)", res.OutN)
	}
	if got := outInts(res.Out); !reflect.DeepEqual(got, []int64{2, 2, 3, 3}) {
		t.Fatalf("bag intersect = %v", got)
	}
	// Backward is 1-1: every output has exactly one rid per side, with the
	// right values.
	for o := 0; o < res.OutN; o++ {
		v := res.Out.Int(0, o)
		if a.Int(0, int(res.ABW[o])) != v || b.Int(0, int(res.BBW[o])) != v {
			t.Fatalf("output %d: backward rids carry wrong values", o)
		}
	}
	// Forward is 1-N and consistent.
	for r := 0; r < a.N; r++ {
		for _, o := range res.AFW.List(r) {
			if res.ABW[o] != Rid(r) {
				t.Fatalf("A fw/bw mismatch at rid %d", r)
			}
		}
	}
	if res.AFW.Cardinality() != res.OutN || res.BFW.Cardinality() != res.OutN {
		t.Fatal("forward cardinalities wrong")
	}
}

func TestBagDiff(t *testing.T) {
	// value 2: mA=3, mB=1 -> 2 copies survive; value 1: mA=1, mB=0 -> 1 copy;
	// value 3: mA=1, mB=2 -> 0 copies.
	a := setRel("a", 1, 2, 2, 2, 3)
	b := setRel("b", 2, 3, 3)
	res, err := BagDiff(a, []string{"k"}, b, []string{"k"}, CaptureBoth)
	if err != nil {
		t.Fatal(err)
	}
	if got := outInts(res.Out); !reflect.DeepEqual(got, []int64{1, 2, 2}) {
		t.Fatalf("bag diff = %v", got)
	}
	// Backward 1-1 and value-consistent.
	for o := 0; o < res.Out.N; o++ {
		if a.Int(0, int(res.ABW[o])) != res.Out.Int(0, o) {
			t.Fatalf("output %d: wrong backward rid", o)
		}
	}
	// Forward: exactly len(out) entries set.
	set := 0
	for _, o := range res.AFW {
		if o >= 0 {
			set++
		}
	}
	if set != res.Out.N {
		t.Fatalf("forward entries = %d, want %d", set, res.Out.N)
	}
}

func TestSetOpsMultiColumnAndStringKeys(t *testing.T) {
	a := storage.NewEmpty("a", storage.Schema{
		{Name: "s", Type: storage.TString},
		{Name: "n", Type: storage.TInt},
	})
	a.AppendRow("x", 1)
	a.AppendRow("x", 2)
	a.AppendRow("y", 1)
	b := storage.NewEmpty("b", storage.Schema{
		{Name: "s", Type: storage.TString},
		{Name: "n", Type: storage.TInt},
	})
	b.AppendRow("x", 2)
	b.AppendRow("z", 9)
	res, err := SetIntersect(a, []string{"s", "n"}, b, []string{"s", "n"}, Inject, CaptureBoth)
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != 1 || res.Out.Str(0, 0) != "x" || res.Out.Int(1, 0) != 2 {
		t.Fatalf("composite intersect wrong: %d rows", res.Out.N)
	}
}

func TestSetOpsErrors(t *testing.T) {
	a := setRel("a", 1)
	b := setRel("b", 1)
	if _, err := SetUnion(a, []string{"nope"}, b, []string{"k"}, Inject, CaptureBoth); err == nil {
		t.Error("unknown A column should error")
	}
	if _, err := SetUnion(a, []string{"k"}, b, []string{"nope"}, Inject, CaptureBoth); err == nil {
		t.Error("unknown B column should error")
	}
	if _, err := SetUnion(a, []string{"k"}, b, []string{}, Inject, CaptureBoth); err == nil {
		t.Error("arity mismatch should error")
	}
}
