package ops

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/pool"
	"smoke/internal/storage"
)

// Parity tests: every morsel-parallel kernel must produce output and lineage
// element-for-element identical to its workers=1 specialization.

func parTestRel(n int) *storage.Relation {
	rel := storage.NewRelation("t", storage.Schema{
		{Name: "z", Type: storage.TInt},
		{Name: "part", Type: storage.TInt},
		{Name: "s", Type: storage.TString},
		{Name: "v", Type: storage.TFloat},
	}, n)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		rel.Cols[0].Ints[i] = int64(rng.Intn(17))
		rel.Cols[1].Ints[i] = int64(rng.Intn(4))
		rel.Cols[2].Strs[i] = fmt.Sprintf("g%d", rng.Intn(9))
		rel.Cols[3].Floats[i] = float64(rng.Intn(1000))
	}
	return rel
}

func sameRidArr(t *testing.T, what string, got, want []Rid) {
	t.Helper()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s differs: got %d entries %v..., want %d entries %v...",
			what, len(got), head(got), len(want), head(want))
	}
}

func head(r []Rid) []Rid {
	if len(r) > 8 {
		return r[:8]
	}
	return r
}

func sameRidIndex(t *testing.T, what string, got, want *lineage.RidIndex) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: nil mismatch (got %v, want %v)", what, got == nil, want == nil)
	}
	if got == nil {
		return
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d entries, want %d", what, got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		sameRidArr(t, fmt.Sprintf("%s[%d]", what, i), got.List(i), want.List(i))
	}
}

func sameRelation(t *testing.T, got, want *storage.Relation) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("output cardinality %d, want %d", got.N, want.N)
	}
	if !reflect.DeepEqual(got.Schema, want.Schema) {
		t.Fatalf("schema %v, want %v", got.Schema, want.Schema)
	}
	for c := range want.Cols {
		if !reflect.DeepEqual(got.Cols[c], want.Cols[c]) {
			t.Fatalf("column %s differs", want.Schema[c].Name)
		}
	}
}

func TestSelectParallelMatchesSerial(t *testing.T) {
	rel := parTestRel(10007)
	pred, err := expr.CompilePred(expr.LtE(expr.C("v"), expr.F(300)), rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := pool.New(4)
	for _, mode := range []CaptureMode{None, Inject} {
		for _, dirs := range []Directions{0, CaptureBackward, CaptureForward, CaptureBoth} {
			serial := Select(rel.N, pred, SelectOpts{Mode: mode, Dirs: dirs})
			for _, workers := range []int{2, 3, 4, 8} {
				par := Select(rel.N, pred, SelectOpts{Mode: mode, Dirs: dirs, Workers: workers, Pool: p})
				tag := fmt.Sprintf("mode=%v dirs=%b w=%d", mode, dirs, workers)
				sameRidArr(t, tag+" OutRids", par.OutRids, serial.OutRids)
				sameRidArr(t, tag+" BW", par.BW, serial.BW)
				sameRidArr(t, tag+" FW", par.FW, serial.FW)
			}
		}
	}
}

// TestSelectParallelZeroMatches pins the nil-vs-empty contract: a predicate
// matching nothing must produce the same OutRids shape as the serial kernel
// (nil means "all rows" to HashAgg, so shape is semantics here).
func TestSelectParallelZeroMatches(t *testing.T) {
	rel := parTestRel(5003)
	pred, err := expr.CompilePred(expr.LtE(expr.C("v"), expr.F(-1)), rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := pool.New(4)
	for _, mode := range []CaptureMode{None, Inject} {
		for _, dirs := range []Directions{0, CaptureBackward, CaptureForward, CaptureBoth} {
			serial := Select(rel.N, pred, SelectOpts{Mode: mode, Dirs: dirs})
			par := Select(rel.N, pred, SelectOpts{Mode: mode, Dirs: dirs, Workers: 4, Pool: p})
			tag := fmt.Sprintf("mode=%v dirs=%b", mode, dirs)
			if len(par.OutRids) != 0 || len(serial.OutRids) != 0 {
				t.Fatalf("%s: zero-selectivity predicate selected rows", tag)
			}
			if (par.OutRids == nil) != (serial.OutRids == nil) {
				t.Fatalf("%s: OutRids nil-ness differs (par=%v serial=%v)",
					tag, par.OutRids == nil, serial.OutRids == nil)
			}
			sameRidArr(t, tag+" FW", par.FW, serial.FW)
		}
	}
}

func TestHashAggParallelMatchesSerial(t *testing.T) {
	rel := parTestRel(10007)
	p := pool.New(4)
	specs := map[string]GroupBySpec{
		"int-key": {Keys: []string{"z"}, Aggs: []AggSpec{
			{Fn: Count, Name: "cnt"},
			{Fn: Sum, Arg: expr.C("v"), Name: "s"},
			{Fn: Min, Arg: expr.C("v"), Name: "mn"},
			{Fn: Max, Arg: expr.C("v"), Name: "mx"},
			{Fn: CountDistinct, Arg: expr.C("part"), Name: "cd"},
		}},
		"str-key":       {Keys: []string{"s"}, Aggs: []AggSpec{{Fn: Avg, Arg: expr.C("v"), Name: "a"}}},
		"composite-key": {Keys: []string{"z", "s"}, Aggs: []AggSpec{{Fn: Count, Name: "c"}}},
	}
	// A filtered rid subset (sorted, distinct), as produced by a selection.
	var sub []Rid
	for i := int32(0); i < int32(rel.N); i++ {
		if i%3 != 0 {
			sub = append(sub, i)
		}
	}
	for name, spec := range specs {
		for _, mode := range []CaptureMode{None, Inject, Defer} {
			for _, dirs := range []Directions{CaptureBackward, CaptureForward, CaptureBoth} {
				for _, inRids := range [][]Rid{nil, sub} {
					opts := AggOpts{Mode: mode, Dirs: dirs}
					serial, err := HashAgg(rel, inRids, spec, opts)
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{2, 4, 7} {
						opts.Workers, opts.Pool = workers, p
						par, err := HashAgg(rel, inRids, spec, opts)
						if err != nil {
							t.Fatal(err)
						}
						tag := fmt.Sprintf("%s mode=%v dirs=%b sub=%v w=%d", name, mode, dirs, inRids != nil, workers)
						sameRelation(t, par.Out, serial.Out)
						if !reflect.DeepEqual(par.GroupCounts, serial.GroupCounts) {
							t.Fatalf("%s: GroupCounts differ", tag)
						}
						sameRidIndex(t, tag+" BW", par.BW, serial.BW)
						sameRidArr(t, tag+" FW", par.FW, serial.FW)
					}
				}
			}
		}
	}
}

func TestHashAggParallelPushdownAndSkipping(t *testing.T) {
	rel := parTestRel(5003)
	p := pool.New(4)
	spec := GroupBySpec{Keys: []string{"z"}, Aggs: []AggSpec{{Fn: Count, Name: "c"}}}
	for _, mode := range []CaptureMode{Inject, Defer} {
		// Selection push-down (§4.2): only matching rids are captured.
		opts := AggOpts{Mode: mode, Dirs: CaptureBackward, PushdownFilter: expr.LtE(expr.C("v"), expr.F(100))}
		serial, err := HashAgg(rel, nil, spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Workers, opts.Pool = 4, p
		par, err := HashAgg(rel, nil, spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameRidIndex(t, fmt.Sprintf("pushdown mode=%v BW", mode), par.BW, serial.BW)
		sameRelation(t, par.Out, serial.Out)

		// Data skipping over a single TInt attribute stays parallel.
		opts = AggOpts{Mode: mode, Dirs: CaptureBackward, PartitionBy: []string{"part"}}
		serial, err = HashAgg(rel, nil, spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Workers, opts.Pool = 4, p
		par, err = HashAgg(rel, nil, spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		if par.BWPart == nil || serial.BWPart == nil {
			t.Fatalf("expected partitioned indexes (par=%v serial=%v)", par.BWPart != nil, serial.BWPart != nil)
		}
		if par.BWPart.Cardinality() != serial.BWPart.Cardinality() {
			t.Fatalf("partitioned cardinality %d, want %d", par.BWPart.Cardinality(), serial.BWPart.Cardinality())
		}
		for g := 0; g < serial.BWPart.Len(); g++ {
			for _, code := range serial.BWPart.Partitions(g) {
				sameRidArr(t, fmt.Sprintf("BWPart[%d][%d]", g, code),
					par.BWPart.Partition(g, code), serial.BWPart.Partition(g, code))
			}
		}
	}
}

func TestPKFKJoinParallelMatchesSerial(t *testing.T) {
	nBuild, nProbe := 500, 20011
	build := storage.NewRelation("pk", storage.Schema{
		{Name: "id", Type: storage.TInt}, {Name: "w", Type: storage.TFloat},
	}, nBuild)
	for i := 0; i < nBuild; i++ {
		build.Cols[0].Ints[i] = int64(i)
		build.Cols[1].Floats[i] = float64(i)
	}
	probe := storage.NewRelation("fk", storage.Schema{
		{Name: "ref", Type: storage.TInt}, {Name: "x", Type: storage.TFloat},
	}, nProbe)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < nProbe; i++ {
		// ~20% of probe rows miss (build side conceptually filtered).
		probe.Cols[0].Ints[i] = int64(rng.Intn(nBuild + nBuild/4))
		probe.Cols[1].Floats[i] = float64(i)
	}
	p := pool.New(4)
	for _, dirs := range []Directions{0, CaptureBackward, CaptureForward, CaptureBoth} {
		for _, mat := range []bool{false, true} {
			serial, err := HashJoinPKFK(build, "id", nil, probe, "ref", nil, JoinOpts{Dirs: dirs, Materialize: mat})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				par, err := HashJoinPKFK(build, "id", nil, probe, "ref", nil,
					JoinOpts{Dirs: dirs, Materialize: mat, Workers: workers, Pool: p})
				if err != nil {
					t.Fatal(err)
				}
				tag := fmt.Sprintf("dirs=%b mat=%v w=%d", dirs, mat, workers)
				if par.OutN != serial.OutN {
					t.Fatalf("%s: OutN %d, want %d", tag, par.OutN, serial.OutN)
				}
				sameRidArr(t, tag+" BuildBW", par.BuildBW, serial.BuildBW)
				sameRidArr(t, tag+" ProbeBW", par.ProbeBW, serial.ProbeBW)
				sameRidArr(t, tag+" ProbeFW", par.ProbeFW, serial.ProbeFW)
				sameRidIndex(t, tag+" BuildFW", par.BuildFW, serial.BuildFW)
				if mat {
					sameRelation(t, par.Out, serial.Out)
				}
			}
		}
	}
}
