package ops

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"smoke/internal/pool"
	"smoke/internal/storage"
)

func mnTestRels(seed int64, nLeft, nRight, keyDomain int) (*storage.Relation, *storage.Relation) {
	r := rand.New(rand.NewSource(seed))
	left := storage.NewRelation("L", storage.Schema{{Name: "k", Type: storage.TInt}}, nLeft)
	for i := 0; i < nLeft; i++ {
		left.Cols[0].Ints[i] = int64(r.Intn(keyDomain))
	}
	right := storage.NewRelation("R", storage.Schema{{Name: "j", Type: storage.TInt}}, nRight)
	for i := 0; i < nRight; i++ {
		right.Cols[0].Ints[i] = int64(r.Intn(keyDomain))
	}
	return left, right
}

// TestMNJoinParallelMatchesSerial pins the morsel-parallel M:N probe against
// the serial loop: output cardinality and all four lineage indexes must be
// element-identical, for both Inject and Defer and several worker counts.
func TestMNJoinParallelMatchesSerial(t *testing.T) {
	p := pool.New(4)
	defer p.Close()
	for _, variant := range []MNVariant{MNInject, MNDefer, MNDeferForward} {
		for _, shape := range []struct{ nl, nr, dom int }{
			{50, 300, 10},   // heavy duplication
			{200, 200, 500}, // sparse matches
			{5, 40, 1000},   // near-empty result
		} {
			left, right := mnTestRels(7, shape.nl, shape.nr, shape.dom)
			serial, err := HashJoinMN(left, "k", right, "j", variant,
				JoinOpts{Dirs: CaptureBoth, Materialize: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 3, 8} {
				par, err := HashJoinMN(left, "k", right, "j", variant,
					JoinOpts{Dirs: CaptureBoth, Materialize: true, Workers: w, Pool: p})
				if err != nil {
					t.Fatal(err)
				}
				tag := fmt.Sprintf("variant=%d shape=%+v workers=%d", variant, shape, w)
				if par.OutN != serial.OutN {
					t.Fatalf("%s: OutN %d != %d", tag, par.OutN, serial.OutN)
				}
				if !reflect.DeepEqual(par.LeftBW, serial.LeftBW) || !reflect.DeepEqual(par.RightBW, serial.RightBW) {
					t.Fatalf("%s: backward arrays differ", tag)
				}
				for i := 0; i < left.N; i++ {
					if !ridListsEqual(par.LeftFW.List(i), serial.LeftFW.List(i)) {
						t.Fatalf("%s: LeftFW[%d] differs: %v vs %v", tag, i, par.LeftFW.List(i), serial.LeftFW.List(i))
					}
				}
				for i := 0; i < right.N; i++ {
					if !ridListsEqual(par.RightFW.List(i), serial.RightFW.List(i)) {
						t.Fatalf("%s: RightFW[%d] differs", tag, i)
					}
				}
				if par.Out.N != serial.Out.N {
					t.Fatalf("%s: materialized rows differ", tag)
				}
			}
		}
	}
}

// TestSetUnionParallelMatchesSerial pins the morsel-parallel union capture
// against serial Inject and Defer.
func TestSetUnionParallelMatchesSerial(t *testing.T) {
	p := pool.New(4)
	defer p.Close()
	a, b := mnTestRels(11, 120, 90, 25)
	aAttrs, bAttrs := []string{"k"}, []string{"j"}
	for _, mode := range []CaptureMode{Inject, Defer} {
		serial, err := SetUnion(a, aAttrs, b, bAttrs, mode, CaptureBoth)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 8} {
			par, err := SetUnionPar(a, aAttrs, b, bAttrs, mode, CaptureBoth, w, p)
			if err != nil {
				t.Fatal(err)
			}
			tag := fmt.Sprintf("mode=%v workers=%d", mode, w)
			if par.Out.N != serial.Out.N {
				t.Fatalf("%s: output rows %d != %d", tag, par.Out.N, serial.Out.N)
			}
			for o := 0; o < serial.Out.N; o++ {
				if !ridListsEqual(par.ABW.List(o), serial.ABW.List(o)) {
					t.Fatalf("%s: ABW[%d] differs: %v vs %v", tag, o, par.ABW.List(o), serial.ABW.List(o))
				}
				if !ridListsEqual(par.BBW.List(o), serial.BBW.List(o)) {
					t.Fatalf("%s: BBW[%d] differs", tag, o)
				}
			}
			if !reflect.DeepEqual(par.AFW, serial.AFW) || !reflect.DeepEqual(par.BFW, serial.BFW) {
				t.Fatalf("%s: forward arrays differ", tag)
			}
		}
	}
}

func ridListsEqual(a, b []Rid) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
