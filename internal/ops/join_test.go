package ops

import (
	"reflect"
	"sort"
	"testing"

	"smoke/internal/datagen"
	"smoke/internal/storage"
)

// naiveJoin computes reference (left rid, right rid) pairs for an equi-join.
func naiveJoin(left *storage.Relation, lkey string, right *storage.Relation, rkey string) [][2]Rid {
	lc := left.Cols[left.Schema.MustCol(lkey)].Ints
	rc := right.Cols[right.Schema.MustCol(rkey)].Ints
	var out [][2]Rid
	for i := int32(0); i < int32(left.N); i++ {
		for j := int32(0); j < int32(right.N); j++ {
			if lc[i] == rc[j] {
				out = append(out, [2]Rid{i, j})
			}
		}
	}
	return out
}

func sortPairs(p [][2]Rid) {
	sort.Slice(p, func(i, j int) bool {
		if p[i][0] != p[j][0] {
			return p[i][0] < p[j][0]
		}
		return p[i][1] < p[j][1]
	})
}

func pkfkFixture(t *testing.T) (*storage.Relation, *storage.Relation) {
	t.Helper()
	gids := datagen.Gids("gids", 50, 1)
	zipf := datagen.Zipf("zipf", 1.0, 2000, 50, 2)
	return gids, zipf
}

func TestPKFKJoinMatchesNaive(t *testing.T) {
	gids, zipf := pkfkFixture(t)
	res, err := HashJoinPKFK(gids, "id", nil, zipf, "z", nil, JoinOpts{Dirs: CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveJoin(gids, "id", zipf, "z")
	if res.OutN != len(want) {
		t.Fatalf("OutN = %d, want %d", res.OutN, len(want))
	}
	got := make([][2]Rid, res.OutN)
	for o := 0; o < res.OutN; o++ {
		got[o] = [2]Rid{res.BuildBW[o], res.ProbeBW[o]}
	}
	sortPairs(got)
	sortPairs(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("pk-fk join pairs differ from naive join")
	}
}

func TestPKFKJoinForwardIndexes(t *testing.T) {
	gids, zipf := pkfkFixture(t)
	res, err := HashJoinPKFK(gids, "id", nil, zipf, "z", nil, JoinOpts{Dirs: CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	// Probe side: fk row -> exactly the output that consumed it.
	for prid := int32(0); prid < int32(zipf.N); prid++ {
		o := res.ProbeFW[prid]
		if o < 0 {
			t.Fatalf("probe rid %d has no output (referential integrity should hold)", prid)
		}
		if res.ProbeBW[o] != prid {
			t.Fatalf("probe fw/bw mismatch at rid %d", prid)
		}
	}
	// Build side: every output listed under its build rid.
	for brid := 0; brid < gids.N; brid++ {
		for _, o := range res.BuildFW.List(brid) {
			if res.BuildBW[o] != Rid(brid) {
				t.Fatalf("build fw/bw mismatch at rid %d", brid)
			}
		}
	}
	if res.BuildFW.Cardinality() != res.OutN {
		t.Fatalf("build forward cardinality %d, want %d", res.BuildFW.Cardinality(), res.OutN)
	}
}

func TestPKFKJoinTrueCardinalities(t *testing.T) {
	gids, zipf := pkfkFixture(t)
	counts := datagen.GroupCounts(zipf, "z", 50)
	res, err := HashJoinPKFK(gids, "id", nil, zipf, "z", nil,
		JoinOpts{Dirs: CaptureBoth, CountsByBuildKey: counts})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := HashJoinPKFK(gids, "id", nil, zipf, "z", nil, JoinOpts{Dirs: CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutN != plain.OutN {
		t.Fatal("TC variant changed output cardinality")
	}
	for brid := 0; brid < gids.N; brid++ {
		if !reflect.DeepEqual(res.BuildFW.List(brid), plain.BuildFW.List(brid)) {
			t.Fatalf("TC variant changed forward lineage at build rid %d", brid)
		}
		l := res.BuildFW.List(brid)
		if cap(l) != len(l) {
			t.Fatalf("TC should preallocate exactly: build rid %d cap %d len %d", brid, cap(l), len(l))
		}
	}
}

func TestPKFKJoinWithRidSubsets(t *testing.T) {
	gids, zipf := pkfkFixture(t)
	// Filtered build side: only ids 1..10 survive.
	var buildRids []Rid
	for i := 0; i < gids.N; i++ {
		if gids.Int(0, i) <= 10 {
			buildRids = append(buildRids, Rid(i))
		}
	}
	res, err := HashJoinPKFK(gids, "id", buildRids, zipf, "z", nil, JoinOpts{Dirs: CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	zc := zipf.Schema.MustCol("z")
	want := 0
	for i := 0; i < zipf.N; i++ {
		if zipf.Int(zc, i) <= 10 {
			want++
		}
	}
	if res.OutN != want {
		t.Fatalf("filtered join OutN = %d, want %d", res.OutN, want)
	}
	// Probe rows with z > 10 must have no forward entry.
	for prid := int32(0); prid < int32(zipf.N); prid++ {
		matched := zipf.Int(zc, int(prid)) <= 10
		if (res.ProbeFW[prid] >= 0) != matched {
			t.Fatalf("probe fw at rid %d inconsistent with filter", prid)
		}
	}
}

func TestPKFKJoinMaterialize(t *testing.T) {
	gids, zipf := pkfkFixture(t)
	res, err := HashJoinPKFK(gids, "id", nil, zipf, "z", nil, JoinOpts{Dirs: CaptureBoth, Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out == nil || res.Out.N != res.OutN {
		t.Fatal("materialized output missing or wrong size")
	}
	// Join columns must agree on every output row; colliding "id" column
	// names get relation prefixes.
	idc := res.Out.Schema.MustCol("gids.id")
	zcol := res.Out.Schema.MustCol("z")
	for i := 0; i < res.Out.N; i++ {
		if res.Out.Int(idc, i) != res.Out.Int(zcol, i) {
			t.Fatalf("row %d: join keys disagree", i)
		}
	}
}

func TestPKFKJoinMaterializeWithoutCapture(t *testing.T) {
	gids, zipf := pkfkFixture(t)
	res, err := HashJoinPKFK(gids, "id", nil, zipf, "z", nil, JoinOpts{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out == nil || res.Out.N != zipf.N {
		t.Fatal("baseline materialization wrong")
	}
	if res.BuildBW != nil || res.ProbeFW != nil {
		t.Fatal("baseline must not capture")
	}
}

func mnFixture(t *testing.T) (*storage.Relation, *storage.Relation) {
	t.Helper()
	left := datagen.Zipf("zipf1", 1.0, 300, 10, 3)
	right := datagen.Zipf("zipf2", 1.0, 800, 100, 4)
	return left, right
}

func mnLineageFromResult(res MNResult) [][2]Rid {
	out := make([][2]Rid, res.OutN)
	for o := 0; o < res.OutN; o++ {
		out[o] = [2]Rid{res.LeftBW[o], res.RightBW[o]}
	}
	return out
}

func TestMNJoinVariantsMatchNaive(t *testing.T) {
	left, right := mnFixture(t)
	want := naiveJoin(left, "z", right, "z")
	sortPairs(want)
	for _, variant := range []MNVariant{MNInject, MNDeferForward, MNDefer} {
		res, err := HashJoinMN(left, "z", right, "z", variant, JoinOpts{Dirs: CaptureBoth})
		if err != nil {
			t.Fatal(err)
		}
		if res.OutN != len(want) {
			t.Fatalf("variant %d: OutN = %d, want %d", variant, res.OutN, len(want))
		}
		got := mnLineageFromResult(res)
		sortPairs(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("variant %d: join pairs differ from naive", variant)
		}
	}
}

func TestMNJoinVariantsProduceIdenticalIndexes(t *testing.T) {
	left, right := mnFixture(t)
	inj, _ := HashJoinMN(left, "z", right, "z", MNInject, JoinOpts{Dirs: CaptureBoth})
	dfw, _ := HashJoinMN(left, "z", right, "z", MNDeferForward, JoinOpts{Dirs: CaptureBoth})
	def, _ := HashJoinMN(left, "z", right, "z", MNDefer, JoinOpts{Dirs: CaptureBoth})

	if !reflect.DeepEqual(inj.LeftBW, dfw.LeftBW) || !reflect.DeepEqual(inj.LeftBW, def.LeftBW) {
		t.Fatal("left backward arrays differ across variants")
	}
	if !reflect.DeepEqual(inj.RightBW, dfw.RightBW) || !reflect.DeepEqual(inj.RightBW, def.RightBW) {
		t.Fatal("right backward arrays differ across variants")
	}
	for r := 0; r < left.N; r++ {
		a, b, c := inj.LeftFW.List(r), dfw.LeftFW.List(r), def.LeftFW.List(r)
		sortRids(a)
		sortRids(b)
		sortRids(c)
		if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
			t.Fatalf("left forward lists differ at rid %d", r)
		}
	}
	for r := 0; r < right.N; r++ {
		if !reflect.DeepEqual(inj.RightFW.List(r), dfw.RightFW.List(r)) {
			t.Fatalf("right forward lists differ at rid %d", r)
		}
	}
}

func sortRids(r []Rid) {
	sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
}

func TestMNJoinLineageInvariants(t *testing.T) {
	left, right := mnFixture(t)
	res, err := HashJoinMN(left, "z", right, "z", MNInject, JoinOpts{Dirs: CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	// Every forward edge must be confirmed by the backward arrays.
	for r := 0; r < left.N; r++ {
		for _, o := range res.LeftFW.List(r) {
			if res.LeftBW[o] != Rid(r) {
				t.Fatalf("left fw/bw mismatch: rid %d, out %d", r, o)
			}
		}
	}
	for r := 0; r < right.N; r++ {
		for _, o := range res.RightFW.List(r) {
			if res.RightBW[o] != Rid(r) {
				t.Fatalf("right fw/bw mismatch: rid %d, out %d", r, o)
			}
		}
	}
	if res.LeftFW.Cardinality() != res.OutN || res.RightFW.Cardinality() != res.OutN {
		t.Fatal("forward cardinalities must equal output count")
	}
}

func TestMNJoinDeferPreallocatesExactly(t *testing.T) {
	left, right := mnFixture(t)
	res, err := HashJoinMN(left, "z", right, "z", MNDefer, JoinOpts{Dirs: CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < left.N; r++ {
		l := res.LeftFW.List(r)
		if cap(l) != len(l) {
			t.Fatalf("defer left forward at rid %d: cap %d != len %d", r, cap(l), len(l))
		}
	}
}

func TestMNJoinMaterializeWithoutBackward(t *testing.T) {
	left, right := mnFixture(t)
	res, err := HashJoinMN(left, "z", right, "z", MNInject, JoinOpts{Dirs: CaptureForward, Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out == nil || res.Out.N != res.OutN {
		t.Fatal("materialization without backward capture failed")
	}
}

func TestJoinUnknownColumnErrors(t *testing.T) {
	left, right := mnFixture(t)
	if _, err := HashJoinPKFK(left, "nope", nil, right, "z", nil, JoinOpts{}); err == nil {
		t.Error("unknown build key should error")
	}
	if _, err := HashJoinMN(left, "z", right, "nope", MNInject, JoinOpts{}); err == nil {
		t.Error("unknown probe key should error")
	}
	if _, err := HashJoinMN(left, "v", right, "z", MNInject, JoinOpts{}); err == nil {
		t.Error("non-int join key should error")
	}
}
