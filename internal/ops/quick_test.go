package ops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smoke/internal/datagen"
	"smoke/internal/expr"
)

// Property: for any threshold, Inject selection's indexes are mutually
// consistent and agree with direct predicate evaluation.
func TestSelectionLineageProperty(t *testing.T) {
	rel := datagen.Zipf("zipf", 0.7, 3000, 20, 23)
	v := rel.Cols[rel.Schema.MustCol("v")].Floats
	f := func(raw uint8) bool {
		threshold := float64(raw) / 2 // 0..127.5 covers empty..full selection
		pred, err := expr.CompilePred(expr.LtE(expr.C("v"), expr.F(threshold)), rel, nil)
		if err != nil {
			return false
		}
		res := Select(rel.N, pred, SelectOpts{Mode: Inject, Dirs: CaptureBoth})
		// fw and bw are inverse; membership agrees with the predicate.
		for i := int32(0); i < int32(rel.N); i++ {
			selected := v[i] < threshold
			if selected != (res.FW[i] >= 0) {
				return false
			}
			if selected && res.BW[res.FW[i]] != i {
				return false
			}
		}
		return len(res.BW) == countTrue(v, threshold)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func countTrue(v []float64, threshold float64) int {
	n := 0
	for _, x := range v {
		if x < threshold {
			n++
		}
	}
	return n
}

// Property: for random zipf parameters and modes, group-by lineage partitions
// the input and the group count column equals each list's length.
func TestGroupByLineagePartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(3000)
		g := 1 + rng.Intn(50)
		theta := rng.Float64() * 1.5
		rel := datagen.Zipf("zipf", theta, n, g, seed)
		mode := Inject
		if seed%2 == 0 {
			mode = Defer
		}
		res, err := HashAgg(rel, nil, GroupBySpec{
			Keys: []string{"z"},
			Aggs: []AggSpec{{Fn: Count, Name: "c"}},
		}, AggOpts{Mode: mode, Dirs: CaptureBoth})
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		cc := res.Out.Schema.MustCol("c")
		for slot := 0; slot < res.BW.Len(); slot++ {
			l := res.BW.List(slot)
			if int64(len(l)) != res.Out.Int(cc, slot) {
				return false
			}
			for _, rid := range l {
				if seen[rid] || res.FW[rid] != Rid(slot) {
					return false
				}
				seen[rid] = true
			}
		}
		for _, ok := range seen {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: M:N join output cardinality equals the sum over keys of
// |left(k)| * |right(k)|, and forward cardinalities match it on both sides.
func TestMNJoinCardinalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lg := 1 + rng.Intn(20)
		left := datagen.Zipf("l", 1.0, 100+rng.Intn(400), lg, seed)
		right := datagen.Zipf("r", 1.0, 100+rng.Intn(400), 1+rng.Intn(40), seed+1)
		res, err := HashJoinMN(left, "z", right, "z", MNVariant(seed%3), JoinOpts{Dirs: CaptureBoth})
		if err != nil {
			return false
		}
		lCounts := map[int64]int{}
		for _, k := range left.Cols[1].Ints {
			lCounts[k]++
		}
		want := 0
		for _, k := range right.Cols[1].Ints {
			want += lCounts[k]
		}
		return res.OutN == want &&
			res.LeftFW.Cardinality() == want &&
			res.RightFW.Cardinality() == want &&
			len(res.LeftBW) == want && len(res.RightBW) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
