package ops

import (
	"smoke/internal/lineage"
	"smoke/internal/pool"
	"smoke/internal/storage"
)

// Morsel-parallel hash aggregation: the paper-style two-phase plan. Phase 1
// splits the input into contiguous row-range partitions; each worker runs the
// unmodified serial kernel (aggState.processRow) against its own hash table
// and appends rids into its own partition-local lists — no shared-state
// writes in the hot loop beyond rid-disjoint forward-array slots. Phase 2
// merges the partition tables in partition order: because a group's first
// global occurrence lies in the first partition that contains it, the merged
// group discovery order — and therefore the output relation, the group
// counts, and every backward rid list — is element-for-element identical to
// the workers=1 run.

// parallelizableAgg reports whether the two-phase merge covers the requested
// options. Observe (group-by push-down cube building) is stateful and
// order-sensitive, and data-skipping partition codes are only stable across
// partition-local dictionaries for single TInt attributes (string codes are
// assigned in discovery order, which differs per partition); those paths run
// serial.
func parallelizableAgg(in *storage.Relation, opts AggOpts) bool {
	if opts.Observe != nil {
		return false
	}
	if len(opts.PartitionBy) == 0 {
		return true
	}
	if len(opts.PartitionBy) > 1 {
		return false
	}
	c := in.Schema.Col(opts.PartitionBy[0])
	return c >= 0 && in.Schema[c].Type == storage.TInt
}

func parHashAgg(in *storage.Relation, inRids []Rid, spec GroupBySpec, opts AggOpts) (AggResult, error) {
	n := in.N
	if inRids != nil {
		n = len(inRids)
	}
	ranges := pool.Split(n, opts.Workers)

	// Partition-local states compile up front (serially) so expression
	// errors surface deterministically before any kernel runs. CountsByKey
	// is dropped for the locals: the counts are global, so every partition
	// would preallocate each group's list at full-table cardinality
	// (workers × total-rid memory); the merge builds an exactly-sized index
	// from the local list lengths regardless.
	popts := opts
	popts.CountsByKey = nil
	sts := make([]*aggState, len(ranges))
	for p := range sts {
		st, err := newAggState(in, spec, popts)
		if err != nil {
			return AggResult{}, err
		}
		sts[p] = st
	}

	wantBW := opts.Mode != None && opts.Dirs.Backward()
	wantFW := opts.Mode != None && opts.Dirs.Forward()
	dup := opts.DupRids && inRids != nil
	var fw []Rid
	var posSlots []Rid
	if wantFW {
		// One shared forward array: partitions own disjoint rid sets, so
		// each writes its rows' entries (with partition-local group slots,
		// rebased to global slots after the merge) without conflicts.
		fw = newForwardArray(in.N, inRids != nil)
		switch {
		case dup:
			// Duplicate rid sets (lineage-consuming queries) break the
			// disjointness assumption: the same rid in two partitions would
			// be rebased by both. Kernels instead record each input
			// *position*'s partition-local slot (positions are disjoint by
			// construction), and the forward array fills after the merge.
			posSlots = make([]Rid, len(inRids))
		case opts.Mode == Inject:
			for _, st := range sts {
				st.fw = fw
			}
		}
	}
	deferBWs := make([]*lineage.RidIndex, len(ranges))
	// Compressed capture: each partition encodes its own local lists after
	// its kernel finishes (inside the worker, so encoding parallelizes), and
	// the merge concatenates the encoded lists per global slot without
	// re-encoding (lineage.MergeEncodedBySlot).
	encodeLocal := opts.Compress && wantBW && sts[0].partKey == nil
	encBWs := make([]*lineage.EncodedIndex, len(ranges))

	opts.Pool.RunSplit(ranges, func(part, lo, hi int) {
		st := sts[part]
		var injectPos []Rid
		if posSlots != nil && opts.Mode == Inject {
			injectPos = posSlots
		}
		st.processRows(inRids, lo, hi, injectPos)
		if opts.Mode != Defer {
			if encodeLocal && opts.Mode == Inject {
				encBWs[part] = lineage.EncodeLists(st.groupRids)
			}
			return
		}
		// Partition-local Zγ pass (§3.2.3): the local counts are exact for
		// the local range, so the local backward lists preallocate exactly
		// and never resize — Defer keeps its no-growth property per morsel.
		var bw *lineage.RidIndex
		if wantBW {
			if st.partKey != nil {
				st.partMaps = make([]map[int64][]Rid, st.nGroups)
			} else {
				c32 := make([]int32, st.nGroups)
				for i, c := range st.counts {
					c32[i] = int32(c)
				}
				bw = lineage.NewRidIndexWithCounts(c32)
			}
		}
		fill := func(pos int, rid Rid) {
			slot := st.probeSlot(rid)
			if wantBW && (st.pdFilter == nil || st.pdFilter(rid)) {
				if st.partKey != nil {
					st.captureBackward(slot, rid)
				} else {
					bw.AppendFast(int(slot), rid)
				}
			}
			if posSlots != nil {
				posSlots[pos] = Rid(slot)
			} else if fw != nil {
				fw[rid] = slot
			}
		}
		if st.deferFillable() {
			var fwLocal []Rid
			if posSlots == nil {
				fwLocal = fw
			}
			st.deferFillBatched(inRids, lo, hi, bw, fwLocal, posSlots)
		} else if inRids == nil {
			for rid := int32(lo); rid < int32(hi); rid++ {
				fill(-1, rid)
			}
		} else {
			for i, rid := range inRids[lo:hi] {
				fill(lo+i, rid)
			}
		}
		deferBWs[part] = bw
		if encodeLocal && bw != nil {
			encBWs[part] = lineage.EncodeRidIndex(bw)
		}
	})

	// Phase 2: merge partition tables in partition order. The merged state
	// carries no capture options — indexes are stitched from the locals.
	merged, err := newAggState(in, spec, AggOpts{Params: opts.Params})
	if err != nil {
		return AggResult{}, err
	}
	slotMaps := make([][]Rid, len(sts))
	for p, st := range sts {
		sm := make([]Rid, st.nGroups)
		for s := int32(0); s < st.nGroups; s++ {
			g := merged.lookupSlot(st.repRids[s])
			sm[s] = Rid(g)
			merged.counts[g] += st.counts[s]
			for i := range merged.accs {
				merged.accs[i].mergeFrom(g, &st.accs[i], s)
			}
		}
		slotMaps[p] = sm
	}
	nG := int(merged.nGroups)

	res := AggResult{Out: merged.materialize(spec), GroupCounts: merged.counts}
	if wantBW {
		if sts[0].partKey != nil {
			parts := make([][]map[int64][]Rid, len(sts))
			for p, st := range sts {
				parts[p] = st.partMaps
			}
			res.BWPart = lineage.MergePartitionMaps(parts, slotMaps, nG, nil)
		} else if encodeLocal {
			res.BWEnc = lineage.MergeEncodedBySlot(encBWs, slotMaps, nG)
		} else if opts.Mode == Inject {
			lists := make([][][]Rid, len(sts))
			for p, st := range sts {
				lists[p] = st.groupRids
			}
			res.BW = lineage.MergeListsBySlot(lists, slotMaps, nG)
		} else {
			res.BW = lineage.MergeIndexesBySlot(deferBWs, slotMaps, nG)
		}
	}
	if wantFW {
		if posSlots != nil {
			// Duplicate-tolerant fill: one pass rebases each position's
			// local slot through its partition's map and writes its rid's
			// entry. Duplicates of a rid all land on the same merged group
			// (same key), so every write stores the same value and the
			// result is identical to the serial forward array.
			for _, r := range ranges {
				sm := slotMaps[r.Part]
				for pos := r.Lo; pos < r.Hi; pos++ {
					fw[inRids[pos]] = sm[posSlots[pos]]
				}
			}
		} else {
			// Rebase partition-local slots to global slots, in parallel:
			// each partition revisits exactly the rids it wrote.
			opts.Pool.RunSplit(ranges, func(part, lo, hi int) {
				if inRids == nil {
					lineage.SlotRebase(fw, lo, hi, slotMaps[part])
				} else {
					lineage.SlotRebaseRids(fw, inRids[lo:hi], slotMaps[part])
				}
			})
		}
		res.FW = fw
		if opts.Compress {
			if e := lineage.EncodeArr(fw); e != nil {
				res.FWEnc = e
				res.FW = nil
			}
		}
	}
	return res, nil
}
