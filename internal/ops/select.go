package ops

import (
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/pool"
	"smoke/internal/storage"
)

// SelectOpts configures selection instrumentation.
type SelectOpts struct {
	Mode CaptureMode
	Dirs Directions
	// EstimatedSelectivity, when > 0, preallocates the backward rid array to
	// ceil(n * estimate) entries (the Smoke-I+EC variant of Appendix G.1).
	// Overestimating is cheap; underestimating falls back to resizing.
	EstimatedSelectivity float64
	// Workers > 1 runs the selection morsel-parallel: the input range splits
	// into contiguous partitions, each executed by the range kernel with
	// partition-local capture, merged in partition order (identical output
	// and lineage to workers=1). Workers <= 1 is the serial specialization.
	Workers int
	// Pool schedules the partition kernels; nil runs them inline.
	Pool *pool.Pool
}

// SelectResult is the output of an instrumented selection. Selection is
// 1-to-1 in both directions (§3.2.2): backward lineage is a rid array whose
// i-th entry is the input rid of output record i, and forward lineage is a
// rid array over the input with -1 marking filtered records.
//
// OutRids always holds the selected rids in input order — the engine needs
// them to materialize the output regardless of capture. Under Inject, BW
// aliases OutRids (the rid list is reused as the backward index, principle
// P4) but is built with the lineage growth policy.
//
// Invariant: under Mode None, OutRids is non-nil even when nothing matched
// (callers pass it as a rid subset to interfaces where nil means "all
// rows"). Serial and parallel runs return the same shape in every mode.
type SelectResult struct {
	OutRids []Rid
	BW      []Rid
	FW      []Rid
}

// selectRange is the selection range kernel: it scans rids [lo, hi), returns
// the local output/backward arrays (absolute input rids), and writes forward
// entries into the shared, rid-addressed fw array (nil when forward capture
// is off). Forward values are partition-local output positions; the driver
// rebases them by the partition's global output offset. Partitions own
// disjoint [lo, hi) ranges, so the fw writes never conflict.
func selectRange(lo, hi int, pred expr.Pred, opts SelectOpts, fw []Rid) SelectResult {
	var res SelectResult
	switch {
	case opts.Mode == None:
		// Plain execution: collect output rids with Go's native growth.
		out := make([]Rid, 0, 16)
		for i := int32(lo); i < int32(hi); i++ {
			if pred(i) {
				out = append(out, i)
			}
		}
		res.OutRids = out
	default:
		// Inject (§3.2.2): ctri is the loop variable, ctro is len(bw).
		var bw []Rid
		if opts.Dirs.Backward() {
			if opts.EstimatedSelectivity > 0 {
				est := int(float64(hi-lo)*opts.EstimatedSelectivity) + 1
				bw = make([]Rid, 0, est)
			}
		}
		switch {
		case opts.Dirs.Backward() && opts.Dirs.Forward():
			for i := int32(lo); i < int32(hi); i++ {
				if pred(i) {
					fw[i] = Rid(len(bw))
					bw = lineage.AppendRid(bw, i)
				} else {
					fw[i] = -1
				}
			}
		case opts.Dirs.Backward():
			for i := int32(lo); i < int32(hi); i++ {
				if pred(i) {
					bw = lineage.AppendRid(bw, i)
				}
			}
		case opts.Dirs.Forward():
			// Forward-only capture still needs the output rids to
			// materialize the result, but they can use native growth.
			out := make([]Rid, 0, 16)
			for i := int32(lo); i < int32(hi); i++ {
				if pred(i) {
					fw[i] = Rid(len(out))
					out = append(out, i)
				} else {
					fw[i] = -1
				}
			}
			res.OutRids = out
			res.FW = fw
			return res
		default:
			// Capture requested but both directions pruned: plain execution.
			out := make([]Rid, 0, 16)
			for i := int32(lo); i < int32(hi); i++ {
				if pred(i) {
					out = append(out, i)
				}
			}
			res.OutRids = out
			return res
		}
		res.OutRids = bw
		res.BW = bw
		res.FW = fw
	}
	return res
}

// Select runs a selection over rids [0, n) of a relation. The predicate is a
// compiled closure; the loop is the paper's "if condition in a for loop".
// Defer is not implemented for selection because it is strictly inferior to
// Inject (§3.2.2). With opts.Workers > 1 the scan runs morsel-parallel and
// the merged result is identical to the serial one.
func Select(n int, pred expr.Pred, opts SelectOpts) SelectResult {
	wantFW := opts.Mode != None && opts.Dirs.Forward()
	if opts.Workers <= 1 || n < 2 {
		var fw []Rid
		if wantFW {
			// The forward rid array is pre-allocated at input cardinality.
			fw = make([]Rid, n)
		}
		return selectRange(0, n, pred, opts, fw)
	}

	var fw []Rid
	if wantFW {
		fw = make([]Rid, n)
	}
	ranges := pool.Split(n, opts.Workers)
	locals := make([]SelectResult, len(ranges))
	opts.Pool.RunSplit(ranges, func(part, lo, hi int) {
		locals[part] = selectRange(lo, hi, pred, opts, fw)
	})

	// Merge in partition order: output/backward arrays concatenate (input
	// order is preserved because partitions are contiguous and ordered), and
	// forward entries rebase by each partition's output offset.
	var res SelectResult
	outParts := make([][]Rid, len(locals))
	for p := range locals {
		outParts[p] = locals[p].OutRids
	}
	res.OutRids = lineage.ConcatRidArrays(outParts)
	if res.OutRids == nil {
		// Zero matches: ConcatRidArrays returns nil, but nil and empty
		// differ at downstream interfaces (nil inRids means "all rows" to
		// HashAgg). Partition 0 ran the same kernel over its range, so its
		// empty result has exactly the serial kernel's shape for this mode.
		res.OutRids = locals[0].OutRids
	}
	if opts.Mode != None && opts.Dirs.Backward() {
		res.BW = res.OutRids // BW aliases OutRids, as in the serial kernel
	}
	if wantFW {
		off := Rid(0)
		for p, r := range ranges {
			lineage.OffsetRebase(fw, r.Lo, r.Hi, off)
			off += Rid(len(locals[p].OutRids))
		}
		res.FW = fw
	}
	return res
}

// SelectMaterialize runs Select and gathers the selected rows into a new
// relation (the SELECT * microbenchmark shape of Appendix G.1).
func SelectMaterialize(in *storage.Relation, pred expr.Pred, opts SelectOpts) (*storage.Relation, SelectResult) {
	res := Select(in.N, pred, opts)
	return in.Gather(in.Name+"_sel", res.OutRids), res
}
