package ops

import (
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/storage"
)

// SelectOpts configures selection instrumentation.
type SelectOpts struct {
	Mode CaptureMode
	Dirs Directions
	// EstimatedSelectivity, when > 0, preallocates the backward rid array to
	// ceil(n * estimate) entries (the Smoke-I+EC variant of Appendix G.1).
	// Overestimating is cheap; underestimating falls back to resizing.
	EstimatedSelectivity float64
}

// SelectResult is the output of an instrumented selection. Selection is
// 1-to-1 in both directions (§3.2.2): backward lineage is a rid array whose
// i-th entry is the input rid of output record i, and forward lineage is a
// rid array over the input with -1 marking filtered records.
//
// OutRids always holds the selected rids in input order — the engine needs
// them to materialize the output regardless of capture. Under Inject, BW
// aliases OutRids (the rid list is reused as the backward index, principle
// P4) but is built with the lineage growth policy.
type SelectResult struct {
	OutRids []Rid
	BW      []Rid
	FW      []Rid
}

// Select runs a selection over rids [0, n) of a relation. The predicate is a
// compiled closure; the loop is the paper's "if condition in a for loop".
// Defer is not implemented for selection because it is strictly inferior to
// Inject (§3.2.2).
func Select(n int, pred expr.Pred, opts SelectOpts) SelectResult {
	var res SelectResult
	switch {
	case opts.Mode == None:
		// Plain execution: collect output rids with Go's native growth.
		out := make([]Rid, 0, 16)
		for i := int32(0); i < int32(n); i++ {
			if pred(i) {
				out = append(out, i)
			}
		}
		res.OutRids = out
	default:
		// Inject (§3.2.2): ctri is the loop variable, ctro is len(bw).
		var bw []Rid
		if opts.Dirs.Backward() {
			if opts.EstimatedSelectivity > 0 {
				est := int(float64(n)*opts.EstimatedSelectivity) + 1
				bw = make([]Rid, 0, est)
			}
		}
		var fw []Rid
		if opts.Dirs.Forward() {
			// The forward rid array is pre-allocated at input cardinality.
			fw = make([]Rid, n)
		}
		switch {
		case opts.Dirs.Backward() && opts.Dirs.Forward():
			for i := int32(0); i < int32(n); i++ {
				if pred(i) {
					fw[i] = Rid(len(bw))
					bw = lineage.AppendRid(bw, i)
				} else {
					fw[i] = -1
				}
			}
		case opts.Dirs.Backward():
			for i := int32(0); i < int32(n); i++ {
				if pred(i) {
					bw = lineage.AppendRid(bw, i)
				}
			}
		case opts.Dirs.Forward():
			// Forward-only capture still needs the output rids to
			// materialize the result, but they can use native growth.
			out := make([]Rid, 0, 16)
			for i := int32(0); i < int32(n); i++ {
				if pred(i) {
					fw[i] = Rid(len(out))
					out = append(out, i)
				} else {
					fw[i] = -1
				}
			}
			res.OutRids = out
			res.FW = fw
			return res
		default:
			// Capture requested but both directions pruned: plain execution.
			out := make([]Rid, 0, 16)
			for i := int32(0); i < int32(n); i++ {
				if pred(i) {
					out = append(out, i)
				}
			}
			res.OutRids = out
			return res
		}
		res.OutRids = bw
		res.BW = bw
		res.FW = fw
	}
	return res
}

// SelectMaterialize runs Select and gathers the selected rows into a new
// relation (the SELECT * microbenchmark shape of Appendix G.1).
func SelectMaterialize(in *storage.Relation, pred expr.Pred, opts SelectOpts) (*storage.Relation, SelectResult) {
	res := Select(in.N, pred, opts)
	return in.Gather(in.Name+"_sel", res.OutRids), res
}
