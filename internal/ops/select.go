package ops

import (
	"math/bits"

	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/pool"
	"smoke/internal/scratch"
	"smoke/internal/storage"
)

// SelectOpts configures selection instrumentation.
type SelectOpts struct {
	Mode CaptureMode
	Dirs Directions
	// EstimatedSelectivity is retained for API compatibility with the
	// Smoke-I+EC variant of Appendix G.1. The two-pass bitmap kernel sizes
	// the output rid array exactly from the bitmap popcount, so the estimate
	// no longer affects execution: every mode now has the exact-preallocation
	// behavior the estimate used to approximate.
	EstimatedSelectivity float64
	// Kernel, when non-nil, is the vectorized predicate bit-kernel compiled
	// by expr.CompileBitKernel (column-vs-constant comparisons and their
	// AND/OR/NOT combinations). When nil, Select wraps the row predicate in
	// expr.PredKernel — the two-pass shape is kept either way.
	Kernel expr.BitKernel
	// Workers > 1 runs the selection morsel-parallel: the input range splits
	// into contiguous partitions, each executed by the range kernel with
	// partition-local capture, merged in partition order (identical output
	// and lineage to workers=1). Workers <= 1 is the serial specialization.
	Workers int
	// Pool schedules the partition kernels; nil runs them inline.
	Pool *pool.Pool
}

// SelectResult is the output of an instrumented selection. Selection is
// 1-to-1 in both directions (§3.2.2): backward lineage is a rid array whose
// i-th entry is the input rid of output record i, and forward lineage is a
// rid array over the input with -1 marking filtered records.
//
// OutRids always holds the selected rids in input order — the engine needs
// them to materialize the output regardless of capture. Under Inject, BW
// aliases OutRids (the rid list is reused as the backward index, principle
// P4); the two-pass kernel allocates it exactly once at the popcounted
// match cardinality, so capture adds no growth cost over plain execution.
//
// Invariant: under Mode None, OutRids is non-nil even when nothing matched
// (callers pass it as a rid subset to interfaces where nil means "all
// rows"). Serial and parallel runs return the same shape in every mode.
type SelectResult struct {
	OutRids []Rid
	BW      []Rid
	FW      []Rid
}

// selectRange is the selection range kernel, in two passes over [lo, hi):
//
//  1. The predicate bit-kernel fills a pooled bitmap — one bit per row, no
//     branches on the match outcome, no per-row closure when a vectorized
//     kernel applies.
//  2. The bitmap popcount sizes the output rid array in a single exact
//     allocation; set bits materialize rids (and forward positions) with a
//     trailing-zeros scan.
//
// Forward entries are partition-local output positions written into the
// shared rid-addressed fw array (nil when forward capture is off); the
// driver rebases them by the partition's global output offset. Partitions
// own disjoint [lo, hi) ranges, so the fw writes never conflict.
func selectRange(lo, hi int, kern expr.BitKernel, opts SelectOpts, fw []Rid) SelectResult {
	var res SelectResult
	n := hi - lo
	wantBW := opts.Mode != None && opts.Dirs.Backward()
	if n <= 0 {
		res.OutRids = []Rid{}
		if wantBW {
			res.BW = res.OutRids
		}
		res.FW = fw
		return res
	}

	// Pass 1: predicate bitmap.
	words := (n + 63) / 64
	bm := scratch.Words(words)
	kern(int32(lo), int32(hi), bm, expr.KernSet)

	// Pass 2: popcount-sized single-allocation materialization.
	count := 0
	for _, w := range bm {
		count += bits.OnesCount64(w)
	}
	out := make([]Rid, count)
	if fw != nil {
		for i := lo; i < hi; i++ {
			fw[i] = -1
		}
	}
	idx := 0
	for wi, w := range bm {
		base := lo + wi*64
		for w != 0 {
			r := Rid(base + bits.TrailingZeros64(w))
			out[idx] = r
			if fw != nil {
				fw[r] = Rid(idx)
			}
			idx++
			w &= w - 1
		}
	}
	scratch.PutWords(bm)

	res.OutRids = out
	if wantBW {
		res.BW = out // BW aliases OutRids (P4)
	}
	res.FW = fw
	return res
}

// kernelFor resolves the predicate kernel: the vectorized one when the
// caller compiled it, the generic closure wrapper otherwise.
func kernelFor(pred expr.Pred, opts SelectOpts) expr.BitKernel {
	if opts.Kernel != nil {
		return opts.Kernel
	}
	return expr.PredKernel(pred)
}

// Select runs a selection over rids [0, n) of a relation. The predicate is a
// compiled closure; with opts.Kernel set it vectorizes over the column data
// instead (see expr.CompileBitKernel). Defer is not implemented for
// selection because it is strictly inferior to Inject (§3.2.2). With
// opts.Workers > 1 the scan runs morsel-parallel and the merged result is
// identical to the serial one.
func Select(n int, pred expr.Pred, opts SelectOpts) SelectResult {
	kern := kernelFor(pred, opts)
	wantFW := opts.Mode != None && opts.Dirs.Forward()
	if opts.Workers <= 1 || n < 2 {
		var fw []Rid
		if wantFW {
			// The forward rid array is pre-allocated at input cardinality.
			fw = make([]Rid, n)
		}
		return selectRange(0, n, kern, opts, fw)
	}

	var fw []Rid
	if wantFW {
		fw = make([]Rid, n)
	}
	ranges := pool.Split(n, opts.Workers)
	locals := make([]SelectResult, len(ranges))
	opts.Pool.RunSplit(ranges, func(part, lo, hi int) {
		locals[part] = selectRange(lo, hi, kern, opts, fw)
	})

	// Merge in partition order: output/backward arrays concatenate (input
	// order is preserved because partitions are contiguous and ordered), and
	// forward entries rebase by each partition's output offset.
	var res SelectResult
	outParts := make([][]Rid, len(locals))
	for p := range locals {
		outParts[p] = locals[p].OutRids
	}
	res.OutRids = lineage.ConcatRidArrays(outParts)
	if res.OutRids == nil {
		// Zero matches: ConcatRidArrays returns nil, but nil and empty
		// differ at downstream interfaces (nil inRids means "all rows" to
		// HashAgg). Partition 0 ran the same kernel over its range, so its
		// empty result has exactly the serial kernel's shape for this mode.
		res.OutRids = locals[0].OutRids
	}
	if opts.Mode != None && opts.Dirs.Backward() {
		res.BW = res.OutRids // BW aliases OutRids, as in the serial kernel
	}
	if wantFW {
		off := Rid(0)
		for p, r := range ranges {
			lineage.OffsetRebase(fw, r.Lo, r.Hi, off)
			off += Rid(len(locals[p].OutRids))
		}
		res.FW = fw
	}
	return res
}

// SelectMaterialize runs Select and gathers the selected rows into a new
// relation (the SELECT * microbenchmark shape of Appendix G.1).
func SelectMaterialize(in *storage.Relation, pred expr.Pred, opts SelectOpts) (*storage.Relation, SelectResult) {
	res := Select(in.N, pred, opts)
	return in.Gather(in.Name+"_sel", res.OutRids), res
}
