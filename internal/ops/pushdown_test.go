package ops

import (
	"reflect"
	"testing"

	"smoke/internal/datagen"
	"smoke/internal/expr"
	"smoke/internal/storage"
)

func pushdownFixture() *storage.Relation {
	rel := storage.NewEmpty("t", storage.Schema{
		{Name: "z", Type: storage.TInt},
		{Name: "mode", Type: storage.TString},
		{Name: "v", Type: storage.TFloat},
	})
	modes := []string{"MAIL", "SHIP", "AIR"}
	for i := 0; i < 300; i++ {
		rel.AppendRow(1+i%3, modes[i%3], float64(i%100))
	}
	return rel
}

func countSpec() GroupBySpec {
	return GroupBySpec{Keys: []string{"z"}, Aggs: []AggSpec{{Fn: Count, Name: "c"}}}
}

func TestSelectionPushdownPrunesBackward(t *testing.T) {
	rel := pushdownFixture()
	for _, mode := range []CaptureMode{Inject, Defer} {
		res, err := HashAgg(rel, nil, countSpec(), AggOpts{
			Mode: mode, Dirs: CaptureBoth,
			PushdownFilter: expr.LtE(expr.C("v"), expr.F(50)),
		})
		if err != nil {
			t.Fatal(err)
		}
		// Query results unchanged.
		if res.Out.N != 3 {
			t.Fatalf("mode %v: groups = %d", mode, res.Out.N)
		}
		vcol := rel.Schema.MustCol("v")
		total := 0
		for slot := 0; slot < res.BW.Len(); slot++ {
			for _, rid := range res.BW.List(slot) {
				if rel.Float(vcol, int(rid)) >= 50 {
					t.Fatalf("mode %v: filtered-out rid %d captured", mode, rid)
				}
				total++
			}
		}
		want := 0
		for i := 0; i < rel.N; i++ {
			if rel.Float(vcol, i) < 50 {
				want++
			}
		}
		if total != want {
			t.Fatalf("mode %v: captured %d rids, want %d", mode, total, want)
		}
	}
}

func TestDataSkippingPartitionsBackward(t *testing.T) {
	rel := pushdownFixture()
	for _, mode := range []CaptureMode{Inject, Defer} {
		res, err := HashAgg(rel, nil, countSpec(), AggOpts{
			Mode: mode, Dirs: CaptureBoth,
			PartitionBy: []string{"mode"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.BW != nil {
			t.Fatalf("mode %v: plain BW should be replaced by partitioned index", mode)
		}
		if res.BWPart == nil {
			t.Fatalf("mode %v: partitioned index missing", mode)
		}
		// Partition (group, 'MAIL') holds exactly the MAIL rids of the group.
		mcol := rel.Schema.MustCol("mode")
		zcol := rel.Schema.MustCol("z")
		attrs := []string{"mode"}
		pk, ok := PartitionKey(&res, rel, attrs, []any{"MAIL"})
		if !ok {
			t.Fatalf("mode %v: MAIL partition key not found", mode)
		}
		for slot := 0; slot < res.BWPart.Len(); slot++ {
			key := res.Out.Int(0, slot)
			for _, rid := range res.BWPart.Partition(slot, pk) {
				if rel.Str(mcol, int(rid)) != "MAIL" || rel.Int(zcol, int(rid)) != key {
					t.Fatalf("mode %v: wrong rid in MAIL partition", mode)
				}
			}
		}
		// All partitions together cover the input.
		if res.BWPart.Cardinality() != rel.N {
			t.Fatalf("mode %v: partitions cover %d, want %d", mode, res.BWPart.Cardinality(), rel.N)
		}
	}
}

func TestDataSkippingIntAttribute(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 500, 5, 3)
	res, err := HashAgg(rel, nil, countSpec(), AggOpts{
		Mode: Inject, Dirs: CaptureBackward,
		PartitionBy: []string{"id"}, // int attribute: direct value keys
	})
	if err != nil {
		t.Fatal(err)
	}
	pk, ok := PartitionKey(&res, rel, []string{"id"}, []any{7})
	if !ok || pk != 7 {
		t.Fatalf("int partition key = %d, %v", pk, ok)
	}
}

func TestDataSkippingCompositeKey(t *testing.T) {
	rel := pushdownFixture()
	res, err := HashAgg(rel, nil, countSpec(), AggOpts{
		Mode: Inject, Dirs: CaptureBackward,
		PartitionBy: []string{"mode", "z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pk, ok := PartitionKey(&res, rel, []string{"mode", "z"}, []any{"MAIL", int64(1)})
	if !ok {
		t.Fatal("composite partition key not found")
	}
	mcol := rel.Schema.MustCol("mode")
	zcol := rel.Schema.MustCol("z")
	n := 0
	for slot := 0; slot < res.BWPart.Len(); slot++ {
		for _, rid := range res.BWPart.Partition(slot, pk) {
			if rel.Str(mcol, int(rid)) != "MAIL" || rel.Int(zcol, int(rid)) != 1 {
				t.Fatal("wrong rid in composite partition")
			}
			n++
		}
	}
	if n == 0 {
		t.Fatal("composite partition empty")
	}
	// Unseen combination reports not-found.
	if _, ok := PartitionKey(&res, rel, []string{"mode", "z"}, []any{"NOPE", int64(1)}); ok {
		t.Fatal("unseen combination should not resolve")
	}
}

func TestObserveHookSeesEveryRow(t *testing.T) {
	rel := pushdownFixture()
	type pair struct {
		slot int32
		rid  Rid
	}
	var seen []pair
	_, err := HashAgg(rel, nil, countSpec(), AggOpts{
		Mode: Inject, Dirs: CaptureBoth,
		Observe: func(slot int32, rid Rid) { seen = append(seen, pair{slot, rid}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != rel.N {
		t.Fatalf("observe saw %d rows, want %d", len(seen), rel.N)
	}
	// Observed rids must be 0..N-1 in scan order.
	for i, p := range seen {
		if p.rid != Rid(i) {
			t.Fatalf("observe order broken at %d", i)
		}
	}
}

func TestPushdownErrors(t *testing.T) {
	rel := pushdownFixture()
	if _, err := HashAgg(rel, nil, countSpec(), AggOpts{Mode: Inject, Dirs: CaptureBoth,
		PushdownFilter: expr.C("v")}); err == nil {
		t.Error("non-boolean push-down filter should error")
	}
	if _, err := HashAgg(rel, nil, countSpec(), AggOpts{Mode: Inject, Dirs: CaptureBoth,
		PartitionBy: []string{"nope"}}); err == nil {
		t.Error("unknown partition attribute should error")
	}
}

func TestPushdownCombination(t *testing.T) {
	// Selection push-down and data skipping compose: partitions only hold
	// filtered rids.
	rel := pushdownFixture()
	res, err := HashAgg(rel, nil, countSpec(), AggOpts{
		Mode: Inject, Dirs: CaptureBackward,
		PushdownFilter: expr.LtE(expr.C("v"), expr.F(50)),
		PartitionBy:    []string{"mode"},
	})
	if err != nil {
		t.Fatal(err)
	}
	vcol := rel.Schema.MustCol("v")
	for slot := 0; slot < res.BWPart.Len(); slot++ {
		for _, rid := range res.BWPart.All(slot) {
			if rel.Float(vcol, int(rid)) >= 50 {
				t.Fatal("partition contains filtered-out rid")
			}
		}
	}
}

var _ = reflect.DeepEqual
