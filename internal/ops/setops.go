package ops

import (
	"encoding/binary"
	"fmt"
	"math"

	"smoke/internal/lineage"
	"smoke/internal/storage"
)

// setKeyEnc encodes the set-operation attributes of a row into a byte key so
// rows from both input relations hash into one shared table regardless of
// column positions or types.
type setKeyEnc struct {
	rel  *storage.Relation
	cols []int
	buf  []byte
}

func newSetKeyEnc(rel *storage.Relation, attrs []string) (*setKeyEnc, error) {
	e := &setKeyEnc{rel: rel}
	for _, a := range attrs {
		c := rel.Schema.Col(a)
		if c < 0 {
			return nil, fmt.Errorf("ops: unknown set-op column %q in %s", a, rel.Name)
		}
		e.cols = append(e.cols, c)
	}
	return e, nil
}

func (e *setKeyEnc) encode(rid Rid) []byte {
	e.buf = e.buf[:0]
	for _, c := range e.cols {
		switch e.rel.Schema[c].Type {
		case storage.TInt:
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], uint64(e.rel.Cols[c].Ints[rid]))
			e.buf = append(e.buf, tmp[:]...)
		case storage.TFloat:
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(e.rel.Cols[c].Floats[rid]))
			e.buf = append(e.buf, tmp[:]...)
		case storage.TString:
			e.buf = append(e.buf, e.rel.Cols[c].Strs[rid]...)
			e.buf = append(e.buf, 0)
		}
	}
	return e.buf
}

// SetOpResult is the output of an instrumented set operation. Backward
// indexes are 1-to-N (an output value may come from many input duplicates);
// forward indexes are rid arrays with -1 for input records that produce no
// output (possible for intersection and difference).
type SetOpResult struct {
	Out *storage.Relation
	ABW *lineage.RidIndex
	BBW *lineage.RidIndex
	AFW []Rid
	BFW []Rid
}

// setEntry is a shared hash-table entry for set union/intersection/difference.
type setEntry struct {
	repA  Rid // representative rid in A (or -1)
	repB  Rid // representative rid in B (or -1)
	aRids []Rid
	bRids []Rid
	seenB bool
	oid   int32
}

type setTable struct {
	slots   map[string]int32
	entries []setEntry
}

func newSetTable() *setTable {
	return &setTable{slots: map[string]int32{}}
}

func (t *setTable) lookup(key []byte, insert bool) int32 {
	if s, ok := t.slots[string(key)]; ok {
		return s
	}
	if !insert {
		return -1
	}
	s := int32(len(t.entries))
	t.slots[string(key)] = s
	t.entries = append(t.entries, setEntry{repA: -1, repB: -1, oid: -1})
	return s
}

// setOutput materializes the output relation of a set operation: the set-op
// attributes of each emitted entry, gathered from whichever input holds its
// representative.
func setOutput(name string, a, b *storage.Relation, aAttrs, bAttrs []string, entries []setEntry, emitted []int32) *storage.Relation {
	schema := make(storage.Schema, len(aAttrs))
	aCols := make([]int, len(aAttrs))
	bCols := make([]int, len(bAttrs))
	for i := range aAttrs {
		aCols[i] = a.Schema.MustCol(aAttrs[i])
		bCols[i] = b.Schema.MustCol(bAttrs[i])
		schema[i] = storage.Field{Name: aAttrs[i], Type: a.Schema[aCols[i]].Type}
	}
	out := storage.NewRelation(name, schema, len(emitted))
	for i, slot := range emitted {
		e := &entries[slot]
		if e.repA >= 0 {
			for ci := range aCols {
				copyValue(out, ci, i, a, aCols[ci], int(e.repA))
			}
		} else {
			for ci := range bCols {
				copyValue(out, ci, i, b, bCols[ci], int(e.repB))
			}
		}
	}
	return out
}

func copyValue(dst *storage.Relation, dc, drow int, src *storage.Relation, sc, srow int) {
	switch src.Schema[sc].Type {
	case storage.TInt:
		dst.Cols[dc].Ints[drow] = src.Cols[sc].Ints[srow]
	case storage.TFloat:
		dst.Cols[dc].Floats[drow] = src.Cols[sc].Floats[srow]
	case storage.TString:
		dst.Cols[dc].Strs[drow] = src.Cols[sc].Strs[srow]
	}
}

// SetUnion computes A ∪ B (set semantics) over the given attribute lists
// (Appendix F.1). Inject keeps per-entry rid arrays during the build/append
// phases; Defer stores only an output id per entry and joins both inputs back
// against the hash table afterwards.
func SetUnion(a *storage.Relation, aAttrs []string, b *storage.Relation, bAttrs []string,
	mode CaptureMode, dirs Directions) (SetOpResult, error) {
	return setOp(a, aAttrs, b, bAttrs, mode, dirs, unionKind)
}

// SetIntersect computes A ∩ B (set semantics) over the given attribute lists
// (Appendix F.3).
func SetIntersect(a *storage.Relation, aAttrs []string, b *storage.Relation, bAttrs []string,
	mode CaptureMode, dirs Directions) (SetOpResult, error) {
	return setOp(a, aAttrs, b, bAttrs, mode, dirs, intersectKind)
}

// SetDiff computes A − B (set semantics) over the given attribute lists
// (Appendix F.5). Lineage is captured only for A: every output depends on the
// whole of B by definition, so per-record lineage to B is not materialized.
func SetDiff(a *storage.Relation, aAttrs []string, b *storage.Relation, bAttrs []string,
	mode CaptureMode, dirs Directions) (SetOpResult, error) {
	return setOp(a, aAttrs, b, bAttrs, mode, dirs, diffKind)
}

type setOpKind uint8

const (
	unionKind setOpKind = iota
	intersectKind
	diffKind
)

// setOpExec runs the execution phases of a set operation — hash-table build
// over A, probe/append over B, qualifying-entry scan, output materialization —
// with optional per-entry rid collection (collectRids is the Inject capture
// path; Defer and the parallel backfill leave the lists empty and probe the
// pinned table afterwards). It returns the result with Out set plus the
// pinned table for capture passes and the emitted slot list in output-id
// order.
func setOpExec(a *storage.Relation, aAttrs []string, b *storage.Relation, bAttrs []string,
	kind setOpKind) (SetOpResult, *setTable, []int32, error) {
	return setOpExecMode(a, aAttrs, b, bAttrs, kind, false)
}

func setOpExecMode(a *storage.Relation, aAttrs []string, b *storage.Relation, bAttrs []string,
	kind setOpKind, collectRids bool) (SetOpResult, *setTable, []int32, error) {

	if len(aAttrs) != len(bAttrs) {
		return SetOpResult{}, nil, nil, fmt.Errorf("ops: set operation attribute lists differ in length")
	}
	encA, err := newSetKeyEnc(a, aAttrs)
	if err != nil {
		return SetOpResult{}, nil, nil, err
	}
	encB, err := newSetKeyEnc(b, bAttrs)
	if err != nil {
		return SetOpResult{}, nil, nil, err
	}

	t := newSetTable()

	// Build phase over A (∪ht / ∩ht / \ht).
	for rid := int32(0); rid < int32(a.N); rid++ {
		slot := t.lookup(encA.encode(rid), true)
		e := &t.entries[slot]
		if e.repA < 0 {
			e.repA = rid
		}
		if collectRids {
			e.aRids = lineage.AppendRid(e.aRids, rid)
		}
	}
	// Probe/append phase over B (∪p / ∩p / \p).
	for rid := int32(0); rid < int32(b.N); rid++ {
		insert := kind == unionKind // intersection/difference never add B-only entries
		slot := t.lookup(encB.encode(rid), insert)
		if slot < 0 {
			continue
		}
		e := &t.entries[slot]
		e.seenB = true
		if e.repB < 0 {
			e.repB = rid
		}
		if collectRids && kind != diffKind {
			e.bRids = lineage.AppendRid(e.bRids, rid)
		}
	}

	// Scan phase: emit qualifying entries and assign output ids.
	var emitted []int32
	for slot := range t.entries {
		e := &t.entries[slot]
		switch kind {
		case unionKind:
			// all entries qualify
		case intersectKind:
			if e.repA < 0 || !e.seenB {
				continue
			}
		case diffKind:
			if e.seenB {
				continue
			}
		}
		e.oid = int32(len(emitted))
		emitted = append(emitted, int32(slot))
	}
	return SetOpResult{Out: setOutput(kind.name(), a, b, aAttrs, bAttrs, t.entries, emitted)}, t, emitted, nil
}

func setOp(a *storage.Relation, aAttrs []string, b *storage.Relation, bAttrs []string,
	mode CaptureMode, dirs Directions, kind setOpKind) (SetOpResult, error) {

	inject := mode == Inject
	res, t, emitted, err := setOpExecMode(a, aAttrs, b, bAttrs, kind, inject)
	if err != nil {
		return SetOpResult{}, err
	}
	captureB := kind != diffKind

	if dirs.Backward() {
		res.ABW = lineage.NewRidIndex(len(emitted))
		if captureB {
			res.BBW = lineage.NewRidIndex(len(emitted))
		}
	}
	if dirs.Forward() {
		res.AFW = newForwardArray(a.N, true)
		if captureB {
			res.BFW = newForwardArray(b.N, true)
		}
	}
	if dirs == 0 {
		return res, nil
	}

	if inject {
		// Indexes come straight from the per-entry rid arrays (reuse, P4).
		for _, slot := range emitted {
			e := &t.entries[slot]
			if res.ABW != nil {
				res.ABW.SetList(int(e.oid), e.aRids)
			}
			if res.BBW != nil {
				res.BBW.SetList(int(e.oid), e.bRids)
			}
			if res.AFW != nil {
				for _, r := range e.aRids {
					res.AFW[r] = e.oid
				}
			}
			if res.BFW != nil {
				for _, r := range e.bRids {
					res.BFW[r] = e.oid
				}
			}
		}
		return res, nil
	}

	// Defer (⋈′ over each input): probe the pinned hash table again and fill
	// the lineage indexes after the operator produced its output.
	encA, err := newSetKeyEnc(a, aAttrs)
	if err != nil {
		return SetOpResult{}, err
	}
	encB, err := newSetKeyEnc(b, bAttrs)
	if err != nil {
		return SetOpResult{}, err
	}
	for rid := int32(0); rid < int32(a.N); rid++ {
		slot := t.lookup(encA.encode(rid), false)
		if slot < 0 {
			continue
		}
		if oid := t.entries[slot].oid; oid >= 0 {
			if res.ABW != nil {
				res.ABW.Append(int(oid), rid)
			}
			if res.AFW != nil {
				res.AFW[rid] = oid
			}
		}
	}
	if captureB {
		for rid := int32(0); rid < int32(b.N); rid++ {
			slot := t.lookup(encB.encode(rid), false)
			if slot < 0 {
				continue
			}
			if oid := t.entries[slot].oid; oid >= 0 {
				if res.BBW != nil {
					res.BBW.Append(int(oid), rid)
				}
				if res.BFW != nil {
					res.BFW[rid] = oid
				}
			}
		}
	}
	return res, nil
}

func (k setOpKind) name() string {
	switch k {
	case unionKind:
		return "union"
	case intersectKind:
		return "intersect"
	default:
		return "diff"
	}
}

// BagUnionLineage describes the lineage of a bag union A ⊎ B (Appendix F.2):
// the output is the concatenation of the inputs, so lineage is fully
// determined by the boundary rid where B begins and never materialized.
type BagUnionLineage struct {
	NA int
	NB int
}

// BagUnion concatenates A and B (bag semantics). The returned lineage
// descriptor answers backward and forward queries arithmetically.
func BagUnion(a, b *storage.Relation) (*storage.Relation, BagUnionLineage, error) {
	if len(a.Schema) != len(b.Schema) {
		return nil, BagUnionLineage{}, fmt.Errorf("ops: bag union over different arities")
	}
	for i := range a.Schema {
		if a.Schema[i].Type != b.Schema[i].Type {
			return nil, BagUnionLineage{}, fmt.Errorf("ops: bag union type mismatch at column %d", i)
		}
	}
	out := storage.NewRelation(a.Name+"_union_"+b.Name, a.Schema, a.N+b.N)
	for c := range a.Schema {
		switch a.Schema[c].Type {
		case storage.TInt:
			copy(out.Cols[c].Ints, a.Cols[c].Ints)
			copy(out.Cols[c].Ints[a.N:], b.Cols[c].Ints)
		case storage.TFloat:
			copy(out.Cols[c].Floats, a.Cols[c].Floats)
			copy(out.Cols[c].Floats[a.N:], b.Cols[c].Floats)
		case storage.TString:
			copy(out.Cols[c].Strs, a.Cols[c].Strs)
			copy(out.Cols[c].Strs[a.N:], b.Cols[c].Strs)
		}
	}
	return out, BagUnionLineage{NA: a.N, NB: b.N}, nil
}

// Backward maps an output rid to (fromB, input rid).
func (l BagUnionLineage) Backward(o Rid) (fromB bool, rid Rid) {
	if int(o) < l.NA {
		return false, o
	}
	return true, o - Rid(l.NA)
}

// ForwardA maps an A rid to its output rid.
func (l BagUnionLineage) ForwardA(r Rid) Rid { return r }

// ForwardB maps a B rid to its output rid.
func (l BagUnionLineage) ForwardB(r Rid) Rid { return r + Rid(l.NA) }

// BagIntersectResult is the output of an instrumented bag intersection
// (Appendix F.4, paper semantics: an entry with mA duplicates in A and mB in
// B is emitted mA·mB times, laid out A-major). Backward lineage is 1-to-1 per
// side; forward lineage is 1-to-N.
type BagIntersectResult struct {
	Out  *storage.Relation
	OutN int
	ABW  []Rid
	BBW  []Rid
	AFW  *lineage.RidIndex
	BFW  *lineage.RidIndex
}

// BagIntersect computes A ∩ B under the paper's bag semantics with Inject
// capture. (The paper also sketches a Defer variant; Inject suffices for the
// evaluation and keeps output-block bookkeeping in one place.)
func BagIntersect(a *storage.Relation, aAttrs []string, b *storage.Relation, bAttrs []string,
	dirs Directions) (BagIntersectResult, error) {

	encA, err := newSetKeyEnc(a, aAttrs)
	if err != nil {
		return BagIntersectResult{}, err
	}
	encB, err := newSetKeyEnc(b, bAttrs)
	if err != nil {
		return BagIntersectResult{}, err
	}
	t := newSetTable()
	for rid := int32(0); rid < int32(a.N); rid++ {
		slot := t.lookup(encA.encode(rid), true)
		e := &t.entries[slot]
		if e.repA < 0 {
			e.repA = rid
		}
		e.aRids = lineage.AppendRid(e.aRids, rid)
	}
	for rid := int32(0); rid < int32(b.N); rid++ {
		slot := t.lookup(encB.encode(rid), false)
		if slot < 0 {
			continue
		}
		e := &t.entries[slot]
		if e.repB < 0 {
			e.repB = rid
		}
		e.bRids = lineage.AppendRid(e.bRids, rid)
	}

	res := BagIntersectResult{}
	outN := 0
	var emitted []int32
	for slot := range t.entries {
		e := &t.entries[slot]
		if len(e.bRids) == 0 {
			continue
		}
		e.oid = int32(outN)
		outN += len(e.aRids) * len(e.bRids)
		for i := 0; i < len(e.aRids)*len(e.bRids); i++ {
			emitted = append(emitted, int32(slot))
		}
	}
	res.OutN = outN

	if dirs.Backward() {
		res.ABW = make([]Rid, outN)
		res.BBW = make([]Rid, outN)
	}
	if dirs.Forward() {
		res.AFW = lineage.NewRidIndex(a.N)
		res.BFW = lineage.NewRidIndex(b.N)
	}
	for slot := range t.entries {
		e := &t.entries[slot]
		if len(e.bRids) == 0 {
			continue
		}
		o := e.oid
		for _, ar := range e.aRids {
			for _, br := range e.bRids {
				if res.ABW != nil {
					res.ABW[o] = ar
					res.BBW[o] = br
				}
				if res.AFW != nil {
					res.AFW.Append(int(ar), o)
					res.BFW.Append(int(br), o)
				}
				o++
			}
		}
	}
	res.Out = setOutput("bag_intersect", a, b, aAttrs, bAttrs, t.entries, emitted)
	return res, nil
}

// BagDiffResult is the output of a bag difference A − B: each entry is
// emitted max(mA − mB, 0) times; the emitted copies take the earliest A rids
// of the entry, so backward lineage is a 1-to-1 rid array over outputs.
type BagDiffResult struct {
	Out *storage.Relation
	ABW []Rid
	AFW []Rid
}

// BagDiff computes A − B under bag semantics with Inject capture; as with set
// difference, lineage to B is not materialized.
func BagDiff(a *storage.Relation, aAttrs []string, b *storage.Relation, bAttrs []string,
	dirs Directions) (BagDiffResult, error) {

	encA, err := newSetKeyEnc(a, aAttrs)
	if err != nil {
		return BagDiffResult{}, err
	}
	encB, err := newSetKeyEnc(b, bAttrs)
	if err != nil {
		return BagDiffResult{}, err
	}
	t := newSetTable()
	for rid := int32(0); rid < int32(a.N); rid++ {
		slot := t.lookup(encA.encode(rid), true)
		e := &t.entries[slot]
		if e.repA < 0 {
			e.repA = rid
		}
		e.aRids = lineage.AppendRid(e.aRids, rid)
	}
	bMatches := make([]int, len(t.entries))
	for rid := int32(0); rid < int32(b.N); rid++ {
		slot := t.lookup(encB.encode(rid), false)
		if slot >= 0 {
			bMatches[slot]++
		}
	}

	res := BagDiffResult{}
	var outRids []Rid // A rids of emitted copies, in output order
	var emitted []int32
	for slot := range t.entries {
		e := &t.entries[slot]
		keep := len(e.aRids) - bMatches[slot]
		for i := 0; i < keep; i++ {
			outRids = append(outRids, e.aRids[i])
			emitted = append(emitted, int32(slot))
		}
	}
	if dirs.Backward() {
		res.ABW = outRids
	}
	if dirs.Forward() {
		res.AFW = newForwardArray(a.N, true)
		for o, r := range outRids {
			res.AFW[r] = Rid(o)
		}
	}
	res.Out = a.Gather("bag_diff", outRids)
	return res, nil
}
