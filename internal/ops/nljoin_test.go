package ops

import (
	"reflect"
	"testing"

	"smoke/internal/storage"
)

func nlFixture() (*storage.Relation, *storage.Relation) {
	a := storage.NewEmpty("a", storage.Schema{{Name: "x", Type: storage.TInt}})
	for _, v := range []int{1, 5, 9} {
		a.AppendRow(v)
	}
	b := storage.NewEmpty("b", storage.Schema{{Name: "y", Type: storage.TInt}})
	for _, v := range []int{3, 6, 8, 10} {
		b.AppendRow(v)
	}
	return a, b
}

func TestNLJoinThetaMatchesNaive(t *testing.T) {
	a, b := nlFixture()
	ax := a.Cols[0].Ints
	by := b.Cols[0].Ints
	theta := func(i, j Rid) bool { return ax[i] < by[j] }

	res, err := NLJoin(a, b, theta, JoinOpts{Dirs: CaptureBoth, Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	var want [][2]Rid
	for i := int32(0); i < int32(a.N); i++ {
		for j := int32(0); j < int32(b.N); j++ {
			if ax[i] < by[j] {
				want = append(want, [2]Rid{i, j})
			}
		}
	}
	if res.OutN != len(want) {
		t.Fatalf("OutN = %d, want %d", res.OutN, len(want))
	}
	got := make([][2]Rid, res.OutN)
	for o := 0; o < res.OutN; o++ {
		got[o] = [2]Rid{res.LeftBW[o], res.RightBW[o]}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("theta join pairs = %v, want %v", got, want)
	}
	// Materialized output must satisfy theta.
	xc, yc := res.Out.Schema.MustCol("x"), res.Out.Schema.MustCol("y")
	for i := 0; i < res.Out.N; i++ {
		if res.Out.Int(xc, i) >= res.Out.Int(yc, i) {
			t.Fatalf("output row %d violates theta", i)
		}
	}
	// fw/bw consistency.
	for r := 0; r < a.N; r++ {
		for _, o := range res.LeftFW.List(r) {
			if res.LeftBW[o] != Rid(r) {
				t.Fatal("left fw/bw mismatch")
			}
		}
	}
	for r := 0; r < b.N; r++ {
		for _, o := range res.RightFW.List(r) {
			if res.RightBW[o] != Rid(r) {
				t.Fatal("right fw/bw mismatch")
			}
		}
	}
}

func TestNLJoinEmptyResult(t *testing.T) {
	a, b := nlFixture()
	res, err := NLJoin(a, b, func(i, j Rid) bool { return false }, JoinOpts{Dirs: CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutN != 0 || len(res.LeftBW) != 0 {
		t.Fatal("empty theta join should produce nothing")
	}
}

func TestNLJoinMaterializeWithoutCapture(t *testing.T) {
	a, b := nlFixture()
	res, err := NLJoin(a, b, func(i, j Rid) bool { return true }, JoinOpts{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != a.N*b.N {
		t.Fatalf("materialized %d rows, want %d", res.Out.N, a.N*b.N)
	}
	if res.LeftBW != nil || res.LeftFW != nil {
		t.Fatal("no capture requested")
	}
}

func TestCrossLineageArithmetic(t *testing.T) {
	a, b := nlFixture()
	out, cl := CrossProduct(a, b, true)
	if cl.OutN() != a.N*b.N || out.N != cl.OutN() {
		t.Fatalf("cross product size %d", out.N)
	}
	xc, yc := out.Schema.MustCol("x"), out.Schema.MustCol("y")
	for o := Rid(0); int(o) < cl.OutN(); o++ {
		la, rb := cl.BackwardLeft(o), cl.BackwardRight(o)
		if out.Int(xc, int(o)) != a.Int(0, int(la)) || out.Int(yc, int(o)) != b.Int(0, int(rb)) {
			t.Fatalf("output %d: computed backward lineage wrong", o)
		}
	}
	// Forward arithmetic: each left row generates exactly NRight outputs and
	// every one of them traces back to it.
	for l := Rid(0); int(l) < a.N; l++ {
		outs := cl.ForwardLeft(l, nil)
		if len(outs) != b.N {
			t.Fatalf("forward left count = %d", len(outs))
		}
		for _, o := range outs {
			if cl.BackwardLeft(o) != l {
				t.Fatal("forward/backward left mismatch")
			}
		}
	}
	for r := Rid(0); int(r) < b.N; r++ {
		outs := cl.ForwardRight(r, nil)
		if len(outs) != a.N {
			t.Fatalf("forward right count = %d", len(outs))
		}
		for _, o := range outs {
			if cl.BackwardRight(o) != r {
				t.Fatal("forward/backward right mismatch")
			}
		}
	}
}

func TestCrossProductNoMaterialize(t *testing.T) {
	a, b := nlFixture()
	out, cl := CrossProduct(a, b, false)
	if out != nil {
		t.Fatal("materialization was disabled")
	}
	if cl.OutN() != a.N*b.N {
		t.Fatal("lineage descriptor wrong")
	}
}
