package ops

import (
	"encoding/binary"
	"fmt"
	"math"

	"smoke/internal/expr"
	"smoke/internal/hashtab"
	"smoke/internal/lineage"
	"smoke/internal/pool"
	"smoke/internal/scratch"
	"smoke/internal/storage"
)

// AggFn enumerates the supported aggregation functions. All are algebraic or
// distributive, which is what the group-by push-down optimization requires
// (§4.2).
type AggFn uint8

const (
	// Count is COUNT(*).
	Count AggFn = iota
	// Sum is SUM(arg) over a numeric expression.
	Sum
	// Avg is AVG(arg).
	Avg
	// Min is MIN(arg).
	Min
	// Max is MAX(arg).
	Max
	// CountDistinct is COUNT(DISTINCT arg); the data-profiling application
	// (§6.5.2) uses it for the HAVING COUNT(DISTINCT B) > 1 rewrite.
	CountDistinct
)

// String names the function for output columns and plans.
func (f AggFn) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	case CountDistinct:
		return "count_distinct"
	}
	return "?"
}

// AggSpec is one aggregate in the SELECT list.
type AggSpec struct {
	Fn   AggFn
	Arg  expr.Expr // nil for COUNT(*)
	Name string    // output column name; defaults to fn_<i>
}

// GroupBySpec describes a hash aggregation: group-by key columns and the
// aggregates to compute.
type GroupBySpec struct {
	Keys []string
	Aggs []AggSpec
}

// AggOpts configures aggregation instrumentation.
type AggOpts struct {
	Mode CaptureMode
	Dirs Directions
	// CountsByKey supplies exact group cardinalities indexed by a single
	// integer group-by key k in [1, len(CountsByKey)] (the cardinality
	// statistics of §6.1.1): group rid lists are preallocated exactly and
	// never resize. Only meaningful with one TInt key column. Serial only:
	// the parallel path ignores it (global counts would overallocate every
	// partition) and sizes the merged index exactly from the partition-local
	// list lengths instead.
	CountsByKey []int32
	// Params binds expression parameters in aggregate arguments.
	Params expr.Params

	// Workload-aware push-downs (§4.2):

	// PushdownFilter restricts backward-lineage capture to input records
	// satisfying the predicate (selection push-down). The query result is
	// unaffected; only the captured lineage shrinks.
	PushdownFilter expr.Expr
	// PartitionBy partitions each group's backward rid array by the given
	// attributes (data skipping): parameterized consuming queries then scan
	// only the matching partition. The result's BWPart replaces BW.
	PartitionBy []string
	// Observe, when non-nil, is called once per (group slot, input rid) pair
	// during aggregation. The group-by push-down passes a cube.Builder's
	// Observe here to materialize drill-down aggregates during capture.
	Observe func(slot int32, rid Rid)

	// Workers > 1 runs the aggregation morsel-parallel: two-phase, with
	// partition-local hash tables and rid lists merged in partition order
	// (see agg_parallel.go). Workers <= 1 is the serial specialization.
	// Paths the merge does not cover (Observe, and non-int or composite
	// PartitionBy) fall back to serial.
	Workers int
	// Pool schedules the partition kernels; nil runs them inline.
	Pool *pool.Pool
	// DupRids declares that inRids may contain duplicate entries — the shape
	// of lineage-consuming queries, whose backward rid sets preserve
	// duplicates (transformational semantics). The parallel path then tracks
	// forward slots per input *position* instead of writing the shared
	// rid-addressed forward array from the kernels (a duplicated rid spanning
	// two partitions would otherwise be rebased by both), and fills the
	// forward array once after the merge. Backward lists and aggregate states
	// handle duplicates natively. Ignored when inRids is nil.
	DupRids bool

	// Compress encodes the finished lineage indexes into their adaptive
	// compressed forms (internal/lineage encoded.go) after capture: the
	// operator loop still appends into raw structures (Inject) or
	// exactly-sized arrays (Defer), and encoding happens post-capture —
	// per partition in the parallel path, whose merge then concatenates
	// encoded lists without re-encoding. The result's BWEnc/FWEnc replace
	// BW/FW; queries read them in place. PartitionBy (data-skipping) indexes
	// are not compressed.
	Compress bool
}

// AggResult is the output of an instrumented hash aggregation. Backward
// lineage is 1-to-N (rid index: group → input rids); forward lineage is a rid
// array (input rid → group). Output record i corresponds to hash-table group
// slot i in discovery order.
type AggResult struct {
	Out *storage.Relation
	BW  *lineage.RidIndex
	// BWEnc replaces BW when AggOpts.Compress encoded the backward index.
	BWEnc *lineage.EncodedIndex
	// BWPart replaces BW when the data-skipping optimization partitions the
	// backward rid arrays (AggOpts.PartitionBy).
	BWPart *lineage.PartitionedIndex
	FW     []Rid
	// FWEnc replaces FW when AggOpts.Compress encoded the forward array
	// (the encoder adaptively keeps FW raw when runs don't pay off).
	FWEnc *lineage.EncodedArr
	// GroupCounts[i] is the input cardinality of group i (tracked for every
	// mode; Defer uses it to preallocate exact backward lists).
	GroupCounts []int64
}

// BackwardIndex wraps whichever backward representation the result holds
// (raw or encoded) as a direction-agnostic index, or nil if backward lineage
// was not captured (BWPart, the data-skipping form, is exposed separately).
func (r *AggResult) BackwardIndex() *lineage.Index {
	switch {
	case r.BWEnc != nil:
		return lineage.NewEncodedMany(r.BWEnc)
	case r.BW != nil:
		return lineage.NewOneToMany(r.BW)
	}
	return nil
}

// ForwardIndex wraps whichever forward representation the result holds, or
// nil if forward lineage was not captured.
func (r *AggResult) ForwardIndex() *lineage.Index {
	switch {
	case r.FWEnc != nil:
		return lineage.NewEncodedOne(r.FWEnc)
	case r.FW != nil:
		return lineage.NewOneToOne(r.FW)
	}
	return nil
}

// compress applies post-capture encoding to the finished raw indexes.
func (r *AggResult) compress() {
	if r.BW != nil {
		r.BWEnc = lineage.EncodeRidIndex(r.BW)
		r.BW = nil
	}
	if r.FW != nil {
		if e := lineage.EncodeArr(r.FW); e != nil {
			r.FWEnc = e
			r.FW = nil
		}
	}
}

// aggAcc accumulates one aggregate across groups (structure-of-arrays:
// slot-indexed slices).
type aggAcc struct {
	fn   AggFn
	num  expr.NumFn
	argI expr.IntFn // CountDistinct over ints
	argS expr.StrFn // CountDistinct over strings

	sums []float64
	mins []float64
	maxs []float64
	// COUNT(DISTINCT) state: the overwhelmingly common case in profiling
	// workloads is one distinct value per group (the FD holds), so the first
	// value is kept inline and the set is allocated lazily on the first
	// disagreement.
	firstI []int64
	firstS []string
	seen   []bool
	setsI  []map[int64]struct{}
	setsS  []map[string]struct{}
}

func (a *aggAcc) addGroup() {
	switch a.fn {
	case Sum, Avg:
		a.sums = append(a.sums, 0)
	case Min:
		a.mins = append(a.mins, math.Inf(1))
	case Max:
		a.maxs = append(a.maxs, math.Inf(-1))
	case CountDistinct:
		a.seen = append(a.seen, false)
		if a.argI != nil {
			a.firstI = append(a.firstI, 0)
			a.setsI = append(a.setsI, nil)
		} else {
			a.firstS = append(a.firstS, "")
			a.setsS = append(a.setsS, nil)
		}
	}
}

func (a *aggAcc) update(slot int32, rid Rid) {
	switch a.fn {
	case Count:
		// counts are tracked once for all aggregates
	case Sum, Avg:
		a.sums[slot] += a.num(rid)
	case Min:
		if v := a.num(rid); v < a.mins[slot] {
			a.mins[slot] = v
		}
	case Max:
		if v := a.num(rid); v > a.maxs[slot] {
			a.maxs[slot] = v
		}
	case CountDistinct:
		if a.argI != nil {
			a.addDistinctI(slot, a.argI(rid))
		} else {
			a.addDistinctS(slot, a.argS(rid))
		}
	}
}

// updateBatch is update over a resolved batch with the function switch
// hoisted out of the row loop (rows still fold in input order).
func (a *aggAcc) updateBatch(slots []int32, rids []Rid) {
	switch a.fn {
	case Count:
		// counts are tracked once for all aggregates
	case Sum, Avg:
		sums := a.sums
		for j, s := range slots {
			sums[s] += a.num(rids[j])
		}
	case Min:
		mins := a.mins
		for j, s := range slots {
			if v := a.num(rids[j]); v < mins[s] {
				mins[s] = v
			}
		}
	case Max:
		maxs := a.maxs
		for j, s := range slots {
			if v := a.num(rids[j]); v > maxs[s] {
				maxs[s] = v
			}
		}
	case CountDistinct:
		if a.argI != nil {
			for j, s := range slots {
				a.addDistinctI(s, a.argI(rids[j]))
			}
		} else {
			for j, s := range slots {
				a.addDistinctS(s, a.argS(rids[j]))
			}
		}
	}
}

// addDistinctI folds one int value into slot's COUNT(DISTINCT) state (same
// policy as update: first value inline, set allocated on disagreement).
func (a *aggAcc) addDistinctI(slot int32, v int64) {
	if !a.seen[slot] {
		a.seen[slot] = true
		a.firstI[slot] = v
		return
	}
	if s := a.setsI[slot]; s != nil {
		s[v] = struct{}{}
		return
	}
	if v != a.firstI[slot] {
		a.setsI[slot] = map[int64]struct{}{a.firstI[slot]: {}, v: {}}
	}
}

// addDistinctS is addDistinctI for string arguments.
func (a *aggAcc) addDistinctS(slot int32, v string) {
	if !a.seen[slot] {
		a.seen[slot] = true
		a.firstS[slot] = v
		return
	}
	if s := a.setsS[slot]; s != nil {
		s[v] = struct{}{}
		return
	}
	if v != a.firstS[slot] {
		a.setsS[slot] = map[string]struct{}{a.firstS[slot]: {}, v: {}}
	}
}

// mergeFrom folds partition-local slot s of o into global slot g. All
// supported aggregates are algebraic or distributive, so the merge is exact;
// float sums accumulate per partition first, which can differ from serial in
// the last ulp (addition order), never in lineage.
func (a *aggAcc) mergeFrom(g int32, o *aggAcc, s int32) {
	switch a.fn {
	case Count:
		// counts are tracked once for all aggregates
	case Sum, Avg:
		a.sums[g] += o.sums[s]
	case Min:
		if o.mins[s] < a.mins[g] {
			a.mins[g] = o.mins[s]
		}
	case Max:
		if o.maxs[s] > a.maxs[g] {
			a.maxs[g] = o.maxs[s]
		}
	case CountDistinct:
		if !o.seen[s] {
			return
		}
		if a.argI != nil {
			if set := o.setsI[s]; set != nil {
				for v := range set {
					a.addDistinctI(g, v)
				}
			} else {
				a.addDistinctI(g, o.firstI[s])
			}
		} else {
			if set := o.setsS[s]; set != nil {
				for v := range set {
					a.addDistinctS(g, v)
				}
			} else {
				a.addDistinctS(g, o.firstS[s])
			}
		}
	}
}

// outType is the storage type of the aggregate's output column.
func (a *aggAcc) outType() storage.Type {
	switch a.fn {
	case Count, CountDistinct:
		return storage.TInt
	default:
		return storage.TFloat
	}
}

type keyKind uint8

const (
	keyInt keyKind = iota // single TInt column: the value is the hash key
	keyStr                // single TString column
	keyComposite
)

// aggState carries the group-by hash table and all per-group state.
type aggState struct {
	in   *storage.Relation
	mode CaptureMode
	dirs Directions

	kind    keyKind
	intCol  []int64
	strCol  []string
	keyCols []int // composite: column indexes
	buf     []byte

	ht    *hashtab.Map
	strHT map[string]int32

	nGroups     int32
	repRids     []Rid
	counts      []int64
	accs        []aggAcc
	countsByKey []int32

	groupRids [][]Rid // Inject backward lists (i_rids per group)
	fw        []Rid

	// push-down state (§4.2)
	pdFilter expr.Pred
	partKey  func(rid Rid) int64
	partDict *lineage.Dict
	partMaps []map[int64][]Rid
	observe  func(slot int32, rid Rid)
}

func newAggState(in *storage.Relation, spec GroupBySpec, opts AggOpts) (*aggState, error) {
	if len(spec.Keys) == 0 {
		return nil, fmt.Errorf("ops: group-by needs at least one key column")
	}
	st := &aggState{in: in, mode: opts.Mode, dirs: opts.Dirs, countsByKey: opts.CountsByKey}
	for _, k := range spec.Keys {
		c := in.Schema.Col(k)
		if c < 0 {
			return nil, fmt.Errorf("ops: unknown group-by column %q in %s", k, in.Name)
		}
		st.keyCols = append(st.keyCols, c)
	}
	if len(spec.Keys) == 1 {
		c := st.keyCols[0]
		switch in.Schema[c].Type {
		case storage.TInt:
			st.kind = keyInt
			st.intCol = in.Cols[c].Ints
			st.ht = hashtab.New(64)
		case storage.TString:
			st.kind = keyStr
			st.strCol = in.Cols[c].Strs
			st.strHT = make(map[string]int32, 64)
		default:
			st.kind = keyComposite
			st.strHT = make(map[string]int32, 64)
		}
	} else {
		st.kind = keyComposite
		st.strHT = make(map[string]int32, 64)
	}
	for i, a := range spec.Aggs {
		acc := aggAcc{fn: a.Fn}
		switch a.Fn {
		case Count:
		case CountDistinct:
			if a.Arg == nil {
				return nil, fmt.Errorf("ops: COUNT(DISTINCT) needs an argument")
			}
			t, err := expr.TypeOf(a.Arg, in.Schema, opts.Params)
			if err != nil {
				return nil, err
			}
			if t == storage.TString {
				f, err := expr.CompileStr(a.Arg, in, opts.Params)
				if err != nil {
					return nil, err
				}
				acc.argS = f
			} else {
				f, err := expr.CompileInt(a.Arg, in, opts.Params)
				if err != nil {
					// Float distinct args are rare; compile via NumFn and
					// bit-cast to int64 for set membership.
					nf, nerr := expr.CompileNum(a.Arg, in, opts.Params)
					if nerr != nil {
						return nil, err
					}
					acc.argI = func(rid int32) int64 { return int64(math.Float64bits(nf(rid))) }
				} else {
					acc.argI = f
				}
			}
		default:
			if a.Arg == nil {
				return nil, fmt.Errorf("ops: %s needs an argument", a.Fn)
			}
			f, err := expr.CompileNum(a.Arg, in, opts.Params)
			if err != nil {
				return nil, err
			}
			acc.num = f
		}
		st.accs = append(st.accs, acc)
		_ = i
	}
	if opts.PushdownFilter != nil {
		p, err := expr.CompilePred(opts.PushdownFilter, in, opts.Params)
		if err != nil {
			return nil, fmt.Errorf("ops: push-down filter: %w", err)
		}
		st.pdFilter = p
	}
	if len(opts.PartitionBy) > 0 {
		pk, dict, err := partitionKeyFn(in, opts.PartitionBy)
		if err != nil {
			return nil, err
		}
		st.partKey = pk
		st.partDict = dict
	}
	st.observe = opts.Observe
	return st, nil
}

// partitionKeyFn compiles the data-skipping partition key: single TInt
// attributes key directly by value; everything else interns the (composite)
// value through a dictionary.
func partitionKeyFn(in *storage.Relation, attrs []string) (func(Rid) int64, *lineage.Dict, error) {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		c := in.Schema.Col(a)
		if c < 0 {
			return nil, nil, fmt.Errorf("ops: unknown partition attribute %q", a)
		}
		cols[i] = c
	}
	if len(cols) == 1 && in.Schema[cols[0]].Type == storage.TInt {
		col := in.Cols[cols[0]].Ints
		return func(rid Rid) int64 { return col[rid] }, nil, nil
	}
	if len(cols) == 1 && in.Schema[cols[0]].Type == storage.TString {
		col := in.Cols[cols[0]].Strs
		dict := lineage.NewDict()
		return func(rid Rid) int64 { return dict.Code(col[rid]) }, dict, nil
	}
	dict := lineage.NewDict()
	var buf []byte
	return func(rid Rid) int64 {
		buf = buf[:0]
		for _, c := range cols {
			switch in.Schema[c].Type {
			case storage.TInt:
				var tmp [8]byte
				binary.LittleEndian.PutUint64(tmp[:], uint64(in.Cols[c].Ints[rid]))
				buf = append(buf, tmp[:]...)
			case storage.TFloat:
				var tmp [8]byte
				binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(in.Cols[c].Floats[rid]))
				buf = append(buf, tmp[:]...)
			case storage.TString:
				buf = append(buf, in.Cols[c].Strs[rid]...)
				buf = append(buf, 0)
			}
		}
		return dict.Code(string(buf))
	}, dict, nil
}

// PartitionKey recomputes the partition code of an attribute-value
// combination so consuming queries can address the right partition. Values
// must be given in PartitionBy order.
func PartitionKey(res *AggResult, in *storage.Relation, attrs []string, vals []any) (int64, bool) {
	dict := res.BWPart.Dict()
	if dict == nil {
		// single int attribute
		switch v := vals[0].(type) {
		case int64:
			return v, true
		case int:
			return int64(v), true
		}
		return 0, false
	}
	if len(attrs) == 1 {
		s, ok := vals[0].(string)
		if !ok {
			return 0, false
		}
		return dictLookup(dict, s)
	}
	var buf []byte
	for i, a := range attrs {
		c := in.Schema.MustCol(a)
		switch in.Schema[c].Type {
		case storage.TInt:
			var tmp [8]byte
			iv, ok := vals[i].(int64)
			if !ok {
				if ii, ok2 := vals[i].(int); ok2 {
					iv = int64(ii)
				} else {
					return 0, false
				}
			}
			binary.LittleEndian.PutUint64(tmp[:], uint64(iv))
			buf = append(buf, tmp[:]...)
		case storage.TString:
			s, ok := vals[i].(string)
			if !ok {
				return 0, false
			}
			buf = append(buf, s...)
			buf = append(buf, 0)
		}
	}
	return dictLookup(dict, string(buf))
}

func dictLookup(d *lineage.Dict, s string) (int64, bool) {
	return d.Lookup(s)
}

// encodeComposite serializes the key columns of rid into st.buf.
func (st *aggState) encodeComposite(rid Rid) {
	st.buf = st.buf[:0]
	for _, c := range st.keyCols {
		switch st.in.Schema[c].Type {
		case storage.TInt:
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], uint64(st.in.Cols[c].Ints[rid]))
			st.buf = append(st.buf, tmp[:]...)
		case storage.TFloat:
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(st.in.Cols[c].Floats[rid]))
			st.buf = append(st.buf, tmp[:]...)
		case storage.TString:
			st.buf = append(st.buf, st.in.Cols[c].Strs[rid]...)
			st.buf = append(st.buf, 0)
		}
	}
}

// lookupSlot returns the group slot of rid, inserting a new group if needed.
func (st *aggState) lookupSlot(rid Rid) int32 {
	switch st.kind {
	case keyInt:
		k := st.intCol[rid]
		slot, inserted := st.ht.GetOrPut(k, st.nGroups)
		if inserted {
			st.newGroup(rid, k)
		}
		return slot
	case keyStr:
		k := st.strCol[rid]
		if slot, ok := st.strHT[k]; ok {
			return slot
		}
		slot := st.nGroups
		st.strHT[k] = slot
		st.newGroup(rid, 0)
		return slot
	default:
		st.encodeComposite(rid)
		if slot, ok := st.strHT[string(st.buf)]; ok {
			return slot
		}
		slot := st.nGroups
		st.strHT[string(st.buf)] = slot
		st.newGroup(rid, 0)
		return slot
	}
}

// probeSlot returns the existing slot of rid (Defer's second pass); the group
// must exist.
func (st *aggState) probeSlot(rid Rid) int32 {
	switch st.kind {
	case keyInt:
		slot, _ := st.ht.Get(st.intCol[rid])
		return slot
	case keyStr:
		return st.strHT[st.strCol[rid]]
	default:
		st.encodeComposite(rid)
		return st.strHT[string(st.buf)]
	}
}

func (st *aggState) newGroup(rid Rid, key int64) {
	st.nGroups++
	st.repRids = append(st.repRids, rid)
	st.counts = append(st.counts, 0)
	for i := range st.accs {
		st.accs[i].addGroup()
	}
	if st.mode == Inject && st.dirs.Backward() {
		if st.partKey != nil {
			st.partMaps = append(st.partMaps, nil)
			return
		}
		var l []Rid
		if st.countsByKey != nil && st.kind == keyInt && key >= 1 && int(key) <= len(st.countsByKey) {
			l = make([]Rid, 0, st.countsByKey[key-1])
		}
		st.groupRids = append(st.groupRids, l)
	}
}

// captureBackward writes rid into group slot's backward structure, honoring
// selection push-down and data-skipping partitioning.
func (st *aggState) captureBackward(slot int32, rid Rid) {
	if st.pdFilter != nil && !st.pdFilter(rid) {
		return
	}
	if st.partKey != nil {
		m := st.partMaps[slot]
		if m == nil {
			m = map[int64][]Rid{}
			st.partMaps[slot] = m
		}
		pk := st.partKey(rid)
		m[pk] = lineage.AppendRid(m[pk], rid)
		return
	}
	st.groupRids[slot] = lineage.AppendRid(st.groupRids[slot], rid)
}

func (st *aggState) processRow(rid Rid) int32 {
	slot := st.lookupSlot(rid)
	st.counts[slot]++
	for i := range st.accs {
		st.accs[i].update(slot, rid)
	}
	if st.observe != nil {
		st.observe(slot, rid)
	}
	if st.mode == Inject {
		if st.dirs.Backward() {
			st.captureBackward(slot, rid)
		}
		if st.fw != nil {
			st.fw[rid] = slot
		}
	}
	return slot
}

// aggBatchSize is how many rows the single-int-key path hands the hash table
// per probe call: large enough to amortize the per-batch setup, small enough
// that the key/slot scratch stays cache-resident.
const aggBatchSize = 512

// processRows drives the aggregation kernel over a rid stream — inRids[lo:hi]
// when inRids is non-nil, else the dense range [lo, hi). The single-int-key
// shape runs batched: keys gather into pooled scratch, the hash table
// resolves a whole batch of slots per call (hashing amortized, probes
// bounds-check-free), and the per-aggregate switch hoists out of the row
// loop. Every per-(slot, rid) effect happens in row order, so group discovery
// order, backward list order, and forward entries are identical to the
// row-at-a-time kernel. posSlots, when non-nil, records each input
// position's slot (the duplicate-rid parallel path). Other key kinds — and
// the order-sensitive Observe hook — run the row-at-a-time kernel.
func (st *aggState) processRows(inRids []Rid, lo, hi int, posSlots []Rid) {
	if st.kind != keyInt || st.observe != nil {
		switch {
		case inRids == nil:
			for rid := int32(lo); rid < int32(hi); rid++ {
				st.processRow(rid)
			}
		case posSlots != nil:
			for i, rid := range inRids[lo:hi] {
				posSlots[lo+i] = st.processRow(rid)
			}
		default:
			for _, rid := range inRids[lo:hi] {
				st.processRow(rid)
			}
		}
		return
	}
	keys := scratch.Ints(aggBatchSize)
	slots := scratch.Rids(aggBatchSize)
	ridBuf := scratch.Rids(aggBatchSize)
	col := st.intCol
	for base := lo; base < hi; base += aggBatchSize {
		end := base + aggBatchSize
		if end > hi {
			end = hi
		}
		m := end - base
		rb := ridBuf[:m]
		if inRids == nil {
			for j := range rb {
				rb[j] = Rid(base + j)
			}
		} else {
			copy(rb, inRids[base:end])
		}
		kb, sb := keys[:m], slots[:m]
		for j, r := range rb {
			kb[j] = col[r]
		}
		st.ht.GetOrPutBatch(kb, sb, func(j int, key int64) int32 {
			slot := st.nGroups
			st.newGroup(rb[j], key)
			return slot
		})
		st.accumulateBatch(sb, rb)
		if posSlots != nil {
			copy(posSlots[base:end], sb)
		}
	}
	scratch.PutInts(keys)
	scratch.PutRids(slots)
	scratch.PutRids(ridBuf)
}

// accumulateBatch applies one resolved batch to the per-group state. The
// loops are per-effect rather than per-row, but each effect still sees rows
// in input order, which is all any of them depends on.
func (st *aggState) accumulateBatch(slots []int32, rids []Rid) {
	counts := st.counts
	for _, s := range slots {
		counts[s]++
	}
	for i := range st.accs {
		st.accs[i].updateBatch(slots, rids)
	}
	if st.mode == Inject {
		if st.dirs.Backward() {
			if st.partKey == nil && st.pdFilter == nil {
				gr := st.groupRids
				for j, s := range slots {
					gr[s] = lineage.AppendRid(gr[s], rids[j])
				}
			} else {
				for j, s := range slots {
					st.captureBackward(s, rids[j])
				}
			}
		}
		if st.fw != nil {
			fw := st.fw
			for j, s := range slots {
				fw[rids[j]] = s
			}
		}
	}
}

// deferFillBatched is the batched Zγ second pass for the plain single-int-key
// shape (no partitioning, no push-down filter): slots resolve through the
// batched read-only probe, then the exactly-sized indexes fill in row order.
func (st *aggState) deferFillBatched(inRids []Rid, lo, hi int, bw *lineage.RidIndex, fw []Rid, posSlots []Rid) {
	keys := scratch.Ints(aggBatchSize)
	slots := scratch.Rids(aggBatchSize)
	ridBuf := scratch.Rids(aggBatchSize)
	col := st.intCol
	for base := lo; base < hi; base += aggBatchSize {
		end := base + aggBatchSize
		if end > hi {
			end = hi
		}
		m := end - base
		rb := ridBuf[:m]
		if inRids == nil {
			for j := range rb {
				rb[j] = Rid(base + j)
			}
		} else {
			copy(rb, inRids[base:end])
		}
		kb, sb := keys[:m], slots[:m]
		for j, r := range rb {
			kb[j] = col[r]
		}
		st.ht.GetBatch(kb, sb)
		if bw != nil {
			for j, s := range sb {
				bw.AppendFast(int(s), rb[j])
			}
		}
		if posSlots != nil {
			copy(posSlots[base:end], sb)
		} else if fw != nil {
			for j, s := range sb {
				fw[rb[j]] = s
			}
		}
	}
	scratch.PutInts(keys)
	scratch.PutRids(slots)
	scratch.PutRids(ridBuf)
}

// deferFillable reports whether deferFillBatched covers the state's options.
func (st *aggState) deferFillable() bool {
	return st.kind == keyInt && st.partKey == nil && st.pdFilter == nil
}

// HashAgg executes a hash group-by aggregation over in (all rows when inRids
// is nil, otherwise only the listed rids — the shape lineage-consuming
// queries take when they aggregate over a backward-lineage rid set).
//
// Inject (§3.2.3) augments each group's intermediate state with the rid array
// of its input records and emits indexes directly from the hash table.
// Defer stores only the group slot during execution and populates both
// indexes in a second probe pass, preallocating exactly from the per-group
// counts that aggregation tracks anyway.
//
// With opts.Workers > 1 the aggregation runs morsel-parallel (two-phase,
// partition-local tables and indexes merged in partition order); the merged
// output and lineage are identical to a serial run.
func HashAgg(in *storage.Relation, inRids []Rid, spec GroupBySpec, opts AggOpts) (AggResult, error) {
	if opts.Workers > 1 && parallelizableAgg(in, opts) {
		n := in.N
		if inRids != nil {
			n = len(inRids)
		}
		if n > 1 {
			return parHashAgg(in, inRids, spec, opts)
		}
	}
	st, err := newAggState(in, spec, opts)
	if err != nil {
		return AggResult{}, err
	}
	if opts.Mode == Inject && opts.Dirs.Forward() {
		st.fw = newForwardArray(in.N, inRids != nil)
	}

	if inRids == nil {
		st.processRows(nil, 0, in.N, nil)
	} else {
		st.processRows(inRids, 0, len(inRids), nil)
	}

	res := AggResult{Out: st.materialize(spec), GroupCounts: st.counts}

	switch opts.Mode {
	case Inject:
		if opts.Dirs.Backward() {
			if st.partKey != nil {
				res.BWPart = lineage.NewPartitionedIndexFromParts(st.partMaps, st.partDict)
			} else {
				bw := lineage.NewRidIndex(int(st.nGroups))
				for slot, l := range st.groupRids {
					bw.SetList(slot, l) // reuse the hash-table rid lists (P4)
				}
				res.BW = bw
			}
		}
		res.FW = st.fw
	case Defer:
		// Zγ (§3.2.3): rescan the input, reuse the pinned hash table to
		// recover each record's group, and fill exactly-sized indexes.
		var bw *lineage.RidIndex
		if opts.Dirs.Backward() {
			if st.partKey != nil {
				st.partMaps = make([]map[int64][]Rid, st.nGroups)
			} else {
				c32 := make([]int32, st.nGroups)
				for i, c := range st.counts {
					c32[i] = int32(c)
				}
				bw = lineage.NewRidIndexWithCounts(c32)
			}
		}
		var fw []Rid
		if opts.Dirs.Forward() {
			fw = newForwardArray(in.N, inRids != nil)
		}
		fill := func(rid Rid) {
			slot := st.probeSlot(rid)
			if opts.Dirs.Backward() {
				if st.partKey != nil || st.pdFilter != nil {
					if st.pdFilter == nil || st.pdFilter(rid) {
						if st.partKey != nil {
							st.captureBackward(slot, rid)
						} else {
							bw.AppendFast(int(slot), rid)
						}
					}
				} else {
					bw.AppendFast(int(slot), rid)
				}
			}
			if fw != nil {
				fw[rid] = slot
			}
		}
		if st.deferFillable() {
			if inRids == nil {
				st.deferFillBatched(nil, 0, in.N, bw, fw, nil)
			} else {
				st.deferFillBatched(inRids, 0, len(inRids), bw, fw, nil)
			}
		} else if inRids == nil {
			n := int32(in.N)
			for rid := int32(0); rid < n; rid++ {
				fill(rid)
			}
		} else {
			for _, rid := range inRids {
				fill(rid)
			}
		}
		if st.partKey != nil && opts.Dirs.Backward() {
			res.BWPart = lineage.NewPartitionedIndexFromParts(st.partMaps, st.partDict)
		} else {
			res.BW = bw
		}
		res.FW = fw
	}
	if opts.Compress {
		// Post-capture (and Defer-time) encoding: the finished indexes shrink
		// to their adaptive encoded forms; the hot loop above is unchanged.
		res.compress()
	}
	return res, nil
}

// newForwardArray allocates a forward rid array; when the input is a subset
// of the relation, unvisited entries must read as "no output" (-1).
func newForwardArray(n int, sparse bool) []Rid {
	fw := make([]Rid, n)
	if sparse {
		for i := range fw {
			fw[i] = -1
		}
	}
	return fw
}

// materialize builds the output relation: group-by keys (gathered via each
// group's representative rid) followed by aggregate columns.
func (st *aggState) materialize(spec GroupBySpec) *storage.Relation {
	g := int(st.nGroups)
	schema := make(storage.Schema, 0, len(spec.Keys)+len(spec.Aggs))
	for _, k := range spec.Keys {
		c := st.in.Schema.MustCol(k)
		schema = append(schema, storage.Field{Name: k, Type: st.in.Schema[c].Type})
	}
	for i, a := range spec.Aggs {
		name := a.Name
		if name == "" {
			name = fmt.Sprintf("%s_%d", a.Fn, i)
		}
		schema = append(schema, storage.Field{Name: name, Type: st.accs[i].outType()})
	}
	out := storage.NewRelation("groupby", schema, g)
	for ki, k := range spec.Keys {
		c := st.in.Schema.MustCol(k)
		switch st.in.Schema[c].Type {
		case storage.TInt:
			src := st.in.Cols[c].Ints
			dst := out.Cols[ki].Ints
			for slot, rep := range st.repRids {
				dst[slot] = src[rep]
			}
		case storage.TFloat:
			src := st.in.Cols[c].Floats
			dst := out.Cols[ki].Floats
			for slot, rep := range st.repRids {
				dst[slot] = src[rep]
			}
		case storage.TString:
			src := st.in.Cols[c].Strs
			dst := out.Cols[ki].Strs
			for slot, rep := range st.repRids {
				dst[slot] = src[rep]
			}
		}
	}
	for i := range st.accs {
		acc := &st.accs[i]
		col := len(spec.Keys) + i
		switch acc.fn {
		case Count:
			dst := out.Cols[col].Ints
			copy(dst, st.counts)
		case CountDistinct:
			dst := out.Cols[col].Ints
			for slot := 0; slot < g; slot++ {
				switch {
				case acc.argI != nil && acc.setsI[slot] != nil:
					dst[slot] = int64(len(acc.setsI[slot]))
				case acc.argI == nil && acc.setsS[slot] != nil:
					dst[slot] = int64(len(acc.setsS[slot]))
				case acc.seen[slot]:
					dst[slot] = 1
				default:
					dst[slot] = 0
				}
			}
		case Sum:
			copy(out.Cols[col].Floats, acc.sums)
		case Avg:
			dst := out.Cols[col].Floats
			for slot := 0; slot < g; slot++ {
				dst[slot] = acc.sums[slot] / float64(st.counts[slot])
			}
		case Min:
			copy(out.Cols[col].Floats, acc.mins)
		case Max:
			copy(out.Cols[col].Floats, acc.maxs)
		}
	}
	return out
}
