package ops

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"smoke/internal/datagen"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/storage"
)

// microSpec is the paper's group-by microbenchmark query (§6.1.1):
// SELECT z, COUNT(*), SUM(v), SUM(v*v), SUM(sqrt(v)), MIN(v), MAX(v) GROUP BY z.
func microSpec() GroupBySpec {
	return GroupBySpec{
		Keys: []string{"z"},
		Aggs: []AggSpec{
			{Fn: Count, Name: "cnt"},
			{Fn: Sum, Arg: expr.C("v"), Name: "sum_v"},
			{Fn: Sum, Arg: expr.MulE(expr.C("v"), expr.C("v")), Name: "sum_vv"},
			{Fn: Sum, Arg: expr.Sqrt{E: expr.C("v")}, Name: "sum_sqrt"},
			{Fn: Min, Arg: expr.C("v"), Name: "min_v"},
			{Fn: Max, Arg: expr.C("v"), Name: "max_v"},
		},
	}
}

// naiveGroupBy computes reference results with plain maps.
type refGroup struct {
	count              int64
	sumV, sumVV, sumSq float64
	minV, maxV         float64
	rids               []Rid
}

func naiveGroupBy(rel *storage.Relation) map[int64]*refGroup {
	z := rel.Cols[rel.Schema.MustCol("z")].Ints
	v := rel.Cols[rel.Schema.MustCol("v")].Floats
	ref := map[int64]*refGroup{}
	for i := 0; i < rel.N; i++ {
		g, ok := ref[z[i]]
		if !ok {
			g = &refGroup{minV: math.Inf(1), maxV: math.Inf(-1)}
			ref[z[i]] = g
		}
		g.count++
		g.sumV += v[i]
		g.sumVV += v[i] * v[i]
		g.sumSq += math.Sqrt(v[i])
		if v[i] < g.minV {
			g.minV = v[i]
		}
		if v[i] > g.maxV {
			g.maxV = v[i]
		}
		g.rids = append(g.rids, Rid(i))
	}
	return ref
}

func checkAggAgainstNaive(t *testing.T, rel *storage.Relation, res AggResult, wantLineage bool) {
	t.Helper()
	ref := naiveGroupBy(rel)
	out := res.Out
	if out.N != len(ref) {
		t.Fatalf("got %d groups, want %d", out.N, len(ref))
	}
	zc := out.Schema.MustCol("z")
	for slot := 0; slot < out.N; slot++ {
		key := out.Int(zc, slot)
		g, ok := ref[key]
		if !ok {
			t.Fatalf("unexpected group %d", key)
		}
		if got := out.Int(out.Schema.MustCol("cnt"), slot); got != g.count {
			t.Errorf("group %d: count = %d, want %d", key, got, g.count)
		}
		for _, c := range []struct {
			col  string
			want float64
		}{{"sum_v", g.sumV}, {"sum_vv", g.sumVV}, {"sum_sqrt", g.sumSq}, {"min_v", g.minV}, {"max_v", g.maxV}} {
			if got := out.Float(out.Schema.MustCol(c.col), slot); math.Abs(got-c.want) > 1e-6*(1+math.Abs(c.want)) {
				t.Errorf("group %d: %s = %v, want %v", key, c.col, got, c.want)
			}
		}
		if wantLineage {
			got := append([]Rid(nil), res.BW.List(slot)...)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if !reflect.DeepEqual(got, g.rids) {
				t.Errorf("group %d: backward rids = %v, want %v", key, got, g.rids)
			}
		}
	}
	if wantLineage {
		// Forward/backward consistency: fw[rid] = slot iff rid in bw[slot].
		for slot := 0; slot < out.N; slot++ {
			for _, rid := range res.BW.List(slot) {
				if res.FW[rid] != Rid(slot) {
					t.Fatalf("fw[%d] = %d, want %d", rid, res.FW[rid], slot)
				}
			}
		}
		if res.BW.Cardinality() != rel.N {
			t.Fatalf("backward lists cover %d rids, want %d (partition invariant)", res.BW.Cardinality(), rel.N)
		}
	}
}

func TestHashAggBaseline(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 5000, 40, 2)
	res, err := HashAgg(rel, nil, microSpec(), AggOpts{Mode: None})
	if err != nil {
		t.Fatal(err)
	}
	if res.BW != nil || res.FW != nil {
		t.Fatal("baseline must not capture lineage")
	}
	checkAggAgainstNaive(t, rel, res, false)
}

func TestHashAggInject(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 5000, 40, 2)
	res, err := HashAgg(rel, nil, microSpec(), AggOpts{Mode: Inject, Dirs: CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	checkAggAgainstNaive(t, rel, res, true)
}

func TestHashAggDefer(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 5000, 40, 2)
	res, err := HashAgg(rel, nil, microSpec(), AggOpts{Mode: Defer, Dirs: CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	checkAggAgainstNaive(t, rel, res, true)
}

func TestHashAggInjectDeferEquivalence(t *testing.T) {
	rel := datagen.Zipf("zipf", 0.8, 3000, 25, 9)
	inj, err := HashAgg(rel, nil, microSpec(), AggOpts{Mode: Inject, Dirs: CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	def, err := HashAgg(rel, nil, microSpec(), AggOpts{Mode: Defer, Dirs: CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inj.FW, def.FW) {
		t.Fatal("Inject and Defer forward indexes differ")
	}
	if inj.BW.Len() != def.BW.Len() {
		t.Fatal("group counts differ")
	}
	for slot := 0; slot < inj.BW.Len(); slot++ {
		if !reflect.DeepEqual(inj.BW.List(slot), def.BW.List(slot)) {
			t.Fatalf("backward lists differ at group %d", slot)
		}
	}
}

func TestHashAggCardinalityStats(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 5000, 40, 2)
	counts := datagen.GroupCounts(rel, "z", 40)
	res, err := HashAgg(rel, nil, microSpec(), AggOpts{Mode: Inject, Dirs: CaptureBoth, CountsByKey: counts})
	if err != nil {
		t.Fatal(err)
	}
	checkAggAgainstNaive(t, rel, res, true)
	// Exact preallocation: every list's capacity equals its length.
	for slot := 0; slot < res.BW.Len(); slot++ {
		l := res.BW.List(slot)
		if cap(l) != len(l) {
			t.Fatalf("group %d: cap %d != len %d (stats should preallocate exactly)", slot, cap(l), len(l))
		}
	}
}

func TestHashAggDirectionPruning(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 2000, 10, 3)
	bwOnly, err := HashAgg(rel, nil, microSpec(), AggOpts{Mode: Inject, Dirs: CaptureBackward})
	if err != nil {
		t.Fatal(err)
	}
	if bwOnly.FW != nil {
		t.Fatal("forward should be pruned")
	}
	if bwOnly.BW == nil || bwOnly.BW.Cardinality() != rel.N {
		t.Fatal("backward missing or incomplete")
	}
	fwOnly, err := HashAgg(rel, nil, microSpec(), AggOpts{Mode: Defer, Dirs: CaptureForward})
	if err != nil {
		t.Fatal(err)
	}
	if fwOnly.BW != nil {
		t.Fatal("backward should be pruned")
	}
	if fwOnly.FW == nil {
		t.Fatal("forward missing")
	}
}

func TestHashAggSubsetInput(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 2000, 10, 3)
	sub := []Rid{5, 10, 15, 20, 700, 800, 900}
	res, err := HashAgg(rel, sub, GroupBySpec{Keys: []string{"z"}, Aggs: []AggSpec{{Fn: Count, Name: "cnt"}}},
		AggOpts{Mode: Inject, Dirs: CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	cc := res.Out.Schema.MustCol("cnt")
	for i := 0; i < res.Out.N; i++ {
		total += res.Out.Int(cc, i)
	}
	if total != int64(len(sub)) {
		t.Fatalf("subset aggregation counted %d rows, want %d", total, len(sub))
	}
	// Forward entries outside the subset must be -1.
	inSub := map[Rid]bool{}
	for _, r := range sub {
		inSub[r] = true
	}
	for rid, o := range res.FW {
		if inSub[Rid(rid)] == (o == -1) {
			t.Fatalf("fw[%d] = %d inconsistent with subset membership", rid, o)
		}
	}
}

func TestHashAggStringKey(t *testing.T) {
	rel := storage.NewEmpty("t", storage.Schema{
		{Name: "flag", Type: storage.TString},
		{Name: "x", Type: storage.TFloat},
	})
	rel.AppendRow("A", 1.0)
	rel.AppendRow("B", 2.0)
	rel.AppendRow("A", 3.0)
	res, err := HashAgg(rel, nil, GroupBySpec{
		Keys: []string{"flag"},
		Aggs: []AggSpec{{Fn: Sum, Arg: expr.C("x"), Name: "s"}, {Fn: Avg, Arg: expr.C("x"), Name: "a"}},
	}, AggOpts{Mode: Inject, Dirs: CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != 2 {
		t.Fatalf("groups = %d", res.Out.N)
	}
	fc, sc, ac := res.Out.Schema.MustCol("flag"), res.Out.Schema.MustCol("s"), res.Out.Schema.MustCol("a")
	for i := 0; i < 2; i++ {
		switch res.Out.Str(fc, i) {
		case "A":
			if res.Out.Float(sc, i) != 4.0 || res.Out.Float(ac, i) != 2.0 {
				t.Errorf("group A: sum=%v avg=%v", res.Out.Float(sc, i), res.Out.Float(ac, i))
			}
			if got := res.BW.List(i); !reflect.DeepEqual(got, []Rid{0, 2}) {
				t.Errorf("group A rids = %v", got)
			}
		case "B":
			if res.Out.Float(sc, i) != 2.0 {
				t.Errorf("group B: sum=%v", res.Out.Float(sc, i))
			}
		default:
			t.Errorf("unexpected group %q", res.Out.Str(fc, i))
		}
	}
}

func TestHashAggCompositeKey(t *testing.T) {
	rel := storage.NewEmpty("t", storage.Schema{
		{Name: "a", Type: storage.TString},
		{Name: "b", Type: storage.TInt},
		{Name: "x", Type: storage.TFloat},
	})
	rel.AppendRow("p", 1, 10.0)
	rel.AppendRow("p", 2, 20.0)
	rel.AppendRow("p", 1, 30.0)
	rel.AppendRow("q", 1, 40.0)
	res, err := HashAgg(rel, nil, GroupBySpec{
		Keys: []string{"a", "b"},
		Aggs: []AggSpec{{Fn: Count, Name: "c"}},
	}, AggOpts{Mode: Defer, Dirs: CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != 3 {
		t.Fatalf("composite groups = %d, want 3", res.Out.N)
	}
	// (p,1) must have count 2 and rids {0,2}.
	ac, bc, cc := res.Out.Schema.MustCol("a"), res.Out.Schema.MustCol("b"), res.Out.Schema.MustCol("c")
	found := false
	for i := 0; i < res.Out.N; i++ {
		if res.Out.Str(ac, i) == "p" && res.Out.Int(bc, i) == 1 {
			found = true
			if res.Out.Int(cc, i) != 2 {
				t.Errorf("(p,1) count = %d", res.Out.Int(cc, i))
			}
			if got := res.BW.List(i); !reflect.DeepEqual(got, []Rid{0, 2}) {
				t.Errorf("(p,1) rids = %v", got)
			}
		}
	}
	if !found {
		t.Fatal("group (p,1) missing")
	}
}

func TestHashAggCountDistinct(t *testing.T) {
	rel := storage.NewEmpty("t", storage.Schema{
		{Name: "k", Type: storage.TInt},
		{Name: "s", Type: storage.TString},
		{Name: "n", Type: storage.TInt},
	})
	rel.AppendRow(1, "x", 5)
	rel.AppendRow(1, "y", 5)
	rel.AppendRow(1, "x", 7)
	rel.AppendRow(2, "z", 9)
	res, err := HashAgg(rel, nil, GroupBySpec{
		Keys: []string{"k"},
		Aggs: []AggSpec{
			{Fn: CountDistinct, Arg: expr.C("s"), Name: "ds"},
			{Fn: CountDistinct, Arg: expr.C("n"), Name: "dn"},
		},
	}, AggOpts{Mode: Inject, Dirs: CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	kc, dsc, dnc := res.Out.Schema.MustCol("k"), res.Out.Schema.MustCol("ds"), res.Out.Schema.MustCol("dn")
	for i := 0; i < res.Out.N; i++ {
		switch res.Out.Int(kc, i) {
		case 1:
			if res.Out.Int(dsc, i) != 2 || res.Out.Int(dnc, i) != 2 {
				t.Errorf("group 1: distinct = %d, %d", res.Out.Int(dsc, i), res.Out.Int(dnc, i))
			}
		case 2:
			if res.Out.Int(dsc, i) != 1 || res.Out.Int(dnc, i) != 1 {
				t.Errorf("group 2: distinct = %d, %d", res.Out.Int(dsc, i), res.Out.Int(dnc, i))
			}
		}
	}
}

func TestHashAggErrors(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 10, 2, 1)
	if _, err := HashAgg(rel, nil, GroupBySpec{}, AggOpts{}); err == nil {
		t.Error("empty key list should error")
	}
	if _, err := HashAgg(rel, nil, GroupBySpec{Keys: []string{"nope"}}, AggOpts{}); err == nil {
		t.Error("unknown key should error")
	}
	if _, err := HashAgg(rel, nil, GroupBySpec{Keys: []string{"z"}, Aggs: []AggSpec{{Fn: Sum}}}, AggOpts{}); err == nil {
		t.Error("SUM without argument should error")
	}
	if _, err := HashAgg(rel, nil, GroupBySpec{Keys: []string{"z"}, Aggs: []AggSpec{{Fn: CountDistinct}}}, AggOpts{}); err == nil {
		t.Error("COUNT DISTINCT without argument should error")
	}
}

func TestHashAggLineageIsPartition(t *testing.T) {
	// Property: for any skew, the backward lists partition [0, N): disjoint,
	// complete, and consistent with the forward array.
	for _, theta := range []float64{0, 0.5, 1.0, 1.6} {
		rel := datagen.Zipf("zipf", theta, 4000, 30, 17)
		res, err := HashAgg(rel, nil, GroupBySpec{Keys: []string{"z"}, Aggs: []AggSpec{{Fn: Count, Name: "c"}}},
			AggOpts{Mode: Inject, Dirs: CaptureBoth})
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, rel.N)
		for slot := 0; slot < res.BW.Len(); slot++ {
			for _, rid := range res.BW.List(slot) {
				if seen[rid] {
					t.Fatalf("theta=%v: rid %d appears in two groups", theta, rid)
				}
				seen[rid] = true
				if res.FW[rid] != Rid(slot) {
					t.Fatalf("theta=%v: fw/bw inconsistent at rid %d", theta, rid)
				}
			}
		}
		for rid, ok := range seen {
			if !ok {
				t.Fatalf("theta=%v: rid %d missing from lineage", theta, rid)
			}
		}
	}
}

func TestGroupCountsMatchLineage(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 3000, 15, 4)
	res, err := HashAgg(rel, nil, microSpec(), AggOpts{Mode: Inject, Dirs: CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	for slot, c := range res.GroupCounts {
		if int(c) != len(res.BW.List(slot)) {
			t.Fatalf("group %d: count %d != lineage size %d", slot, c, len(res.BW.List(slot)))
		}
	}
	_ = lineage.Rid(0)
}
