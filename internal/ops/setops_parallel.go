package ops

import (
	"smoke/internal/lineage"
	"smoke/internal/pool"
	"smoke/internal/storage"
)

// Morsel-parallel set-union capture. The hash-table build, probe, and
// output-scan phases stay serial (they determine the output and are mutation
// heavy), but the lineage backfill — which dominates capture cost and only
// probes the pinned table read-only, exactly like the serial Defer pass —
// splits each input into contiguous rid-range partitions. Partition-local
// (output id, input rid) pairs merge in partition order via MergePairsByRid,
// and forward entries write into a shared rid-addressed array (partitions own
// disjoint rid ranges). The merged indexes are element-identical to a serial
// run under either capture mode, because serial Inject and Defer already
// build identical indexes: both append each output's rids in input-scan
// order.

// SetUnionPar is SetUnion with morsel-parallel lineage capture when
// workers > 1 (workers <= 1 delegates to the serial operator).
func SetUnionPar(a *storage.Relation, aAttrs []string, b *storage.Relation, bAttrs []string,
	mode CaptureMode, dirs Directions, workers int, pl *pool.Pool) (SetOpResult, error) {

	if workers <= 1 || mode == None || dirs == 0 || a.N+b.N < 2 {
		return SetUnion(a, aAttrs, b, bAttrs, mode, dirs)
	}

	// Serial execution phases without capture (Defer-style: the pinned hash
	// table carries everything the backfill needs).
	res, t, _, err := setOpExec(a, aAttrs, b, bAttrs, unionKind)
	if err != nil {
		return SetOpResult{}, err
	}
	outN := res.Out.N
	captureB := true

	if dirs.Forward() {
		res.AFW = newForwardArray(a.N, true)
		res.BFW = newForwardArray(b.N, true)
	}

	backfill := func(rel *storage.Relation, attrs []string, fw []Rid) (*lineage.RidIndex, error) {
		ranges := pool.Split(rel.N, workers)
		pairO := make([][]Rid, len(ranges))
		pairR := make([][]Rid, len(ranges))
		var encErr error
		pl.RunSplit(ranges, func(part, lo, hi int) {
			enc, err := newSetKeyEnc(rel, attrs)
			if err != nil {
				encErr = err
				return
			}
			var po, pr []Rid
			for rid := int32(lo); rid < int32(hi); rid++ {
				slot := t.lookup(enc.encode(rid), false)
				if slot < 0 {
					continue
				}
				oid := t.entries[slot].oid
				if oid < 0 {
					continue
				}
				if dirs.Backward() {
					po = append(po, oid)
					pr = append(pr, rid)
				}
				if fw != nil {
					fw[rid] = oid
				}
			}
			pairO[part], pairR[part] = po, pr
		})
		if encErr != nil {
			return nil, encErr
		}
		if !dirs.Backward() {
			return nil, nil
		}
		// Output ids are global already; only the per-output concatenation
		// order (partition order = input scan order) matters.
		return lineage.MergePairsByRid(pairO, pairR, outN,
			func(_ int, v Rid) Rid { return v }), nil
	}

	abw, err := backfill(a, aAttrs, res.AFW)
	if err != nil {
		return SetOpResult{}, err
	}
	res.ABW = abw
	if captureB {
		bbw, err := backfill(b, bAttrs, res.BFW)
		if err != nil {
			return SetOpResult{}, err
		}
		res.BBW = bbw
	}
	return res, nil
}
