package ops

import (
	"smoke/internal/hashtab"
	"smoke/internal/lineage"
	"smoke/internal/pool"
	"smoke/internal/scratch"
	"smoke/internal/storage"
)

// pkfkLocal is one probe partition's capture state: output pairs and lineage
// with partition-local output rids (rebased during the merge). The serial
// path fills buildFW directly (reusing preallocated indexes, P4); parallel
// partitions instead collect (build rid, local output rid) pairs — a
// build.N-sized index per partition would multiply build-side memory by the
// worker count — and the merge builds one exactly-sized index from them.
type pkfkLocal struct {
	buildBW, probeBW   []Rid
	outBuild, outProbe []Rid
	buildFW            *lineage.RidIndex
	fwPairB, fwPairO   []Rid
	outN               Rid
}

// pkfkProbeRange is the pk-fk probe range kernel, shared by the serial path
// (one range covering everything) and the parallel path (one call per
// morsel): it probes positions [lo, hi) of the probe input (rids, or
// [0, probe.N) when rids is nil) against the shared read-only hash table,
// capturing into local state with range-local output rids. probeFW is the
// shared, probe-rid-addressed forward array; partitions own disjoint probe
// rid sets so its writes never conflict. fastFW selects AppendFast for a
// build-side forward index preallocated from exact match counts (the
// Smoke-I+TC serial path); collectFW gathers build-side forward pairs
// instead of filling an index (the parallel path).
func pkfkProbeRange(lo, hi int, probeCol []int64, ht *hashtab.Map, probeRids []Rid,
	probeFW []Rid, fastFW, collectFW, wantBW, materialize bool, l *pkfkLocal) {

	wantPairs := materialize && !wantBW
	if wantBW {
		l.buildBW = make([]Rid, 0, hi-lo)
		l.probeBW = make([]Rid, 0, hi-lo)
	} else if wantPairs {
		l.outBuild = make([]Rid, 0, hi-lo)
		l.outProbe = make([]Rid, 0, hi-lo)
	}
	// Probes run batched: keys gather into pooled scratch and the hash table
	// resolves a whole batch per call (hashing amortized, probe loop
	// bounds-check-free); matches then materialize in probe order, so output
	// and lineage are identical to a row-at-a-time loop. Build rids are
	// non-negative, so GetBatch's -1 sentinel is unambiguous for misses.
	keys := scratch.Ints(aggBatchSize)
	slots := scratch.Rids(aggBatchSize)
	ridBuf := scratch.Rids(aggBatchSize)
	o := Rid(0)
	for base := lo; base < hi; base += aggBatchSize {
		end := base + aggBatchSize
		if end > hi {
			end = hi
		}
		m := end - base
		rb := ridBuf[:m]
		if probeRids == nil {
			for j := range rb {
				rb[j] = Rid(base + j)
			}
		} else {
			copy(rb, probeRids[base:end])
		}
		kb, sb := keys[:m], slots[:m]
		for j, r := range rb {
			kb[j] = probeCol[r]
		}
		ht.GetBatch(kb, sb)
		for j, brid := range sb {
			if brid < 0 {
				continue
			}
			prid := rb[j]
			if wantBW {
				l.buildBW = append(l.buildBW, brid)
				l.probeBW = append(l.probeBW, prid)
			} else if wantPairs {
				l.outBuild = append(l.outBuild, brid)
				l.outProbe = append(l.outProbe, prid)
			}
			if probeFW != nil {
				probeFW[prid] = o
			}
			if l.buildFW != nil {
				if fastFW {
					l.buildFW.AppendFast(int(brid), o)
				} else {
					l.buildFW.Append(int(brid), o)
				}
			} else if collectFW {
				l.fwPairB = append(l.fwPairB, brid)
				l.fwPairO = append(l.fwPairO, o)
			}
			o++
		}
	}
	scratch.PutInts(keys)
	scratch.PutRids(slots)
	scratch.PutRids(ridBuf)
	l.outN = o
}

// pkfkParallelProbe runs the probe phase of HashJoinPKFK morsel-parallel
// over the (serially built) hash table and merges partition-local captures
// in partition order, producing output and lineage identical to the serial
// probe loop.
func pkfkParallelProbe(build, probe *storage.Relation, probeCol []int64, ht *hashtab.Map,
	probeRids []Rid, nProbe int, opts JoinOpts) PKFKResult {

	capture := opts.Dirs != 0
	wantBW := capture && opts.Dirs.Backward()
	wantFW := capture && opts.Dirs.Forward()

	res := PKFKResult{}
	var probeFW []Rid
	if wantFW {
		probeFW = newForwardArray(probe.N, true)
	}

	ranges := pool.Split(nProbe, opts.Workers)
	locals := make([]pkfkLocal, len(ranges))
	opts.Pool.RunSplit(ranges, func(part, lo, hi int) {
		pkfkProbeRange(lo, hi, probeCol, ht, probeRids, probeFW, false, wantFW, wantBW, opts.Materialize, &locals[part])
	})

	offsets := make([]Rid, len(locals))
	off := Rid(0)
	for p := range locals {
		offsets[p] = off
		off += locals[p].outN
	}
	res.OutN = int(off)

	if wantBW {
		bb := make([][]Rid, len(locals))
		pb := make([][]Rid, len(locals))
		for p := range locals {
			bb[p] = locals[p].buildBW
			pb[p] = locals[p].probeBW
		}
		res.BuildBW = lineage.ConcatRidArrays(bb)
		res.ProbeBW = lineage.ConcatRidArrays(pb)
		if res.BuildBW == nil {
			// Zero matches: keep the serial kernel's non-nil empty shape
			// (partition 0 ran the same kernel).
			res.BuildBW, res.ProbeBW = locals[0].buildBW, locals[0].probeBW
		}
	}
	if wantFW {
		for p, r := range ranges {
			if probeRids == nil {
				lineage.OffsetRebase(probeFW, r.Lo, r.Hi, offsets[p])
			} else {
				lineage.OffsetRebaseRids(probeFW, probeRids[r.Lo:r.Hi], offsets[p])
			}
		}
		res.ProbeFW = probeFW
		pairB := make([][]Rid, len(locals))
		pairO := make([][]Rid, len(locals))
		for p := range locals {
			pairB[p] = locals[p].fwPairB
			pairO[p] = locals[p].fwPairO
		}
		res.BuildFW = lineage.MergePairsByRid(pairB, pairO, build.N,
			func(part int, o Rid) Rid { return o + offsets[part] })
	}
	if opts.Materialize {
		b, p := res.BuildBW, res.ProbeBW
		if b == nil {
			ob := make([][]Rid, len(locals))
			op := make([][]Rid, len(locals))
			for i := range locals {
				ob[i] = locals[i].outBuild
				op[i] = locals[i].outProbe
			}
			b, p = lineage.ConcatRidArrays(ob), lineage.ConcatRidArrays(op)
		}
		res.Out = materializeJoinCols(build, probe, b, p, opts.Cols)
	}
	return res
}
