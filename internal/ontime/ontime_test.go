package ontime

import (
	"reflect"
	"testing"
)

func TestGenerateShape(t *testing.T) {
	cfg := Config{Rows: 50000, Airports: 100, Days: 365, Seed: 1}
	rel := Generate(cfg)
	if rel.N != cfg.Rows {
		t.Fatalf("N = %d", rel.N)
	}
	ll := rel.Cols[0].Ints
	dt := rel.Cols[1].Ints
	dl := rel.Cols[2].Ints
	cr := rel.Cols[3].Ints
	cells := map[int64]bool{}
	for i := 0; i < rel.N; i++ {
		cells[ll[i]] = true
		if ll[i] < 0 || ll[i] >= GridSide*GridSide {
			t.Fatalf("latlon bin out of grid: %d", ll[i])
		}
		if dt[i] < 0 || dt[i] >= int64(cfg.Days) {
			t.Fatalf("date bin out of range: %d", dt[i])
		}
		if dl[i] < 0 || dl[i] >= DelayBins {
			t.Fatalf("delay bin out of range: %d", dl[i])
		}
		if cr[i] < 0 || cr[i] >= NumCarriers {
			t.Fatalf("carrier out of range: %d", cr[i])
		}
	}
	if len(cells) > cfg.Airports {
		t.Fatalf("%d active cells > %d airports", len(cells), cfg.Airports)
	}
	// Sparsity: active cells are a tiny fraction of the grid.
	if len(cells)*100 > GridSide*GridSide {
		t.Fatal("latlon dimension not sparse")
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Rows: 1000, Airports: 20, Days: 30, Seed: 7})
	b := Generate(Config{Rows: 1000, Airports: 20, Days: 30, Seed: 7})
	if !reflect.DeepEqual(a.Cols[0].Ints, b.Cols[0].Ints) {
		t.Fatal("same seed differs")
	}
}

func TestDelaySkew(t *testing.T) {
	rel := Generate(Config{Rows: 100000, Airports: 50, Days: 100, Seed: 2})
	counts := make([]int, DelayBins)
	for _, d := range rel.Cols[2].Ints {
		counts[d]++
	}
	if counts[0] < counts[DelayBins-1] {
		t.Fatal("delay distribution should be skewed toward on-time")
	}
}

func TestDims(t *testing.T) {
	rel := Generate(Config{Rows: 10, Airports: 5, Days: 5, Seed: 1})
	for _, d := range Dims() {
		if rel.Schema.Col(d) < 0 {
			t.Fatalf("dimension %q missing from schema", d)
		}
	}
	if DefaultConfig().Rows <= 0 {
		t.Fatal("default config empty")
	}
}
