// Package ontime generates flight-record data shaped like the Ontime dataset
// the paper's crossfilter experiment uses (§6.5.1): four dimensions matching
// the four visualization views — a sparse <lat,lon> spatial bin, a date bin,
// a departure-delay bin (8 buckets), and a carrier (29 values). The real
// dataset (123.5M rows, 12GB) is not redistributable; this generator
// reproduces what drives crossfilter cost — bin cardinalities, spatial
// sparsity (few active cells out of a 256×256 grid), and skewed popularity —
// at configurable scale.
package ontime

import (
	"math/rand"

	"smoke/internal/storage"
)

// Dimension cardinalities (the paper's view bin counts).
const (
	GridSide    = 256 // <lat,lon> bins form a 256×256 grid = 65,536 cells
	DelayBins   = 8
	NumCarriers = 29
)

// Config scales the generator.
type Config struct {
	Rows     int
	Airports int // active <lat,lon> cells (paper: ~8,100 non-zero bins)
	Days     int // date bins (paper: 7,762)
	Seed     int64
}

// DefaultConfig returns a laptop-scale configuration preserving the paper's
// shape: many sparse spatial bins, thousands of date bins, one skewed and one
// tiny categorical dimension.
func DefaultConfig() Config {
	return Config{Rows: 2_000_000, Airports: 2000, Days: 2000, Seed: 1}
}

// Schema returns the flight-record schema. All dimensions are pre-binned
// integers, as the crossfilter views consume them.
func Schema() storage.Schema {
	return storage.Schema{
		{Name: "latlon", Type: storage.TInt},
		{Name: "date", Type: storage.TInt},
		{Name: "delay", Type: storage.TInt},
		{Name: "carrier", Type: storage.TInt},
	}
}

// Dims lists the four view dimensions in the paper's order.
func Dims() []string { return []string{"latlon", "date", "delay", "carrier"} }

// Generate builds the flight table deterministically.
func Generate(cfg Config) *storage.Relation {
	rng := rand.New(rand.NewSource(cfg.Seed))
	rel := storage.NewRelation("ontime", Schema(), cfg.Rows)

	// Airports: random distinct grid cells with zipf-like popularity
	// (hub-and-spoke traffic).
	cells := make([]int64, cfg.Airports)
	seen := map[int64]bool{}
	for i := range cells {
		for {
			c := int64(rng.Intn(GridSide * GridSide))
			if !seen[c] {
				seen[c] = true
				cells[i] = c
				break
			}
		}
	}
	cum := make([]float64, cfg.Airports)
	sum := 0.0
	for i := range cum {
		sum += 1.0 / float64(i+1)
		cum[i] = sum
	}
	for i := range cum {
		cum[i] /= sum
	}
	sampleAirport := func(u float64) int64 {
		lo, hi := 0, cfg.Airports-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return cells[lo]
	}

	ll := rel.Cols[0].Ints
	dt := rel.Cols[1].Ints
	dl := rel.Cols[2].Ints
	cr := rel.Cols[3].Ints
	for i := 0; i < cfg.Rows; i++ {
		ll[i] = sampleAirport(rng.Float64())
		// Mild weekly seasonality on top of uniform days.
		day := rng.Intn(cfg.Days)
		if day%7 >= 5 && rng.Intn(3) == 0 {
			day = (day + 2) % cfg.Days
		}
		dt[i] = int64(day)
		// Delay: heavily skewed toward "on time" buckets.
		r := rng.Float64()
		switch {
		case r < 0.55:
			dl[i] = 0
		case r < 0.75:
			dl[i] = 1
		case r < 0.85:
			dl[i] = 2
		default:
			dl[i] = int64(3 + rng.Intn(DelayBins-3))
		}
		// Carriers: zipf-ish market share.
		c := 0
		for c < NumCarriers-1 && rng.Float64() > 0.25 {
			c++
		}
		cr[i] = int64(c)
	}
	return rel
}
