package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"smoke/internal/core"
	"smoke/internal/diskstore"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/server"
	"smoke/internal/serverclient"
	"smoke/internal/shard"
	"smoke/internal/storage"
)

// Serve is the HTTP-layer experiment (beyond-paper): a load generator drives
// concurrent crossfilter sessions against a smoked server (httptest
// transport, real handler stack — admission gate, session registry,
// fingerprint cache, fair-shared worker pool) and reports request-latency
// percentiles for the two request classes of the interactive loop:
//
//   - base: run the capture query, retained in the session;
//   - trace: a bound backward trace of one bar, re-aggregated into the
//     second view (the per-interaction request). Bars repeat within a
//     session (crossfilter re-brushing), so a slice of traces hits the
//     plan-fingerprint cache; rows report the hit rate observed.
//
// Before timing, every distinct (session, bar) served trace is gated
// element-identical to in-process execution of the same consuming plan —
// serving must change where the query runs, never what it answers. Results
// land in BENCH_serve.json.
func Serve(cfg Config) error {
	n := 500_000
	sessions, interactions := 8, 40
	bars1, bars2 := 100, 50
	switch {
	case cfg.paper():
		n = 5_000_000
		sessions, interactions = 16, 100
	case cfg.tiny():
		n = 50_000
		sessions, interactions = 4, 16
	}
	workers := 4

	db := core.Open(core.WithWorkers(workers))
	defer db.Close()
	rel := consumeData(n, bars1, bars2)
	db.Register(rel)

	srv := server.New(server.Config{DB: db})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx := context.Background()
	client := serverclient.New(ts.URL, ts.Client())

	const baseSQL = "SELECT d1, COUNT(*) AS cnt FROM interact GROUP BY d1"
	traceReq := func(bar int64) serverclient.TraceRequest {
		return serverclient.TraceRequest{
			Direction: "backward", Table: "interact", Rids: []int64{bar},
			GroupBy: []string{"d2"},
			Aggs: []serverclient.Agg{
				{Fn: "count", Name: "n"}, {Fn: "sum", Arg: "v", Name: "sv"},
			},
		}
	}

	// In-process reference: the same base query and consuming plan on the
	// same DB (same parallelism, so float sums are bit-identical too; the
	// comparison still tolerates last-ulp drift to stay robust).
	ref, err := db.Query().From("interact", nil).GroupBy("d1").
		Agg(ops.Count, nil, "cnt").
		Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		return err
	}
	refTrace := func(bar int64) (*core.Result, error) {
		return db.Query().Backward(ref, "interact", []lineage.Rid{lineage.Rid(bar)}).
			GroupBy("d2").Agg(ops.Count, nil, "n").Agg(ops.Sum, expr.C("v"), "sv").
			Run(core.CaptureOptions{})
	}

	// The per-session interaction script: bars walk with period 8 so each
	// session revisits bars (re-brushing) and distinct sessions overlap.
	barFor := func(sess, i int) int64 { return int64((sess*3 + i) % 8 * (bars1 / 8) % bars1) }

	// ---- Equality gate (serial, untimed) ----------------------------------
	gateSess, err := client.NewSession(ctx)
	if err != nil {
		return err
	}
	if _, err := gateSess.Run(ctx, "view1", serverclient.QueryRequest{SQL: baseSQL}); err != nil {
		return err
	}
	gated := map[int64]bool{}
	for s := 0; s < sessions; s++ {
		for i := 0; i < interactions; i++ {
			bar := barFor(s, i)
			if gated[bar] {
				continue
			}
			gated[bar] = true
			got, err := gateSess.Trace(ctx, "view1", traceReq(bar))
			if err != nil {
				return fmt.Errorf("serve: gate trace bar %d: %w", bar, err)
			}
			want, err := refTrace(bar)
			if err != nil {
				return err
			}
			if err := diffServed(got, want); err != nil {
				return fmt.Errorf("serve: served trace of bar %d diverges from in-process execution: %w", bar, err)
			}
		}
	}
	if err := gateSess.Close(ctx); err != nil {
		return err
	}

	// ---- Timed concurrent load -------------------------------------------
	type lat struct {
		baseMS  []float64
		traceMS []float64
		cached  int
		traces  int
	}
	run := func() (lat, error) {
		var mu sync.Mutex
		var agg lat
		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		for s := 0; s < sessions; s++ {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				var local lat
				sess, err := client.NewSession(ctx)
				if err != nil {
					errs <- err
					return
				}
				defer sess.Close(ctx)
				t0 := time.Now()
				if _, err := sess.Run(ctx, "view1", serverclient.QueryRequest{SQL: baseSQL}); err != nil {
					errs <- fmt.Errorf("session %d base: %w", s, err)
					return
				}
				local.baseMS = append(local.baseMS, ms(time.Since(t0)))
				for i := 0; i < interactions; i++ {
					t1 := time.Now()
					res, err := sess.Trace(ctx, "view1", traceReq(barFor(s, i)))
					if err != nil {
						errs <- fmt.Errorf("session %d trace %d: %w", s, i, err)
						return
					}
					local.traceMS = append(local.traceMS, ms(time.Since(t1)))
					local.traces++
					if res.Cached {
						local.cached++
					}
				}
				mu.Lock()
				agg.baseMS = append(agg.baseMS, local.baseMS...)
				agg.traceMS = append(agg.traceMS, local.traceMS...)
				agg.cached += local.cached
				agg.traces += local.traces
				mu.Unlock()
				errs <- nil
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				return lat{}, err
			}
		}
		return agg, nil
	}
	// One warmup round primes the fingerprint cache the way a brushing
	// client would, then the measured round.
	if _, err := run(); err != nil {
		return err
	}
	measured, err := run()
	if err != nil {
		return err
	}

	// ---- Demotion churn (disk tier, background flusher) -------------------
	// A second server over a disk store with a ~one-result memory budget:
	// every base retention demotes its predecessor, so the trace traffic
	// below runs while the background flusher is continuously writing
	// segments. The p95 here is the "no handler blocks on segment I/O"
	// number. Per-session base SQL is distinct (no cache-shared retentions
	// resisting demotion) and the fingerprint cache is off, so every trace
	// pays the full serving path.
	churnDir, err := os.MkdirTemp("", "smoke-serve-churn-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(churnDir)
	store, err := diskstore.Open(churnDir)
	if err != nil {
		return err
	}
	defer store.Close()
	srv2 := server.New(server.Config{DB: db, Store: store, MaxRetainedBytes: 1, CacheEntries: -1})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	client2 := serverclient.New(ts2.URL, ts2.Client())
	// The filter passes every row (d2 stays far below the bound), so each
	// session's capture is element-identical to ref while its fingerprint is
	// unique.
	churnSQL := func(s int) string {
		return fmt.Sprintf("SELECT d1, COUNT(*) AS cnt FROM interact WHERE d2 < %d GROUP BY d1", 1_000_000+s)
	}

	// Equality gate under churn (serial, untimed): the first trace of every
	// session variant must match in-process execution.
	for s := 0; s < sessions; s++ {
		gs, err := client2.NewSession(ctx)
		if err != nil {
			return err
		}
		if _, err := gs.Run(ctx, "view1", serverclient.QueryRequest{SQL: churnSQL(s)}); err != nil {
			return err
		}
		bar := barFor(s, 0)
		got, err := gs.Trace(ctx, "view1", traceReq(bar))
		if err != nil {
			return fmt.Errorf("serve: churn gate trace bar %d: %w", bar, err)
		}
		want, err := refTrace(bar)
		if err != nil {
			return err
		}
		if err := diffServed(got, want); err != nil {
			return fmt.Errorf("serve: churned trace of bar %d diverges from in-process execution: %w", bar, err)
		}
		if err := gs.Close(ctx); err != nil {
			return err
		}
	}

	churnRun := func() (lat, error) {
		var mu sync.Mutex
		var agg lat
		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		for s := 0; s < sessions; s++ {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				var local lat
				sess, err := client2.NewSession(ctx)
				if err != nil {
					errs <- err
					return
				}
				defer sess.Close(ctx)
				t0 := time.Now()
				if _, err := sess.Run(ctx, "view1", serverclient.QueryRequest{SQL: churnSQL(s)}); err != nil {
					errs <- fmt.Errorf("churn session %d base: %w", s, err)
					return
				}
				local.baseMS = append(local.baseMS, ms(time.Since(t0)))
				for i := 0; i < interactions; i++ {
					t1 := time.Now()
					if _, err := sess.Trace(ctx, "view1", traceReq(barFor(s, i))); err != nil {
						errs <- fmt.Errorf("churn session %d trace %d: %w", s, i, err)
						return
					}
					local.traceMS = append(local.traceMS, ms(time.Since(t1)))
					local.traces++
				}
				mu.Lock()
				agg.baseMS = append(agg.baseMS, local.baseMS...)
				agg.traceMS = append(agg.traceMS, local.traceMS...)
				agg.traces += local.traces
				mu.Unlock()
				errs <- nil
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				return lat{}, err
			}
		}
		return agg, nil
	}
	if _, err := churnRun(); err != nil { // warmup: page caches, pool steady state
		return err
	}
	churned, err := churnRun()
	if err != nil {
		return err
	}

	// ---- Promotion-free small-trace sweep ---------------------------------
	// Deterministic acceptance sequence for in-situ serving: retain, demote
	// (the one-result budget pushes view1 out when pusher lands), wait for
	// the flusher to drain, then issue exactly one small bound trace per
	// session. Every trace must answer off the segment-backed view: the
	// in-situ counter advances by the session count and the promote counter
	// not at all.
	sweepBar := int64(bars1 - 1) // smallest bar under the u-squared skew
	wantSweep, err := refTrace(sweepBar)
	if err != nil {
		return err
	}
	sweepSess := make([]*serverclient.Session, 0, sessions)
	for s := 0; s < sessions; s++ {
		sess, err := client2.NewSession(ctx)
		if err != nil {
			return err
		}
		if _, err := sess.Run(ctx, "view1", serverclient.QueryRequest{SQL: churnSQL(s)}); err != nil {
			return err
		}
		if _, err := sess.Run(ctx, "pusher", serverclient.QueryRequest{
			SQL: fmt.Sprintf("SELECT d2, COUNT(*) AS cnt FROM interact WHERE d1 < %d GROUP BY d2", 1_000_000+s)}); err != nil {
			return err
		}
		sweepSess = append(sweepSess, sess)
	}
	// The client decodes with UseNumber, so healthz numbers arrive as
	// json.Number.
	counter := func(h map[string]any, k string) float64 {
		switch v := h[k].(type) {
		case float64:
			return v
		case json.Number:
			f, _ := v.Float64()
			return f
		}
		return 0
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := client2.Health(ctx)
		if err != nil {
			return err
		}
		if counter(h, "flusher_queue_depth") == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("serve: flusher queue never drained after the demotion wave")
		}
		time.Sleep(10 * time.Millisecond)
	}
	before, err := client2.Health(ctx)
	if err != nil {
		return err
	}
	var sweepMS []float64
	for s, sess := range sweepSess {
		t0 := time.Now()
		got, err := sess.Trace(ctx, "view1", traceReq(sweepBar))
		if err != nil {
			return fmt.Errorf("serve: sweep trace session %d: %w", s, err)
		}
		sweepMS = append(sweepMS, ms(time.Since(t0)))
		if err := diffServed(got, wantSweep); err != nil {
			return fmt.Errorf("serve: in-situ trace of bar %d diverges from in-process execution: %w", sweepBar, err)
		}
	}
	after, err := client2.Health(ctx)
	if err != nil {
		return err
	}
	if d := counter(after, "insitu_traces") - counter(before, "insitu_traces"); d != float64(len(sweepSess)) {
		return fmt.Errorf("serve: small-trace sweep answered %d of %d traces in situ (promotion-free serving regressed)",
			int(d), len(sweepSess))
	}
	if d := counter(after, "promotes") - counter(before, "promotes"); d != 0 {
		return fmt.Errorf("serve: small-trace sweep promoted %d results, want 0", int(d))
	}

	// ---- Horizontal scale-out (shard tier) --------------------------------
	// The same interactive loop against the scatter/gather coordinator at
	// shards=1 (pure proxy: the coordinator-overhead floor — one node, one
	// worker) and shards=4 (one worker per shard: the scale-out claim). Every
	// distinct bar's served trace is gated element-identical to in-process
	// single-node execution before timing; benchgate's shard rule then holds
	// the shards=4 trace p95 within a fixed factor of shards=1.
	wireFields := []serverclient.Field{
		{Name: "d1", Type: "int"}, {Name: "d2", Type: "int"}, {Name: "v", Type: "float"},
	}
	wireRows := make([][]any, rel.N)
	for i := 0; i < rel.N; i++ {
		wireRows[i] = []any{rel.Cols[0].Ints[i], rel.Cols[1].Ints[i], rel.Cols[2].Floats[i]}
	}
	wantBar := map[int64]*core.Result{}
	for bar := range gated {
		w, err := refTrace(bar)
		if err != nil {
			return err
		}
		wantBar[bar] = w
	}
	shardCounts := []int{1, 4}
	shardTraceMS := map[int][]float64{}
	for _, shards := range shardCounts {
		err := func() error {
			// MaxInFlight covers the generator's concurrency: the default
			// (4×GOMAXPROCS) fails fast with 429 on small machines, and this
			// experiment measures latency, not load shedding.
			coord := shard.New(shard.Config{
				Shards: shards, Workers: 1,
				ShardTimeout: 60 * time.Second,
				MaxInFlight:  4 * sessions,
			})
			tsc := httptest.NewServer(coord)
			defer func() {
				tsc.Close()
				_ = coord.Close()
			}()
			cc := serverclient.New(tsc.URL, tsc.Client())
			if err := cc.CreateTableDist(ctx, "interact", wireFields, wireRows, "", "shard"); err != nil {
				return fmt.Errorf("serve: shards=%d ingest: %w", shards, err)
			}

			// Equality gate (serial, untimed): the scattered base result and
			// every distinct bar's scattered trace vs in-process execution.
			gs, err := cc.NewSession(ctx)
			if err != nil {
				return err
			}
			baseRes, err := gs.Run(ctx, "view1", serverclient.QueryRequest{SQL: baseSQL})
			if err != nil {
				return fmt.Errorf("serve: shards=%d base: %w", shards, err)
			}
			if err := diffServed(baseRes, ref); err != nil {
				return fmt.Errorf("serve: shards=%d base diverges from single-node execution: %w", shards, err)
			}
			for bar, want := range wantBar {
				got, err := gs.Trace(ctx, "view1", traceReq(bar))
				if err != nil {
					return fmt.Errorf("serve: shards=%d gate trace bar %d: %w", shards, bar, err)
				}
				if err := diffServed(got, want); err != nil {
					return fmt.Errorf("serve: shards=%d trace of bar %d diverges from single-node execution: %w", shards, bar, err)
				}
			}
			if err := gs.Close(ctx); err != nil {
				return err
			}

			// Timed concurrent load, one warmup round then the measured round.
			shardRun := func() ([]float64, error) {
				var mu sync.Mutex
				var all []float64
				var wg sync.WaitGroup
				errs := make(chan error, sessions)
				for s := 0; s < sessions; s++ {
					s := s
					wg.Add(1)
					go func() {
						defer wg.Done()
						sess, err := cc.NewSession(ctx)
						if err != nil {
							errs <- err
							return
						}
						defer sess.Close(ctx)
						if _, err := sess.Run(ctx, "view1", serverclient.QueryRequest{SQL: baseSQL}); err != nil {
							errs <- fmt.Errorf("shard session %d base: %w", s, err)
							return
						}
						var local []float64
						for i := 0; i < interactions; i++ {
							t1 := time.Now()
							if _, err := sess.Trace(ctx, "view1", traceReq(barFor(s, i))); err != nil {
								errs <- fmt.Errorf("shard session %d trace %d: %w", s, i, err)
								return
							}
							local = append(local, ms(time.Since(t1)))
						}
						mu.Lock()
						all = append(all, local...)
						mu.Unlock()
						errs <- nil
					}()
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					if err != nil {
						return nil, err
					}
				}
				return all, nil
			}
			if _, err := shardRun(); err != nil {
				return err
			}
			measured, err := shardRun()
			if err != nil {
				return err
			}
			shardTraceMS[shards] = measured
			return nil
		}()
		if err != nil {
			return err
		}
	}

	type row struct {
		Op       string  `json:"op"`
		Sessions int     `json:"sessions"`
		Workers  int     `json:"workers"`
		Shards   int     `json:"shards,omitempty"`
		Requests int     `json:"requests"`
		P50      float64 `json:"p50_ms"`
		P95      float64 `json:"p95_ms"`
		P99      float64 `json:"p99_ms"`
		HitRate  float64 `json:"cache_hit_rate"`
	}
	report := struct {
		Tuples   int    `json:"tuples"`
		Sessions int    `json:"sessions"`
		Cores    int    `json:"cores"`
		Mode     string `json:"mode"`
		Rows     []row  `json:"rows"`
		Created  string `json:"created"`
	}{Tuples: n, Sessions: sessions, Cores: runtime.NumCPU(), Mode: "inject", Created: time.Now().Format(time.RFC3339)}

	mkRow := func(op string, ls []float64, hit float64) row {
		return row{
			Op: op, Sessions: sessions, Workers: workers, Requests: len(ls),
			P50: percentile(ls, 50), P95: percentile(ls, 95), P99: percentile(ls, 99),
			HitRate: hit,
		}
	}
	hitRate := 0.0
	if measured.traces > 0 {
		hitRate = float64(measured.cached) / float64(measured.traces)
	}
	report.Rows = append(report.Rows,
		mkRow("base", measured.baseMS, 0),
		mkRow("trace", measured.traceMS, hitRate),
		mkRow("trace-churn", churned.traceMS, 0),
		mkRow("trace-insitu", sweepMS, 0),
	)
	for _, shards := range shardCounts {
		r := mkRow(fmt.Sprintf("trace-shard%d", shards), shardTraceMS[shards], 0)
		r.Workers = 1 // per-shard worker count; total parallelism is shards×1
		r.Shards = shards
		report.Rows = append(report.Rows, r)
	}

	cfg.printf("Figure S (beyond-paper): served crossfilter sessions (%d concurrent, %d interactions each, %d tuples), request latency (ms)\n",
		sessions, interactions, n)
	cfg.printf("%-8s %-10s %-10s %-10s %-10s %-10s\n", "op", "requests", "p50", "p95", "p99", "cache-hit")
	for _, r := range report.Rows {
		cfg.printf("%-8s %-10d %-10.2f %-10.2f %-10.2f %-10.2f\n", r.Op, r.Requests, r.P50, r.P95, r.P99, r.HitRate)
	}

	if cfg.JSONDir != "" {
		path := filepath.Join(cfg.JSONDir, "BENCH_serve.json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&report); err != nil {
			return err
		}
		cfg.printf("wrote %s\n", path)
	}
	return nil
}

// percentile returns the p-th percentile (nearest-rank) of ls.
func percentile(ls []float64, p int) float64 {
	if len(ls) == 0 {
		return 0
	}
	sorted := append([]float64(nil), ls...)
	sort.Float64s(sorted)
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// diffServed compares a served (JSON round-tripped) result against an
// in-process Result element-for-element. Float columns tolerate last-ulp
// drift; everything else must match exactly.
func diffServed(got *serverclient.Result, want *core.Result) error {
	if got.N != want.Out.N {
		return fmt.Errorf("rows: %d, want %d", got.N, want.Out.N)
	}
	for i := 0; i < want.Out.N; i++ {
		for c, f := range want.Out.Schema {
			switch f.Type {
			case storage.TInt:
				if got.Rows[i][c] != want.Out.Int(c, i) {
					return fmt.Errorf("row %d col %s: %v, want %d", i, f.Name, got.Rows[i][c], want.Out.Int(c, i))
				}
			case storage.TFloat:
				g, ok := got.Rows[i][c].(float64)
				w := want.Out.Float(c, i)
				if !ok || (g != w && math.Abs(g-w) > 1e-9*math.Max(math.Abs(g), math.Abs(w))) {
					return fmt.Errorf("row %d col %s: %v, want %v", i, f.Name, got.Rows[i][c], w)
				}
			default:
				if got.Rows[i][c] != want.Out.Str(c, i) {
					return fmt.Errorf("row %d col %s: %v, want %q", i, f.Name, got.Rows[i][c], want.Out.Str(c, i))
				}
			}
		}
	}
	return nil
}
