package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"smoke/internal/datagen"
	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/pool"
)

// ParScale is the worker-scaling experiment for the morsel-parallel engine:
// the select and group-by microbenchmarks (§6.1) run end-to-end (execute +
// capture, Inject, both directions) at workers = 1/2/4/8 over one shared
// pool. Before timing, it asserts that every parallel run's lineage is
// element-for-element identical to the serial run — scaling numbers for
// wrong lineage would be meaningless. Results also land in
// BENCH_parallel.json (the perf-trajectory record; see DESIGN.md).
//
// Speedups track physical core count: expect ~1x at every worker count on a
// single-core machine and >= 2x at workers=4 on >= 4 cores.
func ParScale(cfg Config) error {
	n := 1_000_000
	groups := 10_000
	switch {
	case cfg.paper():
		n = 10_000_000
	case cfg.tiny():
		n = 100_000
		groups = 1_000
	}
	workerCounts := []int{1, 2, 4, 8}
	p := pool.New(workerCounts[len(workerCounts)-1])
	defer p.Close()

	rel := datagen.Zipf("zipf", 1.0, n, groups, 42)
	filter := expr.LtE(expr.C("v"), expr.F(50))
	pred, err := expr.CompilePred(filter, rel, nil)
	if err != nil {
		return err
	}
	kern := expr.CompileBitKernel(filter, rel, nil)
	aggSpec := microAggSpec()

	// Correctness gate: parallel lineage must equal serial lineage.
	serialSel := ops.Select(rel.N, pred, ops.SelectOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth, Kernel: kern})
	serialAgg, err := ops.HashAgg(rel, nil, aggSpec, ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	if err != nil {
		return err
	}
	for _, w := range workerCounts[1:] {
		sres := ops.Select(rel.N, pred, ops.SelectOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth, Workers: w, Pool: p, Kernel: kern})
		if !reflect.DeepEqual(sres.BW, serialSel.BW) || !reflect.DeepEqual(sres.FW, serialSel.FW) {
			return fmt.Errorf("parscale: select lineage at workers=%d differs from serial", w)
		}
		ares, err := ops.HashAgg(rel, nil, aggSpec, ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth, Workers: w, Pool: p})
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(ares.FW, serialAgg.FW) {
			return fmt.Errorf("parscale: group-by forward lineage at workers=%d differs from serial", w)
		}
		for g := 0; g < serialAgg.BW.Len(); g++ {
			sl, pl := serialAgg.BW.List(g), ares.BW.List(g)
			if len(sl) != len(pl) || (len(sl) > 0 && !reflect.DeepEqual(sl, pl)) {
				return fmt.Errorf("parscale: group-by backward lineage at workers=%d differs from serial (group %d)", w, g)
			}
		}
	}

	type row struct {
		Op      string  `json:"op"`
		Workers int     `json:"workers"`
		Ms      float64 `json:"ms"`
		Speedup float64 `json:"speedup_vs_serial"`
	}
	report := struct {
		Tuples  int    `json:"tuples"`
		Groups  int    `json:"groups"`
		Cores   int    `json:"cores"`
		Mode    string `json:"mode"`
		Rows    []row  `json:"rows"`
		Created string `json:"created"`
	}{Tuples: n, Groups: groups, Cores: runtime.NumCPU(), Mode: "inject+both", Created: time.Now().Format(time.RFC3339)}

	cfg.printf("Figure P (beyond-paper): worker scaling, execute+capture latency (ms; speedup vs workers=1), %d tuples, %d cores\n", n, report.Cores)
	cfg.printf("%-10s", "op")
	for _, w := range workerCounts {
		cfg.printf(" %-16s", fmt.Sprintf("workers=%d", w))
	}
	cfg.printf("\n")

	run := func(op string, f func(w int)) {
		var serial time.Duration
		cfg.printf("%-10s", op)
		for _, w := range workerCounts {
			w := w
			d := cfg.Median(func() { f(w) })
			if w == 1 {
				serial = d
			}
			sp := float64(serial) / float64(d)
			report.Rows = append(report.Rows, row{Op: op, Workers: w, Ms: ms(d), Speedup: sp})
			cfg.printf(" %-16s", fmt.Sprintf("%.1f (%.2fx)", ms(d), sp))
		}
		cfg.printf("\n")
	}
	run("select", func(w int) {
		ops.Select(rel.N, pred, ops.SelectOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth, Workers: w, Pool: p, Kernel: kern})
	})
	run("groupby", func(w int) {
		_, err := ops.HashAgg(rel, nil, aggSpec, ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth, Workers: w, Pool: p})
		must(err)
	})

	if cfg.JSONDir != "" {
		path := filepath.Join(cfg.JSONDir, "BENCH_parallel.json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&report); err != nil {
			return err
		}
		cfg.printf("wrote %s\n", path)
	}
	return nil
}
