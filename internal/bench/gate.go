package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Bench-regression gating: CI runs the smoke experiments at tiny scale with
// -json, then compares the emitted BENCH_*.json files against the
// checked-in baselines (bench/baselines/*.json) with a latency tolerance.
// Lineage-equality failures abort the experiments themselves (non-zero
// exit), so the gate only has to catch latency regressions and vanished
// measurement rows.
//
// Rows are matched by their identity fields (every non-numeric field plus
// integer shape fields like workers), and a row regresses when
//
//	current_ms > baseline_ms * tolerance + slackMS
//
// The additive slack absorbs scheduler noise on sub-millisecond tiny-scale
// rows, where a pure ratio would flake; a genuine regression clears both.

// GateConfig tunes the comparison.
type GateConfig struct {
	// Tolerance is the multiplicative latency budget (e.g. 2.0 = fail when
	// a row is more than 2x slower than its baseline).
	Tolerance float64
	// SlackMS is the additive grace in milliseconds on top of the ratio.
	SlackMS float64
}

// benchReport is the shape every BENCH_*.json shares: a "rows" array of
// flat objects with an "ms" measurement.
type benchReport struct {
	Rows []map[string]any `json:"rows"`
}

// measurementField reports whether a row field is a measurement (gated or
// derived) rather than part of the row's identity. Latency fields ("ms" and
// any "*_ms") are gated; ratios and byte counts are derived and ignored.
func measurementField(k string) bool {
	return k == "ms" || strings.HasSuffix(k, "_ms") ||
		strings.HasPrefix(k, "speedup") || strings.HasPrefix(k, "bytes_per_rid") ||
		k == "index_bytes" || k == "cardinality"
}

// latencyField reports whether a measurement is a gated latency.
func latencyField(k string) bool {
	return k == "ms" || strings.HasSuffix(k, "_ms")
}

// rowKey builds a row's identity: every non-measurement field, rendered in
// sorted field order.
func rowKey(row map[string]any) string {
	keys := make([]string, 0, len(row))
	for k := range row {
		if measurementField(k) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, row[k])
	}
	return strings.Join(parts, " ")
}

// CompareGateFile compares one current bench JSON against its baseline:
// every baseline row with an "ms" field must exist in the current report
// and stay within the latency budget.
func CompareGateFile(baselinePath, currentPath string, cfg GateConfig) error {
	base, err := readReport(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	cur, err := readReport(currentPath)
	if err != nil {
		return fmt.Errorf("current %s: %w", currentPath, err)
	}
	curMS := map[string]map[string]float64{}
	for _, row := range cur.Rows {
		m := map[string]float64{}
		for k, v := range row {
			if f, ok := v.(float64); ok && latencyField(k) {
				m[k] = f
			}
		}
		curMS[rowKey(row)] = m
	}
	var failures []string
	for _, row := range base.Rows {
		key := rowKey(row)
		var fields []string
		for k, v := range row {
			if _, ok := v.(float64); ok && latencyField(k) {
				fields = append(fields, k)
			}
		}
		if len(fields) == 0 {
			continue
		}
		sort.Strings(fields)
		got, ok := curMS[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("row %q vanished from %s", key, filepath.Base(currentPath)))
			continue
		}
		for _, k := range fields {
			baseMS := row[k].(float64)
			cur, ok := got[k]
			if !ok {
				failures = append(failures, fmt.Sprintf("row %q lost field %s", key, k))
				continue
			}
			if budget := baseMS*cfg.Tolerance + cfg.SlackMS; cur > budget {
				failures = append(failures,
					fmt.Sprintf("row %q %s regressed: %.2fms > %.2fms (baseline %.2fms x %.1f + %.0fms slack)",
						key, k, cur, budget, baseMS, cfg.Tolerance, cfg.SlackMS))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench gate: %s:\n  %s", filepath.Base(baselinePath), strings.Join(failures, "\n  "))
	}
	return nil
}

// CompareGateDirs gates every baseline file against the matching file in
// currentDir. A baseline without a current counterpart fails (the experiment
// silently stopped emitting).
func CompareGateDirs(baselineDir, currentDir string, cfg GateConfig) error {
	matches, err := filepath.Glob(filepath.Join(baselineDir, "*.json"))
	if err != nil {
		return err
	}
	if len(matches) == 0 {
		return fmt.Errorf("bench gate: no baselines under %s", baselineDir)
	}
	var failures []string
	for _, basePath := range matches {
		curPath := filepath.Join(currentDir, filepath.Base(basePath))
		if _, err := os.Stat(curPath); err != nil {
			failures = append(failures, fmt.Sprintf("missing current report %s", filepath.Base(basePath)))
			continue
		}
		if err := CompareGateFile(basePath, curPath, cfg); err != nil {
			failures = append(failures, err.Error())
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "\n"))
	}
	return nil
}

func readReport(path string) (benchReport, error) {
	var rep benchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, err
	}
	return rep, nil
}
