package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Bench-regression gating: CI runs the smoke experiments at tiny scale with
// -json, then compares the emitted BENCH_*.json files against the
// checked-in baselines (bench/baselines/*.json) with a latency tolerance.
// Lineage-equality failures abort the experiments themselves (non-zero
// exit), so the gate only has to catch latency regressions and vanished
// measurement rows.
//
// Rows are matched by their identity fields (every non-numeric field plus
// integer shape fields like workers), and a row regresses when
//
//	current_ms > baseline_ms * tolerance + slackMS
//
// The additive slack absorbs scheduler noise on sub-millisecond tiny-scale
// rows, where a pure ratio would flake; a genuine regression clears both.

// GateConfig tunes the comparison.
type GateConfig struct {
	// Tolerance is the multiplicative latency budget (e.g. 2.0 = fail when
	// a row is more than 2x slower than its baseline).
	Tolerance float64
	// SlackMS is the additive grace in milliseconds on top of the ratio.
	SlackMS float64
}

// benchReport is the shape every BENCH_*.json shares: a "rows" array of flat
// objects with an "ms" measurement, an optional "capture_rows" array of the
// same shape (worker-scaling measurements of the capture itself), and a
// "cores" annotation recording how many CPUs the emitting machine detected —
// the scaling gate trusts it to decide whether a multi-worker comparison is
// meaningful on that machine.
type benchReport struct {
	Cores       int              `json:"cores"`
	Rows        []map[string]any `json:"rows"`
	CaptureRows []map[string]any `json:"capture_rows"`
}

// allRows flattens the regular and capture-scaling rows; both are gated.
func (r benchReport) allRows() []map[string]any {
	if len(r.CaptureRows) == 0 {
		return r.Rows
	}
	all := make([]map[string]any, 0, len(r.Rows)+len(r.CaptureRows))
	all = append(all, r.Rows...)
	return append(all, r.CaptureRows...)
}

// measurementField reports whether a row field is a measurement (gated or
// derived) rather than part of the row's identity. Latency fields ("ms" and
// any "*_ms") are gated; ratios, byte counts ("*_bytes"), and observed
// counters ("*_count") are derived and ignored — they vary run to run and
// must never split a row's identity.
func measurementField(k string) bool {
	return k == "ms" || strings.HasSuffix(k, "_ms") ||
		strings.HasPrefix(k, "speedup") || strings.HasPrefix(k, "bytes_per_rid") ||
		strings.HasSuffix(k, "_bytes") || strings.HasSuffix(k, "_count") ||
		k == "index_bytes" || k == "cardinality"
}

// latencyField reports whether a measurement is a gated latency.
func latencyField(k string) bool {
	return k == "ms" || strings.HasSuffix(k, "_ms")
}

// rowKey builds a row's identity: every non-measurement field, rendered in
// sorted field order.
func rowKey(row map[string]any) string {
	keys := make([]string, 0, len(row))
	for k := range row {
		if measurementField(k) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, row[k])
	}
	return strings.Join(parts, " ")
}

// CompareGateFile compares one current bench JSON against its baseline:
// every baseline row with an "ms" field must exist in the current report
// and stay within the latency budget.
func CompareGateFile(baselinePath, currentPath string, cfg GateConfig) error {
	base, err := readReport(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	cur, err := readReport(currentPath)
	if err != nil {
		return fmt.Errorf("current %s: %w", currentPath, err)
	}
	curMS := map[string]map[string]float64{}
	for _, row := range cur.allRows() {
		m := map[string]float64{}
		for k, v := range row {
			if f, ok := v.(float64); ok && latencyField(k) {
				m[k] = f
			}
		}
		curMS[rowKey(row)] = m
	}
	var failures []string
	for _, row := range base.allRows() {
		key := rowKey(row)
		var fields []string
		for k, v := range row {
			if _, ok := v.(float64); ok && latencyField(k) {
				fields = append(fields, k)
			}
		}
		if len(fields) == 0 {
			continue
		}
		sort.Strings(fields)
		got, ok := curMS[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("row %q vanished from %s", key, filepath.Base(currentPath)))
			continue
		}
		for _, k := range fields {
			baseMS := row[k].(float64)
			cur, ok := got[k]
			if !ok {
				failures = append(failures, fmt.Sprintf("row %q lost field %s", key, k))
				continue
			}
			if budget := baseMS*cfg.Tolerance + cfg.SlackMS; cur > budget {
				failures = append(failures,
					fmt.Sprintf("row %q %s regressed: %.2fms > %.2fms (baseline %.2fms x %.1f + %.0fms slack)",
						key, k, cur, budget, baseMS, cfg.Tolerance, cfg.SlackMS))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench gate: %s:\n  %s", filepath.Base(baselinePath), strings.Join(failures, "\n  "))
	}
	return nil
}

// CompareGateDirs gates every baseline file against the matching file in
// currentDir. A baseline without a current counterpart fails (the experiment
// silently stopped emitting).
func CompareGateDirs(baselineDir, currentDir string, cfg GateConfig) error {
	matches, err := filepath.Glob(filepath.Join(baselineDir, "*.json"))
	if err != nil {
		return err
	}
	if len(matches) == 0 {
		return fmt.Errorf("bench gate: no baselines under %s", baselineDir)
	}
	var failures []string
	for _, basePath := range matches {
		curPath := filepath.Join(currentDir, filepath.Base(basePath))
		if _, err := os.Stat(curPath); err != nil {
			failures = append(failures, fmt.Sprintf("missing current report %s", filepath.Base(basePath)))
			continue
		}
		if err := CompareGateFile(basePath, curPath, cfg); err != nil {
			failures = append(failures, err.Error())
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "\n"))
	}
	return nil
}

// ScalingConfig tunes the worker-scaling gate. It inspects only the CURRENT
// reports (no baseline needed): for every measurement that exists at both
// workers=1 and workers=AtWorkers with otherwise-identical identity, the
// parallel run must be at least MinSpeedup times faster than the serial one.
// This is the regression net for the morsel dispatch path — a merge that
// stops scaling, a pool that serializes, a kernel that re-grows scratch per
// morsel all show up as a collapsed ratio long before they show up as
// absolute latency.
type ScalingConfig struct {
	// AtWorkers is the parallel worker count compared against workers=1.
	AtWorkers int
	// MinSpeedup is the required ms(workers=1) / ms(workers=AtWorkers)
	// ratio. <= 0 disables the gate.
	MinSpeedup float64
	// MinMS is the noise floor: a pair whose serial latency is below this is
	// skipped — sub-millisecond tiny-scale rows are dominated by dispatch
	// constants and scheduler jitter, and a ratio on them would flake.
	MinMS float64
	// Logf, when set, receives skip annotations (machine too small, pairs
	// under the noise floor). Defaults to discarding them.
	Logf func(format string, args ...any)
}

func (cfg ScalingConfig) logf(format string, args ...any) {
	if cfg.Logf != nil {
		cfg.Logf(format, args...)
	}
}

// scalingKey is a row's identity with the workers field removed, suffixed
// with the latency field name, so the same measurement at different worker
// counts collides into one comparison group.
func scalingKey(row map[string]any, field string) string {
	keys := make([]string, 0, len(row))
	for k := range row {
		if measurementField(k) || k == "workers" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys)+1)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, row[k]))
	}
	return strings.Join(parts, " ") + " [" + field + "]"
}

// ScalingGateFile enforces the worker-scaling ratio on one current report.
// When the report's detected-cores annotation is below AtWorkers the gate
// skips with a logged annotation instead of failing: on a 1- or 2-core CI
// runner a workers=4 run CANNOT be faster, and gating on it would make the
// check machine-dependent in exactly the wrong direction.
func ScalingGateFile(path string, cfg ScalingConfig) error {
	if cfg.MinSpeedup <= 0 || cfg.AtWorkers <= 1 {
		return nil
	}
	rep, err := readReport(path)
	if err != nil {
		return fmt.Errorf("scaling gate: %s: %w", path, err)
	}
	if rep.Cores > 0 && rep.Cores < cfg.AtWorkers {
		cfg.logf("scaling gate: %s: skipped (detected %d cores < %d workers)",
			filepath.Base(path), rep.Cores, cfg.AtWorkers)
		return nil
	}
	serial := map[string]float64{}
	parallel := map[string]float64{}
	for _, row := range rep.allRows() {
		w, ok := row["workers"].(float64)
		if !ok {
			continue
		}
		for k, v := range row {
			f, isNum := v.(float64)
			if !isNum || !latencyField(k) {
				continue
			}
			switch int(w) {
			case 1:
				serial[scalingKey(row, k)] = f
			case cfg.AtWorkers:
				parallel[scalingKey(row, k)] = f
			}
		}
	}
	var failures []string
	keys := make([]string, 0, len(serial))
	for k := range serial {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		s := serial[key]
		p, ok := parallel[key]
		if !ok {
			// Serial-only measurements (e.g. a reference path that has no
			// parallel variant) are not scaling pairs. Vanished rows are the
			// regression gate's job, not this one's.
			cfg.logf("scaling gate: %s: %q skipped (no workers=%d counterpart)",
				filepath.Base(path), key, cfg.AtWorkers)
			continue
		}
		if s < cfg.MinMS {
			cfg.logf("scaling gate: %s: %q skipped (serial %.2fms under %.2fms noise floor)",
				filepath.Base(path), key, s, cfg.MinMS)
			continue
		}
		if p <= 0 {
			continue
		}
		if ratio := s / p; ratio < cfg.MinSpeedup {
			failures = append(failures,
				fmt.Sprintf("%q scaling collapsed: workers=%d is %.2fx vs workers=1 (%.2fms vs %.2fms), need >= %.2fx",
					key, cfg.AtWorkers, ratio, p, s, cfg.MinSpeedup))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("scaling gate: %s:\n  %s", filepath.Base(path), strings.Join(failures, "\n  "))
	}
	return nil
}

// ScalingGateDir applies the scaling gate to every report in currentDir.
// Reports without multi-worker rows pass trivially.
func ScalingGateDir(currentDir string, cfg ScalingConfig) error {
	matches, err := filepath.Glob(filepath.Join(currentDir, "*.json"))
	if err != nil {
		return err
	}
	var failures []string
	for _, path := range matches {
		if err := ScalingGateFile(path, cfg); err != nil {
			failures = append(failures, err.Error())
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "\n"))
	}
	return nil
}

// LazyConfig tunes the trace-strategy gate over BENCH_lazy.json: at every
// trace-rate point at or below MaxRate, the lazy end-to-end total (base query
// plus traces) must beat the eager total within SlackMS. This is the whole
// argument for the lazy tier — if capture-free execution plus a sparse
// handful of re-executed traces is not cheaper than paying eager capture up
// front, the strategy seam has regressed.
type LazyConfig struct {
	// MaxRate is the highest trace_rate gated (e.g. 0.011 gates the 0 and 1%
	// points but not 10%, where eager is expected to win). < 0 disables.
	MaxRate float64
	// SlackMS is the additive grace in milliseconds: lazy passes when
	// lazy_total <= eager_total + SlackMS.
	SlackMS float64
	// Logf, when set, receives skip annotations. Defaults to discarding them.
	Logf func(format string, args ...any)
}

func (cfg LazyConfig) logf(format string, args ...any) {
	if cfg.Logf != nil {
		cfg.Logf(format, args...)
	}
}

// LazyGateFile enforces the lazy-beats-eager invariant on one BENCH_lazy.json
// report. A missing report skips with an annotation (the lazy experiment may
// not be in the run's -exp list); a present report with no comparable
// eager/lazy pairs at gated rates is an error — that means the report shape
// drifted and the gate would otherwise pass silently forever.
func LazyGateFile(path string, cfg LazyConfig) error {
	if cfg.MaxRate < 0 {
		return nil
	}
	rep, err := readReport(path)
	if os.IsNotExist(err) {
		cfg.logf("lazy gate: %s: skipped (no report)", filepath.Base(path))
		return nil
	}
	if err != nil {
		return fmt.Errorf("lazy gate: %s: %w", path, err)
	}
	totals := map[float64]map[string]float64{}
	for _, row := range rep.allRows() {
		strat, _ := row["strategy"].(string)
		rate, rateOK := row["trace_rate"].(float64)
		total, totalOK := row["total_ms"].(float64)
		if strat == "" || !rateOK || !totalOK {
			continue
		}
		if totals[rate] == nil {
			totals[rate] = map[string]float64{}
		}
		totals[rate][strat] = total
	}
	rates := make([]float64, 0, len(totals))
	for rate := range totals {
		rates = append(rates, rate)
	}
	sort.Float64s(rates)
	var failures []string
	pairs := 0
	for _, rate := range rates {
		eager, eagerOK := totals[rate]["eager"]
		lazy, lazyOK := totals[rate]["lazy"]
		if !eagerOK || !lazyOK {
			continue
		}
		if rate > cfg.MaxRate {
			cfg.logf("lazy gate: %s: trace_rate=%v skipped (above %.3f — eager may win there)",
				filepath.Base(path), rate, cfg.MaxRate)
			continue
		}
		pairs++
		if lazy > eager+cfg.SlackMS {
			failures = append(failures,
				fmt.Sprintf("trace_rate=%v: lazy end-to-end %.2fms exceeds eager %.2fms + %.2fms slack",
					rate, lazy, eager, cfg.SlackMS))
		}
	}
	if pairs == 0 {
		return fmt.Errorf("lazy gate: %s: no eager/lazy pairs at trace_rate <= %.3f", filepath.Base(path), cfg.MaxRate)
	}
	if len(failures) > 0 {
		return fmt.Errorf("lazy gate: %s:\n  %s", filepath.Base(path), strings.Join(failures, "\n  "))
	}
	return nil
}

// ShardConfig tunes the horizontal-scaling gate over BENCH_serve.json: the
// scatter/gather tier's trace p95 at shards=MaxShards must stay within
// MaxRatio of the shards=1 (pure proxy) p95, plus SlackMS of additive grace.
// This is the scale-out regression net — a coordinator that serializes its
// scatter waves, re-buffers partials, or loses the per-seed merge's
// linearity shows up as a blown ratio.
type ShardConfig struct {
	// MaxShards is the scaled-out row compared against shards=1.
	MaxShards int
	// MaxRatio is the allowed p95(shards=MaxShards) / p95(shards=1) ratio.
	// <= 0 disables the gate.
	MaxRatio float64
	// SlackMS is the additive grace in milliseconds on top of the ratio
	// (absorbs scheduler noise on sub-millisecond tiny-scale rows).
	SlackMS float64
	// MinCores is the smallest detected-cores annotation the gate trusts:
	// below it the comparison skips with a logged annotation — a single-core
	// runner cannot run a 4-shard wave concurrently, and gating there would
	// test the CI hardware, not the coordinator.
	MinCores int
	// Logf, when set, receives skip annotations. Defaults to discarding them.
	Logf func(format string, args ...any)
}

func (cfg ShardConfig) logf(format string, args ...any) {
	if cfg.Logf != nil {
		cfg.Logf(format, args...)
	}
}

// ShardGateFile enforces the shard-scaling ratio on one BENCH_serve.json
// report. A missing report skips with an annotation (serve may not be in the
// run's -exp list); a present report without both shard rows is an error —
// the report shape drifted and the gate would otherwise pass silently.
func ShardGateFile(path string, cfg ShardConfig) error {
	if cfg.MaxRatio <= 0 {
		return nil
	}
	rep, err := readReport(path)
	if os.IsNotExist(err) {
		cfg.logf("shard gate: %s: skipped (no report)", filepath.Base(path))
		return nil
	}
	if err != nil {
		return fmt.Errorf("shard gate: %s: %w", path, err)
	}
	if rep.Cores > 0 && rep.Cores < cfg.MinCores {
		cfg.logf("shard gate: %s: skipped (detected %d cores < %d)",
			filepath.Base(path), rep.Cores, cfg.MinCores)
		return nil
	}
	p95 := map[int]float64{}
	for _, row := range rep.allRows() {
		shards, ok := row["shards"].(float64)
		if !ok {
			continue
		}
		if v, ok := row["p95_ms"].(float64); ok {
			p95[int(shards)] = v
		}
	}
	one, oneOK := p95[1]
	many, manyOK := p95[cfg.MaxShards]
	if !oneOK || !manyOK {
		return fmt.Errorf("shard gate: %s: missing shards=1 and/or shards=%d trace rows (report shape drifted)",
			filepath.Base(path), cfg.MaxShards)
	}
	if budget := one*cfg.MaxRatio + cfg.SlackMS; many > budget {
		return fmt.Errorf(
			"shard gate: %s: shards=%d trace p95 %.2fms exceeds %.2fms (shards=1 %.2fms x %.1f + %.0fms slack)",
			filepath.Base(path), cfg.MaxShards, many, budget, one, cfg.MaxRatio, cfg.SlackMS)
	}
	return nil
}

func readReport(path string) (benchReport, error) {
	var rep benchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, err
	}
	return rep, nil
}
