package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"smoke/internal/core"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// Lazy is the trace-strategy experiment (beyond-paper): what does eager
// capture cost when (almost) nothing is ever traced? The same single-table
// aggregation runs under eager capture (Inject, both directions) and the
// lazy strategy (capture-free; traces re-execute the stored plan, and
// key-seeded backward traces rewrite to a filtered scan). At trace rates 0,
// 1%, and 10% of output groups, the report records the base-query time, the
// time to answer that many single-group backward traces, and their sum —
// the end-to-end cost a dashboard session actually pays. Before timing,
// every sampled lazy trace is checked element-identical to the eager index
// answer. Results land in BENCH_lazy.json; the benchgate lazy rule asserts
// lazy beats eager end-to-end at the trace-sparse points.
func Lazy(cfg Config) error {
	n := 500_000
	groups := 200
	switch {
	case cfg.paper():
		n = 2_000_000
	case cfg.tiny():
		n = 200_000
		groups = 100
	}
	db := core.Open()
	defer db.Close()
	rel := lazyData(n, groups)
	db.Register(rel)

	build := func() *core.Query {
		return db.Query().From("lazybase", nil).GroupBy("g").
			Agg(ops.Count, nil, "cnt").Agg(ops.Sum, expr.C("v"), "sv")
	}
	strategies := []struct {
		name string
		opts core.CaptureOptions
	}{
		{"eager", core.CaptureOptions{Mode: ops.Inject}},
		{"lazy", core.CaptureOptions{Strategy: core.StrategyLazy}},
	}

	// Element-identity gate: sampled single-group lazy traces must match the
	// eager index answers exactly — timing divergent lineage is meaningless.
	eagerRes, err := build().Run(strategies[0].opts)
	if err != nil {
		return err
	}
	lazyRes, err := build().Run(strategies[1].opts)
	if err != nil {
		return err
	}
	stride := 1 + eagerRes.Out.N/50
	for o := 0; o < eagerRes.Out.N; o += stride {
		want, err := eagerRes.Backward("lazybase", []lineage.Rid{lineage.Rid(o)})
		if err != nil {
			return err
		}
		got, err := lazyRes.Backward("lazybase", []lineage.Rid{lineage.Rid(o)})
		if err != nil {
			return fmt.Errorf("lazy: lazy backward of group %d: %w", o, err)
		}
		if !reflect.DeepEqual(want, got) {
			return fmt.Errorf("lazy: lazy trace of group %d diverges from eager index", o)
		}
	}

	rates := []float64{0, 0.01, 0.10}
	type row struct {
		Strategy  string  `json:"strategy"`
		TraceRate float64 `json:"trace_rate"`
		BaseMS    float64 `json:"base_ms"`
		TraceMS   float64 `json:"trace_ms"`
		TotalMS   float64 `json:"total_ms"`
	}
	report := struct {
		Tuples  int    `json:"tuples"`
		Groups  int    `json:"groups"`
		Cores   int    `json:"cores"`
		Rows    []row  `json:"rows"`
		Created string `json:"created"`
	}{Tuples: n, Groups: groups, Cores: runtime.NumCPU(), Created: time.Now().Format(time.RFC3339)}

	cfg.printf("Figure L (beyond-paper): eager capture vs lazy re-execution, end-to-end (base + traces) over %d tuples, %d groups\n", n, groups)
	cfg.printf("%-10s %-12s %-10s %-10s %-10s\n", "strategy", "trace_rate", "base_ms", "trace_ms", "total_ms")

	for _, st := range strategies {
		var res *core.Result
		baseD := cfg.Median(func() {
			r, err := build().Run(st.opts)
			must(err)
			res = r
		})
		for _, rate := range rates {
			k := int(rate * float64(res.Out.N))
			seeds := make([]lineage.Rid, 0, k)
			for i := 0; i < k; i++ {
				seeds = append(seeds, lineage.Rid((i*res.Out.N)/max(k, 1)))
			}
			var traceD time.Duration
			if len(seeds) > 0 {
				traceD = cfg.Median(func() {
					for _, s := range seeds {
						_, err := res.Backward("lazybase", []lineage.Rid{s})
						must(err)
					}
				})
			}
			total := baseD + traceD
			report.Rows = append(report.Rows, row{
				Strategy: st.name, TraceRate: rate,
				BaseMS: ms(baseD), TraceMS: ms(traceD), TotalMS: ms(total),
			})
			cfg.printf("%-10s %-12.2f %-10.1f %-10.1f %-10.1f\n", st.name, rate, ms(baseD), ms(traceD), ms(total))
		}
	}

	if cfg.JSONDir != "" {
		path := filepath.Join(cfg.JSONDir, "BENCH_lazy.json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&report); err != nil {
			return err
		}
		cfg.printf("wrote %s\n", path)
	}
	return nil
}

// lazyData generates lazybase(g, v): a grouping key with mild skew plus a
// value column.
func lazyData(n, groups int) *storage.Relation {
	r := rand.New(rand.NewSource(11))
	rel := storage.NewRelation("lazybase", storage.Schema{
		{Name: "g", Type: storage.TInt},
		{Name: "v", Type: storage.TFloat},
	}, n)
	for i := 0; i < n; i++ {
		u := r.Float64()
		rel.Cols[0].Ints[i] = int64(u * u * float64(groups))
		rel.Cols[1].Floats[i] = float64(r.Intn(10000)) / 100
	}
	return rel
}
