package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

func TestMedianTakesMiddleValue(t *testing.T) {
	cfg := Config{Reps: 3, W: io.Discard}
	n := 0
	d := cfg.Median(func() { n++ })
	if n != 3 {
		t.Fatalf("ran %d times, want 3", n)
	}
	if d < 0 {
		t.Fatal("negative duration")
	}
	// Reps < 1 still runs once.
	cfg.Reps = 0
	n = 0
	cfg.Median(func() { n++ })
	if n != 1 {
		t.Fatalf("ran %d times, want 1", n)
	}
}

func TestOverheadMath(t *testing.T) {
	if o := overhead(150*time.Millisecond, 100*time.Millisecond); o != 0.5 {
		t.Fatalf("overhead = %v", o)
	}
	if o := overhead(time.Second, 0); o != 0 {
		t.Fatal("zero baseline must not divide")
	}
	if got := withOv(150*time.Millisecond, 100*time.Millisecond); got != "150.0 (0.50x)" {
		t.Fatalf("withOv = %q", got)
	}
}

func TestRegistryCompleteAndOrdered(t *testing.T) {
	exps := Experiments()
	order := Order()
	if len(exps) != len(order) {
		t.Fatalf("registry has %d entries, order has %d", len(exps), len(order))
	}
	for _, id := range order {
		if exps[id] == nil {
			t.Fatalf("experiment %q missing from registry", id)
		}
	}
}

// TestAllExperimentsRun executes every figure runner end-to-end at small
// scale. This is the harness's integration test: it catches workload or
// engine regressions that unit tests structured per-operator would miss.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite takes ~30s; skipped with -short")
	}
	for _, id := range Order() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			cfg := Config{Scale: "small", Reps: 1, W: &buf}
			if err := Experiments()[id](cfg); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "Figure") {
				t.Fatalf("%s produced no figure header:\n%s", id, out)
			}
			if len(strings.Split(out, "\n")) < 3 {
				t.Fatalf("%s produced no data rows", id)
			}
		})
	}
}

func TestSampleGroups(t *testing.T) {
	if got := sampleGroups(3, 10); len(got) != 3 {
		t.Fatalf("small n: %v", got)
	}
	got := sampleGroups(100, 10)
	if len(got) < 10 || len(got) > 11 {
		t.Fatalf("sampled %d of 100", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("samples must increase")
		}
	}
}
