package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"smoke/internal/core"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// Consume is the lineage-consuming-query experiment (beyond-paper): a
// crossfilter-style roundtrip — highlight a bar in one view, trace backward
// to the base rows, re-aggregate them into a second view, and trace the rows
// forward into the second view's bars — measured over two implementations:
//
//   - preplan: the pre-plan serial side path (index expansion via
//     Capture.Backward, serial rid-set HashAgg, serial forward Trace) — how
//     consuming queries ran before they were plan citizens.
//   - plan: the same roundtrip as trace-then-aggregate plans
//     (core.Query.Backward → GroupBy, core.Query.Forward), at workers=1 and
//     workers=4 — the morsel-parallel physical trace operator plus the
//     duplicate-tolerant parallel aggregation.
//
// Before timing, every plan-path run is checked element-identical to the
// preplan reference (output, backward lineage, and forward rid lists);
// timing divergent lineage would be meaningless. Results land in
// BENCH_consume.json.
func Consume(cfg Config) error {
	n := 1_000_000
	bars1, bars2 := 200, 100
	switch {
	case cfg.paper():
		n = 5_000_000
	case cfg.tiny():
		n = 100_000
		bars1, bars2 = 100, 50
	}
	workers := 4
	db := core.Open(core.WithWorkers(workers))
	defer db.Close()

	rel := consumeData(n, bars1, bars2)
	db.Register(rel)

	// Base views (the crossfilter setup cost): d1 histogram with full
	// capture, d2 histogram with forward capture (the roundtrip target).
	view1, err := db.Query().From("interact", nil).GroupBy("d1").
		Agg(ops.Count, nil, "count").
		Run(core.CaptureOptions{Mode: ops.Inject, Parallelism: 1})
	if err != nil {
		return err
	}
	view2, err := db.Query().From("interact", nil).GroupBy("d2").
		Agg(ops.Count, nil, "count").
		Run(core.CaptureOptions{Mode: ops.Inject, Parallelism: 1})
	if err != nil {
		return err
	}
	consSpec := ops.GroupBySpec{Keys: []string{"d2"},
		Aggs: []ops.AggSpec{{Fn: ops.Count, Name: "n"}, {Fn: ops.Sum, Arg: expr.C("v"), Name: "sv"}}}

	bw, err := view1.Capture().BackwardIndex("interact")
	if err != nil {
		return err
	}
	fw2, err := view2.Capture().ForwardIndex("interact")
	if err != nil {
		return err
	}

	// The sampled interactions: every 8th bar of view 1.
	var bars []lineage.Rid
	for b := 0; b < view1.Out.N; b += 8 {
		bars = append(bars, lineage.Rid(b))
	}

	// preplan reference for one bar: serial expansion + serial rid-set
	// aggregation + serial forward trace.
	preplan := func(bar lineage.Rid) (ops.AggResult, []lineage.Rid, error) {
		rids := bw.Trace([]lineage.Rid{bar})
		if rids == nil {
			rids = []lineage.Rid{}
		}
		cons, err := ops.HashAgg(rel, rids, consSpec, ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
		if err != nil {
			return ops.AggResult{}, nil, err
		}
		return cons, fw2.Trace(rids), nil
	}
	// plan path for one bar at a given parallelism.
	planPath := func(bar lineage.Rid, par int) (*core.Result, *core.Result, error) {
		cons, err := db.Query().Backward(view1, "interact", []lineage.Rid{bar}).
			GroupBy("d2").Agg(ops.Count, nil, "n").Agg(ops.Sum, expr.C("v"), "sv").
			Run(core.CaptureOptions{Mode: ops.Inject, Parallelism: par})
		if err != nil {
			return nil, nil, err
		}
		rids := bw.Trace([]lineage.Rid{bar})
		fwRes, err := db.Query().Forward(view2, "interact", rids).
			Run(core.CaptureOptions{Mode: ops.None, Parallelism: par})
		if err != nil {
			return nil, nil, err
		}
		return cons, fwRes, nil
	}

	// Lineage-equality gate: the plan path (serial and parallel) must match
	// the preplan reference element-for-element on every sampled bar.
	for _, bar := range bars {
		ref, refFwd, err := preplan(bar)
		if err != nil {
			return err
		}
		for _, par := range []int{1, workers} {
			cons, fwRes, err := planPath(bar, par)
			if err != nil {
				return err
			}
			if err := diffConsume(rel, &ref, refFwd, cons, fwRes, view2); err != nil {
				return fmt.Errorf("consume: plan path (workers=%d) diverges from preplan on bar %d: %w", par, bar, err)
			}
		}
	}

	type row struct {
		Path    string  `json:"path"`
		Workers int     `json:"workers"`
		Ms      float64 `json:"ms"`
		Speedup float64 `json:"speedup_vs_preplan"`
	}
	report := struct {
		Tuples  int    `json:"tuples"`
		Bars    int    `json:"sampled_bars"`
		Cores   int    `json:"cores"`
		Mode    string `json:"mode"`
		Rows    []row  `json:"rows"`
		Created string `json:"created"`
	}{Tuples: n, Bars: len(bars), Cores: runtime.NumCPU(), Mode: "inject+both", Created: time.Now().Format(time.RFC3339)}

	cfg.printf("Figure C (beyond-paper): consuming-query roundtrip (backward trace + re-aggregate + forward trace), total latency over %d interactions (ms), %d tuples\n", len(bars), n)
	cfg.printf("%-14s %-10s %-14s %-10s\n", "path", "workers", "ms", "vs preplan")

	var preplanD time.Duration
	runAll := func(name string, w int, f func()) {
		d := cfg.Median(f)
		if name == "preplan" {
			preplanD = d
		}
		sp := 0.0
		if preplanD > 0 {
			sp = float64(preplanD) / float64(d)
		}
		report.Rows = append(report.Rows, row{Path: name, Workers: w, Ms: ms(d), Speedup: sp})
		cfg.printf("%-14s %-10d %-14.1f %-10.2f\n", name, w, ms(d), sp)
	}
	runAll("preplan", 1, func() {
		for _, bar := range bars {
			_, _, err := preplan(bar)
			must(err)
		}
	})
	for _, par := range []int{1, workers} {
		par := par
		name := fmt.Sprintf("plan/w%d", par)
		runAll(name, par, func() {
			for _, bar := range bars {
				_, _, err := planPath(bar, par)
				must(err)
			}
		})
	}

	if cfg.JSONDir != "" {
		path := filepath.Join(cfg.JSONDir, "BENCH_consume.json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&report); err != nil {
			return err
		}
		cfg.printf("wrote %s\n", path)
	}
	return nil
}

// diffConsume compares one plan-path roundtrip against the preplan reference.
func diffConsume(rel *storage.Relation, ref *ops.AggResult, refFwd []lineage.Rid,
	cons *core.Result, fwRes *core.Result, view2 *core.Result) error {
	if cons.Out.N != ref.Out.N {
		return fmt.Errorf("consuming groups: %d, want %d", cons.Out.N, ref.Out.N)
	}
	for c := range ref.Out.Cols {
		// Float aggregates tolerate last-ulp drift from partition-order
		// addition in parallel runs; everything else must match exactly.
		if fs := ref.Out.Cols[c].Floats; fs != nil {
			for i, w := range fs {
				g := cons.Out.Cols[c].Floats[i]
				if w != g && math.Abs(g-w) > 1e-9*math.Max(math.Abs(g), math.Abs(w)) {
					return fmt.Errorf("consuming output column %d row %d: %v, want %v", c, i, g, w)
				}
			}
			continue
		}
		if !reflect.DeepEqual(cons.Out.Cols[c], ref.Out.Cols[c]) {
			return fmt.Errorf("consuming output column %d diverges", c)
		}
	}
	for o := 0; o < ref.Out.N; o++ {
		got, err := cons.Backward("interact", []lineage.Rid{lineage.Rid(o)})
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, ref.BW.List(o)) {
			return fmt.Errorf("consuming backward lineage of group %d diverges", o)
		}
	}
	// The forward plan result's rows are view-2 bars in trace order; compare
	// the bar identities (first output column of view 2) against the raw
	// forward rid expansion.
	if fwRes.Out.N != len(refFwd) {
		return fmt.Errorf("forward trace rows: %d, want %d", fwRes.Out.N, len(refFwd))
	}
	for i, r := range refFwd {
		if fwRes.Out.Int(0, i) != view2.Out.Int(0, int(r)) {
			return fmt.Errorf("forward trace row %d is bar %d, want %d", i, fwRes.Out.Int(0, i), view2.Out.Int(0, int(r)))
		}
	}
	return nil
}

// consumeData generates interact(d1, d2, v): two binned dimensions with a
// mild skew plus a value column.
func consumeData(n, bars1, bars2 int) *storage.Relation {
	r := rand.New(rand.NewSource(7))
	rel := storage.NewRelation("interact", storage.Schema{
		{Name: "d1", Type: storage.TInt},
		{Name: "d2", Type: storage.TInt},
		{Name: "v", Type: storage.TFloat},
	}, n)
	for i := 0; i < n; i++ {
		u := r.Float64()
		rel.Cols[0].Ints[i] = int64(u * u * float64(bars1))
		rel.Cols[1].Ints[i] = int64(r.Intn(bars2))
		rel.Cols[2].Floats[i] = float64(r.Intn(10000)) / 100
	}
	return rel
}
