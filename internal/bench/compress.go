package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"smoke/internal/datagen"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/pool"
	"smoke/internal/storage"
)

// Compress is the compressed-lineage experiment (beyond-paper; the
// representation study behind CaptureOptions.Compress). Two group-by
// workloads bracket the capture shapes:
//
//   - zipf:  skewed group sizes (Zipf θ=1), rids of a group scattered across
//     the whole scan — the delta/RLE regime.
//   - dense: a range-scan layout (group key = rid / band), every group's rid
//     list one contiguous run — the best case for run encodings.
//
// For each workload it captures raw and compressed (Inject, both
// directions), gates on element-identical lineage — including a
// morsel-parallel compressed run, which exercises the encoded-concat merge —
// and then reports bytes-per-rid and backward/forward trace latency for
// three representations: raw, compressed (decode-expansion through the chunk
// cursor), and compressed-insitu (TraceInSitu — the trace result stays
// encoded, no chunk is ever decoded; its equality to the raw trace is gated
// outside the timed region). It also times the compressed capture itself at
// workers ∈ {1, 2, 4, 8} (the encoded-concat merge scaling). Results land in
// BENCH_compress.json with a detected-cores annotation.
func Compress(cfg Config) error {
	n := 400_000
	groups := 1_000
	switch {
	case cfg.paper():
		n = 10_000_000
		groups = 10_000
	case cfg.tiny():
		n = 50_000
		groups = 200
	}
	workerCounts := []int{1, 2, 4, 8}
	workers := 4
	p := pool.New(workerCounts[len(workerCounts)-1])
	defer p.Close()

	type row struct {
		Workload    string  `json:"workload"`
		Repr        string  `json:"repr"`
		Cardinality int     `json:"cardinality"`
		IndexBytes  int     `json:"index_bytes"`
		BytesPerRid float64 `json:"bytes_per_rid"`
		BackwardMs  float64 `json:"backward_trace_ms"`
		ForwardMs   float64 `json:"forward_trace_ms"`
	}
	type captureRow struct {
		Workload string  `json:"workload"`
		Op       string  `json:"op"`
		Workers  int     `json:"workers"`
		Ms       float64 `json:"ms"`
	}
	report := struct {
		Tuples      int          `json:"tuples"`
		Groups      int          `json:"groups"`
		Cores       int          `json:"cores"`
		Mode        string       `json:"mode"`
		Rows        []row        `json:"rows"`
		CaptureRows []captureRow `json:"capture_rows"`
		Created     string       `json:"created"`
	}{Tuples: n, Groups: groups, Cores: runtime.NumCPU(), Mode: "inject+both"}

	cfg.printf("Figure Z (beyond-paper): compressed lineage indexes, %d tuples, %d groups, %d cores\n", n, groups, report.Cores)
	cfg.printf("%-10s %-18s %14s %14s %14s\n", "workload", "repr", "bytes/rid", "backward(ms)", "forward(ms)")

	aggSpec := microAggSpec()
	for _, wl := range []struct {
		name string
		rel  *storage.Relation
	}{
		{"zipf", datagen.Zipf("zipf", 1.0, n, groups, 42)},
		{"dense", denseRel(n, groups)},
	} {
		raw, err := ops.HashAgg(wl.rel, nil, aggSpec, ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
		if err != nil {
			return err
		}
		comp, err := ops.HashAgg(wl.rel, nil, aggSpec, ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth, Compress: true})
		if err != nil {
			return err
		}
		parComp, err := ops.HashAgg(wl.rel, nil, aggSpec, ops.AggOpts{
			Mode: ops.Inject, Dirs: ops.CaptureBoth, Compress: true, Workers: workers, Pool: p,
		})
		if err != nil {
			return err
		}

		// Lineage-equality gate: serial-compressed and parallel-compressed
		// (the encoded-concat merge path) must decode element-identically to
		// the raw capture. Timing a lossy representation would be meaningless.
		for what, c := range map[string]*ops.AggResult{"serial": &comp, "parallel": &parComp} {
			if err := compressGate(wl.name+"/"+what, &raw, c); err != nil {
				return err
			}
		}

		rawBW, rawFW := raw.BackwardIndex(), raw.ForwardIndex()
		compBW, compFW := comp.BackwardIndex(), comp.ForwardIndex()
		card := raw.BW.Cardinality()

		outRids := make([]lineage.Rid, raw.Out.N)
		for i := range outRids {
			outRids[i] = lineage.Rid(i)
		}
		inRids := make([]lineage.Rid, 0, n/10)
		for i := 0; i < n; i += 10 {
			inRids = append(inRids, lineage.Rid(i))
		}

		// In-situ equality gate (outside the timed region): the encoded
		// trace's decode must equal the raw trace element-for-element.
		insitu := comp.BWEnc.TraceInSitu(outRids)
		wantTrace := rawBW.Trace(outRids)
		if insitu.Len() != len(wantTrace) {
			return fmt.Errorf("compress: %s: in-situ trace has %d rids, want %d", wl.name, insitu.Len(), len(wantTrace))
		}
		dec := insitu.AppendTo(nil)
		for i := range wantTrace {
			if dec[i] != wantTrace[i] {
				return fmt.Errorf("compress: %s: in-situ trace diverges from raw at element %d", wl.name, i)
			}
		}

		for _, m := range []struct {
			repr   string
			bw, fw *lineage.Index
		}{
			{"raw", rawBW, rawFW},
			{"compressed", compBW, compFW},
		} {
			bw, fw := m.bw, m.fw
			bwD := cfg.Median(func() { bw.Trace(outRids) })
			fwD := cfg.Median(func() { fw.Trace(inRids) })
			bytes := bw.SizeBytes() + fw.SizeBytes()
			r := row{
				Workload: wl.name, Repr: m.repr,
				Cardinality: card, IndexBytes: bytes,
				BytesPerRid: float64(bytes) / float64(card+n), // bw rids + fw entries
				BackwardMs:  ms(bwD), ForwardMs: ms(fwD),
			}
			report.Rows = append(report.Rows, r)
			cfg.printf("%-10s %-18s %14.2f %14.2f %14.2f\n", r.Workload, r.Repr, r.BytesPerRid, r.BackwardMs, r.ForwardMs)
		}

		// The in-situ row: the backward trace never decodes a chunk — it
		// byte-concatenates the seed groups' chunk sequences (TraceInSitu).
		// Forward probes go through the EncodedArr sequential cursor, which
		// Index.Trace already routes to. This is the representation-native
		// trace cost that competes with (and on dense lineage, beats) raw.
		{
			enc := comp.BWEnc
			bwD := cfg.Median(func() { enc.TraceInSitu(outRids) })
			fwD := cfg.Median(func() { compFW.Trace(inRids) })
			bytes := compBW.SizeBytes() + compFW.SizeBytes()
			r := row{
				Workload: wl.name, Repr: "compressed-insitu",
				Cardinality: card, IndexBytes: bytes,
				BytesPerRid: float64(bytes) / float64(card+n),
				BackwardMs:  ms(bwD), ForwardMs: ms(fwD),
			}
			report.Rows = append(report.Rows, r)
			cfg.printf("%-10s %-18s %14.2f %14.2f %14.2f\n", r.Workload, r.Repr, r.BytesPerRid, r.BackwardMs, r.ForwardMs)
		}

		// Compressed-capture scaling: the whole capture (execute + encode +
		// encoded-concat merge) at each worker count.
		cfg.printf("%-10s %-18s", wl.name, "capture(ms)")
		for _, w := range workerCounts {
			w := w
			d := cfg.Median(func() {
				_, err := ops.HashAgg(wl.rel, nil, aggSpec, ops.AggOpts{
					Mode: ops.Inject, Dirs: ops.CaptureBoth, Compress: true, Workers: w, Pool: p,
				})
				must(err)
			})
			report.CaptureRows = append(report.CaptureRows, captureRow{
				Workload: wl.name, Op: "capture-compressed", Workers: w, Ms: ms(d),
			})
			cfg.printf(" w%d=%-11.1f", w, ms(d))
		}
		cfg.printf("\n")
	}

	report.Created = time.Now().Format(time.RFC3339)
	if cfg.JSONDir != "" {
		path := filepath.Join(cfg.JSONDir, "BENCH_compress.json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&report); err != nil {
			return err
		}
		cfg.printf("wrote %s\n", path)
	}
	return nil
}

// denseRel builds the range-scan workload: key g = rid / band, so each
// group's backward rid list is one contiguous ascending run.
func denseRel(n, groups int) *storage.Relation {
	rel := storage.NewRelation("dense", datagen.ZipfSchema(), n)
	band := n / groups
	if band == 0 {
		band = 1
	}
	ids := rel.Cols[rel.Schema.MustCol("id")].Ints
	zs := rel.Cols[rel.Schema.MustCol("z")].Ints
	vs := rel.Cols[rel.Schema.MustCol("v")].Floats
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		zs[i] = int64(i / band)
		vs[i] = float64(i%97) + 0.5
	}
	return rel
}

// compressGate asserts a compressed capture decodes element-identically to
// the raw one, in both directions.
func compressGate(what string, raw, comp *ops.AggResult) error {
	if comp.BWEnc == nil {
		return fmt.Errorf("compress: %s: backward index was not encoded", what)
	}
	if comp.BWEnc.Cardinality() != raw.BW.Cardinality() {
		return fmt.Errorf("compress: %s: cardinality %d, want %d", what, comp.BWEnc.Cardinality(), raw.BW.Cardinality())
	}
	if comp.BWEnc.Len() != raw.BW.Len() {
		return fmt.Errorf("compress: %s: %d groups, want %d", what, comp.BWEnc.Len(), raw.BW.Len())
	}
	var buf []lineage.Rid
	for g := 0; g < raw.BW.Len(); g++ {
		buf = comp.BWEnc.AppendList(g, buf[:0])
		want := raw.BW.List(g)
		if len(buf) != len(want) {
			return fmt.Errorf("compress: %s: backward lineage of group %d differs from raw", what, g)
		}
		for i := range want {
			if buf[i] != want[i] {
				return fmt.Errorf("compress: %s: backward lineage of group %d differs from raw", what, g)
			}
		}
	}
	fwIx := comp.ForwardIndex()
	for rid := range raw.FW {
		var want []lineage.Rid
		if raw.FW[rid] >= 0 {
			want = []lineage.Rid{raw.FW[rid]}
		}
		got := fwIx.TraceOne(lineage.Rid(rid), buf[:0])
		buf = got
		if len(got) != len(want) || (len(want) == 1 && got[0] != want[0]) {
			return fmt.Errorf("compress: %s: forward lineage of rid %d differs from raw", what, rid)
		}
	}
	return nil
}
