package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"smoke/internal/core"
	"smoke/internal/diskstore"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// Spill is the out-of-core experiment (beyond-paper): the same captured
// group-by result traced from the memory tier and from the disk tier. The
// capture is compressed (the encoded chunk store is the persistence format),
// demoted into an mmap-friendly segment, and promoted back; backward and
// forward traces over the mapped chunk bytes are gated element-identical to
// the in-memory path before anything is timed — spilling must change where
// the index lives, never what a trace answers. Rows report the trace sweep
// latency per tier plus the demote (segment write + publish) and promote
// (map + restore) costs. Results land in BENCH_spill.json.
func Spill(cfg Config) error {
	n, bars := 1_000_000, 200
	switch {
	case cfg.paper():
		n, bars = 10_000_000, 200
	case cfg.tiny():
		n, bars = 60_000, 50
	}

	db := core.Open(core.WithWorkers(1))
	defer db.Close()
	rel := consumeData(n, bars, 50)
	db.Register(rel)

	mem, err := db.Query().From("interact", nil).GroupBy("d1").
		Agg(ops.Count, nil, "cnt").Agg(ops.Sum, expr.C("v"), "sv").
		Run(core.CaptureOptions{Mode: ops.Inject, Compress: true})
	if err != nil {
		return err
	}

	// Seeds: every output bar backward; a base-rid stripe forward.
	bwSeeds := make([]lineage.Rid, mem.Out.N)
	for i := range bwSeeds {
		bwSeeds[i] = lineage.Rid(i)
	}
	fwSeeds := make([]lineage.Rid, 0, 256)
	for r := 0; r < n; r += (n / 256) + 1 {
		fwSeeds = append(fwSeeds, lineage.Rid(r))
	}

	dir, err := os.MkdirTemp("", "smoke-spill-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := diskstore.Open(dir)
	if err != nil {
		return err
	}
	defer store.Close()

	// Demote: persist the captured result (its base relation rides along so
	// forward seeds still resolve after promotion).
	toDisk := &diskstore.Result{
		Out: mem.Out, GroupCounts: mem.GroupCounts, Capture: mem.Capture(),
		Bases: map[string]*storage.Relation{"interact": rel},
	}
	demote := cfg.Median(func() {
		if _, perr := store.PutResult("sSpill", "view", toDisk); perr != nil {
			err = perr
		}
	})
	if err != nil {
		return err
	}

	// Promote: map the segment back and restore a servable result.
	var disk *core.Result
	promote := cfg.Median(func() {
		ld, perr := store.LoadResult("sSpill", "view")
		if perr != nil {
			err = perr
			return
		}
		disk = core.RestoreResult(db, ld.Out, ld.GroupCounts, ld.Capture, ld.Bases)
	})
	if err != nil {
		return err
	}

	// ---- Element-identity gate (untimed) ----------------------------------
	// Every backward and forward trace over the mmap-backed capture must be
	// element-identical (order and duplicates included) to the memory tier.
	for _, g := range bwSeeds {
		want, err := mem.Backward("interact", []lineage.Rid{g})
		if err != nil {
			return err
		}
		got, err := disk.Backward("interact", []lineage.Rid{g})
		if err != nil {
			return err
		}
		if err := sameRids(want, got); err != nil {
			return fmt.Errorf("spill: backward trace of bar %d diverges on the mmap path: %w", g, err)
		}
	}
	wantFW, err := mem.Forward("interact", fwSeeds)
	if err != nil {
		return err
	}
	gotFW, err := disk.Forward("interact", fwSeeds)
	if err != nil {
		return err
	}
	if err := sameRids(wantFW, gotFW); err != nil {
		return fmt.Errorf("spill: forward trace diverges on the mmap path: %w", err)
	}

	// ---- Timed trace sweeps ----------------------------------------------
	sweep := func(res *core.Result) (bw, fw time.Duration) {
		bw = cfg.Median(func() {
			for _, g := range bwSeeds {
				if _, terr := res.Backward("interact", []lineage.Rid{g}); terr != nil {
					err = terr
				}
			}
		})
		fw = cfg.Median(func() {
			if _, terr := res.Forward("interact", fwSeeds); terr != nil {
				err = terr
			}
		})
		return bw, fw
	}
	memBW, memFW := sweep(mem)
	if err != nil {
		return err
	}
	diskBW, diskFW := sweep(disk)
	if err != nil {
		return err
	}

	// ---- In-situ small traces (promotion-free serving path) ---------------
	// The server answers small bound traces against a demoted result straight
	// off a segment-backed view (core.RestoreView) without re-retaining it.
	// Gate the view's single-seed traces element-identical, then time the
	// same per-bar sweep the memory row runs — the difference the row carries
	// is the cost basis: seed_trace_bytes (encoded list bytes the sweep
	// touches) against restore_bytes (what a promotion would re-retain).
	ldv, err := store.LoadResult("sSpill", "view")
	if err != nil {
		return err
	}
	view := core.RestoreView(db, ldv.Out, ldv.GroupCounts, ldv.Capture, ldv.Bases)
	var traceBytes, restoreBytes int64
	for _, g := range bwSeeds {
		want, err := mem.Backward("interact", []lineage.Rid{g})
		if err != nil {
			return err
		}
		got, err := view.Backward("interact", []lineage.Rid{g})
		if err != nil {
			return err
		}
		if err := sameRids(want, got); err != nil {
			return fmt.Errorf("spill: in-situ trace of bar %d diverges on the view path: %w", g, err)
		}
		tb, rb, ok := view.TraceCost("interact", []lineage.Rid{g})
		if !ok {
			return fmt.Errorf("spill: no encoded trace cost for bar %d on the view path", g)
		}
		traceBytes += tb
		restoreBytes = rb
	}
	insituBW := cfg.Median(func() {
		for _, g := range bwSeeds {
			if _, terr := view.Backward("interact", []lineage.Rid{g}); terr != nil {
				err = terr
			}
		}
	})
	if err != nil {
		return err
	}

	type row struct {
		Workload  string  `json:"workload"`
		Repr      string  `json:"repr"`
		BwMS      float64 `json:"backward_trace_ms"`
		FwMS      float64 `json:"forward_trace_ms,omitempty"`
		DemoteMS  float64 `json:"demote_ms,omitempty"`
		PromoteMS float64 `json:"promote_ms,omitempty"`
		// seed_trace_bytes / restore_bytes is the in-situ routing basis: the
		// _bytes suffix marks them as measurements for the gate, not identity.
		TraceBytes   int64 `json:"seed_trace_bytes,omitempty"`
		RestoreBytes int64 `json:"restore_bytes,omitempty"`
	}
	report := struct {
		Tuples  int    `json:"tuples"`
		Bars    int    `json:"bars"`
		Cores   int    `json:"cores"`
		Rows    []row  `json:"rows"`
		Created string `json:"created"`
	}{Tuples: n, Bars: bars, Cores: runtime.NumCPU(), Created: time.Now().Format(time.RFC3339)}
	report.Rows = append(report.Rows,
		row{Workload: "groupby", Repr: "memory", BwMS: ms(memBW), FwMS: ms(memFW)},
		row{Workload: "groupby", Repr: "mmap", BwMS: ms(diskBW), FwMS: ms(diskFW),
			DemoteMS: ms(demote), PromoteMS: ms(promote)},
		row{Workload: "smalltrace", Repr: "mmap-insitu", BwMS: ms(insituBW),
			TraceBytes: traceBytes, RestoreBytes: restoreBytes},
	)

	cfg.printf("Figure T (beyond-paper): out-of-core lineage (%d tuples, %d bars): trace sweeps per tier (ms)\n", n, bars)
	cfg.printf("%-12s %-22s %-22s %-12s %-12s\n", "repr", "backward-sweep", "forward-sweep", "demote", "promote")
	cfg.printf("%-12s %-22.2f %-22.2f %-12s %-12s\n", "memory", ms(memBW), ms(memFW), "-", "-")
	cfg.printf("%-12s %-22.2f %-22.2f %-12.2f %-12.2f\n", "mmap", ms(diskBW), ms(diskFW), ms(demote), ms(promote))
	cfg.printf("%-12s %-22.2f (in-situ: %d seed bytes vs %d restore bytes)\n",
		"mmap-insitu", ms(insituBW), traceBytes, restoreBytes)

	if cfg.JSONDir != "" {
		path := filepath.Join(cfg.JSONDir, "BENCH_spill.json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&report); err != nil {
			return err
		}
		cfg.printf("wrote %s\n", path)
	}
	return nil
}

// sameRids asserts element-identity, order and duplicates included.
func sameRids(want, got []lineage.Rid) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d rids, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("element %d = %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}
