// Package bench regenerates every table and figure of the paper's evaluation
// (§6 and Appendix G). Each Fig* runner executes the experiment's workload
// and prints the same series the paper plots; cmd/smokebench exposes them as
// a CLI, and the repository root's bench_test.go exposes them as testing.B
// benchmarks. Absolute numbers differ from the paper (different hardware and
// language runtime); the orderings and rough ratios are the reproduction
// target — see docs/benchmarks.md for the per-experiment index and gates.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"
)

// Config controls experiment scale and output.
type Config struct {
	// Scale is "small" (seconds per experiment; the default for tests and
	// benchmarks), "paper" (the paper's dataset sizes where feasible), or
	// "tiny" (sub-second; the CI smoke-job scale — correctness gates still
	// run, timings are noise).
	Scale string
	// Reps is how many timed repetitions the median is taken over.
	Reps int
	// W receives the experiment's rows.
	W io.Writer
	// JSONDir, when non-empty, is where experiments that emit
	// machine-readable results (e.g. parscale's BENCH_parallel.json) write
	// them; empty suppresses the files (tests and benchmarks).
	JSONDir string
}

// DefaultConfig returns the small-scale configuration.
func DefaultConfig(w io.Writer) Config {
	return Config{Scale: "small", Reps: 3, W: w}
}

func (c Config) paper() bool { return c.Scale == "paper" }
func (c Config) tiny() bool  { return c.Scale == "tiny" }

// Median runs f reps times and returns the median wall-clock duration. A GC
// runs before each repetition so one experiment's garbage is not charged to
// the next (the GC-noise repro note in DESIGN.md).
func (c Config) Median(f func()) time.Duration {
	reps := c.Reps
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, reps)
	for i := range times {
		runtime.GC()
		start := time.Now()
		f()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[reps/2]
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.W, format, args...)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }

// overhead reports the relative overhead of d over baseline, the paper's
// headline capture metric ("0.22×" means 22% slower than no capture).
func overhead(d, baseline time.Duration) float64 {
	if baseline <= 0 {
		return 0
	}
	return float64(d-baseline) / float64(baseline)
}

// withOv renders "latency (overhead×)" relative to a baseline.
func withOv(d, base time.Duration) string {
	return fmt.Sprintf("%.1f (%.2fx)", ms(d), overhead(d, base))
}

// Runner executes one experiment.
type Runner func(Config) error

// Experiments maps experiment ids (DESIGN.md per-experiment index) to
// runners.
func Experiments() map[string]Runner {
	return map[string]Runner{
		"fig5":     Fig5,
		"fig5tc":   Fig5TC,
		"fig6":     Fig6,
		"fig7":     Fig7,
		"fig8":     Fig8,
		"fig9":     Fig9,
		"fig10":    Fig10,
		"fig11":    Fig11,
		"fig12":    Fig12,
		"fig13":    Fig13,
		"fig14":    Fig14,
		"fig15":    Fig15,
		"fig21":    Fig21,
		"fig22":    Fig22,
		"fig23":    Fig23,
		"parscale": ParScale,
		"compress": Compress,
		"plan":     PlanBench,
		"consume":  Consume,
		"serve":    Serve,
		"spill":    Spill,
		"lazy":     Lazy,
	}
}

// Order lists experiment ids in paper order (map iteration is random).
func Order() []string {
	return []string{
		"fig5", "fig5tc", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig21", "fig22", "fig23",
		"parscale", "compress", "plan", "consume", "serve", "spill", "lazy",
	}
}
