package bench

import (
	"smoke/internal/baselines"
	"smoke/internal/datagen"
	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// microAggSpec is the §6.1.1 base query: z plus seven aggregates, chosen so
// visualizations can surface new statistics without rescanning.
func microAggSpec() ops.GroupBySpec {
	return ops.GroupBySpec{
		Keys: []string{"z"},
		Aggs: []ops.AggSpec{
			{Fn: ops.Count, Name: "cnt"},
			{Fn: ops.Sum, Arg: expr.C("v"), Name: "sum_v"},
			{Fn: ops.Sum, Arg: expr.MulE(expr.C("v"), expr.C("v")), Name: "sum_vv"},
			{Fn: ops.Sum, Arg: expr.Sqrt{E: expr.C("v")}, Name: "sum_sqrt"},
			{Fn: ops.Min, Arg: expr.C("v"), Name: "min_v"},
			{Fn: ops.Max, Arg: expr.C("v"), Name: "max_v"},
		},
	}
}

// Fig5 compares group-by aggregation lineage capture latency across
// techniques, relation cardinalities (columns of the paper's figure) and
// group counts (rows).
func Fig5(cfg Config) error {
	sizes := []int{100_000, 1_000_000, 10_000_000}
	groups := []int{100, 10_000}
	if !cfg.paper() {
		sizes = []int{100_000, 500_000}
		groups = []int{100, 10_000}
	}
	cfg.printf("Figure 5: group-by aggregation lineage capture latency (ms; overhead x over baseline)\n")
	cfg.printf("%-10s %-8s %-12s %-16s %-16s %-16s %-16s %-16s %-16s\n",
		"tuples", "groups", "baseline", "smoke-i", "smoke-d", "logic-rid", "logic-tup", "phys-mem", "phys-bdb")
	spec := microAggSpec()
	for _, n := range sizes {
		for _, g := range groups {
			rel := datagen.Zipf("zipf", 1.0, n, g, 42)
			base := cfg.Median(func() {
				_, err := ops.HashAgg(rel, nil, spec, ops.AggOpts{Mode: ops.None})
				must(err)
			})
			smokeI := cfg.Median(func() {
				_, err := ops.HashAgg(rel, nil, spec, ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
				must(err)
			})
			smokeD := cfg.Median(func() {
				_, err := ops.HashAgg(rel, nil, spec, ops.AggOpts{Mode: ops.Defer, Dirs: ops.CaptureBoth})
				must(err)
			})
			logicRid := cfg.Median(func() {
				_, err := baselines.GroupByLogical(rel, nil, spec, baselines.LogicRid, nil, nil)
				must(err)
			})
			logicTup := cfg.Median(func() {
				_, err := baselines.GroupByLogical(rel, nil, spec, baselines.LogicTup, nil, nil)
				must(err)
			})
			physMem := cfg.Median(func() {
				_, err := baselines.GroupByPhysical(rel, spec, baselines.NewMemSink(rel.N), nil)
				must(err)
			})
			physBdb := cfg.Median(func() {
				_, err := baselines.GroupByPhysical(rel, spec, baselines.NewBdbSink(), nil)
				must(err)
			})
			cfg.printf("%-10d %-8d %-12.1f %-16s %-16s %-16s %-16s %-16s %-16s\n",
				n, g, ms(base),
				withOv(smokeI, base), withOv(smokeD, base),
				withOv(logicRid, base), withOv(logicTup, base),
				withOv(physMem, base), withOv(physBdb, base))
		}
	}
	return nil
}

// Fig5TC is the §6.1.1 "Cardinality Statistics" result: exact group counts
// preallocate the rid lists and cut Smoke-I's overhead (the paper reports
// −52% on average, 0.7× → 0.3×).
func Fig5TC(cfg Config) error {
	n, g := 1_000_000, 10_000
	if !cfg.paper() {
		n = 500_000
	}
	rel := datagen.Zipf("zipf", 1.0, n, g, 42)
	spec := microAggSpec()
	counts := datagen.GroupCounts(rel, "z", g)
	base := cfg.Median(func() {
		_, err := ops.HashAgg(rel, nil, spec, ops.AggOpts{Mode: ops.None})
		must(err)
	})
	plain := cfg.Median(func() {
		_, err := ops.HashAgg(rel, nil, spec, ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
		must(err)
	})
	tc := cfg.Median(func() {
		_, err := ops.HashAgg(rel, nil, spec, ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth, CountsByKey: counts})
		must(err)
	})
	cfg.printf("Figure 5 (cardinality statistics): group-by capture, %d tuples, %d groups\n", n, g)
	cfg.printf("%-14s %-14s %-14s\n", "baseline(ms)", "smoke-i", "smoke-i+tc")
	cfg.printf("%-14.1f %-14s %-14s\n", ms(base), withOv(plain, base), withOv(tc, base))
	reduction := 1 - overhead(tc, base)/overhead(plain, base)
	cfg.printf("overhead reduction from statistics: %.0f%% (paper: ~52%%)\n", reduction*100)
	return nil
}

// Fig6 compares pk-fk join capture: Baseline, Logic-Idx, Smoke-I, and
// Smoke-I+TC (known join cardinalities).
func Fig6(cfg Config) error {
	sizes := []int{1_000_000, 5_000_000, 10_000_000}
	if !cfg.paper() {
		sizes = []int{200_000, 1_000_000}
	}
	groups := []int{100, 10_000}
	cfg.printf("Figure 6: pk-fk join lineage capture latency (ms; overhead x over baseline)\n")
	cfg.printf("%-10s %-8s %-12s %-16s %-16s %-16s\n",
		"tuples", "groups", "baseline", "logic-idx", "smoke-i", "smoke-i+tc")
	for _, n := range sizes {
		for _, g := range groups {
			gids := datagen.Gids("gids", g, 1)
			zipf := datagen.Zipf("zipf", 1.0, n, g, 2)
			counts := datagen.GroupCounts(zipf, "z", g)
			base := cfg.Median(func() {
				_, err := ops.HashJoinPKFK(gids, "id", nil, zipf, "z", nil, ops.JoinOpts{Materialize: true})
				must(err)
			})
			logicIdx := cfg.Median(func() {
				_, err := baselines.JoinLogicIdx(gids, "id", zipf, "z")
				must(err)
			})
			smokeI := cfg.Median(func() {
				_, err := ops.HashJoinPKFK(gids, "id", nil, zipf, "z", nil,
					ops.JoinOpts{Dirs: ops.CaptureBoth, Materialize: true})
				must(err)
			})
			smokeTC := cfg.Median(func() {
				_, err := ops.HashJoinPKFK(gids, "id", nil, zipf, "z", nil,
					ops.JoinOpts{Dirs: ops.CaptureBoth, Materialize: true, CountsByBuildKey: counts})
				must(err)
			})
			cfg.printf("%-10d %-8d %-12.1f %-16s %-16s %-16s\n",
				n, g, ms(base), withOv(logicIdx, base), withOv(smokeI, base), withOv(smokeTC, base))
		}
	}
	return nil
}

// Fig7 compares M:N join capture variants on a heavily skewed join; the
// output is not materialized (§6.1.3), so the times are dominated by rid
// array resizing — which is what deferring avoids.
func Fig7(cfg Config) error {
	rights := []int{10_000, 50_000, 100_000}
	if !cfg.paper() {
		rights = []int{10_000, 50_000}
	}
	leftGroups := []int{10, 100}
	cfg.printf("Figure 7: M:N join lineage capture latency (ms), left=1000 tuples\n")
	cfg.printf("%-12s %-10s %-12s %-18s %-12s\n", "left-groups", "right-n", "smoke-i", "smoke-d-deferforw", "smoke-d")
	for _, lg := range leftGroups {
		left := datagen.Zipf("zipf1", 1.0, 1000, lg, 3)
		for _, rn := range rights {
			right := datagen.Zipf("zipf2", 1.0, rn, 100, 4)
			tInj := cfg.Median(func() {
				_, err := ops.HashJoinMN(left, "z", right, "z", ops.MNInject, ops.JoinOpts{Dirs: ops.CaptureBoth})
				must(err)
			})
			tDF := cfg.Median(func() {
				_, err := ops.HashJoinMN(left, "z", right, "z", ops.MNDeferForward, ops.JoinOpts{Dirs: ops.CaptureBoth})
				must(err)
			})
			tD := cfg.Median(func() {
				_, err := ops.HashJoinMN(left, "z", right, "z", ops.MNDefer, ops.JoinOpts{Dirs: ops.CaptureBoth})
				must(err)
			})
			cfg.printf("%-12d %-10d %-12.1f %-18.1f %-12.1f\n", lg, rn, ms(tInj), ms(tDF), ms(tD))
		}
	}
	return nil
}

// Fig21 (Appendix G.1) measures selection capture with and without
// selectivity estimates across predicate selectivities.
func Fig21(cfg Config) error {
	sizes := []int{1_000_000, 5_000_000}
	if !cfg.paper() {
		sizes = []int{200_000, 1_000_000}
	}
	cfg.printf("Figure 21: selection lineage capture latency (ms)\n")
	cfg.printf("%-10s %-8s %-12s %-12s %-14s\n", "tuples", "sel%", "baseline", "smoke-i", "smoke-i+ec")
	for _, n := range sizes {
		rel := datagen.Zipf("zipf", 0, n, 100, 7)
		for _, selPct := range []int{1, 10, 25, 50} {
			e := expr.LtE(expr.C("v"), expr.F(float64(selPct)))
			pred, err := expr.CompilePred(e, rel, nil)
			must(err)
			base := cfg.Median(func() {
				r := ops.Select(rel.N, pred, ops.SelectOpts{Mode: ops.None})
				sinkRids(r.OutRids)
			})
			smokeI := cfg.Median(func() {
				r := ops.Select(rel.N, pred, ops.SelectOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
				sinkRids(r.OutRids)
			})
			// The estimate v/100 is exact for the uniform column; the paper
			// finds overestimating is safe while underestimating pays
			// resizing, so estimate slightly high.
			smokeEC := cfg.Median(func() {
				r := ops.Select(rel.N, pred, ops.SelectOpts{
					Mode: ops.Inject, Dirs: ops.CaptureBoth,
					EstimatedSelectivity: float64(selPct)/100 + 0.01,
				})
				sinkRids(r.OutRids)
			})
			cfg.printf("%-10d %-8d %-12.1f %-12.1f %-14.1f\n", n, selPct, ms(base), ms(smokeI), ms(smokeEC))
		}
	}
	return nil
}

var ridSink int32

func sinkRids(r []int32) {
	if len(r) > 0 {
		ridSink += r[len(r)-1]
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

var _ = storage.TInt
