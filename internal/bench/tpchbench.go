package bench

import (
	"fmt"

	"smoke/internal/exec"
	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/tpch"
)

func (c Config) tpchSF() float64 {
	if c.paper() {
		return 1.0
	}
	return 0.05
}

// Fig8 measures relative lineage capture overhead on TPC-H Q1, Q3, Q10, Q12
// for Smoke-I vs Logic-Idx (paper: Smoke-I ≤ 22%, Logic-Idx up to 511%).
func Fig8(cfg Config) error {
	db := tpch.Generate(cfg.tpchSF(), 42)
	cfg.printf("Figure 8: TPC-H lineage capture relative overhead (SF=%.2f)\n", cfg.tpchSF())
	cfg.printf("%-6s %-14s %-18s %-18s\n", "query", "baseline(ms)", "smoke-i", "logic-idx")
	for _, name := range []string{"Q1", "Q3", "Q10", "Q12"} {
		spec := db.Queries()[name]
		base := cfg.Median(func() {
			_, err := exec.Run(spec, exec.Opts{Mode: ops.None})
			must(err)
		})
		smokeI := cfg.Median(func() {
			_, err := exec.Run(spec, exec.Opts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
			must(err)
		})
		logicIdx := cfg.Median(func() {
			_, _, err := exec.RunLogicIdx(spec, nil)
			must(err)
		})
		cfg.printf("%-6s %-14.1f %-18s %-18s\n", name, ms(base),
			pct(smokeI, base), pct(logicIdx, base))
	}
	return nil
}

func pct(d, base interface{ Nanoseconds() int64 }) string {
	o := float64(d.Nanoseconds()-base.Nanoseconds()) / float64(base.Nanoseconds())
	return fmt.Sprintf("%.0f%%", o*100)
}

// Fig22 (Appendix G.2) measures input-relation pruning: capture latency when
// only one relation's lineage is kept vs all relations vs none.
func Fig22(cfg Config) error {
	db := tpch.Generate(cfg.tpchSF(), 42)
	cfg.printf("Figure 22: input-relation pruning, capture latency (ms)\n")
	for _, q := range []struct {
		name   string
		spec   exec.Spec
		tables []string
	}{
		{"Q3", db.Q3(), []string{"customer", "orders", "lineitem"}},
		{"Q10", db.Q10(), []string{"nation", "customer", "orders", "lineitem"}},
	} {
		base := cfg.Median(func() {
			_, err := exec.Run(q.spec, exec.Opts{Mode: ops.None})
			must(err)
		})
		cfg.printf("%s:\n  %-12s %.1f\n", q.name, "no-capture", ms(base))
		for ti, tname := range q.tables {
			dirs := make([]ops.Directions, len(q.tables))
			dirs[ti] = ops.CaptureBoth
			t := cfg.Median(func() {
				_, err := exec.Run(q.spec, exec.Opts{Mode: ops.Inject, TableDirs: dirs})
				must(err)
			})
			cfg.printf("  %-12s %s\n", tname, withOv(t, base))
		}
		all := cfg.Median(func() {
			_, err := exec.Run(q.spec, exec.Opts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
			must(err)
		})
		cfg.printf("  %-12s %s\n", "all", withOv(all, base))
	}
	return nil
}

// Fig23 (Appendix G.2) measures selection push-down on Q1 + l_taxpct < ?:
// below the crossover the smaller lineage index wins; at high selectivity the
// per-record predicate evaluation costs more than it saves.
func Fig23(cfg Config) error {
	db := tpch.Generate(cfg.tpchSF(), 42)
	spec := microQ1Single(db)
	cfg.printf("Figure 23: selection push-down capture latency on Q1 (ms)\n")
	cfg.printf("%-8s %-12s %-12s %-14s\n", "sel%", "baseline", "smoke-i", "pushdown")
	base := cfg.Median(func() {
		_, err := ops.HashAgg(db.Lineitem, nil, spec, ops.AggOpts{Mode: ops.None})
		must(err)
	})
	plain := cfg.Median(func() {
		_, err := ops.HashAgg(db.Lineitem, nil, spec, ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
		must(err)
	})
	// l_taxpct is uniform over 0..8: thresholds sweep selectivity.
	for _, taxLt := range []int64{1, 3, 5, 7, 9} {
		pd := cfg.Median(func() {
			_, err := ops.HashAgg(db.Lineitem, nil, spec, ops.AggOpts{
				Mode: ops.Inject, Dirs: ops.CaptureBoth,
				PushdownFilter: expr.LtE(expr.C("l_taxpct"), expr.I(taxLt)),
			})
			must(err)
		})
		cfg.printf("%-8.0f %-12.1f %-12.1f %-14.1f\n",
			float64(taxLt)/9*100, ms(base), ms(plain), ms(pd))
	}
	return nil
}

// microQ1Single is Q1 as a single-operator aggregation (filter folded away:
// the shipdate predicate keeps ~all rows at our generator's date range, so
// the single-table experiments aggregate the full lineitem — matching the
// paper's note that Q1 has the highest selectivity of the four queries).
func microQ1Single(db *tpch.DB) ops.GroupBySpec {
	return ops.GroupBySpec{
		Keys: []string{"l_returnflag", "l_linestatus"},
		Aggs: []ops.AggSpec{
			{Fn: ops.Sum, Arg: expr.C("l_quantity"), Name: "sum_qty"},
			{Fn: ops.Sum, Arg: expr.C("l_extendedprice"), Name: "sum_base_price"},
			{Fn: ops.Avg, Arg: expr.C("l_discount"), Name: "avg_disc"},
			{Fn: ops.Count, Name: "count_order"},
		},
	}
}
