package bench

import (
	"fmt"
	"time"

	"smoke/internal/baselines"
	"smoke/internal/cube"
	"smoke/internal/datagen"
	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/tpch"
)

// Fig9 measures backward lineage query latency over the group-by microbench
// output across zipf skews: Smoke-L (index scan) vs Lazy (selection scan) vs
// scanning the Logic-Rid / Logic-Tup annotated relations.
func Fig9(cfg Config) error {
	n, g := 10_000_000, 5000
	if !cfg.paper() {
		n = 1_000_000
	}
	spec := microAggSpec()
	cfg.printf("Figure 9: backward lineage query latency (ms avg/max over sampled groups), %d tuples, %d groups\n", n, g)
	cfg.printf("%-6s %-20s %-20s %-20s %-20s\n", "theta", "smoke-l", "lazy", "logic-rid", "logic-tup")
	for _, theta := range []float64{0, 0.4, 0.8, 1.6} {
		rel := datagen.Zipf("zipf", theta, n, g, 11)
		smoke, err := ops.HashAgg(rel, nil, spec, ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
		if err != nil {
			return err
		}
		annRid, err := baselines.GroupByLogical(rel, nil, spec, baselines.LogicRid, nil, nil)
		if err != nil {
			return err
		}
		annTup, err := baselines.GroupByLogical(rel, nil, spec, baselines.LogicTup, nil, nil)
		if err != nil {
			return err
		}
		// Sample output groups; the query is SELECT * FROM Lb(o, zipf).
		sample := sampleGroups(smoke.Out.N, 40)
		var sAvg, sMax, lAvg, lMax, rAvg, rMax, tAvg, tMax time.Duration
		for _, o := range sample {
			d := timeOne(func() {
				rids := smoke.BW.List(int(o))
				sinkRel(rel.Gather("lq", rids))
			})
			sAvg += d
			sMax = maxd(sMax, d)

			d = timeOne(func() {
				rids, err := baselines.LazyBackward(rel, []string{"z"}, smoke.Out, int(o), nil, nil)
				must(err)
				sinkRel(rel.Gather("lq", rids))
			})
			lAvg += d
			lMax = maxd(lMax, d)

			d = timeOne(func() {
				rids := baselines.BackwardFromAnnotated(&annRid, findGroup(annRid.Out, smoke.Out, int(o)))
				sinkRel(rel.Gather("lq", rids))
			})
			rAvg += d
			rMax = maxd(rMax, d)

			d = timeOne(func() {
				rids := baselines.BackwardFromAnnotated(&annTup, findGroup(annTup.Out, smoke.Out, int(o)))
				sinkRids(rids)
			})
			tAvg += d
			tMax = maxd(tMax, d)
		}
		k := time.Duration(len(sample))
		cfg.printf("%-6.1f %-20s %-20s %-20s %-20s\n", theta,
			avgMax(sAvg/k, sMax), avgMax(lAvg/k, lMax), avgMax(rAvg/k, rMax), avgMax(tAvg/k, tMax))
	}
	return nil
}

// q1Groups captures TPC-H Q1 and returns the capture result used as the base
// query of the §6.4 experiments.
func q1Capture(db *tpch.DB, partitionBy []string) (ops.AggResult, error) {
	return ops.HashAgg(db.Lineitem, nil, microQ1Single(db), ops.AggOpts{
		Mode: ops.Inject, Dirs: ops.CaptureBoth, PartitionBy: partitionBy,
	})
}

// q1aSpec is the Q1a drill-down: group by year-month of shipdate, keeping
// Q1's aggregates.
func q1aSpec() ops.GroupBySpec {
	revenue := expr.MulE(expr.C("l_extendedprice"), expr.SubE(expr.F(1), expr.C("l_discount")))
	return ops.GroupBySpec{
		Keys: []string{"l_shipym"},
		Aggs: []ops.AggSpec{
			{Fn: ops.Sum, Arg: expr.C("l_quantity"), Name: "sum_qty"},
			{Fn: ops.Sum, Arg: expr.C("l_extendedprice"), Name: "sum_base_price"},
			{Fn: ops.Sum, Arg: revenue, Name: "sum_disc_price"},
			{Fn: ops.Avg, Arg: expr.C("l_quantity"), Name: "avg_qty"},
			{Fn: ops.Avg, Arg: expr.C("l_discount"), Name: "avg_disc"},
			{Fn: ops.Count, Name: "count_order"},
		},
	}
}

// Fig10 measures Q1b lineage-consuming query latency vs selectivity for
// Lazy, lineage indexes without data skipping, and with data skipping.
func Fig10(cfg Config) error {
	db := tpch.Generate(cfg.tpchSF(), 42)
	li := db.Lineitem

	// Base query capture, with and without partitioned rid arrays.
	partAttrs := []string{"l_shipmode", "l_shipinstruct"}
	noSkip, err := q1Capture(db, nil)
	if err != nil {
		return err
	}
	skip, err := q1Capture(db, partAttrs)
	if err != nil {
		return err
	}
	cfg.printf("Figure 10: Q1b lineage-consuming query latency (ms) vs selectivity\n")
	cfg.printf("%-10s %-26s %-10s %-10s %-14s %-14s\n", "group", "params", "sel%", "lazy", "no-skipping", "skipping")

	spec := q1aSpec()
	keys := []string{"l_returnflag", "l_linestatus"}
	for o := 0; o < noSkip.Out.N; o++ {
		for _, mode := range []string{"MAIL", "SHIP", "AIR"} {
			for _, instr := range []string{"NONE", "COLLECT COD"} {
				params := expr.Params{"p1": mode, "p2": instr}
				consumingPred := expr.AndE(
					expr.EqE(expr.C("l_shipmode"), expr.P("p1")),
					expr.EqE(expr.C("l_shipinstruct"), expr.P("p2")),
				)
				// Lazy: full selection scan with group keys + parameters.
				lazyT := timeOne(func() {
					lazyPred, err := baselines.LazyPredicate(li, keys, noSkip.Out, o, consumingPred)
					must(err)
					p, err := expr.CompilePred(lazyPred, li, params)
					must(err)
					var rids []int32
					for rid := int32(0); rid < int32(li.N); rid++ {
						if p(rid) {
							rids = append(rids, rid)
						}
					}
					res, err := ops.HashAgg(li, rids, spec, ops.AggOpts{})
					must(err)
					sinkRel(res.Out)
				})
				// No data skipping: secondary index scan + filter + agg.
				var matched int
				noSkipT := timeOne(func() {
					p, err := expr.CompilePred(consumingPred, li, params)
					must(err)
					all := noSkip.BW.List(o)
					rids := make([]int32, 0, 64)
					for _, rid := range all {
						if p(rid) {
							rids = append(rids, rid)
						}
					}
					matched = len(rids)
					res, err := ops.HashAgg(li, rids, spec, ops.AggOpts{})
					must(err)
					sinkRel(res.Out)
				})
				// Data skipping: read only the matching partition.
				skipT := timeOne(func() {
					key, ok := ops.PartitionKey(&skip, li, partAttrs, []any{mode, instr})
					var rids []int32
					if ok {
						rids = skip.BWPart.Partition(o, key)
					}
					res, err := ops.HashAgg(li, rids, spec, ops.AggOpts{})
					must(err)
					sinkRel(res.Out)
				})
				sel := 0.0
				if li.N > 0 {
					sel = float64(matched) / float64(li.N) * 100
				}
				cfg.printf("%-10d %-26s %-10.2f %-10.1f %-14.1f %-14.1f\n",
					o, mode+"/"+instr, sel, ms(lazyT), ms(noSkipT), ms(skipT))
			}
		}
	}
	cfg.printf("(interactive threshold: 150ms)\n")
	return nil
}

// Fig11 measures Q1c latency: Lazy vs lineage index scan vs the materialized
// cube from aggregation push-down (≈0ms).
func Fig11(cfg Config) error {
	db := tpch.Generate(cfg.tpchSF(), 42)
	li := db.Lineitem
	base, err := q1Capture(db, nil)
	if err != nil {
		return err
	}
	// Q1b acts as the base query for Q1c (§6.4): capture it with a cube on
	// l_taxpct.
	q1cSpec := ops.GroupBySpec{
		Keys: []string{"l_shipym", "l_taxpct"},
		Aggs: q1aSpec().Aggs,
	}
	cfg.printf("Figure 11: Q1c lineage-consuming query latency (ms)\n")
	cfg.printf("%-10s %-10s %-12s %-16s %-12s\n", "group", "sel%", "lazy", "no-pushdown", "pushdown")
	keys := []string{"l_returnflag", "l_linestatus"}
	for o := 0; o < base.Out.N; o++ {
		rids := base.BW.List(o)
		// Q1b with capture + cube: its backward lineage feeds Q1c.
		q1b, err := ops.HashAgg(li, rids, q1aSpec(), ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBackward,
			Observe: nil})
		must(err)
		cb, err := cube.NewBuilder(li, cube.Spec{
			Dims: []string{"l_shipym", "l_taxpct"},
			Aggs: []cube.AggDef{{Fn: ops.Count, Name: "count_order"}, {Fn: ops.Sum, Arg: expr.C("l_quantity"), Name: "sum_qty"}},
		}, nil)
		must(err)
		// Build the cube during (re-)capture of the base group's scan.
		_, err = ops.HashAgg(li, rids, ops.GroupBySpec{Keys: []string{"l_shipym"},
			Aggs: []ops.AggSpec{{Fn: ops.Count, Name: "c"}}},
			ops.AggOpts{Mode: ops.None, Observe: func(slot int32, rid int32) { cb.Observe(slot, rid) }})
		must(err)
		q1bCube := cb.Build()

		// Probe a few Q1b output groups (year-months) as oc.
		sample := sampleGroups(q1b.Out.N, 4)
		for _, oc := range sample {
			sel := float64(len(q1b.BW.List(int(oc)))) / float64(li.N) * 100

			lazyT := timeOne(func() {
				ymVal := q1b.Out.Int(0, int(oc))
				pred := expr.AndE(
					mustPred(keys, base.Out, o),
					expr.EqE(expr.C("l_shipym"), expr.I(ymVal)),
				)
				p, err := expr.CompilePred(pred, li, nil)
				must(err)
				var sub []int32
				for rid := int32(0); rid < int32(li.N); rid++ {
					if p(rid) {
						sub = append(sub, rid)
					}
				}
				res, err := ops.HashAgg(li, sub, q1cSpec, ops.AggOpts{})
				must(err)
				sinkRel(res.Out)
			})
			noPushT := timeOne(func() {
				sub := q1b.BW.List(int(oc))
				res, err := ops.HashAgg(li, sub, q1cSpec, ops.AggOpts{})
				must(err)
				sinkRel(res.Out)
			})
			pushT := timeOne(func() {
				ans, err := q1bCube.Query(int32(oc), nil)
				must(err)
				sinkRel(ans)
			})
			cfg.printf("%-10d %-10.2f %-12.1f %-16.1f %-12.3f\n", o, sel, ms(lazyT), ms(noPushT), ms(pushT))
		}
	}
	return nil
}

func mustPred(keys []string, out interface {
	Int(int, int) int64
	Str(int, int) string
}, o int) expr.Expr {
	// Q1's keys are the two flag strings.
	return expr.AndE(
		expr.EqE(expr.C("l_returnflag"), expr.S(out.Str(0, o))),
		expr.EqE(expr.C("l_linestatus"), expr.S(out.Str(1, o))),
	)
}

// Fig12 measures the capture-side cost of aggregation push-down: the Q1a
// capture per base group, without and with the cube (paper: 2.9% → 9.15%).
func Fig12(cfg Config) error {
	db := tpch.Generate(cfg.tpchSF(), 42)
	li := db.Lineitem
	base, err := q1Capture(db, nil)
	if err != nil {
		return err
	}
	cfg.printf("Figure 12: aggregation push-down capture overhead per Q1 group (%% over uninstrumented)\n")
	cfg.printf("%-8s %-14s %-14s %-14s\n", "group", "baseline(ms)", "no-pushdown", "pushdown")
	for o := 0; o < base.Out.N; o++ {
		rids := base.BW.List(o)
		noCap := cfg.Median(func() {
			_, err := ops.HashAgg(li, rids, q1aSpec(), ops.AggOpts{})
			must(err)
		})
		noPush := cfg.Median(func() {
			_, err := ops.HashAgg(li, rids, q1aSpec(), ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
			must(err)
		})
		push := cfg.Median(func() {
			cb, err := cube.NewBuilder(li, cube.Spec{
				Dims: []string{"l_taxpct"},
				Aggs: []cube.AggDef{{Fn: ops.Count, Name: "c"}, {Fn: ops.Sum, Arg: expr.C("l_quantity"), Name: "s"}},
			}, nil)
			must(err)
			_, err = ops.HashAgg(li, rids, q1aSpec(), ops.AggOpts{
				Mode: ops.Inject, Dirs: ops.CaptureBoth, Observe: cb.Observe,
			})
			must(err)
			cb.Build()
		})
		cfg.printf("%-8d %-14.1f %-14s %-14s\n", o, ms(noCap), pct(noPush, noCap), pct(push, noCap))
	}
	return nil
}

// --- helpers ---

func sampleGroups(n, k int) []int {
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, k)
	step := n / k
	for i := 0; i < n; i += step {
		out = append(out, i)
	}
	return out
}

// findGroup maps a Smoke output group to the logical run's group with the
// same key (group discovery order can differ).
func findGroup(logicalOut, smokeOut interface {
	Int(int, int) int64
}, o int) int32 {
	key := smokeOut.Int(0, o)
	// logical outputs share the key in column 0
	type intser interface{ Int(int, int) int64 }
	lo := logicalOut.(intser)
	for i := 0; ; i++ {
		if lo.Int(0, i) == key {
			return int32(i)
		}
	}
}

func timeOne(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func maxd(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func avgMax(avg, max time.Duration) string {
	return fmt.Sprintf("%.2f/%.2f", ms(avg), ms(max))
}

var relSink int

func sinkRel(r interface{}) { relSink++ }
