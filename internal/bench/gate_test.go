package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const gateBaseline = `{
  "tuples": 100000,
  "rows": [
    {"op": "select", "workers": 1, "ms": 10.0, "speedup_vs_serial": 1.0},
    {"op": "select", "workers": 4, "ms": 4.0, "speedup_vs_serial": 2.5},
    {"op": "groupby", "workers": 1, "ms": 20.0, "speedup_vs_serial": 1.0}
  ]
}`

// TestGateCoversSuffixedLatencyFields: compress-style rows measure
// backward_trace_ms/forward_trace_ms instead of ms; those gate too, and
// derived fields (bytes_per_rid, index_bytes) stay out of the identity.
func TestGateCoversSuffixedLatencyFields(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", `{
  "rows": [
    {"workload": "zipf", "repr": "raw", "bytes_per_rid": 4.0, "index_bytes": 1000, "backward_trace_ms": 1.0, "forward_trace_ms": 0.5}
  ]
}`)
	cur := writeReport(t, dir, "cur.json", `{
  "rows": [
    {"workload": "zipf", "repr": "raw", "bytes_per_rid": 3.5, "index_bytes": 900, "backward_trace_ms": 30.0, "forward_trace_ms": 0.5}
  ]
}`)
	err := CompareGateFile(base, cur, GateConfig{Tolerance: 2.0, SlackMS: 5})
	if err == nil || !strings.Contains(err.Error(), "backward_trace_ms") {
		t.Fatalf("suffixed latency regression must fail and name the field, got: %v", err)
	}
}

// TestGatePassesWithinTolerance: small drift (and speedup changes, which are
// not identity fields) stays green.
func TestGatePassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", gateBaseline)
	cur := writeReport(t, dir, "cur.json", `{
  "rows": [
    {"op": "select", "workers": 1, "ms": 14.0, "speedup_vs_serial": 0.9},
    {"op": "select", "workers": 4, "ms": 7.0, "speedup_vs_serial": 2.0},
    {"op": "groupby", "workers": 1, "ms": 25.0, "speedup_vs_serial": 1.0},
    {"op": "groupby", "workers": 4, "ms": 9.0, "speedup_vs_serial": 2.0}
  ]
}`)
	if err := CompareGateFile(base, cur, GateConfig{Tolerance: 2.0, SlackMS: 5}); err != nil {
		t.Fatalf("within-tolerance run should pass: %v", err)
	}
}

// TestGateFailsOnSeededRegression: a >2x latency regression on one row fails
// with that row named — the CI acceptance demonstration.
func TestGateFailsOnSeededRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", gateBaseline)
	cur := writeReport(t, dir, "cur.json", `{
  "rows": [
    {"op": "select", "workers": 1, "ms": 60.0},
    {"op": "select", "workers": 4, "ms": 4.0},
    {"op": "groupby", "workers": 1, "ms": 20.0}
  ]
}`)
	err := CompareGateFile(base, cur, GateConfig{Tolerance: 2.0, SlackMS: 5})
	if err == nil {
		t.Fatal("seeded 6x regression must fail the gate")
	}
	if !strings.Contains(err.Error(), "op=select") || !strings.Contains(err.Error(), "workers=1") {
		t.Fatalf("failure should name the regressed row, got: %v", err)
	}
}

// TestGateFailsOnVanishedRow: dropping a measured row (an experiment
// silently losing coverage) fails.
func TestGateFailsOnVanishedRow(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", gateBaseline)
	cur := writeReport(t, dir, "cur.json", `{
  "rows": [
    {"op": "select", "workers": 1, "ms": 10.0}
  ]
}`)
	err := CompareGateFile(base, cur, GateConfig{Tolerance: 2.0, SlackMS: 5})
	if err == nil || !strings.Contains(err.Error(), "vanished") {
		t.Fatalf("vanished rows must fail the gate, got: %v", err)
	}
}

// TestGateCoversCaptureRows: capture_rows are gated like rows — a vanished
// or regressed scaling measurement fails even though it lives in the second
// array.
func TestGateCoversCaptureRows(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", `{
  "rows": [],
  "capture_rows": [
    {"workload": "zipf", "op": "capture-compressed", "workers": 4, "ms": 5.0}
  ]
}`)
	cur := writeReport(t, dir, "cur.json", `{
  "rows": [],
  "capture_rows": [
    {"workload": "zipf", "op": "capture-compressed", "workers": 4, "ms": 60.0}
  ]
}`)
	err := CompareGateFile(base, cur, GateConfig{Tolerance: 2.0, SlackMS: 5})
	if err == nil || !strings.Contains(err.Error(), "capture-compressed") {
		t.Fatalf("capture_rows regression must fail and name the row, got: %v", err)
	}
}

const scalingHealthy = `{
  "cores": 8,
  "rows": [
    {"query": "star", "path": "fused", "workers": 1, "ms": 100.0},
    {"query": "star", "path": "fused", "workers": 4, "ms": 30.0}
  ],
  "capture_rows": [
    {"workload": "zipf", "op": "capture-compressed", "workers": 1, "ms": 80.0},
    {"workload": "zipf", "op": "capture-compressed", "workers": 4, "ms": 25.0}
  ]
}`

// TestScalingGatePassesOnHealthyRatio: 100ms -> 30ms at workers=4 clears a
// 1.2x floor, in both rows and capture_rows.
func TestScalingGatePassesOnHealthyRatio(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "BENCH_plan.json", scalingHealthy)
	cfg := ScalingConfig{AtWorkers: 4, MinSpeedup: 1.2, MinMS: 1}
	if err := ScalingGateFile(path, cfg); err != nil {
		t.Fatalf("healthy scaling should pass: %v", err)
	}
}

// TestScalingGateFailsOnCollapse: a parallel run slower than serial on an
// 8-core report fails with the pair named.
func TestScalingGateFailsOnCollapse(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "BENCH_plan.json", `{
  "cores": 8,
  "rows": [
    {"query": "star", "path": "fused", "workers": 1, "ms": 100.0},
    {"query": "star", "path": "fused", "workers": 4, "ms": 95.0}
  ]
}`)
	err := ScalingGateFile(path, ScalingConfig{AtWorkers: 4, MinSpeedup: 1.2, MinMS: 1})
	if err == nil || !strings.Contains(err.Error(), "scaling collapsed") || !strings.Contains(err.Error(), "query=star") {
		t.Fatalf("collapsed scaling must fail and name the pair, got: %v", err)
	}
}

// TestScalingGateSkipsOnSmallMachine: the same collapsed report passes when
// the emitting machine detected fewer cores than the compared worker count,
// and the skip is announced through Logf.
func TestScalingGateSkipsOnSmallMachine(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "BENCH_plan.json", `{
  "cores": 1,
  "rows": [
    {"query": "star", "path": "fused", "workers": 1, "ms": 100.0},
    {"query": "star", "path": "fused", "workers": 4, "ms": 95.0}
  ]
}`)
	var logged []string
	cfg := ScalingConfig{AtWorkers: 4, MinSpeedup: 1.2, MinMS: 1,
		Logf: func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }}
	if err := ScalingGateFile(path, cfg); err != nil {
		t.Fatalf("1-core report must skip, not fail: %v", err)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "skipped") {
		t.Fatalf("skip must be annotated via Logf, got: %v", logged)
	}
}

// TestScalingGateSkipsNoiseFloorAndUnpaired: sub-floor pairs and serial-only
// rows are logged skips, never failures.
func TestScalingGateSkipsNoiseFloorAndUnpaired(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "BENCH_consume.json", `{
  "cores": 8,
  "rows": [
    {"path": "preplan", "workers": 1, "ms": 50.0},
    {"path": "tinyrow", "workers": 1, "ms": 0.4},
    {"path": "tinyrow", "workers": 4, "ms": 0.9}
  ]
}`)
	var logged []string
	cfg := ScalingConfig{AtWorkers: 4, MinSpeedup: 1.2, MinMS: 5,
		Logf: func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }}
	if err := ScalingGateFile(path, cfg); err != nil {
		t.Fatalf("unpaired and sub-floor rows must skip: %v", err)
	}
	if len(logged) != 2 {
		t.Fatalf("expected 2 skip annotations, got: %v", logged)
	}
}

// TestScalingGateDisabled: MinSpeedup <= 0 turns the gate off entirely.
func TestScalingGateDisabled(t *testing.T) {
	dir := t.TempDir()
	writeReport(t, dir, "BENCH_plan.json", `{
  "cores": 8,
  "rows": [
    {"query": "star", "path": "fused", "workers": 1, "ms": 100.0},
    {"query": "star", "path": "fused", "workers": 4, "ms": 500.0}
  ]
}`)
	if err := ScalingGateDir(dir, ScalingConfig{AtWorkers: 4, MinSpeedup: 0}); err != nil {
		t.Fatalf("disabled gate must pass: %v", err)
	}
}

// TestGateDirs: a baseline file with no current counterpart fails; matching
// directories pass.
func TestGateDirs(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeReport(t, baseDir, "BENCH_x.json", gateBaseline)
	if err := CompareGateDirs(baseDir, curDir, GateConfig{Tolerance: 2.0, SlackMS: 5}); err == nil {
		t.Fatal("missing current report must fail")
	}
	writeReport(t, curDir, "BENCH_x.json", gateBaseline)
	if err := CompareGateDirs(baseDir, curDir, GateConfig{Tolerance: 2.0, SlackMS: 5}); err != nil {
		t.Fatalf("matching dirs should pass: %v", err)
	}
	if err := CompareGateDirs(filepath.Join(baseDir, "empty"), curDir, GateConfig{}); err == nil {
		t.Fatal("empty baseline dir must fail")
	}
}

const lazyHealthy = `{
  "cores": 1,
  "rows": [
    {"strategy": "eager", "trace_rate": 0, "base_ms": 4.0, "trace_ms": 0.0, "total_ms": 4.0},
    {"strategy": "eager", "trace_rate": 0.01, "base_ms": 4.0, "trace_ms": 0.1, "total_ms": 4.1},
    {"strategy": "eager", "trace_rate": 0.1, "base_ms": 4.0, "trace_ms": 0.2, "total_ms": 4.2},
    {"strategy": "lazy", "trace_rate": 0, "base_ms": 2.0, "trace_ms": 0.0, "total_ms": 2.0},
    {"strategy": "lazy", "trace_rate": 0.01, "base_ms": 2.0, "trace_ms": 1.0, "total_ms": 3.0},
    {"strategy": "lazy", "trace_rate": 0.1, "base_ms": 2.0, "trace_ms": 7.0, "total_ms": 9.0}
  ]
}`

// TestLazyGatePassesWhenSparseTracesWin: lazy beating eager at the 0 and 1%
// points passes even though eager wins at 10% — that point is above the
// gated rate and skips with an annotation.
func TestLazyGatePassesWhenSparseTracesWin(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "BENCH_lazy.json", lazyHealthy)
	var logged []string
	cfg := LazyConfig{MaxRate: 0.011, SlackMS: 1,
		Logf: func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }}
	if err := LazyGateFile(path, cfg); err != nil {
		t.Fatalf("sparse-trace win should pass: %v", err)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "trace_rate=0.1") {
		t.Fatalf("the 10%% point must skip with an annotation, got: %v", logged)
	}
}

// TestLazyGateFailsWhenEagerWinsSparse: lazy losing end-to-end at a gated
// rate fails with the point named.
func TestLazyGateFailsWhenEagerWinsSparse(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "BENCH_lazy.json", `{
  "rows": [
    {"strategy": "eager", "trace_rate": 0.01, "base_ms": 4.0, "trace_ms": 0.1, "total_ms": 4.1},
    {"strategy": "lazy", "trace_rate": 0.01, "base_ms": 2.0, "trace_ms": 9.0, "total_ms": 11.0}
  ]
}`)
	err := LazyGateFile(path, LazyConfig{MaxRate: 0.011, SlackMS: 1})
	if err == nil || !strings.Contains(err.Error(), "trace_rate=0.01") {
		t.Fatalf("lazy losing a gated point must fail and name it, got: %v", err)
	}
}

// TestLazyGateSkipsMissingAndRejectsEmpty: a missing report is a logged
// skip (the experiment may be off this run); a present report with no
// comparable pairs is an error, not a silent pass.
func TestLazyGateSkipsMissingAndRejectsEmpty(t *testing.T) {
	dir := t.TempDir()
	var logged []string
	cfg := LazyConfig{MaxRate: 0.011, SlackMS: 1,
		Logf: func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }}
	if err := LazyGateFile(filepath.Join(dir, "BENCH_lazy.json"), cfg); err != nil {
		t.Fatalf("missing report must skip, not fail: %v", err)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "no report") {
		t.Fatalf("missing-report skip must be annotated, got: %v", logged)
	}
	path := writeReport(t, dir, "BENCH_lazy.json", `{"rows": [{"strategy": "eager", "trace_rate": 0.5, "total_ms": 4.0}]}`)
	if err := LazyGateFile(path, cfg); err == nil {
		t.Fatal("report with no gated pairs must fail")
	}
	if err := LazyGateFile(path, LazyConfig{MaxRate: -1}); err != nil {
		t.Fatalf("negative MaxRate must disable the gate: %v", err)
	}
}

const shardServeReport = `{
  "cores": 8,
  "rows": [
    {"op": "trace", "sessions": 4, "workers": 4, "requests": 64, "p50_ms": 1.0, "p95_ms": 2.0, "p99_ms": 3.0, "cache_hit_rate": 0.5},
    {"op": "trace-shard1", "sessions": 4, "workers": 1, "shards": 1, "requests": 64, "p50_ms": 1.0, "p95_ms": %0.1f, "p99_ms": 3.0, "cache_hit_rate": 0},
    {"op": "trace-shard4", "sessions": 4, "workers": 1, "shards": 4, "requests": 64, "p50_ms": 1.2, "p95_ms": %0.1f, "p99_ms": 4.0, "cache_hit_rate": 0}
  ]
}`

// TestShardGateWithinRatioPasses: shards=4 p95 inside the ratio budget is
// green; blowing the budget fails and names both rows' numbers.
func TestShardGateWithinRatioPasses(t *testing.T) {
	dir := t.TempDir()
	cfg := ShardConfig{MaxShards: 4, MaxRatio: 2.0, SlackMS: 0, MinCores: 2}
	ok := writeReport(t, dir, "ok.json", fmt.Sprintf(shardServeReport, 10.0, 19.0))
	if err := ShardGateFile(ok, cfg); err != nil {
		t.Fatalf("within-ratio report failed: %v", err)
	}
	bad := writeReport(t, dir, "bad.json", fmt.Sprintf(shardServeReport, 10.0, 21.0))
	err := ShardGateFile(bad, cfg)
	if err == nil || !strings.Contains(err.Error(), "21.00ms") || !strings.Contains(err.Error(), "10.00ms") {
		t.Fatalf("blown ratio must fail naming both p95s, got: %v", err)
	}
}

// TestShardGateSlackAbsorbsNoise: the additive slack keeps sub-millisecond
// tiny-scale rows from flaking on a pure ratio.
func TestShardGateSlackAbsorbsNoise(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "cur.json", fmt.Sprintf(shardServeReport, 0.4, 2.1))
	if err := ShardGateFile(path, ShardConfig{MaxShards: 4, MaxRatio: 2.0, SlackMS: 5, MinCores: 2}); err != nil {
		t.Fatalf("slack must absorb sub-ms noise: %v", err)
	}
	if err := ShardGateFile(path, ShardConfig{MaxShards: 4, MaxRatio: 2.0, SlackMS: 0, MinCores: 2}); err == nil {
		t.Fatal("without slack the same report must fail")
	}
}

// TestShardGateSkipsSmallMachines: a report detecting fewer cores than
// MinCores skips with a logged annotation instead of failing — and a missing
// report skips too (serve may not be in the run's -exp list).
func TestShardGateSkipsSmallMachines(t *testing.T) {
	dir := t.TempDir()
	report := strings.Replace(fmt.Sprintf(shardServeReport, 10.0, 100.0), `"cores": 8`, `"cores": 1`, 1)
	path := writeReport(t, dir, "cur.json", report)
	var logged []string
	cfg := ShardConfig{MaxShards: 4, MaxRatio: 2.0, MinCores: 2,
		Logf: func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }}
	if err := ShardGateFile(path, cfg); err != nil {
		t.Fatalf("1-core report must skip, got: %v", err)
	}
	if err := ShardGateFile(filepath.Join(dir, "missing.json"), cfg); err != nil {
		t.Fatalf("missing report must skip, got: %v", err)
	}
	if len(logged) != 2 {
		t.Fatalf("want 2 skip annotations, got %v", logged)
	}
}

// TestShardGateFailsOnVanishedRows: a present report without both shard rows
// means the report shape drifted — that must be loud, not a silent pass.
func TestShardGateFailsOnVanishedRows(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "cur.json", `{
  "cores": 8,
  "rows": [
    {"op": "trace", "sessions": 4, "workers": 4, "requests": 64, "p95_ms": 2.0}
  ]
}`)
	err := ShardGateFile(path, ShardConfig{MaxShards: 4, MaxRatio: 2.0, MinCores: 2})
	if err == nil || !strings.Contains(err.Error(), "shape drifted") {
		t.Fatalf("missing shard rows must fail as shape drift, got: %v", err)
	}
}
