package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"smoke/internal/difftest"
	"smoke/internal/exec"
	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/plan"
	"smoke/internal/pool"
	"smoke/internal/storage"
)

// PlanBench is the plan-layer experiment (beyond-paper): multi-block queries
// run through both lowerings — the optimizer's SPJA-fused plan and the
// generic operator-at-a-time plan — end to end (execute + Inject capture,
// both directions). Before timing, it asserts that fused, generic, serial,
// and morsel-parallel runs all produce element-identical output and lineage
// (difftest.DiffPlanResults); timing numbers for divergent lineage would be
// meaningless. Results land in BENCH_plan.json.
func PlanBench(cfg Config) error {
	dimN, factN := 2_000, 1_000_000
	switch {
	case cfg.paper():
		factN = 10_000_000
	case cfg.tiny():
		dimN, factN = 200, 100_000
	}
	workerCounts := []int{1, 2, 4, 8}
	workers := workerCounts[len(workerCounts)-1]
	pl := pool.New(workers)
	defer pl.Close()

	dim, fact := planBenchData(dimN, factN)

	// q-star: a fully fusible SPJA block — the fused path runs it in one
	// pass with no intermediate lineage; the generic path materializes the
	// join and composes per-operator indexes.
	qStar := plan.Node(plan.GroupBy{
		Child: plan.Join{
			Left:     plan.Scan{Table: "dim", Rel: dim},
			Right:    plan.Scan{Table: "fact", Rel: fact, Filter: expr.LtE(expr.C("v"), expr.F(50))},
			LeftKey:  "g",
			RightKey: "k",
		},
		Keys: []string{"label"},
		Aggs: []plan.AggDef{
			{Fn: ops.Count, Name: "cnt"},
			{Fn: ops.Sum, Arg: expr.C("v"), Name: "sv"},
		},
	})
	// q-multiblock: aggregation over a join over a grouped subquery with
	// HAVING/ORDER BY/LIMIT residue — only the outer block fuses; the inner
	// aggregation stays a subplan input.
	qMulti := plan.Node(plan.Limit{
		N: 10,
		Child: plan.OrderBy{
			Keys: []plan.SortKey{{Col: "total", Desc: true}, {Col: "label"}},
			Child: plan.Filter{
				Pred: expr.GeE(expr.C("total"), expr.I(1)),
				Child: plan.GroupBy{
					Child: plan.Join{
						Left: plan.GroupBy{
							Child: plan.Scan{Table: "fact", Rel: fact},
							Keys:  []string{"k"},
							Aggs:  []plan.AggDef{{Fn: ops.Count, Name: "cnt"}},
						},
						Right:    plan.Scan{Table: "dim", Rel: dim},
						LeftKey:  "k",
						RightKey: "g",
					},
					Keys: []string{"label"},
					Aggs: []plan.AggDef{{Fn: ops.Sum, Arg: expr.C("cnt"), Name: "total"}},
				},
			},
		},
	})

	type row struct {
		Query     string  `json:"query"`
		Path      string  `json:"path"`
		Workers   int     `json:"workers"`
		Ms        float64 `json:"ms"`
		VsGeneric float64 `json:"speedup_vs_generic"`
	}
	report := struct {
		DimN    int    `json:"dim_rows"`
		FactN   int    `json:"fact_rows"`
		Cores   int    `json:"cores"`
		Mode    string `json:"mode"`
		Rows    []row  `json:"rows"`
		Created string `json:"created"`
	}{DimN: dimN, FactN: factN, Cores: runtime.NumCPU(), Mode: "inject+both", Created: time.Now().Format(time.RFC3339)}

	cfg.printf("Figure Q (beyond-paper): plan layer, fused vs generic lowering, execute+capture latency (ms), dim=%d fact=%d, %d cores\n", dimN, factN, report.Cores)
	cfg.printf("%-14s %-10s %-10s", "query", "path", "")
	for _, w := range workerCounts {
		cfg.printf(" %-16s", fmt.Sprintf("workers=%d", w))
	}
	cfg.printf("\n")

	for _, q := range []struct {
		name string
		node plan.Node
	}{{"star", qStar}, {"multiblock", qMulti}} {
		generic, _ := plan.Optimize(q.node, plan.Opts{NoFusion: true})
		fused, _ := plan.Optimize(q.node, plan.Opts{})

		// Lineage-equality gate across lowerings and parallelism.
		ref, err := exec.RunPlan(generic, exec.PlanOpts{Mode: ops.Inject})
		if err != nil {
			return err
		}
		for _, alt := range []struct {
			name string
			n    plan.Node
			w    int
		}{
			{"fused/serial", fused, 1},
			{"generic/par", generic, workers},
			{"fused/par", fused, workers},
		} {
			got, err := exec.RunPlan(alt.n, exec.PlanOpts{Mode: ops.Inject, Workers: alt.w, Pool: pl})
			if err != nil {
				return err
			}
			if err := difftest.DiffPlanResults(ref, got); err != nil {
				return fmt.Errorf("plan bench: %s lineage diverges on %s: %w", alt.name, q.name, err)
			}
		}

		var genericSerial time.Duration
		for _, path := range []struct {
			name string
			n    plan.Node
		}{{"generic", generic}, {"fused", fused}} {
			cfg.printf("%-14s %-10s %-10s", q.name, path.name, "")
			for _, w := range workerCounts {
				w := w
				n := path.n
				d := cfg.Median(func() {
					_, err := exec.RunPlan(n, exec.PlanOpts{Mode: ops.Inject, Workers: w, Pool: pl})
					must(err)
				})
				if path.name == "generic" && w == 1 {
					genericSerial = d
				}
				sp := 0.0
				if genericSerial > 0 {
					sp = float64(genericSerial) / float64(d)
				}
				report.Rows = append(report.Rows, row{Query: q.name, Path: path.name, Workers: w, Ms: ms(d), VsGeneric: sp})
				cfg.printf(" %-16s", fmt.Sprintf("%.1f (%.2fx)", ms(d), sp))
			}
			cfg.printf("\n")
		}
	}

	if cfg.JSONDir != "" {
		path := filepath.Join(cfg.JSONDir, "BENCH_plan.json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&report); err != nil {
			return err
		}
		cfg.printf("wrote %s\n", path)
	}
	return nil
}

// planBenchData generates the star dataset: dim(g pk, label) and
// fact(k fk, b, v) with a zipf-ish skew on k.
func planBenchData(dimN, factN int) (*storage.Relation, *storage.Relation) {
	r := rand.New(rand.NewSource(42))
	dim := storage.NewRelation("dim", storage.Schema{
		{Name: "g", Type: storage.TInt},
		{Name: "label", Type: storage.TString},
	}, dimN)
	for i := 0; i < dimN; i++ {
		dim.Cols[0].Ints[i] = int64(i)
		dim.Cols[1].Strs[i] = fmt.Sprintf("L%d", i%16)
	}
	fact := storage.NewRelation("fact", storage.Schema{
		{Name: "k", Type: storage.TInt},
		{Name: "b", Type: storage.TInt},
		{Name: "v", Type: storage.TFloat},
	}, factN)
	for i := 0; i < factN; i++ {
		// Square the uniform draw for a mild skew toward low keys.
		u := r.Float64()
		fact.Cols[0].Ints[i] = int64(u * u * float64(dimN))
		fact.Cols[1].Ints[i] = int64(r.Intn(8))
		fact.Cols[2].Floats[i] = float64(r.Intn(10000)) / 100
	}
	return dim, fact
}
