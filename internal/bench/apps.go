package bench

import (
	"sort"
	"time"

	"smoke/internal/crossfilter"
	"smoke/internal/ontime"
	"smoke/internal/physician"
	"smoke/internal/profiling"
)

func (c Config) ontimeConfig() ontime.Config {
	if c.paper() {
		return ontime.Config{Rows: 20_000_000, Airports: 8000, Days: 7762, Seed: 1}
	}
	return ontime.Config{Rows: 500_000, Airports: 500, Days: 400, Seed: 1}
}

// Fig13 measures the cumulative crossfilter timeline: setup (base views +
// capture) plus every 1D-brushing interaction across all views, for Lazy, BT,
// BT+FT, and the partial data cube (whose setup dominates — the cold-start
// trade-off).
func Fig13(cfg Config) error {
	rel := ontime.Generate(cfg.ontimeConfig())
	dims := ontime.Dims()
	cfg.printf("Figure 13: crossfilter cumulative latency (ms), %d rows\n", rel.N)
	cfg.printf("%-8s %-12s %-16s %-14s %-8s\n", "tech", "setup", "interactions", "cumulative", "#bars")

	for _, tech := range []crossfilter.Technique{crossfilter.Lazy, crossfilter.BT, crossfilter.BTFT} {
		var app *crossfilter.App
		setup := cfg.Median(func() {
			var err error
			app, err = crossfilter.New(rel, dims, tech)
			must(err)
		})
		bars := 0
		var total time.Duration
		for v := range dims {
			for bar := 0; bar < app.NumBars(v); bar++ {
				total += timeOne(func() {
					_, err := app.HighlightBar(v, int32(bar))
					must(err)
				})
				bars++
			}
		}
		cfg.printf("%-8s %-12.1f %-16.1f %-14.1f %-8d\n",
			tech, ms(setup), ms(total), ms(setup+total), bars)
	}

	// Data cube: near-instant interactions after an expensive build.
	var cb *crossfilter.Cube
	var app *crossfilter.App
	appSetup := timeOne(func() {
		var err error
		app, err = crossfilter.New(rel, dims, crossfilter.Lazy)
		must(err)
	})
	build := cfg.Median(func() {
		var err error
		cb, err = crossfilter.BuildCube(rel, dims)
		must(err)
	})
	bars := 0
	var total time.Duration
	for v := range dims {
		for bar := 0; bar < app.NumBars(v); bar++ {
			val := app.View(v).Int(0, bar)
			total += timeOne(func() { cb.Highlight(v, val) })
			bars++
		}
	}
	cfg.printf("%-8s %-12.1f %-16.1f %-14.1f %-8d  (setup includes cube build)\n",
		"CUBE", ms(appSetup+build), ms(total), ms(appSetup+build+total), bars)
	return nil
}

// Fig14 measures per-interaction latency by view against the 150ms
// interactive threshold.
func Fig14(cfg Config) error {
	rel := ontime.Generate(cfg.ontimeConfig())
	dims := ontime.Dims()
	cfg.printf("Figure 14: per-interaction crossfilter latency by view (ms; 150ms threshold)\n")
	cfg.printf("%-8s %-10s %-8s %-10s %-10s %-10s %-10s\n",
		"view", "tech", "#bars", "median", "p95", "max", ">150ms")
	for _, tech := range []crossfilter.Technique{crossfilter.Lazy, crossfilter.BT, crossfilter.BTFT} {
		app, err := crossfilter.New(rel, dims, tech)
		if err != nil {
			return err
		}
		for v, d := range dims {
			n := app.NumBars(v)
			lat := make([]time.Duration, 0, n)
			for bar := 0; bar < n; bar++ {
				lat = append(lat, timeOne(func() {
					_, err := app.HighlightBar(v, int32(bar))
					must(err)
				}))
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			over := 0
			for _, l := range lat {
				if l > 150*time.Millisecond {
					over++
				}
			}
			cfg.printf("%-8s %-10s %-8d %-10.2f %-10.2f %-10.2f %-10d\n",
				d, tech, n, ms(lat[n/2]), ms(lat[n*95/100]), ms(lat[n-1]), over)
		}
	}
	return nil
}

func (c Config) physicianConfig() physician.Config {
	if c.paper() {
		return physician.Config{Rows: 2_200_000, Zips: 30000, Orgs: 10000, ViolationRate: 0.001, Seed: 1}
	}
	return physician.Config{Rows: 300_000, Zips: 5000, Orgs: 2000, ViolationRate: 0.001, Seed: 1}
}

// Fig15 measures FD-violation evaluation plus bipartite graph construction
// for the four physician FDs under Metanome-UG, Smoke-UG, and Smoke-CD.
func Fig15(cfg Config) error {
	rel := physician.Generate(cfg.physicianConfig())
	cfg.printf("Figure 15: FD violation + bipartite graph latency (ms), %d rows\n", rel.N)
	cfg.printf("%-16s %-14s %-14s %-14s %-12s\n", "FD", "metanome-ug", "smoke-ug", "smoke-cd", "#violations")
	for _, fd := range physician.FDs() {
		lhs, rhs := fd[0], fd[1]
		var nViol int
		tMet := cfg.Median(func() {
			r, err := profiling.CheckMetanomeUG(rel, lhs, rhs)
			must(err)
			nViol = len(r.Violations)
		})
		tUG := cfg.Median(func() {
			_, err := profiling.CheckUG(rel, lhs, rhs)
			must(err)
		})
		tCD := cfg.Median(func() {
			_, err := profiling.CheckCD(rel, lhs, rhs)
			must(err)
		})
		cfg.printf("%-16s %-14.1f %-14.1f %-14.1f %-12d\n",
			lhs+"→"+rhs, ms(tMet), ms(tUG), ms(tCD), nViol)
	}
	return nil
}
