package expr

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"smoke/internal/dates"
	"smoke/internal/storage"
)

func fixture() *storage.Relation {
	r := storage.NewEmpty("t", storage.Schema{
		{Name: "id", Type: storage.TInt},
		{Name: "v", Type: storage.TFloat},
		{Name: "name", Type: storage.TString},
		{Name: "d", Type: storage.TInt},
	})
	r.AppendRow(1, 4.0, "alpha", int(dates.FromCivil(1996, 3, 15)))
	r.AppendRow(2, 9.0, "beta", int(dates.FromCivil(1997, 11, 2)))
	r.AppendRow(3, 16.0, "alpha", int(dates.FromCivil(1996, 3, 1)))
	return r
}

func TestTypeOf(t *testing.T) {
	r := fixture()
	cases := []struct {
		e    Expr
		want storage.Type
	}{
		{C("id"), storage.TInt},
		{C("v"), storage.TFloat},
		{C("name"), storage.TString},
		{I(1), storage.TInt},
		{F(1.5), storage.TFloat},
		{S("x"), storage.TString},
		{AddE(C("id"), I(1)), storage.TInt},
		{MulE(C("id"), C("v")), storage.TFloat},
		{Arith{Op: Div, L: C("id"), R: I(2)}, storage.TFloat},
		{Sqrt{E: C("v")}, storage.TFloat},
		{Year{E: C("d")}, storage.TInt},
		{Month{E: C("d")}, storage.TInt},
	}
	for _, c := range cases {
		got, err := TypeOf(c.e, r.Schema, nil)
		if err != nil {
			t.Errorf("TypeOf(%s): %v", c.e, err)
			continue
		}
		if got != c.want {
			t.Errorf("TypeOf(%s) = %s, want %s", c.e, got, c.want)
		}
	}
}

func TestTypeOfErrors(t *testing.T) {
	r := fixture()
	bad := []Expr{
		C("missing"),
		AddE(C("name"), I(1)),
		Year{E: C("v")},
		EqE(C("id"), I(1)), // boolean: must be compiled as predicate
		P("unbound"),
	}
	for _, e := range bad {
		if _, err := TypeOf(e, r.Schema, nil); err == nil {
			t.Errorf("TypeOf(%s) should error", e)
		}
	}
}

func TestCompileIntExpressions(t *testing.T) {
	r := fixture()
	f, err := CompileInt(AddE(MulE(C("id"), I(10)), I(5)), r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := f(1); got != 25 {
		t.Errorf("id*10+5 at rid 1 = %d, want 25", got)
	}
	y, err := CompileInt(Year{E: C("d")}, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if y(0) != 1996 || y(1) != 1997 {
		t.Errorf("year extraction = %d, %d", y(0), y(1))
	}
	m, err := CompileInt(Month{E: C("d")}, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m(1) != 11 {
		t.Errorf("month extraction = %d", m(1))
	}
}

func TestCompileNumExpressions(t *testing.T) {
	r := fixture()
	// sum-style aggregate argument: v * (1 - v/100)
	f, err := CompileNum(MulE(C("v"), SubE(F(1), Arith{Op: Div, L: C("v"), R: F(100)})), r, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 4.0 * (1 - 4.0/100)
	if got := f(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("compiled num = %v, want %v", got, want)
	}
	sq, err := CompileNum(Sqrt{E: C("v")}, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sq(1) != 3.0 {
		t.Errorf("sqrt(9) = %v", sq(1))
	}
	// Integer expression promoted to float.
	p, err := CompileNum(C("id"), r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p(2) != 3.0 {
		t.Errorf("promoted int = %v", p(2))
	}
}

func TestCompileStr(t *testing.T) {
	r := fixture()
	f, err := CompileStr(C("name"), r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f(1) != "beta" {
		t.Errorf("str col = %q", f(1))
	}
	lit, err := CompileStr(S("x"), r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lit(0) != "x" {
		t.Errorf("str lit = %q", lit(0))
	}
	if _, err := CompileStr(C("id"), r, nil); err == nil {
		t.Error("CompileStr over int column should error")
	}
}

func collectMatches(t *testing.T, r *storage.Relation, p Pred) []int32 {
	t.Helper()
	var out []int32
	for rid := int32(0); rid < int32(r.N); rid++ {
		if p(rid) {
			out = append(out, rid)
		}
	}
	return out
}

func TestCompilePredComparisons(t *testing.T) {
	r := fixture()
	cases := []struct {
		e    Expr
		want []int32
	}{
		{EqE(C("id"), I(2)), []int32{1}},
		{Cmp{Op: Ne, L: C("id"), R: I(2)}, []int32{0, 2}},
		{LtE(C("v"), F(10)), []int32{0, 1}},
		{GeE(C("v"), F(9)), []int32{1, 2}},
		{EqE(C("name"), S("alpha")), []int32{0, 2}},
		{Cmp{Op: Le, L: C("name"), R: S("alpha")}, []int32{0, 2}},
		{GtE(C("id"), C("v")), nil}, // mixed int/float comparison
		{LtE(Year{E: C("d")}, I(1997)), []int32{0, 2}},
		{InStr{E: C("name"), Set: []string{"beta", "gamma"}}, []int32{1}},
	}
	for _, c := range cases {
		p, err := CompilePred(c.e, r, nil)
		if err != nil {
			t.Errorf("CompilePred(%s): %v", c.e, err)
			continue
		}
		if got := collectMatches(t, r, p); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s matched %v, want %v", c.e, got, c.want)
		}
	}
}

func TestCompilePredConnectives(t *testing.T) {
	r := fixture()
	e := AndE(EqE(C("name"), S("alpha")), GtE(C("v"), F(5)))
	p, err := CompilePred(e, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectMatches(t, r, p); !reflect.DeepEqual(got, []int32{2}) {
		t.Errorf("AND matched %v", got)
	}
	or := Or{L: EqE(C("id"), I(1)), R: EqE(C("id"), I(3))}
	p, err = CompilePred(or, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectMatches(t, r, p); !reflect.DeepEqual(got, []int32{0, 2}) {
		t.Errorf("OR matched %v", got)
	}
	not := Not{E: EqE(C("name"), S("alpha"))}
	p, err = CompilePred(not, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectMatches(t, r, p); !reflect.DeepEqual(got, []int32{1}) {
		t.Errorf("NOT matched %v", got)
	}
}

func TestCompilePredErrors(t *testing.T) {
	r := fixture()
	bad := []Expr{
		C("id"),                               // not boolean
		EqE(C("name"), I(1)),                  // string vs int
		EqE(C("missing"), I(1)),               // unknown column
		InStr{E: C("id"), Set: []string{"x"}}, // IN over non-string
	}
	for _, e := range bad {
		if _, err := CompilePred(e, r, nil); err == nil {
			t.Errorf("CompilePred(%s) should error", e)
		}
	}
}

func TestParams(t *testing.T) {
	r := fixture()
	p, err := CompilePred(EqE(C("name"), P("p1")), r, Params{"p1": "beta"})
	if err != nil {
		t.Fatal(err)
	}
	if got := collectMatches(t, r, p); !reflect.DeepEqual(got, []int32{1}) {
		t.Errorf("param pred matched %v", got)
	}
	ip, err := CompileInt(P("k"), r, Params{"k": 7})
	if err != nil {
		t.Fatal(err)
	}
	if ip(0) != 7 {
		t.Errorf("int param = %d", ip(0))
	}
	np, err := CompileNum(P("x"), r, Params{"x": 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if np(0) != 2.5 {
		t.Errorf("num param = %v", np(0))
	}
	if _, err := CompilePred(EqE(C("id"), P("missing")), r, nil); err == nil {
		t.Error("unbound parameter should error")
	}
}

func TestColumnsWalk(t *testing.T) {
	e := AndE(
		EqE(C("a"), I(1)),
		Or{L: LtE(Sqrt{E: C("b")}, F(2)), R: InStr{E: C("c"), Set: []string{"x"}}},
		GtE(Year{E: C("d")}, Month{E: C("e")}),
	)
	got := Columns(e)
	sort.Strings(got)
	want := []string{"a", "b", "c", "d", "e"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Columns = %v, want %v", got, want)
	}
}

func TestStringRendering(t *testing.T) {
	e := AndE(EqE(C("a"), I(1)), InStr{E: C("m"), Set: []string{"x", "y"}})
	want := "((a = 1) AND (m IN ('x', 'y')))"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := (Not{E: LtE(C("v"), F(1.5))}).String(); got != "(NOT (v < 1.5))" {
		t.Errorf("String = %q", got)
	}
	if got := (Param{Name: "p1"}).String(); got != ":p1" {
		t.Errorf("String = %q", got)
	}
}
