package expr

import (
	"fmt"
	"math"

	"smoke/internal/dates"
	"smoke/internal/storage"
)

// Params binds parameter names to values (int64, float64, or string) at
// compile time.
type Params map[string]any

// Pred is a compiled predicate over one relation.
type Pred func(rid int32) bool

// NumFn is a compiled numeric (float64) expression over one relation.
type NumFn func(rid int32) float64

// IntFn is a compiled integer expression over one relation.
type IntFn func(rid int32) int64

// StrFn is a compiled string expression over one relation.
type StrFn func(rid int32) string

// TypeOf infers the storage type an expression evaluates to against the given
// schema. Boolean-valued expressions report an error (they compile via
// CompilePred instead).
func TypeOf(e Expr, schema storage.Schema, params Params) (storage.Type, error) {
	switch n := e.(type) {
	case Col:
		c := schema.Col(n.Name)
		if c < 0 {
			return 0, fmt.Errorf("expr: unknown column %q", n.Name)
		}
		return schema[c].Type, nil
	case IntLit:
		return storage.TInt, nil
	case FloatLit:
		return storage.TFloat, nil
	case StrLit:
		return storage.TString, nil
	case Param:
		v, ok := params[n.Name]
		if !ok {
			return 0, fmt.Errorf("expr: unbound parameter :%s", n.Name)
		}
		switch v.(type) {
		case int64, int:
			return storage.TInt, nil
		case float64:
			return storage.TFloat, nil
		case string:
			return storage.TString, nil
		default:
			return 0, fmt.Errorf("expr: parameter :%s has unsupported type %T", n.Name, v)
		}
	case Arith:
		lt, err := TypeOf(n.L, schema, params)
		if err != nil {
			return 0, err
		}
		rt, err := TypeOf(n.R, schema, params)
		if err != nil {
			return 0, err
		}
		if lt == storage.TString || rt == storage.TString {
			return 0, fmt.Errorf("expr: arithmetic over strings in %s", e)
		}
		if lt == storage.TFloat || rt == storage.TFloat || n.Op == Div {
			return storage.TFloat, nil
		}
		return storage.TInt, nil
	case Sqrt:
		if _, err := TypeOf(n.E, schema, params); err != nil {
			return 0, err
		}
		return storage.TFloat, nil
	case Year, Month:
		var inner Expr
		if y, ok := n.(Year); ok {
			inner = y.E
		} else {
			inner = n.(Month).E
		}
		t, err := TypeOf(inner, schema, params)
		if err != nil {
			return 0, err
		}
		if t != storage.TInt {
			return 0, fmt.Errorf("expr: date extraction over non-date expression %s", e)
		}
		return storage.TInt, nil
	case Cmp, And, Or, Not, InStr:
		return 0, fmt.Errorf("expr: %s is boolean-valued; compile it as a predicate", e)
	}
	return 0, fmt.Errorf("expr: unsupported node %T", e)
}

// Columns returns the column names referenced by an expression.
func Columns(e Expr) []string {
	var out []string
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case Col:
			out = append(out, n.Name)
		case Cmp:
			walk(n.L)
			walk(n.R)
		case And:
			walk(n.L)
			walk(n.R)
		case Or:
			walk(n.L)
			walk(n.R)
		case Not:
			walk(n.E)
		case InStr:
			walk(n.E)
		case Arith:
			walk(n.L)
			walk(n.R)
		case Sqrt:
			walk(n.E)
		case Year:
			walk(n.E)
		case Month:
			walk(n.E)
		}
	}
	walk(e)
	return out
}

func paramValue(p Param, params Params) (any, error) {
	v, ok := params[p.Name]
	if !ok {
		return nil, fmt.Errorf("expr: unbound parameter :%s", p.Name)
	}
	if i, ok := v.(int); ok {
		return int64(i), nil
	}
	return v, nil
}

// CompileInt compiles an integer-typed expression against a relation.
func CompileInt(e Expr, rel *storage.Relation, params Params) (IntFn, error) {
	t, err := TypeOf(e, rel.Schema, params)
	if err != nil {
		return nil, err
	}
	if t != storage.TInt {
		return nil, fmt.Errorf("expr: %s has type %s, want INT", e, t)
	}
	switch n := e.(type) {
	case Col:
		col := rel.Cols[rel.Schema.MustCol(n.Name)].Ints
		return func(rid int32) int64 { return col[rid] }, nil
	case IntLit:
		v := n.V
		return func(int32) int64 { return v }, nil
	case Param:
		pv, err := paramValue(n, params)
		if err != nil {
			return nil, err
		}
		v := pv.(int64)
		return func(int32) int64 { return v }, nil
	case Arith:
		l, err := CompileInt(n.L, rel, params)
		if err != nil {
			return nil, err
		}
		r, err := CompileInt(n.R, rel, params)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case Add:
			return func(rid int32) int64 { return l(rid) + r(rid) }, nil
		case Sub:
			return func(rid int32) int64 { return l(rid) - r(rid) }, nil
		case Mul:
			return func(rid int32) int64 { return l(rid) * r(rid) }, nil
		}
		return nil, fmt.Errorf("expr: integer division in %s should compile as NumFn", e)
	case Year:
		inner, err := CompileInt(n.E, rel, params)
		if err != nil {
			return nil, err
		}
		return func(rid int32) int64 { return dates.Year(inner(rid)) }, nil
	case Month:
		inner, err := CompileInt(n.E, rel, params)
		if err != nil {
			return nil, err
		}
		return func(rid int32) int64 { return dates.Month(inner(rid)) }, nil
	}
	return nil, fmt.Errorf("expr: cannot compile %s as INT", e)
}

// CompileNum compiles a numeric expression to float64, promoting integer
// sub-expressions.
func CompileNum(e Expr, rel *storage.Relation, params Params) (NumFn, error) {
	t, err := TypeOf(e, rel.Schema, params)
	if err != nil {
		return nil, err
	}
	switch t {
	case storage.TString:
		return nil, fmt.Errorf("expr: %s is a string expression", e)
	case storage.TInt:
		f, err := CompileInt(e, rel, params)
		if err != nil {
			return nil, err
		}
		return func(rid int32) float64 { return float64(f(rid)) }, nil
	}
	switch n := e.(type) {
	case Col:
		col := rel.Cols[rel.Schema.MustCol(n.Name)].Floats
		return func(rid int32) float64 { return col[rid] }, nil
	case FloatLit:
		v := n.V
		return func(int32) float64 { return v }, nil
	case Param:
		pv, err := paramValue(n, params)
		if err != nil {
			return nil, err
		}
		v := pv.(float64)
		return func(int32) float64 { return v }, nil
	case Arith:
		l, err := CompileNum(n.L, rel, params)
		if err != nil {
			return nil, err
		}
		r, err := CompileNum(n.R, rel, params)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case Add:
			return func(rid int32) float64 { return l(rid) + r(rid) }, nil
		case Sub:
			return func(rid int32) float64 { return l(rid) - r(rid) }, nil
		case Mul:
			return func(rid int32) float64 { return l(rid) * r(rid) }, nil
		case Div:
			return func(rid int32) float64 { return l(rid) / r(rid) }, nil
		}
	case Sqrt:
		inner, err := CompileNum(n.E, rel, params)
		if err != nil {
			return nil, err
		}
		return func(rid int32) float64 { return math.Sqrt(inner(rid)) }, nil
	}
	return nil, fmt.Errorf("expr: cannot compile %s as FLOAT", e)
}

// CompileStr compiles a string-typed expression against a relation.
func CompileStr(e Expr, rel *storage.Relation, params Params) (StrFn, error) {
	t, err := TypeOf(e, rel.Schema, params)
	if err != nil {
		return nil, err
	}
	if t != storage.TString {
		return nil, fmt.Errorf("expr: %s has type %s, want STRING", e, t)
	}
	switch n := e.(type) {
	case Col:
		col := rel.Cols[rel.Schema.MustCol(n.Name)].Strs
		return func(rid int32) string { return col[rid] }, nil
	case StrLit:
		v := n.V
		return func(int32) string { return v }, nil
	case Param:
		pv, err := paramValue(n, params)
		if err != nil {
			return nil, err
		}
		v, ok := pv.(string)
		if !ok {
			return nil, fmt.Errorf("expr: parameter :%s bound to %T, want string", n.Name, pv)
		}
		return func(int32) string { return v }, nil
	}
	return nil, fmt.Errorf("expr: cannot compile %s as STRING", e)
}

// CompilePred compiles a boolean expression against a relation. The returned
// closure is the operator inner-loop predicate.
func CompilePred(e Expr, rel *storage.Relation, params Params) (Pred, error) {
	switch n := e.(type) {
	case Cmp:
		return compileCmp(n, rel, params)
	case And:
		l, err := CompilePred(n.L, rel, params)
		if err != nil {
			return nil, err
		}
		r, err := CompilePred(n.R, rel, params)
		if err != nil {
			return nil, err
		}
		return func(rid int32) bool { return l(rid) && r(rid) }, nil
	case Or:
		l, err := CompilePred(n.L, rel, params)
		if err != nil {
			return nil, err
		}
		r, err := CompilePred(n.R, rel, params)
		if err != nil {
			return nil, err
		}
		return func(rid int32) bool { return l(rid) || r(rid) }, nil
	case Not:
		inner, err := CompilePred(n.E, rel, params)
		if err != nil {
			return nil, err
		}
		return func(rid int32) bool { return !inner(rid) }, nil
	case InStr:
		f, err := CompileStr(n.E, rel, params)
		if err != nil {
			return nil, err
		}
		set := make(map[string]struct{}, len(n.Set))
		for _, s := range n.Set {
			set[s] = struct{}{}
		}
		return func(rid int32) bool { _, ok := set[f(rid)]; return ok }, nil
	}
	return nil, fmt.Errorf("expr: %s is not a predicate", e)
}

// constOf resolves literals and bound parameters to a constant value.
func constOf(e Expr, params Params) (any, bool) {
	switch n := e.(type) {
	case IntLit:
		return n.V, true
	case FloatLit:
		return n.V, true
	case StrLit:
		return n.V, true
	case Param:
		v, err := paramValue(n, params)
		if err != nil {
			return nil, false
		}
		return v, true
	}
	return nil, false
}

// compileColConstCmp fuses the ubiquitous "column <op> constant" comparison
// into a single closure over the column slice — the compiled-predicate shape
// the paper's engine emits. Returns nil when the pattern doesn't apply.
func compileColConstCmp(n Cmp, rel *storage.Relation, params Params) Pred {
	col, ok := n.L.(Col)
	if !ok {
		return nil
	}
	cv, ok := constOf(n.R, params)
	if !ok {
		return nil
	}
	c := rel.Schema.Col(col.Name)
	if c < 0 {
		return nil
	}
	switch rel.Schema[c].Type {
	case storage.TInt:
		k, ok := cv.(int64)
		if !ok {
			return nil
		}
		data := rel.Cols[c].Ints
		switch n.Op {
		case Eq:
			return func(rid int32) bool { return data[rid] == k }
		case Ne:
			return func(rid int32) bool { return data[rid] != k }
		case Lt:
			return func(rid int32) bool { return data[rid] < k }
		case Le:
			return func(rid int32) bool { return data[rid] <= k }
		case Gt:
			return func(rid int32) bool { return data[rid] > k }
		case Ge:
			return func(rid int32) bool { return data[rid] >= k }
		}
	case storage.TFloat:
		var k float64
		switch v := cv.(type) {
		case float64:
			k = v
		case int64:
			k = float64(v)
		default:
			return nil
		}
		data := rel.Cols[c].Floats
		switch n.Op {
		case Eq:
			return func(rid int32) bool { return data[rid] == k }
		case Ne:
			return func(rid int32) bool { return data[rid] != k }
		case Lt:
			return func(rid int32) bool { return data[rid] < k }
		case Le:
			return func(rid int32) bool { return data[rid] <= k }
		case Gt:
			return func(rid int32) bool { return data[rid] > k }
		case Ge:
			return func(rid int32) bool { return data[rid] >= k }
		}
	case storage.TString:
		k, ok := cv.(string)
		if !ok {
			return nil
		}
		data := rel.Cols[c].Strs
		switch n.Op {
		case Eq:
			return func(rid int32) bool { return data[rid] == k }
		case Ne:
			return func(rid int32) bool { return data[rid] != k }
		case Lt:
			return func(rid int32) bool { return data[rid] < k }
		case Le:
			return func(rid int32) bool { return data[rid] <= k }
		case Gt:
			return func(rid int32) bool { return data[rid] > k }
		case Ge:
			return func(rid int32) bool { return data[rid] >= k }
		}
	}
	return nil
}

func compileCmp(n Cmp, rel *storage.Relation, params Params) (Pred, error) {
	if p := compileColConstCmp(n, rel, params); p != nil {
		return p, nil
	}
	lt, err := TypeOf(n.L, rel.Schema, params)
	if err != nil {
		return nil, err
	}
	rt, err := TypeOf(n.R, rel.Schema, params)
	if err != nil {
		return nil, err
	}
	switch {
	case lt == storage.TString && rt == storage.TString:
		l, err := CompileStr(n.L, rel, params)
		if err != nil {
			return nil, err
		}
		r, err := CompileStr(n.R, rel, params)
		if err != nil {
			return nil, err
		}
		return strCmp(n.Op, l, r), nil
	case lt == storage.TString || rt == storage.TString:
		return nil, fmt.Errorf("expr: comparing string with non-string in %s", n)
	case lt == storage.TInt && rt == storage.TInt:
		l, err := CompileInt(n.L, rel, params)
		if err != nil {
			return nil, err
		}
		r, err := CompileInt(n.R, rel, params)
		if err != nil {
			return nil, err
		}
		return intCmp(n.Op, l, r), nil
	default:
		l, err := CompileNum(n.L, rel, params)
		if err != nil {
			return nil, err
		}
		r, err := CompileNum(n.R, rel, params)
		if err != nil {
			return nil, err
		}
		return numCmp(n.Op, l, r), nil
	}
}

func intCmp(op CmpOp, l, r IntFn) Pred {
	switch op {
	case Eq:
		return func(rid int32) bool { return l(rid) == r(rid) }
	case Ne:
		return func(rid int32) bool { return l(rid) != r(rid) }
	case Lt:
		return func(rid int32) bool { return l(rid) < r(rid) }
	case Le:
		return func(rid int32) bool { return l(rid) <= r(rid) }
	case Gt:
		return func(rid int32) bool { return l(rid) > r(rid) }
	default:
		return func(rid int32) bool { return l(rid) >= r(rid) }
	}
}

func numCmp(op CmpOp, l, r NumFn) Pred {
	switch op {
	case Eq:
		return func(rid int32) bool { return l(rid) == r(rid) }
	case Ne:
		return func(rid int32) bool { return l(rid) != r(rid) }
	case Lt:
		return func(rid int32) bool { return l(rid) < r(rid) }
	case Le:
		return func(rid int32) bool { return l(rid) <= r(rid) }
	case Gt:
		return func(rid int32) bool { return l(rid) > r(rid) }
	default:
		return func(rid int32) bool { return l(rid) >= r(rid) }
	}
}

func strCmp(op CmpOp, l, r StrFn) Pred {
	switch op {
	case Eq:
		return func(rid int32) bool { return l(rid) == r(rid) }
	case Ne:
		return func(rid int32) bool { return l(rid) != r(rid) }
	case Lt:
		return func(rid int32) bool { return l(rid) < r(rid) }
	case Le:
		return func(rid int32) bool { return l(rid) <= r(rid) }
	case Gt:
		return func(rid int32) bool { return l(rid) > r(rid) }
	default:
		return func(rid int32) bool { return l(rid) >= r(rid) }
	}
}
