// Package expr provides the engine's expression language: a small AST
// (column references, constants, parameters, comparisons, boolean
// connectives, arithmetic, sqrt, date extraction) compiled into specialized
// closures over a relation's column slices. Compilation happens once per
// (expression, relation) pair; the per-tuple path is a direct closure call
// with no boxing, reflection, or type switching — the Go analogue of the
// paper's compiled produce/consume loops (principle P1).
package expr

import (
	"fmt"
	"strings"
)

// CmpOp is a comparison operator.
type CmpOp uint8

const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// ArithOp is an arithmetic operator.
type ArithOp uint8

const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	}
	return "?"
}

// Expr is an expression tree node.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Col references a column by name.
type Col struct{ Name string }

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// FloatLit is a float literal.
type FloatLit struct{ V float64 }

// StrLit is a string literal.
type StrLit struct{ V string }

// Param is a named query parameter (the paper's :p1-style parameterized
// predicates). Parameters are bound at compile time via Params, so the
// per-tuple closure sees a constant.
type Param struct{ Name string }

// Cmp compares two expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// And is logical conjunction.
type And struct{ L, R Expr }

// Or is logical disjunction.
type Or struct{ L, R Expr }

// Not is logical negation.
type Not struct{ E Expr }

// InStr tests membership of a string expression in a literal set
// (e.g. l_shipmode IN ('MAIL','SHIP')).
type InStr struct {
	E   Expr
	Set []string
}

// Arith applies an arithmetic operator to two numeric expressions.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Sqrt is the square root of a numeric expression (used by the paper's
// group-by microbenchmark aggregate SUM(sqrt(v))).
type Sqrt struct{ E Expr }

// Year extracts the civil year from a date (int days-since-epoch) expression.
type Year struct{ E Expr }

// Month extracts the civil month from a date expression.
type Month struct{ E Expr }

func (Col) isExpr()      {}
func (IntLit) isExpr()   {}
func (FloatLit) isExpr() {}
func (StrLit) isExpr()   {}
func (Param) isExpr()    {}
func (Cmp) isExpr()      {}
func (And) isExpr()      {}
func (Or) isExpr()       {}
func (Not) isExpr()      {}
func (InStr) isExpr()    {}
func (Arith) isExpr()    {}
func (Sqrt) isExpr()     {}
func (Year) isExpr()     {}
func (Month) isExpr()    {}

func (e Col) String() string      { return e.Name }
func (e IntLit) String() string   { return fmt.Sprintf("%d", e.V) }
func (e FloatLit) String() string { return fmt.Sprintf("%g", e.V) }
func (e StrLit) String() string   { return fmt.Sprintf("'%s'", e.V) }
func (e Param) String() string    { return ":" + e.Name }
func (e Cmp) String() string      { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }
func (e And) String() string      { return fmt.Sprintf("(%s AND %s)", e.L, e.R) }
func (e Or) String() string       { return fmt.Sprintf("(%s OR %s)", e.L, e.R) }
func (e Not) String() string      { return fmt.Sprintf("(NOT %s)", e.E) }
func (e Arith) String() string    { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }
func (e Sqrt) String() string     { return fmt.Sprintf("sqrt(%s)", e.E) }
func (e Year) String() string     { return fmt.Sprintf("year(%s)", e.E) }
func (e Month) String() string    { return fmt.Sprintf("month(%s)", e.E) }

func (e InStr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s IN (", e.E)
	for i, s := range e.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "'%s'", s)
	}
	b.WriteString("))")
	return b.String()
}

// Convenience constructors keep query definitions in benches and tests
// readable.

// C references a column.
func C(name string) Col { return Col{Name: name} }

// I is an integer literal.
func I(v int64) IntLit { return IntLit{V: v} }

// F is a float literal.
func F(v float64) FloatLit { return FloatLit{V: v} }

// S is a string literal.
func S(v string) StrLit { return StrLit{V: v} }

// P is a named parameter.
func P(name string) Param { return Param{Name: name} }

// EqE builds an equality comparison.
func EqE(l, r Expr) Cmp { return Cmp{Op: Eq, L: l, R: r} }

// LtE builds a less-than comparison.
func LtE(l, r Expr) Cmp { return Cmp{Op: Lt, L: l, R: r} }

// GtE builds a greater-than comparison.
func GtE(l, r Expr) Cmp { return Cmp{Op: Gt, L: l, R: r} }

// LeE builds a less-or-equal comparison.
func LeE(l, r Expr) Cmp { return Cmp{Op: Le, L: l, R: r} }

// GeE builds a greater-or-equal comparison.
func GeE(l, r Expr) Cmp { return Cmp{Op: Ge, L: l, R: r} }

// AndE builds a conjunction of one or more expressions.
func AndE(es ...Expr) Expr {
	if len(es) == 0 {
		panic("expr: AndE needs at least one operand")
	}
	out := es[0]
	for _, e := range es[1:] {
		out = And{L: out, R: e}
	}
	return out
}

// MulE builds a multiplication.
func MulE(l, r Expr) Arith { return Arith{Op: Mul, L: l, R: r} }

// SubE builds a subtraction.
func SubE(l, r Expr) Arith { return Arith{Op: Sub, L: l, R: r} }

// AddE builds an addition.
func AddE(l, r Expr) Arith { return Arith{Op: Add, L: l, R: r} }
