package expr

import (
	"smoke/internal/scratch"
	"smoke/internal/storage"
)

// getWords / putWords recycle combine-scratch bitmaps through the shared
// size-classed pool (allocation-free nested AND/OR in steady state).
func getWords(n int) []uint64 { return scratch.Words(n) }
func putWords(b []uint64)     { scratch.PutWords(b) }

// Predicate bit-kernels: the vectorized form of CompilePred. A BitKernel
// evaluates a predicate over a contiguous rid range and writes the outcomes
// as a bitmap — bit (i - lo) of dst holds the predicate value of row i. The
// selection operator's two-pass kernel (ops.Select) runs a BitKernel over
// each morsel, popcounts the bitmap to allocate the output rid array exactly
// once, and then materializes set bits; the per-row closure call, the
// per-match branch, and the append-with-growth of the old scan loop all
// disappear from the hot path.
//
// Kernels compose over the bitmap: AND/OR of two predicates is a word-wise
// combine, NOT is a word-wise flip. Leaf kernels are branch-light — the
// comparison result converts to a bit with a flag-set instruction, not a
// branch, so selectivity does not cost branch mispredictions — and iterate
// 64 rows per output word over the raw column slice (bounds-check-eliminated
// by the range loop).
//
// CompileBitKernel returns nil for predicate shapes without a kernel
// (string comparisons, IN lists, arithmetic over expressions); callers fall
// back to PredKernel, which wraps the compiled row closure in the same
// two-pass bitmap contract.

// KernMode selects how a kernel's words combine into dst.
type KernMode uint8

const (
	// KernSet overwrites dst words (including zeroing bits past hi-lo in the
	// last word, so pooled scratch needs no clearing).
	KernSet KernMode = iota
	// KernAnd intersects into dst (dst &= words).
	KernAnd
	// KernOr unions into dst (dst |= words).
	KernOr
)

// BitKernel writes the predicate bitmap of rows [lo, hi) into dst under the
// given combine mode. dst must hold at least (hi-lo+63)/64 words.
type BitKernel func(lo, hi int32, dst []uint64, mode KernMode)

// b2u converts a comparison outcome to a bit without a branch (the compiler
// lowers this to a flag-set instruction).
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// applyWord folds one finished 64-row word into dst[w] under mode.
func applyWord(dst []uint64, w int, word uint64, mode KernMode) {
	switch mode {
	case KernSet:
		dst[w] = word
	case KernAnd:
		dst[w] &= word
	default:
		dst[w] |= word
	}
}

// PredKernel wraps a compiled row predicate in the bitmap contract: the
// generic fallback when no vectorized kernel applies. The closure still runs
// once per row, but the surrounding selection keeps its two-pass shape
// (exact allocation, no growth).
func PredKernel(p Pred) BitKernel {
	return func(lo, hi int32, dst []uint64, mode KernMode) {
		w := 0
		for base := lo; base < hi; base += 64 {
			end := base + 64
			if end > hi {
				end = hi
			}
			var word uint64
			for i := base; i < end; i++ {
				word |= b2u(p(i)) << uint(i-base)
			}
			applyWord(dst, w, word, mode)
			w++
		}
	}
}

// CompileBitKernel compiles a boolean expression to a vectorized bit-kernel,
// or returns nil when the expression has no kernel form. A nil result is not
// an error: the caller compiles the expression with CompilePred and wraps it
// in PredKernel instead.
func CompileBitKernel(e Expr, rel *storage.Relation, params Params) BitKernel {
	switch n := e.(type) {
	case Cmp:
		return compileCmpKernel(n, rel, params)
	case And:
		l := CompileBitKernel(n.L, rel, params)
		if l == nil {
			return nil
		}
		r := CompileBitKernel(n.R, rel, params)
		if r == nil {
			return nil
		}
		return combineKernel(l, r, KernAnd)
	case Or:
		l := CompileBitKernel(n.L, rel, params)
		if l == nil {
			return nil
		}
		r := CompileBitKernel(n.R, rel, params)
		if r == nil {
			return nil
		}
		return combineKernel(l, r, KernOr)
	case Not:
		inner := CompileBitKernel(n.E, rel, params)
		if inner == nil {
			return nil
		}
		// Word-flip rather than comparison negation: !(a < b) is not (a >= b)
		// under IEEE NaN, but flipping the computed bits is exact.
		return notKernel(inner)
	}
	return nil
}

// combineKernel merges two kernels under op (KernAnd or KernOr). In KernSet
// position the combine runs in place (l sets, r folds in); nested under
// another combine it evaluates into pooled scratch first.
func combineKernel(l, r BitKernel, op KernMode) BitKernel {
	return func(lo, hi int32, dst []uint64, mode KernMode) {
		if mode == KernSet {
			l(lo, hi, dst, KernSet)
			r(lo, hi, dst, op)
			return
		}
		words := int(hi-lo+63) / 64
		tmp := getWords(words)
		l(lo, hi, tmp, KernSet)
		r(lo, hi, tmp, op)
		if mode == KernAnd {
			for i := 0; i < words; i++ {
				dst[i] &= tmp[i]
			}
		} else {
			for i := 0; i < words; i++ {
				dst[i] |= tmp[i]
			}
		}
		putWords(tmp)
	}
}

// notKernel flips an inner kernel's bits, masking the tail of the last word
// so bits past hi-lo stay zero.
func notKernel(inner BitKernel) BitKernel {
	return func(lo, hi int32, dst []uint64, mode KernMode) {
		n := int(hi - lo)
		words := (n + 63) / 64
		if mode == KernSet {
			inner(lo, hi, dst, KernSet)
			for i := 0; i < words; i++ {
				dst[i] = ^dst[i]
			}
			maskTail(dst, n)
			return
		}
		tmp := getWords(words)
		inner(lo, hi, tmp, KernSet)
		for i := 0; i < words; i++ {
			tmp[i] = ^tmp[i]
		}
		maskTail(tmp, n)
		if mode == KernAnd {
			for i := 0; i < words; i++ {
				dst[i] &= tmp[i]
			}
		} else {
			for i := 0; i < words; i++ {
				dst[i] |= tmp[i]
			}
		}
		putWords(tmp)
	}
}

// maskTail zeroes bits n.. of the last word covering n bits.
func maskTail(words []uint64, n int) {
	if r := n % 64; r != 0 && n > 0 {
		words[(n-1)/64] &= (1 << uint(r)) - 1
	}
}

// compileCmpKernel recognizes the column-vs-constant comparison over int and
// float columns (the shape compileColConstCmp fuses for the row path) and
// emits its vectorized kernel.
func compileCmpKernel(n Cmp, rel *storage.Relation, params Params) BitKernel {
	col, ok := n.L.(Col)
	if !ok {
		return nil
	}
	cv, ok := constOf(n.R, params)
	if !ok {
		return nil
	}
	c := rel.Schema.Col(col.Name)
	if c < 0 {
		return nil
	}
	switch rel.Schema[c].Type {
	case storage.TInt:
		k, ok := cv.(int64)
		if !ok {
			return nil
		}
		return intColKernel(rel.Cols[c].Ints, k, n.Op)
	case storage.TFloat:
		var k float64
		switch v := cv.(type) {
		case float64:
			k = v
		case int64:
			k = float64(v)
		default:
			return nil
		}
		return floatColKernel(rel.Cols[c].Floats, k, n.Op)
	}
	return nil
}

// intColKernel is the branch-light comparison loop over an int column: 64
// rows per word, each comparison a flag-set folded into the word.
func intColKernel(data []int64, k int64, op CmpOp) BitKernel {
	return func(lo, hi int32, dst []uint64, mode KernMode) {
		w := 0
		for base := lo; base < hi; base += 64 {
			end := base + 64
			if end > hi {
				end = hi
			}
			seg := data[base:end]
			var word uint64
			switch op {
			case Eq:
				for j, v := range seg {
					word |= b2u(v == k) << uint(j)
				}
			case Ne:
				for j, v := range seg {
					word |= b2u(v != k) << uint(j)
				}
			case Lt:
				for j, v := range seg {
					word |= b2u(v < k) << uint(j)
				}
			case Le:
				for j, v := range seg {
					word |= b2u(v <= k) << uint(j)
				}
			case Gt:
				for j, v := range seg {
					word |= b2u(v > k) << uint(j)
				}
			default:
				for j, v := range seg {
					word |= b2u(v >= k) << uint(j)
				}
			}
			applyWord(dst, w, word, mode)
			w++
		}
	}
}

// floatColKernel is intColKernel over a float column.
func floatColKernel(data []float64, k float64, op CmpOp) BitKernel {
	return func(lo, hi int32, dst []uint64, mode KernMode) {
		w := 0
		for base := lo; base < hi; base += 64 {
			end := base + 64
			if end > hi {
				end = hi
			}
			seg := data[base:end]
			var word uint64
			switch op {
			case Eq:
				for j, v := range seg {
					word |= b2u(v == k) << uint(j)
				}
			case Ne:
				for j, v := range seg {
					word |= b2u(v != k) << uint(j)
				}
			case Lt:
				for j, v := range seg {
					word |= b2u(v < k) << uint(j)
				}
			case Le:
				for j, v := range seg {
					word |= b2u(v <= k) << uint(j)
				}
			case Gt:
				for j, v := range seg {
					word |= b2u(v > k) << uint(j)
				}
			default:
				for j, v := range seg {
					word |= b2u(v >= k) << uint(j)
				}
			}
			applyWord(dst, w, word, mode)
			w++
		}
	}
}
