// Package server is smoked's HTTP layer: a JSON API over the engine facade
// (internal/core) that serves concurrent clients from one shared DB. It
// exposes table ingest (CSV/JSON), SQL execution (including LINEAGE
// BACKWARD/FORWARD sources and EXPLAIN), and a session-scoped result
// registry — a client runs a base query once with capture, the server
// retains the Result under a name, and every subsequent interaction is a
// bound backward/forward trace against the retained capture. That is the
// paper's interactive loop (§2.1: capture once, trace per interaction) over
// the wire.
//
// Concurrency: request handlers run on Go's per-connection goroutines; query
// execution shares the DB's morsel worker pool, which schedules fairly
// across in-flight requests (internal/pool). A bounded admission gate caps
// concurrent executions and queue depth — beyond it clients get 429
// immediately. Retained captures are memory, so the session registry bounds
// them with LRU eviction and a TTL; with a disk store (Config.Store)
// eviction demotes results to mmap-backed segments and promotes them back
// on access, so only disk-budget pressure (or an explicit DELETE) makes a
// result answer 410 Gone and force the client to re-run its base query. A
// plan-fingerprint result cache short-circuits repeated identical queries
// (crossfilter re-brushing).
//
// Error mapping is deterministic: every engine error is a structured
// serr.E, and its Kind maps to the status code (Invalid→400, NotFound→404,
// Gone→410, Unsupported→422, Busy→429, Unavailable→503, anything
// else→500).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"smoke/internal/core"
	"smoke/internal/diskstore"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/serr"
	"smoke/internal/sql"
	"smoke/internal/storage"
)

// Config sizes a Server. Zero fields take the documented defaults.
type Config struct {
	// DB is the shared database (required). Open it with WithWorkers(n) to
	// run request queries morsel-parallel on a fair-shared pool.
	DB *core.DB
	// MaxInFlight caps concurrently executing requests (default
	// 2×GOMAXPROCS).
	MaxInFlight int
	// MaxQueued caps requests waiting for an execution slot (default
	// 4×MaxInFlight); beyond it requests fail fast with 429.
	MaxQueued int
	// SessionTTL evicts sessions idle longer than this (default 15m).
	SessionTTL time.Duration
	// MaxSessions bounds live sessions; LRU-evicted past it (default 64).
	MaxSessions int
	// MaxResultsPerSession bounds named results per session (default 32).
	MaxResultsPerSession int
	// MaxRetainedBytes bounds the summed MemBytes of retained results across
	// all sessions (default 512 MiB); the globally least-recently-used
	// result is evicted past it.
	MaxRetainedBytes int64
	// CacheEntries bounds the plan-fingerprint result cache (default 256;
	// 0 keeps the default, negative disables caching).
	CacheEntries int
	// CacheBytes bounds the summed Result.MemBytes pinned by the cache
	// (default 256 MiB) — the cache holds whole Results, so an entry count
	// alone would let distinct large queries pin unbounded memory.
	CacheBytes int64
	// Store is the optional disk tier (cmd/smoked -data-dir). With a store,
	// registry eviction demotes retained results to mmap-backed segments
	// instead of discarding them, ingested tables are written through, and
	// New recovers tables and demoted sessions from the store's manifest so
	// sessions survive a restart. Nil keeps the memory-only behavior.
	Store *diskstore.Store
	// MaxDiskBytes bounds the summed segment bytes of demoted results
	// (default 4 GiB when Store is set; negative disables the bound). Past
	// it the globally least-recently-used demoted result is deleted — the
	// terminal "gone" tier.
	MaxDiskBytes int64
	// Clock overrides time.Now (TTL tests).
	Clock func() time.Time
}

// Server handles the smoked HTTP API. Create with New; it implements
// http.Handler.
type Server struct {
	db       *core.DB
	store    *diskstore.Store // nil: memory-only retention
	gate     *gate
	sessions *registry
	cache    *resultCache
	mux      *http.ServeMux

	// Strategy observability (/healthz): traces answered by plan
	// re-execution, traces against hybrid-strategy results, and evicted
	// results rebuilt through the lazy retention tier instead of 410.
	lazyTraces    atomic.Uint64
	hybridTraces  atomic.Uint64
	lazyFallbacks atomic.Uint64
}

// New returns a Server over cfg.DB.
func New(cfg Config) *Server {
	if cfg.DB == nil {
		panic("server: Config.DB is required")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 4 * cfg.MaxInFlight
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = 15 * time.Minute
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	if cfg.MaxResultsPerSession <= 0 {
		cfg.MaxResultsPerSession = 32
	}
	if cfg.MaxRetainedBytes == 0 {
		cfg.MaxRetainedBytes = 512 << 20
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 256
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 256 << 20
	}
	if cfg.MaxDiskBytes == 0 {
		cfg.MaxDiskBytes = 4 << 30
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Store != nil {
		// Recover persisted tables before the registry builds its dormant
		// set: promoted results re-bind forward traces against these.
		for name, pk := range cfg.Store.Tables() {
			rel, err := cfg.Store.LoadTable(name)
			if err != nil {
				continue // unreadable segment: the table re-ingests
			}
			cfg.DB.Register(rel)
			if pk != "" {
				cfg.DB.Catalog().SetPrimaryKey(name, pk)
			}
		}
	}
	// Hand the registry a plain nil, not a typed-nil *diskstore.Store boxed
	// in the interface — the registry gates the disk tier on store != nil.
	var rs resultStore
	if cfg.Store != nil {
		rs = cfg.Store
	}
	s := &Server{
		db:    cfg.DB,
		store: cfg.Store,
		gate:  newGate(cfg.MaxInFlight, cfg.MaxQueued),
		sessions: newRegistry(cfg.DB, rs, cfg.Clock, cfg.SessionTTL, cfg.MaxSessions,
			cfg.MaxResultsPerSession, cfg.MaxRetainedBytes, cfg.MaxDiskBytes),
		mux: http.NewServeMux(),
	}
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries, cfg.CacheBytes)
	}
	s.routes()
	return s
}

// Close flushes retained session state to the disk tier (when one is
// configured), publishes the manifest, and stops the background flusher —
// the graceful-shutdown half of crash safety. Drain the HTTP listener first
// (http.Server.Shutdown); Close does not fence concurrent requests. It does
// not close the store itself: the owner that opened it closes it.
func (s *Server) Close() error {
	return s.sessions.close()
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/tables", s.handleListTables)
	s.mux.HandleFunc("GET /v1/tables/{name}", s.handleGetTable)
	s.mux.HandleFunc("POST /v1/tables/{name}", s.handleIngest)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/sessions", s.handleNewSession)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDropSession)
	s.mux.HandleFunc("POST /v1/sessions/{id}/results/{name}", s.handleRunResult)
	s.mux.HandleFunc("GET /v1/sessions/{id}/results/{name}", s.handleGetResult)
	s.mux.HandleFunc("POST /v1/sessions/{id}/results/{name}/trace", s.handleTrace)
}

// ServeHTTP dispatches with panic containment: a handler panic answers 500
// instead of killing the connection goroutine silently.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			writeError(w, serr.New(serr.Internal, "server: internal panic: %v", rec))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// errorJSON is the uniform error body.
type errorJSON struct {
	Error struct {
		Kind    string `json:"kind"`
		Message string `json:"message"`
		Pos     *int   `json:"pos,omitempty"` // byte offset into the SQL text
	} `json:"error"`
}

// statusOf maps a structured error kind to its HTTP status.
func statusOf(err error) int {
	switch serr.KindOf(err) {
	case serr.Invalid:
		return http.StatusBadRequest
	case serr.NotFound:
		return http.StatusNotFound
	case serr.Gone:
		return http.StatusGone
	case serr.Unsupported:
		return http.StatusUnprocessableEntity
	case serr.Busy:
		return http.StatusTooManyRequests
	case serr.Unavailable:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeError(w http.ResponseWriter, err error) {
	var body errorJSON
	body.Error.Kind = serr.KindOf(err).String()
	body.Error.Message = err.Error()
	if pos := serr.PosOf(err); pos >= 0 {
		body.Error.Pos = &pos
	}
	writeJSON(w, statusOf(err), body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// Body size caps. MaxBytesReader (not a bare LimitReader) enforces them: an
// over-limit body is a client error, never a silent truncation that could
// register a partial table with 200.
const (
	maxJSONBody   = 64 << 20
	maxIngestBody = 256 << 20
)

// decodeJSON decodes a request body with UseNumber (int64-exact numbers) and
// unknown-field tolerance.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody))
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		return serr.New(serr.Invalid, "server: bad request body: %v", err)
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.sessions.stats()
	body := map[string]any{
		"ok":             true,
		"tables":         len(s.db.Catalog().Names()),
		"sessions":       st.sessions,
		"results":        st.results,
		"retained_bytes": st.retainedBytes,
		"workers":        s.db.Workers(),
		"lazy_traces":    s.lazyTraces.Load(),
		"hybrid_traces":  s.hybridTraces.Load(),
		"lazy_fallbacks": s.lazyFallbacks.Load(),
	}
	if s.store != nil {
		body["demoted_results"] = st.demoted
		body["disk_bytes"] = st.diskBytes
		body["data_dir"] = s.store.Dir()
		body["flusher_queue_depth"] = st.queueDepth
		body["demotes"] = st.c.demotes
		body["promotes"] = st.c.promotes
		body["views"] = st.c.views
		body["insitu_traces"] = st.c.insituTraces
		body["write_behind"] = st.c.writeBehind
		body["flush_errors"] = st.c.flushErrors
		body["delete_errors"] = st.c.deleteErrors
		body["publish_errors"] = st.c.publishErrors
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleListTables(w http.ResponseWriter, r *http.Request) {
	type tbl struct {
		Name   string      `json:"name"`
		Rows   int         `json:"rows"`
		Schema []fieldJSON `json:"schema"`
	}
	var out []tbl
	for _, name := range s.db.Catalog().Names() {
		rel, err := s.db.Table(name)
		if err != nil {
			continue // raced a re-registration; skip
		}
		t := tbl{Name: name, Rows: rel.N}
		for _, f := range rel.Schema {
			t.Schema = append(t.Schema, fieldJSON{Name: f.Name, Type: typeName(f.Type)})
		}
		out = append(out, t)
	}
	writeJSON(w, http.StatusOK, map[string]any{"tables": out})
}

func (s *Server) handleGetTable(w http.ResponseWriter, r *http.Request) {
	rel, err := s.db.Table(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	var schema []fieldJSON
	for _, f := range rel.Schema {
		schema = append(schema, fieldJSON{Name: f.Name, Type: typeName(f.Type)})
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": rel.Name, "rows": rel.N, "schema": schema})
}

// handleIngest registers (or replaces) a table from a CSV or JSON body.
// CSV: header record + ?types=int,float,... (or sniffed); JSON: explicit
// schema + rows. ?pk=col (or the JSON "pk" field) declares the primary key.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == "" {
		writeError(w, serr.New(serr.Invalid, "server: table name is empty"))
		return
	}
	ct := r.Header.Get("Content-Type")
	pk := r.URL.Query().Get("pk")
	var (
		rel *storage.Relation
		err error
	)
	if strings.HasPrefix(ct, "text/csv") {
		rel, err = relationFromCSV(name, http.MaxBytesReader(w, r.Body, maxIngestBody), r.URL.Query().Get("types"))
	} else {
		var body tableJSON
		if err := decodeJSON(w, r, &body); err != nil {
			writeError(w, err)
			return
		}
		if body.PK != "" {
			pk = body.PK
		}
		rel, err = relationFromJSON(name, body)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	if pk != "" {
		if err := VerifyPK(rel, pk); err != nil {
			writeError(w, err)
			return
		}
	}
	if s.store != nil {
		// Write-through before registering: on a persist failure the catalog
		// and the manifest still agree (the old version, if any, stays live
		// in both), and the client knows to retry.
		if err := s.store.PutTable(rel, pk); err != nil {
			writeError(w, serr.New(serr.Internal, "server: persist table %q: %v", name, err))
			return
		}
	}
	s.db.Register(rel)
	if pk != "" {
		s.db.Catalog().SetPrimaryKey(name, pk)
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "rows": rel.N})
}

// queryRequest is the body of POST /v1/query and POST
// /v1/sessions/{id}/results/{name}.
type queryRequest struct {
	SQL string `json:"sql"`
	// Capture is "none", "inject", or "defer". /v1/query defaults to none;
	// retained results default to inject (a capture is the point of
	// retaining) unless Strategy is "lazy".
	Capture  string         `json:"capture,omitempty"`
	Compress bool           `json:"compress,omitempty"`
	Params   map[string]any `json:"params,omitempty"`
	// Strategy is "eager", "lazy", "hybrid", or "auto" (empty keeps the
	// capture-mode default). Lazy retains no indexes: traces re-execute the
	// stored plan. Conflicting capture/strategy combinations are 400s.
	Strategy string `json:"strategy,omitempty"`
}

func captureMode(s string, def ops.CaptureMode) (ops.CaptureMode, error) {
	switch strings.ToLower(s) {
	case "":
		return def, nil
	case "none":
		return ops.None, nil
	case "inject":
		return ops.Inject, nil
	case "defer":
		return ops.Defer, nil
	}
	return 0, serr.New(serr.Invalid, "server: unknown capture mode %q (want none, inject, or defer)", s)
}

// runSQL parses, compiles, and executes one statement with the
// plan-fingerprint cache in front. EXPLAIN statements render the optimizer
// trace instead of executing.
func (s *Server) runSQL(req queryRequest, defMode ops.CaptureMode) (*core.Result, resultJSON, error) {
	if strings.TrimSpace(req.SQL) == "" {
		return nil, resultJSON{}, serr.New(serr.Invalid, "server: request has no sql")
	}
	st, err := sql.Parse(req.SQL)
	if err != nil {
		return nil, resultJSON{}, err
	}
	if st.Explain {
		text, err := sql.ExplainStmt(s.db, st)
		if err != nil {
			return nil, resultJSON{}, err
		}
		return nil, resultJSON{Explain: text}, nil
	}
	strat, err := core.ParseStrategy(req.Strategy)
	if err != nil {
		return nil, resultJSON{}, err
	}
	if strat == core.StrategyLazy {
		// Lazy is capture-free by definition; an unset capture must not fall
		// back to a capturing default and trip the conflict validation.
		defMode = ops.None
	}
	mode, err := captureMode(req.Capture, defMode)
	if err != nil {
		return nil, resultJSON{}, err
	}
	params, err := paramsFromJSON(req.Params)
	if err != nil {
		return nil, resultJSON{}, err
	}
	q, err := sql.CompileStmt(s.db, st)
	if err != nil {
		return nil, resultJSON{}, err
	}
	opts := core.CaptureOptions{Mode: mode, Compress: req.Compress, Params: params, Strategy: strat}
	res, out, err := s.runCached(q, opts)
	if err != nil {
		return nil, resultJSON{}, err
	}
	if strat != core.StrategyDefault && res != nil {
		out.StrategyUsed = res.Strategy().String()
	}
	return res, out, nil
}

// runCached executes q through the fingerprint cache.
func (s *Server) runCached(q *core.Query, opts core.CaptureOptions) (*core.Result, resultJSON, error) {
	var key string
	if s.cache != nil {
		if fp, err := q.Fingerprint(); err == nil {
			key = cacheKey(fp, opts)
			if res, ok := s.cache.get(key); ok {
				out := renderRelation(res.Out)
				out.GroupCounts = res.GroupCounts
				out.Cached = true
				return res, out, nil
			}
		}
	}
	res, err := q.Run(opts)
	if err != nil {
		return nil, resultJSON{}, err
	}
	s.cache.put(key, res)
	out := renderRelation(res.Out)
	out.GroupCounts = res.GroupCounts
	return res, out, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.gate.enter(r.Context()); err != nil {
		writeError(w, err)
		return
	}
	defer s.gate.exit()
	_, out, err := s.runSQL(req, ops.None)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleNewSession(w http.ResponseWriter, r *http.Request) {
	sess := s.sessions.create()
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":          sess.id,
		"ttl_seconds": int(s.sessions.ttl / time.Second),
	})
}

func (s *Server) handleDropSession(w http.ResponseWriter, r *http.Request) {
	if err := s.sessions.drop(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleRunResult executes a statement and retains the Result under
// /v1/sessions/{id}/results/{name} for later bound traces.
func (s *Server) handleRunResult(w http.ResponseWriter, r *http.Request) {
	id, name := r.PathValue("id"), r.PathValue("name")
	var req queryRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	// Retention exists to serve later traces. Without a lazy-capable
	// strategy those need a capture, so an explicit capture:"none" would
	// only fail later — at trace time, as a confusing lineage error — and is
	// rejected up front as a structured 400. With strategy "lazy" (or
	// "auto", which may resolve to lazy) a capture-free retained result is
	// exactly the point: its traces re-execute the stored plan.
	strat, err := core.ParseStrategy(req.Strategy)
	if err != nil {
		writeError(w, err)
		return
	}
	lazyCapable := strat == core.StrategyLazy || strat == core.StrategyAuto
	defMode := ops.Inject
	if strat == core.StrategyLazy {
		defMode = ops.None
	}
	if mode, err := captureMode(req.Capture, defMode); err != nil {
		writeError(w, err)
		return
	} else if mode == ops.None && !lazyCapable {
		writeError(w, serr.New(serr.Invalid,
			"server: retained results need a capture; use \"inject\" or \"defer\" (or omit capture), or set \"strategy\":\"lazy\" for capture-free retention"))
		return
	}
	// Probe the session before paying for execution; put re-checks after
	// the run, covering a mid-query expiry.
	if err := s.sessions.touch(id); err != nil {
		writeError(w, err)
		return
	}
	if err := s.gate.enter(r.Context()); err != nil {
		writeError(w, err)
		return
	}
	defer s.gate.exit()
	res, out, err := s.runSQL(req, defMode)
	if err != nil {
		writeError(w, err)
		return
	}
	if res == nil {
		writeError(w, serr.New(serr.Invalid, "server: EXPLAIN statements cannot be retained"))
		return
	}
	if err := s.sessions.put(id, name, res); err != nil {
		writeError(w, err)
		return
	}
	// Remember the producing request: if every capture tier is later
	// evicted, a trace can rebuild the result capture-free (the lazy
	// retention tier) instead of answering 410.
	s.sessions.rememberSpec(id, name, req)
	out.Retained = name
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.sessions.get(r.PathValue("id"), r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, renderRelation(res.Out))
}

// traceRequest is the body of POST
// /v1/sessions/{id}/results/{name}/trace: a bound backward/forward trace of
// the retained result, optionally filtered and re-aggregated (the consuming
// query), optionally retained under a new name for further chained traces.
type traceRequest struct {
	// Direction is "backward" or "forward".
	Direction string `json:"direction"`
	// Table is the base relation to trace into (backward) or from (forward).
	Table string `json:"table"`
	// Rids seeds the trace with explicit rids (output rids for backward,
	// base rids for forward). Mutually exclusive with SeedWhere.
	Rids []int64 `json:"rids,omitempty"`
	// SeedWhere seeds the trace by predicate (SQL expression syntax) over
	// the result's output rows (backward) or the base rows (forward).
	SeedWhere string `json:"seed_where,omitempty"`
	// Where filters the traced rows during rid-list expansion.
	Where string `json:"where,omitempty"`
	// GroupBy + Aggs build a consuming aggregation over the traced rows;
	// empty GroupBy returns the traced rows themselves.
	GroupBy []string  `json:"group_by,omitempty"`
	Aggs    []aggJSON `json:"aggs,omitempty"`

	Capture  string         `json:"capture,omitempty"`
	Compress bool           `json:"compress,omitempty"`
	Params   map[string]any `json:"params,omitempty"`
	// Retain stores the trace result under this name in the same session
	// (consuming results are base queries for further traces, §2.1).
	Retain string `json:"retain,omitempty"`
	// Strategy forces the trace's answer path: "eager" requires the captured
	// index (400 when the result has none), "lazy" forces plan re-execution.
	// Empty or "auto" keeps the result's own routing; "hybrid" is a
	// capture-time split, not a per-trace path, and is a 400 here. The
	// response echoes the path taken in "strategy_used".
	Strategy string `json:"strategy,omitempty"`
}

type aggJSON struct {
	Fn   string `json:"fn"`            // count, sum, avg, min, max, count_distinct
	Arg  string `json:"arg,omitempty"` // SQL expression; empty for count
	Name string `json:"name,omitempty"`
}

func parseAggFn(s string) (ops.AggFn, error) {
	switch strings.ToLower(s) {
	case "count":
		return ops.Count, nil
	case "sum":
		return ops.Sum, nil
	case "avg":
		return ops.Avg, nil
	case "min":
		return ops.Min, nil
	case "max":
		return ops.Max, nil
	case "count_distinct":
		return ops.CountDistinct, nil
	}
	return 0, serr.New(serr.Invalid, "server: unknown aggregate %q", s)
}

// traceHintOf projects a trace request onto the registry's routing hint.
// Seeds pass through unvalidated: the registry's cost probe bounds-checks
// them itself (out-of-range falls back to promotion, where runTrace turns
// the bad seed into a 400), and nil seeds mean predicate-seeded.
func traceHintOf(req traceRequest) traceHint {
	h := traceHint{
		backward: strings.EqualFold(req.Direction, "backward"),
		table:    req.Table,
	}
	if req.Rids != nil {
		h.seeds = make([]lineage.Rid, len(req.Rids))
		for i, v := range req.Rids {
			h.seeds[i] = lineage.Rid(v)
		}
	}
	return h
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, name := r.PathValue("id"), r.PathValue("name")
	var req traceRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	res, err := s.sessions.getForTrace(id, name, traceHintOf(req))
	if err != nil && serr.KindOf(err) != serr.Gone {
		writeError(w, err)
		return
	}
	if gerr := s.gate.enter(r.Context()); gerr != nil {
		writeError(w, gerr)
		return
	}
	defer s.gate.exit()
	if res == nil {
		// Fourth retention tier: memory → disk → lazy → gone. The capture
		// was evicted end-to-end, but if the producing request is remembered
		// the result is re-derived capture-free and the trace answers via
		// the lazy path instead of 410.
		res, err = s.lazyRebuild(id, name, err)
		if err != nil {
			writeError(w, err)
			return
		}
	}

	out, err := s.runTrace(id, res, req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// lazyRebuild is the lazy retention tier: a result evicted from memory and
// disk is re-derived by re-running its remembered producing request
// capture-free (strategy lazy), then re-retained under the same name —
// clearing the tombstone, so subsequent traces find it again. goneErr (the
// original 410) is returned unchanged when no producing spec survives (the
// result was ingested before this server run, or the spec book was bounded
// away).
func (s *Server) lazyRebuild(id, name string, goneErr error) (*core.Result, error) {
	req, ok := s.sessions.spec(id, name)
	if !ok {
		return nil, goneErr
	}
	req.Strategy = "lazy"
	req.Capture = ""
	res, _, err := s.runSQL(req, ops.None)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, goneErr
	}
	if err := s.sessions.put(id, name, res); err != nil {
		return nil, err
	}
	s.lazyFallbacks.Add(1)
	return res, nil
}

// runTrace builds and executes the bound trace query described by req.
func (s *Server) runTrace(sessionID string, res *core.Result, req traceRequest) (resultJSON, error) {
	if req.Table == "" {
		return resultJSON{}, serr.New(serr.Invalid, "server: trace needs a table")
	}
	backward := false
	switch strings.ToLower(req.Direction) {
	case "backward":
		backward = true
	case "forward":
	default:
		return resultJSON{}, serr.New(serr.Invalid, "server: direction must be backward or forward, got %q", req.Direction)
	}
	if req.Rids != nil && req.SeedWhere != "" {
		return resultJSON{}, serr.New(serr.Invalid, "server: rids and seed_where are mutually exclusive")
	}

	// Validate explicit seeds against the addressed space so a bad seed is a
	// 400, not an index-out-of-range panic deep in a kernel.
	var rids []lineage.Rid
	if req.Rids != nil {
		limit := res.Out.N // backward seeds address the result's output rows
		space := "result output rows"
		if !backward {
			// Forward seeds address the capture-time base relation — not the
			// current catalog entry, which may have been re-ingested since.
			rel := res.BaseRelation(req.Table)
			if rel == nil {
				return resultJSON{}, serr.New(serr.NotFound,
					"server: result has no captured base relation %q", req.Table)
			}
			limit, space = rel.N, "base rows of "+req.Table
		}
		rids = make([]lineage.Rid, len(req.Rids))
		for i, v := range req.Rids {
			if v < 0 || v >= int64(limit) {
				return resultJSON{}, serr.New(serr.Invalid,
					"server: seed rid %d out of range [0,%d) for %s", v, limit, space)
			}
			rids[i] = lineage.Rid(v)
		}
	}

	forced, err := core.ParseStrategy(req.Strategy)
	if err != nil {
		return resultJSON{}, err
	}
	dir := core.TraceForward
	if backward {
		dir = core.TraceBackward
	}
	var seed core.Seed
	switch {
	case rids != nil:
		seed = core.Rids(rids...)
	case req.SeedWhere != "":
		pred, err := parseOptionalExpr(req.SeedWhere)
		if err != nil {
			return resultJSON{}, err
		}
		seed = core.Where(pred)
	}
	q := s.db.Query().Trace(res, dir, req.Table, seed)
	if forced != core.StrategyDefault {
		// TraceWith rejects "hybrid" (a capture-time split, not a trace
		// path) and forced-but-unavailable paths with structured Invalid.
		q = q.TraceWith(forced)
	}
	// The path that will answer: the result's own routing unless forced.
	path := res.TraceStrategy(req.Table, dir)
	if forced == core.StrategyEager || forced == core.StrategyLazy {
		path = forced
	}
	if req.Where != "" {
		pred, err := sql.ParseExpr(req.Where)
		if err != nil {
			return resultJSON{}, err
		}
		q = q.Where(pred)
	}
	if len(req.GroupBy) > 0 {
		q = q.GroupBy(req.GroupBy...)
	}
	for i, a := range req.Aggs {
		fn, err := parseAggFn(a.Fn)
		if err != nil {
			return resultJSON{}, err
		}
		var arg expr.Expr
		if a.Arg != "" {
			arg, err = sql.ParseScalarExpr(a.Arg)
			if err != nil {
				return resultJSON{}, err
			}
		}
		aname := a.Name
		if aname == "" {
			aname = fmt.Sprintf("%s_%d", fn, i)
		}
		q = q.Agg(fn, arg, aname)
	}

	defMode := ops.None
	if req.Retain != "" {
		defMode = ops.Inject // retained consuming results need a capture
	}
	mode, err := captureMode(req.Capture, defMode)
	if err != nil {
		return resultJSON{}, err
	}
	if req.Retain != "" && mode == ops.None {
		return resultJSON{}, serr.New(serr.Invalid,
			"server: retaining a trace result needs a capture; use \"inject\" or \"defer\" (or omit capture)")
	}
	params, err := paramsFromJSON(req.Params)
	if err != nil {
		return resultJSON{}, err
	}
	traced, out, err := s.runCached(q, core.CaptureOptions{Mode: mode, Compress: req.Compress, Params: params})
	if err != nil {
		return resultJSON{}, err
	}
	if path == core.StrategyLazy {
		s.lazyTraces.Add(1)
	}
	if res.Strategy() == core.StrategyHybrid {
		s.hybridTraces.Add(1)
	}
	if path == core.StrategyEager || path == core.StrategyLazy {
		out.StrategyUsed = path.String()
	}
	if req.Retain != "" {
		if err := s.sessions.put(sessionID, req.Retain, traced); err != nil {
			return resultJSON{}, err
		}
		out.Retained = req.Retain
	}
	return out, nil
}

// parseOptionalExpr parses a predicate string; empty means nil (trace all).
func parseOptionalExpr(src string) (expr.Expr, error) {
	if strings.TrimSpace(src) == "" {
		return nil, nil
	}
	return sql.ParseExpr(src)
}
