package server

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"smoke/internal/core"
	"smoke/internal/diskstore"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/serr"
	"smoke/internal/storage"
)

// blockingStore wedges every segment write on a channel: the flusher sits
// inside PutResultNoPublish until the test releases the gate. Everything
// else passes through to the wrapped store.
type blockingStore struct {
	resultStore
	gate chan struct{} // each put receives once; close releases all
}

func (b *blockingStore) PutResultNoPublish(sid, name string, r *diskstore.Result) (int64, error) {
	<-b.gate
	return b.resultStore.PutResultNoPublish(sid, name, r)
}

// faultStore fails segment writes on demand without touching the disk —
// the write-half of a crash: the result was accepted but never became
// durable.
type faultStore struct {
	resultStore
	mu   sync.Mutex
	fail bool
}

func (f *faultStore) setFail(v bool) {
	f.mu.Lock()
	f.fail = v
	f.mu.Unlock()
}

func (f *faultStore) PutResultNoPublish(sid, name string, r *diskstore.Result) (int64, error) {
	f.mu.Lock()
	fail := f.fail
	f.mu.Unlock()
	if fail {
		return 0, errors.New("injected segment write failure")
	}
	return f.resultStore.PutResultNoPublish(sid, name, r)
}

// tierDB opens a worker DB with one registered base relation: 4096 rows in
// 64 groups of 64 (d1), a second dimension (d2), and a value column.
func tierDB(t *testing.T) *core.DB {
	t.Helper()
	db := core.Open(core.WithWorkers(1))
	t.Cleanup(db.Close)
	const n = 4096
	rel := storage.NewRelation("interact", storage.Schema{
		{Name: "d1", Type: storage.TInt},
		{Name: "d2", Type: storage.TInt},
		{Name: "v", Type: storage.TFloat},
	}, n)
	for i := 0; i < n; i++ {
		rel.Cols[0].Ints[i] = int64(i % 64)
		rel.Cols[1].Ints[i] = int64(i % 7)
		rel.Cols[2].Floats[i] = float64(i) / 8
	}
	db.Register(rel)
	return db
}

// tierResult runs the standard captured group-by; each call returns a fresh
// Result over the same data, so traces across instances compare
// element-identically.
func tierResult(t *testing.T, db *core.DB) *core.Result {
	t.Helper()
	res, err := db.Query().From("interact", nil).GroupBy("d1").
		Agg(ops.Count, nil, "cnt").Agg(ops.Sum, expr.C("v"), "sv").
		Run(core.CaptureOptions{Mode: ops.Inject, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func openTierStore(t *testing.T, dir string) *diskstore.Store {
	t.Helper()
	store, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func mustPut(t *testing.T, r *registry, id, name string, res *core.Result) {
	t.Helper()
	if err := r.put(id, name, res); err != nil {
		t.Fatalf("put %s/%s: %v", id, name, err)
	}
}

func sameRidsT(t *testing.T, what string, got, want []lineage.Rid) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: rids differ:\n got %v\nwant %v", what, got, want)
	}
}

// A wedged segment write must not block serving: while the flusher sits
// inside PutResultNoPublish, puts and gets — including a get of the very
// result whose demotion is in flight — complete immediately, and a get
// during demoting cancels the drop (the landed write degrades to
// write-behind durability and the result stays resident).
func TestSlowSegmentWriteDoesNotBlockServing(t *testing.T) {
	db := tierDB(t)
	store := openTierStore(t, t.TempDir())
	t.Cleanup(func() { _ = store.Close() })
	bs := &blockingStore{resultStore: store, gate: make(chan struct{})}
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	reg := newRegistry(db, bs, clk.now, time.Hour, 64, 1, 512<<20, 4<<30)
	released := false
	release := func() {
		if !released {
			released = true
			close(bs.gate)
		}
	}
	t.Cleanup(func() { _ = reg.close() })
	t.Cleanup(release) // runs before reg.close: the close-flush must not wedge

	s1 := reg.create()
	resA := tierResult(t, db)
	mustPut(t, reg, s1.id, "a", resA) // write-behind job: flusher now wedged
	clk.advance(time.Second)
	resA2 := tierResult(t, db)
	mustPut(t, reg, s1.id, "a2", resA2) // cap 1: demotes "a" behind the wedge

	// The demotion is queued, not landed: the registry must keep serving.
	done := make(chan error, 1)
	go func() {
		s2 := reg.create()
		resB := tierResult(t, db)
		if err := reg.put(s2.id, "b", resB); err != nil {
			done <- err
			return
		}
		_, err := reg.get(s2.id, "b")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serving while flusher wedged: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("registry blocked behind a wedged segment write")
	}

	if st := reg.stats(); st.queueDepth == 0 {
		t.Fatal("expected pending flusher work while the gate is closed")
	}
	// The demoting result's memory copy still serves — same pointer, no I/O.
	clk.advance(time.Second)
	got, err := reg.get(s1.id, "a")
	if err != nil {
		t.Fatalf("get of demoting result: %v", err)
	}
	if got != resA {
		t.Fatal("get during demoting did not serve the resident copy")
	}

	release()
	reg.fl.drain()
	st := reg.stats()
	if st.queueDepth != 0 {
		t.Fatalf("queue depth %d after drain", st.queueDepth)
	}
	// The get above postdates the demotion: the drop is cancelled, the write
	// counts as write-behind, and "a" stays resident next to its disk copy.
	if st.c.writeBehind == 0 {
		t.Fatalf("touched-during-demoting result should land as write-behind; counters %+v", st.c)
	}
	reg.mu.Lock()
	_, resident := reg.sessions[s1.id].results["a"]
	_, demoted := reg.sessions[s1.id].demoted["a"]
	reg.mu.Unlock()
	if !resident || !demoted {
		t.Fatalf("after drain: resident=%v demoted=%v, want both (cancelled drop keeps it hot)", resident, demoted)
	}
}

// Trace routing against a demoted result: small explicit backward seeds
// answer in situ off the segment-backed view (no promotion, no memory
// charge); forward traces promote; the insituPromoteAfter-th repeat
// promotes; an out-of-range seed falls back to promotion instead of
// panicking.
func TestInSituTraceRouting(t *testing.T) {
	db := tierDB(t)
	store := openTierStore(t, t.TempDir())
	t.Cleanup(func() { _ = store.Close() })
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	reg := newRegistry(db, store, clk.now, time.Hour, 64, 1, 512<<20, 4<<30)
	t.Cleanup(func() { _ = reg.close() })

	s := reg.create()
	ref := tierResult(t, db)
	seed := []lineage.Rid{3}
	wantBW, err := ref.Backward("interact", seed)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, reg, s.id, "a", ref)
	clk.advance(time.Second)
	mustPut(t, reg, s.id, "b", tierResult(t, db)) // cap 1: demotes "a"
	reg.fl.drain()
	reg.mu.Lock()
	_, resident := reg.sessions[s.id].results["a"]
	reg.mu.Unlock()
	if resident {
		t.Fatal("demotion did not drop the memory copy")
	}

	// Small bound backward trace: in situ, element-identical, promotion-free.
	h := traceHint{backward: true, table: "interact", seeds: seed}
	view, err := reg.getForTrace(s.id, "a", h)
	if err != nil {
		t.Fatalf("in-situ trace resolve: %v", err)
	}
	if !view.IsView() {
		t.Fatal("small-seed trace should serve the segment-backed view")
	}
	gotBW, err := view.Backward("interact", seed)
	if err != nil {
		t.Fatal(err)
	}
	sameRidsT(t, "in-situ backward trace", gotBW, wantBW)
	st := reg.stats()
	if st.c.insituTraces != 1 || st.c.promotes != 0 || st.c.views != 1 {
		t.Fatalf("after one small trace: %+v, want 1 in-situ, 1 view, 0 promotes", st.c)
	}
	reg.mu.Lock()
	_, resident = reg.sessions[s.id].results["a"]
	reg.mu.Unlock()
	if resident {
		t.Fatal("in-situ trace must not promote into the memory tier")
	}

	// Repeated small traces amortize residency: the insituPromoteAfter-th
	// repeat promotes.
	for i := 0; i < insituPromoteAfter; i++ {
		if _, err := reg.getForTrace(s.id, "a", h); err != nil {
			t.Fatal(err)
		}
	}
	st = reg.stats()
	if st.c.promotes != 1 {
		t.Fatalf("repeat traces: promotes = %d, want 1 after %d hits; counters %+v",
			st.c.promotes, insituPromoteAfter, st.c)
	}
	if st.c.insituTraces != insituPromoteAfter {
		t.Fatalf("insituTraces = %d, want %d", st.c.insituTraces, insituPromoteAfter)
	}

	// Re-demote (disk copy is current: free drop), then check the
	// promote-routing fallbacks.
	clk.advance(time.Second)
	mustPut(t, reg, s.id, "c", tierResult(t, db))
	reg.fl.drain()
	fwd := traceHint{backward: false, table: "interact", seeds: []lineage.Rid{0}}
	res, err := reg.getForTrace(s.id, "a", fwd)
	if err != nil {
		t.Fatalf("forward trace resolve: %v", err)
	}
	got, err := res.Forward("interact", []lineage.Rid{0, 64, 128})
	if err != nil {
		t.Fatal(err)
	}
	wantFW, err := ref.Forward("interact", []lineage.Rid{0, 64, 128})
	if err != nil {
		t.Fatal(err)
	}
	sameRidsT(t, "promoted forward trace", got, wantFW)
	if st = reg.stats(); st.c.promotes != 2 {
		t.Fatalf("forward trace should promote: promotes = %d, want 2", st.c.promotes)
	}

	clk.advance(time.Second)
	mustPut(t, reg, s.id, "d", tierResult(t, db))
	reg.fl.drain()
	bad := traceHint{backward: true, table: "interact", seeds: []lineage.Rid{1 << 30}}
	if _, err := reg.getForTrace(s.id, "a", bad); err != nil {
		t.Fatalf("bad-seed resolve must fall back to promotion (the 400 comes later): %v", err)
	}
	if st = reg.stats(); st.c.promotes != 3 {
		t.Fatalf("out-of-range seed should promote: promotes = %d, want 3", st.c.promotes)
	}
}

// Crash mid-flush: result A's segment write landed, B's failed without
// touching the disk, and the process dies with no graceful flush. A restart
// over the same dir serves A's traces element-identically; B answers 404 —
// never a partial or corrupt recovery.
func TestCrashMidFlushRecovers(t *testing.T) {
	dir := t.TempDir()
	db := tierDB(t)
	store := openTierStore(t, dir)
	fs := &faultStore{resultStore: store}
	reg := newRegistry(db, fs, time.Now, time.Hour, 64, 32, 512<<20, 4<<30)

	s := reg.create()
	resA := tierResult(t, db)
	seeds := []lineage.Rid{0, 31, 63}
	wantBW, err := resA.Backward("interact", seeds)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, reg, s.id, "a", resA)
	reg.fl.drain() // write-behind: "a" is durable once the queue is empty

	fs.setFail(true)
	mustPut(t, reg, s.id, "b", tierResult(t, db)) // accepted; write will fail
	reg.fl.drain()
	if st := reg.stats(); st.c.flushErrors == 0 {
		t.Fatal("failed segment write not counted")
	}

	// Crash: no flush(), no manifest publish of anything after "a". Only the
	// flusher goroutine stops so the store can close cleanly.
	reg.fl.stop()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2 := openTierStore(t, dir)
	t.Cleanup(func() { _ = store2.Close() })
	db2 := core.Open()
	t.Cleanup(db2.Close)
	reg2 := newRegistry(db2, store2, time.Now, time.Hour, 64, 32, 512<<20, 4<<30)
	t.Cleanup(func() { _ = reg2.close() })

	got, err := reg2.get(s.id, "a")
	if err != nil {
		t.Fatalf("recover retained result after crash: %v", err)
	}
	gotBW, err := got.Backward("interact", seeds)
	if err != nil {
		t.Fatal(err)
	}
	sameRidsT(t, "post-crash backward trace", gotBW, wantBW)

	_, err = reg2.get(s.id, "b")
	if serr.KindOf(err) != serr.NotFound {
		t.Fatalf("never-durable result after crash: err = %v, want NotFound", err)
	}
}

// Concurrent retain/trace/demote/promote/drop churn over shared sessions
// with tiny budgets — run under -race, this is the interleaving proof for
// the registry/flusher state machine. Every trace that resolves must be
// element-identical to the reference.
func TestTierChurnConcurrent(t *testing.T) {
	db := tierDB(t)
	store := openTierStore(t, t.TempDir())
	t.Cleanup(func() { _ = store.Close() })
	// maxPerSession 2 and a ~3-result byte budget force constant demotion
	// churn underneath the trace traffic.
	ref := tierResult(t, db)
	budget := 3 * ref.MemBytes()
	reg := newRegistry(db, store, time.Now, time.Hour, 8, 2, budget, 4<<30)
	t.Cleanup(func() { _ = reg.close() })

	seeds := []lineage.Rid{5}
	wantBW, err := ref.Backward("interact", seeds)
	if err != nil {
		t.Fatal(err)
	}
	// A shared pool of identical-data results: puts from all workers, so the
	// registry also sees cache-shared retentions (one Result, many names).
	pool := make([]*core.Result, 8)
	for i := range pool {
		pool[i] = tierResult(t, db)
	}
	const nSess = 4
	var ids [nSess]string
	for i := range ids {
		ids[i] = reg.create().id
	}

	var (
		failMu  sync.Mutex
		failure error
	)
	fail := func(format string, args ...any) {
		failMu.Lock()
		if failure == nil {
			failure = fmt.Errorf(format, args...)
		}
		failMu.Unlock()
	}
	tolerable := func(err error) bool {
		switch serr.KindOf(err) {
		case serr.NotFound, serr.Gone:
			return true // raced a drop or an eviction: part of the churn
		}
		return false
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				id := ids[rng.Intn(nSess)]
				name := fmt.Sprintf("r%d", rng.Intn(3))
				switch rng.Intn(6) {
				case 0, 1:
					if err := reg.put(id, name, pool[rng.Intn(len(pool))]); err != nil && !tolerable(err) {
						fail("put %s/%s: %v", id, name, err)
					}
				case 2:
					if res, err := reg.get(id, name); err == nil {
						if got, err := res.Backward("interact", seeds); err != nil {
							fail("trace on promoted result: %v", err)
						} else if !reflect.DeepEqual(got, wantBW) {
							fail("promoted trace diverged: got %v want %v", got, wantBW)
						}
					} else if !tolerable(err) {
						fail("get %s/%s: %v", id, name, err)
					}
				case 3:
					h := traceHint{backward: true, table: "interact", seeds: seeds}
					if res, err := reg.getForTrace(id, name, h); err == nil {
						if got, err := res.Backward("interact", seeds); err != nil {
							fail("in-situ trace: %v", err)
						} else if !reflect.DeepEqual(got, wantBW) {
							fail("in-situ trace diverged: got %v want %v", got, wantBW)
						}
					} else if !tolerable(err) {
						fail("getForTrace %s/%s: %v", id, name, err)
					}
				case 4:
					_ = reg.stats()
				case 5:
					if rng.Intn(8) == 0 { // rare: drop + recreate a shared session
						if err := reg.drop(id); err != nil && !tolerable(err) {
							fail("drop %s: %v", id, err)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	failMu.Lock()
	defer failMu.Unlock()
	if failure != nil {
		t.Fatal(failure)
	}
	if err := reg.flush(); err != nil {
		t.Fatalf("flush after churn: %v", err)
	}
	if st := reg.stats(); st.queueDepth != 0 {
		t.Fatalf("queue depth %d after flush", st.queueDepth)
	}
}
