package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"smoke/internal/core"
	"smoke/internal/server"
	"smoke/internal/serverclient"
)

// Example shows the full client round-trip: start a server over a shared DB,
// ingest a table, run a base query retained in a session, then issue a bound
// backward trace against the retained capture — the interactive loop over
// the wire.
func Example() {
	db := core.Open(core.WithWorkers(2))
	defer db.Close()
	ts := httptest.NewServer(server.New(server.Config{DB: db}))
	defer ts.Close()

	ctx := context.Background()
	c := serverclient.New(ts.URL, ts.Client())

	// Ingest a table from rows.
	_ = c.CreateTable(ctx, "orders", []serverclient.Field{
		{Name: "region", Type: "string"},
		{Name: "amount", Type: "float"},
	}, [][]any{
		{"emea", 10.0}, {"apac", 20.0}, {"emea", 30.0},
	}, "")

	// Run the base query once, retained with live capture.
	sess, _ := c.NewSession(ctx)
	base, _ := sess.Run(ctx, "byregion", serverclient.QueryRequest{
		SQL: "SELECT region, SUM(amount) AS total FROM orders GROUP BY region",
	})
	fmt.Println("groups:", base.N)

	// Every interaction is a bound trace against the retained capture: here,
	// the base rows behind output group 0, re-aggregated.
	drill, _ := sess.Trace(ctx, "byregion", serverclient.TraceRequest{
		Direction: "backward", Table: "orders", Rids: []int64{0},
		GroupBy: []string{"region"},
		Aggs:    []serverclient.Agg{{Fn: "count", Name: "n"}},
	})
	fmt.Println("bar 0 is", drill.Rows[0][0], "built from", drill.Rows[0][1], "rows")
	// Output:
	// groups: 2
	// bar 0 is emea built from 2 rows
}
