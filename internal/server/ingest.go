package server

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
	"strings"

	"smoke/internal/serr"
	"smoke/internal/storage"
)

// fieldJSON is one schema field on the wire.
type fieldJSON struct {
	Name string `json:"name"`
	Type string `json:"type"` // "int" | "float" | "string"
}

// tableJSON is the JSON ingest body of POST /v1/tables/{name}: an explicit
// schema plus rows in schema order.
type tableJSON struct {
	Schema []fieldJSON `json:"schema"`
	Rows   [][]any     `json:"rows"`
	// PK optionally declares the primary-key column (enables the pk-fk join
	// specializations for later queries).
	PK string `json:"pk,omitempty"`
}

func parseType(s string) (storage.Type, error) {
	switch strings.ToLower(s) {
	case "int":
		return storage.TInt, nil
	case "float":
		return storage.TFloat, nil
	case "string":
		return storage.TString, nil
	}
	return 0, serr.New(serr.Invalid, "server: unknown column type %q (want int, float, or string)", s)
}

func typeName(t storage.Type) string {
	switch t {
	case storage.TInt:
		return "int"
	case storage.TFloat:
		return "float"
	case storage.TString:
		return "string"
	}
	return "?"
}

// relationFromJSON builds a relation from the JSON ingest body. JSON numbers
// arrive as json.Number (the handler decodes with UseNumber so int64 values
// survive beyond float64 precision).
func relationFromJSON(name string, body tableJSON) (*storage.Relation, error) {
	if len(body.Schema) == 0 {
		return nil, serr.New(serr.Invalid, "server: table body needs a non-empty schema")
	}
	schema := make(storage.Schema, len(body.Schema))
	for i, f := range body.Schema {
		if f.Name == "" {
			return nil, serr.New(serr.Invalid, "server: schema field %d has no name", i)
		}
		ty, err := parseType(f.Type)
		if err != nil {
			return nil, err
		}
		schema[i] = storage.Field{Name: f.Name, Type: ty}
	}
	rel := storage.NewRelation(name, schema, len(body.Rows))
	for i, row := range body.Rows {
		if len(row) != len(schema) {
			return nil, serr.New(serr.Invalid, "server: row %d has %d values for %d columns", i, len(row), len(schema))
		}
		for c, f := range schema {
			switch f.Type {
			case storage.TInt:
				v, err := jsonInt(row[c])
				if err != nil {
					return nil, serr.New(serr.Invalid, "server: row %d column %s: %v", i, f.Name, err)
				}
				rel.Cols[c].Ints[i] = v
			case storage.TFloat:
				v, err := jsonFloat(row[c])
				if err != nil {
					return nil, serr.New(serr.Invalid, "server: row %d column %s: %v", i, f.Name, err)
				}
				rel.Cols[c].Floats[i] = v
			case storage.TString:
				s, ok := row[c].(string)
				if !ok {
					return nil, serr.New(serr.Invalid, "server: row %d column %s: want string, got %T", i, f.Name, row[c])
				}
				rel.Cols[c].Strs[i] = s
			}
		}
	}
	return rel, nil
}

func jsonInt(v any) (int64, error) {
	switch n := v.(type) {
	case json.Number:
		return strconv.ParseInt(n.String(), 10, 64)
	case float64:
		return int64(n), nil
	}
	return 0, serr.New(serr.Invalid, "want integer, got %T", v)
}

func jsonFloat(v any) (float64, error) {
	switch n := v.(type) {
	case json.Number:
		return n.Float64()
	case float64:
		return n, nil
	}
	return 0, serr.New(serr.Invalid, "want number, got %T", v)
}

// relationFromCSV builds a relation from a CSV body: the first record is the
// header. Column types come from the types parameter ("int,float,string",
// one per column) or, when empty, are sniffed per column from the data (a
// column where every value parses as int is int; else float; else string).
func relationFromCSV(name string, r io.Reader, types string) (*storage.Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, serr.New(serr.Invalid, "server: bad csv: %v", err)
	}
	if len(records) == 0 {
		return nil, serr.New(serr.Invalid, "server: csv body needs a header record")
	}
	header, rows := records[0], records[1:]
	cols := len(header)

	schema := make(storage.Schema, cols)
	for c, h := range header {
		schema[c] = storage.Field{Name: strings.TrimSpace(h)}
		if schema[c].Name == "" {
			return nil, serr.New(serr.Invalid, "server: csv header column %d is empty", c)
		}
	}
	if types != "" {
		parts := strings.Split(types, ",")
		if len(parts) != cols {
			return nil, serr.New(serr.Invalid, "server: types lists %d types for %d columns", len(parts), cols)
		}
		for c, p := range parts {
			ty, err := parseType(strings.TrimSpace(p))
			if err != nil {
				return nil, err
			}
			schema[c].Type = ty
		}
	} else {
		for c := range schema {
			schema[c].Type = sniffCSVType(rows, c)
		}
	}

	rel := storage.NewRelation(name, schema, len(rows))
	for i, row := range rows {
		if len(row) != cols {
			return nil, serr.New(serr.Invalid, "server: csv row %d has %d fields for %d columns", i, len(row), cols)
		}
		for c, f := range schema {
			cell := strings.TrimSpace(row[c])
			switch f.Type {
			case storage.TInt:
				v, err := strconv.ParseInt(cell, 10, 64)
				if err != nil {
					return nil, serr.New(serr.Invalid, "server: csv row %d column %s: %q is not an int", i, f.Name, cell)
				}
				rel.Cols[c].Ints[i] = v
			case storage.TFloat:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, serr.New(serr.Invalid, "server: csv row %d column %s: %q is not a number", i, f.Name, cell)
				}
				rel.Cols[c].Floats[i] = v
			case storage.TString:
				rel.Cols[c].Strs[i] = cell
			}
		}
	}
	return rel, nil
}

// sniffCSVType infers a column type from its values: int if every value
// parses as int, else float if every value parses as a number, else string.
// A column with no rows defaults to string.
func sniffCSVType(rows [][]string, c int) storage.Type {
	if len(rows) == 0 {
		return storage.TString
	}
	isInt, isFloat := true, true
	for _, row := range rows {
		if c >= len(row) {
			return storage.TString
		}
		cell := strings.TrimSpace(row[c])
		if isInt {
			if _, err := strconv.ParseInt(cell, 10, 64); err != nil {
				isInt = false
			}
		}
		if !isInt && isFloat {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				isFloat = false
				break
			}
		}
	}
	switch {
	case isInt:
		return storage.TInt
	case isFloat:
		return storage.TFloat
	}
	return storage.TString
}

// relationJSON renders a relation as the wire result shape shared by every
// query/trace/result endpoint.
// ParseTableCSV builds a relation from a CSV ingest body (header record
// first; types as in POST /v1/tables). Exported for the shard coordinator
// (internal/shard), which parses an ingest body once and splits the rows by
// rid range before handing each shard its slice.
func ParseTableCSV(name string, r io.Reader, types string) (*storage.Relation, error) {
	return relationFromCSV(name, r, types)
}

// ParseTableJSON builds a relation from a JSON ingest body, returning the
// declared primary key ("" when absent). Exported for the shard coordinator.
func ParseTableJSON(name string, body []byte) (*storage.Relation, string, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	var tb tableJSON
	if err := dec.Decode(&tb); err != nil {
		return nil, "", serr.New(serr.Invalid, "server: bad request body: %v", err)
	}
	rel, err := relationFromJSON(name, tb)
	if err != nil {
		return nil, "", err
	}
	return rel, tb.PK, nil
}

// VerifyPK checks a client-declared primary key against the data before it
// is believed: the column must exist, be int-typed, and hold unique values.
// A declared pk short-circuits the optimizer's uniqueness check and sends
// joins down the one-match pk-fk specialization — a duplicate-keyed "pk"
// would silently drop join matches.
func VerifyPK(rel *storage.Relation, pk string) error {
	ci := rel.Schema.Col(pk)
	switch {
	case ci < 0:
		return serr.New(serr.Invalid, "server: pk column %q is not in the schema", pk)
	case rel.Schema[ci].Type != storage.TInt:
		return serr.New(serr.Invalid, "server: pk column %q must be an int column", pk)
	case !storage.IntColumnUnique(rel, pk):
		return serr.New(serr.Invalid, "server: pk column %q holds duplicate values", pk)
	}
	return nil
}

type resultJSON struct {
	Columns []string `json:"columns"`
	Types   []string `json:"types"`
	Rows    [][]any  `json:"rows"`
	N       int      `json:"row_count"`
	// GroupCounts is the input cardinality of each output group on group-by
	// results. The shard coordinator merges per-shard partial aggregates
	// through it (AVG reweighting needs the partial group sizes).
	GroupCounts []int64 `json:"group_counts,omitempty"`
	Cached      bool    `json:"cached,omitempty"`
	Explain     string  `json:"explain,omitempty"`
	// Retained echoes the name a result was stored under in the session.
	Retained string `json:"retained,omitempty"`
	// StrategyUsed echoes the lineage path that answered this request
	// ("eager", "lazy", "hybrid") when the request selected a strategy or a
	// trace was routed through a non-eager path.
	StrategyUsed string `json:"strategy_used,omitempty"`
}

func renderRelation(rel *storage.Relation) resultJSON {
	out := resultJSON{N: rel.N, Rows: make([][]any, rel.N)}
	for _, f := range rel.Schema {
		out.Columns = append(out.Columns, f.Name)
		out.Types = append(out.Types, typeName(f.Type))
	}
	for i := 0; i < rel.N; i++ {
		row := make([]any, len(rel.Schema))
		for c := range rel.Schema {
			row[c] = rel.Value(c, i)
		}
		out.Rows[i] = row
	}
	return out
}
