package server

import (
	"fmt"
	"sync"
	"time"

	"smoke/internal/core"
	"smoke/internal/serr"
)

// registry is the session-scoped result store: each session retains named
// executed results (base queries with live captures) so clients can issue
// bound backward/forward traces against them across requests — the paper's
// interactive loop, capture once then trace per interaction, over the wire.
//
// Captures are memory, so retention is bounded three ways and everything is
// reclaimable:
//
//   - TTL: a session idle longer than ttl is evicted wholesale (every
//     registry operation sweeps lazily; no background goroutine to leak).
//   - Session LRU: at most maxSessions sessions; creating one more evicts
//     the least-recently-used.
//   - Byte budget: retained results are charged their Result.MemBytes
//     (output relation + captured indexes); past maxBytes — or past
//     maxPerSession names in one session — the least-recently-used retained
//     result anywhere is evicted.
//
// Evicted names and session ids leave tombstones so a later reference
// answers 410 Gone ("re-run your base query") rather than 404 Not Found
// ("you never created this"), which is the contract interactive clients
// rebind on.
type registry struct {
	mu            sync.Mutex
	clock         func() time.Time
	ttl           time.Duration
	maxSessions   int
	maxPerSession int
	maxBytes      int64

	sessions map[string]*session
	retained int64 // bytes across all sessions, deduplicated by Result
	nextID   uint64

	// refs deduplicates byte charges: the fingerprint cache hands the same
	// *core.Result to every session that runs an identical query, and one
	// allocation retained N times must be charged (and freed) once, or the
	// budget would evict live results under imaginary pressure.
	refs map[*core.Result]*refEntry

	goneSessions map[string]struct{}
}

type refEntry struct {
	n     int
	bytes int64
}

type session struct {
	id      string
	last    time.Time
	results map[string]*retainedResult
	gone    map[string]struct{} // evicted result names → 410
}

type retainedResult struct {
	res  *core.Result
	last time.Time
}

// tombstoneCap bounds each tombstone set: past it the oldest information is
// discarded wholesale and an evicted name may answer 404 instead of 410 —
// a graceful degradation that keeps eviction bookkeeping O(1) in memory.
const tombstoneCap = 4096

func newRegistry(clock func() time.Time, ttl time.Duration, maxSessions, maxPerSession int, maxBytes int64) *registry {
	return &registry{
		clock: clock, ttl: ttl,
		maxSessions: maxSessions, maxPerSession: maxPerSession, maxBytes: maxBytes,
		sessions:     map[string]*session{},
		refs:         map[*core.Result]*refEntry{},
		goneSessions: map[string]struct{}{},
	}
}

// retainRefLocked charges res's bytes on its first retention and counts the
// reference.
func (r *registry) retainRefLocked(res *core.Result) {
	e := r.refs[res]
	if e == nil {
		e = &refEntry{bytes: res.MemBytes()}
		r.refs[res] = e
		r.retained += e.bytes
	}
	e.n++
}

// releaseRefLocked drops one reference and frees the charge with the last.
func (r *registry) releaseRefLocked(res *core.Result) {
	e := r.refs[res]
	if e == nil {
		return
	}
	e.n--
	if e.n <= 0 {
		delete(r.refs, res)
		r.retained -= e.bytes
	}
}

// create opens a new session, evicting the LRU session if the cap is hit.
func (r *registry) create() *session {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	r.sweepLocked(now)
	for len(r.sessions) >= r.maxSessions {
		r.evictLRUSessionLocked()
	}
	r.nextID++
	s := &session{
		id:      fmt.Sprintf("s%08x", r.nextID),
		last:    now,
		results: map[string]*retainedResult{},
		gone:    map[string]struct{}{},
	}
	r.sessions[s.id] = s
	return s
}

// drop deletes a session explicitly (DELETE /v1/sessions/{id}).
func (r *registry) drop(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(r.clock())
	s, ok := r.sessions[id]
	if !ok {
		return r.sessionMissingLocked(id)
	}
	r.removeSessionLocked(s)
	return nil
}

// put retains res under name in session id, evicting as needed to stay
// within the byte budget and per-session cap.
func (r *registry) put(id, name string, res *core.Result) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	r.sweepLocked(now)
	s, ok := r.sessions[id]
	if !ok {
		return r.sessionMissingLocked(id)
	}
	s.last = now
	if old, ok := s.results[name]; ok {
		r.releaseRefLocked(old.res)
		delete(s.results, name)
	}
	rr := &retainedResult{res: res, last: now}
	s.results[name] = rr
	delete(s.gone, name) // a re-created name is live again
	r.retainRefLocked(res)
	for len(s.results) > r.maxPerSession {
		if !r.evictLRUResultInLocked(s, rr) {
			break
		}
	}
	for r.maxBytes > 0 && r.retained > r.maxBytes {
		if !r.evictLRUResultLocked(rr) {
			break // only the just-inserted result remains; keep it
		}
	}
	return nil
}

// evictLRUResultInLocked removes the least-recently-used retained result
// within one session (the per-session name cap), never the just-inserted
// keep.
func (r *registry) evictLRUResultInLocked(s *session, keep *retainedResult) bool {
	var (
		lruName string
		lruRes  *retainedResult
	)
	for name, rr := range s.results {
		if rr == keep {
			continue
		}
		if lruRes == nil || rr.last.Before(lruRes.last) {
			lruName, lruRes = name, rr
		}
	}
	if lruRes == nil {
		return false
	}
	r.releaseRefLocked(lruRes.res)
	delete(s.results, lruName)
	r.tombstone(s.gone, lruName)
	return true
}

// touch verifies a session is alive (refreshing its TTL clock) without
// reading a result — handlers probe it before paying for query execution,
// so a dead session is rejected without burning gate and pool capacity.
func (r *registry) touch(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	r.sweepLocked(now)
	s, ok := r.sessions[id]
	if !ok {
		return r.sessionMissingLocked(id)
	}
	s.last = now
	return nil
}

// get returns the named retained result, refreshing both LRU clocks.
func (r *registry) get(id, name string) (*core.Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	r.sweepLocked(now)
	s, ok := r.sessions[id]
	if !ok {
		return nil, r.sessionMissingLocked(id)
	}
	s.last = now
	rr, ok := s.results[name]
	if !ok {
		if _, gone := s.gone[name]; gone {
			return nil, serr.New(serr.Gone,
				"server: result %q was evicted from session %s; re-run the base query", name, id)
		}
		return nil, serr.New(serr.NotFound, "server: session %s has no result %q", id, name)
	}
	rr.last = now
	return rr.res, nil
}

// stats reports live sessions, retained results, and retained bytes.
func (r *registry) stats() (sessions, results int, bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(r.clock())
	for _, s := range r.sessions {
		results += len(s.results)
	}
	return len(r.sessions), results, r.retained
}

// sessionMissingLocked distinguishes an expired/evicted session (410) from
// one that never existed (404).
func (r *registry) sessionMissingLocked(id string) error {
	if _, gone := r.goneSessions[id]; gone {
		return serr.New(serr.Gone, "server: session %s expired or was evicted; open a new session", id)
	}
	return serr.New(serr.NotFound, "server: unknown session %s", id)
}

// sweepLocked evicts every session idle past the TTL.
func (r *registry) sweepLocked(now time.Time) {
	if r.ttl <= 0 {
		return
	}
	for _, s := range r.sessions {
		if now.Sub(s.last) > r.ttl {
			r.removeSessionLocked(s)
		}
	}
}

// evictLRUSessionLocked removes the least-recently-used session.
func (r *registry) evictLRUSessionLocked() {
	var lru *session
	for _, s := range r.sessions {
		if lru == nil || s.last.Before(lru.last) {
			lru = s
		}
	}
	if lru != nil {
		r.removeSessionLocked(lru)
	}
}

// evictLRUResultLocked removes the least-recently-used retained result
// whose release actually frees memory (sole reference — evicting one of
// several references to a cache-shared Result would cost a client its name
// without freeing a byte), never the just-inserted keep. It reports whether
// anything was evicted; false also means the byte budget cannot shrink
// further by eviction.
func (r *registry) evictLRUResultLocked(keep *retainedResult) bool {
	var (
		lruSess *session
		lruName string
		lruRes  *retainedResult
	)
	for _, s := range r.sessions {
		for name, rr := range s.results {
			if rr == keep {
				continue
			}
			if e := r.refs[rr.res]; e != nil && e.n > 1 {
				continue // shared with other retentions: freeing this frees nothing
			}
			if lruRes == nil || rr.last.Before(lruRes.last) {
				lruSess, lruName, lruRes = s, name, rr
			}
		}
	}
	if lruRes == nil {
		return false
	}
	r.releaseRefLocked(lruRes.res)
	delete(lruSess.results, lruName)
	r.tombstone(lruSess.gone, lruName)
	return true
}

// removeSessionLocked drops a session and tombstones its id.
func (r *registry) removeSessionLocked(s *session) {
	for _, rr := range s.results {
		r.releaseRefLocked(rr.res)
	}
	delete(r.sessions, s.id)
	r.tombstone(r.goneSessions, s.id)
}

// tombstone records an evicted key, resetting the set wholesale at the cap
// (trading 410-vs-404 precision for bounded memory).
func (r *registry) tombstone(set map[string]struct{}, key string) {
	if len(set) >= tombstoneCap {
		for k := range set {
			delete(set, k)
		}
	}
	set[key] = struct{}{}
}
