package server

import (
	"fmt"
	"sync"
	"time"

	"smoke/internal/core"
	"smoke/internal/diskstore"
	"smoke/internal/serr"
)

// registry is the session-scoped result store: each session retains named
// executed results (base queries with live captures) so clients can issue
// bound backward/forward traces against them across requests — the paper's
// interactive loop, capture once then trace per interaction, over the wire.
//
// Retention is tiered: memory → disk → gone. In-memory captures are bounded
// three ways (TTL, session LRU, byte budget) exactly as before, but when a
// disk store is configured, crossing a bound *demotes* the result — its
// output relation and encoded lineage indexes spill to an mmap-friendly
// segment — instead of discarding it. A later reference promotes the result
// back: the segment is mapped and traces run in situ over the mapped chunk
// bytes. Only the disk budget's own LRU (or an explicit DELETE) moves a
// result to the terminal "gone" tier.
//
//   - TTL: a session idle longer than ttl is demoted wholesale and parked in
//     the dormant set (every registry operation sweeps lazily; no background
//     goroutine to leak). Dormant sessions cost disk, not memory, so the TTL
//     no longer applies to them; any reference revives the session.
//   - Session LRU: at most maxSessions live sessions; creating (or reviving)
//     one more demotes the least-recently-used.
//   - Byte budget: retained results are charged their Result.MemBytes
//     (output relation + captured indexes); past maxBytes — or past
//     maxPerSession names in one session — the least-recently-used retained
//     result anywhere is demoted.
//   - Disk budget: demoted results are charged their segment bytes; past
//     maxDiskBytes the least-recently-used demoted result anywhere is
//     deleted and tombstoned.
//
// Without a store every demotion degrades to the old behavior: straight to
// gone. Names and session ids in the gone tier leave tombstones so a later
// reference answers 410 Gone ("re-run your base query") rather than 404 Not
// Found ("you never created this"), which is the contract interactive
// clients rebind on.
//
// Store I/O (segment writes on demotion, mapping on promotion) runs under
// the registry mutex. That serializes spills against unrelated registry
// traffic — the deliberate v1 simplicity: demotion happens on eviction
// pressure and shutdown, not on the per-request hot path.
type registry struct {
	mu            sync.Mutex
	clock         func() time.Time
	ttl           time.Duration
	maxSessions   int
	maxPerSession int
	maxBytes      int64

	db           *core.DB
	store        *diskstore.Store // nil: no disk tier, evictions tombstone
	maxDiskBytes int64
	diskBytes    int64 // manifest bytes across all demoted results

	sessions map[string]*session // live (memory-tier) sessions
	dormant  map[string]*session // demoted-whole sessions, revived on access
	retained int64               // bytes across all sessions, deduplicated by Result
	nextID   uint64

	// refs deduplicates byte charges: the fingerprint cache hands the same
	// *core.Result to every session that runs an identical query, and one
	// allocation retained N times must be charged (and freed) once, or the
	// budget would evict live results under imaginary pressure.
	refs map[*core.Result]*refEntry

	goneSessions *tombstones
}

type refEntry struct {
	n     int
	bytes int64
}

type session struct {
	id      string
	last    time.Time
	results map[string]*retainedResult
	demoted map[string]*demotedResult // disk-tier copies, promoted on access
	gone    *tombstones               // evicted result names → 410
}

type retainedResult struct {
	res  *core.Result
	last time.Time
	// onDisk records that a current demoted copy exists under the same
	// name, so re-demoting this result drops memory without rewriting the
	// segment.
	onDisk bool
}

type demotedResult struct {
	bytes int64
	last  time.Time
}

// tombstoneCap bounds each tombstone set's memory. Eviction is generational:
// the set rotates in two half-cap generations, so the most recent cap/2
// evictions always answer 410 and only names at least cap/2 evictions old
// can degrade to 404. (The previous wholesale reset forgot *every* tombstone
// at the cap — one unlucky eviction flipped long-gone names back to 404.)
const tombstoneCap = 4096

// tombstones is a two-generation set: adds go to cur; when cur fills half
// the cap, it becomes old (dropping the previous old) and a fresh cur
// starts. Membership checks both generations, so a key survives at least
// cap/2 and at most cap subsequent adds.
type tombstones struct {
	cap      int
	cur, old map[string]struct{}
}

func newTombstones(cap int) *tombstones {
	return &tombstones{cap: cap, cur: map[string]struct{}{}}
}

func (t *tombstones) add(key string) {
	if len(t.cur) >= t.cap/2 {
		t.old = t.cur
		t.cur = map[string]struct{}{}
	}
	t.cur[key] = struct{}{}
}

func (t *tombstones) has(key string) bool {
	if _, ok := t.cur[key]; ok {
		return true
	}
	_, ok := t.old[key]
	return ok
}

func (t *tombstones) remove(key string) {
	delete(t.cur, key)
	delete(t.old, key)
}

func newRegistry(db *core.DB, store *diskstore.Store, clock func() time.Time, ttl time.Duration,
	maxSessions, maxPerSession int, maxBytes, maxDiskBytes int64) *registry {
	r := &registry{
		db: db, store: store, clock: clock, ttl: ttl,
		maxSessions: maxSessions, maxPerSession: maxPerSession,
		maxBytes: maxBytes, maxDiskBytes: maxDiskBytes,
		sessions:     map[string]*session{},
		dormant:      map[string]*session{},
		refs:         map[*core.Result]*refEntry{},
		goneSessions: newTombstones(tombstoneCap),
	}
	if store != nil {
		r.recoverLocked()
	}
	return r
}

// recoverLocked rebuilds the dormant set from the store's manifest: every
// published session comes back as a dormant session whose results are
// demoted entries, promoted lazily on first access. Runs at construction
// (before the registry is shared), so no lock is actually held.
func (r *registry) recoverLocked() {
	now := r.clock()
	for sid, results := range r.store.Sessions() {
		s := &session{
			id: sid, last: now,
			results: map[string]*retainedResult{},
			demoted: map[string]*demotedResult{},
			gone:    newTombstones(tombstoneCap),
		}
		for name, bytes := range results {
			s.demoted[name] = &demotedResult{bytes: bytes, last: now}
			r.diskBytes += bytes
		}
		r.dormant[sid] = s
		// Keep the id generator ahead of recovered ids even if the persisted
		// watermark lagged (it publishes lazily).
		var n uint64
		if _, err := fmt.Sscanf(sid, "s%x", &n); err == nil && n > r.nextID {
			r.nextID = n
		}
	}
	if wm := r.store.NextSessionID(); wm > r.nextID {
		r.nextID = wm
	}
}

// retainRefLocked charges res's bytes on its first retention and counts the
// reference.
func (r *registry) retainRefLocked(res *core.Result) {
	e := r.refs[res]
	if e == nil {
		e = &refEntry{bytes: res.MemBytes()}
		r.refs[res] = e
		r.retained += e.bytes
	}
	e.n++
}

// releaseRefLocked drops one reference and frees the charge with the last.
func (r *registry) releaseRefLocked(res *core.Result) {
	e := r.refs[res]
	if e == nil {
		return
	}
	e.n--
	if e.n <= 0 {
		delete(r.refs, res)
		r.retained -= e.bytes
	}
}

// create opens a new session, demoting the LRU session if the cap is hit.
func (r *registry) create() *session {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	r.sweepLocked(now)
	for len(r.sessions) >= r.maxSessions {
		if !r.demoteLRUSessionLocked(now) {
			break
		}
	}
	r.nextID++
	s := &session{
		id:      fmt.Sprintf("s%08x", r.nextID),
		last:    now,
		results: map[string]*retainedResult{},
		demoted: map[string]*demotedResult{},
		gone:    newTombstones(tombstoneCap),
	}
	r.sessions[s.id] = s
	if r.store != nil {
		r.store.SetNextSessionID(r.nextID)
	}
	return s
}

// sessionLocked resolves a live or dormant session, reviving dormant ones
// (their demoted results stay demoted until individually promoted).
func (r *registry) sessionLocked(id string, now time.Time) (*session, error) {
	if s, ok := r.sessions[id]; ok {
		s.last = now
		return s, nil
	}
	if s, ok := r.dormant[id]; ok {
		delete(r.dormant, id)
		for len(r.sessions) >= r.maxSessions {
			if !r.demoteLRUSessionLocked(now) {
				break
			}
		}
		s.last = now
		r.sessions[id] = s
		return s, nil
	}
	return nil, r.sessionMissingLocked(id)
}

// drop deletes a session explicitly (DELETE /v1/sessions/{id}): memory and
// disk tiers both, tombstoning the id.
func (r *registry) drop(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(r.clock())
	s, ok := r.sessions[id]
	if !ok {
		s, ok = r.dormant[id]
	}
	if !ok {
		return r.sessionMissingLocked(id)
	}
	r.removeSessionLocked(s)
	return nil
}

// put retains res under name in session id, demoting as needed to stay
// within the byte budget and per-session cap.
func (r *registry) put(id, name string, res *core.Result) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	r.sweepLocked(now)
	s, err := r.sessionLocked(id, now)
	if err != nil {
		return err
	}
	if old, ok := s.results[name]; ok {
		r.releaseRefLocked(old.res)
		delete(s.results, name)
	}
	// A stale disk copy under this name describes the *previous* result;
	// the name now binds to a new one.
	r.deleteDemotedLocked(s, name)
	rr := &retainedResult{res: res, last: now}
	s.results[name] = rr
	s.gone.remove(name) // a re-created name is live again
	r.retainRefLocked(res)
	for len(s.results) > r.maxPerSession {
		if !r.demoteLRUResultInLocked(s, rr, now) {
			break
		}
	}
	for r.maxBytes > 0 && r.retained > r.maxBytes {
		if !r.demoteLRUResultLocked(rr, now) {
			break // only the just-inserted result remains; keep it
		}
	}
	return nil
}

// demoteLRUResultInLocked demotes the least-recently-used retained result
// within one session (the per-session name cap), never the just-inserted
// keep.
func (r *registry) demoteLRUResultInLocked(s *session, keep *retainedResult, now time.Time) bool {
	var (
		lruName string
		lruRes  *retainedResult
	)
	for name, rr := range s.results {
		if rr == keep {
			continue
		}
		if lruRes == nil || rr.last.Before(lruRes.last) {
			lruName, lruRes = name, rr
		}
	}
	if lruRes == nil {
		return false
	}
	r.demoteLocked(s, lruName, lruRes, now)
	return true
}

// touch verifies a session is alive (refreshing its TTL clock) without
// reading a result — handlers probe it before paying for query execution,
// so a dead session is rejected without burning gate and pool capacity.
func (r *registry) touch(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	r.sweepLocked(now)
	_, err := r.sessionLocked(id, now)
	return err
}

// get returns the named retained result, refreshing the LRU clocks.
// Demoted-only results are promoted: the segment maps in and the restored
// result serves bound traces in situ over the mapped bytes.
func (r *registry) get(id, name string) (*core.Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	r.sweepLocked(now)
	s, err := r.sessionLocked(id, now)
	if err != nil {
		return nil, err
	}
	if rr, ok := s.results[name]; ok {
		rr.last = now
		if dr, ok := s.demoted[name]; ok {
			dr.last = now
		}
		return rr.res, nil
	}
	if dr, ok := s.demoted[name]; ok {
		return r.promoteLocked(s, name, dr, now)
	}
	if s.gone.has(name) {
		return nil, serr.New(serr.Gone,
			"server: result %q was evicted from session %s; re-run the base query", name, id)
	}
	return nil, serr.New(serr.NotFound, "server: session %s has no result %q", id, name)
}

// promoteLocked maps a demoted result back into the memory tier. The disk
// copy stays current (re-demotion is then free), and the promotion charges
// the memory budget like any retention — possibly demoting colder results.
func (r *registry) promoteLocked(s *session, name string, dr *demotedResult, now time.Time) (*core.Result, error) {
	ld, err := r.store.LoadResult(s.id, name)
	if err != nil {
		// The segment is unreadable (corruption, manual deletion): the
		// result is unrecoverable — terminal tier.
		r.deleteDemotedLocked(s, name)
		s.gone.add(name)
		return nil, serr.New(serr.Gone,
			"server: result %q of session %s could not be recovered from disk (%v); re-run the base query",
			name, s.id, err)
	}
	res := core.RestoreResult(r.db, ld.Out, ld.GroupCounts, ld.Capture, ld.Bases)
	rr := &retainedResult{res: res, last: now, onDisk: true}
	s.results[name] = rr
	dr.last = now
	r.retainRefLocked(res)
	for r.maxBytes > 0 && r.retained > r.maxBytes {
		if !r.demoteLRUResultLocked(rr, now) {
			break
		}
	}
	return res, nil
}

// stats reports live/dormant sessions and both retention tiers.
func (r *registry) stats() (sessions, results, demoted int, bytes, diskBytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(r.clock())
	for _, s := range r.sessions {
		results += len(s.results)
		demoted += len(s.demoted)
	}
	sessions = len(r.sessions) + len(r.dormant)
	for _, s := range r.dormant {
		demoted += len(s.demoted)
	}
	return sessions, results, demoted, r.retained, r.diskBytes
}

// sessionMissingLocked distinguishes an expired/evicted session (410) from
// one that never existed (404).
func (r *registry) sessionMissingLocked(id string) error {
	if r.goneSessions.has(id) {
		return serr.New(serr.Gone, "server: session %s expired or was evicted; open a new session", id)
	}
	return serr.New(serr.NotFound, "server: unknown session %s", id)
}

// sweepLocked demotes every session idle past the TTL. Dormant sessions are
// exempt: they already cost disk, not memory.
func (r *registry) sweepLocked(now time.Time) {
	if r.ttl <= 0 {
		return
	}
	for _, s := range r.sessions {
		if now.Sub(s.last) > r.ttl {
			r.demoteSessionLocked(s, now)
		}
	}
}

// demoteLRUSessionLocked demotes the least-recently-used live session.
func (r *registry) demoteLRUSessionLocked(now time.Time) bool {
	var lru *session
	for _, s := range r.sessions {
		if lru == nil || s.last.Before(lru.last) {
			lru = s
		}
	}
	if lru == nil {
		return false
	}
	r.demoteSessionLocked(lru, now)
	return true
}

// demoteLRUResultLocked demotes the least-recently-used retained result
// whose release actually frees memory (sole reference — demoting one of
// several references to a cache-shared Result would cost a client its
// memory residency without freeing a byte), never the just-inserted keep.
// It reports whether anything was demoted; false also means the byte budget
// cannot shrink further.
func (r *registry) demoteLRUResultLocked(keep *retainedResult, now time.Time) bool {
	var (
		lruSess *session
		lruName string
		lruRes  *retainedResult
	)
	for _, s := range r.sessions {
		for name, rr := range s.results {
			if rr == keep {
				continue
			}
			if e := r.refs[rr.res]; e != nil && e.n > 1 {
				continue // shared with other retentions: freeing this frees nothing
			}
			if lruRes == nil || rr.last.Before(lruRes.last) {
				lruSess, lruName, lruRes = s, name, rr
			}
		}
	}
	if lruRes == nil {
		return false
	}
	r.demoteLocked(lruSess, lruName, lruRes, now)
	return true
}

// demoteLocked moves one retained result out of the memory tier: to disk
// when a store is configured (writing the segment on first demotion), else
// straight to gone. A failed spill degrades to gone rather than pinning
// memory the budgets already reclaimed.
func (r *registry) demoteLocked(s *session, name string, rr *retainedResult, now time.Time) {
	r.releaseRefLocked(rr.res)
	delete(s.results, name)
	if r.store == nil {
		s.gone.add(name)
		return
	}
	if rr.onDisk {
		if dr, ok := s.demoted[name]; ok {
			dr.last = now
			return
		}
	}
	bytes, err := r.store.PutResult(s.id, name, resultToDisk(rr.res))
	if err != nil {
		s.gone.add(name)
		return
	}
	s.demoted[name] = &demotedResult{bytes: bytes, last: now}
	r.diskBytes += bytes
	r.enforceDiskBudgetLocked()
}

// demoteSessionLocked demotes a whole live session: every in-memory result
// spills (or tombstones), and the session parks in the dormant set when
// anything of it survives on disk — otherwise it is gone.
func (r *registry) demoteSessionLocked(s *session, now time.Time) {
	for name, rr := range s.results {
		r.demoteLocked(s, name, rr, now)
	}
	delete(r.sessions, s.id)
	if r.store != nil && len(s.demoted) > 0 {
		r.dormant[s.id] = s
		return
	}
	r.goneSessions.add(s.id)
}

// removeSessionLocked drops a session from every tier and tombstones its id.
func (r *registry) removeSessionLocked(s *session) {
	for _, rr := range s.results {
		r.releaseRefLocked(rr.res)
	}
	s.results = map[string]*retainedResult{}
	for name, dr := range s.demoted {
		r.diskBytes -= dr.bytes
		delete(s.demoted, name)
	}
	if r.store != nil {
		_ = r.store.DeleteSession(s.id)
	}
	delete(r.sessions, s.id)
	delete(r.dormant, s.id)
	r.goneSessions.add(s.id)
}

// deleteDemotedLocked drops one demoted entry and its segment.
func (r *registry) deleteDemotedLocked(s *session, name string) {
	dr, ok := s.demoted[name]
	if !ok {
		return
	}
	r.diskBytes -= dr.bytes
	delete(s.demoted, name)
	if r.store != nil {
		_ = r.store.DeleteResult(s.id, name)
	}
}

// enforceDiskBudgetLocked deletes least-recently-used demoted results (the
// terminal gone tier) until the disk budget holds. Results currently
// promoted (memory copy live) are skipped — deleting their disk copy would
// only force a rewrite on the next demotion.
func (r *registry) enforceDiskBudgetLocked() {
	for r.maxDiskBytes > 0 && r.diskBytes > r.maxDiskBytes {
		var (
			lruSess *session
			lruName string
			lruDr   *demotedResult
		)
		scan := func(s *session) {
			for name, dr := range s.demoted {
				if _, live := s.results[name]; live {
					continue
				}
				if lruDr == nil || dr.last.Before(lruDr.last) {
					lruSess, lruName, lruDr = s, name, dr
				}
			}
		}
		for _, s := range r.sessions {
			scan(s)
		}
		for _, s := range r.dormant {
			scan(s)
		}
		if lruDr == nil {
			return
		}
		r.deleteDemotedLocked(lruSess, lruName)
		lruSess.gone.add(lruName)
		if len(lruSess.results) == 0 && len(lruSess.demoted) == 0 {
			if _, ok := r.dormant[lruSess.id]; ok {
				delete(r.dormant, lruSess.id)
				r.goneSessions.add(lruSess.id)
			}
		}
	}
}

// flush writes every not-yet-demoted retained result to the disk tier and
// publishes the manifest (graceful-shutdown path). Results stay resident —
// flush persists, it does not evict. The first error is returned after
// attempting everything.
func (r *registry) flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.store == nil {
		return nil
	}
	now := r.clock()
	var first error
	for _, s := range r.sessions {
		for name, rr := range s.results {
			if rr.onDisk {
				continue
			}
			bytes, err := r.store.PutResult(s.id, name, resultToDisk(rr.res))
			if err != nil {
				if first == nil {
					first = err
				}
				continue
			}
			rr.onDisk = true
			r.deleteDemotedEntryOnlyLocked(s, name)
			s.demoted[name] = &demotedResult{bytes: bytes, last: now}
			r.diskBytes += bytes
		}
	}
	r.store.SetNextSessionID(r.nextID)
	if err := r.store.Publish(); err != nil && first == nil {
		first = err
	}
	return first
}

// deleteDemotedEntryOnlyLocked forgets a demoted entry's bookkeeping without
// touching the store (the caller is about to overwrite the manifest entry).
func (r *registry) deleteDemotedEntryOnlyLocked(s *session, name string) {
	if dr, ok := s.demoted[name]; ok {
		r.diskBytes -= dr.bytes
		delete(s.demoted, name)
	}
}
