package server

import (
	"fmt"
	"log"
	"sync"
	"time"

	"smoke/internal/core"
	"smoke/internal/lineage"
	"smoke/internal/serr"
)

// registry is the session-scoped result store: each session retains named
// executed results (base queries with live captures) so clients can issue
// bound backward/forward traces against them across requests — the paper's
// interactive loop, capture once then trace per interaction, over the wire.
//
// Retention is tiered: memory → disk → gone. In-memory captures are bounded
// three ways (TTL, session LRU, byte budget), but when a disk store is
// configured, crossing a bound *demotes* the result — its output relation
// and encoded lineage indexes spill to an mmap-friendly segment — instead of
// discarding it. Only the disk budget's own LRU (or an explicit DELETE)
// moves a result to the terminal "gone" tier.
//
//   - TTL: a session idle longer than ttl is demoted wholesale and parked in
//     the dormant set (every registry operation sweeps lazily; the only
//     background goroutine is the flusher, owned and stopped by close).
//     Dormant sessions cost disk, not memory, so the TTL no longer applies
//     to them; any reference revives the session.
//   - Session LRU: at most maxSessions live sessions; creating (or reviving)
//     one more demotes the least-recently-used.
//   - Byte budget: retained results are charged their Result.MemBytes
//     (output relation + captured indexes); past maxBytes — or past
//     maxPerSession names in one session — the least-recently-used retained
//     result anywhere is demoted.
//   - Disk budget: demoted results are charged their segment bytes; past
//     maxDiskBytes the least-recently-used demoted result anywhere is
//     deleted and tombstoned.
//
// No request handler blocks on segment I/O. All disk writes run on the
// background flusher; the per-result state machine is
//
//	memory ──demote──▶ demoting ──write lands──▶ disk ──promote──▶ memory
//	   │                   │                        │
//	   └──── put() ────────┴─ get() serves the ─────┴─ small traces answer
//	        (write-behind     still-resident copy;     in situ off the mapped
//	         persist)         a drop/overwrite         segment, promotion-free
//	                          cancels the write
//
// demoting keeps the result resident and its bytes charged (minus a
// demoting credit so the budget loop does not over-evict); the memory copy
// is released only when the segment write lands. Promotion maps the segment
// off-lock into a segment-backed view first; whether a trace then promotes
// (re-retains) or answers straight off the view is a cost decision — see
// getForTrace. Without a store every demotion degrades to the old behavior:
// straight to gone.
//
// Names and session ids in the gone tier leave tombstones so a later
// reference answers 410 Gone ("re-run your base query") rather than 404 Not
// Found ("you never created this"), which is the contract interactive
// clients rebind on.
type registry struct {
	mu            sync.Mutex
	clock         func() time.Time
	ttl           time.Duration
	maxSessions   int
	maxPerSession int
	maxBytes      int64

	db           *core.DB
	store        resultStore // nil: no disk tier, evictions tombstone
	fl           *flusher    // nil iff store is nil
	maxDiskBytes int64
	diskBytes    int64 // manifest bytes across all demoted results

	sessions map[string]*session // live (memory-tier) sessions
	dormant  map[string]*session // demoted-whole sessions, revived on access
	retained int64               // bytes across all sessions, deduplicated by Result
	// demotingBytes is the slice of retained the in-flight demotions will
	// free; the byte-budget loop subtracts it so a slow segment write does
	// not trigger a second round of victims.
	demotingBytes int64
	nextID        uint64
	flushSeqGen   uint64 // put-job ticket generator

	// refs deduplicates byte charges: the fingerprint cache hands the same
	// *core.Result to every session that runs an identical query, and one
	// allocation retained N times must be charged (and freed) once, or the
	// budget would evict live results under imaginary pressure.
	refs map[*core.Result]*refEntry

	goneSessions *tombstones

	counters      tierCounters
	flushErr      error // first disk error since the last flush() reset
	diskErrLogged bool
}

// tierCounters observe the disk tier (exported through stats/healthz; the
// serve bench gates on them). All access holds registry.mu.
type tierCounters struct {
	demotes       uint64 // results that left the memory tier
	promotes      uint64 // demoted results re-retained in memory (full restore)
	views         uint64 // segment-backed trace views materialized
	insituTraces  uint64 // bound traces answered off a view, promotion-free
	writeBehind   uint64 // eager persists that completed with the result still resident
	flushErrors   uint64 // failed segment writes
	deleteErrors  uint64 // disk-tier deletes that could not be queued
	publishErrors uint64 // failed manifest publishes
}

// registryStats is the stats() snapshot.
type registryStats struct {
	sessions, results, demoted int
	retainedBytes, diskBytes   int64
	queueDepth                 int
	c                          tierCounters
}

// insituCostFactor and insituPromoteAfter tune in-situ-vs-promote routing:
// a backward trace whose seeds' encoded rid lists span more than
// 1/insituCostFactor of the full restore bytes promotes (a big trace pays
// the restore once and keeps the result hot), and the insituPromoteAfter-th
// in-situ trace since the last demotion promotes too (repeated small traces
// amortize residency).
const (
	insituCostFactor   = 16
	insituPromoteAfter = 8
)

type refEntry struct {
	n     int
	bytes int64
}

type session struct {
	id      string
	last    time.Time
	results map[string]*retainedResult
	demoted map[string]*demotedResult // disk-tier copies, promoted on access
	gone    *tombstones               // evicted result names → 410
	// specs remembers the request that produced each retained result, so a
	// capture evicted from every tier can be rebuilt capture-free (the lazy
	// retention tier) instead of answering 410. Lazily allocated; bounded;
	// not persisted — recovered sessions fall back to 410 semantics.
	specs map[string]queryRequest
}

type retainedResult struct {
	res  *core.Result
	last time.Time
	// onDisk records that a current demoted copy exists under the same
	// name, so re-demoting this result drops memory without rewriting the
	// segment.
	onDisk bool
	// flushSeq is the ticket of the pending flusher write for this result
	// (0: none). The flusher re-checks it before writing; cancelPendingLocked
	// bumps it stale so an overwrite or drop voids the queued write.
	flushSeq uint64
	// dropOnFlush marks a demotion in flight: when the pending write lands
	// the memory copy is released — unless the result was referenced after
	// demoteAt (a get during demoting keeps it hot; the completed write
	// still counts as write-behind durability).
	dropOnFlush bool
	demoteAt    time.Time
	// countedBytes is the demoting credit this entry holds against the byte
	// budget (0 when the Result is shared with other retentions — releasing
	// a shared ref frees nothing).
	countedBytes int64
}

type demotedResult struct {
	bytes int64
	last  time.Time
	// view is the lazily materialized segment-backed trace view. loading is
	// non-nil while one goroutine maps the segment off-lock; waiters block
	// on it and re-resolve.
	view    *core.Result
	loading chan struct{}
	// hits counts in-situ traces since the last (re-)demotion; at
	// insituPromoteAfter the next trace promotes instead.
	hits int
}

// tombstoneCap bounds each tombstone set's memory. Eviction is generational:
// the set rotates in two half-cap generations, so the most recent cap/2
// evictions always answer 410 and only names at least cap/2 evictions old
// can degrade to 404. (The previous wholesale reset forgot *every* tombstone
// at the cap — one unlucky eviction flipped long-gone names back to 404.)
const tombstoneCap = 4096

// tombstones is a two-generation set: adds go to cur; when cur fills half
// the cap, it becomes old (dropping the previous old) and a fresh cur
// starts. Membership checks both generations, so a key survives at least
// cap/2 and at most cap subsequent adds.
type tombstones struct {
	cap      int
	cur, old map[string]struct{}
}

func newTombstones(cap int) *tombstones {
	return &tombstones{cap: cap, cur: map[string]struct{}{}}
}

func (t *tombstones) add(key string) {
	if len(t.cur) >= t.cap/2 {
		t.old = t.cur
		t.cur = map[string]struct{}{}
	}
	t.cur[key] = struct{}{}
}

func (t *tombstones) has(key string) bool {
	if _, ok := t.cur[key]; ok {
		return true
	}
	_, ok := t.old[key]
	return ok
}

func (t *tombstones) remove(key string) {
	delete(t.cur, key)
	delete(t.old, key)
}

func newRegistry(db *core.DB, store resultStore, clock func() time.Time, ttl time.Duration,
	maxSessions, maxPerSession int, maxBytes, maxDiskBytes int64) *registry {
	r := &registry{
		db: db, store: store, clock: clock, ttl: ttl,
		maxSessions: maxSessions, maxPerSession: maxPerSession,
		maxBytes: maxBytes, maxDiskBytes: maxDiskBytes,
		sessions:     map[string]*session{},
		dormant:      map[string]*session{},
		refs:         map[*core.Result]*refEntry{},
		goneSessions: newTombstones(tombstoneCap),
	}
	if store != nil {
		r.recoverLocked()
		r.fl = newFlusher(store)
		r.fl.shouldFlush = r.shouldFlush
		r.fl.onPutDone = r.onPutDone
		r.fl.onPublish = r.onPublish
		r.fl.start()
	}
	return r
}

// close flushes retained state and stops the flusher goroutine. Safe to call
// more than once.
func (r *registry) close() error {
	err := r.flush()
	if r.fl != nil {
		r.fl.stop()
	}
	return err
}

// recoverLocked rebuilds the dormant set from the store's manifest: every
// published session comes back as a dormant session whose results are
// demoted entries, promoted lazily on first access. Runs at construction
// (before the registry is shared), so no lock is actually held.
func (r *registry) recoverLocked() {
	now := r.clock()
	for sid, results := range r.store.Sessions() {
		s := &session{
			id: sid, last: now,
			results: map[string]*retainedResult{},
			demoted: map[string]*demotedResult{},
			gone:    newTombstones(tombstoneCap),
		}
		for name, bytes := range results {
			s.demoted[name] = &demotedResult{bytes: bytes, last: now}
			r.diskBytes += bytes
		}
		r.dormant[sid] = s
		// Keep the id generator ahead of recovered ids even if the persisted
		// watermark lagged (it publishes lazily).
		var n uint64
		if _, err := fmt.Sscanf(sid, "s%x", &n); err == nil && n > r.nextID {
			r.nextID = n
		}
	}
	if wm := r.store.NextSessionID(); wm > r.nextID {
		r.nextID = wm
	}
}

// retainRefLocked charges res's bytes on its first retention and counts the
// reference.
func (r *registry) retainRefLocked(res *core.Result) {
	e := r.refs[res]
	if e == nil {
		e = &refEntry{bytes: res.MemBytes()}
		r.refs[res] = e
		r.retained += e.bytes
	}
	e.n++
}

// releaseRefLocked drops one reference and frees the charge with the last.
func (r *registry) releaseRefLocked(res *core.Result) {
	e := r.refs[res]
	if e == nil {
		return
	}
	e.n--
	if e.n <= 0 {
		delete(r.refs, res)
		r.retained -= e.bytes
	}
}

// create opens a new session, demoting the LRU session if the cap is hit.
func (r *registry) create() *session {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	r.sweepLocked(now)
	for len(r.sessions) >= r.maxSessions {
		if !r.demoteLRUSessionLocked(now) {
			break
		}
	}
	r.nextID++
	s := &session{
		id:      fmt.Sprintf("s%08x", r.nextID),
		last:    now,
		results: map[string]*retainedResult{},
		demoted: map[string]*demotedResult{},
		gone:    newTombstones(tombstoneCap),
	}
	r.sessions[s.id] = s
	if r.store != nil {
		r.store.SetNextSessionID(r.nextID)
	}
	return s
}

// sessionLocked resolves a live or dormant session, reviving dormant ones
// (their demoted results stay demoted until individually promoted).
func (r *registry) sessionLocked(id string, now time.Time) (*session, error) {
	if s, ok := r.sessions[id]; ok {
		s.last = now
		return s, nil
	}
	if s, ok := r.dormant[id]; ok {
		delete(r.dormant, id)
		for len(r.sessions) >= r.maxSessions {
			if !r.demoteLRUSessionLocked(now) {
				break
			}
		}
		s.last = now
		r.sessions[id] = s
		return s, nil
	}
	return nil, r.sessionMissingLocked(id)
}

// drop deletes a session explicitly (DELETE /v1/sessions/{id}): memory and
// disk tiers both, tombstoning the id.
func (r *registry) drop(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(r.clock())
	s, ok := r.sessions[id]
	if !ok {
		s, ok = r.dormant[id]
	}
	if !ok {
		return r.sessionMissingLocked(id)
	}
	r.removeSessionLocked(s)
	return nil
}

// put retains res under name in session id, demoting as needed to stay
// within the byte budget and per-session cap, and hands the result to the
// flusher eagerly (write-behind): once the queue drains, a hard crash loses
// nothing retained.
func (r *registry) put(id, name string, res *core.Result) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	r.sweepLocked(now)
	s, err := r.sessionLocked(id, now)
	if err != nil {
		return err
	}
	if old, ok := s.results[name]; ok {
		r.cancelPendingLocked(old)
		r.releaseRefLocked(old.res)
		delete(s.results, name)
	}
	// A stale disk copy under this name describes the *previous* result; the
	// name now binds to a new one. The queued delete runs before the new
	// put's write (FIFO), so the manifest converges on the new content.
	r.deleteDemotedLocked(s, name)
	rr := &retainedResult{res: res, last: now}
	s.results[name] = rr
	s.gone.remove(name) // a re-created name is live again
	r.retainRefLocked(res)
	// Write-behind: a saturated queue just skips — the result persists at
	// demotion or the next flush instead.
	r.enqueuePutLocked(s, name, rr, false)
	for len(s.results) > r.maxPerSession {
		if !r.demoteLRUResultInLocked(s, rr, now) {
			break
		}
	}
	for r.maxBytes > 0 && r.retained-r.demotingBytes > r.maxBytes {
		if !r.demoteLRUResultLocked(rr, now) {
			break // only the just-inserted result remains; keep it
		}
	}
	return nil
}

// rememberSpec records the request that produced result name. Best-effort:
// a missing session just skips (the lazy tier then narrows back to 410).
func (r *registry) rememberSpec(id, name string, req queryRequest) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	if !ok {
		return
	}
	if s.specs == nil {
		s.specs = map[string]queryRequest{}
	}
	// Bound the spec book well above the live-result cap (specs outlive the
	// results they describe — that is the point); evict arbitrarily past it.
	for cap := 4 * r.maxPerSession; len(s.specs) >= cap; {
		for k := range s.specs {
			delete(s.specs, k)
			break
		}
	}
	s.specs[name] = req
}

// spec returns the remembered producing request for result name, if any.
func (r *registry) spec(id, name string) (queryRequest, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	if !ok {
		s, ok = r.dormant[id]
	}
	if !ok {
		return queryRequest{}, false
	}
	req, ok := s.specs[name]
	return req, ok
}

// cancelPendingLocked voids a pending flusher write for rr (overwritten or
// dropped): the ticket mismatch makes the flusher skip the job, and the
// demoting byte credit rolls back.
func (r *registry) cancelPendingLocked(rr *retainedResult) {
	if rr.flushSeq == 0 {
		return
	}
	rr.flushSeq = 0
	rr.dropOnFlush = false
	r.demotingBytes -= rr.countedBytes
	rr.countedBytes = 0
}

// enqueuePutLocked hands rr to the flusher. drop demotes (the memory copy is
// released when the write lands); otherwise it is write-behind and the
// result stays resident. A write already pending is reused, escalating to
// drop when asked. Reports whether a write is pending on return.
func (r *registry) enqueuePutLocked(s *session, name string, rr *retainedResult, drop bool) bool {
	if r.fl == nil || rr.onDisk {
		return false
	}
	now := r.clock()
	if rr.flushSeq != 0 {
		if drop && !rr.dropOnFlush {
			rr.dropOnFlush = true
			rr.demoteAt = now
			r.chargeDemotingLocked(rr)
		}
		return true
	}
	r.flushSeqGen++
	if !r.fl.enqueue(flushJob{op: opPut, sid: s.id, name: name, res: rr.res, seq: r.flushSeqGen}, false) {
		return false
	}
	rr.flushSeq = r.flushSeqGen
	if drop {
		rr.dropOnFlush = true
		rr.demoteAt = now
		r.chargeDemotingLocked(rr)
	}
	return true
}

// chargeDemotingLocked credits the byte budget with what this demotion will
// free when its write lands (nothing when the Result is shared).
func (r *registry) chargeDemotingLocked(rr *retainedResult) {
	if rr.countedBytes != 0 {
		return
	}
	if e := r.refs[rr.res]; e != nil && e.n == 1 {
		rr.countedBytes = e.bytes
		r.demotingBytes += e.bytes
	}
}

// demoteLRUResultInLocked demotes the least-recently-used retained result
// within one session (the per-session name cap), never the just-inserted
// keep or a result already demoting.
func (r *registry) demoteLRUResultInLocked(s *session, keep *retainedResult, now time.Time) bool {
	var (
		lruName string
		lruRes  *retainedResult
	)
	for name, rr := range s.results {
		if rr == keep || rr.dropOnFlush {
			continue
		}
		if lruRes == nil || rr.last.Before(lruRes.last) {
			lruName, lruRes = name, rr
		}
	}
	if lruRes == nil {
		return false
	}
	return r.demoteLocked(s, lruName, lruRes, now)
}

// touch verifies a session is alive (refreshing its TTL clock) without
// reading a result — handlers probe it before paying for query execution,
// so a dead session is rejected without burning gate and pool capacity.
func (r *registry) touch(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	r.sweepLocked(now)
	_, err := r.sessionLocked(id, now)
	return err
}

// traceHint carries what the registry needs to route one bound trace:
// direction, the traced table, and the explicit seeds (nil when the trace is
// predicate-seeded).
type traceHint struct {
	backward bool
	table    string
	seeds    []lineage.Rid
}

// get returns the named retained result, refreshing the LRU clocks.
// Demoted-only results are promoted: the segment maps in off-lock and the
// restored result re-enters the memory tier.
func (r *registry) get(id, name string) (*core.Result, error) {
	return r.acquire(id, name, nil)
}

// getForTrace resolves a result for one bound trace. Memory-resident results
// serve directly. For a demoted result the registry first materializes the
// segment-backed view, then routes: backward traces with explicit seeds
// whose encoded rid lists span a small fraction of the restore bytes answer
// in situ off the view — promotion-free — while big traces, forward traces,
// predicate seeds, unknown costs, and the insituPromoteAfter-th repeat
// promote and stay hot.
func (r *registry) getForTrace(id, name string, h traceHint) (*core.Result, error) {
	return r.acquire(id, name, &h)
}

// acquire is the common resolution loop for get/getForTrace. It may release
// the registry lock to load a segment (ensureViewLocked) or to wait for a
// concurrent loader, then re-resolves from scratch — the world can change
// while unlocked.
func (r *registry) acquire(id, name string, h *traceHint) (*core.Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		now := r.clock()
		r.sweepLocked(now)
		s, err := r.sessionLocked(id, now)
		if err != nil {
			return nil, err
		}
		if rr, ok := s.results[name]; ok {
			// Memory hit — including results mid-demotion: the still-resident
			// copy serves, and the freshened LRU clock keeps it resident when
			// the pending write lands (the write then just bought durability).
			rr.last = now
			if dr, ok := s.demoted[name]; ok {
				dr.last = now
			}
			return rr.res, nil
		}
		dr, ok := s.demoted[name]
		if !ok {
			if s.gone.has(name) {
				return nil, serr.New(serr.Gone,
					"server: result %q was evicted from session %s; re-run the base query", name, id)
			}
			return nil, serr.New(serr.NotFound, "server: session %s has no result %q", id, name)
		}
		if dr.loading != nil {
			w := dr.loading
			r.mu.Unlock()
			<-w
			r.mu.Lock()
			continue
		}
		if dr.view == nil {
			if err := r.ensureViewLocked(s, name, dr); err != nil {
				return nil, err
			}
			continue
		}
		dr.last = now
		if h != nil && !r.shouldPromoteLocked(dr, *h) {
			dr.hits++
			r.counters.insituTraces++
			return dr.view, nil
		}
		return r.promoteLocked(s, name, dr, now), nil
	}
}

// ensureViewLocked materializes dr's segment-backed view, releasing the
// registry lock for the segment load so concurrent sessions keep moving.
// Exactly one goroutine loads; waiters block on dr.loading. On return the
// lock is held again. A load failure makes the result gone — the segment is
// unrecoverable — when the entry is still current.
func (r *registry) ensureViewLocked(s *session, name string, dr *demotedResult) error {
	w := make(chan struct{})
	dr.loading = w
	r.mu.Unlock()
	ld, err := r.store.LoadResult(s.id, name)
	var view *core.Result
	if err == nil {
		view = core.RestoreView(r.db, ld.Out, ld.GroupCounts, ld.Capture, ld.Bases)
	}
	r.mu.Lock()
	dr.loading = nil
	close(w)
	if err != nil {
		if cur, ok := s.demoted[name]; ok && cur == dr {
			r.deleteDemotedLocked(s, name)
			s.gone.add(name)
		}
		return serr.New(serr.Gone,
			"server: result %q of session %s could not be recovered from disk (%v); re-run the base query",
			name, s.id, err)
	}
	dr.view = view
	r.counters.views++
	return nil
}

// shouldPromoteLocked is the cost cutoff between answering a trace in situ
// off the view and promoting the whole result back into memory.
func (r *registry) shouldPromoteLocked(dr *demotedResult, h traceHint) bool {
	if dr.hits >= insituPromoteAfter {
		return true
	}
	if !h.backward || h.seeds == nil {
		return true // forward and predicate-seeded traces want the full result
	}
	trace, restore, ok := dr.view.TraceCost(h.table, h.seeds)
	if !ok {
		return true
	}
	return trace*insituCostFactor > restore
}

// promoteLocked installs the already-loaded view as a retained result. The
// disk copy stays current (re-demotion is then free), and the promotion
// charges the memory budget like any retention — possibly demoting colder
// results.
func (r *registry) promoteLocked(s *session, name string, dr *demotedResult, now time.Time) *core.Result {
	res := dr.view
	rr := &retainedResult{res: res, last: now, onDisk: true}
	s.results[name] = rr
	dr.last = now
	dr.hits = 0
	r.retainRefLocked(res)
	r.counters.promotes++
	for r.maxBytes > 0 && r.retained-r.demotingBytes > r.maxBytes {
		if !r.demoteLRUResultLocked(rr, now) {
			break
		}
	}
	return res
}

// stats snapshots both retention tiers and the disk-tier counters.
func (r *registry) stats() registryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(r.clock())
	st := registryStats{retainedBytes: r.retained, diskBytes: r.diskBytes, c: r.counters}
	st.sessions = len(r.sessions) + len(r.dormant)
	for _, set := range []map[string]*session{r.sessions, r.dormant} {
		for _, s := range set {
			st.results += len(s.results)
			st.demoted += len(s.demoted)
		}
	}
	if r.fl != nil {
		st.queueDepth = r.fl.queueDepth()
	}
	return st
}

// sessionMissingLocked distinguishes an expired/evicted session (410) from
// one that never existed (404).
func (r *registry) sessionMissingLocked(id string) error {
	if r.goneSessions.has(id) {
		return serr.New(serr.Gone, "server: session %s expired or was evicted; open a new session", id)
	}
	return serr.New(serr.NotFound, "server: unknown session %s", id)
}

// sweepLocked demotes every session idle past the TTL. Dormant sessions are
// exempt: they already cost disk, not memory.
func (r *registry) sweepLocked(now time.Time) {
	if r.ttl <= 0 {
		return
	}
	for _, s := range r.sessions {
		if now.Sub(s.last) > r.ttl {
			r.demoteSessionLocked(s, now)
		}
	}
}

// demoteLRUSessionLocked demotes the least-recently-used live session.
func (r *registry) demoteLRUSessionLocked(now time.Time) bool {
	var lru *session
	for _, s := range r.sessions {
		if lru == nil || s.last.Before(lru.last) {
			lru = s
		}
	}
	if lru == nil {
		return false
	}
	return r.demoteSessionLocked(lru, now)
}

// demoteLRUResultLocked demotes the least-recently-used retained result
// whose release actually frees memory (sole reference — demoting one of
// several references to a cache-shared Result would cost a client its
// memory residency without freeing a byte), never the just-inserted keep or
// a result already on its way out. It reports whether anything was demoted;
// false also means the byte budget cannot shrink further right now.
func (r *registry) demoteLRUResultLocked(keep *retainedResult, now time.Time) bool {
	var (
		lruSess *session
		lruName string
		lruRes  *retainedResult
	)
	for _, s := range r.sessions {
		for name, rr := range s.results {
			if rr == keep || rr.dropOnFlush {
				continue
			}
			if e := r.refs[rr.res]; e != nil && e.n > 1 {
				continue // shared with other retentions: freeing this frees nothing
			}
			if lruRes == nil || rr.last.Before(lruRes.last) {
				lruSess, lruName, lruRes = s, name, rr
			}
		}
	}
	if lruRes == nil {
		return false
	}
	return r.demoteLocked(lruSess, lruName, lruRes, now)
}

// demoteLocked moves one retained result out of the memory tier. With no
// store it degrades to gone immediately. With a current disk copy the
// demotion is free: memory drops now. Otherwise the result enters the
// demoting state — the segment write queues on the flusher and the memory
// copy is released only when it lands (a get meanwhile serves the resident
// copy and keeps it hot). Reports whether the demotion made, or queued,
// progress; false means the flusher is saturated and the result stays.
func (r *registry) demoteLocked(s *session, name string, rr *retainedResult, now time.Time) bool {
	if r.store == nil {
		r.releaseRefLocked(rr.res)
		delete(s.results, name)
		s.gone.add(name)
		r.counters.demotes++
		return true
	}
	if rr.onDisk {
		if dr, ok := s.demoted[name]; ok {
			r.cancelPendingLocked(rr)
			r.releaseRefLocked(rr.res)
			delete(s.results, name)
			dr.last = now
			dr.hits = 0 // re-demotion restarts the repeated-trace clock
			r.counters.demotes++
			return true
		}
		rr.onDisk = false // disk copy vanished (budget delete); rewrite
	}
	return r.enqueuePutLocked(s, name, rr, true)
}

// demoteSessionLocked demotes a whole live session. Results without a
// current disk copy enter the demoting state; the session parks in the
// dormant set while its pending writes and demoted entries live on. A
// session with a demotion the flusher could not accept stays live and
// retries on the next sweep. Reports whether the session left the live set.
func (r *registry) demoteSessionLocked(s *session, now time.Time) bool {
	stuck := false
	for name, rr := range s.results {
		if !r.demoteLocked(s, name, rr, now) {
			stuck = true
		}
	}
	if stuck {
		return false
	}
	delete(r.sessions, s.id)
	if r.store != nil && (len(s.demoted) > 0 || len(s.results) > 0) {
		r.dormant[s.id] = s
		return true
	}
	r.goneSessions.add(s.id)
	return true
}

// removeSessionLocked drops a session from every tier and tombstones its id.
// Pending writes are cancelled; the manifest delete queues behind them.
func (r *registry) removeSessionLocked(s *session) {
	for _, rr := range s.results {
		r.cancelPendingLocked(rr)
		r.releaseRefLocked(rr.res)
	}
	s.results = map[string]*retainedResult{}
	for name, dr := range s.demoted {
		r.diskBytes -= dr.bytes
		delete(s.demoted, name)
	}
	if r.fl != nil {
		if !r.fl.enqueue(flushJob{op: opDeleteSession, sid: s.id}, true) {
			r.counters.deleteErrors++
			r.logDiskErrLocked("queue delete of session %s failed (flusher stopped)", s.id)
		}
	}
	delete(r.sessions, s.id)
	delete(r.dormant, s.id)
	r.goneSessions.add(s.id)
}

// deleteDemotedLocked drops one demoted entry. The manifest delete runs on
// the flusher — FIFO behind any pending write of the same name, so a
// put-then-delete lands in order. A delete that cannot queue is logged once
// and counted (the entry is reclaimed as an orphan at the next Open).
func (r *registry) deleteDemotedLocked(s *session, name string) {
	dr, ok := s.demoted[name]
	if !ok {
		return
	}
	r.diskBytes -= dr.bytes
	delete(s.demoted, name)
	if r.fl != nil {
		if !r.fl.enqueue(flushJob{op: opDeleteResult, sid: s.id, name: name}, true) {
			r.counters.deleteErrors++
			r.logDiskErrLocked("queue delete of %s/%s failed (flusher stopped)", s.id, name)
		}
	}
}

// enforceDiskBudgetLocked deletes least-recently-used demoted results (the
// terminal gone tier) until the disk budget holds. Results currently
// promoted (memory copy live) are skipped — deleting their disk copy would
// only force a rewrite on the next demotion.
func (r *registry) enforceDiskBudgetLocked() {
	for r.maxDiskBytes > 0 && r.diskBytes > r.maxDiskBytes {
		var (
			lruSess *session
			lruName string
			lruDr   *demotedResult
		)
		scan := func(s *session) {
			for name, dr := range s.demoted {
				if _, live := s.results[name]; live {
					continue
				}
				if lruDr == nil || dr.last.Before(lruDr.last) {
					lruSess, lruName, lruDr = s, name, dr
				}
			}
		}
		for _, s := range r.sessions {
			scan(s)
		}
		for _, s := range r.dormant {
			scan(s)
		}
		if lruDr == nil {
			return
		}
		r.deleteDemotedLocked(lruSess, lruName)
		lruSess.gone.add(lruName)
		r.maybeRetireLocked(lruSess)
	}
}

// maybeRetireLocked tombstones a dormant session that has nothing left in
// any tier.
func (r *registry) maybeRetireLocked(s *session) {
	if len(s.results) == 0 && len(s.demoted) == 0 {
		if _, ok := r.dormant[s.id]; ok {
			delete(r.dormant, s.id)
			r.goneSessions.add(s.id)
		}
	}
}

// ---- flusher callbacks (run on the flusher goroutine) ----

// shouldFlush is the flusher's pre-write check: the job's ticket must still
// be current — a drop, overwrite, or session delete since enqueue voids it.
func (r *registry) shouldFlush(job flushJob) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[job.sid]
	if !ok {
		s, ok = r.dormant[job.sid]
	}
	if !ok {
		return false
	}
	rr := s.results[job.name]
	return rr != nil && rr.flushSeq == job.seq
}

// onPutDone advances the state machine when a segment write finishes:
// demoting → disk (release the memory copy, unless it was touched since) or
// write-behind → durable-and-resident; a failed demotion write degrades to
// gone rather than pinning memory the budgets already reclaimed.
func (r *registry) onPutDone(job flushJob, bytes int64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[job.sid]
	if !ok {
		s, ok = r.dormant[job.sid]
	}
	if !ok {
		// Session dropped while the write was in flight; the queued session
		// delete cleans the manifest entry back up.
		return
	}
	rr := s.results[job.name]
	if rr == nil || rr.flushSeq != job.seq {
		return // superseded: a newer put or a drop owns the name now
	}
	rr.flushSeq = 0
	r.demotingBytes -= rr.countedBytes
	rr.countedBytes = 0
	drop := rr.dropOnFlush
	rr.dropOnFlush = false
	if err != nil {
		r.counters.flushErrors++
		if r.flushErr == nil {
			r.flushErr = err
		}
		r.logDiskErrLocked("segment write for %s/%s failed: %v", job.sid, job.name, err)
		if drop {
			r.releaseRefLocked(rr.res)
			delete(s.results, job.name)
			s.gone.add(job.name)
			r.counters.demotes++
			r.maybeRetireLocked(s)
		}
		return
	}
	now := r.clock()
	r.deleteDemotedEntryOnlyLocked(s, job.name)
	s.demoted[job.name] = &demotedResult{bytes: bytes, last: now}
	r.diskBytes += bytes
	rr.onDisk = true
	if drop && !rr.last.After(rr.demoteAt) {
		r.releaseRefLocked(rr.res)
		delete(s.results, job.name)
		r.counters.demotes++
	} else {
		// Referenced since the demotion queued (or plain write-behind): the
		// result stays hot; the write still bought durability.
		r.counters.writeBehind++
	}
	r.enforceDiskBudgetLocked()
	r.maybeRetireLocked(s)
}

// onPublish records manifest-publish failures (the only way a queued delete
// can fail to take effect).
func (r *registry) onPublish(err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters.publishErrors++
	if r.flushErr == nil {
		r.flushErr = err
	}
	r.logDiskErrLocked("manifest publish failed: %v", err)
}

// logDiskErrLocked reports the first disk-tier failure to the process log —
// once, so a dying disk cannot flood it — while every occurrence stays
// counted in the stats surface.
func (r *registry) logDiskErrLocked(format string, args ...any) {
	if r.diskErrLogged {
		return
	}
	r.diskErrLogged = true
	log.Printf("server: disk tier degraded (further errors counted, not logged): "+format, args...)
}

// flush persists every not-yet-durable retained result and publishes the
// manifest (graceful-shutdown path): enqueue whatever is not already
// pending, drain the flusher, publish with the session-id watermark.
// Results stay resident — flush persists, it does not evict. The first disk
// error observed (including by concurrent flusher work) is returned after
// attempting everything.
func (r *registry) flush() error {
	if r.store == nil {
		return nil
	}
	r.mu.Lock()
	r.flushErr = nil
	for _, set := range []map[string]*session{r.sessions, r.dormant} {
		for _, s := range set {
			for name, rr := range s.results {
				if rr.onDisk || rr.flushSeq != 0 {
					continue
				}
				r.flushSeqGen++
				if r.fl.enqueue(flushJob{op: opPut, sid: s.id, name: name, res: rr.res, seq: r.flushSeqGen}, true) {
					rr.flushSeq = r.flushSeqGen
				}
			}
		}
	}
	r.mu.Unlock()
	r.fl.drain()
	r.mu.Lock()
	err := r.flushErr
	r.store.SetNextSessionID(r.nextID)
	r.mu.Unlock()
	if perr := r.store.Publish(); perr != nil && err == nil {
		err = perr
	}
	return err
}

// deleteDemotedEntryOnlyLocked forgets a demoted entry's bookkeeping without
// touching the store (the caller just replaced the manifest entry).
func (r *registry) deleteDemotedEntryOnlyLocked(s *session, name string) {
	if dr, ok := s.demoted[name]; ok {
		r.diskBytes -= dr.bytes
		delete(s.demoted, name)
	}
}
