package server

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"smoke/internal/serverclient"
)

// TestConcurrentClients hammers one server (one shared DB, one fair-shared
// worker pool) with N goroutine clients that interleave ingest, stateless
// queries, session creation, retained base queries, and bound traces — the
// workload shape smoked exists for. Run under -race (CI does), it is the
// server-layer counterpart of the engine's concurrent-shared-DB tests, and
// it asserts trace results stay element-identical to an in-process reference
// computed before the storm starts.
func TestConcurrentClients(t *testing.T) {
	c, db := newTestServer(t, func(cfg *Config) {
		cfg.MaxInFlight = 8
		cfg.MaxQueued = 1024 // the storm must queue, not 429
	})
	ctx := context.Background()
	mustCreateOrders(t, c)

	// In-process reference for the shared base query + trace, computed on
	// the same relation the clients will query (client ingests below use
	// distinct per-goroutine table names, so "orders" is stable).
	refBase, err := c.Query(ctx, serverclient.QueryRequest{
		SQL: "SELECT region, SUM(amount) AS total FROM orders GROUP BY region"})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	const iters = 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := c.NewSession(ctx)
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close(ctx)
			if _, err := sess.Run(ctx, "base", serverclient.QueryRequest{
				SQL: "SELECT region, SUM(amount) AS total FROM orders GROUP BY region"}); err != nil {
				errs <- fmt.Errorf("client %d run: %w", g, err)
				return
			}
			private := fmt.Sprintf("t%d", g)
			for i := 0; i < iters; i++ {
				// Interleaved ingest of a private table.
				if err := c.CreateTable(ctx, private, []serverclient.Field{
					{Name: "k", Type: "int"}, {Name: "v", Type: "float"},
				}, [][]any{{1, 1.5}, {2, 2.5}, {1, float64(i)}}, ""); err != nil {
					errs <- fmt.Errorf("client %d ingest: %w", g, err)
					return
				}
				// Stateless query over the shared table must match the
				// pre-storm reference exactly (orders is never re-ingested).
				got, err := c.Query(ctx, serverclient.QueryRequest{
					SQL: "SELECT region, SUM(amount) AS total FROM orders GROUP BY region"})
				if err != nil {
					errs <- fmt.Errorf("client %d query: %w", g, err)
					return
				}
				if got.N != refBase.N {
					errs <- fmt.Errorf("client %d: query rows %d, want %d", g, got.N, refBase.N)
					return
				}
				for r := range got.Rows {
					for cix := range got.Rows[r] {
						if got.Rows[r][cix] != refBase.Rows[r][cix] {
							errs <- fmt.Errorf("client %d: row %d col %d = %v, want %v",
								g, r, cix, got.Rows[r][cix], refBase.Rows[r][cix])
							return
						}
					}
				}
				// Bound trace against the session's retained capture.
				bar := int64(i % refBase.N)
				traced, err := sess.Trace(ctx, "base", serverclient.TraceRequest{
					Direction: "backward", Table: "orders", Rids: []int64{bar},
					GroupBy: []string{"region"},
					Aggs:    []serverclient.Agg{{Fn: "count", Name: "n"}},
				})
				if err != nil {
					errs <- fmt.Errorf("client %d trace: %w", g, err)
					return
				}
				if traced.N != 1 {
					errs <- fmt.Errorf("client %d: trace of one bar returned %d groups", g, traced.N)
					return
				}
				// Private-table query exercises catalog writes racing reads.
				if _, err := c.Query(ctx, serverclient.QueryRequest{
					SQL: fmt.Sprintf("SELECT k, COUNT(*) AS n FROM %s GROUP BY k", private)}); err != nil {
					errs <- fmt.Errorf("client %d private query: %w", g, err)
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	_ = db
}
