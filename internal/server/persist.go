package server

import (
	"smoke/internal/core"
	"smoke/internal/diskstore"
)

// resultToDisk projects a retained result onto the disk tier's exchange
// shape: the output relation, group counts, the captured lineage indexes,
// and the base-relation snapshots the capture's rids address. The plan does
// not survive demotion — a promoted result serves bound traces only, which
// is all the session API offers on it.
func resultToDisk(res *core.Result) *diskstore.Result {
	return &diskstore.Result{
		Out:         res.Out,
		GroupCounts: res.GroupCounts,
		Capture:     res.Capture(),
		Bases:       res.Bases(),
	}
}
