package server

import (
	"smoke/internal/core"
	"smoke/internal/diskstore"
)

// resultStore is the slice of the disk store the registry and its flusher
// use. It is an interface so tests can wrap the real *diskstore.Store with
// fault injection — a put that blocks (proving handlers never wait on
// segment I/O) or fails mid-flush (crash recovery) — without a build seam
// in the store itself.
type resultStore interface {
	PutResultNoPublish(session, name string, r *diskstore.Result) (int64, error)
	LoadResult(session, name string) (*diskstore.Result, error)
	DeleteResultNoPublish(session, name string) bool
	DeleteSessionNoPublish(session string) bool
	Publish() error
	Sessions() map[string]map[string]int64
	NextSessionID() uint64
	SetNextSessionID(id uint64)
}

// resultToDisk projects a retained result onto the disk tier's exchange
// shape: the output relation, group counts, the captured lineage indexes,
// and the base-relation snapshots the capture's rids address. The plan does
// not survive demotion — a promoted result serves bound traces only, which
// is all the session API offers on it.
func resultToDisk(res *core.Result) *diskstore.Result {
	return &diskstore.Result{
		Out:         res.Out,
		GroupCounts: res.GroupCounts,
		Capture:     res.Capture(),
		Bases:       res.Bases(),
	}
}
