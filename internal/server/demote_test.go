package server

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"smoke/internal/core"
	"smoke/internal/diskstore"
	"smoke/internal/serverclient"
)

// newDiskServer builds a server over a disk store in dir, with explicit
// handles: the caller controls shutdown order (drain → flush → store close)
// to simulate restarts.
func newDiskServer(t *testing.T, dir string, tweak func(*Config)) (*serverclient.Client, *Server, *diskstore.Store, func()) {
	t.Helper()
	store, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db := core.Open(core.WithWorkers(2))
	t.Cleanup(db.Close)
	cfg := Config{DB: db, Store: store}
	if tweak != nil {
		tweak(&cfg)
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	stop := func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Fatalf("server flush: %v", err)
		}
		if err := store.Close(); err != nil {
			t.Fatalf("store close: %v", err)
		}
	}
	return serverclient.New(ts.URL, ts.Client()), srv, store, stop
}

func sameRows(t *testing.T, what string, got, want *serverclient.Result) {
	t.Helper()
	if got.N != want.N || !reflect.DeepEqual(got.Columns, want.Columns) {
		t.Fatalf("%s: shape %dx%v, want %dx%v", what, got.N, got.Columns, want.N, want.Columns)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("%s: rows differ:\n got %v\nwant %v", what, got.Rows, want.Rows)
	}
}

// Demotion under the per-session cap must keep the result traceable: the
// evicted name promotes back from its segment and the bound trace is
// element-identical to the in-memory one — not 410.
func TestDemotionPromotesInsteadOf410(t *testing.T) {
	c, _, _, stop := newDiskServer(t, t.TempDir(), func(cfg *Config) {
		cfg.MaxResultsPerSession = 1
	})
	defer stop()
	ctx := context.Background()
	mustCreateOrders(t, c)
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, "first", serverclient.QueryRequest{
		SQL: "SELECT region, COUNT(*) AS n FROM orders GROUP BY region"}); err != nil {
		t.Fatal(err)
	}
	traceReq := serverclient.TraceRequest{Direction: "backward", Table: "orders", Rids: []int64{0}}
	want, err := sess.Trace(ctx, "first", traceReq)
	if err != nil {
		t.Fatal(err)
	}
	// Retaining "second" demotes "first" (cap 1) to the disk tier.
	if _, err := sess.Run(ctx, "second", serverclient.QueryRequest{
		SQL: "SELECT region, SUM(amount) AS s FROM orders GROUP BY region"}); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Trace(ctx, "first", traceReq)
	if err != nil {
		t.Fatalf("trace of demoted result: %v", err)
	}
	sameRows(t, "promoted backward trace", got, want)
}

// The TTL parks idle sessions in the dormant (disk) tier instead of killing
// them: a later reference revives the session and its traces still answer.
func TestTTLDemotesToDormantNotGone(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	c, _, _, stop := newDiskServer(t, t.TempDir(), func(cfg *Config) {
		cfg.SessionTTL = time.Minute
		cfg.Clock = clk.now
	})
	defer stop()
	ctx := context.Background()
	mustCreateOrders(t, c)
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit seeds below the scan-equivalence threshold: live and promoted
	// results take the same rid-expansion path, so rows compare exactly.
	traceReq := serverclient.TraceRequest{Direction: "backward", Table: "orders", Rids: []int64{1}}
	if _, err := sess.Run(ctx, "base", serverclient.QueryRequest{
		SQL: "SELECT region, COUNT(*) AS n FROM orders GROUP BY region"}); err != nil {
		t.Fatal(err)
	}
	want, err := sess.Trace(ctx, "base", traceReq)
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(10 * time.Minute) // far past the TTL: demoted wholesale
	got, err := sess.Trace(ctx, "base", traceReq)
	if err != nil {
		t.Fatalf("trace after TTL demotion: %v", err)
	}
	sameRows(t, "revived session trace", got, want)
}

// The disk budget deletes the LRU demoted capture for good; the lazy tier
// then re-derives the result capture-free (410 only when no producing spec
// survives — e.g. after a restart).
func TestDiskBudgetFallsBackToLazyTier(t *testing.T) {
	c, srv, _, stop := newDiskServer(t, t.TempDir(), func(cfg *Config) {
		cfg.MaxResultsPerSession = 1
		cfg.MaxDiskBytes = 1 // every demotion overflows immediately
	})
	defer stop()
	ctx := context.Background()
	mustCreateOrders(t, c)
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, "first", serverclient.QueryRequest{
		SQL: "SELECT region, COUNT(*) AS n FROM orders GROUP BY region"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, "second", serverclient.QueryRequest{
		SQL: "SELECT region, SUM(amount) AS s FROM orders GROUP BY region"}); err != nil {
		t.Fatal(err)
	}
	// Demotion is asynchronous: until the queued segment write lands, the
	// demoting copy of "first" still serves. Drain the flusher so the write
	// completes and the disk budget (1 byte) makes the capture gone — the
	// lazy retention tier then re-derives the result from its remembered
	// producing request instead of answering 410.
	srv.sessions.fl.drain()
	out, err := sess.Trace(ctx, "first", serverclient.TraceRequest{Direction: "backward", Table: "orders"})
	if err != nil {
		t.Fatalf("gone capture should answer via the lazy tier: %v", err)
	}
	if out.StrategyUsed != "lazy" {
		t.Fatalf("strategy_used = %q, want %q", out.StrategyUsed, "lazy")
	}
	// The in-memory survivor is untouched.
	if _, err := sess.Result(ctx, "second"); err != nil {
		t.Fatalf("in-memory result lost to the disk budget: %v", err)
	}
}

// A server restarted over the same data dir recovers ingested tables and
// retained sessions: bound traces (backward and forward, raw and
// compressed) answer element-identically to before the restart, and a new
// session id never collides with a recovered one.
func TestRestartRecoversSessions(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	c, _, _, stop := newDiskServer(t, dir, nil)
	mustCreateOrders(t, c)
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, "base", serverclient.QueryRequest{
		SQL: "SELECT region, COUNT(*) AS n FROM orders GROUP BY region"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, "packed", serverclient.QueryRequest{
		SQL:      "SELECT region, SUM(amount) AS s FROM orders GROUP BY region",
		Compress: true}); err != nil {
		t.Fatal(err)
	}
	bw := serverclient.TraceRequest{Direction: "backward", Table: "orders", Rids: []int64{0}}
	fw := serverclient.TraceRequest{Direction: "forward", Table: "orders", Rids: []int64{0, 2, 4}}
	wantBW, err := sess.Trace(ctx, "base", bw)
	if err != nil {
		t.Fatal(err)
	}
	wantFW, err := sess.Trace(ctx, "packed", fw)
	if err != nil {
		t.Fatal(err)
	}
	stop() // graceful shutdown: drain, flush, publish, close

	c2, _, _, stop2 := newDiskServer(t, dir, nil)
	defer stop2()
	sess2 := c2.Session(sess.ID)
	gotBW, err := sess2.Trace(ctx, "base", bw)
	if err != nil {
		t.Fatalf("backward trace after restart: %v", err)
	}
	sameRows(t, "post-restart backward", gotBW, wantBW)
	gotFW, err := sess2.Trace(ctx, "packed", fw)
	if err != nil {
		t.Fatalf("forward trace after restart: %v", err)
	}
	sameRows(t, "post-restart forward", gotFW, wantFW)

	fresh, err := c2.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == sess.ID {
		t.Fatalf("restarted server reissued session id %s", fresh.ID)
	}
}

// Explicitly deleting a session removes it from the disk tier too: a
// restart must not resurrect it.
func TestDropSessionDeletesDiskTier(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	c, _, _, stop := newDiskServer(t, dir, nil)
	mustCreateOrders(t, c)
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, "base", serverclient.QueryRequest{
		SQL: "SELECT region, COUNT(*) AS n FROM orders GROUP BY region"}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	stop()

	c2, _, _, stop2 := newDiskServer(t, dir, nil)
	defer stop2()
	_, err = c2.Session(sess.ID).Result(ctx, "base")
	wantStatus(t, err, 404) // a restart forgets tombstones; never resurrects data
}

// Out-of-range and negative explicit seeds are a client error on the HTTP
// path — 400, not a handler panic turned 500 (the seeds would otherwise
// reach the encoded chunk directory unchecked).
func TestTraceBadSeedsAre400(t *testing.T) {
	c, _ := newTestServer(t, nil)
	ctx := context.Background()
	mustCreateOrders(t, c)
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, "base", serverclient.QueryRequest{
		SQL: "SELECT region, COUNT(*) AS n FROM orders GROUP BY region"}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		req  serverclient.TraceRequest
	}{
		{"backward rid past output", serverclient.TraceRequest{
			Direction: "backward", Table: "orders", Rids: []int64{1 << 30}}},
		{"backward negative rid", serverclient.TraceRequest{
			Direction: "backward", Table: "orders", Rids: []int64{-1}}},
		{"forward rid past base", serverclient.TraceRequest{
			Direction: "forward", Table: "orders", Rids: []int64{999}}},
		{"forward negative rid", serverclient.TraceRequest{
			Direction: "forward", Table: "orders", Rids: []int64{-7}}},
	} {
		_, err := sess.Trace(ctx, "base", tc.req)
		wantStatus(t, err, 400)
	}
}

// tombstones must never forget recent evictions: the generational rotation
// keeps at least cap/2 of the latest adds. (The previous wholesale reset
// forgot everything at the cap, flipping fresh 410s back to 404.)
func TestTombstonesKeepRecentAcrossOverflow(t *testing.T) {
	ts := newTombstones(8)
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	for _, k := range keys {
		ts.add(k)
	}
	// The last cap/2 adds are always present, whatever the rotation phase.
	for _, k := range keys[len(keys)-4:] {
		if !ts.has(k) {
			t.Fatalf("recent tombstone %q forgotten after overflow", k)
		}
	}
	if len(ts.cur)+len(ts.old) > 8 {
		t.Fatalf("tombstones hold %d keys, cap 8", len(ts.cur)+len(ts.old))
	}
	ts.remove("j")
	if ts.has("j") {
		t.Fatal("removed tombstone still present")
	}
}
