package server

import (
	"context"
	"reflect"
	"testing"

	"smoke/internal/serverclient"
)

// Conflicting strategy/capture combinations are structured 400s on the HTTP
// path — mirroring TestTraceBadSeedsAre400, not a silent override and not a
// 500.
func TestStrategyConflictsAre400(t *testing.T) {
	c, _ := newTestServer(t, nil)
	ctx := context.Background()
	mustCreateOrders(t, c)
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	const sqlText = "SELECT region, COUNT(*) AS n FROM orders GROUP BY region"
	for _, tc := range []struct {
		name string
		req  serverclient.QueryRequest
	}{
		{"lazy with inject", serverclient.QueryRequest{SQL: sqlText, Strategy: "lazy", Capture: "inject"}},
		{"lazy with defer", serverclient.QueryRequest{SQL: sqlText, Strategy: "lazy", Capture: "defer"}},
		{"eager without capture", serverclient.QueryRequest{SQL: sqlText, Strategy: "eager", Capture: "none"}},
		{"retain with capture none", serverclient.QueryRequest{SQL: sqlText, Capture: "none"}},
		{"unknown strategy", serverclient.QueryRequest{SQL: sqlText, Strategy: "sometimes"}},
	} {
		_, err := sess.Run(ctx, "r", tc.req)
		if err == nil {
			t.Fatalf("%s: want 400, got success", tc.name)
		}
		wantStatus(t, err, 400)
	}

	// Per-trace strategies: "hybrid" is a capture-time split, not a trace
	// path (400), and "eager" cannot be forced on a capture-free result.
	if _, err := sess.Run(ctx, "lazyres", serverclient.QueryRequest{SQL: sqlText, Strategy: "lazy"}); err != nil {
		t.Fatal(err)
	}
	_, err = sess.Trace(ctx, "lazyres", serverclient.TraceRequest{
		Direction: "backward", Table: "orders", Strategy: "hybrid"})
	wantStatus(t, err, 400)
	_, err = sess.Trace(ctx, "lazyres", serverclient.TraceRequest{
		Direction: "backward", Table: "orders", Strategy: "eager"})
	wantStatus(t, err, 400)
}

// Every strategy path answers traces element-identically over HTTP: a
// lazy-retained result re-executes its plan, a hybrid result splits by
// direction (eager backward, lazy forward), and forcing "lazy" on an eager
// result matches the eager answer. strategy_used echoes the path taken and
// /healthz counts the non-eager paths.
func TestStrategyPathsOverHTTP(t *testing.T) {
	c, _ := newTestServer(t, nil)
	ctx := context.Background()
	mustCreateOrders(t, c)
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	const sqlText = "SELECT region, COUNT(*) AS n FROM orders GROUP BY region"
	if _, err := sess.Run(ctx, "eager", serverclient.QueryRequest{SQL: sqlText}); err != nil {
		t.Fatal(err)
	}
	lazyOut, err := sess.Run(ctx, "lazy", serverclient.QueryRequest{SQL: sqlText, Strategy: "lazy"})
	if err != nil {
		t.Fatal(err)
	}
	if lazyOut.StrategyUsed != "lazy" {
		t.Fatalf("run strategy_used = %q, want %q", lazyOut.StrategyUsed, "lazy")
	}
	hybridOut, err := sess.Run(ctx, "hybrid", serverclient.QueryRequest{SQL: sqlText, Strategy: "hybrid"})
	if err != nil {
		t.Fatal(err)
	}
	if hybridOut.StrategyUsed != "hybrid" {
		t.Fatalf("run strategy_used = %q, want %q", hybridOut.StrategyUsed, "hybrid")
	}

	traceIdentical := func(dir string, rids []int64, name, wantPath string, want *serverclient.Result) *serverclient.Result {
		t.Helper()
		req := serverclient.TraceRequest{Direction: dir, Table: "orders", Rids: rids}
		if wantPath == "lazy" && name == "eager" {
			req.Strategy = "lazy" // forced path on a captured result
		}
		got, err := sess.Trace(ctx, name, req)
		if err != nil {
			t.Fatalf("%s %s trace: %v", name, dir, err)
		}
		if got.StrategyUsed != wantPath {
			t.Fatalf("%s %s trace strategy_used = %q, want %q", name, dir, got.StrategyUsed, wantPath)
		}
		if want != nil && (got.N != want.N || !reflect.DeepEqual(got.Rows, want.Rows)) {
			t.Fatalf("%s %s trace diverged from eager:\n got %v\nwant %v", name, dir, got.Rows, want.Rows)
		}
		return got
	}

	// Backward, single output rid: eager reference, then lazy and forced-lazy.
	bwRef := traceIdentical("backward", []int64{0}, "eager", "eager", nil)
	traceIdentical("backward", []int64{0}, "lazy", "lazy", bwRef)
	traceIdentical("backward", []int64{0}, "eager", "lazy", bwRef)
	// Hybrid keeps the backward index eagerly.
	traceIdentical("backward", []int64{0}, "hybrid", "eager", bwRef)

	// Forward, single base rid: hybrid and lazy recompute, eager reads the
	// captured index.
	fwRef := traceIdentical("forward", []int64{3}, "eager", "eager", nil)
	traceIdentical("forward", []int64{3}, "lazy", "lazy", fwRef)
	traceIdentical("forward", []int64{3}, "hybrid", "lazy", fwRef)

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n := healthCount(t, h, "lazy_traces"); n < 4 {
		t.Fatalf("lazy_traces = %d, want >= 4", n)
	}
	if n := healthCount(t, h, "hybrid_traces"); n < 2 {
		t.Fatalf("hybrid_traces = %d, want >= 2", n)
	}
	if n := healthCount(t, h, "lazy_fallbacks"); n != 0 {
		t.Fatalf("lazy_fallbacks = %d, want 0 (nothing was evicted)", n)
	}
}
