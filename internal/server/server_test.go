package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"smoke/internal/core"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/serverclient"
)

// coreCol / coreLt build in-process reference expressions.
func coreCol(name string) expr.Expr { return expr.C(name) }
func coreLt(name string, v float64) expr.Expr {
	return expr.LtE(expr.C(name), expr.F(v))
}

// fakeClock is a mutable clock for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// newTestServer starts an httptest server with the given config tweaks and
// returns the client plus the underlying DB for in-process comparison.
func newTestServer(t *testing.T, tweak func(*Config)) (*serverclient.Client, *core.DB) {
	t.Helper()
	db := core.Open(core.WithWorkers(2))
	t.Cleanup(db.Close)
	cfg := Config{DB: db}
	if tweak != nil {
		tweak(&cfg)
	}
	ts := httptest.NewServer(New(cfg))
	t.Cleanup(ts.Close)
	return serverclient.New(ts.URL, ts.Client()), db
}

func ordersSchema() []serverclient.Field {
	return []serverclient.Field{
		{Name: "region", Type: "string"},
		{Name: "amount", Type: "float"},
	}
}

func ordersRows() [][]any {
	return [][]any{
		{"emea", 10.0}, {"apac", 20.0}, {"emea", 30.0}, {"apac", 5.0}, {"emea", 2.5},
	}
}

func mustCreateOrders(t *testing.T, c *serverclient.Client) {
	t.Helper()
	if err := c.CreateTable(context.Background(), "orders", ordersSchema(), ordersRows(), ""); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
}

func wantStatus(t *testing.T, err error, status int) *serverclient.Error {
	t.Helper()
	se, ok := err.(*serverclient.Error)
	if !ok {
		t.Fatalf("want *serverclient.Error with status %d, got %T: %v", status, err, err)
	}
	if se.Status != status {
		t.Fatalf("status = %d (%s), want %d", se.Status, se.Message, status)
	}
	return se
}

func TestIngestAndQuery(t *testing.T) {
	c, db := newTestServer(t, nil)
	ctx := context.Background()
	mustCreateOrders(t, c)

	res, err := c.Query(ctx, serverclient.QueryRequest{
		SQL: "SELECT region, SUM(amount) AS total FROM orders GROUP BY region",
	})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !reflect.DeepEqual(res.Columns, []string{"region", "total"}) {
		t.Fatalf("columns = %v", res.Columns)
	}
	// Served rows must be element-identical to in-process execution.
	want, err := db.Query().From("orders", nil).GroupBy("region").
		Agg(ops.Sum, coreCol("amount"), "total").Run(core.CaptureOptions{})
	if err != nil {
		t.Fatalf("in-process: %v", err)
	}
	if res.N != want.Out.N {
		t.Fatalf("served %d rows, in-process %d", res.N, want.Out.N)
	}
	for i := 0; i < want.Out.N; i++ {
		if res.Rows[i][0] != want.Out.Str(0, i) || res.Rows[i][1] != want.Out.Float(1, i) {
			t.Fatalf("row %d: served %v, in-process %v", i, res.Rows[i], want.Out.Row(i))
		}
	}
}

func TestIngestCSV(t *testing.T) {
	c, _ := newTestServer(t, nil)
	ctx := context.Background()
	csv := []byte("k,v\n1,1.5\n2,2.5\n1,3.0\n")
	if err := c.CreateTableCSV(ctx, "m", csv, "", ""); err != nil {
		t.Fatalf("CreateTableCSV: %v", err)
	}
	res, err := c.Query(ctx, serverclient.QueryRequest{
		SQL: "SELECT k, COUNT(*) AS n FROM m GROUP BY k",
	})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// Type sniffing: k is int, so normalized rows carry int64.
	if res.N != 2 || res.Rows[0][0] != int64(1) || res.Rows[0][1] != int64(2) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestExplain(t *testing.T) {
	c, _ := newTestServer(t, nil)
	mustCreateOrders(t, c)
	res, err := c.Query(context.Background(), serverclient.QueryRequest{
		SQL: "EXPLAIN SELECT region, COUNT(*) AS n FROM orders GROUP BY region",
	})
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if res.Explain == "" {
		t.Fatal("EXPLAIN returned no plan text")
	}
}

func TestSessionTraceRoundTrip(t *testing.T) {
	c, db := newTestServer(t, nil)
	ctx := context.Background()
	mustCreateOrders(t, c)

	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	base, err := sess.Run(ctx, "byregion", serverclient.QueryRequest{
		SQL: "SELECT region, SUM(amount) AS total FROM orders GROUP BY region",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if base.Retained != "byregion" {
		t.Fatalf("retained = %q", base.Retained)
	}

	// Keyless backward trace of output row 0: the base rows behind it.
	traced, err := sess.Trace(ctx, "byregion", serverclient.TraceRequest{
		Direction: "backward", Table: "orders", Rids: []int64{0},
	})
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	// In-process reference.
	ref, err := db.Query().From("orders", nil).GroupBy("region").
		Agg(ops.Sum, coreCol("amount"), "total").Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	rids, err := ref.Backward("orders", []lineage.Rid{0})
	if err != nil {
		t.Fatal(err)
	}
	if traced.N != len(rids) {
		t.Fatalf("traced %d rows, want %d", traced.N, len(rids))
	}
	rel, _ := db.Table("orders")
	for i, r := range rids {
		if traced.Rows[i][0] != rel.Str(0, int(r)) || traced.Rows[i][1] != rel.Float(1, int(r)) {
			t.Fatalf("traced row %d = %v, want base row %d", i, traced.Rows[i], r)
		}
	}

	// Consuming aggregation with a filter, retained for chaining.
	cons, err := sess.Trace(ctx, "byregion", serverclient.TraceRequest{
		Direction: "backward", Table: "orders", Rids: []int64{0},
		Where:   "amount < 25",
		GroupBy: []string{"region"},
		Aggs:    []serverclient.Agg{{Fn: "count", Name: "n"}, {Fn: "sum", Arg: "amount", Name: "s"}},
		Retain:  "drill",
	})
	if err != nil {
		t.Fatalf("consuming trace: %v", err)
	}
	if cons.Retained != "drill" {
		t.Fatalf("consuming retained = %q", cons.Retained)
	}
	consRef, err := db.Query().Backward(ref, "orders", []lineage.Rid{0}).
		Where(coreLt("amount", 25)).GroupBy("region").
		Agg(ops.Count, nil, "n").Agg(ops.Sum, coreCol("amount"), "s").
		Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if cons.N != consRef.Out.N {
		t.Fatalf("consuming rows %d, want %d", cons.N, consRef.Out.N)
	}
	for i := 0; i < consRef.Out.N; i++ {
		if cons.Rows[i][0] != consRef.Out.Str(0, i) ||
			cons.Rows[i][1] != consRef.Out.Int(1, i) ||
			cons.Rows[i][2] != consRef.Out.Float(2, i) {
			t.Fatalf("consuming row %d = %v, want %v", i, cons.Rows[i], consRef.Out.Row(i))
		}
	}

	// The retained consuming result is itself traceable (Q1b → Q1c chains).
	chained, err := sess.Trace(ctx, "drill", serverclient.TraceRequest{
		Direction: "backward", Table: "orders",
	})
	if err != nil {
		t.Fatalf("chained trace: %v", err)
	}
	if chained.N == 0 {
		t.Fatal("chained trace returned no rows")
	}

	// Seed-predicate form.
	seeded, err := sess.Trace(ctx, "byregion", serverclient.TraceRequest{
		Direction: "backward", Table: "orders", SeedWhere: "region = 'emea'",
	})
	if err != nil {
		t.Fatalf("seeded trace: %v", err)
	}
	for _, row := range seeded.Rows {
		if row[0] != "emea" {
			t.Fatalf("seeded trace leaked row %v", row)
		}
	}

	if err := sess.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// After an explicit delete the session answers 410.
	_, err = sess.Trace(ctx, "byregion", serverclient.TraceRequest{Direction: "backward", Table: "orders"})
	wantStatus(t, err, 410)
}

func TestResultCacheHit(t *testing.T) {
	c, _ := newTestServer(t, nil)
	ctx := context.Background()
	mustCreateOrders(t, c)
	req := serverclient.QueryRequest{SQL: "SELECT region, COUNT(*) AS n FROM orders GROUP BY region"}
	r1, err := c.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first run reported cached")
	}
	r2, err := c.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("identical repeat was not served from the plan-fingerprint cache")
	}
	if !reflect.DeepEqual(r1.Rows, r2.Rows) {
		t.Fatalf("cached rows diverge: %v vs %v", r1.Rows, r2.Rows)
	}

	// Re-ingesting the table must retire the cached plan (different relation
	// identity → different fingerprint).
	if err := c.CreateTable(ctx, "orders", ordersSchema(), ordersRows()[:2], ""); err != nil {
		t.Fatal(err)
	}
	r3, err := c.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("query after re-ingest served stale cache entry")
	}
}

func TestErrorStatuses(t *testing.T) {
	c, _ := newTestServer(t, nil)
	ctx := context.Background()
	mustCreateOrders(t, c)

	// Bad SQL → 400 with a position.
	_, err := c.Query(ctx, serverclient.QueryRequest{SQL: "SELECT FROM orders"})
	se := wantStatus(t, err, 400)
	if se.Pos < 0 {
		t.Fatalf("parse error carries no position: %+v", se)
	}
	if se.Kind != "invalid" {
		t.Fatalf("kind = %q, want invalid", se.Kind)
	}

	// Unknown table → 404.
	_, err = c.Query(ctx, serverclient.QueryRequest{SQL: "SELECT k, COUNT(*) AS n FROM nope GROUP BY k"})
	wantStatus(t, err, 404)

	// Unsupported shape → 422.
	_, err = c.Query(ctx, serverclient.QueryRequest{SQL: "SELECT region FROM orders GROUP BY region"})
	wantStatus(t, err, 422)

	// Unknown session → 404; unknown result in a live session → 404.
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Result(ctx, "never")
	wantStatus(t, err, 404)
	_, err = c.Session("s12345678").Result(ctx, "x")
	wantStatus(t, err, 404)

	// Empty statement → 400.
	_, err = c.Query(ctx, serverclient.QueryRequest{SQL: ""})
	wantStatus(t, err, 400)

	// Out-of-range seed rid → 400, not a panic.
	if _, err := sess.Run(ctx, "base", serverclient.QueryRequest{
		SQL: "SELECT region, COUNT(*) AS n FROM orders GROUP BY region"}); err != nil {
		t.Fatal(err)
	}
	_, err = sess.Trace(ctx, "base", serverclient.TraceRequest{
		Direction: "backward", Table: "orders", Rids: []int64{99},
	})
	wantStatus(t, err, 400)
}

func TestSessionTTLEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	c, _ := newTestServer(t, func(cfg *Config) {
		cfg.SessionTTL = time.Minute
		cfg.Clock = clk.now
	})
	ctx := context.Background()
	mustCreateOrders(t, c)

	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, "base", serverclient.QueryRequest{
		SQL: "SELECT region, COUNT(*) AS n FROM orders GROUP BY region"}); err != nil {
		t.Fatal(err)
	}
	// Touch within TTL: stays alive.
	clk.advance(45 * time.Second)
	if _, err := sess.Result(ctx, "base"); err != nil {
		t.Fatalf("session died before TTL: %v", err)
	}
	// Idle past TTL: evicted, and a bound trace answers 410 Gone.
	clk.advance(2 * time.Minute)
	_, err = sess.Trace(ctx, "base", serverclient.TraceRequest{Direction: "backward", Table: "orders"})
	wantStatus(t, err, 410)
}

// An evicted-capture result no longer answers 410: the lazy retention tier
// re-derives it from the remembered producing request and the trace answers
// via the lazy path, element-identically to the eager trace it replaced.
// (PR 7 answered 410 here.)
func TestResultEvictionAnswersViaLazyTier(t *testing.T) {
	c, _ := newTestServer(t, func(cfg *Config) {
		cfg.MaxResultsPerSession = 1
	})
	ctx := context.Background()
	mustCreateOrders(t, c)
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	req := serverclient.QueryRequest{SQL: "SELECT region, COUNT(*) AS n FROM orders GROUP BY region"}
	if _, err := sess.Run(ctx, "first", req); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, "second", req); err != nil {
		t.Fatal(err)
	}
	// "second" is live with its eager capture: the reference trace.
	want, err := sess.Trace(ctx, "second", serverclient.TraceRequest{Direction: "backward", Table: "orders"})
	if err != nil {
		t.Fatalf("live result failed: %v", err)
	}
	// "first" was LRU-evicted by the per-session cap; its trace rebuilds the
	// result capture-free and answers lazily.
	got, err := sess.Trace(ctx, "first", serverclient.TraceRequest{Direction: "backward", Table: "orders"})
	if err != nil {
		t.Fatalf("evicted result should answer via the lazy tier: %v", err)
	}
	if got.StrategyUsed != "lazy" {
		t.Fatalf("strategy_used = %q, want %q", got.StrategyUsed, "lazy")
	}
	if got.N != want.N || !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("lazy trace diverged from eager: got %d rows, want %d", got.N, want.N)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n := healthCount(t, h, "lazy_fallbacks"); n < 1 {
		t.Fatalf("lazy_fallbacks = %d, want >= 1", n)
	}
	if n := healthCount(t, h, "lazy_traces"); n < 1 {
		t.Fatalf("lazy_traces = %d, want >= 1", n)
	}
}

// healthCount reads a numeric /healthz counter.
func healthCount(t *testing.T, h map[string]any, key string) int64 {
	t.Helper()
	num, ok := h[key].(json.Number)
	if !ok {
		t.Fatalf("healthz %q = %#v, want a number", key, h[key])
	}
	n, err := num.Int64()
	if err != nil {
		t.Fatalf("healthz %q: %v", key, err)
	}
	return n
}

func TestByteBudgetEviction(t *testing.T) {
	c, _ := newTestServer(t, func(cfg *Config) {
		cfg.MaxRetainedBytes = 1 // everything but the newest result is evicted
	})
	ctx := context.Background()
	mustCreateOrders(t, c)
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct queries → distinct Results (identical queries share one
	// Result via the fingerprint cache and are charged once — see below).
	if _, err := sess.Run(ctx, "a", serverclient.QueryRequest{
		SQL: "SELECT region, COUNT(*) AS n FROM orders GROUP BY region"}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, "b", serverclient.QueryRequest{
		SQL: "SELECT region, SUM(amount) AS s FROM orders GROUP BY region"}); err != nil {
		t.Fatal(err)
	}
	_, err = sess.Result(ctx, "a")
	wantStatus(t, err, 410)
	if _, err := sess.Result(ctx, "b"); err != nil {
		t.Fatalf("newest result must survive the byte budget: %v", err)
	}
}

// Identical queries retained under several names share one *core.Result via
// the fingerprint cache: the byte budget charges the allocation once, and
// eviction never drops a shared reference (it would free nothing).
func TestSharedResultChargedOnce(t *testing.T) {
	c, _ := newTestServer(t, func(cfg *Config) {
		cfg.MaxRetainedBytes = 1 // tighter than one result, but shares don't count twice
	})
	ctx := context.Background()
	mustCreateOrders(t, c)
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	req := serverclient.QueryRequest{SQL: "SELECT region, COUNT(*) AS n FROM orders GROUP BY region"}
	if _, err := sess.Run(ctx, "a", req); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, "b", req); err != nil {
		t.Fatal(err)
	}
	// Both names stay live: the second retention added no memory, so there
	// was nothing for the budget to reclaim.
	if _, err := sess.Result(ctx, "a"); err != nil {
		t.Fatalf("shared retention evicted despite freeing nothing: %v", err)
	}
	if _, err := sess.Result(ctx, "b"); err != nil {
		t.Fatal(err)
	}
}

func TestSessionLRUCap(t *testing.T) {
	c, _ := newTestServer(t, func(cfg *Config) {
		cfg.MaxSessions = 2
	})
	ctx := context.Background()
	s1, _ := c.NewSession(ctx)
	s2, _ := c.NewSession(ctx)
	// Touch s1 so s2 is LRU (clock is real time; ordering via access order
	// still holds because last-access times are monotic here).
	time.Sleep(2 * time.Millisecond)
	mustCreateOrders(t, c)
	if _, err := s1.Run(ctx, "x", serverclient.QueryRequest{
		SQL: "SELECT region, COUNT(*) AS n FROM orders GROUP BY region"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	s3, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_ = s3
	// s2 (LRU) was evicted; s1 survives.
	_, err = s2.Result(ctx, "anything")
	wantStatus(t, err, 410)
	if _, err := s1.Result(ctx, "x"); err != nil {
		t.Fatalf("recently used session evicted: %v", err)
	}
}

// Re-ingesting a table after a result was retained must not corrupt bound
// traces: captured rids address the capture-time snapshot, so traces keep
// answering from it — never from the replaced relation (wrong rows) and
// never past its bounds (panic).
func TestTraceAfterReingestUsesSnapshot(t *testing.T) {
	c, _ := newTestServer(t, nil)
	ctx := context.Background()
	mustCreateOrders(t, c)
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx, "base", serverclient.QueryRequest{
		SQL: "SELECT region, SUM(amount) AS total FROM orders GROUP BY region"}); err != nil {
		t.Fatal(err)
	}
	// Replace orders with different, larger data.
	bigger := append(ordersRows(),
		[]any{"amer", 100.0}, []any{"amer", 200.0}, []any{"amer", 300.0})
	if err := c.CreateTable(ctx, "orders", ordersSchema(), bigger, ""); err != nil {
		t.Fatal(err)
	}
	// Backward trace still answers from the capture-time snapshot.
	traced, err := sess.Trace(ctx, "base", serverclient.TraceRequest{
		Direction: "backward", Table: "orders", Rids: []int64{0},
	})
	if err != nil {
		t.Fatalf("trace after re-ingest: %v", err)
	}
	for _, row := range traced.Rows {
		if row[0] == "amer" {
			t.Fatalf("trace leaked a row from the re-ingested relation: %v", row)
		}
	}
	// Forward seeds validate against the snapshot's row count (5), not the
	// replaced relation's (8): rid 7 is out of range → 400, not a panic.
	_, err = sess.Trace(ctx, "base", serverclient.TraceRequest{
		Direction: "forward", Table: "orders", Rids: []int64{7},
	})
	wantStatus(t, err, 400)
	// In-range forward seeds still work.
	if _, err := sess.Trace(ctx, "base", serverclient.TraceRequest{
		Direction: "forward", Table: "orders", Rids: []int64{0}}); err != nil {
		t.Fatalf("forward trace after re-ingest: %v", err)
	}
}

// A client-declared pk is verified against the data before it is believed:
// a duplicate-keyed pk would silently drop matches in the pk-fk join
// specialization.
func TestIngestRejectsBadPK(t *testing.T) {
	c, _ := newTestServer(t, nil)
	ctx := context.Background()
	schema := []serverclient.Field{{Name: "id", Type: "int"}, {Name: "v", Type: "float"}}
	// Duplicate pk values → 400.
	err := c.CreateTable(ctx, "dup", schema, [][]any{{1, 1.0}, {1, 2.0}}, "id")
	wantStatus(t, err, 400)
	// Non-int pk → 400.
	err = c.CreateTable(ctx, "strpk", []serverclient.Field{
		{Name: "k", Type: "string"}, {Name: "v", Type: "float"},
	}, [][]any{{"a", 1.0}}, "k")
	wantStatus(t, err, 400)
	// Unique int pk is accepted.
	if err := c.CreateTable(ctx, "ok", schema, [][]any{{1, 1.0}, {2, 2.0}}, "id"); err != nil {
		t.Fatalf("valid pk rejected: %v", err)
	}
}

// Retaining without a capture is rejected up front (a later trace could
// only fail confusingly).
func TestRetainRequiresCapture(t *testing.T) {
	c, _ := newTestServer(t, nil)
	ctx := context.Background()
	mustCreateOrders(t, c)
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Run(ctx, "base", serverclient.QueryRequest{
		SQL:     "SELECT region, COUNT(*) AS n FROM orders GROUP BY region",
		Capture: "none",
	})
	wantStatus(t, err, 400)
}

func TestForwardTrace(t *testing.T) {
	c, db := newTestServer(t, nil)
	ctx := context.Background()
	mustCreateOrders(t, c)
	sess, _ := c.NewSession(ctx)
	if _, err := sess.Run(ctx, "base", serverclient.QueryRequest{
		SQL: "SELECT region, COUNT(*) AS n FROM orders GROUP BY region"}); err != nil {
		t.Fatal(err)
	}
	fwd, err := sess.Trace(ctx, "base", serverclient.TraceRequest{
		Direction: "forward", Table: "orders", Rids: []int64{0, 2},
	})
	if err != nil {
		t.Fatalf("forward trace: %v", err)
	}
	ref, err := db.Query().From("orders", nil).GroupBy("region").
		Agg(ops.Count, nil, "n").Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	rids, err := ref.Forward("orders", []lineage.Rid{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if fwd.N != len(rids) {
		t.Fatalf("forward rows %d, want %d", fwd.N, len(rids))
	}
	for i, r := range rids {
		if fwd.Rows[i][0] != ref.Out.Str(0, int(r)) {
			t.Fatalf("forward row %d = %v, want output row %d", i, fwd.Rows[i], r)
		}
	}
}

func TestAdmissionGateRejects(t *testing.T) {
	g := newGate(1, 1)
	ctx := context.Background()
	if err := g.enter(ctx); err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue (inflight + queued = 2).
	done := make(chan error, 1)
	go func() {
		err := g.enter(ctx)
		if err == nil {
			g.exit()
		}
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for len(g.queue) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never entered the queue")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue is full: the next request is turned away immediately with Busy.
	err := g.enter(ctx)
	if err == nil || statusOf(err) != 429 {
		t.Fatalf("overflow enter = %v, want Busy/429", err)
	}
	g.exit()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter failed: %v", err)
	}
}
