package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"smoke/internal/core"
	"smoke/internal/expr"
	"smoke/internal/serr"
)

// resultCache is the plan-fingerprint result cache: repeated identical
// queries (crossfilter clients re-brushing the same bar, dashboards
// refreshing the same panel) return the previously executed Result without
// re-running. Keys are derived from plan.Fingerprint, which embeds relation
// identity (pointer + row count), so re-ingesting a table silently retires
// every entry that scanned the old data — stale keys can never be asked for
// again and age out of the LRU.
//
// Cached Results are shared, which is sound because an executed Result is
// immutable: traces and consuming queries only read its output relation and
// captured indexes.
type resultCache struct {
	mu       sync.Mutex
	max      int
	maxBytes int64 // <= 0 means no byte budget
	bytes    int64 // summed MemBytes of cached Results
	m        map[string]*list.Element
	l        *list.List // front = most recently used
}

type cacheEntry struct {
	key   string
	res   *core.Result
	bytes int64
}

func newResultCache(max int, maxBytes int64) *resultCache {
	return &resultCache{max: max, maxBytes: maxBytes, m: map[string]*list.Element{}, l: list.New()}
}

// get returns the cached Result for key, refreshing its LRU position.
func (c *resultCache) get(key string) (*core.Result, bool) {
	if c == nil || key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.l.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores res under key, evicting LRU entries past the entry cap or the
// byte budget. Entries are charged their Result.MemBytes (output relation +
// capture indexes) — the cache pins whole Results, so an entry-count bound
// alone would let a distinct-query workload pin unbounded memory. A single
// result larger than the whole budget is simply not cached.
func (c *resultCache) put(key string, res *core.Result) {
	if c == nil || key == "" || c.max <= 0 {
		return
	}
	sz := res.MemBytes()
	if c.maxBytes > 0 && sz > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		ce := el.Value.(*cacheEntry)
		c.bytes += sz - ce.bytes
		ce.res, ce.bytes = res, sz
		c.l.MoveToFront(el)
	} else {
		c.m[key] = c.l.PushFront(&cacheEntry{key: key, res: res, bytes: sz})
		c.bytes += sz
	}
	for c.l.Len() > c.max || (c.maxBytes > 0 && c.bytes > c.maxBytes && c.l.Len() > 1) {
		back := c.l.Back()
		ce := back.Value.(*cacheEntry)
		c.l.Remove(back)
		delete(c.m, ce.key)
		c.bytes -= ce.bytes
	}
}

// len reports the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l.Len()
}

// cacheKey hashes everything that distinguishes two executions of a plan:
// the plan fingerprint (shape + data identity + trace seeds), the capture
// options, and the bound parameter values in canonical order. Parameter
// serialization is typed and quoted — {"x":"5"} and {"x":5} must not
// collide, and a string value containing the separator must not alias a
// different parameter set.
func cacheKey(fingerprint string, opts core.CaptureOptions) string {
	var b strings.Builder
	b.WriteString(fingerprint)
	fmt.Fprintf(&b, "|mode=%d|dirs=%d|compress=%t|strategy=%d", opts.Mode, opts.Dirs, opts.Compress, opts.Strategy)
	if len(opts.Params) > 0 {
		keys := make([]string, 0, len(opts.Params))
		for k := range opts.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch v := opts.Params[k].(type) {
			case string:
				fmt.Fprintf(&b, "|p:%q=s:%q", k, v)
			case int64:
				fmt.Fprintf(&b, "|p:%q=i:%d", k, v)
			case float64:
				fmt.Fprintf(&b, "|p:%q=f:%x", k, v)
			case bool:
				fmt.Fprintf(&b, "|p:%q=b:%t", k, v)
			default:
				fmt.Fprintf(&b, "|p:%q=%T:%v", k, v, v)
			}
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// paramsFromJSON converts wire parameters to expression parameters. Numbers
// arrive as json.Number; integral values bind as int64 (so :cutoff compares
// against int columns), everything else as float64.
func paramsFromJSON(in map[string]any) (expr.Params, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := expr.Params{}
	for k, v := range in {
		switch n := v.(type) {
		case string, bool:
			out[k] = n
		default:
			if i, err := jsonInt(v); err == nil {
				if f, ferr := jsonFloat(v); ferr == nil && float64(i) != f {
					out[k] = f // non-integral number
				} else {
					out[k] = i
				}
				continue
			}
			f, err := jsonFloat(v)
			if err != nil {
				return nil, serr.New(serr.Invalid, "server: parameter %q: %v", k, err)
			}
			out[k] = f
		}
	}
	return out, nil
}

// gate is the bounded admission controller: at most inflight requests
// execute concurrently (sharing the DB's worker pool fairly), at most queued
// more wait for a slot, and everything beyond that is turned away
// immediately with Busy (HTTP 429) instead of piling onto the heap. Waiters
// that give up (client disconnect, server shutdown) leave the queue.
type gate struct {
	slots chan struct{} // capacity = inflight
	queue chan struct{} // capacity = inflight + queued
}

func newGate(inflight, queued int) *gate {
	return &gate{
		slots: make(chan struct{}, inflight),
		queue: make(chan struct{}, inflight+queued),
	}
}

// enter claims an execution slot or fails fast. Callers must pair a nil
// return with exit().
func (g *gate) enter(ctx context.Context) error {
	select {
	case g.queue <- struct{}{}:
	default:
		return serr.New(serr.Busy, "server: admission queue full (%d executing + waiting); retry", cap(g.queue))
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-g.queue
		return serr.New(serr.Busy, "server: request abandoned while queued: %v", ctx.Err())
	}
}

// exit releases the slot claimed by enter.
func (g *gate) exit() {
	<-g.slots
	<-g.queue
}
