package server

import (
	"sync"

	"smoke/internal/core"
)

// flushOp discriminates flusher jobs.
type flushOp int

const (
	opPut flushOp = iota
	opDeleteResult
	opDeleteSession
)

// flushJob is one unit of disk-tier work: a segment write (opPut) or a
// manifest delete. Put jobs carry the registry's ticket (seq); the flusher
// re-checks it immediately before writing, so a drop or overwrite that
// happened while the job sat in the queue cancels the stale write.
type flushJob struct {
	op   flushOp
	sid  string
	name string
	res  *core.Result // opPut only; projected to disk shape at write time
	seq  uint64       // opPut only
}

// flushQueueCap bounds admission to the flusher. Saturation never blocks a
// request handler: a write-behind put is simply skipped (it retries at
// demotion time), a demotion declines and the result stays resident, and
// deletes — which must not be lost, they invalidate prior puts — enqueue
// with force.
const flushQueueCap = 1024

// flusher owns every disk-tier mutation the registry makes: one goroutine
// drains a double-buffered FIFO queue of put/delete jobs and publishes the
// manifest once per drained batch (write-behind durability at batch
// granularity). Double-buffering is literal: the run loop swaps the whole
// pending slice out under the lock, so producers append to a fresh buffer
// while the previous batch's segment write overlaps their request
// processing.
//
// Lock order is registry.mu → flusher.mu, never the reverse: the registry
// enqueues while holding its mutex, and the flusher invokes the registry
// callbacks (shouldFlush, onPutDone, onPublish) holding no flusher lock.
type flusher struct {
	// Callbacks into the registry; all may take registry.mu.
	shouldFlush func(flushJob) bool
	onPutDone   func(flushJob, int64, error)
	onPublish   func(error)

	store resultStore

	mu      sync.Mutex
	cond    *sync.Cond
	pending []flushJob
	active  int // jobs swapped out of pending, not yet published
	stopped bool
	done    chan struct{}
}

func newFlusher(store resultStore) *flusher {
	f := &flusher{store: store, done: make(chan struct{})}
	f.cond = sync.NewCond(&f.mu)
	return f
}

func (f *flusher) start() { go f.run() }

// enqueue adds a job in FIFO order. force bypasses the cap (deletes,
// shutdown flush). Returns false when the queue is saturated (non-force) or
// the flusher is stopped.
func (f *flusher) enqueue(job flushJob, force bool) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stopped {
		return false
	}
	if !force && len(f.pending)+f.active >= flushQueueCap {
		return false
	}
	f.pending = append(f.pending, job)
	f.cond.Broadcast()
	return true
}

// queueDepth reports queued plus in-flight jobs.
func (f *flusher) queueDepth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pending) + f.active
}

// drain blocks until every job enqueued so far is executed and its batch
// published — after drain, everything previously accepted is durable (or
// its error was reported through the callbacks).
func (f *flusher) drain() {
	f.mu.Lock()
	for len(f.pending) > 0 || f.active > 0 {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// stop drains the queue and terminates the goroutine. Safe to call twice;
// enqueues after stop fail.
func (f *flusher) stop() {
	f.mu.Lock()
	if !f.stopped {
		f.stopped = true
		f.cond.Broadcast()
	}
	f.mu.Unlock()
	<-f.done
}

// run is the flusher goroutine: swap the whole pending queue out under the
// lock, execute the batch unlocked, publish the manifest once for the batch,
// then mark the batch done (drain waiters wake only after the publish, so
// "queue empty" implies "durable").
func (f *flusher) run() {
	for {
		f.mu.Lock()
		for len(f.pending) == 0 && !f.stopped {
			f.cond.Wait()
		}
		if len(f.pending) == 0 && f.stopped {
			f.mu.Unlock()
			close(f.done)
			return
		}
		batch := f.pending
		f.pending = nil
		f.active = len(batch)
		f.mu.Unlock()

		mutated := false
		for _, job := range batch {
			if f.exec(job) {
				mutated = true
			}
		}
		if mutated {
			err := f.store.Publish()
			if f.onPublish != nil {
				f.onPublish(err)
			}
		}

		f.mu.Lock()
		f.active = 0
		f.cond.Broadcast()
		f.mu.Unlock()
	}
}

// exec runs one job and reports whether it mutated the manifest.
func (f *flusher) exec(job flushJob) bool {
	switch job.op {
	case opPut:
		if f.shouldFlush != nil && !f.shouldFlush(job) {
			return false // ticket went stale in the queue: dropped or overwritten
		}
		bytes, err := f.store.PutResultNoPublish(job.sid, job.name, resultToDisk(job.res))
		if f.onPutDone != nil {
			f.onPutDone(job, bytes, err)
		}
		return err == nil
	case opDeleteResult:
		return f.store.DeleteResultNoPublish(job.sid, job.name)
	case opDeleteSession:
		return f.store.DeleteSessionNoPublish(job.sid)
	}
	return false
}
