package btree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if c := tr.Min(); c.Valid() {
		t.Fatal("Min of empty tree should be invalid")
	}
	if c := tr.SeekGE(5); c.Valid() {
		t.Fatal("Seek in empty tree should be invalid")
	}
	if got := tr.Get(1, nil); got != nil {
		t.Fatalf("Get on empty = %v", got)
	}
}

func TestInsertAndGet(t *testing.T) {
	tr := New()
	tr.Insert(5, 50)
	tr.Insert(3, 30)
	tr.Insert(5, 51)
	tr.Insert(7, 70)
	tr.Insert(5, 52)
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.Get(5, nil)
	if !reflect.DeepEqual(got, []int32{50, 51, 52}) {
		t.Fatalf("Get(5) = %v; duplicates must preserve insertion order", got)
	}
	if got := tr.Get(4, nil); got != nil {
		t.Fatalf("Get(4) = %v, want nil", got)
	}
	if got := tr.Get(3, nil); !reflect.DeepEqual(got, []int32{30}) {
		t.Fatalf("Get(3) = %v", got)
	}
}

func TestCursorFullScanSorted(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	n := 5000
	keys := make([]int64, n)
	for i := 0; i < n; i++ {
		keys[i] = int64(rng.Intn(500))
		tr.Insert(keys[i], int32(i))
	}
	var scanned []int64
	for c := tr.Min(); c.Valid(); c.Next() {
		scanned = append(scanned, c.Key())
	}
	if len(scanned) != n {
		t.Fatalf("scanned %d entries, want %d", len(scanned), n)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if !reflect.DeepEqual(scanned, keys) {
		t.Fatal("cursor scan not in sorted order")
	}
}

func TestSeekSemantics(t *testing.T) {
	tr := New()
	for _, k := range []int64{10, 20, 30} {
		tr.Insert(k, int32(k))
	}
	c := tr.SeekGE(15)
	if !c.Valid() || c.Key() != 20 {
		t.Fatalf("Seek(15) at key %v", c.Key())
	}
	c = tr.SeekGE(30)
	if !c.Valid() || c.Key() != 30 {
		t.Fatalf("Seek(30) at key %v", c.Key())
	}
	c = tr.SeekGE(31)
	if c.Valid() {
		t.Fatal("Seek past max should be invalid")
	}
}

func TestAgainstMapReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		ref := map[int64][]int32{}
		n := 200 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			k := int64(rng.Intn(100))
			v := int32(rng.Intn(1 << 20))
			tr.Insert(k, v)
			ref[k] = append(ref[k], v)
		}
		for k, want := range ref {
			got := tr.Get(k, nil)
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return tr.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLargeSequentialInsert(t *testing.T) {
	tr := New()
	n := 100000
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), int32(i*2))
	}
	for _, k := range []int64{0, 1, 999, 50000, int64(n - 1)} {
		got := tr.Get(k, nil)
		if !reflect.DeepEqual(got, []int32{int32(k * 2)}) {
			t.Fatalf("Get(%d) = %v", k, got)
		}
	}
	// Verify total order and count via cursor.
	count, prev := 0, int64(-1)
	for c := tr.Min(); c.Valid(); c.Next() {
		if c.Key() < prev {
			t.Fatal("keys out of order")
		}
		prev = c.Key()
		count++
	}
	if count != n {
		t.Fatalf("cursor count = %d, want %d", count, n)
	}
}

func TestReverseInsertOrder(t *testing.T) {
	tr := New()
	for i := 9999; i >= 0; i-- {
		tr.Insert(int64(i), int32(i))
	}
	for _, k := range []int64{0, 5000, 9999} {
		if got := tr.Get(k, nil); !reflect.DeepEqual(got, []int32{int32(k)}) {
			t.Fatalf("Get(%d) = %v", k, got)
		}
	}
}

func TestGetAppendsToDst(t *testing.T) {
	tr := New()
	tr.Insert(1, 10)
	dst := []int32{99}
	got := tr.Get(1, dst)
	if !reflect.DeepEqual(got, []int32{99, 10}) {
		t.Fatalf("Get should append to dst, got %v", got)
	}
}
