// Package btree implements an in-memory B+-tree keyed by int64 with int32
// values and duplicate keys, plus ordered cursors. It stands in for
// BerkeleyDB in the Phys-Bdb baseline (§5, Appendix B): the paper stores
// lineage rid pairs in BerkeleyDB's B-tree and reads them back through
// cursors, and attributes Phys-Bdb's overhead to (a) per-edge calls into a
// separate storage subsystem and (b) B-tree reads being slower than array
// reads. Both costs are reproduced here.
package btree

import "sort"

// degree is the fan-out: nodes split when they reach 2*degree entries.
const degree = 32

type node struct {
	leaf     bool
	keys     []int64
	vals     []int32 // leaf only, parallel to keys
	children []*node // internal only, len(children) == len(keys)+1
	next     *node   // leaf chain for cursors
}

// Tree is a B+-tree mapping int64 keys to int32 values with duplicates.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Insert adds (key, val). Duplicate keys are kept; among equal keys,
// insertion order is preserved.
func (t *Tree) Insert(key int64, val int32) {
	splitKey, right := t.root.insert(key, val)
	if right != nil {
		t.root = &node{
			keys:     []int64{splitKey},
			children: []*node{t.root, right},
		}
	}
	t.size++
}

// upperBound returns the first index i in keys with keys[i] > key.
func upperBound(keys []int64, key int64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] > key })
}

// lowerBound returns the first index i in keys with keys[i] >= key.
func lowerBound(keys []int64, key int64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= key })
}

func (n *node) insert(key int64, val int32) (int64, *node) {
	if n.leaf {
		i := upperBound(n.keys, key) // append after existing duplicates
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		if len(n.keys) >= 2*degree {
			return n.splitLeaf()
		}
		return 0, nil
	}
	i := upperBound(n.keys, key)
	splitKey, right := n.children[i].insert(key, val)
	if right != nil {
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = splitKey
		n.children = append(n.children, nil)
		copy(n.children[i+2:], n.children[i+1:])
		n.children[i+1] = right
		if len(n.keys) >= 2*degree {
			return n.splitInternal()
		}
	}
	return 0, nil
}

func (n *node) splitLeaf() (int64, *node) {
	mid := len(n.keys) / 2
	right := &node{
		leaf: true,
		keys: append([]int64(nil), n.keys[mid:]...),
		vals: append([]int32(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = right
	return right.keys[0], right
}

func (n *node) splitInternal() (int64, *node) {
	mid := len(n.keys) / 2
	splitKey := n.keys[mid]
	right := &node{
		keys:     append([]int64(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return splitKey, right
}

// Cursor iterates entries in key order, BerkeleyDB-style: the Phys-Bdb
// lineage query path fetches rids through consecutive cursor calls.
type Cursor struct {
	n *node
	i int
}

// Seek positions a cursor at the first entry with key >= target.
func (t *Tree) SeekGE(target int64) Cursor {
	n := t.root
	for !n.leaf {
		// Descend with lowerBound (not upperBound): after a split in the
		// middle of a run of duplicates, entries equal to a separator may
		// live in the child to its left, and Seek must find the leftmost.
		i := lowerBound(n.keys, target)
		n = n.children[i]
	}
	i := lowerBound(n.keys, target)
	c := Cursor{n: n, i: i}
	c.skipExhausted()
	return c
}

// Min positions a cursor at the smallest entry.
func (t *Tree) Min() Cursor {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	c := Cursor{n: n, i: 0}
	c.skipExhausted()
	return c
}

func (c *Cursor) skipExhausted() {
	for c.n != nil && c.i >= len(c.n.keys) {
		c.n = c.n.next
		c.i = 0
	}
}

// Valid reports whether the cursor points at an entry.
func (c *Cursor) Valid() bool { return c.n != nil }

// Key returns the current key.
func (c *Cursor) Key() int64 { return c.n.keys[c.i] }

// Value returns the current value.
func (c *Cursor) Value() int32 { return c.n.vals[c.i] }

// Next advances the cursor, crossing leaf boundaries.
func (c *Cursor) Next() {
	c.i++
	c.skipExhausted()
}

// Get appends all values stored under key to dst via a cursor scan,
// preserving insertion order, and returns dst.
func (t *Tree) Get(key int64, dst []int32) []int32 {
	for c := t.SeekGE(key); c.Valid() && c.Key() == key; c.Next() {
		dst = append(dst, c.Value())
	}
	return dst
}
