package profiling

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"smoke/internal/physician"
	"smoke/internal/storage"
)

func smallData(t *testing.T) *storage.Relation {
	t.Helper()
	return physician.Generate(physician.Config{
		Rows: 30000, Zips: 300, Orgs: 150, ViolationRate: 0.002, Seed: 5,
	})
}

// naiveFD finds violating LHS values with plain maps.
func naiveFD(rel *storage.Relation, lhs, rhs string) map[string][]Rid {
	lc := rel.Schema.MustCol(lhs)
	rc := rel.Schema.MustCol(rhs)
	get := func(c, i int) string {
		if rel.Schema[c].Type == storage.TInt {
			return fmt.Sprintf("%d", rel.Int(c, i))
		}
		return rel.Str(c, i)
	}
	rids := map[string][]Rid{}
	vals := map[string]map[string]bool{}
	for i := 0; i < rel.N; i++ {
		a := get(lc, i)
		rids[a] = append(rids[a], Rid(i))
		if vals[a] == nil {
			vals[a] = map[string]bool{}
		}
		vals[a][get(rc, i)] = true
	}
	out := map[string][]Rid{}
	for a, set := range vals {
		if len(set) > 1 {
			out[a] = rids[a]
		}
	}
	return out
}

func checkAgainstNaive(t *testing.T, rel *storage.Relation, lhs, rhs string,
	check func(*storage.Relation, string, string) (Result, error)) {
	t.Helper()
	want := naiveFD(rel, lhs, rhs)
	got, err := check(rel, lhs, rhs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Violations) != len(want) {
		t.Fatalf("%s→%s: %d violations, want %d", lhs, rhs, len(got.Violations), len(want))
	}
	for _, v := range got.Violations {
		wantRids, ok := want[v.Value]
		if !ok {
			t.Fatalf("%s→%s: unexpected violation %q", lhs, rhs, v.Value)
		}
		gotRids := append([]Rid(nil), v.Rids...)
		sort.Slice(gotRids, func(i, j int) bool { return gotRids[i] < gotRids[j] })
		if !reflect.DeepEqual(gotRids, wantRids) {
			t.Fatalf("%s→%s: bipartite edges differ for %q", lhs, rhs, v.Value)
		}
	}
}

func TestCheckCDAllFDs(t *testing.T) {
	rel := smallData(t)
	for _, fd := range physician.FDs() {
		checkAgainstNaive(t, rel, fd[0], fd[1], CheckCD)
	}
}

func TestCheckUGAllFDs(t *testing.T) {
	rel := smallData(t)
	for _, fd := range physician.FDs() {
		checkAgainstNaive(t, rel, fd[0], fd[1], CheckUG)
	}
}

func TestCheckMetanomeUGAllFDs(t *testing.T) {
	rel := smallData(t)
	for _, fd := range physician.FDs() {
		checkAgainstNaive(t, rel, fd[0], fd[1], CheckMetanomeUG)
	}
}

func TestViolationsActuallyInjected(t *testing.T) {
	rel := smallData(t)
	total := 0
	for _, fd := range physician.FDs() {
		res, err := CheckCD(rel, fd[0], fd[1])
		if err != nil {
			t.Fatal(err)
		}
		total += len(res.Violations)
	}
	if total == 0 {
		t.Fatal("generator injected no detectable violations")
	}
}

func TestCleanDataHasNoViolations(t *testing.T) {
	rel := physician.Generate(physician.Config{
		Rows: 5000, Zips: 100, Orgs: 50, ViolationRate: 0, Seed: 2,
	})
	for _, fd := range physician.FDs() {
		res, err := CheckUG(rel, fd[0], fd[1])
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("%v: clean data reported %d violations", fd, len(res.Violations))
		}
	}
}

func TestBipartiteGraphShape(t *testing.T) {
	rel := smallData(t)
	res, err := CheckCD(rel, "Zip", "State")
	if err != nil {
		t.Fatal(err)
	}
	zc := rel.Schema.MustCol("Zip")
	for _, v := range res.Violations {
		if len(v.Rids) < 2 {
			t.Fatalf("violation %q has %d tuples; needs ≥2 to disagree", v.Value, len(v.Rids))
		}
		for _, rid := range v.Rids {
			if rel.Str(zc, int(rid)) != v.Value {
				t.Fatalf("violation %q edge points at tuple with different zip", v.Value)
			}
		}
	}
}

func TestErrors(t *testing.T) {
	rel := smallData(t)
	if _, err := CheckCD(rel, "nope", "State"); err == nil {
		t.Error("unknown lhs should error")
	}
	if _, err := CheckMetanomeUG(rel, "Zip", "nope"); err == nil {
		t.Error("unknown rhs should error")
	}
}
