// Package profiling implements the paper's data-profiling application
// (§6.5.2): given a functional dependency A → B over a table T, find the
// distinct values a ∈ A that violate the FD and build the bipartite graph
// connecting each violation to the tuples {t ∈ T | t.A = a}. Three
// implementations are compared in Figure 15:
//
//   - Smoke-CD: one aggregation query — SELECT A FROM T GROUP BY A HAVING
//     COUNT(DISTINCT B) > 1 — whose backward/forward lineage indexes *are*
//     the bipartite graph.
//   - Smoke-UG: UGuide's algorithm in lineage terms — distinct A and
//     distinct B queries with captured lineage; a value a violates the FD
//     when the forward trace of its backward lineage reaches more than one
//     distinct B value.
//   - Metanome-UG: the UG algorithm under Metanome's constraints — every
//     attribute handled as a string and every lineage edge emitted through a
//     dynamic dispatch (the virtual-call and data-model costs the paper
//     identifies; JVM overhead is out of scope, see DESIGN.md).
//
// The Smoke variants run their base queries through the engine's plan layer
// (core.DB → optimize → exec.RunPlan) and read the captured indexes through
// the lineage-consuming query surface, so the profiling experiment exercises
// the same end-to-end path as interactive applications.
package profiling

import (
	"fmt"

	"smoke/internal/baselines"
	"smoke/internal/core"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// Rid aliases the record id type.
type Rid = lineage.Rid

// Violation is one violating LHS value with the tuples responsible for it —
// one edge set of the bipartite graph.
type Violation struct {
	// Value is the violating A value rendered as a string (NPIs print as
	// integers).
	Value string
	// Rids are the tuples t with t.A = Value.
	Rids []Rid
}

// Result is the outcome of one FD check.
type Result struct {
	FD         [2]string
	Violations []Violation
}

// CheckCD implements Smoke-CD: the COUNT(DISTINCT) rewrite with Inject
// capture, run as an engine query through the plan layer; the lineage
// indexes of the violating groups — read through the consuming-query
// surface — form the graph.
func CheckCD(rel *storage.Relation, lhs, rhs string) (Result, error) {
	db := core.Open()
	db.Register(rel)
	res, err := db.Query().From(rel.Name, nil).
		GroupBy(lhs).
		Agg(ops.CountDistinct, expr.C(rhs), "cd").
		Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		return Result{}, err
	}
	bw, err := res.Capture().BackwardIndex(rel.Name)
	if err != nil {
		return Result{}, err
	}
	out := Result{FD: [2]string{lhs, rhs}}
	cd := res.Out.Schema.MustCol("cd")
	for o := 0; o < res.Out.N; o++ {
		if res.Out.Int(cd, o) > 1 {
			out.Violations = append(out.Violations, Violation{
				Value: renderKey(res.Out, 0, o),
				Rids:  bw.TraceOne(Rid(o), nil),
			})
		}
	}
	return out, nil
}

// CheckUG implements Smoke-UG: build lineage-indexed distinct-value queries
// for A and B once (both through the plan layer), then decide each a by
// tracing backward to T and forward into the B groups.
func CheckUG(rel *storage.Relation, lhs, rhs string) (Result, error) {
	db := core.Open()
	db.Register(rel)
	aRes, err := db.Query().From(rel.Name, nil).
		GroupBy(lhs).Agg(ops.Count, nil, "c").
		Run(core.CaptureOptions{Mode: ops.Inject, Dirs: ops.CaptureBackward})
	if err != nil {
		return Result{}, err
	}
	bRes, err := db.Query().From(rel.Name, nil).
		GroupBy(rhs).Agg(ops.Count, nil, "c").
		Run(core.CaptureOptions{Mode: ops.Inject, Dirs: ops.CaptureForward})
	if err != nil {
		return Result{}, err
	}
	aBW, err := aRes.Capture().BackwardIndex(rel.Name)
	if err != nil {
		return Result{}, err
	}
	bFWIx, err := bRes.Capture().ForwardIndex(rel.Name)
	if err != nil {
		return Result{}, err
	}
	bFW := bFWIx.DenseForward(rel.N)
	out := Result{FD: [2]string{lhs, rhs}}
	seen := map[Rid]bool{}
	var rids []Rid
	for o := 0; o < aRes.Out.N; o++ {
		rids = aBW.TraceOne(Rid(o), rids[:0])
		// Forward trace into B's groups; >1 distinct group = violation.
		for k := range seen {
			delete(seen, k)
		}
		distinct := 0
		for _, rid := range rids {
			g := bFW[rid]
			if !seen[g] {
				seen[g] = true
				distinct++
				if distinct > 1 {
					break
				}
			}
		}
		if distinct > 1 {
			out.Violations = append(out.Violations, Violation{
				Value: renderKey(aRes.Out, 0, o),
				Rids:  append([]Rid(nil), rids...),
			})
		}
	}
	return out, nil
}

// CheckMetanomeUG implements the Metanome-UG simulation: the UG algorithm
// with (a) all attribute values handled as strings — integer columns are
// stringified first, reproducing Metanome's data model penalty on NPI — and
// (b) per-edge capture through the EdgeSink dynamic dispatch.
func CheckMetanomeUG(rel *storage.Relation, lhs, rhs string) (Result, error) {
	lhsVals, err := stringColumn(rel, lhs)
	if err != nil {
		return Result{}, err
	}
	rhsVals, err := stringColumn(rel, rhs)
	if err != nil {
		return Result{}, err
	}

	// Distinct-A with lineage through the virtual-call sink.
	aSink := baselines.NewMemSink(rel.N)
	aGroups := stringDistinct(lhsVals, aSink)
	// Distinct-B likewise; only the forward side is consumed.
	bSink := baselines.NewMemSink(rel.N)
	stringDistinct(rhsVals, bSink)

	out := Result{FD: [2]string{lhs, rhs}}
	seen := map[Rid]bool{}
	for o, rids := range aSink.BW {
		for k := range seen {
			delete(seen, k)
		}
		distinct := 0
		for _, rid := range rids {
			g := bSink.FW[rid]
			if !seen[g] {
				seen[g] = true
				distinct++
				if distinct > 1 {
					break
				}
			}
		}
		if distinct > 1 {
			out.Violations = append(out.Violations, Violation{Value: aGroups[o], Rids: rids})
		}
	}
	return out, nil
}

// stringDistinct groups rows by a string value, emitting one lineage edge per
// row through the sink (dynamic dispatch per edge).
func stringDistinct(vals []string, sink baselines.EdgeSink) []string {
	slots := map[string]int32{}
	var keys []string
	for rid, v := range vals {
		slot, ok := slots[v]
		if !ok {
			slot = int32(len(keys))
			slots[v] = slot
			keys = append(keys, v)
		}
		sink.Emit(slot, Rid(rid))
	}
	return keys
}

// stringColumn renders any column as strings (Metanome's model).
func stringColumn(rel *storage.Relation, name string) ([]string, error) {
	c := rel.Schema.Col(name)
	if c < 0 {
		return nil, fmt.Errorf("profiling: unknown column %q", name)
	}
	switch rel.Schema[c].Type {
	case storage.TString:
		return rel.Cols[c].Strs, nil
	case storage.TInt:
		out := make([]string, rel.N)
		for i, v := range rel.Cols[c].Ints {
			out[i] = fmt.Sprintf("%d", v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("profiling: column %q has unsupported type", name)
	}
}

func renderKey(out *storage.Relation, col, row int) string {
	switch out.Schema[col].Type {
	case storage.TInt:
		return fmt.Sprintf("%d", out.Int(col, row))
	case storage.TString:
		return out.Str(col, row)
	default:
		return fmt.Sprintf("%v", out.Value(col, row))
	}
}
