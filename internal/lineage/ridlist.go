// Package lineage implements the paper's lineage index representations
// (§3.1): rid arrays for 1-to-1 operator relationships and rid indexes
// (inverted indexes of rid arrays) for 1-to-N relationships, plus partitioned
// indexes for the data-skipping optimization (§4.2), index composition for
// multi-operator propagation (§3.3), and the Capture container that maps a
// query's output to its per-base-relation backward and forward indexes.
package lineage

// Rid is a record id: the position of a record within its relation.
// 32 bits halves index memory traffic relative to int; every workload in the
// paper (up to 123.5M records) fits comfortably.
type Rid = int32

// Growth policy (§3.1, following folly::fbvector): rid arrays are initialized
// to 10 elements and grow by 1.5× on overflow. Array resizing dominates
// lineage capture cost, which is why cardinality statistics that preallocate
// exact sizes reduce overhead by up to 60% in the paper; the explicit policy
// here preserves that effect.
const (
	initialCap   = 10
	growthFactor = 1.5
)

// AppendRid appends r to s under the paper's growth policy and returns the
// (possibly reallocated) slice. It deliberately bypasses Go's built-in append
// growth so that preallocation experiments measure the same resizing behavior
// the paper describes.
func AppendRid(s []Rid, r Rid) []Rid {
	if len(s) == cap(s) {
		s = grow(s)
	}
	return append(s, r)
}

func grow(s []Rid) []Rid {
	newCap := initialCap
	if c := cap(s); c > 0 {
		newCap = c + c/2 // 1.5x
		if newCap == c {
			newCap = c + 1
		}
	}
	ns := make([]Rid, len(s), newCap)
	copy(ns, s)
	return ns
}
