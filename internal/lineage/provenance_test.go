package lineage

import (
	"reflect"
	"strings"
	"testing"
)

// appendix-E fixture: the paper's example query
//
//	SELECT COUNT(*), A.cname, B.pname FROM A, B WHERE A.cid = B.cid
//	GROUP BY A.cname, B.pname
//
// with A = {a1:(1,Bob), a2:(2,Alice)} and B = {b1:(1,iPhone), b2:(1,iPhone),
// b3:(2,XBox)}. Output o1=(2,Bob,iPhone) derives from (a1,b1) and (a1,b2);
// o2=(1,Alice,XBox) from (a2,b3).
func appendixEFixture() *Capture {
	c := NewCapture()
	aBW := NewRidIndex(2)
	aBW.Append(0, 0) // o1 <- a1 (twice: once per join row)
	aBW.Append(0, 0)
	aBW.Append(1, 1) // o2 <- a2
	bBW := NewRidIndex(2)
	bBW.Append(0, 0) // o1 <- b1
	bBW.Append(0, 1) // o1 <- b2
	bBW.Append(1, 2) // o2 <- b3
	c.SetBackward("A", NewOneToMany(aBW))
	c.SetBackward("B", NewOneToMany(bBW))
	return c
}

func TestWhyProvenance(t *testing.T) {
	c := appendixEFixture()
	ws, err := c.WhyProvenance([]string{"A", "B"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Witness{{0, 0}, {0, 1}} // {(a1,b1), (a1,b2)}
	if !reflect.DeepEqual(ws, want) {
		t.Fatalf("why(o1) = %v, want %v", ws, want)
	}
	ws, err = c.WhyProvenance([]string{"A", "B"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ws, []Witness{{1, 2}}) {
		t.Fatalf("why(o2) = %v", ws)
	}
}

func TestWhichProvenance(t *testing.T) {
	c := appendixEFixture()
	which, err := c.WhichProvenance([]string{"A", "B"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// which(o1) = {a1} ∪ {b1, b2}: the duplicate a1 collapses.
	if !reflect.DeepEqual(which["A"], []Rid{0}) {
		t.Fatalf("which(o1).A = %v", which["A"])
	}
	if !reflect.DeepEqual(which["B"], []Rid{0, 1}) {
		t.Fatalf("which(o1).B = %v", which["B"])
	}
}

func TestHowProvenance(t *testing.T) {
	c := appendixEFixture()
	// how(o1) = a1·b1 + a1·b2
	how, err := c.HowProvenance([]string{"A", "B"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if how != "A[0]*B[0] + A[0]*B[1]" {
		t.Fatalf("how(o1) = %q", how)
	}
	how, err = c.HowProvenance([]string{"A", "B"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if how != "A[1]*B[2]" {
		t.Fatalf("how(o2) = %q", how)
	}
}

func TestHowProvenanceCoefficients(t *testing.T) {
	// A witness appearing twice accumulates an ℕ coefficient.
	c := NewCapture()
	aBW := NewRidIndex(1)
	aBW.Append(0, 5)
	aBW.Append(0, 5)
	c.SetBackward("A", NewOneToMany(aBW))
	how, err := c.HowProvenance([]string{"A"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if how != "2*A[5]" {
		t.Fatalf("how = %q", how)
	}
}

func TestWhyProvenanceErrors(t *testing.T) {
	c := appendixEFixture()
	if _, err := c.WhyProvenance([]string{"A", "missing"}, 0); err == nil {
		t.Error("missing relation should error")
	}
	// Misaligned lists (different derivation counts) must be rejected.
	bad := NewCapture()
	x := NewRidIndex(1)
	x.Append(0, 0)
	y := NewRidIndex(1)
	y.Append(0, 0)
	y.Append(0, 1)
	bad.SetBackward("X", NewOneToMany(x))
	bad.SetBackward("Y", NewOneToMany(y))
	if _, err := bad.WhyProvenance([]string{"X", "Y"}, 0); err == nil ||
		!strings.Contains(err.Error(), "aligned") {
		t.Errorf("misaligned lists should error, got %v", err)
	}
}
