package lineage

import "smoke/internal/serr"

// Persistence seam for the encoded representations. The disk tier
// (internal/diskstore) stores an encoded index exactly as it sits in memory —
// the offset directory and the chunk payload — so a segment loads by wrapping
// mmap-backed slices with FromParts and every cursor (EncCursor, ArrCursor,
// TraceInSitu) iterates the mapped bytes directly. Nothing decodes on load;
// the first trace faults in only the pages its seed lists touch.

// Parts exposes the encoded index's physical representation: the n+1-entry
// offset directory, the chunk payload, and the total cardinality. The slices
// are the index's own storage — callers must treat them as read-only.
func (e *EncodedIndex) Parts() (offs []uint32, data []byte, card int) {
	return e.offs, e.data, e.card
}

// EncodedIndexFromParts reassembles an EncodedIndex around externally owned
// storage (typically slices aliasing mmap-backed bytes). Only the offset
// directory is validated — offsets must start at zero, be non-decreasing, and
// end exactly at len(data) — because a broken directory would index data out
// of bounds, while broken chunk bytes are caught by the segment checksums.
func EncodedIndexFromParts(offs []uint32, data []byte, card int) (*EncodedIndex, error) {
	if len(offs) == 0 {
		return nil, serr.New(serr.Internal, "lineage: encoded index has an empty offset directory")
	}
	if offs[0] != 0 {
		return nil, serr.New(serr.Internal, "lineage: encoded index directory starts at %d, want 0", offs[0])
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return nil, serr.New(serr.Internal, "lineage: encoded index directory decreases at entry %d", i)
		}
	}
	if got := int(offs[len(offs)-1]); got != len(data) {
		return nil, serr.New(serr.Internal, "lineage: encoded index directory ends at %d, payload is %d bytes", got, len(data))
	}
	if card < 0 {
		return nil, serr.New(serr.Internal, "lineage: encoded index cardinality %d is negative", card)
	}
	return &EncodedIndex{offs: offs, data: data, card: card}, nil
}

// Parts exposes the run directory of the encoded array: entry count, run
// starts, run values, and the sequential/constant flag per run. The slices
// are the array's own storage — callers must treat them as read-only.
func (e *EncodedArr) Parts() (n int, starts []int32, vals []Rid, seq []bool) {
	return e.n, e.starts, e.vals, e.seq
}

// EncodedArrFromParts reassembles an EncodedArr around externally owned
// storage. The run directory is validated: the three slices must be the same
// non-zero length, starts must begin at 0 and strictly increase, and every
// start must fall inside [0, n) — Get binary-searches this directory, so a
// malformed one would misresolve or crash every probe.
func EncodedArrFromParts(n int, starts []int32, vals []Rid, seq []bool) (*EncodedArr, error) {
	if n <= 0 {
		return nil, serr.New(serr.Internal, "lineage: encoded array has %d entries", n)
	}
	if len(starts) == 0 || len(starts) != len(vals) || len(starts) != len(seq) {
		return nil, serr.New(serr.Internal, "lineage: encoded array run directory is ragged (%d starts, %d vals, %d flags)",
			len(starts), len(vals), len(seq))
	}
	if starts[0] != 0 {
		return nil, serr.New(serr.Internal, "lineage: encoded array first run starts at %d, want 0", starts[0])
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			return nil, serr.New(serr.Internal, "lineage: encoded array run starts not strictly increasing at run %d", i)
		}
	}
	if int(starts[len(starts)-1]) >= n {
		return nil, serr.New(serr.Internal, "lineage: encoded array run start %d past entry count %d", starts[len(starts)-1], n)
	}
	return &EncodedArr{n: n, starts: starts, vals: vals, seq: seq}, nil
}

// CheckSeeds validates trace seeds against the index's entry count. Out-of-
// range or negative seeds would index the offset directory (or rid array)
// unchecked and panic deep inside a cursor, so every trace boundary — the
// Capture query methods and the exec trace operator — rejects them up front
// as a structured Invalid error (HTTP 400), not a handler panic (500).
func (ix *Index) CheckSeeds(src []Rid) error {
	n := Rid(ix.Len())
	for _, r := range src {
		if r < 0 || r >= n {
			return serr.New(serr.Invalid, "lineage: trace seed rid %d out of range [0, %d)", r, n)
		}
	}
	return nil
}
