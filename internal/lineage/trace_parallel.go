package lineage

import "smoke/internal/pool"

// ParTrace is the morsel-parallel rid-list expansion behind the physical
// trace operator: it evaluates ix.Trace(src) by splitting the seed set into
// contiguous partitions, expanding each partition's rid lists into a
// partition-local buffer on the worker pool, and concatenating the buffers in
// partition order. Because Trace is a per-seed concatenation, the result is
// element-for-element identical to the serial call — duplicates (repeated
// seeds, transformational semantics) included. Encoded indexes decode their
// touched entries in place, per partition.
//
// workers <= 1 (or a tiny seed set) falls through to the serial Trace.
func ParTrace(ix *Index, src []Rid, workers int, pl *pool.Pool) []Rid {
	if workers <= 1 || len(src) < 2 {
		return ix.Trace(src)
	}
	ranges := pool.Split(len(src), workers)
	locals := make([][]Rid, len(ranges))
	pl.RunSplit(ranges, func(part, lo, hi int) {
		// Each partition routes through the serial Trace so it inherits the
		// cursor specializations (exact-sized EncodedMany expansion,
		// ArrCursor sequential probes).
		locals[part] = ix.Trace(src[lo:hi])
	})
	total := 0
	for _, l := range locals {
		total += len(l)
	}
	out := make([]Rid, 0, total)
	for _, l := range locals {
		out = append(out, l...)
	}
	return out
}

// ParTraceInSitu is the morsel-parallel form of EncodedIndex.TraceInSitu:
// each partition concatenates its seeds' chunk bytes into a local buffer and
// the merge concatenates the buffers in partition order — byte-identical to
// the serial in-situ trace, and the trace never decodes a chunk.
func ParTraceInSitu(e *EncodedIndex, src []Rid, workers int, pl *pool.Pool) EncodedList {
	if workers <= 1 || len(src) < 2 {
		return e.TraceInSitu(src)
	}
	ranges := pool.Split(len(src), workers)
	locals := make([]EncodedList, len(ranges))
	pl.RunSplit(ranges, func(part, lo, hi int) {
		locals[part] = e.TraceInSitu(src[lo:hi])
	})
	total := 0
	n := 0
	for _, l := range locals {
		total += len(l.Data)
		n += l.N
	}
	data := make([]byte, 0, total)
	for _, l := range locals {
		data = append(data, l.Data...)
	}
	return EncodedList{Data: data, N: n}
}

// ParTraceFiltered is ParTrace with a per-rid keep predicate applied during
// expansion (the trace operator's pushed-down consuming filter): traced rids
// failing keep are dropped before any materialization, preserving the order
// of the survivors. A nil keep is equivalent to ParTrace.
func ParTraceFiltered(ix *Index, src []Rid, keep func(Rid) bool, workers int, pl *pool.Pool) []Rid {
	if keep == nil {
		return ParTrace(ix, src, workers, pl)
	}
	if workers <= 1 || len(src) < 2 {
		out := ix.Trace(src)
		kept := out[:0]
		for _, r := range out {
			if keep(r) {
				kept = append(kept, r)
			}
		}
		return kept
	}
	ranges := pool.Split(len(src), workers)
	locals := make([][]Rid, len(ranges))
	pl.RunSplit(ranges, func(part, lo, hi int) {
		one := ix.seqTracer() // partition-local cursor state
		var buf, dst []Rid
		for _, s := range src[lo:hi] {
			buf = one(s, buf[:0])
			for _, r := range buf {
				if keep(r) {
					dst = append(dst, r)
				}
			}
		}
		locals[part] = dst
	})
	total := 0
	for _, l := range locals {
		total += len(l)
	}
	out := make([]Rid, 0, total)
	for _, l := range locals {
		out = append(out, l...)
	}
	return out
}
