package lineage

import "smoke/internal/pool"

// ParTrace is the morsel-parallel rid-list expansion behind the physical
// trace operator: it evaluates ix.Trace(src) by splitting the seed set into
// contiguous partitions, expanding each partition's rid lists into a
// partition-local buffer on the worker pool, and concatenating the buffers in
// partition order. Because Trace is a per-seed concatenation, the result is
// element-for-element identical to the serial call — duplicates (repeated
// seeds, transformational semantics) included. Encoded indexes decode their
// touched entries in place, per partition.
//
// workers <= 1 (or a tiny seed set) falls through to the serial Trace.
func ParTrace(ix *Index, src []Rid, workers int, pl *pool.Pool) []Rid {
	if workers <= 1 || len(src) < 2 {
		return ix.Trace(src)
	}
	ranges := pool.Split(len(src), workers)
	locals := make([][]Rid, len(ranges))
	pl.RunSplit(ranges, func(part, lo, hi int) {
		var dst []Rid
		for _, s := range src[lo:hi] {
			dst = ix.TraceOne(s, dst)
		}
		locals[part] = dst
	})
	total := 0
	for _, l := range locals {
		total += len(l)
	}
	out := make([]Rid, 0, total)
	for _, l := range locals {
		out = append(out, l...)
	}
	return out
}

// ParTraceFiltered is ParTrace with a per-rid keep predicate applied during
// expansion (the trace operator's pushed-down consuming filter): traced rids
// failing keep are dropped before any materialization, preserving the order
// of the survivors. A nil keep is equivalent to ParTrace.
func ParTraceFiltered(ix *Index, src []Rid, keep func(Rid) bool, workers int, pl *pool.Pool) []Rid {
	if keep == nil {
		return ParTrace(ix, src, workers, pl)
	}
	if workers <= 1 || len(src) < 2 {
		out := ix.Trace(src)
		kept := out[:0]
		for _, r := range out {
			if keep(r) {
				kept = append(kept, r)
			}
		}
		return kept
	}
	ranges := pool.Split(len(src), workers)
	locals := make([][]Rid, len(ranges))
	pl.RunSplit(ranges, func(part, lo, hi int) {
		var buf, dst []Rid
		for _, s := range src[lo:hi] {
			buf = ix.TraceOne(s, buf[:0])
			for _, r := range buf {
				if keep(r) {
					dst = append(dst, r)
				}
			}
		}
		locals[part] = dst
	})
	total := 0
	for _, l := range locals {
		total += len(l)
	}
	out := make([]Rid, 0, total)
	for _, l := range locals {
		out = append(out, l...)
	}
	return out
}
