package lineage

import "testing"

// Ablation: the paper attributes most capture cost to rid-array resizing.
// These benchmarks compare the explicit 10→×1.5 growth policy, exact
// preallocation (cardinality statistics), and Go's native append growth.

func BenchmarkAppendRidGrowthPolicy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s []Rid
		for r := Rid(0); r < 10000; r++ {
			s = AppendRid(s, r)
		}
	}
}

func BenchmarkAppendRidPreallocated(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := make([]Rid, 0, 10000)
		for r := Rid(0); r < 10000; r++ {
			s = AppendRid(s, r)
		}
	}
}

func BenchmarkAppendNative(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s []Rid
		for r := Rid(0); r < 10000; r++ {
			s = append(s, r)
		}
	}
}

func BenchmarkRidIndexAppendSkewed(b *testing.B) {
	// 1000 groups, zipf-ish sizes: group g receives 10000/(g+1) rids.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix := NewRidIndex(1000)
		for g := 0; g < 1000; g++ {
			n := 10000 / (g + 1)
			for r := 0; r < n; r++ {
				ix.Append(g, Rid(r))
			}
		}
	}
}

func BenchmarkComposeOneToOneChain(b *testing.B) {
	n := 100000
	a := make([]Rid, n)
	c := make([]Rid, n)
	for i := range a {
		a[i] = Rid((i * 7) % n)
		c[i] = Rid((i * 13) % n)
	}
	outer, inner := NewOneToOne(a), NewOneToOne(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compose(outer, inner)
	}
}
