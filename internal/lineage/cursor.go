package lineage

// Chunk-cursor access to encoded lineage. This is the backend seam the trace
// kernels share: an encoded rid list is a sequence of self-contained chunks
// (see encoded.go), and a ChunkCursor walks them one at a time exposing
// count, bounds, and expansion — without ever materializing the whole list.
// Three trace strategies build on it:
//
//   - Expansion (EncodedIndex.AppendList): each chunk pre-grows the output
//     by its exact count and fills it with indexed writes — no per-element
//     append, no growth checks in the inner loop.
//   - In-situ trace (TraceInSitu / ParTraceInSitu): because chunks are
//     self-contained, the backward trace of a seed set is the byte
//     concatenation of the seeds' chunk bytes. The result stays encoded
//     (EncodedList) and moves ~1–2 bytes per rid instead of decoding and
//     copying 4 — on dense lineage the encoded trace beats the raw one.
//   - In-situ intersection (IntersectEncoded): chunk pairs dispatch on their
//     encodings — range∩range is O(1) overlap arithmetic, bitmap∩bitmap is a
//     byte-wise AND — and only mismatched pairs fall back to expand-and-merge
//     over pooled scratch.

import (
	"encoding/binary"
	"math/bits"

	"smoke/internal/scratch"
)

// Chunk is one parsed chunk of an encoded list.
type Chunk struct {
	Tag   byte
	N     int // element count
	Start Rid // first rid (range/RLE start, bitmap base, first raw/delta element)
	// Payload is the per-kind body: raw = 4·N little-endian rids (including
	// the first), delta = the N-1 zigzag varints after the first value, RLE =
	// the run/gap varint stream, bitmap = the bitmap bytes, range = empty.
	Payload []byte
	// rawRids carries an in-memory list through the Chunk shape (RawCursor);
	// encoded raw chunks use Payload instead.
	rawRids []Rid
}

// ChunkCursor walks the chunks of one list. Implementations exist for the
// encoded byte form (EncCursor) and for raw rid arrays (RawCursor), so trace
// kernels written against the cursor work on either backend.
type ChunkCursor interface {
	// Next parses the next chunk, reporting false at the end of the list.
	Next() (Chunk, bool)
}

// EncCursor is a ChunkCursor over encoded chunk bytes (zero-copy: payloads
// alias the encoded buffer).
type EncCursor struct {
	rest []byte
}

// NewEncCursor returns a cursor over one encoded list's bytes (e.g.
// EncodedIndex.ListBytes or EncodedList.Data).
func NewEncCursor(b []byte) *EncCursor { return &EncCursor{rest: b} }

// Next parses the next chunk. Parsing is O(1) for raw, range, and bitmap
// chunks; delta and RLE payloads are delimited by walking their varints
// (their byte length is not stored).
func (c *EncCursor) Next() (Chunk, bool) {
	b := c.rest
	if len(b) == 0 {
		return Chunk{}, false
	}
	tag := b[0]
	n64, k := binary.Uvarint(b[1:])
	b = b[1+k:]
	n := int(n64)
	ch := Chunk{Tag: tag, N: n}
	switch tag {
	case chunkRaw:
		ch.Start = Rid(binary.LittleEndian.Uint32(b))
		ch.Payload = b[:4*n]
		b = b[4*n:]
	case chunkRange:
		s, k := binary.Uvarint(b)
		ch.Start = Rid(s)
		b = b[k:]
	case chunkDelta:
		u, k := binary.Uvarint(b)
		ch.Start = Rid(unzigzag(u))
		b = b[k:]
		end := 0
		for j := 1; j < n; j++ {
			_, k := binary.Uvarint(b[end:])
			end += k
		}
		ch.Payload = b[:end]
		b = b[end:]
	case chunkRLE:
		s, k := binary.Uvarint(b)
		ch.Start = Rid(s)
		b = b[k:]
		end := 0
		for rem := n; rem > 0; {
			l64, k := binary.Uvarint(b[end:])
			end += k
			rem -= int(l64)
			if rem > 0 {
				_, k := binary.Uvarint(b[end:])
				end += k
			}
		}
		ch.Payload = b[:end]
		b = b[end:]
	case chunkBitmap:
		base, k := binary.Uvarint(b)
		b = b[k:]
		nb, k := binary.Uvarint(b)
		b = b[k:]
		ch.Start = Rid(base)
		ch.Payload = b[:nb]
		b = b[nb:]
	}
	c.rest = b
	return ch, true
}

// RawCursor presents a raw rid array as a single-chunk cursor, so kernels
// written against ChunkCursor run on raw lists too.
type RawCursor struct {
	list []Rid
	done bool
}

// NewRawCursor returns a cursor over a raw rid list.
func NewRawCursor(list []Rid) *RawCursor { return &RawCursor{list: list} }

// Next returns the whole list as one raw-tagged chunk. Empty lists yield no
// chunks.
func (c *RawCursor) Next() (Chunk, bool) {
	if c.done || len(c.list) == 0 {
		return Chunk{}, false
	}
	c.done = true
	return Chunk{Tag: chunkRaw, N: len(c.list), Start: c.list[0], rawRids: c.list}, true
}

// Bounds returns the chunk's exact inclusive rid window when it is knowable
// without full decoding: range chunks by arithmetic, bitmap chunks by
// scanning for the last set byte. ok is false for raw, delta, and RLE
// chunks, whose extent requires decoding. The bounds must be exact — the
// intersection lockstep's advance rule relies on hi being the true last
// element, not an upper bound.
func (ch *Chunk) Bounds() (lo, hi Rid, ok bool) {
	switch ch.Tag {
	case chunkRange:
		return ch.Start, ch.Start + Rid(ch.N) - 1, true
	case chunkBitmap:
		p := ch.Payload
		i := len(p) - 1
		for i >= 0 && p[i] == 0 {
			i--
		}
		if i < 0 {
			return 0, 0, false // all-zero bitmap: no elements
		}
		return ch.Start, ch.Start + Rid(8*i+bits.Len8(p[i])-1), true
	}
	return 0, 0, false
}

// ExpandInto appends the chunk's rids to dst: one exact pre-grow, then
// indexed writes — the no-append decode kernel every expansion path shares.
func (ch *Chunk) ExpandInto(dst []Rid) []Rid {
	n := ch.N
	if n == 0 {
		return dst
	}
	off := len(dst)
	if cap(dst)-off < n {
		dst = append(dst, make([]Rid, n)...)
	} else {
		dst = dst[:off+n]
	}
	out := dst[off : off+n]
	switch ch.Tag {
	case chunkRaw:
		if ch.rawRids != nil {
			copy(out, ch.rawRids)
			break
		}
		p := ch.Payload
		for j := range out {
			out[j] = Rid(binary.LittleEndian.Uint32(p[4*j:]))
		}
	case chunkRange:
		s := ch.Start
		for j := range out {
			out[j] = s + Rid(j)
		}
	case chunkDelta:
		prev := int64(ch.Start)
		out[0] = ch.Start
		p := ch.Payload
		for j := 1; j < n; j++ {
			u, k := binary.Uvarint(p)
			p = p[k:]
			prev += unzigzag(u)
			out[j] = Rid(prev)
		}
	case chunkRLE:
		cur := int64(ch.Start)
		p := ch.Payload
		j := 0
		for j < n {
			l64, k := binary.Uvarint(p)
			p = p[k:]
			for i := int64(0); i < int64(l64); i++ {
				out[j] = Rid(cur + i)
				j++
			}
			cur += int64(l64)
			if j < n {
				g, k := binary.Uvarint(p)
				p = p[k:]
				cur += int64(g)
			}
		}
	case chunkBitmap:
		base := ch.Start
		j := 0
		for bi, w := range ch.Payload {
			for w != 0 {
				out[j] = base + Rid(bi*8+bits.TrailingZeros8(w))
				j++
				w &= w - 1
			}
		}
	}
	return dst
}

// EncodedList is a standalone encoded rid list: the result shape of the
// in-situ trace operations. Data is a valid chunk sequence (concatenable
// with any other encoded list); N is the element count.
type EncodedList struct {
	Data []byte
	N    int
}

// Len returns the element count.
func (l EncodedList) Len() int { return l.N }

// SizeBytes returns the encoded payload size.
func (l EncodedList) SizeBytes() int { return len(l.Data) }

// AppendTo decodes the list onto dst (chunk-granular pre-grow).
func (l EncodedList) AppendTo(dst []Rid) []Rid {
	c := EncCursor{rest: l.Data}
	for {
		ch, ok := c.Next()
		if !ok {
			return dst
		}
		dst = ch.ExpandInto(dst)
	}
}

// TraceInSitu evaluates the backward trace of src without decoding: the
// result is the byte-wise concatenation of the seed entries' chunk bytes,
// valid because chunks are self-contained. Decoding the result yields
// exactly the rids Trace would return, in the same order; only the
// representation differs — the trace moves encoded bytes (~1–2 per rid on
// dense lineage) instead of expanding to 4-byte rids.
func (e *EncodedIndex) TraceInSitu(src []Rid) EncodedList {
	total := 0
	for _, i := range src {
		total += int(e.offs[i+1] - e.offs[i])
	}
	data := make([]byte, 0, total)
	n := 0
	for _, i := range src {
		data = append(data, e.ListBytes(int(i))...)
		n += e.ListLen(int(i))
	}
	return EncodedList{Data: data, N: n}
}

// IntersectEncoded intersects two encoded rid lists in-situ, returning the
// encoded intersection. Both lists must be element-ascending (the invariant
// of backward lineage lists over contiguous capture). Chunk pairs dispatch
// on their encodings: range∩range computes the overlap in O(1) and emits a
// range chunk; bitmap∩bitmap ANDs the overlapping window byte-wise; every
// other pair expands into pooled scratch and merge-intersects.
func IntersectEncoded(a, b []byte) EncodedList {
	var out EncodedList
	ca, cb := EncCursor{rest: a}, EncCursor{rest: b}
	acur, aok := nextBounded(&ca)
	bcur, bok := nextBounded(&cb)
	for aok && bok {
		switch {
		case acur.hi < bcur.lo:
			acur.release()
			acur, aok = nextBounded(&ca)
		case bcur.hi < acur.lo:
			bcur.release()
			bcur, bok = nextBounded(&cb)
		default:
			intersectPair(&acur, &bcur, &out)
			// Only the chunk that ends first is exhausted; the other may
			// still overlap its peer's successor chunks.
			if acur.hi <= bcur.hi {
				acur.release()
				acur, aok = nextBounded(&ca)
			} else {
				bcur.release()
				bcur, bok = nextBounded(&cb)
			}
		}
	}
	if aok {
		acur.release()
	}
	if bok {
		bcur.release()
	}
	return out
}

// boundedChunk is a chunk with resolved exact bounds; chunks whose bounds
// require decoding (raw, delta, RLE) carry their expansion in pooled
// scratch until released.
type boundedChunk struct {
	ch     Chunk
	lo, hi Rid
	elems  []Rid // non-nil when the chunk was expanded (scratch-backed)
	buf    []Rid // the scratch buffer backing elems, returned on release
}

func (bc *boundedChunk) release() {
	if bc.buf != nil {
		scratch.PutRids(bc.buf)
		bc.buf, bc.elems = nil, nil
	}
}

// nextBounded pulls the next non-empty chunk and resolves its bounds,
// expanding (into pooled scratch) only the encodings that require it.
func nextBounded(c *EncCursor) (boundedChunk, bool) {
	for {
		ch, ok := c.Next()
		if !ok {
			return boundedChunk{}, false
		}
		if ch.N == 0 {
			continue
		}
		if lo, hi, ok := ch.Bounds(); ok {
			return boundedChunk{ch: ch, lo: lo, hi: hi}, true
		}
		buf := scratch.Rids(ch.N)
		elems := ch.ExpandInto(buf[:0])
		return boundedChunk{ch: ch, lo: elems[0], hi: elems[len(elems)-1], elems: elems, buf: buf}, true
	}
}

// intersectPair appends the intersection of two overlapping chunks to out.
func intersectPair(a, b *boundedChunk, out *EncodedList) {
	if a.elems == nil && b.elems == nil {
		if a.ch.Tag == chunkRange && b.ch.Tag == chunkRange {
			lo, hi := maxRid(a.lo, b.lo), minRid(a.hi, b.hi)
			n := int(hi-lo) + 1
			out.Data = append(out.Data, chunkRange)
			out.Data = binary.AppendUvarint(out.Data, uint64(n))
			out.Data = binary.AppendUvarint(out.Data, uint64(lo))
			out.N += n
			return
		}
		if a.ch.Tag == chunkBitmap && b.ch.Tag == chunkBitmap {
			intersectBitmaps(&a.ch, &b.ch, out)
			return
		}
	}
	// Generic: expand whichever sides aren't already expanded, merge-intersect.
	ae, be := a.elems, b.elems
	var bufA, bufB []Rid
	if ae == nil {
		bufA = scratch.Rids(a.ch.N)
		ae = a.ch.ExpandInto(bufA[:0])
	}
	if be == nil {
		bufB = scratch.Rids(b.ch.N)
		be = b.ch.ExpandInto(bufB[:0])
	}
	n := len(ae)
	if len(be) < n {
		n = len(be)
	}
	buf := scratch.Rids(n)
	m := 0
	i, j := 0, 0
	for i < len(ae) && j < len(be) {
		switch {
		case ae[i] < be[j]:
			i++
		case ae[i] > be[j]:
			j++
		default:
			buf[m] = ae[i]
			m++
			i++
			j++
		}
	}
	if m > 0 {
		out.Data = appendEncodedList(out.Data, buf[:m])
		out.N += m
	}
	scratch.PutRids(buf)
	if bufA != nil {
		scratch.PutRids(bufA)
	}
	if bufB != nil {
		scratch.PutRids(bufB)
	}
}

// intersectBitmaps ANDs the overlapping window of two bitmap chunks and
// emits the result as a bitmap chunk (count = popcount of the AND). The
// window is addressed on a's byte grid, so a's bytes are read directly and
// b's bits are gathered at the matching offset — a pure byte-AND when the
// bases are byte-aligned.
func intersectBitmaps(a, b *Chunk, out *EncodedList) {
	lo := maxRid(a.Start, b.Start)
	hi := minRid(a.Start+Rid(8*len(a.Payload)), b.Start+Rid(8*len(b.Payload))) - 1
	if hi < lo {
		return
	}
	aFirst := int(lo-a.Start) / 8
	aLast := int(hi-a.Start) / 8
	base := a.Start + Rid(8*aFirst)
	nb := aLast - aFirst + 1
	buf := make([]byte, nb)
	n := 0
	for i := 0; i < nb; i++ {
		w := a.Payload[aFirst+i] & bitmapByteAt(b.Payload, int(base-b.Start)+8*i)
		buf[i] = w
		n += bits.OnesCount8(w)
	}
	if n == 0 {
		return
	}
	out.Data = append(out.Data, chunkBitmap)
	out.Data = binary.AppendUvarint(out.Data, uint64(n))
	out.Data = binary.AppendUvarint(out.Data, uint64(base))
	out.Data = binary.AppendUvarint(out.Data, uint64(nb))
	out.Data = append(out.Data, buf...)
	out.N += n
}

// bitmapByteAt extracts the 8 bits of bm starting at bit offset off; bits
// outside the bitmap (including negative offsets) read as zero.
func bitmapByteAt(bm []byte, off int) byte {
	if off <= -8 || off >= 8*len(bm) {
		return 0
	}
	if off < 0 {
		return bm[0] << uint(-off)
	}
	i, s := off/8, off%8
	v := bm[i] >> uint(s)
	if s > 0 && i+1 < len(bm) {
		v |= bm[i+1] << uint(8-s)
	}
	return v
}

func minRid(a, b Rid) Rid {
	if a < b {
		return a
	}
	return b
}

func maxRid(a, b Rid) Rid {
	if a > b {
		return a
	}
	return b
}

// ArrCursor is a sequential-probe cursor over an EncodedArr: for
// non-decreasing probe sequences (the shape of forward traces over sorted
// seed rids, dense-forward materialization, and inversion scans) it advances
// a run pointer instead of binary-searching per lookup — amortized O(1) per
// probe versus O(log runs). A regressing probe falls back to binary search,
// so any probe order is correct.
type ArrCursor struct {
	e *EncodedArr
	k int
}

// Cursor returns a sequential-probe cursor positioned at the first run.
func (e *EncodedArr) Cursor() ArrCursor { return ArrCursor{e: e} }

// Get returns entry i (see ArrCursor).
func (c *ArrCursor) Get(i Rid) Rid {
	e := c.e
	k := c.k
	if int32(i) < e.starts[k] {
		return e.Get(i) // regressed probe: stateless binary search
	}
	starts := e.starts
	for k+1 < len(starts) && starts[k+1] <= int32(i) {
		k++
	}
	c.k = k
	if e.seq[k] {
		return e.vals[k] + Rid(int32(i)-e.starts[k])
	}
	return e.vals[k]
}
