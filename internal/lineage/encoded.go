package lineage

// Compressed rid-set representations. Lineage memory grows linearly with
// capture cardinality when rid lists are raw []Rid slices; the encoded forms
// here shrink the common shapes — dense ranges from contiguous-morsel
// capture, near-sorted lists with small gaps, clustered sets — while staying
// queryable in place: tracing iterates the encoded bytes directly and never
// materializes a decompressed index (cf. "Compression and In-Situ Query
// Processing for Fine-Grained Array Lineage", Zhao & Krishnan).
//
// An encoded list is a sequence of self-contained chunks, each
//
//	tag byte | uvarint element count | payload
//
// so two encoded lists concatenate into a valid encoded list. That is what
// makes the parallel merge compression-aware: partition-local lists encode
// independently and the merge concatenates their chunk bytes in partition
// order (MergeEncodedBySlot) without re-encoding — decode order reproduces
// serial append order exactly, because partitions cover disjoint, ordered rid
// ranges and merge in partition order.
//
// Chunk encodings (chosen adaptively per list, smallest wins):
//
//   - range:  one contiguous ascending run; payload is the uvarint start.
//   - rle:    run-length: uvarint first start, then alternating uvarint run
//     length and uvarint gap to the next run. Strictly ascending lists only.
//   - bitmap: fixed-width bitmap over [base, base+8·nbytes); payload is
//     uvarint base, uvarint nbytes, then the bitmap. Strictly ascending only.
//   - delta:  zigzag varints — absolute first value, then deltas. Handles
//     arbitrary (unsorted, duplicated) lists.
//   - raw:    4-byte little-endian rids; the incompressibility fallback that
//     bounds worst-case size at raw-array cost.

import (
	"encoding/binary"
	"math/bits"
)

const (
	chunkRaw byte = iota
	chunkRange
	chunkDelta
	chunkRLE
	chunkBitmap
)

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// EncodedIndex is a compressed RidIndex: n encoded lists packed into one byte
// buffer with n+1 offsets. Entry i's chunks live in data[offs[i]:offs[i+1]];
// an empty list occupies zero bytes.
type EncodedIndex struct {
	offs []uint32
	data []byte
	card int
}

// Len returns the number of entries.
func (e *EncodedIndex) Len() int { return len(e.offs) - 1 }

// Cardinality returns the total number of rid elements across all lists.
func (e *EncodedIndex) Cardinality() int { return e.card }

// SizeBytes returns the memory footprint of the encoded payload plus the
// offset directory (the bytes-per-rid numerator in the compress experiment).
func (e *EncodedIndex) SizeBytes() int { return len(e.data) + 4*len(e.offs) }

// ListBytes returns entry i's raw chunk bytes (shared, read-only). Because
// chunks are self-contained, these bytes may be concatenated with another
// list's to form the encoded concatenation of the two lists.
func (e *EncodedIndex) ListBytes(i int) []byte { return e.data[e.offs[i]:e.offs[i+1]] }

// AppendList decodes entry i onto dst and returns it (the TraceOne shape).
// Decoding is chunk-granular: each chunk's header count pre-grows dst once
// and the chunk kernels fill it with indexed writes (Chunk.ExpandInto), so
// the hot trace path has no per-element append or growth check.
func (e *EncodedIndex) AppendList(i int, dst []Rid) []Rid {
	c := EncCursor{rest: e.ListBytes(i)}
	for {
		ch, ok := c.Next()
		if !ok {
			return dst
		}
		dst = ch.ExpandInto(dst)
	}
}

// ListLen returns entry i's element count by summing chunk headers (payloads
// are skipped, not decoded).
func (e *EncodedIndex) ListLen(i int) int {
	b := e.ListBytes(i)
	total := 0
	for len(b) > 0 {
		tag := b[0]
		n64, k := binary.Uvarint(b[1:])
		b = b[1+k:]
		n := int(n64)
		total += n
		switch tag {
		case chunkRaw:
			b = b[4*n:]
		case chunkRange:
			_, k := binary.Uvarint(b)
			b = b[k:]
		case chunkDelta:
			for j := 0; j < n; j++ {
				_, k := binary.Uvarint(b)
				b = b[k:]
			}
		case chunkRLE:
			_, k := binary.Uvarint(b)
			b = b[k:]
			for rem := n; rem > 0; {
				l64, k := binary.Uvarint(b)
				b = b[k:]
				rem -= int(l64)
				if rem > 0 {
					g, k := binary.Uvarint(b)
					b = b[k:]
					_ = g
				}
			}
		case chunkBitmap:
			_, k := binary.Uvarint(b)
			b = b[k:]
			nb, k := binary.Uvarint(b)
			b = b[k+int(nb):]
		}
	}
	return total
}

// EncodedBuilder assembles an EncodedIndex one list at a time.
type EncodedBuilder struct {
	offs []uint32
	data []byte
	card int
}

// NewEncodedBuilder returns a builder with capacity hints for n lists.
func NewEncodedBuilder(n int) *EncodedBuilder {
	return &EncodedBuilder{offs: make([]uint32, 1, n+1)}
}

// checkEncodedSize makes payload growth past the uint32 offset ceiling loud:
// silent wraparound would corrupt every list boundary after the 4 GiB mark.
// Raw cost is 4 bytes/rid, so this only triggers past ~10^9 captured rids in
// one index — shard the capture (or prune directions) before that.
func checkEncodedSize(n int) {
	if uint64(n) > uint64(^uint32(0)) {
		panic("lineage: encoded index payload exceeds the 4 GiB uint32-offset ceiling; shard the capture")
	}
}

// Add encodes list as the next entry, picking the smallest encoding.
func (b *EncodedBuilder) Add(list []Rid) {
	b.data = appendEncodedList(b.data, list)
	checkEncodedSize(len(b.data))
	b.offs = append(b.offs, uint32(len(b.data)))
	b.card += len(list)
}

// Build finalizes the index. The builder must not be reused.
func (b *EncodedBuilder) Build() *EncodedIndex {
	return &EncodedIndex{offs: b.offs, data: b.data, card: b.card}
}

// appendEncodedList appends list as one adaptively-chosen chunk. Empty lists
// append nothing (a zero-byte list decodes as empty).
func appendEncodedList(data []byte, list []Rid) []byte {
	n := len(list)
	if n == 0 {
		return data
	}
	// One analysis pass: strict ascension, exact delta and RLE payload sizes.
	ascending := true
	deltaSize := uvarintLen(zigzag(int64(list[0])))
	rleSize := uvarintLen(uint64(list[0]))
	runs := 1
	runLen := 1
	for i := 1; i < n; i++ {
		d := int64(list[i]) - int64(list[i-1])
		deltaSize += uvarintLen(zigzag(d))
		if d <= 0 {
			ascending = false
		}
		if !ascending {
			continue
		}
		if d == 1 {
			runLen++
		} else {
			rleSize += uvarintLen(uint64(runLen)) + uvarintLen(uint64(d-1))
			runs++
			runLen = 1
		}
	}
	rawSize := 4 * n

	var tag byte
	var size int
	if ascending && runs == 1 {
		tag = chunkRange
	} else {
		tag, size = chunkDelta, deltaSize
		if rawSize < size {
			tag, size = chunkRaw, rawSize
		}
		if ascending {
			rleSize += uvarintLen(uint64(runLen)) // close the last run
			if rleSize <= size {
				tag, size = chunkRLE, rleSize
			}
			span := int64(list[n-1]) - int64(list[0]) + 1
			nb := (span + 7) / 8
			bmSize := uvarintLen(uint64(list[0])) + uvarintLen(uint64(nb)) + int(nb)
			if bmSize < size {
				tag = chunkBitmap
			}
		}
	}

	data = append(data, tag)
	data = binary.AppendUvarint(data, uint64(n))
	switch tag {
	case chunkRange:
		data = binary.AppendUvarint(data, uint64(list[0]))
	case chunkRaw:
		for _, r := range list {
			data = binary.LittleEndian.AppendUint32(data, uint32(r))
		}
	case chunkDelta:
		data = binary.AppendUvarint(data, zigzag(int64(list[0])))
		for i := 1; i < n; i++ {
			data = binary.AppendUvarint(data, zigzag(int64(list[i])-int64(list[i-1])))
		}
	case chunkRLE:
		data = binary.AppendUvarint(data, uint64(list[0]))
		runLen := 1
		for i := 1; i < n; i++ {
			if list[i] == list[i-1]+1 {
				runLen++
				continue
			}
			data = binary.AppendUvarint(data, uint64(runLen))
			data = binary.AppendUvarint(data, uint64(list[i]-list[i-1]-1))
			runLen = 1
		}
		data = binary.AppendUvarint(data, uint64(runLen))
	case chunkBitmap:
		base := list[0]
		span := int64(list[n-1]) - int64(base) + 1
		nb := int((span + 7) / 8)
		data = binary.AppendUvarint(data, uint64(base))
		data = binary.AppendUvarint(data, uint64(nb))
		off := len(data)
		data = append(data, make([]byte, nb)...)
		for _, r := range list {
			bit := int(r - base)
			data[off+bit/8] |= 1 << (bit % 8)
		}
	}
	return data
}

// EncodeLists encodes a slice of rid lists (e.g. partition-local per-group
// lists) into an EncodedIndex.
func EncodeLists(lists [][]Rid) *EncodedIndex {
	b := NewEncodedBuilder(len(lists))
	for _, l := range lists {
		b.Add(l)
	}
	return b.Build()
}

// EncodeRidIndex encodes every list of a raw rid index.
func EncodeRidIndex(ix *RidIndex) *EncodedIndex { return EncodeLists(ix.lists) }

// DecodeRidIndex materializes the raw form (tests and debugging; the query
// path never calls this).
func DecodeRidIndex(e *EncodedIndex) *RidIndex {
	ix := NewRidIndex(e.Len())
	for i := 0; i < e.Len(); i++ {
		ix.lists[i] = e.AppendList(i, nil)
	}
	return ix
}

// EncodedArr is a compressed rid array (the 1-to-1 representation): maximal
// runs of sequential (arr[j] = v + j - start) or constant (repeated value,
// including the -1 "no match" filler) entries, random-accessed by binary
// search over run starts. Forward arrays of selections are long sequential
// and constant(-1) runs; forward arrays of aggregations over clustered keys
// are constant runs per group.
type EncodedArr struct {
	n      int
	starts []int32
	vals   []Rid
	seq    []bool
}

const (
	arrRunCost = 9 // 4 (start) + 4 (val) + 1 (kind) bytes per run
	rawRidCost = 4
)

// EncodeArr encodes arr, or returns nil when the run form is not smaller than
// the raw array (the adaptive fallback: interleaved values — and arrays too
// small for the run directory to pay off — stay raw).
func EncodeArr(arr []Rid) *EncodedArr {
	n := len(arr)
	if n == 0 {
		return nil
	}
	maxRuns := n * rawRidCost / arrRunCost
	return encodeArrRuns(arr, maxRuns)
}

// encodeArrRuns builds the run directory, abandoning (nil) once more than
// maxRuns runs accumulate.
func encodeArrRuns(arr []Rid, maxRuns int) *EncodedArr {
	n := len(arr)
	e := &EncodedArr{n: n}
	for i := 0; i < n; {
		start := i
		v := arr[i]
		seq := false
		i++
		if i < n && arr[i] == v {
			for i < n && arr[i] == v {
				i++
			}
		} else if i < n && v >= 0 && arr[i] == v+1 {
			seq = true
			for i < n && arr[i] == v+Rid(i-start) {
				i++
			}
		}
		e.starts = append(e.starts, int32(start))
		e.vals = append(e.vals, v)
		e.seq = append(e.seq, seq)
		if len(e.starts) > maxRuns {
			return nil // incompressible: keep the raw array
		}
	}
	return e
}

// Len returns the number of entries.
func (e *EncodedArr) Len() int { return e.n }

// SizeBytes returns the memory footprint of the run directory.
func (e *EncodedArr) SizeBytes() int { return len(e.starts) * arrRunCost }

// Get returns entry i.
func (e *EncodedArr) Get(i Rid) Rid {
	lo, hi := 0, len(e.starts)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.starts[mid] <= int32(i) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	k := lo - 1
	if e.seq[k] {
		return e.vals[k] + Rid(int32(i)-e.starts[k])
	}
	return e.vals[k]
}

// Decode materializes the raw array (tests and debugging).
func (e *EncodedArr) Decode() []Rid {
	out := make([]Rid, e.n)
	for i := range out {
		out[i] = e.Get(Rid(i))
	}
	return out
}
