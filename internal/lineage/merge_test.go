package lineage

import (
	"reflect"
	"testing"
)

func TestConcatRidArrays(t *testing.T) {
	got := ConcatRidArrays([][]Rid{{1, 2}, nil, {3}, {4, 5, 6}})
	want := []Rid{1, 2, 3, 4, 5, 6}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if ConcatRidArrays(nil) != nil {
		t.Fatal("empty concat should be nil")
	}
}

func TestOffsetRebasePreservesMisses(t *testing.T) {
	arr := []Rid{0, -1, 1, 2, -1, 0}
	OffsetRebase(arr, 2, 6, 10)
	want := []Rid{0, -1, 11, 12, -1, 10}
	if !reflect.DeepEqual(arr, want) {
		t.Fatalf("got %v want %v", arr, want)
	}
}

func TestSlotRebase(t *testing.T) {
	arr := []Rid{1, -1, 0, 2}
	SlotRebase(arr, 0, 4, []Rid{5, 6, 7})
	want := []Rid{6, -1, 5, 7}
	if !reflect.DeepEqual(arr, want) {
		t.Fatalf("got %v want %v", arr, want)
	}
}

func TestMergeListsBySlotMatchesSerialOrder(t *testing.T) {
	// Two partitions over rids [0,4) and [4,8); groups keyed by rid%2 are
	// discovered as local slot 0/1 in both partitions but in swapped order in
	// partition 1.
	parts := [][][]Rid{
		{{0, 2}, {1, 3}}, // partition 0: slot0=even, slot1=odd
		{{5, 7}, {4, 6}}, // partition 1: slot0=odd, slot1=even
	}
	slotMaps := [][]Rid{{0, 1}, {1, 0}}
	ix := MergeListsBySlot(parts, slotMaps, 2)
	if got, want := ix.List(0), []Rid{0, 2, 4, 6}; !reflect.DeepEqual(got, want) {
		t.Fatalf("group 0: got %v want %v", got, want)
	}
	if got, want := ix.List(1), []Rid{1, 3, 5, 7}; !reflect.DeepEqual(got, want) {
		t.Fatalf("group 1: got %v want %v", got, want)
	}
	if ix.Cardinality() != 8 {
		t.Fatalf("cardinality %d", ix.Cardinality())
	}
}

func TestMergePartitionMaps(t *testing.T) {
	parts := [][]map[int64][]Rid{
		{{1: {0, 2}}, nil},
		{{2: {5}}, {1: {4}}},
	}
	slotMaps := [][]Rid{{0, 1}, {1, 0}}
	ix := MergePartitionMaps(parts, slotMaps, 2, nil)
	if got, want := ix.Partition(0, 1), []Rid{0, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("(g0,p1): got %v want %v", got, want)
	}
	if got, want := ix.Partition(1, 2), []Rid{5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("(g1,p2): got %v want %v", got, want)
	}
	if ix.Cardinality() != 4 {
		t.Fatalf("cardinality %d", ix.Cardinality())
	}
}
