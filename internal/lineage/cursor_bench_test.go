package lineage

import "testing"

// Microbenchmarks for the chunk-cursor trace kernels: decode-expansion vs
// in-situ byte concatenation, the specialized intersection paths, and the
// sequential EncodedArr cursor vs per-probe binary search.

// benchEncIndex builds a group-by-shaped backward index: groups groups, each
// holding the dense strided rid list a clustered aggregation captures.
func benchEncIndex(groups, perGroup int) *EncodedIndex {
	b := NewEncodedBuilder(groups)
	list := make([]Rid, perGroup)
	for g := 0; g < groups; g++ {
		for j := range list {
			list[j] = Rid(g*perGroup + j)
		}
		b.Add(list)
	}
	return b.Build()
}

func benchSeeds(groups int) []Rid {
	src := make([]Rid, groups)
	for i := range src {
		src[i] = Rid(i)
	}
	return src
}

func BenchmarkEncodedTraceDecode(b *testing.B) {
	b.ReportAllocs()
	e := benchEncIndex(1000, 1000)
	ix := NewEncodedMany(e)
	src := benchSeeds(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Trace(src)
	}
}

func BenchmarkEncodedTraceInSitu(b *testing.B) {
	b.ReportAllocs()
	e := benchEncIndex(1000, 1000)
	src := benchSeeds(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.TraceInSitu(src)
	}
}

// Raw baseline for the same trace: the cost the encoded paths compete with.
func BenchmarkRawTrace(b *testing.B) {
	b.ReportAllocs()
	const groups, perGroup = 1000, 1000
	ix := NewRidIndex(groups)
	for g := 0; g < groups; g++ {
		list := make([]Rid, perGroup)
		for j := range list {
			list[j] = Rid(g*perGroup + j)
		}
		ix.SetList(g, list)
	}
	raw := NewOneToMany(ix)
	src := benchSeeds(groups)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = raw.Trace(src)
	}
}

func BenchmarkChunkCursorIntersectRange(b *testing.B) {
	b.ReportAllocs()
	mk := func(lo, n Rid) []byte {
		l := make([]Rid, n)
		for i := range l {
			l[i] = lo + Rid(i)
		}
		return appendEncodedList(nil, l)
	}
	da := mk(0, 1_000_000)
	db := mk(500_000, 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = IntersectEncoded(da, db)
	}
}

func BenchmarkChunkCursorIntersectBitmap(b *testing.B) {
	b.ReportAllocs()
	mk := func(lo, stride, n Rid) []byte {
		l := make([]Rid, n)
		for i := range l {
			l[i] = lo + Rid(i)*stride
		}
		return appendEncodedList(nil, l)
	}
	da := mk(0, 2, 500_000)
	db := mk(1, 3, 333_333)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = IntersectEncoded(da, db)
	}
}

func benchSelArr(n int) *EncodedArr {
	arr := make([]Rid, n)
	out := Rid(0)
	for i := range arr {
		if (i/1000)%2 == 0 {
			arr[i] = out
			out++
		} else {
			arr[i] = -1
		}
	}
	return EncodeArr(arr)
}

func BenchmarkEncodedArrGetBinarySearch(b *testing.B) {
	b.ReportAllocs()
	const n = 1_000_000
	e := benchSelArr(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink Rid
		for j := 0; j < n; j += 10 {
			sink += e.Get(Rid(j))
		}
		_ = sink
	}
}

func BenchmarkEncodedArrCursorSequential(b *testing.B) {
	b.ReportAllocs()
	const n = 1_000_000
	e := benchSelArr(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := e.Cursor()
		var sink Rid
		for j := 0; j < n; j += 10 {
			sink += c.Get(Rid(j))
		}
		_ = sink
	}
}
