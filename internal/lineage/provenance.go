package lineage

import (
	"fmt"
	"sort"
	"strings"
)

// Appendix E: Smoke's transformational semantics subsume the classic
// provenance semantics. Backward indexes keep one entry per derivation, and
// entries at the same position across the per-relation backward indexes of a
// join-aggregate query belong to the same derivation (the SPJA executor
// appends one rid per table per join row). That alignment makes:
//
//   - why-provenance: the set of witnesses, one witness per position — the
//     tuple of rids across relations at that position;
//   - which-provenance (lineage): the per-relation set union of the lists;
//   - how-provenance: the polynomial Σ_positions Π_relations rid.
//
// These are lineage-consuming queries in the paper's framing; they are
// provided here as library calls because applications ask for them directly.

// Witness is one why-provenance witness: for each traced relation (in call
// order), the rid that participated in the derivation.
type Witness []Rid

// WhyProvenance returns the witnesses of output record out with respect to
// the given relations. All named relations must have backward indexes with
// equal cardinality for the output (true for SPJA captures).
func (c *Capture) WhyProvenance(rels []string, out Rid) ([]Witness, error) {
	lists := make([][]Rid, len(rels))
	n := -1
	for i, r := range rels {
		ix, err := c.BackwardIndex(r)
		if err != nil {
			return nil, err
		}
		lists[i] = ix.TraceOne(out, nil)
		if n >= 0 && len(lists[i]) != n {
			return nil, fmt.Errorf("lineage: backward lists for %v are not aligned (%d vs %d edges)", rels, n, len(lists[i]))
		}
		n = len(lists[i])
	}
	witnesses := make([]Witness, n)
	for pos := 0; pos < n; pos++ {
		w := make(Witness, len(rels))
		for i := range rels {
			w[i] = lists[i][pos]
		}
		witnesses[pos] = w
	}
	return witnesses, nil
}

// WhichProvenance returns the per-relation distinct rid sets contributing to
// out (Cui et al. lineage; the set union of the backward lists).
func (c *Capture) WhichProvenance(rels []string, out Rid) (map[string][]Rid, error) {
	res := make(map[string][]Rid, len(rels))
	for _, r := range rels {
		rids, err := c.BackwardDistinct(r, []Rid{out})
		if err != nil {
			return nil, err
		}
		sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
		res[r] = rids
	}
	return res, nil
}

// HowProvenance renders the provenance polynomial of out over the given
// relations: one product term per witness, summed. Rids print as rel[rid].
// Repeated witnesses (possible under bag semantics) accumulate into integer
// coefficients, matching the ℕ[X] semiring.
func (c *Capture) HowProvenance(rels []string, out Rid) (string, error) {
	ws, err := c.WhyProvenance(rels, out)
	if err != nil {
		return "", err
	}
	counts := map[string]int{}
	var order []string
	for _, w := range ws {
		parts := make([]string, len(w))
		for i, rid := range w {
			parts[i] = fmt.Sprintf("%s[%d]", rels[i], rid)
		}
		term := strings.Join(parts, "*")
		if counts[term] == 0 {
			order = append(order, term)
		}
		counts[term]++
	}
	var b strings.Builder
	for i, term := range order {
		if i > 0 {
			b.WriteString(" + ")
		}
		if counts[term] > 1 {
			fmt.Fprintf(&b, "%d*", counts[term])
		}
		b.WriteString(term)
	}
	return b.String(), nil
}
