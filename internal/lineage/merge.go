package lineage

// Partition-local index building (the morsel-parallel capture layer).
//
// Parallel operators split their input into contiguous row-range partitions;
// each worker appends rids into its own partition-local arrays and indexes —
// no shared-state writes in the hot loop — and the driver merges the local
// structures afterwards. Because partitions are contiguous and merged in
// partition order, the merged indexes are element-for-element identical to
// the ones a serial run builds: a group's first occurrence lies in the first
// partition that contains it, so partition-major merge order reproduces
// serial discovery order, and concatenating per-partition rid lists in
// partition order reproduces serial append order.

// ConcatRidArrays concatenates partition-local rid arrays in partition order
// into one exactly-sized array. Merging backward arrays of a parallel
// selection or join probe is a single pass of sequential copies. An empty
// result is nil; callers whose downstream interfaces distinguish nil from
// empty (e.g. a nil rid subset meaning "all rows") must restore the shape
// they need.
func ConcatRidArrays(parts [][]Rid) []Rid {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	out := make([]Rid, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// OffsetRebase adds off to every non-negative entry of arr[lo:hi] in place.
// Parallel kernels write partition-local output rids into a shared,
// rid-addressed forward array (partitions own disjoint rid ranges, so the
// writes never conflict); once per-partition output cardinalities are known,
// each partition's entries are rebased by its global output offset.
// Negative entries ("no output") are preserved.
func OffsetRebase(arr []Rid, lo, hi int, off Rid) {
	if off == 0 {
		return
	}
	for i := lo; i < hi; i++ {
		if arr[i] >= 0 {
			arr[i] += off
		}
	}
}

// OffsetRebaseRids is OffsetRebase over an explicit rid subset: the entries
// of arr addressed by rids (a partition's slice of the input rid list) are
// rebased in place, preserving negative "no output" entries.
func OffsetRebaseRids(arr []Rid, rids []Rid, off Rid) {
	if off == 0 {
		return
	}
	for _, r := range rids {
		if arr[r] >= 0 {
			arr[r] += off
		}
	}
}

// SlotRebase maps every non-negative entry of arr[lo:hi] through slotMap in
// place: local group slots become global group slots after a parallel
// aggregation merge.
func SlotRebase(arr []Rid, lo, hi int, slotMap []Rid) {
	for i := lo; i < hi; i++ {
		if arr[i] >= 0 {
			arr[i] = slotMap[arr[i]]
		}
	}
}

// SlotRebaseRids is SlotRebase over an explicit rid subset (a partition's
// slice of the input rid list), preserving negative entries.
func SlotRebaseRids(arr []Rid, rids []Rid, slotMap []Rid) {
	for _, r := range rids {
		if arr[r] >= 0 {
			arr[r] = slotMap[arr[r]]
		}
	}
}

// MergeListsBySlot merges partition-local per-group rid lists into a global
// RidIndex with nGlobal entries. parts[p] holds partition p's local group
// lists; slotMaps[p] maps partition p's local group slot to its global slot.
// Global list g is the concatenation, in partition order, of every local
// list that maps to g — exactly the append order of a serial run. The merged
// index is allocated exactly (one backing array) and filled with sequential
// copies, so the merge costs O(partitions · groups + total rids).
func MergeListsBySlot(parts [][][]Rid, slotMaps [][]Rid, nGlobal int) *RidIndex {
	counts := make([]int32, nGlobal)
	for p, lists := range parts {
		sm := slotMaps[p]
		for s, l := range lists {
			counts[sm[s]] += int32(len(l))
		}
	}
	out := NewRidIndexWithCounts(counts)
	for p, lists := range parts {
		sm := slotMaps[p]
		for s, l := range lists {
			g := sm[s]
			dst := out.lists[g]
			out.lists[g] = append(dst, l...)
		}
	}
	return out
}

// MergeIndexesBySlot is MergeListsBySlot over partition-local RidIndexes
// (local slot → rid list).
func MergeIndexesBySlot(parts []*RidIndex, slotMaps [][]Rid, nGlobal int) *RidIndex {
	lists := make([][][]Rid, len(parts))
	for p, ix := range parts {
		lists[p] = ix.lists
	}
	return MergeListsBySlot(lists, slotMaps, nGlobal)
}

// MergeEncodedBySlot is the compression-aware partition merge: partition-local
// encoded indexes combine into one global EncodedIndex by concatenating each
// local list's chunk bytes onto its global slot, in partition order — no list
// is re-encoded. This is sound because chunks are self-contained and
// partition rid ranges are disjoint and ordered: concatenation in partition
// order decodes to exactly the rid sequence a serial run would have appended.
// (The merged byte layout can differ from a serial run's single-chunk
// encoding — one chunk per contributing partition — but the decoded lineage
// is element-identical, which is what the equivalence gates assert.)
func MergeEncodedBySlot(parts []*EncodedIndex, slotMaps [][]Rid, nGlobal int) *EncodedIndex {
	sizes := make([]int, nGlobal)
	card, total := 0, 0
	for p, e := range parts {
		sm := slotMaps[p]
		for s := 0; s < e.Len(); s++ {
			n := len(e.ListBytes(s))
			sizes[sm[s]] += n
			total += n
		}
		card += e.Cardinality()
	}
	checkEncodedSize(total)
	offs := make([]uint32, nGlobal+1)
	for i := 0; i < nGlobal; i++ {
		offs[i+1] = offs[i] + uint32(sizes[i])
	}
	data := make([]byte, offs[nGlobal])
	cursor := make([]uint32, nGlobal)
	copy(cursor, offs[:nGlobal])
	for p, e := range parts {
		sm := slotMaps[p]
		for s := 0; s < e.Len(); s++ {
			g := sm[s]
			b := e.ListBytes(s)
			copy(data[cursor[g]:], b)
			cursor[g] += uint32(len(b))
		}
	}
	return &EncodedIndex{offs: offs, data: data, card: card}
}

// MergePairsByRid builds one exactly-sized forward RidIndex from
// partition-local (entry rid, value) pair arrays collected in scan order —
// the memory-lean alternative to a relation-sized index per partition.
// Entry r of the result concatenates each partition's values for r in
// partition order (which reproduces serial append order when partitions are
// contiguous and ordered), with each value mapped through remap — an output
// offset rebase for join probes, a local-slot→global-slot map for
// aggregations.
func MergePairsByRid(pairR, pairV [][]Rid, n int, remap func(part int, v Rid) Rid) *RidIndex {
	counts := make([]int32, n)
	for _, rs := range pairR {
		for _, r := range rs {
			counts[r]++
		}
	}
	out := NewRidIndexWithCounts(counts)
	for p, rs := range pairR {
		vs := pairV[p]
		for i, r := range rs {
			out.AppendFast(int(r), remap(p, vs[i]))
		}
	}
	return out
}

// MergePartitionMaps merges partition-local data-skipping maps (per local
// group: partition-attribute code → rid list) into a PartitionedIndex over
// nGlobal outputs, concatenating lists per (group, code) in partition order.
func MergePartitionMaps(parts [][]map[int64][]Rid, slotMaps [][]Rid, nGlobal int, dict *Dict) *PartitionedIndex {
	out := NewPartitionedIndex(nGlobal, dict)
	for p, maps := range parts {
		sm := slotMaps[p]
		for s, m := range maps {
			if m == nil {
				continue
			}
			g := sm[s]
			gm := out.parts[g]
			if gm == nil {
				gm = make(map[int64][]Rid, len(m))
				out.parts[g] = gm
			}
			for code, l := range m {
				gm[code] = append(gm[code], l...)
			}
		}
	}
	return out
}
