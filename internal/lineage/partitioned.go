package lineage

// Dict interns partition-attribute values as dense int64 codes. The data
// skipping optimization (§4.2) partitions rid arrays by (possibly composite,
// possibly string-valued) predicate attributes; interning keeps partition
// keys integer-comparable regardless of attribute type.
type Dict struct {
	codes map[string]int64
	vals  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{codes: map[string]int64{}} }

// Code interns v and returns its code.
func (d *Dict) Code(v string) int64 {
	if c, ok := d.codes[v]; ok {
		return c
	}
	c := int64(len(d.vals))
	d.codes[v] = c
	d.vals = append(d.vals, v)
	return c
}

// Lookup returns the code of v and whether v was ever interned.
func (d *Dict) Lookup(v string) (int64, bool) {
	c, ok := d.codes[v]
	return c, ok
}

// Value returns the string for a code.
func (d *Dict) Value(c int64) string { return d.vals[c] }

// Size returns the number of interned values.
func (d *Dict) Size() int { return len(d.vals) }

// PartitionedIndex is a backward rid index whose per-output rid arrays are
// partitioned by a predicate attribute (§4.2 data skipping): entry (output i,
// partition key p) holds exactly the input rids of output i whose partition
// attribute encodes to p. A parameterized lineage-consuming query
// σ_attr=:p(Lb(o, R)) then scans only the matching partition.
type PartitionedIndex struct {
	parts []map[int64][]Rid
	dict  *Dict
}

// NewPartitionedIndex returns an index with n outputs and the given (shared,
// possibly nil) dictionary for string-valued partition attributes.
func NewPartitionedIndex(n int, dict *Dict) *PartitionedIndex {
	return &PartitionedIndex{parts: make([]map[int64][]Rid, n), dict: dict}
}

// NewPartitionedIndexFromParts wraps per-output partition maps built
// incrementally during capture (the operator appends maps as groups are
// discovered, then hands them over without copying).
func NewPartitionedIndexFromParts(parts []map[int64][]Rid, dict *Dict) *PartitionedIndex {
	return &PartitionedIndex{parts: parts, dict: dict}
}

// Dict returns the dictionary used for string partition attributes (nil for
// integer attributes).
func (p *PartitionedIndex) Dict() *Dict { return p.dict }

// Len returns the number of outputs.
func (p *PartitionedIndex) Len() int { return len(p.parts) }

// Append adds rid to the partition key part of output i.
func (p *PartitionedIndex) Append(i int, part int64, rid Rid) {
	m := p.parts[i]
	if m == nil {
		m = map[int64][]Rid{}
		p.parts[i] = m
	}
	m[part] = AppendRid(m[part], rid)
}

// Partition returns the rid array for (output i, partition key part).
func (p *PartitionedIndex) Partition(i int, part int64) []Rid {
	m := p.parts[i]
	if m == nil {
		return nil
	}
	return m[part]
}

// Partitions returns the partition keys present for output i.
func (p *PartitionedIndex) Partitions(i int) []int64 {
	m := p.parts[i]
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// All returns all rids of output i across partitions (the unpartitioned
// backward lineage).
func (p *PartitionedIndex) All(i int) []Rid {
	m := p.parts[i]
	var out []Rid
	for _, l := range m {
		out = append(out, l...)
	}
	return out
}

// Cardinality returns the total number of rid entries in the index.
func (p *PartitionedIndex) Cardinality() int {
	n := 0
	for _, m := range p.parts {
		for _, l := range m {
			n += len(l)
		}
	}
	return n
}
