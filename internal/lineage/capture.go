package lineage

import "smoke/internal/serr"

// Capture holds the end-to-end lineage indexes produced while executing one
// base query: for each base relation referenced by the query, a backward
// index (output rid → base rids) and/or a forward index (base rid → output
// rids). Workload-aware pruning (§4.1) simply omits entries.
type Capture struct {
	backward map[string]*Index
	forward  map[string]*Index
}

// NewCapture returns an empty capture container.
func NewCapture() *Capture {
	return &Capture{backward: map[string]*Index{}, forward: map[string]*Index{}}
}

// SetBackward installs the backward index for a base relation.
func (c *Capture) SetBackward(rel string, ix *Index) { c.backward[rel] = ix }

// SetForward installs the forward index for a base relation.
func (c *Capture) SetForward(rel string, ix *Index) { c.forward[rel] = ix }

// BackwardIndex returns the backward index for rel, or an error if it was
// pruned or never captured.
func (c *Capture) BackwardIndex(rel string) (*Index, error) {
	ix, ok := c.backward[rel]
	if !ok {
		return nil, serr.New(serr.Invalid, "lineage: no backward index for relation %q (pruned or not captured)", rel)
	}
	return ix, nil
}

// ForwardIndex returns the forward index for rel, or an error if it was
// pruned or never captured.
func (c *Capture) ForwardIndex(rel string) (*Index, error) {
	ix, ok := c.forward[rel]
	if !ok {
		return nil, serr.New(serr.Invalid, "lineage: no forward index for relation %q (pruned or not captured)", rel)
	}
	return ix, nil
}

// HasBackward reports whether a backward index exists for rel.
func (c *Capture) HasBackward(rel string) bool { _, ok := c.backward[rel]; return ok }

// HasForward reports whether a forward index exists for rel.
func (c *Capture) HasForward(rel string) bool { _, ok := c.forward[rel]; return ok }

// Backward evaluates the backward lineage query Lb(out ⊆ O, rel): the base
// rids of rel that contributed to the given output rids (duplicates
// preserved, per transformational semantics).
func (c *Capture) Backward(rel string, out []Rid) ([]Rid, error) {
	ix, err := c.BackwardIndex(rel)
	if err != nil {
		return nil, err
	}
	if err := ix.CheckSeeds(out); err != nil {
		return nil, err
	}
	return ix.Trace(out), nil
}

// Forward evaluates the forward lineage query Lf(in ⊆ rel, O): the output
// rids that depend on the given base rids.
func (c *Capture) Forward(rel string, in []Rid) ([]Rid, error) {
	ix, err := c.ForwardIndex(rel)
	if err != nil {
		return nil, err
	}
	if err := ix.CheckSeeds(in); err != nil {
		return nil, err
	}
	return ix.Trace(in), nil
}

// BackwardDistinct is Backward with set semantics (which-provenance).
func (c *Capture) BackwardDistinct(rel string, out []Rid) ([]Rid, error) {
	ix, err := c.BackwardIndex(rel)
	if err != nil {
		return nil, err
	}
	if err := ix.CheckSeeds(out); err != nil {
		return nil, err
	}
	return ix.TraceDistinct(out), nil
}

// ForwardDistinct is Forward with set semantics.
func (c *Capture) ForwardDistinct(rel string, in []Rid) ([]Rid, error) {
	ix, err := c.ForwardIndex(rel)
	if err != nil {
		return nil, err
	}
	if err := ix.CheckSeeds(in); err != nil {
		return nil, err
	}
	return ix.TraceDistinct(in), nil
}

// EncodeAll compresses every captured index in place (post-capture encoding:
// operators capture into raw append-friendly structures, then the finished
// indexes shrink to their adaptive encoded forms). Queries over the capture
// read the encoded indexes transparently.
func (c *Capture) EncodeAll() {
	for rel, ix := range c.backward {
		c.backward[rel] = EncodeIndex(ix)
	}
	for rel, ix := range c.forward {
		c.forward[rel] = EncodeIndex(ix)
	}
}

// MemBytes returns the payload memory footprint of every captured index
// (Index.SizeBytes summed over both directions). Together with the output
// relation's MemBytes it is what a retained result costs to keep alive —
// the quantity the server's LRU eviction budgets.
func (c *Capture) MemBytes() int64 {
	var total int64
	for _, ix := range c.backward {
		total += int64(ix.SizeBytes())
	}
	for _, ix := range c.forward {
		total += int64(ix.SizeBytes())
	}
	return total
}

// Relations returns the names of relations with at least one captured index.
func (c *Capture) Relations() []string {
	seen := map[string]struct{}{}
	var out []string
	for r := range c.backward {
		if _, ok := seen[r]; !ok {
			seen[r] = struct{}{}
			out = append(out, r)
		}
	}
	for r := range c.forward {
		if _, ok := seen[r]; !ok {
			seen[r] = struct{}{}
			out = append(out, r)
		}
	}
	return out
}
