package lineage

import (
	"math/rand"
	"reflect"
	"testing"
)

// listShapes covers every encoding the adaptive chooser can pick plus its
// edge cases.
func listShapes() map[string][]Rid {
	rng := rand.New(rand.NewSource(7))
	random := make([]Rid, 200)
	for i := range random {
		random[i] = Rid(rng.Intn(1 << 20))
	}
	sparse := make([]Rid, 64)
	for i := range sparse {
		sparse[i] = Rid(i * 1000)
	}
	clustered := make([]Rid, 0, 300)
	for base := Rid(100); base < 4000; base += 500 {
		for j := Rid(0); j < 30; j++ {
			clustered = append(clustered, base+j)
		}
	}
	return map[string][]Rid{
		"empty":      {},
		"single":     {42},
		"range":      {10, 11, 12, 13, 14, 15},
		"rangeAt0":   {0, 1, 2, 3},
		"clustered":  clustered, // runs with gaps: RLE territory
		"sparse":     sparse,    // ascending, large gaps: delta territory
		"dense8":     {3, 4, 6, 7, 8, 10, 11, 12},
		"duplicates": {5, 5, 5, 9, 9, 2, 2},
		"unsorted":   {900, 3, 512, 44, 44, 7},
		"descending": {9, 8, 7, 3, 1},
		"random":     random,
		"bigvals":    {1 << 30, 1<<30 + 1, 1<<30 + 5},
	}
}

func TestEncodedListRoundTrip(t *testing.T) {
	for name, list := range listShapes() {
		b := NewEncodedBuilder(1)
		b.Add(list)
		e := b.Build()
		got := e.AppendList(0, nil)
		if len(list) == 0 {
			if len(got) != 0 {
				t.Errorf("%s: decoded %v, want empty", name, got)
			}
			if e.offs[0] != e.offs[1] {
				t.Errorf("%s: empty list must occupy zero bytes", name)
			}
			continue
		}
		if !reflect.DeepEqual(got, list) {
			t.Errorf("%s: decoded %v, want %v", name, got, list)
		}
		if e.ListLen(0) != len(list) {
			t.Errorf("%s: ListLen = %d, want %d", name, e.ListLen(0), len(list))
		}
		if e.Cardinality() != len(list) {
			t.Errorf("%s: Cardinality = %d, want %d", name, e.Cardinality(), len(list))
		}
	}
}

func TestEncodedIndexMultipleListsRoundTrip(t *testing.T) {
	shapes := listShapes()
	names := []string{"empty", "range", "clustered", "unsorted", "empty", "sparse", "random", "duplicates"}
	b := NewEncodedBuilder(len(names))
	total := 0
	for _, n := range names {
		b.Add(shapes[n])
		total += len(shapes[n])
	}
	e := b.Build()
	if e.Len() != len(names) {
		t.Fatalf("Len = %d, want %d", e.Len(), len(names))
	}
	if e.Cardinality() != total {
		t.Fatalf("Cardinality = %d, want %d", e.Cardinality(), total)
	}
	for i, n := range names {
		got := e.AppendList(i, nil)
		want := shapes[n]
		if len(want) == 0 {
			if len(got) != 0 {
				t.Errorf("list %d (%s): got %v, want empty", i, n, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("list %d (%s): got %v, want %v", i, n, got, want)
		}
	}
	dec := DecodeRidIndex(e)
	for i, n := range names {
		if len(shapes[n]) == 0 {
			continue
		}
		if !reflect.DeepEqual(dec.List(i), shapes[n]) {
			t.Errorf("DecodeRidIndex list %d (%s) mismatch", i, n)
		}
	}
}

// TestEncodedCompressesDenseLists pins the headline property: dense
// (range-scan-shaped) lists encode far below the 4 bytes/rid raw cost.
func TestEncodedCompressesDenseLists(t *testing.T) {
	const n = 100_000
	list := make([]Rid, n)
	for i := range list {
		list[i] = Rid(i + 12345)
	}
	b := NewEncodedBuilder(1)
	b.Add(list)
	e := b.Build()
	if e.SizeBytes() > 64 {
		t.Fatalf("contiguous run of %d rids encoded to %d bytes; want a handful", n, e.SizeBytes())
	}
	// Zipf-ish clustered lists should also win clearly over raw.
	clustered := make([]Rid, 0, n)
	for i := 0; i < n; i++ {
		if i%10 != 3 {
			clustered = append(clustered, Rid(i))
		}
	}
	b2 := NewEncodedBuilder(1)
	b2.Add(clustered)
	e2 := b2.Build()
	if e2.SizeBytes() >= 4*len(clustered)/2 {
		t.Fatalf("clustered list: %d bytes for %d rids, want < half of raw", e2.SizeBytes(), len(clustered))
	}
}

// TestEncodedRawFallbackBoundsSize pins the adaptive fallback: adversarial
// (random, unsorted) lists must not blow up beyond raw cost plus the chunk
// header.
func TestEncodedRawFallbackBoundsSize(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	list := make([]Rid, 10_000)
	for i := range list {
		list[i] = Rid(rng.Int31())
	}
	b := NewEncodedBuilder(1)
	b.Add(list)
	e := b.Build()
	if e.SizeBytes() > 4*len(list)+32 {
		t.Fatalf("adversarial list encoded to %d bytes; raw is %d", e.SizeBytes(), 4*len(list))
	}
	if got := e.AppendList(0, nil); !reflect.DeepEqual(got, list) {
		t.Fatal("adversarial list did not round-trip")
	}
}

func TestEncodedArrRoundTrip(t *testing.T) {
	cases := map[string][]Rid{
		"identity":   {0, 1, 2, 3, 4, 5},
		"allDropped": {-1, -1, -1, -1},
		"selectLike": {-1, -1, 0, 1, 2, -1, 3, 4, -1, -1},
		"constRuns":  {7, 7, 7, 2, 2, 2, 2, 9, 9},
		"offsetSeq":  {100, 101, 102, 103},
		"single":     {5},
	}
	for name, arr := range cases {
		// Force the run form (tiny arrays adaptively stay raw via EncodeArr).
		e := encodeArrRuns(arr, len(arr))
		if e == nil {
			t.Errorf("%s: expected compressible", name)
			continue
		}
		if e.Len() != len(arr) {
			t.Errorf("%s: Len = %d, want %d", name, e.Len(), len(arr))
		}
		if got := e.Decode(); !reflect.DeepEqual(got, arr) {
			t.Errorf("%s: decoded %v, want %v", name, got, arr)
		}
	}
	// Interleaved values have ~n runs: the encoder must refuse.
	interleaved := make([]Rid, 1000)
	for i := range interleaved {
		interleaved[i] = Rid(i % 7 * 13)
	}
	if e := EncodeArr(interleaved); e != nil {
		t.Fatal("interleaved array should fall back to raw")
	}
	if e := EncodeArr(nil); e != nil {
		t.Fatal("empty array should fall back to raw")
	}
}

func TestEncodedArrLongSelectShape(t *testing.T) {
	// A selection forward array: long -1 stretches and long sequential
	// stretches — the run directory must be tiny and exact.
	const n = 50_000
	arr := make([]Rid, n)
	out := Rid(0)
	for i := range arr {
		if (i/1000)%2 == 0 {
			arr[i] = out
			out++
		} else {
			arr[i] = -1
		}
	}
	e := EncodeArr(arr)
	if e == nil {
		t.Fatal("select-shaped array should compress")
	}
	if e.SizeBytes() >= 4*n/10 {
		t.Fatalf("select-shaped array: %d bytes, want < 10%% of raw %d", e.SizeBytes(), 4*n)
	}
	for i := 0; i < n; i += 997 {
		if got := e.Get(Rid(i)); got != arr[i] {
			t.Fatalf("Get(%d) = %d, want %d", i, got, arr[i])
		}
	}
}

func TestMergeEncodedBySlotMatchesRawMerge(t *testing.T) {
	// Three partitions with contiguous, ordered rid ranges; local slots map
	// to interleaved global slots.
	parts := [][][]Rid{
		{{0, 1, 2}, {5, 9}},      // partition 0: slots a, b
		{{10, 11}, {12, 13, 19}}, // partition 1: slots b, c
		{{20, 25}, {}, {21, 22}}, // partition 2: slots a, c(empty), b
	}
	slotMaps := [][]Rid{{0, 1}, {1, 2}, {0, 2, 1}}
	nGlobal := 3

	want := MergeListsBySlot(parts, slotMaps, nGlobal)

	encParts := make([]*EncodedIndex, len(parts))
	for p, lists := range parts {
		encParts[p] = EncodeLists(lists)
	}
	got := MergeEncodedBySlot(encParts, slotMaps, nGlobal)

	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	if got.Cardinality() != want.Cardinality() {
		t.Fatalf("Cardinality = %d, want %d", got.Cardinality(), want.Cardinality())
	}
	for g := 0; g < nGlobal; g++ {
		dec := got.AppendList(g, nil)
		wl := want.List(g)
		if len(wl) == 0 && len(dec) == 0 {
			continue
		}
		if !reflect.DeepEqual(dec, wl) {
			t.Errorf("global slot %d: decoded %v, want %v", g, dec, wl)
		}
	}
}

func TestIndexTraceEncodedMatchesRaw(t *testing.T) {
	lists := [][]Rid{{3, 4, 5}, {}, {100, 7, 7}, {42}}
	ix := NewRidIndex(len(lists))
	for i, l := range lists {
		ix.SetList(i, l)
	}
	raw := NewOneToMany(ix)
	enc := EncodeIndex(raw)
	if enc.Kind != EncodedMany {
		t.Fatalf("EncodeIndex kind = %v", enc.Kind)
	}
	src := []Rid{0, 2, 1, 3, 2}
	if got, want := enc.Trace(src), raw.Trace(src); !reflect.DeepEqual(got, want) {
		t.Fatalf("Trace: %v, want %v", got, want)
	}
	if got, want := enc.TraceDistinct(src), raw.TraceDistinct(src); !reflect.DeepEqual(got, want) {
		t.Fatalf("TraceDistinct: %v, want %v", got, want)
	}

	arr := []Rid{-1, 0, 1, 2, -1, -1, 3, 4}
	rawA := NewOneToOne(arr)
	encA := NewEncodedOne(encodeArrRuns(arr, len(arr)))
	// EncodeIndex on such a tiny array adaptively keeps raw.
	if kept := EncodeIndex(rawA); kept.Kind != OneToOne {
		t.Fatalf("EncodeIndex(tiny arr) kind = %v, want raw OneToOne", kept.Kind)
	}
	all := make([]Rid, len(arr))
	for i := range all {
		all[i] = Rid(i)
	}
	if got, want := encA.Trace(all), rawA.Trace(all); !reflect.DeepEqual(got, want) {
		t.Fatalf("Trace(arr): %v, want %v", got, want)
	}
}

func TestComposeInvertWithEncodedOperands(t *testing.T) {
	// outer: A→B (one-to-many), inner: B→C (one-to-one with drops).
	outerIx := NewRidIndex(3)
	outerIx.SetList(0, []Rid{0, 1})
	outerIx.SetList(1, []Rid{2})
	outerIx.SetList(2, nil)
	outer := NewOneToMany(outerIx)
	innerArr := []Rid{5, -1, 6}
	inner := NewOneToOne(innerArr)
	encInner := NewEncodedOne(encodeArrRuns(innerArr, len(innerArr)))

	want := Compose(outer, inner)
	for _, combo := range []struct {
		name         string
		outer, inner *Index
	}{
		{"encOuter", EncodeIndex(outer), inner},
		{"encInner", outer, encInner},
		{"encBoth", EncodeIndex(outer), encInner},
	} {
		got := Compose(combo.outer, combo.inner)
		if !got.Encoded() {
			t.Errorf("%s: composed index should be encoded", combo.name)
		}
		for i := 0; i < want.Len(); i++ {
			g := got.TraceOne(Rid(i), nil)
			w := want.TraceOne(Rid(i), nil)
			if !reflect.DeepEqual(g, w) {
				t.Errorf("%s: entry %d = %v, want %v", combo.name, i, g, w)
			}
		}
	}

	// Invert an encoded forward index; compare against the raw inversion.
	fwArr := []Rid{1, 0, 1, -1, 0}
	fw := NewOneToOne(fwArr)
	wantInv := Invert(fw, 2)
	gotInv := Invert(NewEncodedOne(encodeArrRuns(fwArr, len(fwArr))), 2)
	if !gotInv.Encoded() {
		t.Fatal("inverted encoded index should be encoded")
	}
	for i := 0; i < 2; i++ {
		g := gotInv.TraceOne(Rid(i), nil)
		w := wantInv.TraceOne(Rid(i), nil)
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("invert entry %d = %v, want %v", i, g, w)
		}
	}
}
