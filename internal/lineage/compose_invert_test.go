package lineage

import (
	"reflect"
	"testing"
)

// Edge-case coverage for Index.Compose and Invert: empty lists, all-dropped
// (-1) rid arrays, OneToOne→OneToMany composition, and zero-target
// inversion. Each case also runs with encoded operands, which must behave
// identically.

func manyOf(lists ...[]Rid) *Index {
	ix := NewRidIndex(len(lists))
	for i, l := range lists {
		ix.SetList(i, l)
	}
	return NewOneToMany(ix)
}

// encodedForms returns ix plus its force-encoded twin (EncodeIndex adaptively
// keeps tiny rid arrays raw, which would silently skip the encoded branch).
func encodedForms(ix *Index) map[string]*Index {
	forms := map[string]*Index{"raw": ix}
	switch ix.Kind {
	case OneToOne:
		forms["encoded"] = NewEncodedOne(encodeArrRuns(ix.Arr, len(ix.Arr)))
	case OneToMany:
		forms["encoded"] = NewEncodedMany(EncodeRidIndex(ix.Many))
	}
	return forms
}

func traceAll(ix *Index) [][]Rid {
	out := make([][]Rid, ix.Len())
	for i := range out {
		out[i] = ix.TraceOne(Rid(i), nil)
	}
	return out
}

func TestComposeEmptyLists(t *testing.T) {
	// Outer has empty lists (groups with pruned or no inputs); inner maps
	// B→C. Empty entries must stay empty through composition.
	outer := manyOf([]Rid{0}, nil, []Rid{1, 2}, nil)
	inner := manyOf([]Rid{7}, []Rid{8, 9}, nil)
	want := [][]Rid{{7}, nil, {8, 9}, nil}
	for on, o := range encodedForms(outer) {
		for in, i := range encodedForms(inner) {
			got := traceAll(Compose(o, i))
			for e := range want {
				if len(want[e]) == 0 && len(got[e]) == 0 {
					continue
				}
				if !reflect.DeepEqual(got[e], want[e]) {
					t.Errorf("outer=%s inner=%s entry %d: %v, want %v", on, in, e, got[e], want[e])
				}
			}
		}
	}
}

func TestComposeAllDroppedRids(t *testing.T) {
	// Every outer entry is -1 (a filter that dropped everything): the
	// composition must map every entry to nothing, for every representation.
	outer := NewOneToOne([]Rid{-1, -1, -1})
	inner := NewOneToOne([]Rid{5, 6, 7})
	for on, o := range encodedForms(outer) {
		for in, i := range encodedForms(inner) {
			c := Compose(o, i)
			if c.Len() != 3 {
				t.Fatalf("outer=%s inner=%s: Len = %d, want 3", on, in, c.Len())
			}
			for e := 0; e < 3; e++ {
				if got := c.TraceOne(Rid(e), nil); len(got) != 0 {
					t.Errorf("outer=%s inner=%s entry %d: %v, want empty", on, in, e, got)
				}
			}
		}
	}
	// -1 in the middle layer: outer maps into inner entries that drop.
	outer2 := NewOneToOne([]Rid{0, 1, 2})
	inner2 := NewOneToOne([]Rid{-1, 4, -1})
	want := [][]Rid{nil, {4}, nil}
	for on, o := range encodedForms(outer2) {
		for in, i := range encodedForms(inner2) {
			got := traceAll(Compose(o, i))
			for e := range want {
				if len(want[e]) == 0 && len(got[e]) == 0 {
					continue
				}
				if !reflect.DeepEqual(got[e], want[e]) {
					t.Errorf("mid-drop outer=%s inner=%s entry %d: %v, want %v", on, in, e, got[e], want[e])
				}
			}
		}
	}
}

func TestComposeOneToOneIntoOneToMany(t *testing.T) {
	// A filter (OneToOne with drops) composed into a group-by backward index
	// (OneToMany): the canonical select-then-aggregate propagation.
	filterBW := NewOneToOne([]Rid{2, 4, 6, -1})
	groupBW := manyOf([]Rid{0, 2}, []Rid{1}, nil, []Rid{3, 0})
	// Compose(groupBW, filterBW): group entry → filtered-input entries →
	// base rids.
	want := [][]Rid{{2, 6}, {4}, nil, {2}} // entry 3: {3→-1 dropped, 0→2}
	for gn, g := range encodedForms(groupBW) {
		for fn, f := range encodedForms(filterBW) {
			c := Compose(g, f)
			if g.Kind == OneToMany && f.Kind == OneToOne && c.Kind != OneToMany {
				t.Errorf("raw composition kind = %v, want OneToMany", c.Kind)
			}
			got := traceAll(c)
			for e := range want {
				if len(want[e]) == 0 && len(got[e]) == 0 {
					continue
				}
				if !reflect.DeepEqual(got[e], want[e]) {
					t.Errorf("group=%s filter=%s entry %d: %v, want %v", gn, fn, e, got[e], want[e])
				}
			}
		}
	}
}

func TestInvertEdgeCases(t *testing.T) {
	// Zero-target inversion: a forward index whose target side is empty
	// (e.g. a selection that matched nothing). All entries are -1; the
	// inversion must produce an empty-but-valid index, not panic.
	fw := NewOneToOne([]Rid{-1, -1, -1})
	for n, f := range encodedForms(fw) {
		inv := Invert(f, 0)
		if inv.Len() != 0 {
			t.Errorf("%s: zero-target inversion has %d entries", n, inv.Len())
		}
	}

	// Zero-source inversion: an empty OneToMany inverts to all-empty lists.
	empty := manyOf()
	inv := Invert(empty, 4)
	if inv.Len() != 4 {
		t.Fatalf("Len = %d, want 4", inv.Len())
	}
	for i := 0; i < 4; i++ {
		if got := inv.TraceOne(Rid(i), nil); len(got) != 0 {
			t.Errorf("entry %d: %v, want empty", i, got)
		}
	}

	// Inversion with empty lists interleaved, duplicates preserved, and
	// first-seen (ascending source) order per target.
	bw := manyOf([]Rid{1, 0}, nil, []Rid{1, 1}, []Rid{2})
	want := [][]Rid{{0}, {0, 2, 2}, {3}}
	for n, b := range encodedForms(bw) {
		got := traceAll(Invert(b, 3))
		for e := range want {
			if !reflect.DeepEqual(got[e], want[e]) {
				t.Errorf("%s: target %d: %v, want %v", n, e, got[e], want[e])
			}
		}
	}

	// Round trip: inverting twice restores the original mapping (as a
	// OneToMany, with per-entry sets preserved in ascending target order).
	orig := manyOf([]Rid{0, 2}, []Rid{1}, []Rid{2})
	doubled := Invert(Invert(orig, 3), 3)
	got := traceAll(doubled)
	want2 := [][]Rid{{0, 2}, {1}, {2}}
	for e := range want2 {
		if !reflect.DeepEqual(got[e], want2[e]) {
			t.Errorf("double inversion entry %d: %v, want %v", e, got[e], want2[e])
		}
	}
}
