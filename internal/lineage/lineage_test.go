package lineage

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAppendRidGrowthPolicy(t *testing.T) {
	var s []Rid
	s = AppendRid(s, 1)
	if cap(s) != initialCap {
		t.Fatalf("first append cap = %d, want %d", cap(s), initialCap)
	}
	for i := 1; i < initialCap; i++ {
		s = AppendRid(s, Rid(i))
	}
	if cap(s) != initialCap {
		t.Fatalf("cap after filling = %d, want %d", cap(s), initialCap)
	}
	s = AppendRid(s, 10)
	if cap(s) != 15 { // 10 * 1.5
		t.Fatalf("cap after first growth = %d, want 15", cap(s))
	}
	for i := len(s); i < 15; i++ {
		s = AppendRid(s, Rid(i))
	}
	s = AppendRid(s, 99)
	if cap(s) != 22 { // 15 + 15/2
		t.Fatalf("cap after second growth = %d, want 22", cap(s))
	}
	for i, v := range []Rid{0, 1, 2, 3, 4, 5, 6, 7, 8} {
		_ = v
		_ = i
	}
	if s[0] != 1 || s[10] != 10 || s[15] != 99 {
		t.Fatal("values lost across growth")
	}
}

func TestRidIndexAppendAndList(t *testing.T) {
	ix := NewRidIndex(3)
	ix.Append(0, 5)
	ix.Append(0, 6)
	ix.Append(2, 7)
	if got := ix.List(0); !reflect.DeepEqual(got, []Rid{5, 6}) {
		t.Errorf("List(0) = %v", got)
	}
	if got := ix.List(1); len(got) != 0 {
		t.Errorf("List(1) = %v, want empty", got)
	}
	if ix.Cardinality() != 3 {
		t.Errorf("Cardinality = %d, want 3", ix.Cardinality())
	}
	if ix.Len() != 3 {
		t.Errorf("Len = %d, want 3", ix.Len())
	}
}

func TestRidIndexWithCountsNoResize(t *testing.T) {
	counts := []int32{3, 0, 2}
	ix := NewRidIndexWithCounts(counts)
	base := ix.lists[0][:1]
	_ = base
	ix.AppendFast(0, 1)
	ix.AppendFast(0, 2)
	ix.AppendFast(0, 3)
	ix.AppendFast(2, 9)
	if got := ix.List(0); !reflect.DeepEqual(got, []Rid{1, 2, 3}) {
		t.Errorf("List(0) = %v", got)
	}
	if got := ix.List(2); !reflect.DeepEqual(got, []Rid{9}) {
		t.Errorf("List(2) = %v", got)
	}
	// Overflow past the estimate must still work (falls back to growth).
	ix.AppendFast(1, 4)
	if got := ix.List(1); !reflect.DeepEqual(got, []Rid{4}) {
		t.Errorf("List(1) overflow = %v", got)
	}
}

func TestRidIndexSetList(t *testing.T) {
	ix := NewRidIndex(2)
	ix.SetList(1, []Rid{7, 8, 9})
	if got := ix.List(1); !reflect.DeepEqual(got, []Rid{7, 8, 9}) {
		t.Errorf("List(1) = %v", got)
	}
}

func TestOneToOneTrace(t *testing.T) {
	ix := NewOneToOne([]Rid{2, -1, 0})
	if got := ix.Trace([]Rid{0, 1, 2}); !reflect.DeepEqual(got, []Rid{2, 0}) {
		t.Errorf("Trace = %v (filtered rid -1 must be skipped)", got)
	}
	if ix.Len() != 3 {
		t.Errorf("Len = %d", ix.Len())
	}
}

func TestOneToManyTrace(t *testing.T) {
	ridx := NewRidIndex(2)
	ridx.Append(0, 1)
	ridx.Append(0, 2)
	ridx.Append(1, 2)
	ix := NewOneToMany(ridx)
	got := ix.Trace([]Rid{0, 1})
	if !reflect.DeepEqual(got, []Rid{1, 2, 2}) {
		t.Errorf("Trace = %v, want duplicates preserved", got)
	}
	if d := ix.TraceDistinct([]Rid{0, 1}); !reflect.DeepEqual(d, []Rid{1, 2}) {
		t.Errorf("TraceDistinct = %v", d)
	}
}

func TestComposeOneToOne(t *testing.T) {
	outer := NewOneToOne([]Rid{1, -1, 0})
	inner := NewOneToOne([]Rid{5, 6})
	c := Compose(outer, inner)
	if c.Kind != OneToOne {
		t.Fatal("compose of two 1-1 should stay 1-1")
	}
	if !reflect.DeepEqual(c.Arr, []Rid{6, -1, 5}) {
		t.Errorf("composed = %v", c.Arr)
	}
}

func TestComposeMixed(t *testing.T) {
	// outer: output -> intermediate (1:N), inner: intermediate -> base (1:1)
	ridx := NewRidIndex(2)
	ridx.Append(0, 0)
	ridx.Append(0, 1)
	ridx.Append(1, 2)
	outer := NewOneToMany(ridx)
	inner := NewOneToOne([]Rid{10, 11, 12})
	c := Compose(outer, inner)
	if got := c.Trace([]Rid{0}); !reflect.DeepEqual(got, []Rid{10, 11}) {
		t.Errorf("Trace(0) = %v", got)
	}
	if got := c.Trace([]Rid{1}); !reflect.DeepEqual(got, []Rid{12}) {
		t.Errorf("Trace(1) = %v", got)
	}
}

func TestInvertOneToOne(t *testing.T) {
	// forward: input rid -> output rid
	fw := NewOneToOne([]Rid{1, -1, 0, 1})
	bw := Invert(fw, 2)
	if got := bw.Trace([]Rid{1}); !reflect.DeepEqual(got, []Rid{0, 3}) {
		t.Errorf("Invert Trace(1) = %v", got)
	}
	if got := bw.Trace([]Rid{0}); !reflect.DeepEqual(got, []Rid{2}) {
		t.Errorf("Invert Trace(0) = %v", got)
	}
}

func TestInvertRoundTripProperty(t *testing.T) {
	// For random 1-1 forward maps, inverting twice preserves the relation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nIn, nOut := 1+rng.Intn(50), 1+rng.Intn(20)
		fw := make([]Rid, nIn)
		for i := range fw {
			if rng.Intn(4) == 0 {
				fw[i] = -1
			} else {
				fw[i] = Rid(rng.Intn(nOut))
			}
		}
		bw := Invert(NewOneToOne(fw), nOut)
		// Every (in -> out) edge must appear in the inverse and vice versa.
		for in, out := range fw {
			if out < 0 {
				continue
			}
			found := false
			for _, r := range bw.Many.List(int(out)) {
				if r == Rid(in) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		edges := 0
		for o := 0; o < nOut; o++ {
			for _, in := range bw.Many.List(o) {
				if fw[in] != Rid(o) {
					return false
				}
				edges++
			}
		}
		want := 0
		for _, out := range fw {
			if out >= 0 {
				want++
			}
		}
		return edges == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCaptureAccessors(t *testing.T) {
	c := NewCapture()
	bw := NewOneToOne([]Rid{0, 1})
	c.SetBackward("r", bw)
	if !c.HasBackward("r") || c.HasForward("r") {
		t.Fatal("Has* flags wrong")
	}
	got, err := c.Backward("r", []Rid{1})
	if err != nil || !reflect.DeepEqual(got, []Rid{1}) {
		t.Fatalf("Backward = %v, %v", got, err)
	}
	if _, err := c.Backward("missing", nil); err == nil {
		t.Fatal("Backward on missing relation should error")
	}
	if _, err := c.Forward("r", nil); err == nil {
		t.Fatal("Forward should error when only backward captured (pruning)")
	}
	c.SetForward("r", NewOneToOne([]Rid{1, 0}))
	fwd, err := c.Forward("r", []Rid{0})
	if err != nil || !reflect.DeepEqual(fwd, []Rid{1}) {
		t.Fatalf("Forward = %v, %v", fwd, err)
	}
	if rels := c.Relations(); !reflect.DeepEqual(rels, []string{"r"}) {
		t.Errorf("Relations = %v", rels)
	}
}

func TestCaptureDistinct(t *testing.T) {
	c := NewCapture()
	ridx := NewRidIndex(1)
	ridx.Append(0, 3)
	ridx.Append(0, 3)
	ridx.Append(0, 4)
	c.SetBackward("r", NewOneToMany(ridx))
	got, err := c.BackwardDistinct("r", []Rid{0})
	if err != nil || !reflect.DeepEqual(got, []Rid{3, 4}) {
		t.Fatalf("BackwardDistinct = %v, %v", got, err)
	}
	c.SetForward("r", NewOneToMany(ridx))
	fw, err := c.ForwardDistinct("r", []Rid{0, 0})
	if err != nil || !reflect.DeepEqual(fw, []Rid{3, 4}) {
		t.Fatalf("ForwardDistinct = %v, %v", fw, err)
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Code("MAIL")
	b := d.Code("SHIP")
	if a == b {
		t.Fatal("distinct values must get distinct codes")
	}
	if c := d.Code("MAIL"); c != a {
		t.Fatal("repeated value must reuse its code")
	}
	if v := d.Value(b); v != "SHIP" {
		t.Errorf("Value(%d) = %q", b, v)
	}
	if _, ok := d.Lookup("AIR"); ok {
		t.Error("Lookup of never-interned value should report false")
	}
	if d.Size() != 2 {
		t.Errorf("Size = %d", d.Size())
	}
}

func TestPartitionedIndex(t *testing.T) {
	p := NewPartitionedIndex(2, nil)
	p.Append(0, 10, 1)
	p.Append(0, 10, 2)
	p.Append(0, 20, 3)
	p.Append(1, 10, 4)
	if got := p.Partition(0, 10); !reflect.DeepEqual(got, []Rid{1, 2}) {
		t.Errorf("Partition(0,10) = %v", got)
	}
	if got := p.Partition(0, 99); got != nil {
		t.Errorf("missing partition = %v, want nil", got)
	}
	all := p.All(0)
	if len(all) != 3 {
		t.Errorf("All(0) = %v", all)
	}
	if p.Cardinality() != 4 {
		t.Errorf("Cardinality = %d", p.Cardinality())
	}
	keys := p.Partitions(0)
	if len(keys) != 2 {
		t.Errorf("Partitions(0) = %v", keys)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
}
