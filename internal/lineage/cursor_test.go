package lineage

import (
	"math/rand"
	"reflect"
	"testing"

	"smoke/internal/pool"
)

// expandViaCursor decodes an encoded byte sequence with the chunk cursor.
func expandViaCursor(b []byte) []Rid {
	var out []Rid
	c := NewEncCursor(b)
	for {
		ch, ok := c.Next()
		if !ok {
			return out
		}
		out = ch.ExpandInto(out)
	}
}

func TestChunkCursorRoundTrip(t *testing.T) {
	for name, list := range listShapes() {
		data := appendEncodedList(nil, list)
		got := expandViaCursor(data)
		if len(list) == 0 {
			if len(got) != 0 {
				t.Errorf("%s: got %v, want empty", name, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, list) {
			t.Errorf("%s: cursor decoded %v, want %v", name, got, list)
		}
		// Multi-chunk: the concatenation of two lists' bytes decodes as the
		// concatenation of the lists (the self-contained-chunk contract).
		double := append(append([]byte{}, data...), data...)
		want := append(append([]Rid{}, list...), list...)
		if got := expandViaCursor(double); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: concatenated chunks decoded %v, want %v", name, got, want)
		}
	}
}

func TestChunkBounds(t *testing.T) {
	for name, list := range listShapes() {
		if len(list) == 0 {
			continue
		}
		c := NewEncCursor(appendEncodedList(nil, list))
		ch, ok := c.Next()
		if !ok {
			t.Fatalf("%s: no chunk", name)
		}
		lo, hi, ok := ch.Bounds()
		if !ok {
			continue // raw/delta/RLE: bounds require decoding
		}
		elems := ch.ExpandInto(nil)
		if lo != elems[0] || hi != elems[len(elems)-1] {
			t.Errorf("%s: Bounds = [%d,%d], want [%d,%d]", name, lo, hi, elems[0], elems[len(elems)-1])
		}
	}
}

func TestRawCursor(t *testing.T) {
	list := []Rid{4, 9, 1, 1, 300}
	c := NewRawCursor(list)
	ch, ok := c.Next()
	if !ok || ch.N != len(list) {
		t.Fatalf("raw cursor: ok=%v n=%d", ok, ch.N)
	}
	if got := ch.ExpandInto(nil); !reflect.DeepEqual(got, list) {
		t.Fatalf("raw cursor expanded %v, want %v", got, list)
	}
	if _, ok := c.Next(); ok {
		t.Fatal("raw cursor should yield exactly one chunk")
	}
	if _, ok := NewRawCursor(nil).Next(); ok {
		t.Fatal("empty raw cursor should yield no chunks")
	}
}

func buildEncIndex(lists [][]Rid) *EncodedIndex {
	b := NewEncodedBuilder(len(lists))
	for _, l := range lists {
		b.Add(l)
	}
	return b.Build()
}

func TestTraceInSituMatchesTrace(t *testing.T) {
	shapes := listShapes()
	lists := [][]Rid{
		shapes["range"], {}, shapes["clustered"], shapes["dense8"],
		shapes["sparse"], shapes["random"], shapes["single"],
	}
	e := buildEncIndex(lists)
	ix := NewEncodedMany(e)
	for _, src := range [][]Rid{
		{},
		{0},
		{1}, // empty list
		{0, 2, 3, 5},
		{5, 0, 5, 2, 2}, // duplicates and non-ascending seeds
		{0, 1, 2, 3, 4, 5, 6},
	} {
		want := ix.Trace(src)
		got := e.TraceInSitu(src)
		if got.Len() != len(want) {
			t.Fatalf("src %v: N = %d, want %d", src, got.Len(), len(want))
		}
		dec := got.AppendTo(nil)
		if len(want) == 0 {
			if len(dec) != 0 {
				t.Fatalf("src %v: decoded %v, want empty", src, dec)
			}
			continue
		}
		if !reflect.DeepEqual(dec, want) {
			t.Fatalf("src %v: in-situ trace decoded %v, want %v", src, dec, want)
		}
	}
}

func TestParTraceInSituMatchesSerial(t *testing.T) {
	lists := make([][]Rid, 500)
	rng := rand.New(rand.NewSource(3))
	for i := range lists {
		n := rng.Intn(20)
		l := make([]Rid, n)
		base := Rid(i * 50)
		for j := range l {
			base += Rid(rng.Intn(5))
			l[j] = base
		}
		lists[i] = l
	}
	e := buildEncIndex(lists)
	src := make([]Rid, 300)
	for i := range src {
		src[i] = Rid(rng.Intn(len(lists)))
	}
	want := e.TraceInSitu(src)
	pl := pool.New(4)
	defer pl.Close()
	got := ParTraceInSitu(e, src, 4, pl)
	if got.N != want.N || !reflect.DeepEqual(got.AppendTo(nil), want.AppendTo(nil)) {
		t.Fatal("parallel in-situ trace differs from serial")
	}
}

// refIntersect merge-intersects two strictly ascending lists.
func refIntersect(a, b []Rid) []Rid {
	out := []Rid{}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func TestIntersectEncoded(t *testing.T) {
	mkRange := func(lo, n Rid) []Rid {
		l := make([]Rid, n)
		for i := range l {
			l[i] = lo + Rid(i)
		}
		return l
	}
	mkStride := func(lo, stride, n Rid) []Rid {
		l := make([]Rid, n)
		for i := range l {
			l[i] = lo + Rid(i)*stride
		}
		return l
	}
	cases := map[string][2][]Rid{
		"rangeRangeOverlap":  {mkRange(0, 100), mkRange(50, 100)},
		"rangeRangeDisjoint": {mkRange(0, 100), mkRange(500, 100)},
		"rangeRangeNested":   {mkRange(0, 1000), mkRange(200, 10)},
		"bitmapBitmap":       {mkStride(0, 3, 200), mkStride(0, 2, 300)},
		"bitmapUnaligned":    {mkStride(5, 3, 200), mkStride(2, 2, 300)},
		"rangeBitmap":        {mkRange(100, 300), mkStride(0, 3, 200)},
		"rleRle":             {listShapes()["clustered"], listShapes()["clustered"]},
		"rleRange":           {listShapes()["clustered"], mkRange(0, 2000)},
		"sparseSparse":       {mkStride(0, 1000, 64), mkStride(0, 1500, 40)},
		"empty":              {nil, mkRange(0, 10)},
	}
	for name, c := range cases {
		a, b := c[0], c[1]
		da := appendEncodedList(nil, a)
		db := appendEncodedList(nil, b)
		want := refIntersect(a, b)
		got := IntersectEncoded(da, db)
		dec := got.AppendTo(nil)
		if got.Len() != len(want) || !reflect.DeepEqual(append([]Rid{}, dec...), append([]Rid{}, want...)) {
			t.Errorf("%s: got %d elems %v, want %d elems %v", name, got.Len(), dec, len(want), want)
		}
		// Symmetric.
		rev := IntersectEncoded(db, da)
		if rev.Len() != len(want) || !reflect.DeepEqual(append([]Rid{}, rev.AppendTo(nil)...), append([]Rid{}, want...)) {
			t.Errorf("%s (swapped): got %v, want %v", name, rev.AppendTo(nil), want)
		}
	}

	// Multi-chunk operands: concatenated partition lists against one range.
	partA := appendEncodedList(nil, mkRange(0, 500))
	partA = appendEncodedList(partA, mkStride(1000, 3, 200))
	partA = appendEncodedList(partA, mkStride(5000, 1000, 59))
	flatA := expandViaCursor(partA)
	other := mkStride(0, 7, 3000)
	want := refIntersect(flatA, other)
	got := IntersectEncoded(partA, appendEncodedList(nil, other))
	if !reflect.DeepEqual(append([]Rid{}, got.AppendTo(nil)...), append([]Rid{}, want...)) {
		t.Fatalf("multi-chunk: got %v, want %v", got.AppendTo(nil), want)
	}
}

// TestIntersectEncodedFastPathShapes pins that the specialized paths are
// actually exercised and keep the result encoded: two overlapping ranges
// intersect into a few header bytes regardless of overlap size, and two
// bitmap chunks intersect into a bitmap chunk.
func TestIntersectEncodedFastPathShapes(t *testing.T) {
	big := make([]Rid, 1_000_000)
	for i := range big {
		big[i] = Rid(i)
	}
	shifted := make([]Rid, 1_000_000)
	for i := range shifted {
		shifted[i] = Rid(i + 500_000)
	}
	da := appendEncodedList(nil, big)
	db := appendEncodedList(nil, shifted)
	if da[0] != chunkRange || db[0] != chunkRange {
		t.Fatal("setup: expected range encodings")
	}
	got := IntersectEncoded(da, db)
	if got.Len() != 500_000 {
		t.Fatalf("range∩range N = %d, want 500000", got.Len())
	}
	if got.SizeBytes() > 16 {
		t.Fatalf("range∩range result is %d bytes; the O(1) path should emit one range chunk", got.SizeBytes())
	}

	evens := make([]Rid, 0, 4000)
	thirds := make([]Rid, 0, 4000)
	for i := Rid(0); i < 8000; i += 2 {
		evens = append(evens, i)
	}
	for i := Rid(3); i < 8000; i += 3 {
		thirds = append(thirds, i)
	}
	de := appendEncodedList(nil, evens)
	dt := appendEncodedList(nil, thirds)
	if de[0] != chunkBitmap || dt[0] != chunkBitmap {
		t.Skipf("setup: encoder picked tags %d/%d, not bitmap", de[0], dt[0])
	}
	got = IntersectEncoded(de, dt)
	if want := refIntersect(evens, thirds); got.Len() != len(want) ||
		!reflect.DeepEqual(got.AppendTo(nil), want) {
		t.Fatalf("bitmap∩bitmap: got %d elems, want %d", got.Len(), len(want))
	}
	if len(got.Data) == 0 || got.Data[0] != chunkBitmap {
		t.Fatal("bitmap∩bitmap should emit a bitmap chunk")
	}
}

func TestArrCursorMatchesGet(t *testing.T) {
	const n = 50_000
	arr := make([]Rid, n)
	out := Rid(0)
	for i := range arr {
		switch (i / 500) % 3 {
		case 0:
			arr[i] = out
			out++
		case 1:
			arr[i] = -1
		default:
			arr[i] = 7
		}
	}
	e := EncodeArr(arr)
	if e == nil {
		t.Fatal("run-shaped array should compress")
	}
	// Ascending strided probes (the forward-trace shape).
	c := e.Cursor()
	for i := 0; i < n; i += 7 {
		if got := c.Get(Rid(i)); got != arr[i] {
			t.Fatalf("seq Get(%d) = %d, want %d", i, got, arr[i])
		}
	}
	// Full sequential scan.
	c = e.Cursor()
	for i := 0; i < n; i++ {
		if got := c.Get(Rid(i)); got != arr[i] {
			t.Fatalf("scan Get(%d) = %d, want %d", i, got, arr[i])
		}
	}
	// Random probe order: correctness must not depend on monotonicity.
	rng := rand.New(rand.NewSource(11))
	c = e.Cursor()
	for k := 0; k < 10_000; k++ {
		i := rng.Intn(n)
		if got := c.Get(Rid(i)); got != arr[i] {
			t.Fatalf("random Get(%d) = %d, want %d", i, got, arr[i])
		}
	}
}
