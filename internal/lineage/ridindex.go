package lineage

// RidIndex is the 1-to-N lineage representation (§3.1, Figure 3): an inverted
// index whose i-th entry is the rid array of input (or output) records
// associated with the i-th output (or input) record. Backward lineage of
// GROUP BY and forward lineage of JOIN use this shape.
type RidIndex struct {
	lists [][]Rid
}

// NewRidIndex returns an index with n (initially empty) entries.
func NewRidIndex(n int) *RidIndex {
	return &RidIndex{lists: make([][]Rid, n)}
}

// NewRidIndexWithCounts returns an index whose entry i is preallocated to
// exactly counts[i] capacity. This is the cardinality-statistics optimization:
// with exact counts, Append never resizes.
func NewRidIndexWithCounts(counts []int32) *RidIndex {
	ix := &RidIndex{lists: make([][]Rid, len(counts))}
	total := 0
	for _, c := range counts {
		total += int(c)
	}
	// One backing allocation for all lists keeps them dense in memory.
	backing := make([]Rid, 0, total)
	off := 0
	for i, c := range counts {
		ix.lists[i] = backing[off : off : off+int(c)]
		off += int(c)
	}
	return ix
}

// Len returns the number of entries.
func (ix *RidIndex) Len() int { return len(ix.lists) }

// Append adds r to entry i under the growth policy.
func (ix *RidIndex) Append(i int, r Rid) {
	ix.lists[i] = AppendRid(ix.lists[i], r)
}

// AppendFast adds r to entry i assuming capacity was preallocated; it falls
// back to the growth policy if the estimate was too small.
func (ix *RidIndex) AppendFast(i int, r Rid) {
	l := ix.lists[i]
	if len(l) < cap(l) {
		ix.lists[i] = l[:len(l)+1]
		ix.lists[i][len(l)] = r
		return
	}
	ix.lists[i] = AppendRid(l, r)
}

// SetList installs a complete rid array as entry i (used when hash-table
// bucket lists are reused directly as lineage lists — the reuse principle P4).
func (ix *RidIndex) SetList(i int, rids []Rid) { ix.lists[i] = rids }

// List returns the rid array of entry i. The returned slice is owned by the
// index; callers must not mutate it.
func (ix *RidIndex) List(i int) []Rid { return ix.lists[i] }

// Cardinality returns the total number of rid entries across all lists.
func (ix *RidIndex) Cardinality() int {
	n := 0
	for _, l := range ix.lists {
		n += len(l)
	}
	return n
}

// Kind distinguishes the physical lineage representations.
type Kind uint8

const (
	// OneToOne is a single rid array: entry i maps record i to exactly one
	// record (rid -1 encodes "no match", e.g. records dropped by a filter).
	OneToOne Kind = iota
	// OneToMany is a RidIndex: entry i maps record i to a set of records.
	OneToMany
	// EncodedOne is a compressed rid array (run directory, EncodedArr).
	EncodedOne
	// EncodedMany is a compressed rid index (per-list adaptive chunks,
	// EncodedIndex). Queries read it in place; it is never decompressed
	// wholesale.
	EncodedMany
)

// Index is a direction-agnostic lineage index: a rid array or a rid index, in
// raw or encoded form. Backward indexes map output rids to input rids;
// forward indexes map input rids to output rids.
type Index struct {
	Kind   Kind
	Arr    []Rid         // when Kind == OneToOne
	Many   *RidIndex     // when Kind == OneToMany
	EncArr *EncodedArr   // when Kind == EncodedOne
	Enc    *EncodedIndex // when Kind == EncodedMany
}

// NewOneToOne wraps a rid array.
func NewOneToOne(arr []Rid) *Index { return &Index{Kind: OneToOne, Arr: arr} }

// NewOneToMany wraps a rid index.
func NewOneToMany(ix *RidIndex) *Index { return &Index{Kind: OneToMany, Many: ix} }

// NewEncodedOne wraps a compressed rid array.
func NewEncodedOne(e *EncodedArr) *Index { return &Index{Kind: EncodedOne, EncArr: e} }

// NewEncodedMany wraps a compressed rid index.
func NewEncodedMany(e *EncodedIndex) *Index { return &Index{Kind: EncodedMany, Enc: e} }

// Encoded reports whether the index is stored in compressed form.
func (ix *Index) Encoded() bool { return ix.Kind == EncodedOne || ix.Kind == EncodedMany }

// EncodeIndex returns the compressed form of ix (or ix itself when already
// encoded, or when a rid array is incompressible and raw is the adaptive
// choice). Trace, Compose, and Invert read the result in place.
func EncodeIndex(ix *Index) *Index {
	switch ix.Kind {
	case OneToOne:
		if e := EncodeArr(ix.Arr); e != nil {
			return NewEncodedOne(e)
		}
		return ix
	case OneToMany:
		return NewEncodedMany(EncodeRidIndex(ix.Many))
	}
	return ix
}

// SizeBytes returns the index's payload memory footprint (4 bytes per rid
// for raw forms; the encoded byte size otherwise).
func (ix *Index) SizeBytes() int {
	switch ix.Kind {
	case OneToOne:
		return 4 * len(ix.Arr)
	case OneToMany:
		return 4*ix.Many.Cardinality() + 24*ix.Many.Len() // lists + slice headers
	case EncodedOne:
		return ix.EncArr.SizeBytes()
	default:
		return ix.Enc.SizeBytes()
	}
}

// Len returns the number of entries (source records) in the index.
func (ix *Index) Len() int {
	switch ix.Kind {
	case OneToOne:
		return len(ix.Arr)
	case OneToMany:
		return ix.Many.Len()
	case EncodedOne:
		return ix.EncArr.Len()
	default:
		return ix.Enc.Len()
	}
}

// TraceOne appends the records mapped from source record i to dst and
// returns it. Encoded indexes decode the one touched entry in place.
func (ix *Index) TraceOne(i Rid, dst []Rid) []Rid {
	switch ix.Kind {
	case OneToOne:
		if r := ix.Arr[i]; r >= 0 {
			dst = append(dst, r)
		}
		return dst
	case OneToMany:
		return append(dst, ix.Many.List(int(i))...)
	case EncodedOne:
		if r := ix.EncArr.Get(i); r >= 0 {
			dst = append(dst, r)
		}
		return dst
	default:
		return ix.Enc.AppendList(int(i), dst)
	}
}

// seqTracer returns a TraceOne-shaped probe function specialized for
// mostly-ascending probe sequences: EncodedOne indexes probe through a
// shared ArrCursor (run-pointer advance instead of per-probe binary search);
// every other kind is TraceOne itself.
func (ix *Index) seqTracer() func(i Rid, dst []Rid) []Rid {
	if ix.Kind != EncodedOne {
		return ix.TraceOne
	}
	c := ix.EncArr.Cursor()
	return func(i Rid, dst []Rid) []Rid {
		if r := c.Get(i); r >= 0 {
			dst = append(dst, r)
		}
		return dst
	}
}

// Trace returns the union (with duplicates preserved, per the paper's
// transformational semantics) of the records mapped from each source rid.
// Encoded indexes trace through their cursor forms: EncodedMany sums the
// chunk headers first so the result is one exact allocation, and EncodedOne
// probes through an ArrCursor (amortized O(1) per probe for the common
// ascending seed order instead of a binary search per rid).
func (ix *Index) Trace(src []Rid) []Rid {
	switch ix.Kind {
	case EncodedMany:
		total := 0
		for _, i := range src {
			total += ix.Enc.ListLen(int(i))
		}
		dst := make([]Rid, 0, total)
		for _, i := range src {
			dst = ix.Enc.AppendList(int(i), dst)
		}
		return dst
	case EncodedOne:
		dst := make([]Rid, 0, len(src))
		c := ix.EncArr.Cursor()
		for _, i := range src {
			if r := c.Get(i); r >= 0 {
				dst = append(dst, r)
			}
		}
		return dst
	}
	var dst []Rid
	for _, i := range src {
		dst = ix.TraceOne(i, dst)
	}
	return dst
}

// Dedup keeps the first occurrence of each rid, in order — the set
// semantics (which-provenance) applied to an already-expanded rid bag. The
// input is not modified.
func Dedup(rids []Rid) []Rid {
	seen := make(map[Rid]struct{}, len(rids))
	out := rids[:0:0]
	for _, r := range rids {
		if _, ok := seen[r]; ok {
			continue
		}
		seen[r] = struct{}{}
		out = append(out, r)
	}
	return out
}

// DenseForward materializes a forward index over n source records as a
// dense rid array (-1 where a record maps to nothing): the perfect-hash
// form that counter-increment consumers (crossfilter BT+FT, profiling UG)
// read per record. One-to-one raw indexes return their array as-is; other
// forms keep each record's first mapping.
func (ix *Index) DenseForward(n int) []Rid {
	if ix.Kind == OneToOne {
		return ix.Arr
	}
	out := make([]Rid, n)
	if ix.Kind == EncodedOne {
		// The scan probes rids 0..n-1 in order: the cursor walks the run
		// directory once instead of binary-searching per entry.
		c := ix.EncArr.Cursor()
		for i := range out {
			out[i] = c.Get(Rid(i))
		}
		return out
	}
	var buf []Rid
	for i := 0; i < n; i++ {
		buf = ix.TraceOne(Rid(i), buf[:0])
		if len(buf) > 0 {
			out[i] = buf[0]
		} else {
			out[i] = -1
		}
	}
	return out
}

// TraceDistinct returns the set of records mapped from the source rids, in
// first-seen order. Lineage consuming queries that re-aggregate use Trace;
// highlight-style consumers use TraceDistinct.
func (ix *Index) TraceDistinct(src []Rid) []Rid {
	seen := map[Rid]struct{}{}
	var dst []Rid
	var buf []Rid
	for _, i := range src {
		buf = ix.TraceOne(i, buf[:0])
		for _, r := range buf {
			if _, ok := seen[r]; !ok {
				seen[r] = struct{}{}
				dst = append(dst, r)
			}
		}
	}
	return dst
}

// Compose returns an index mapping the sources of outer to the targets of
// inner: outer maps A→B, inner maps B→C, result maps A→C. This implements
// lineage propagation across operator boundaries (§3.3): after composing, the
// intermediate (B) indexes can be garbage collected. Encoded operands are
// read in place, one entry at a time, and yield an encoded result (each
// composed list encodes as soon as it is complete — the full raw index is
// never materialized).
func Compose(outer, inner *Index) *Index {
	if outer.Kind == OneToOne && inner.Kind == OneToOne {
		arr := make([]Rid, len(outer.Arr))
		for i, mid := range outer.Arr {
			if mid < 0 {
				arr[i] = -1
			} else {
				arr[i] = inner.Arr[mid]
			}
		}
		return NewOneToOne(arr)
	}
	n := outer.Len()
	if outer.Encoded() || inner.Encoded() {
		b := NewEncodedBuilder(n)
		outerOne, innerOne := outer.seqTracer(), inner.seqTracer()
		var mids, row []Rid
		for i := 0; i < n; i++ {
			mids = outerOne(Rid(i), mids[:0])
			row = row[:0]
			for _, mid := range mids {
				row = innerOne(mid, row)
			}
			b.Add(row)
		}
		return NewEncodedMany(b.Build())
	}
	out := NewRidIndex(n)
	var buf []Rid
	for i := 0; i < n; i++ {
		buf = outer.TraceOne(Rid(i), buf[:0])
		for _, mid := range buf {
			out.lists[i] = inner.TraceOne(mid, out.lists[i])
		}
	}
	return NewOneToMany(out)
}

// Invert builds the opposite-direction index given the number of target
// records. Inverting a forward index yields a backward index and vice versa.
// An encoded input is streamed in place (two decode passes, no materialized
// raw copy of the input) and yields an encoded result.
func Invert(ix *Index, targets int) *Index {
	// Count first so the result is exactly sized (no growth cost).
	counts := make([]int32, targets)
	switch ix.Kind {
	case OneToOne:
		for _, r := range ix.Arr {
			if r >= 0 {
				counts[r]++
			}
		}
	case OneToMany:
		for i := 0; i < ix.Many.Len(); i++ {
			for _, r := range ix.Many.List(i) {
				counts[r]++
			}
		}
	case EncodedOne:
		// Both inversion passes scan entries 0..n-1 in order; the cursor
		// turns each pass into one walk of the run directory.
		c := ix.EncArr.Cursor()
		for i := 0; i < ix.EncArr.Len(); i++ {
			if r := c.Get(Rid(i)); r >= 0 {
				counts[r]++
			}
		}
	default:
		n := ix.Len()
		var buf []Rid
		for i := 0; i < n; i++ {
			buf = ix.TraceOne(Rid(i), buf[:0])
			for _, r := range buf {
				counts[r]++
			}
		}
	}
	out := NewRidIndexWithCounts(counts)
	switch ix.Kind {
	case OneToOne:
		for i, r := range ix.Arr {
			if r >= 0 {
				out.AppendFast(int(r), Rid(i))
			}
		}
	case OneToMany:
		for i := 0; i < ix.Many.Len(); i++ {
			for _, r := range ix.Many.List(i) {
				out.AppendFast(int(r), Rid(i))
			}
		}
	case EncodedOne:
		c := ix.EncArr.Cursor()
		for i := 0; i < ix.EncArr.Len(); i++ {
			if r := c.Get(Rid(i)); r >= 0 {
				out.AppendFast(int(r), Rid(i))
			}
		}
	default:
		n := ix.Len()
		var buf []Rid
		for i := 0; i < n; i++ {
			buf = ix.TraceOne(Rid(i), buf[:0])
			for _, r := range buf {
				out.AppendFast(int(r), Rid(i))
			}
		}
	}
	if ix.Encoded() {
		return NewEncodedMany(EncodeRidIndex(out))
	}
	return NewOneToMany(out)
}
