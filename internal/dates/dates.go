// Package dates converts between civil dates and day numbers. The engine
// stores DATE columns as int64 days since 1970-01-01, so date predicates and
// EXTRACT(year/month) run as integer arithmetic inside operator loops.
//
// The algorithms are the classic Howard Hinnant civil-days conversions,
// implemented from first principles (no dependency on package time in hot
// paths).
package dates

// FromCivil returns the day number of the given civil date (1970-01-01 = 0).
// Valid for the full proleptic Gregorian calendar range used here.
func FromCivil(year, month, day int) int64 {
	y := int64(year)
	m := int64(month)
	d := int64(day)
	if m <= 2 {
		y--
	}
	var era int64
	if y >= 0 {
		era = y / 400
	} else {
		era = (y - 399) / 400
	}
	yoe := y - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = m - 3
	} else {
		mp = m + 9
	}
	doy := (153*mp+2)/5 + d - 1            // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468
}

// ToCivil returns the civil date of the given day number.
func ToCivil(days int64) (year, month, day int) {
	z := days + 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	y := yoe + era*400                                     //
	doy := doe - (365*yoe + yoe/4 - yoe/100)               // [0, 365]
	mp := (5*doy + 2) / 153                                // [0, 11]
	d := doy - (153*mp+2)/5 + 1                            // [1, 31]
	var m int64
	if mp < 10 {
		m = mp + 3
	} else {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return int(y), int(m), int(d)
}

// Year extracts the civil year of a day number.
func Year(days int64) int64 {
	y, _, _ := ToCivil(days)
	return int64(y)
}

// Month extracts the civil month (1-12) of a day number.
func Month(days int64) int64 {
	_, m, _ := ToCivil(days)
	return int64(m)
}

// YearMonth packs year*100+month, the grouping key used by the TPC-H Q1a
// drill-down (GROUP BY year, month).
func YearMonth(days int64) int64 {
	y, m, _ := ToCivil(days)
	return int64(y)*100 + int64(m)
}
