package dates

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEpochIsZero(t *testing.T) {
	if d := FromCivil(1970, 1, 1); d != 0 {
		t.Fatalf("FromCivil(1970,1,1) = %d, want 0", d)
	}
}

func TestKnownDates(t *testing.T) {
	cases := []struct {
		y, m, d int
		want    int64
	}{
		{1970, 1, 2, 1},
		{1969, 12, 31, -1},
		{2000, 3, 1, 11017},
		{1998, 12, 1, 10561},
		{1992, 1, 1, 8035},
	}
	for _, c := range cases {
		if got := FromCivil(c.y, c.m, c.d); got != c.want {
			t.Errorf("FromCivil(%d,%d,%d) = %d, want %d", c.y, c.m, c.d, got, c.want)
		}
	}
}

func TestAgainstTimePackage(t *testing.T) {
	// Cross-check the hand-rolled conversion against the stdlib for every
	// 17th day across the TPC-H date range plus some margin.
	start := time.Date(1985, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 800; i++ {
		tm := start.AddDate(0, 0, i*17)
		want := tm.Unix() / 86400
		got := FromCivil(tm.Year(), int(tm.Month()), tm.Day())
		if got != want {
			t.Fatalf("FromCivil(%v) = %d, want %d", tm, got, want)
		}
		y, m, d := ToCivil(got)
		if y != tm.Year() || m != int(tm.Month()) || d != tm.Day() {
			t.Fatalf("ToCivil(%d) = %d-%d-%d, want %v", got, y, m, d, tm)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(offset int32) bool {
		days := int64(offset % 200000) // ±~550 years around epoch
		y, m, d := ToCivil(days)
		return FromCivil(y, m, d) == days
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestYearMonthExtraction(t *testing.T) {
	d := FromCivil(1996, 4, 12)
	if Year(d) != 1996 {
		t.Errorf("Year = %d", Year(d))
	}
	if Month(d) != 4 {
		t.Errorf("Month = %d", Month(d))
	}
	if YearMonth(d) != 199604 {
		t.Errorf("YearMonth = %d", YearMonth(d))
	}
}

func TestMonthBoundaries(t *testing.T) {
	for y := 1990; y <= 2000; y++ {
		for m := 1; m <= 12; m++ {
			d := FromCivil(y, m, 1)
			gy, gm, gd := ToCivil(d)
			if gy != y || gm != m || gd != 1 {
				t.Fatalf("ToCivil(FromCivil(%d,%d,1)) = %d-%d-%d", y, m, gy, gm, gd)
			}
		}
	}
}
