// Package crossfilter implements the paper's crossfilter application
// (§6.5.1, Appendix D): multiple group-by COUNT views over one table; when
// the user highlights a bar in one view, the other views recompute over the
// subset of input records that contributed to it. Three lineage-based
// techniques and a data-cube baseline are provided:
//
//   - Lazy:  no capture; each interaction re-runs the group-by queries over a
//     shared selection scan of the base table.
//   - BT:    Smoke backward indexes replace the selection scan: each
//     interaction is a backward trace-then-aggregate plan
//     (core.Query.Backward → GroupBy) running through the plan layer's
//     physical trace operator — the engine's first-class consuming-query
//     path.
//   - BT+FT: forward indexes map each input record straight to its bar in
//     every view — a perfect hash — so interactions become counter
//     increments with no hash tables at all (Listing 1).
//   - Cube:  a partial data cube (pairwise dimension matrices) answers
//     interactions near-instantaneously but pays a large offline
//     construction cost — the cold-start trade-off of Figure 13.
//
// The base views are ordinary engine queries (core.DB → plan layer → fused
// single-table aggregation with Inject capture), so the app exercises the
// same capture and consumption machinery the paper's experiments measure.
package crossfilter

import (
	"fmt"

	"smoke/internal/core"
	"smoke/internal/hashtab"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// Rid aliases the record id type.
type Rid = lineage.Rid

// Technique selects the crossfilter strategy.
type Technique uint8

const (
	// Lazy re-runs group-bys over a shared selection scan.
	Lazy Technique = iota
	// BT uses backward lineage indexes for the subset: every interaction is
	// a trace-then-aggregate plan over the captured indexes.
	BT
	// BTFT uses backward + forward indexes for incremental updates.
	BTFT
)

// String names the technique for bench output.
func (t Technique) String() string {
	switch t {
	case Lazy:
		return "LAZY"
	case BT:
		return "BT"
	case BTFT:
		return "BT+FT"
	}
	return "?"
}

// App is an initialized crossfilter session: the base views have been
// computed (with whatever capture the technique requires).
type App struct {
	db   *core.DB
	rel  *storage.Relation
	dims []string
	cols [][]int64
	tech Technique

	views []*core.Result
	fw    [][]Rid // BTFT: per-view forward arrays (input rid → bar slot)
}

// New computes the initial views through the engine's plan layer. The
// capture performed here is the "base query + lineage capture" cost of
// Figures 13/14.
func New(rel *storage.Relation, dims []string, tech Technique) (*App, error) {
	return NewParallel(rel, dims, tech, 1)
}

// NewParallel is New with intra-query parallelism: base views (and BT's
// trace-then-aggregate interactions) run their morsel-parallel kernels over
// workers partitions.
func NewParallel(rel *storage.Relation, dims []string, tech Technique, workers int) (*App, error) {
	a := &App{rel: rel, dims: dims, tech: tech, db: core.Open(core.WithWorkers(workers))}
	a.db.Register(rel)
	for _, d := range dims {
		c := rel.Schema.Col(d)
		if c < 0 {
			return nil, fmt.Errorf("crossfilter: unknown dimension %q", d)
		}
		if rel.Schema[c].Type != storage.TInt {
			return nil, fmt.Errorf("crossfilter: dimension %q must be a binned INT", d)
		}
		a.cols = append(a.cols, rel.Cols[c].Ints)
	}
	var capture core.CaptureOptions
	switch tech {
	case Lazy:
		capture = core.CaptureOptions{Mode: ops.None}
	case BT:
		capture = core.CaptureOptions{Mode: ops.Inject, Dirs: ops.CaptureBackward}
	case BTFT:
		capture = core.CaptureOptions{Mode: ops.Inject, Dirs: ops.CaptureBoth}
	}
	for _, d := range dims {
		res, err := a.db.Query().From(rel.Name, nil).
			GroupBy(d).
			Agg(ops.Count, nil, "count").
			Run(capture)
		if err != nil {
			return nil, err
		}
		a.views = append(a.views, res)
		if tech == BTFT {
			ix, err := res.Capture().ForwardIndex(rel.Name)
			if err != nil {
				return nil, err
			}
			a.fw = append(a.fw, ix.DenseForward(rel.N))
		}
	}
	return a, nil
}

// Close releases the app's engine resources.
func (a *App) Close() { a.db.Close() }

// View returns the initial output relation of one view (bars: key + count).
func (a *App) View(v int) *storage.Relation { return a.views[v].Out }

// NumBars returns the number of bars in a view.
func (a *App) NumBars(v int) int { return a.views[v].Out.N }

// Counts maps bin value → count for one view under a highlight; the slice is
// indexed by view, with a nil entry at the brushed view.
type Counts []map[int64]int64

// HighlightBar computes the crossfiltered counts of all other views when bar
// (an output row of view v) is highlighted.
func (a *App) HighlightBar(v int, bar Rid) (Counts, error) {
	switch a.tech {
	case Lazy:
		return a.lazyHighlight(v, bar)
	case BT:
		return a.btHighlight(v, bar)
	default:
		return a.btftHighlight(v, bar)
	}
}

// lazyHighlight: shared selection scan with the brushed predicate inlined;
// group-bys re-run with fresh hash tables (the rewrite of Appendix D).
func (a *App) lazyHighlight(v int, bar Rid) (Counts, error) {
	val := a.views[v].Out.Int(0, int(bar))
	brushed := a.cols[v]
	out := make(Counts, len(a.dims))
	type viewState struct {
		ht     *hashtab.Map
		counts []int64
		keys   []int64
	}
	states := make([]*viewState, len(a.dims))
	for w := range a.dims {
		if w != v {
			states[w] = &viewState{ht: hashtab.New(64)}
		}
	}
	n := int32(a.rel.N)
	for rid := int32(0); rid < n; rid++ {
		if brushed[rid] != val {
			continue
		}
		for w := range a.dims {
			st := states[w]
			if st == nil {
				continue
			}
			k := a.cols[w][rid]
			slot, inserted := st.ht.GetOrPut(k, int32(len(st.counts)))
			if inserted {
				st.counts = append(st.counts, 0)
				st.keys = append(st.keys, k)
			}
			st.counts[slot]++
		}
	}
	for w, st := range states {
		if st == nil {
			continue
		}
		m := make(map[int64]int64, len(st.counts))
		for i, k := range st.keys {
			m[k] = st.counts[i]
		}
		out[w] = m
	}
	return out, nil
}

// btHighlight: every target view recomputes as a backward
// trace-then-aggregate plan — the bar's rid list expands through the
// captured index (morsel-parallel when the app is) and re-aggregates on the
// duplicate-tolerant consuming fast path, with no composition and no base
// scan.
func (a *App) btHighlight(v int, bar Rid) (Counts, error) {
	out := make(Counts, len(a.dims))
	for w := range a.dims {
		if w == v {
			continue
		}
		res, err := a.db.Query().
			Backward(a.views[v], a.rel.Name, []Rid{bar}).
			GroupBy(a.dims[w]).
			Agg(ops.Count, nil, "count").
			Run(core.CaptureOptions{Mode: ops.None})
		if err != nil {
			return nil, err
		}
		m := make(map[int64]int64, res.Out.N)
		for o := 0; o < res.Out.N; o++ {
			m[res.Out.Int(0, o)] = res.Out.Int(1, o)
		}
		out[w] = m
	}
	return out, nil
}

// btftHighlight: the forward indexes are perfect hashes from input records to
// bars, so the interaction is pure counter increments (Listing 1).
func (a *App) btftHighlight(v int, bar Rid) (Counts, error) {
	rids, err := a.views[v].Backward(a.rel.Name, []Rid{bar})
	if err != nil {
		return nil, err
	}
	out := make(Counts, len(a.dims))
	slotCounts := make([][]int64, len(a.dims))
	for w := range a.dims {
		if w != v {
			slotCounts[w] = make([]int64, a.views[w].Out.N)
		}
	}
	for _, rid := range rids {
		for w := range a.dims {
			if w == v {
				continue
			}
			slotCounts[w][a.fw[w][rid]]++
		}
	}
	for w := range a.dims {
		if w == v {
			continue
		}
		viewOut := a.views[w].Out
		m := make(map[int64]int64)
		for slot, c := range slotCounts[w] {
			if c != 0 { // remove_non_affected_groups
				m[viewOut.Int(0, slot)] = c
			}
		}
		out[w] = m
	}
	return out, nil
}

// Cube is the data-cube baseline: pairwise (brushed dim → target dim) count
// matrices, stored sparsely (the NanoCubes-style encoding over the low
// dimensional decomposition of imMens the paper's custom cube uses).
type Cube struct {
	dims  []string
	pairs [][]map[int64]map[int64]int64 // [brushed][target] -> bin -> bin -> count
}

// BuildCube constructs the partial cube with a full scan per nothing — one
// pass total, updating all dimension pairs. This is the offline cost the
// lineage-based techniques avoid.
func BuildCube(rel *storage.Relation, dims []string) (*Cube, error) {
	cols := make([][]int64, len(dims))
	for i, d := range dims {
		c := rel.Schema.Col(d)
		if c < 0 || rel.Schema[c].Type != storage.TInt {
			return nil, fmt.Errorf("crossfilter: bad cube dimension %q", d)
		}
		cols[i] = rel.Cols[c].Ints
	}
	cb := &Cube{dims: dims, pairs: make([][]map[int64]map[int64]int64, len(dims))}
	for i := range dims {
		cb.pairs[i] = make([]map[int64]map[int64]int64, len(dims))
		for j := range dims {
			if i != j {
				cb.pairs[i][j] = map[int64]map[int64]int64{}
			}
		}
	}
	n := int32(rel.N)
	for rid := int32(0); rid < n; rid++ {
		for i := range dims {
			bi := cols[i][rid]
			for j := range dims {
				if i == j {
					continue
				}
				sub := cb.pairs[i][j][bi]
				if sub == nil {
					sub = map[int64]int64{}
					cb.pairs[i][j][bi] = sub
				}
				sub[cols[j][rid]]++
			}
		}
	}
	return cb, nil
}

// Highlight answers a crossfilter interaction from the cube: for a brushed
// bin value in view v, each other view's counts are one sparse-row lookup.
func (c *Cube) Highlight(v int, val int64) Counts {
	out := make(Counts, len(c.dims))
	for w := range c.dims {
		if w == v {
			continue
		}
		m := make(map[int64]int64)
		for tb, cnt := range c.pairs[v][w][val] {
			m[tb] = cnt
		}
		out[w] = m
	}
	return out
}
