package crossfilter

import (
	"reflect"
	"testing"

	"smoke/internal/ontime"
)

func smallFlights(t *testing.T) *App {
	t.Helper()
	return nil
}

func genSmall(t *testing.T) (cfg ontime.Config) {
	t.Helper()
	cfg = ontime.Config{Rows: 20000, Airports: 50, Days: 60, Seed: 3}
	return cfg
}

// naiveHighlight recomputes the crossfiltered counts by brute force.
func naiveHighlight(app *App, v int, bar Rid) Counts {
	val := app.views[v].Out.Int(0, int(bar))
	out := make(Counts, len(app.dims))
	for w := range app.dims {
		if w == v {
			continue
		}
		out[w] = map[int64]int64{}
	}
	for rid := 0; rid < app.rel.N; rid++ {
		if app.cols[v][rid] != val {
			continue
		}
		for w := range app.dims {
			if w == v {
				continue
			}
			out[w][app.cols[w][rid]]++
		}
	}
	return out
}

func countsEqual(a, b Counts) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			return false
		}
		if a[i] != nil && !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestAllTechniquesAgreeWithNaive(t *testing.T) {
	rel := ontime.Generate(genSmall(t))
	apps := map[string]*App{}
	for _, tech := range []Technique{Lazy, BT, BTFT} {
		app, err := New(rel, ontime.Dims(), tech)
		if err != nil {
			t.Fatal(err)
		}
		apps[tech.String()] = app
	}
	ref := apps["LAZY"]
	// Check several bars in every view.
	for v := range ontime.Dims() {
		bars := ref.NumBars(v)
		step := bars/5 + 1
		for bar := 0; bar < bars; bar += step {
			want := naiveHighlight(ref, v, Rid(bar))
			for name, app := range apps {
				got, err := app.HighlightBar(v, Rid(bar))
				if err != nil {
					t.Fatal(err)
				}
				if !countsEqual(got, want) {
					t.Fatalf("%s: view %d bar %d differs from naive", name, v, bar)
				}
			}
		}
	}
}

func TestCubeAgreesWithNaive(t *testing.T) {
	rel := ontime.Generate(genSmall(t))
	app, err := New(rel, ontime.Dims(), Lazy)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := BuildCube(rel, ontime.Dims())
	if err != nil {
		t.Fatal(err)
	}
	for v := range ontime.Dims() {
		bars := app.NumBars(v)
		step := bars/4 + 1
		for bar := 0; bar < bars; bar += step {
			val := app.View(v).Int(0, bar)
			got := cb.Highlight(v, val)
			want := naiveHighlight(app, v, Rid(bar))
			if !countsEqual(got, want) {
				t.Fatalf("cube: view %d bar %d differs", v, bar)
			}
		}
	}
}

func TestViewCardinalities(t *testing.T) {
	cfg := genSmall(t)
	rel := ontime.Generate(cfg)
	app, err := New(rel, ontime.Dims(), BTFT)
	if err != nil {
		t.Fatal(err)
	}
	if app.NumBars(0) > cfg.Airports {
		t.Errorf("latlon bars = %d > airports %d", app.NumBars(0), cfg.Airports)
	}
	if app.NumBars(2) > ontime.DelayBins {
		t.Errorf("delay bars = %d", app.NumBars(2))
	}
	if app.NumBars(3) > ontime.NumCarriers {
		t.Errorf("carrier bars = %d", app.NumBars(3))
	}
	// Every view's counts sum to the row count.
	for v := range ontime.Dims() {
		sum := int64(0)
		out := app.View(v)
		cc := out.Schema.MustCol("count")
		for i := 0; i < out.N; i++ {
			sum += out.Int(cc, i)
		}
		if sum != int64(rel.N) {
			t.Fatalf("view %d counts sum to %d, want %d", v, sum, rel.N)
		}
	}
}

func TestHighlightSubsetsSumCorrectly(t *testing.T) {
	rel := ontime.Generate(genSmall(t))
	app, err := New(rel, ontime.Dims(), BTFT)
	if err != nil {
		t.Fatal(err)
	}
	// Highlighting a carrier bar: the delay view's crossfiltered counts must
	// sum to the carrier bar's own count.
	carrierView := 3
	out := app.View(carrierView)
	cc := out.Schema.MustCol("count")
	for bar := 0; bar < app.NumBars(carrierView); bar++ {
		counts, err := app.HighlightBar(carrierView, Rid(bar))
		if err != nil {
			t.Fatal(err)
		}
		sum := int64(0)
		for _, c := range counts[2] { // delay view
			sum += c
		}
		if sum != out.Int(cc, bar) {
			t.Fatalf("bar %d: delay counts sum %d, want %d", bar, sum, out.Int(cc, bar))
		}
	}
}

func TestErrors(t *testing.T) {
	rel := ontime.Generate(genSmall(t))
	if _, err := New(rel, []string{"nope"}, BT); err == nil {
		t.Error("unknown dimension should error")
	}
	if _, err := BuildCube(rel, []string{"nope"}); err == nil {
		t.Error("unknown cube dimension should error")
	}
}
