// Package serverclient is the Go client for the smoked HTTP API
// (internal/server): table ingest, SQL queries, and session-scoped retained
// results with bound backward/forward traces. The server's own tests, the
// serve bench experiment's load generator, and external Go tools all speak
// through it, so the wire shapes live in exactly two places (server encode,
// client decode) and drift breaks tests immediately.
package serverclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to one smoked server.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the server at base (e.g. "http://127.0.0.1:8080").
// httpClient may be nil for http.DefaultClient.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), http: httpClient}
}

// Error is a non-2xx server reply, decoded from the uniform error body.
type Error struct {
	Status  int    // HTTP status code
	Kind    string // serr kind string ("invalid", "gone", ...)
	Message string
	Pos     int // byte offset into the SQL text, -1 if absent
}

func (e *Error) Error() string {
	return fmt.Sprintf("server: %d %s: %s", e.Status, e.Kind, e.Message)
}

// Field mirrors one schema field.
type Field struct {
	Name string `json:"name"`
	Type string `json:"type"` // "int" | "float" | "string"
}

// Result is a decoded query/trace/result response. Row values are normalized
// by column type: int64, float64, or string.
type Result struct {
	Columns []string `json:"columns"`
	Types   []string `json:"types"`
	Rows    [][]any  `json:"rows"`
	N       int      `json:"row_count"`
	// GroupCounts is the input cardinality of each output group on group-by
	// results (the shard coordinator's two-phase aggregation reads it).
	GroupCounts []int64 `json:"group_counts"`
	Cached      bool    `json:"cached"`
	Explain     string  `json:"explain"`
	Retained    string  `json:"retained"`
	// StrategyUsed echoes the lineage path that answered ("eager", "lazy",
	// "hybrid") when a strategy was requested or a trace took a non-default
	// path.
	StrategyUsed string `json:"strategy_used"`
}

// QueryRequest is the body of Query and Session.Run.
type QueryRequest struct {
	SQL      string         `json:"sql"`
	Capture  string         `json:"capture,omitempty"` // none | inject | defer
	Compress bool           `json:"compress,omitempty"`
	Params   map[string]any `json:"params,omitempty"`
	// Strategy selects lineage capture: "eager", "lazy", "hybrid", "auto",
	// or "" for the capture mode's default.
	Strategy string `json:"strategy,omitempty"`
}

// TraceRequest is the body of Session.Trace: a bound trace of a retained
// result, optionally filtered/re-aggregated/re-retained.
type TraceRequest struct {
	Direction string         `json:"direction"` // backward | forward
	Table     string         `json:"table"`
	Rids      []int64        `json:"rids,omitempty"`
	SeedWhere string         `json:"seed_where,omitempty"`
	Where     string         `json:"where,omitempty"`
	GroupBy   []string       `json:"group_by,omitempty"`
	Aggs      []Agg          `json:"aggs,omitempty"`
	Capture   string         `json:"capture,omitempty"`
	Compress  bool           `json:"compress,omitempty"`
	Params    map[string]any `json:"params,omitempty"`
	Retain    string         `json:"retain,omitempty"`
	// Strategy forces the trace path: "eager" (captured index required) or
	// "lazy" (plan re-execution); "" keeps the result's own routing.
	Strategy string `json:"strategy,omitempty"`
}

// Agg is one consuming aggregate.
type Agg struct {
	Fn   string `json:"fn"`
	Arg  string `json:"arg,omitempty"`
	Name string `json:"name,omitempty"`
}

// Health pings the server and returns its status map.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// CreateTable registers (or replaces) a table from schema + rows. pk may be
// "" for no primary key.
func (c *Client) CreateTable(ctx context.Context, name string, schema []Field, rows [][]any, pk string) error {
	body := map[string]any{"schema": schema, "rows": rows}
	if pk != "" {
		body["pk"] = pk
	}
	return c.do(ctx, http.MethodPost, "/v1/tables/"+name, body, nil)
}

// CreateTableDist is CreateTable with an explicit placement against a
// sharded smoked (-shards N): dist "shard" partitions the rows by rid range
// across the shards, dist "replicate" (or "") registers a full copy on every
// shard. A single-node server ignores the parameter.
func (c *Client) CreateTableDist(ctx context.Context, name string, schema []Field, rows [][]any, pk, dist string) error {
	body := map[string]any{"schema": schema, "rows": rows}
	if pk != "" {
		body["pk"] = pk
	}
	path := "/v1/tables/" + name
	if dist != "" {
		path += "?dist=" + dist
	}
	return c.do(ctx, http.MethodPost, path, body, nil)
}

// CreateTableCSV registers a table from CSV bytes (header record first).
// types is "int,float,..." per column, or "" to sniff.
func (c *Client) CreateTableCSV(ctx context.Context, name string, csvBody []byte, types, pk string) error {
	path := "/v1/tables/" + name
	sep := "?"
	if types != "" {
		path += sep + "types=" + types
		sep = "&"
	}
	if pk != "" {
		path += sep + "pk=" + pk
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(csvBody))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/csv")
	return c.roundTrip(req, nil)
}

// Query runs one stateless SQL statement (including EXPLAIN and unbound
// LINEAGE sources).
func (c *Client) Query(ctx context.Context, req QueryRequest) (*Result, error) {
	var out Result
	if err := c.do(ctx, http.MethodPost, "/v1/query", req, &out); err != nil {
		return nil, err
	}
	out.normalize()
	return &out, nil
}

// Session is a server-side session handle.
type Session struct {
	ID  string
	ttl int
	c   *Client
}

// Session returns a handle for an existing session id (e.g. one persisted by
// a previous process). No server round-trip is made; a dead id surfaces as
// 410/404 on first use.
func (c *Client) Session(id string) *Session { return &Session{ID: id, c: c} }

// NewSession opens a session.
func (c *Client) NewSession(ctx context.Context) (*Session, error) {
	var out struct {
		ID  string `json:"id"`
		TTL int    `json:"ttl_seconds"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", struct{}{}, &out); err != nil {
		return nil, err
	}
	return &Session{ID: out.ID, ttl: out.TTL, c: c}, nil
}

// TTLSeconds is the server's idle-session TTL at creation time.
func (s *Session) TTLSeconds() int { return s.ttl }

// Close deletes the session and every retained result in it.
func (s *Session) Close(ctx context.Context) error {
	return s.c.do(ctx, http.MethodDelete, "/v1/sessions/"+s.ID, nil, nil)
}

// Run executes a statement and retains its Result (with live capture) under
// name; later Trace calls bind to it.
func (s *Session) Run(ctx context.Context, name string, req QueryRequest) (*Result, error) {
	var out Result
	if err := s.c.do(ctx, http.MethodPost, s.path(name), req, &out); err != nil {
		return nil, err
	}
	out.normalize()
	return &out, nil
}

// Result fetches a retained result's rows.
func (s *Session) Result(ctx context.Context, name string) (*Result, error) {
	var out Result
	if err := s.c.do(ctx, http.MethodGet, s.path(name), nil, &out); err != nil {
		return nil, err
	}
	out.normalize()
	return &out, nil
}

// Trace runs a bound backward/forward trace against the retained result.
func (s *Session) Trace(ctx context.Context, name string, req TraceRequest) (*Result, error) {
	var out Result
	if err := s.c.do(ctx, http.MethodPost, s.path(name)+"/trace", req, &out); err != nil {
		return nil, err
	}
	out.normalize()
	return &out, nil
}

func (s *Session) path(name string) string {
	return "/v1/sessions/" + s.ID + "/results/" + name
}

// do sends a JSON request and decodes a JSON reply (out may be nil).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.roundTrip(req, out)
}

func (c *Client) roundTrip(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		e := &Error{Status: resp.StatusCode, Kind: "internal", Message: string(data), Pos: -1}
		var body struct {
			Error struct {
				Kind    string `json:"kind"`
				Message string `json:"message"`
				Pos     *int   `json:"pos"`
			} `json:"error"`
		}
		if json.Unmarshal(data, &body) == nil && body.Error.Kind != "" {
			e.Kind, e.Message = body.Error.Kind, body.Error.Message
			if body.Error.Pos != nil {
				e.Pos = *body.Error.Pos
			}
		}
		return e
	}
	if out == nil {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	return dec.Decode(out)
}

// normalize converts row values to their column's Go type: json.Number →
// int64/float64 per the Types list, so callers compare values without
// float64 precision loss on large ints.
func (r *Result) normalize() {
	for _, row := range r.Rows {
		for c := range row {
			n, ok := row[c].(json.Number)
			if !ok || c >= len(r.Types) {
				continue
			}
			switch r.Types[c] {
			case "int":
				if v, err := n.Int64(); err == nil {
					row[c] = v
				}
			case "float":
				if v, err := n.Float64(); err == nil {
					row[c] = v
				}
			}
		}
	}
}
