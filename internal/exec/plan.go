package exec

import (
	"fmt"

	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/pool"
	"smoke/internal/storage"
)

// Node is a logical plan node of the generic (non-fused) executor. This path
// implements the paper's naive multi-operator instrumentation: every operator
// captures its own indexes, and the runner immediately composes them with its
// child's end-to-end indexes so that intermediates can be garbage collected
// (the propagation technique of §3.3 applied operator-at-a-time). It supports
// arbitrary tree-shaped plans over the physical algebra; SPJA blocks should
// prefer the fused executor in spja.go.
type Node interface {
	isNode()
}

// ScanNode reads a base relation.
type ScanNode struct{ Table *storage.Relation }

// FilterNode applies a predicate.
type FilterNode struct {
	Child Node
	Pred  expr.Expr
}

// ProjectNode keeps the named columns (bag semantics: lineage is identity).
type ProjectNode struct {
	Child Node
	Cols  []string
}

// GroupByNode hash-aggregates its child.
type GroupByNode struct {
	Child Node
	Spec  ops.GroupBySpec
}

// JoinNode equi-joins its children (general M:N hash join, build on left).
type JoinNode struct {
	Left, Right       Node
	LeftKey, RightKey string
}

// UnionNode computes a set union of its children over the given attributes.
type UnionNode struct {
	Left, Right Node
	Attrs       []string
}

func (ScanNode) isNode()    {}
func (FilterNode) isNode()  {}
func (ProjectNode) isNode() {}
func (GroupByNode) isNode() {}
func (JoinNode) isNode()    {}
func (UnionNode) isNode()   {}

// PlanResult is the output of the generic executor: the result relation plus
// end-to-end lineage to every captured base relation.
type PlanResult struct {
	Out     *storage.Relation
	Capture *lineage.Capture
}

// nodeOut carries a node's relation and its per-base-relation end-to-end
// indexes during recursive execution.
type nodeOut struct {
	rel *storage.Relation
	bw  map[string]*lineage.Index
	fw  map[string]*lineage.Index
}

// PlanOpts configures the generic executor.
type PlanOpts struct {
	Mode   ops.CaptureMode
	Params expr.Params
	// Workers > 1 runs the morsel-parallel operator kernels (selection scans
	// and hash aggregations) where their merge semantics apply; other
	// operators run serially. Workers <= 1 is fully serial.
	Workers int
	// Pool schedules parallel kernels; nil runs them inline.
	Pool *pool.Pool
}

// RunPlan executes a plan tree with end-to-end lineage capture.
func RunPlan(n Node, opts PlanOpts) (PlanResult, error) {
	out, err := runNode(n, opts)
	if err != nil {
		return PlanResult{}, err
	}
	cap_ := lineage.NewCapture()
	for name, ix := range out.bw {
		cap_.SetBackward(name, ix)
	}
	for name, ix := range out.fw {
		cap_.SetForward(name, ix)
	}
	return PlanResult{Out: out.rel, Capture: cap_}, nil
}

func identityIndex(n int) *lineage.Index {
	arr := make([]lineage.Rid, n)
	for i := range arr {
		arr[i] = lineage.Rid(i)
	}
	return lineage.NewOneToOne(arr)
}

// composeAll maps a node's local indexes (out ↔ child) through the child's
// end-to-end indexes (child ↔ base) to produce out ↔ base, after which the
// local and child indexes are dropped.
func composeAll(child nodeOut, localBW, localFW *lineage.Index) nodeOut {
	res := nodeOut{bw: map[string]*lineage.Index{}, fw: map[string]*lineage.Index{}}
	for name, cbw := range child.bw {
		res.bw[name] = lineage.Compose(localBW, cbw)
	}
	for name, cfw := range child.fw {
		res.fw[name] = lineage.Compose(cfw, localFW)
	}
	return res
}

func runNode(n Node, opts PlanOpts) (nodeOut, error) {
	capture := opts.Mode != ops.None
	mode := opts.Mode
	switch node := n.(type) {
	case ScanNode:
		out := nodeOut{rel: node.Table}
		if capture {
			out.bw = map[string]*lineage.Index{node.Table.Name: identityIndex(node.Table.N)}
			out.fw = map[string]*lineage.Index{node.Table.Name: identityIndex(node.Table.N)}
		} else {
			out.bw = map[string]*lineage.Index{}
			out.fw = map[string]*lineage.Index{}
		}
		return out, nil

	case FilterNode:
		child, err := runNode(node.Child, opts)
		if err != nil {
			return nodeOut{}, err
		}
		pred, err := expr.CompilePred(node.Pred, child.rel, opts.Params)
		if err != nil {
			return nodeOut{}, err
		}
		selMode := ops.None
		if capture {
			selMode = ops.Inject
		}
		sres := ops.Select(child.rel.N, pred, ops.SelectOpts{
			Mode: selMode, Dirs: ops.CaptureBoth, Workers: opts.Workers, Pool: opts.Pool,
		})
		rel := child.rel.Gather(child.rel.Name+"_f", sres.OutRids)
		if !capture {
			return nodeOut{rel: rel, bw: child.bw, fw: child.fw}, nil
		}
		res := composeAll(child, lineage.NewOneToOne(sres.BW), lineage.NewOneToOne(sres.FW))
		res.rel = rel
		return res, nil

	case ProjectNode:
		child, err := runNode(node.Child, opts)
		if err != nil {
			return nodeOut{}, err
		}
		cols := make([]int, len(node.Cols))
		for i, c := range node.Cols {
			ci := child.rel.Schema.Col(c)
			if ci < 0 {
				return nodeOut{}, fmt.Errorf("exec: project column %q not found", c)
			}
			cols[i] = ci
		}
		// Bag-semantics projection needs no lineage (§3.2.1): rid i maps to
		// rid i, so the child's indexes carry over unchanged.
		return nodeOut{rel: child.rel.Project(child.rel.Name+"_p", cols), bw: child.bw, fw: child.fw}, nil

	case GroupByNode:
		child, err := runNode(node.Child, opts)
		if err != nil {
			return nodeOut{}, err
		}
		aggMode := mode
		dirs := ops.Directions(0)
		if capture {
			if aggMode == ops.None {
				aggMode = ops.Inject
			}
			dirs = ops.CaptureBoth
		}
		ares, err := ops.HashAgg(child.rel, nil, node.Spec, ops.AggOpts{
			Mode: aggMode, Dirs: dirs, Params: opts.Params, Workers: opts.Workers, Pool: opts.Pool,
		})
		if err != nil {
			return nodeOut{}, err
		}
		if !capture {
			return nodeOut{rel: ares.Out, bw: map[string]*lineage.Index{}, fw: map[string]*lineage.Index{}}, nil
		}
		res := composeAll(child, lineage.NewOneToMany(ares.BW), lineage.NewOneToOne(ares.FW))
		res.rel = ares.Out
		return res, nil

	case JoinNode:
		left, err := runNode(node.Left, opts)
		if err != nil {
			return nodeOut{}, err
		}
		right, err := runNode(node.Right, opts)
		if err != nil {
			return nodeOut{}, err
		}
		dirs := ops.Directions(0)
		if capture {
			dirs = ops.CaptureBoth
		}
		variant := ops.MNInject
		if mode == ops.Defer {
			variant = ops.MNDefer
		}
		jres, err := ops.HashJoinMN(left.rel, node.LeftKey, right.rel, node.RightKey, variant,
			ops.JoinOpts{Dirs: dirs, Materialize: true})
		if err != nil {
			return nodeOut{}, err
		}
		if !capture {
			return nodeOut{rel: jres.Out, bw: map[string]*lineage.Index{}, fw: map[string]*lineage.Index{}}, nil
		}
		res := nodeOut{rel: jres.Out, bw: map[string]*lineage.Index{}, fw: map[string]*lineage.Index{}}
		lBW, rBW := lineage.NewOneToOne(jres.LeftBW), lineage.NewOneToOne(jres.RightBW)
		lFW, rFW := lineage.NewOneToMany(jres.LeftFW), lineage.NewOneToMany(jres.RightFW)
		for name, ix := range left.bw {
			res.bw[name] = lineage.Compose(lBW, ix)
		}
		for name, ix := range right.bw {
			res.bw[name] = lineage.Compose(rBW, ix)
		}
		for name, ix := range left.fw {
			res.fw[name] = lineage.Compose(ix, lFW)
		}
		for name, ix := range right.fw {
			res.fw[name] = lineage.Compose(ix, rFW)
		}
		return res, nil

	case UnionNode:
		left, err := runNode(node.Left, opts)
		if err != nil {
			return nodeOut{}, err
		}
		right, err := runNode(node.Right, opts)
		if err != nil {
			return nodeOut{}, err
		}
		setMode := ops.Inject
		dirs := ops.Directions(0)
		if capture {
			dirs = ops.CaptureBoth
		}
		ures, err := ops.SetUnion(left.rel, node.Attrs, right.rel, node.Attrs, setMode, dirs)
		if err != nil {
			return nodeOut{}, err
		}
		if !capture {
			return nodeOut{rel: ures.Out, bw: map[string]*lineage.Index{}, fw: map[string]*lineage.Index{}}, nil
		}
		res := nodeOut{rel: ures.Out, bw: map[string]*lineage.Index{}, fw: map[string]*lineage.Index{}}
		aBW, bBW := lineage.NewOneToMany(ures.ABW), lineage.NewOneToMany(ures.BBW)
		aFW, bFW := lineage.NewOneToOne(ures.AFW), lineage.NewOneToOne(ures.BFW)
		for name, ix := range left.bw {
			res.bw[name] = lineage.Compose(aBW, ix)
		}
		for name, ix := range right.bw {
			res.bw[name] = lineage.Compose(bBW, ix)
		}
		for name, ix := range left.fw {
			res.fw[name] = lineage.Compose(ix, aFW)
		}
		for name, ix := range right.fw {
			res.fw[name] = lineage.Compose(ix, bFW)
		}
		return res, nil
	}
	return nodeOut{}, fmt.Errorf("exec: unsupported plan node %T", n)
}
