package exec

import (
	"fmt"
	"sort"
	"strings"

	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/plan"
	"smoke/internal/pool"
	"smoke/internal/storage"
)

// This file is the physical lowering of the logical plan layer
// (internal/plan): RunPlan walks an optimized plan.Node tree and executes it
// with end-to-end lineage capture.
//
// SPJA nodes — the subtrees the optimizer's fusion rule matched — lower onto
// the fused block executor (Run, spja.go): base-scan inputs run exactly the
// legacy fused path (pipelined filters, chain hash tables, single final
// capture, morsel-parallel, partition-local compressed encoding), and subplan
// inputs execute first, their end-to-end indexes composing with the block's
// capture.
//
// Everything else — the non-fusible residue — runs operator-at-a-time with
// the propagation technique of §3.3: every operator captures its own local
// indexes, which immediately compose with its children's end-to-end indexes
// so intermediates can be garbage collected. All residue operators thread
// Workers/Pool through to their morsel-parallel kernels (selection scans,
// hash aggregations, pk-fk and M:N join probes, set-union capture) and the
// finished capture encodes into the adaptive compressed forms when
// PlanOpts.Compress is set.

// PlanOpts configures plan execution. It mirrors the capture options of the
// engine facade: Mode and the direction controls select the instrumentation,
// Workers/Pool run the morsel-parallel kernels, and Compress stores the
// finished indexes in their adaptive encoded forms.
type PlanOpts struct {
	Mode ops.CaptureMode
	// Dirs selects the capture directions (both when zero and Mode is set).
	Dirs ops.Directions
	// TableDirs prunes capture per base-relation name (§4.1); relations
	// absent from a non-nil map are not captured at all.
	TableDirs map[string]ops.Directions
	// Params binds expression parameters.
	Params expr.Params
	// Workers > 1 runs the morsel-parallel operator kernels; <= 1 is fully
	// serial. Pool schedules the parallel kernels; nil runs them inline.
	Workers int
	Pool    *pool.Pool
	// Compress encodes the captured indexes into their adaptive compressed
	// forms: fused all-scan blocks encode inside the block executor
	// (per-partition when parallel), and the generic residue's composed
	// end-to-end indexes encode once execution finishes.
	Compress bool
}

// dirsFor resolves the capture directions for one base relation.
func (o PlanOpts) dirsFor(base string) ops.Directions {
	if o.Mode == ops.None {
		return 0
	}
	if o.TableDirs != nil {
		return o.TableDirs[base]
	}
	if o.Dirs == 0 {
		return ops.CaptureBoth
	}
	return o.Dirs
}

// PlanResult is the output of plan execution: the result relation,
// end-to-end lineage to every captured base relation, and — when the plan's
// output rows are aggregation groups — the per-row input cardinalities.
type PlanResult struct {
	Out         *storage.Relation
	Capture     *lineage.Capture
	GroupCounts []int64
}

// RunPlan executes an (optimized) plan tree with end-to-end lineage capture.
func RunPlan(n plan.Node, opts PlanOpts) (PlanResult, error) {
	out, err := runNode(n, opts)
	if err != nil {
		return PlanResult{}, err
	}
	cap_ := lineage.NewCapture()
	for name, ix := range out.bw {
		cap_.SetBackward(name, ix)
	}
	for name, ix := range out.fw {
		cap_.SetForward(name, ix)
	}
	if opts.Compress && opts.Mode != ops.None {
		cap_.EncodeAll()
	}
	return PlanResult{Out: out.rel, Capture: cap_, GroupCounts: out.counts}, nil
}

// nodeOut carries a node's relation, its per-base-relation end-to-end
// indexes, and (for aggregation outputs) per-row group cardinalities during
// recursive execution.
type nodeOut struct {
	rel    *storage.Relation
	bw     map[string]*lineage.Index
	fw     map[string]*lineage.Index
	counts []int64
}

// localDirs reports which directions the node above needs to capture locally
// for composition: a direction matters only if some base below carries it.
func localDirs(children ...*nodeOut) ops.Directions {
	var d ops.Directions
	for _, c := range children {
		if len(c.bw) > 0 {
			d |= ops.CaptureBackward
		}
		if len(c.fw) > 0 {
			d |= ops.CaptureForward
		}
	}
	return d
}

func identityIndex(n int) *lineage.Index {
	arr := make([]lineage.Rid, n)
	for i := range arr {
		arr[i] = lineage.Rid(i)
	}
	return lineage.NewOneToOne(arr)
}

// setOrMerge installs ix as rel name's end-to-end index. When both sides of
// a join or union derive from the same base relation (e.g. two aggregate
// subqueries over one table), each side contributes an index for the same
// name; the contributions concatenate per entry (left side first) instead of
// the second overwriting the first.
func setOrMerge(m map[string]*lineage.Index, name string, ix *lineage.Index) {
	prev, ok := m[name]
	if !ok {
		m[name] = ix
		return
	}
	n := prev.Len()
	out := lineage.NewRidIndex(n)
	var buf []lineage.Rid
	for i := 0; i < n; i++ {
		buf = prev.TraceOne(lineage.Rid(i), buf[:0])
		buf = ix.TraceOne(lineage.Rid(i), buf)
		for _, r := range buf {
			out.Append(i, r)
		}
	}
	m[name] = lineage.NewOneToMany(out)
}

// composeAll maps a node's local indexes (out ↔ child) through the child's
// end-to-end indexes (child ↔ base) to produce out ↔ base, after which the
// local and child indexes are dropped (§3.3 propagation).
func composeAll(child nodeOut, localBW, localFW *lineage.Index) nodeOut {
	res := nodeOut{bw: map[string]*lineage.Index{}, fw: map[string]*lineage.Index{}}
	if localBW != nil {
		for name, cbw := range child.bw {
			res.bw[name] = lineage.Compose(localBW, cbw)
		}
	}
	if localFW != nil {
		for name, cfw := range child.fw {
			res.fw[name] = lineage.Compose(cfw, localFW)
		}
	}
	return res
}

func runNode(n plan.Node, opts PlanOpts) (nodeOut, error) {
	switch node := n.(type) {
	case plan.Scan:
		return runScan(node, opts)
	case plan.Filter:
		return runFilter(node, opts)
	case plan.Project:
		child, err := runNode(node.Child, opts)
		if err != nil {
			return nodeOut{}, err
		}
		cols := make([]int, len(node.Cols))
		for i, c := range node.Cols {
			ci := child.rel.Schema.Col(c)
			if ci < 0 {
				return nodeOut{}, fmt.Errorf("exec: project column %q not found", c)
			}
			cols[i] = ci
		}
		// Bag-semantics projection needs no lineage (§3.2.1): rid i maps to
		// rid i, so the child's indexes carry over unchanged.
		child.rel = child.rel.Project(child.rel.Name+"_p", cols)
		return child, nil
	case plan.GroupBy:
		return runGroupBy(node, opts)
	case plan.Join:
		return runJoin(node, opts)
	case plan.Union:
		return runUnion(node, opts)
	case plan.OrderBy:
		return runOrderBy(node, opts)
	case plan.Limit:
		return runLimit(node, opts)
	case plan.SPJA:
		return runSPJANode(node, opts)
	case plan.Backward:
		return runBackward(node, opts)
	case plan.Forward:
		return runForward(node, opts)
	}
	return nodeOut{}, fmt.Errorf("exec: unsupported plan node %T", n)
}

// runScan produces the base relation (with any pushed-down filter applied)
// and identity or selection indexes per the table's capture directions.
func runScan(node plan.Scan, opts PlanOpts) (nodeOut, error) {
	dirs := opts.dirsFor(node.Table)
	out := nodeOut{rel: node.Rel, bw: map[string]*lineage.Index{}, fw: map[string]*lineage.Index{}}
	if node.Filter == nil {
		if dirs.Backward() {
			out.bw[node.Table] = identityIndex(node.Rel.N)
		}
		if dirs.Forward() {
			out.fw[node.Table] = identityIndex(node.Rel.N)
		}
		return out, nil
	}
	pred, err := expr.CompilePred(node.Filter, node.Rel, opts.Params)
	if err != nil {
		return nodeOut{}, err
	}
	selMode := ops.None
	if dirs != 0 {
		selMode = ops.Inject
	}
	sres := ops.Select(node.Rel.N, pred, ops.SelectOpts{
		Mode: selMode, Dirs: dirs, Workers: opts.Workers, Pool: opts.Pool,
		Kernel: expr.CompileBitKernel(node.Filter, node.Rel, opts.Params),
	})
	// The filtered intermediate keeps the base name: downstream joins prefix
	// colliding columns with it, and qualified join keys ("table.col")
	// resolve against that prefix.
	out.rel = node.Rel.Gather(node.Rel.Name, sres.OutRids)
	if dirs.Backward() {
		out.bw[node.Table] = lineage.NewOneToOne(sres.BW)
	}
	if dirs.Forward() {
		out.fw[node.Table] = lineage.NewOneToOne(sres.FW)
	}
	return out, nil
}

func runFilter(node plan.Filter, opts PlanOpts) (nodeOut, error) {
	child, err := runNode(node.Child, opts)
	if err != nil {
		return nodeOut{}, err
	}
	pred, err := expr.CompilePred(node.Pred, child.rel, opts.Params)
	if err != nil {
		return nodeOut{}, err
	}
	dirs := localDirs(&child)
	selMode := ops.None
	if dirs != 0 {
		selMode = ops.Inject
	}
	sres := ops.Select(child.rel.N, pred, ops.SelectOpts{
		Mode: selMode, Dirs: dirs, Workers: opts.Workers, Pool: opts.Pool,
		Kernel: expr.CompileBitKernel(node.Pred, child.rel, opts.Params),
	})
	rel := child.rel.Gather(child.rel.Name+"_f", sres.OutRids)
	var localBW, localFW *lineage.Index
	if dirs.Backward() {
		localBW = lineage.NewOneToOne(sres.BW)
	}
	if dirs.Forward() {
		localFW = lineage.NewOneToOne(sres.FW)
	}
	res := composeAll(child, localBW, localFW)
	res.rel = rel
	if child.counts != nil {
		res.counts = make([]int64, len(sres.OutRids))
		for i, r := range sres.OutRids {
			res.counts[i] = child.counts[r]
		}
	}
	return res, nil
}

// groupBySpec converts the plan-level aggregate list (per-aggregate filters
// are fused-block-only) into the generic hash-aggregation spec.
func groupBySpec(node plan.GroupBy) (ops.GroupBySpec, error) {
	spec := ops.GroupBySpec{Keys: node.Keys}
	for i, a := range node.Aggs {
		if a.Filter != nil {
			return spec, fmt.Errorf("exec: filtered aggregate %q requires a fusible SPJA block", a.OutName(i))
		}
		spec.Aggs = append(spec.Aggs, ops.AggSpec{Fn: a.Fn, Arg: a.Arg, Name: a.Name})
	}
	return spec, nil
}

func runGroupBy(node plan.GroupBy, opts PlanOpts) (nodeOut, error) {
	spec, err := groupBySpec(node)
	if err != nil {
		return nodeOut{}, err
	}
	if sc, ok := node.Child.(plan.Scan); ok {
		return runGroupByOverScan(sc, spec, opts)
	}
	if bt, ok := node.Child.(plan.Backward); ok {
		// Trace-then-aggregate pipelining (the consuming-query fast path):
		// the trace expands its rid multiset once — duplicates preserved —
		// and the aggregation runs directly over it with the
		// duplicate-tolerant morsel-parallel kernel (AggOpts.DupRids), so
		// captured rids stay base-relation rids with no gather and no
		// composition step. This is the morsel-parallel replacement for the
		// serial consuming-query fallback of the pre-plan path.
		rids, scan, err := backwardRids(bt, opts)
		if err != nil {
			return nodeOut{}, err
		}
		if scan != nil {
			// The selectivity choice picked scan-and-filter: the trace IS a
			// filtered scan, so the block is a plain scan aggregation.
			return runGroupByOverScan(*scan, spec, opts)
		}
		return runGroupByOverRids(bt.Rel, bt.Table, rids, true, spec, opts)
	}

	child, err := runNode(node.Child, opts)
	if err != nil {
		return nodeOut{}, err
	}
	dirs := localDirs(&child)
	mode := opts.Mode
	if dirs == 0 {
		mode = ops.None
	} else if mode == ops.None {
		mode = ops.Inject
	}
	ares, err := ops.HashAgg(child.rel, nil, spec, ops.AggOpts{
		Mode: mode, Dirs: dirs, Params: opts.Params, Workers: opts.Workers, Pool: opts.Pool,
	})
	if err != nil {
		return nodeOut{}, err
	}
	var localBW, localFW *lineage.Index
	if ix := ares.BackwardIndex(); ix != nil {
		localBW = ix
	}
	if ix := ares.ForwardIndex(); ix != nil {
		localFW = ix
	}
	res := composeAll(child, localBW, localFW)
	res.rel = ares.Out
	res.counts = ares.GroupCounts
	return res, nil
}

// runGroupByOverScan is the single-table fast path: the scan's filter
// materializes a rid subset once and the aggregation runs over it, so
// captured rids stay base-relation rids with no composition step.
func runGroupByOverScan(sc plan.Scan, spec ops.GroupBySpec, opts PlanOpts) (nodeOut, error) {
	var inRids []lineage.Rid
	if sc.Filter != nil {
		pred, err := expr.CompilePred(sc.Filter, sc.Rel, opts.Params)
		if err != nil {
			return nodeOut{}, err
		}
		// Select guarantees a non-nil OutRids under Mode None even for
		// zero matches — load-bearing, because a nil rid subset means
		// "all rows" to HashAgg.
		sres := ops.Select(sc.Rel.N, pred, ops.SelectOpts{
			Mode: ops.None, Workers: opts.Workers, Pool: opts.Pool,
			Kernel: expr.CompileBitKernel(sc.Filter, sc.Rel, opts.Params),
		})
		inRids = sres.OutRids
	}
	return runGroupByOverRids(sc.Rel, sc.Table, inRids, false, spec, opts)
}

// runGroupByOverRids is the shared tail of both fast paths: aggregate the
// base relation over a rid subset (nil = all rows) and install the captured
// indexes directly under the base table's name.
func runGroupByOverRids(rel *storage.Relation, table string, inRids []lineage.Rid, dupRids bool,
	spec ops.GroupBySpec, opts PlanOpts) (nodeOut, error) {
	dirs := opts.dirsFor(table)
	mode := opts.Mode
	if dirs == 0 {
		mode = ops.None
	}
	ares, err := ops.HashAgg(rel, inRids, spec, ops.AggOpts{
		Mode: mode, Dirs: dirs, Params: opts.Params,
		Workers: opts.Workers, Pool: opts.Pool, Compress: opts.Compress,
		DupRids: dupRids,
	})
	if err != nil {
		return nodeOut{}, err
	}
	out := nodeOut{rel: ares.Out, counts: ares.GroupCounts,
		bw: map[string]*lineage.Index{}, fw: map[string]*lineage.Index{}}
	if ix := ares.BackwardIndex(); ix != nil {
		out.bw[table] = ix
	}
	if ix := ares.ForwardIndex(); ix != nil {
		out.fw[table] = ix
	}
	return out, nil
}

func runJoin(node plan.Join, opts PlanOpts) (nodeOut, error) {
	left, err := runNode(node.Left, opts)
	if err != nil {
		return nodeOut{}, err
	}
	right, err := runNode(node.Right, opts)
	if err != nil {
		return nodeOut{}, err
	}
	leftKey, err := resolveJoinKey(left.rel, node.LeftKey, node.LeftQual)
	if err != nil {
		return nodeOut{}, err
	}
	dirs := localDirs(&left, &right)
	jopts := ops.JoinOpts{Dirs: dirs, Materialize: true, Cols: node.Cols,
		Workers: opts.Workers, Pool: opts.Pool}

	var out *storage.Relation
	var lBW, rBW, lFW, rFW *lineage.Index
	if node.PKFK {
		// The optimizer proved the left (build) key unique: run the pk-fk
		// specialization — single-rid hash entries, preallocated backward
		// arrays, morsel-parallel probe.
		jres, err := ops.HashJoinPKFK(left.rel, leftKey, nil, right.rel, node.RightKey, nil, jopts)
		if err != nil {
			return nodeOut{}, err
		}
		out = jres.Out
		if dirs.Backward() {
			lBW, rBW = lineage.NewOneToOne(jres.BuildBW), lineage.NewOneToOne(jres.ProbeBW)
		}
		if dirs.Forward() {
			lFW, rFW = lineage.NewOneToMany(jres.BuildFW), lineage.NewOneToOne(jres.ProbeFW)
		}
	} else {
		variant := ops.MNInject
		if opts.Mode == ops.Defer {
			variant = ops.MNDefer
		}
		jres, err := ops.HashJoinMN(left.rel, leftKey, right.rel, node.RightKey, variant, jopts)
		if err != nil {
			return nodeOut{}, err
		}
		out = jres.Out
		if dirs.Backward() {
			lBW, rBW = lineage.NewOneToOne(jres.LeftBW), lineage.NewOneToOne(jres.RightBW)
		}
		if dirs.Forward() {
			lFW, rFW = lineage.NewOneToMany(jres.LeftFW), lineage.NewOneToMany(jres.RightFW)
		}
	}

	res := nodeOut{rel: out, bw: map[string]*lineage.Index{}, fw: map[string]*lineage.Index{}}
	for name, ix := range left.bw {
		setOrMerge(res.bw, name, lineage.Compose(lBW, ix))
	}
	for name, ix := range right.bw {
		setOrMerge(res.bw, name, lineage.Compose(rBW, ix))
	}
	for name, ix := range left.fw {
		setOrMerge(res.fw, name, lineage.Compose(ix, lFW))
	}
	for name, ix := range right.fw {
		setOrMerge(res.fw, name, lineage.Compose(ix, rFW))
	}
	return res, nil
}

// resolveJoinKey maps a logical join-key reference to the physical column
// name of the (possibly join-materialized) left relation. A name that
// collided during prefix materialization was renamed "source.col": try the
// plain name, then the qualified name, then a unique ".col" suffix match.
func resolveJoinKey(rel *storage.Relation, key, qual string) (string, error) {
	if rel.Schema.Col(key) >= 0 {
		return key, nil
	}
	if qual != "" {
		if q := qual + "." + key; rel.Schema.Col(q) >= 0 {
			return q, nil
		}
	}
	match := ""
	for _, f := range rel.Schema {
		if strings.HasSuffix(f.Name, "."+key) {
			if match != "" {
				return "", fmt.Errorf("exec: join key %q is ambiguous in %s; qualify it", key, rel.Name)
			}
			match = f.Name
		}
	}
	if match == "" {
		return "", fmt.Errorf("exec: join key %q not found in %s", key, rel.Name)
	}
	return match, nil
}

func runUnion(node plan.Union, opts PlanOpts) (nodeOut, error) {
	left, err := runNode(node.Left, opts)
	if err != nil {
		return nodeOut{}, err
	}
	right, err := runNode(node.Right, opts)
	if err != nil {
		return nodeOut{}, err
	}
	dirs := localDirs(&left, &right)
	// No capture needed: run the plain operator (Inject would collect
	// per-entry rid lists just to throw them away).
	setMode := ops.None
	if dirs != 0 {
		setMode = ops.Inject
	}
	ures, err := ops.SetUnionPar(left.rel, node.Attrs, right.rel, node.Attrs,
		setMode, dirs, opts.Workers, opts.Pool)
	if err != nil {
		return nodeOut{}, err
	}
	res := nodeOut{rel: ures.Out, bw: map[string]*lineage.Index{}, fw: map[string]*lineage.Index{}}
	var aBW, bBW, aFW, bFW *lineage.Index
	if dirs.Backward() {
		aBW, bBW = lineage.NewOneToMany(ures.ABW), lineage.NewOneToMany(ures.BBW)
	}
	if dirs.Forward() {
		aFW, bFW = lineage.NewOneToOne(ures.AFW), lineage.NewOneToOne(ures.BFW)
	}
	for name, ix := range left.bw {
		setOrMerge(res.bw, name, lineage.Compose(aBW, ix))
	}
	for name, ix := range right.bw {
		setOrMerge(res.bw, name, lineage.Compose(bBW, ix))
	}
	for name, ix := range left.fw {
		setOrMerge(res.fw, name, lineage.Compose(ix, aFW))
	}
	for name, ix := range right.fw {
		setOrMerge(res.fw, name, lineage.Compose(ix, bFW))
	}
	return res, nil
}

// runOrderBy stably sorts the child's rows. Sorting permutes rids, so local
// lineage is the permutation (backward) and its inverse (forward).
func runOrderBy(node plan.OrderBy, opts PlanOpts) (nodeOut, error) {
	child, err := runNode(node.Child, opts)
	if err != nil {
		return nodeOut{}, err
	}
	rel := child.rel
	type sortCol struct {
		c    int
		desc bool
	}
	cols := make([]sortCol, len(node.Keys))
	for i, k := range node.Keys {
		c := rel.Schema.Col(k.Col)
		if c < 0 {
			return nodeOut{}, fmt.Errorf("exec: order-by column %q not found", k.Col)
		}
		cols[i] = sortCol{c: c, desc: k.Desc}
	}
	perm := make([]lineage.Rid, rel.N)
	for i := range perm {
		perm[i] = lineage.Rid(i)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ra, rb := int(perm[a]), int(perm[b])
		for _, sc := range cols {
			var cmp int
			switch rel.Schema[sc.c].Type {
			case storage.TInt:
				va, vb := rel.Cols[sc.c].Ints[ra], rel.Cols[sc.c].Ints[rb]
				cmp = compareOrdered(va, vb)
			case storage.TFloat:
				va, vb := rel.Cols[sc.c].Floats[ra], rel.Cols[sc.c].Floats[rb]
				cmp = compareOrdered(va, vb)
			case storage.TString:
				va, vb := rel.Cols[sc.c].Strs[ra], rel.Cols[sc.c].Strs[rb]
				cmp = compareOrdered(va, vb)
			}
			if cmp != 0 {
				if sc.desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})

	dirs := localDirs(&child)
	var localBW, localFW *lineage.Index
	if dirs.Backward() {
		localBW = lineage.NewOneToOne(perm)
	}
	if dirs.Forward() {
		inv := make([]lineage.Rid, rel.N)
		for o, r := range perm {
			inv[r] = lineage.Rid(o)
		}
		localFW = lineage.NewOneToOne(inv)
	}
	res := composeAll(child, localBW, localFW)
	res.rel = rel.Gather(rel.Name+"_o", perm)
	if child.counts != nil {
		res.counts = make([]int64, len(perm))
		for o, r := range perm {
			res.counts[o] = child.counts[r]
		}
	}
	return res, nil
}

func compareOrdered[T int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// runLimit keeps the child's first N rows (a zero-copy column-prefix view).
func runLimit(node plan.Limit, opts PlanOpts) (nodeOut, error) {
	child, err := runNode(node.Child, opts)
	if err != nil {
		return nodeOut{}, err
	}
	n := node.N
	if n < 0 {
		n = 0
	}
	if n > child.rel.N {
		n = child.rel.N
	}
	dirs := localDirs(&child)
	var localBW, localFW *lineage.Index
	if dirs.Backward() {
		bw := make([]lineage.Rid, n)
		for i := range bw {
			bw[i] = lineage.Rid(i)
		}
		localBW = lineage.NewOneToOne(bw)
	}
	if dirs.Forward() {
		fw := make([]lineage.Rid, child.rel.N)
		for i := range fw {
			if i < n {
				fw[i] = lineage.Rid(i)
			} else {
				fw[i] = -1
			}
		}
		localFW = lineage.NewOneToOne(fw)
	}
	res := composeAll(child, localBW, localFW)
	res.rel = prefixRelation(child.rel, n)
	if child.counts != nil {
		res.counts = child.counts[:n]
	}
	return res, nil
}

// prefixRelation is a zero-copy view of rel's first n rows.
func prefixRelation(rel *storage.Relation, n int) *storage.Relation {
	out := &storage.Relation{Name: rel.Name + "_l", Schema: rel.Schema,
		Cols: make([]storage.Column, len(rel.Cols)), N: n}
	for c := range rel.Cols {
		switch {
		case rel.Cols[c].Ints != nil:
			out.Cols[c].Ints = rel.Cols[c].Ints[:n]
		case rel.Cols[c].Floats != nil:
			out.Cols[c].Floats = rel.Cols[c].Floats[:n]
		case rel.Cols[c].Strs != nil:
			out.Cols[c].Strs = rel.Cols[c].Strs[:n]
		}
	}
	return out
}

// runSPJANode lowers a fused block onto the block executor. Scan inputs feed
// the executor directly (the legacy fused path: zero composition, per-name
// direction pruning, in-executor compression); subplan inputs run first, are
// registered under a synthetic name, and their end-to-end indexes compose
// with the block's capture afterwards.
func runSPJANode(node plan.SPJA, opts PlanOpts) (nodeOut, error) {
	k := len(node.Inputs)
	spec := Spec{Tables: make([]TableRef, k)}
	tdirs := make([]ops.Directions, k)
	children := make([]nodeOut, k)
	isScan := make([]bool, k)
	allScan := true
	for t, in := range node.Inputs {
		filter := node.Filters[t]
		if sc, ok := in.(plan.Scan); ok {
			isScan[t] = true
			f := filter
			if sc.Filter != nil {
				if f == nil {
					f = sc.Filter
				} else {
					f = expr.And{L: sc.Filter, R: f}
				}
			}
			spec.Tables[t] = TableRef{Rel: sc.Rel, Filter: f}
			tdirs[t] = opts.dirsFor(sc.Table)
			continue
		}
		allScan = false
		co, err := runNode(in, opts)
		if err != nil {
			return nodeOut{}, err
		}
		children[t] = co
		// Shallow-rename the intermediate so the block's capture keys are
		// collision-free; composition below consumes them immediately.
		relCopy := *co.rel
		relCopy.Name = fmt.Sprintf("__spja_in%d", t)
		spec.Tables[t] = TableRef{Rel: &relCopy, Filter: filter}
		tdirs[t] = localDirs(&co)
	}
	for _, je := range node.Joins {
		spec.Joins = append(spec.Joins, JoinEdge{LeftTable: je.LeftInput, LeftCol: je.LeftCol, RightCol: je.RightCol})
	}
	for _, kr := range node.Keys {
		spec.Keys = append(spec.Keys, KeyRef{Table: kr.Input, Col: kr.Col})
	}
	for _, a := range node.Aggs {
		spec.Aggs = append(spec.Aggs, AggRef{Fn: a.Fn, Table: a.Input, Arg: a.Arg, Filter: a.Filter, Name: a.Name})
	}

	eres, err := Run(spec, Opts{
		Mode: opts.Mode, TableDirs: tdirs, Params: opts.Params,
		Workers: opts.Workers, Pool: opts.Pool,
		Compress: opts.Compress && allScan,
	})
	if err != nil {
		return nodeOut{}, err
	}
	out := nodeOut{rel: eres.Out, counts: eres.GroupCounts,
		bw: map[string]*lineage.Index{}, fw: map[string]*lineage.Index{}}
	for t := 0; t < k; t++ {
		name := spec.Tables[t].Rel.Name
		if isScan[t] {
			if eres.Capture.HasBackward(name) {
				ix, _ := eres.Capture.BackwardIndex(name)
				setOrMerge(out.bw, name, ix)
			}
			if eres.Capture.HasForward(name) {
				ix, _ := eres.Capture.ForwardIndex(name)
				setOrMerge(out.fw, name, ix)
			}
			continue
		}
		if eres.Capture.HasBackward(name) {
			blockBW, _ := eres.Capture.BackwardIndex(name)
			for base, cbw := range children[t].bw {
				setOrMerge(out.bw, base, lineage.Compose(blockBW, cbw))
			}
		}
		if eres.Capture.HasForward(name) {
			blockFW, _ := eres.Capture.ForwardIndex(name)
			for base, cfw := range children[t].fw {
				setOrMerge(out.fw, base, lineage.Compose(cfw, blockFW))
			}
		}
	}
	return out, nil
}
