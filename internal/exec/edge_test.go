package exec_test

import (
	"testing"

	"smoke/internal/exec"
	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// Edge cases: empty inputs, fully filtered inputs, and joins with no matches
// must produce empty-but-valid results in every capture mode.

func emptyRel(name string) *storage.Relation {
	return storage.NewEmpty(name, storage.Schema{
		{Name: "k", Type: storage.TInt},
		{Name: "v", Type: storage.TFloat},
	})
}

func TestSPJAEmptyInput(t *testing.T) {
	for _, mode := range []ops.CaptureMode{ops.None, ops.Inject, ops.Defer} {
		res, err := exec.Run(exec.Spec{
			Tables: []exec.TableRef{{Rel: emptyRel("t")}},
			Keys:   []exec.KeyRef{{Table: 0, Col: "k"}},
			Aggs:   []exec.AggRef{{Fn: ops.Count, Table: 0, Name: "c"}},
		}, exec.Opts{Mode: mode, Dirs: ops.CaptureBoth})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Out.N != 0 {
			t.Fatalf("mode %v: empty input produced %d groups", mode, res.Out.N)
		}
	}
}

func TestSPJAFullyFilteredInput(t *testing.T) {
	rel := emptyRel("t")
	rel.AppendRow(1, 1.0)
	rel.AppendRow(2, 2.0)
	res, err := exec.Run(exec.Spec{
		Tables: []exec.TableRef{{Rel: rel, Filter: expr.LtE(expr.C("v"), expr.F(-1))}},
		Keys:   []exec.KeyRef{{Table: 0, Col: "k"}},
		Aggs:   []exec.AggRef{{Fn: ops.Count, Table: 0, Name: "c"}},
	}, exec.Opts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != 0 {
		t.Fatalf("fully filtered input produced %d groups", res.Out.N)
	}
	// Forward index exists and maps every rid to nothing.
	fw, err := res.Capture.ForwardIndex("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < int32(rel.N); i++ {
		if got := fw.TraceOne(i, nil); len(got) != 0 {
			t.Fatalf("filtered rid %d has forward lineage %v", i, got)
		}
	}
}

func TestSPJAJoinWithNoMatches(t *testing.T) {
	left := emptyRel("l")
	left.AppendRow(1, 1.0)
	right := storage.NewEmpty("r", storage.Schema{
		{Name: "fk", Type: storage.TInt},
		{Name: "x", Type: storage.TFloat},
	})
	right.AppendRow(999, 5.0) // no matching key
	for _, mode := range []ops.CaptureMode{ops.Inject, ops.Defer} {
		res, err := exec.Run(exec.Spec{
			Tables: []exec.TableRef{{Rel: left}, {Rel: right}},
			Joins:  []exec.JoinEdge{{LeftTable: 0, LeftCol: "k", RightCol: "fk"}},
			Keys:   []exec.KeyRef{{Table: 0, Col: "k"}},
			Aggs:   []exec.AggRef{{Fn: ops.Sum, Table: 1, Arg: expr.C("x"), Name: "s"}},
		}, exec.Opts{Mode: mode, Dirs: ops.CaptureBoth})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Out.N != 0 {
			t.Fatalf("mode %v: joinless query produced groups", mode)
		}
	}
}

func TestSPJASingleRowSingleGroup(t *testing.T) {
	rel := emptyRel("t")
	rel.AppendRow(7, 3.5)
	res, err := exec.Run(exec.Spec{
		Tables: []exec.TableRef{{Rel: rel}},
		Keys:   []exec.KeyRef{{Table: 0, Col: "k"}},
		Aggs: []exec.AggRef{
			{Fn: ops.Min, Table: 0, Arg: expr.C("v"), Name: "mn"},
			{Fn: ops.Max, Table: 0, Arg: expr.C("v"), Name: "mx"},
			{Fn: ops.Avg, Table: 0, Arg: expr.C("v"), Name: "av"},
		},
	}, exec.Opts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != 1 {
		t.Fatalf("groups = %d", res.Out.N)
	}
	for _, col := range []string{"mn", "mx", "av"} {
		if got := res.Out.Float(res.Out.Schema.MustCol(col), 0); got != 3.5 {
			t.Fatalf("%s = %v", col, got)
		}
	}
	bw, _ := res.Capture.BackwardIndex("t")
	if got := bw.TraceOne(0, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("lineage = %v", got)
	}
}
