package exec

import (
	"fmt"

	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/plan"
	"smoke/internal/serr"
	"smoke/internal/storage"
)

// This file is the physical trace operator: the lowering of plan.Backward and
// plan.Forward, which make lineage consumption (linked brushing, crossfilter,
// profiling drill-down — §2.1, §6.5) a first-class plan citizen instead of a
// serial side path.
//
// A trace executes in three steps, each morsel-parallel:
//
//  1. Resolve the lineage index. A bound trace (plan.BoundTrace) reads the
//     already-captured index of an executed base query in place — raw or
//     adaptively encoded, it is never decompressed wholesale. An unbound
//     trace executes its source subplan first, capturing exactly the one
//     index direction the trace needs.
//  2. Resolve the seeds: an explicit rid set, or a predicate evaluated with
//     the morsel-parallel selection kernel.
//  3. Expand the seeds' rid lists (lineage.ParTrace): contiguous seed
//     partitions expand into partition-local buffers that concatenate in
//     partition order — element-identical to a serial trace, duplicates
//     preserved (transformational semantics). A consuming filter pushed into
//     the trace by the optimizer drops rids during expansion.
//
// The trace's own lineage to the traced relation is the expanded rid list
// itself, so trace-then-query plans compose end-to-end and consuming results
// can serve as base queries for further traces (the Q1b → Q1c chains of
// §2.1). When the optimizer proved a scan-and-filter equivalent
// (Backward.ScanEquiv) and the seeds select most of the source output, the
// operator runs the sequential predicate scan instead of scattered rid-list
// expansion.

// scanEquivThresholdNum/Den: a bound, pred-seeded trace switches to its
// scan-and-filter equivalent when seeds cover at least half the source
// output. The choice depends only on the plan and the data, never on worker
// count or index encoding, so every capture variant of a plan makes the same
// choice and stays element-identical.
const (
	scanEquivThresholdNum = 1
	scanEquivThresholdDen = 2
)

// traceIndex resolves step 1 for one direction: the source's output relation
// and its lineage index for table.
func traceIndex(source plan.Node, bound *plan.BoundTrace, table string, need ops.Directions, opts PlanOpts) (*storage.Relation, *lineage.Index, error) {
	if bound != nil {
		var ix *lineage.Index
		var err error
		if need.Backward() {
			ix, err = bound.Capture.BackwardIndex(table)
		} else {
			ix, err = bound.Capture.ForwardIndex(table)
		}
		if err != nil {
			return nil, nil, err
		}
		return bound.Out, ix, nil
	}
	if source == nil {
		return nil, nil, fmt.Errorf("exec: trace of %q has neither a source plan nor a bound result", table)
	}
	subOpts := opts
	subOpts.Compress = false // internal capture, discarded after the trace
	if subOpts.Mode == ops.None {
		subOpts.Mode = ops.Inject
	}
	subOpts.Dirs = 0
	subOpts.TableDirs = map[string]ops.Directions{table: need}
	child, err := runNode(source, subOpts)
	if err != nil {
		return nil, nil, err
	}
	var ix *lineage.Index
	if need.Backward() {
		ix = child.bw[table]
	} else {
		ix = child.fw[table]
	}
	if ix == nil {
		return nil, nil, fmt.Errorf("exec: trace: no lineage captured for %q (is it a base relation of the source?)", table)
	}
	return child.rel, ix, nil
}

// traceSeeds resolves step 2: the seed rid set over seedRel (the source
// output for backward traces, the base relation for forward ones). The
// result is never nil — an empty seed set must stay an explicit empty rid
// subset downstream (nil means "all rows" to the aggregation kernels).
//
// Explicit seeds are validated against both the seed relation and the index
// that will expand them (ixLen): a rid past either bound would index the
// rid array or the encoded offset directory unchecked and panic the handler.
// The rejection is a structured Invalid — a client mistake (HTTP 400), not
// an engine failure (500).
func traceSeeds(seedRel *storage.Relation, ixLen int, rids []lineage.Rid, pred expr.Expr, opts PlanOpts) ([]lineage.Rid, error) {
	if rids != nil {
		lim := seedRel.N
		if ixLen < lim {
			lim = ixLen
		}
		for _, r := range rids {
			if int(r) < 0 || int(r) >= lim {
				return nil, serr.New(serr.Invalid, "exec: trace seed rid %d out of range [0, %d)", r, lim)
			}
		}
		return rids, nil
	}
	if pred == nil {
		// Seed everything: the full identity set.
		all := make([]lineage.Rid, seedRel.N)
		for i := range all {
			all[i] = lineage.Rid(i)
		}
		return all, nil
	}
	p, err := expr.CompilePred(pred, seedRel, opts.Params)
	if err != nil {
		return nil, fmt.Errorf("exec: trace seed predicate: %w", err)
	}
	sres := ops.Select(seedRel.N, p, ops.SelectOpts{
		Mode: ops.None, Workers: opts.Workers, Pool: opts.Pool,
		Kernel: expr.CompileBitKernel(pred, seedRel, opts.Params),
	})
	return sres.OutRids, nil
}

// backwardRids runs a Backward node up to its rid list: either the expanded
// (filtered, optionally deduplicated) base rid list, or — when the optimizer
// annotated a scan-and-filter equivalent and the seeds select most of the
// output — the Scan to run instead.
func backwardRids(node plan.Backward, opts PlanOpts) ([]lineage.Rid, *plan.Scan, error) {
	srcOut, ix, err := traceIndex(node.Source, node.Bound, node.Table, ops.CaptureBackward, opts)
	if err != nil {
		return nil, nil, err
	}
	seeds, err := traceSeeds(srcOut, ix.Len(), node.SeedRids, node.SeedPred, opts)
	if err != nil {
		return nil, nil, err
	}
	if node.ScanEquiv != nil && srcOut.N > 0 &&
		len(seeds)*scanEquivThresholdDen >= srcOut.N*scanEquivThresholdNum {
		return nil, node.ScanEquiv, nil
	}
	var keep func(lineage.Rid) bool
	if node.Filter != nil {
		p, err := expr.CompilePred(node.Filter, node.Rel, opts.Params)
		if err != nil {
			return nil, nil, fmt.Errorf("exec: trace filter: %w", err)
		}
		keep = func(r lineage.Rid) bool { return p(r) }
	}
	rids := lineage.ParTraceFiltered(ix, seeds, keep, opts.Workers, opts.Pool)
	if node.Distinct {
		rids = lineage.Dedup(rids)
	}
	if rids == nil {
		rids = []lineage.Rid{}
	}
	return rids, nil, nil
}

// runBackward lowers a Backward trace: its output relation is the traced
// base rows (gathered from the base relation), and its lineage to the traced
// relation is the rid list itself (backward) and its inversion (forward).
func runBackward(node plan.Backward, opts PlanOpts) (nodeOut, error) {
	rids, scan, err := backwardRids(node, opts)
	if err != nil {
		return nodeOut{}, err
	}
	if scan != nil {
		return runScan(*scan, opts)
	}
	out := nodeOut{
		rel: node.Rel.Gather(node.Table, rids),
		bw:  map[string]*lineage.Index{}, fw: map[string]*lineage.Index{},
	}
	dirs := opts.dirsFor(node.Table)
	if dirs.Backward() {
		out.bw[node.Table] = lineage.NewOneToOne(rids)
	}
	if dirs.Forward() {
		out.fw[node.Table] = lineage.Invert(lineage.NewOneToOne(rids), node.Rel.N)
	}
	return out, nil
}

// forwardRids runs a Forward node up to its expanded rid list, also
// returning the source context (output relation and captured indexes)
// runForward composes end-to-end lineage from.
func forwardRids(node plan.Forward, opts PlanOpts) ([]lineage.Rid, *storage.Relation, map[string]*lineage.Index, map[string]*lineage.Index, error) {
	var srcOut *storage.Relation
	var ix *lineage.Index
	var srcBW, srcFW map[string]*lineage.Index
	if node.Bound != nil {
		var err error
		srcOut, ix, err = traceIndex(nil, node.Bound, node.Table, ops.CaptureForward, opts)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		srcBW, srcFW = map[string]*lineage.Index{}, map[string]*lineage.Index{}
		for _, rel := range node.Bound.Capture.Relations() {
			if bix, err := node.Bound.Capture.BackwardIndex(rel); err == nil {
				srcBW[rel] = bix
			}
			if fix, err := node.Bound.Capture.ForwardIndex(rel); err == nil {
				srcFW[rel] = fix
			}
		}
	} else {
		if node.Source == nil {
			return nil, nil, nil, nil, fmt.Errorf("exec: trace of %q has neither a source plan nor a bound result", node.Table)
		}
		// Execute the source with full capture: the forward index of Table
		// drives the trace, and the remaining indexes compose into the
		// node's end-to-end lineage.
		subOpts := opts
		subOpts.Compress = false
		if subOpts.Mode == ops.None {
			subOpts.Mode = ops.Inject
		}
		subOpts.Dirs = ops.CaptureBoth
		subOpts.TableDirs = nil
		child, err := runNode(node.Source, subOpts)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		srcOut, srcBW, srcFW = child.rel, child.bw, child.fw
		ix = srcFW[node.Table]
		if ix == nil {
			return nil, nil, nil, nil, fmt.Errorf("exec: trace: no forward lineage captured for %q", node.Table)
		}
	}
	seeds, err := traceSeeds(node.Rel, ix.Len(), node.SeedRids, node.SeedPred, opts)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var keep func(lineage.Rid) bool
	if node.Filter != nil {
		p, err := expr.CompilePred(node.Filter, srcOut, opts.Params)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("exec: trace filter: %w", err)
		}
		keep = func(r lineage.Rid) bool { return p(r) }
	}
	rids := lineage.ParTraceFiltered(ix, seeds, keep, opts.Workers, opts.Pool)
	if node.Distinct {
		rids = lineage.Dedup(rids)
	}
	if rids == nil {
		rids = []lineage.Rid{}
	}
	return rids, srcOut, srcBW, srcFW, nil
}

// runForward lowers a Forward trace: its output is the source output rows
// reachable from the seed base rows, and its end-to-end lineage composes the
// traced positions with the source's own captured indexes.
func runForward(node plan.Forward, opts PlanOpts) (nodeOut, error) {
	rids, srcOut, srcBW, srcFW, err := forwardRids(node, opts)
	if err != nil {
		return nodeOut{}, err
	}
	out := nodeOut{
		rel: srcOut.Gather(srcOut.Name, rids),
		bw:  map[string]*lineage.Index{}, fw: map[string]*lineage.Index{},
	}
	local := lineage.NewOneToOne(rids)
	var localInv *lineage.Index
	for base, bix := range srcBW {
		if opts.dirsFor(base).Backward() {
			out.bw[base] = lineage.Compose(local, bix)
		}
	}
	for base, fix := range srcFW {
		if !opts.dirsFor(base).Forward() {
			continue
		}
		if localInv == nil {
			localInv = lineage.Invert(local, srcOut.N)
		}
		out.fw[base] = lineage.Compose(fix, localInv)
	}
	return out, nil
}

// TraceRids executes a trace node down to its bare rid list — the backward
// (resp. forward) base-side rids — without materializing the traced rows.
// The lazy trace path (core answering Backward/Forward on a capture-free
// result by re-executing its stored plan) runs on it: pass the optimized
// trace node, which is either still a Backward/Forward (re-execute the
// source with targeted capture, expand) or — when the optimizer collapsed an
// unbound predicate-seeded trace to its scan-and-filter equivalent — a bare
// Scan whose selected rids ARE the trace.
func TraceRids(n plan.Node, opts PlanOpts) ([]lineage.Rid, error) {
	switch node := n.(type) {
	case plan.Backward:
		rids, scan, err := backwardRids(node, opts)
		if err != nil {
			return nil, err
		}
		if scan != nil {
			return scanRids(*scan, opts)
		}
		return rids, nil
	case plan.Forward:
		rids, _, _, _, err := forwardRids(node, opts)
		return rids, err
	case plan.Scan:
		return scanRids(node, opts)
	}
	return nil, fmt.Errorf("exec: TraceRids wants a trace node, got %T", n)
}

// scanRids evaluates a scan's filter down to the selected rid list (in scan
// order; the identity set when unfiltered).
func scanRids(sc plan.Scan, opts PlanOpts) ([]lineage.Rid, error) {
	if sc.Filter == nil {
		all := make([]lineage.Rid, sc.Rel.N)
		for i := range all {
			all[i] = lineage.Rid(i)
		}
		return all, nil
	}
	p, err := expr.CompilePred(sc.Filter, sc.Rel, opts.Params)
	if err != nil {
		return nil, fmt.Errorf("exec: trace scan filter: %w", err)
	}
	sres := ops.Select(sc.Rel.N, p, ops.SelectOpts{
		Mode: ops.None, Workers: opts.Workers, Pool: opts.Pool,
		Kernel: expr.CompileBitKernel(sc.Filter, sc.Rel, opts.Params),
	})
	rids := sres.OutRids
	if rids == nil {
		rids = []lineage.Rid{}
	}
	return rids, nil
}
