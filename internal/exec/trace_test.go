package exec

import (
	"reflect"
	"testing"

	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/plan"
	"smoke/internal/pool"
	"smoke/internal/storage"
)

// traceTestRel builds sales(region int, amount float): 12 rows, 3 regions.
func traceTestRel() *storage.Relation {
	rel := storage.NewRelation("sales", storage.Schema{
		{Name: "region", Type: storage.TInt},
		{Name: "amount", Type: storage.TFloat},
	}, 12)
	for i := 0; i < 12; i++ {
		rel.Cols[0].Ints[i] = int64(i % 3)
		rel.Cols[1].Floats[i] = float64(i * 10)
	}
	return rel
}

func baseGroupBy(rel *storage.Relation) plan.Node {
	return plan.GroupBy{
		Child: plan.Scan{Table: "sales", Rel: rel},
		Keys:  []string{"region"},
		Aggs:  []plan.AggDef{{Fn: ops.Count, Name: "c"}},
	}
}

// TestBackwardTraceUnbound runs a trace-then-aggregate plan whose source
// executes inline, and checks the traced rows against the brute-force subset.
func TestBackwardTraceUnbound(t *testing.T) {
	rel := traceTestRel()
	// Trace the rows behind region==1's group, then sum their amounts.
	n := plan.Node(plan.GroupBy{
		Child: plan.Backward{
			Source:   baseGroupBy(rel),
			Table:    "sales",
			Rel:      rel,
			SeedPred: expr.EqE(expr.C("region"), expr.I(1)),
		},
		Keys: []string{"region"},
		Aggs: []plan.AggDef{{Fn: ops.Sum, Arg: expr.C("amount"), Name: "s"}},
	})
	res, err := RunPlan(n, PlanOpts{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != 1 {
		t.Fatalf("want 1 group, got %d", res.Out.N)
	}
	want := 0.0
	for i := 0; i < rel.N; i++ {
		if rel.Cols[0].Ints[i] == 1 {
			want += rel.Cols[1].Floats[i]
		}
	}
	if got := res.Out.Cols[1].Floats[0]; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// End-to-end lineage: the group's backward rids are the region==1 rows.
	rids, err := res.Capture.Backward("sales", []lineage.Rid{0})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rids {
		if rel.Cols[0].Ints[r] != 1 {
			t.Fatalf("backward rid %d is not a region==1 row", r)
		}
	}
	if len(rids) != 4 {
		t.Fatalf("want 4 contributing rows, got %d", len(rids))
	}
}

// TestBoundTraceMatchesConsumeAndParallel checks that a bound trace (the
// interactive consuming-query path) is element-identical to the direct
// serial rid-set aggregation, across parallelism, compression, and duplicate
// seeds.
func TestBoundTraceMatchesConsumeAndParallel(t *testing.T) {
	rel := traceTestRel()
	pl := pool.New(3)
	defer pl.Close()

	for _, compress := range []bool{false, true} {
		base, err := RunPlan(baseGroupBy(rel), PlanOpts{Mode: ops.Inject, Compress: compress})
		if err != nil {
			t.Fatal(err)
		}
		// Duplicate seeds: group 0 traced twice plus group 2 — consuming
		// semantics preserve the duplicates.
		seeds := []lineage.Rid{0, 2, 0}
		bound := &plan.BoundTrace{Out: base.Out, Capture: base.Capture}
		mk := func() plan.Node {
			return plan.GroupBy{
				Child: plan.Backward{Table: "sales", Rel: rel, SeedRids: seeds, Bound: bound},
				Keys:  []string{"region"},
				Aggs:  []plan.AggDef{{Fn: ops.Count, Name: "c"}, {Fn: ops.Sum, Arg: expr.C("amount"), Name: "s"}},
			}
		}
		ref, err := RunPlan(mk(), PlanOpts{Mode: ops.Inject})
		if err != nil {
			t.Fatal(err)
		}
		// The direct pre-plan path: expand rids serially, aggregate serially.
		bw, err := base.Capture.BackwardIndex("sales")
		if err != nil {
			t.Fatal(err)
		}
		rids := bw.Trace(seeds)
		direct, err := ops.HashAgg(rel, rids, ops.GroupBySpec{
			Keys: []string{"region"},
			Aggs: []ops.AggSpec{{Fn: ops.Count, Name: "c"}, {Fn: ops.Sum, Arg: expr.C("amount"), Name: "s"}},
		}, ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Out.N != direct.Out.N {
			t.Fatalf("plan path %d groups, direct %d", ref.Out.N, direct.Out.N)
		}
		for o := 0; o < ref.Out.N; o++ {
			planRids, _ := ref.Capture.Backward("sales", []lineage.Rid{lineage.Rid(o)})
			if !reflect.DeepEqual(planRids, direct.BW.List(o)) {
				t.Fatalf("compress=%v: group %d backward lineage diverges from direct path", compress, o)
			}
		}
		// Morsel-parallel run must be element-identical to serial.
		par, err := RunPlan(mk(), PlanOpts{Mode: ops.Inject, Workers: 3, Pool: pl})
		if err != nil {
			t.Fatal(err)
		}
		for o := 0; o < ref.Out.N; o++ {
			want, _ := ref.Capture.Backward("sales", []lineage.Rid{lineage.Rid(o)})
			got, _ := par.Capture.Backward("sales", []lineage.Rid{lineage.Rid(o)})
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("compress=%v: parallel backward lineage of group %d diverges", compress, o)
			}
		}
		wantFW, _ := ref.Capture.ForwardIndex("sales")
		gotFW, _ := par.Capture.ForwardIndex("sales")
		for i := 0; i < rel.N; i++ {
			w := wantFW.TraceOne(lineage.Rid(i), nil)
			g := gotFW.TraceOne(lineage.Rid(i), nil)
			if !reflect.DeepEqual(w, g) {
				t.Fatalf("compress=%v: parallel forward lineage of rid %d diverges (%v vs %v)", compress, i, g, w)
			}
		}
	}
}

// TestForwardTrace checks the forward trace node: output rows dependent on
// seed base rows, with end-to-end lineage composed through the source.
func TestForwardTrace(t *testing.T) {
	rel := traceTestRel()
	base, err := RunPlan(baseGroupBy(rel), PlanOpts{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	bound := &plan.BoundTrace{Out: base.Out, Capture: base.Capture}
	// Rows 0 (region 0) and 4 (region 1) reach groups 0 and 1.
	n := plan.Forward{Table: "sales", Rel: rel, SeedRids: []lineage.Rid{0, 4}, Bound: bound}
	res, err := RunPlan(n, PlanOpts{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != 2 {
		t.Fatalf("want 2 traced output rows, got %d", res.Out.N)
	}
	if res.Out.Cols[0].Ints[0] != 0 || res.Out.Cols[0].Ints[1] != 1 {
		t.Fatalf("traced groups = %v, %v; want regions 0, 1", res.Out.Cols[0].Ints[0], res.Out.Cols[0].Ints[1])
	}
	// Composed backward lineage: traced row 0 is group 0 — all region==0 rows.
	rids, err := res.Capture.Backward("sales", []lineage.Rid{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 4 {
		t.Fatalf("want 4 contributing rows for traced group, got %d", len(rids))
	}
}

// TestScanEquivChoice pins the optimizer + physical selectivity choice: a
// key-predicate trace over an unbound source rewrites to a scan, and a bound
// trace seeded with most of the output runs its scan-and-filter equivalent.
func TestScanEquivChoice(t *testing.T) {
	rel := traceTestRel()
	mkTrace := func(bound *plan.BoundTrace) plan.Node {
		return plan.Backward{
			Source: baseGroupBy(rel), Table: "sales", Rel: rel,
			SeedPred: expr.LeE(expr.C("region"), expr.I(1)),
			Bound:    bound,
		}
	}
	// Unbound: the rewrite replaces the trace with a filtered scan.
	opt, _ := plan.Optimize(mkTrace(nil), plan.Opts{})
	if _, ok := opt.(plan.Scan); !ok {
		t.Fatalf("unbound key-predicate trace should rewrite to a Scan, got %T:\n%s", opt, plan.Format(opt))
	}
	// Bound: the node keeps the index but carries the scan equivalent.
	base, err := RunPlan(baseGroupBy(rel), PlanOpts{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	bt := &plan.BoundTrace{Out: base.Out, Capture: base.Capture}
	optB, _ := plan.Optimize(mkTrace(bt), plan.Opts{})
	bnode, ok := optB.(plan.Backward)
	if !ok || bnode.ScanEquiv == nil {
		t.Fatalf("bound trace should keep the node with a scan-equiv annotation, got %T", optB)
	}
	// Seeds cover 2 of 3 groups (>= half): the physical layer picks the scan,
	// whose output is the ascending base-row order.
	res, err := RunPlan(optB, PlanOpts{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	prevRid := lineage.Rid(-1)
	for o := 0; o < res.Out.N; o++ {
		if res.Out.Cols[0].Ints[o] > 1 {
			t.Fatalf("row %d has region %d, want <= 1", o, res.Out.Cols[0].Ints[o])
		}
		rids, _ := res.Capture.Backward("sales", []lineage.Rid{lineage.Rid(o)})
		if len(rids) != 1 {
			t.Fatalf("trace output row should map to one base row")
		}
		if rids[0] <= prevRid {
			t.Fatalf("scan-and-filter output should be in ascending rid order")
		}
		prevRid = rids[0]
		rows++
	}
	if rows != 8 {
		t.Fatalf("want 8 traced rows, got %d", rows)
	}
}
