package exec_test

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"smoke/internal/exec"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/storage"
	"smoke/internal/tpch"
)

func testDB(t *testing.T) *tpch.DB {
	t.Helper()
	return tpch.Generate(0.002, 42)
}

// naiveQ1 computes Q1's groups and per-group lineitem rid sets by brute force.
func naiveQ1(db *tpch.DB) map[string]struct {
	count int64
	sum   float64
	rids  []int32
} {
	li := db.Lineitem
	sd := li.Schema.MustCol("l_shipdate")
	rf := li.Schema.MustCol("l_returnflag")
	ls := li.Schema.MustCol("l_linestatus")
	qt := li.Schema.MustCol("l_quantity")
	cut := int64(10561) // 1998-12-01
	out := map[string]struct {
		count int64
		sum   float64
		rids  []int32
	}{}
	for i := 0; i < li.N; i++ {
		if li.Int(sd, i) >= cut {
			continue
		}
		key := li.Str(rf, i) + "|" + li.Str(ls, i)
		g := out[key]
		g.count++
		g.sum += li.Float(qt, i)
		g.rids = append(g.rids, int32(i))
		out[key] = g
	}
	return out
}

func TestSPJAQ1MatchesNaive(t *testing.T) {
	db := testDB(t)
	res, err := exec.Run(db.Q1(), exec.Opts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	want := naiveQ1(db)
	if res.Out.N != len(want) {
		t.Fatalf("Q1 groups = %d, want %d", res.Out.N, len(want))
	}
	rf := res.Out.Schema.MustCol("l_returnflag")
	ls := res.Out.Schema.MustCol("l_linestatus")
	cnt := res.Out.Schema.MustCol("count_order")
	sq := res.Out.Schema.MustCol("sum_qty")
	bw, err := res.Capture.BackwardIndex("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < res.Out.N; o++ {
		key := res.Out.Str(rf, o) + "|" + res.Out.Str(ls, o)
		g, ok := want[key]
		if !ok {
			t.Fatalf("unexpected group %q", key)
		}
		if res.Out.Int(cnt, o) != g.count {
			t.Errorf("group %q count = %d, want %d", key, res.Out.Int(cnt, o), g.count)
		}
		if math.Abs(res.Out.Float(sq, o)-g.sum) > 1e-6*(1+g.sum) {
			t.Errorf("group %q sum_qty = %v, want %v", key, res.Out.Float(sq, o), g.sum)
		}
		got := append([]int32(nil), bw.TraceOne(int32(o), nil)...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if !reflect.DeepEqual(got, g.rids) {
			t.Errorf("group %q lineage has %d rids, want %d", key, len(got), len(g.rids))
		}
	}
}

func TestSPJAInjectDeferEquivalence(t *testing.T) {
	db := testDB(t)
	for name, spec := range db.Queries() {
		inj, err := exec.Run(spec, exec.Opts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
		if err != nil {
			t.Fatalf("%s inject: %v", name, err)
		}
		def, err := exec.Run(spec, exec.Opts{Mode: ops.Defer, Dirs: ops.CaptureBoth})
		if err != nil {
			t.Fatalf("%s defer: %v", name, err)
		}
		if inj.Out.N != def.Out.N {
			t.Fatalf("%s: group counts differ (%d vs %d)", name, inj.Out.N, def.Out.N)
		}
		for _, tbl := range spec.Tables {
			ib, err1 := inj.Capture.BackwardIndex(tbl.Rel.Name)
			dbw, err2 := def.Capture.BackwardIndex(tbl.Rel.Name)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: missing backward for %s", name, tbl.Rel.Name)
			}
			for o := 0; o < inj.Out.N; o++ {
				a := append([]int32(nil), ib.TraceOne(int32(o), nil)...)
				b := append([]int32(nil), dbw.TraceOne(int32(o), nil)...)
				sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
				sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s: %s backward lineage differs at group %d", name, tbl.Rel.Name, o)
				}
			}
		}
	}
}

func TestSPJAQ3JoinLineage(t *testing.T) {
	db := testDB(t)
	res, err := exec.Run(db.Q3(), exec.Opts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	// Every group's customer lineage must be BUILDING-segment customers, and
	// its orders lineage must reference exactly the group's o_orderkey.
	cbw, err := res.Capture.BackwardIndex("customer")
	if err != nil {
		t.Fatal(err)
	}
	obw, err := res.Capture.BackwardIndex("orders")
	if err != nil {
		t.Fatal(err)
	}
	seg := db.Customer.Schema.MustCol("c_mktsegment")
	ok := res.Out.Schema.MustCol("o_orderkey")
	okey := db.Orders.Schema.MustCol("o_orderkey")
	for o := 0; o < res.Out.N; o++ {
		for _, crid := range cbw.TraceOne(int32(o), nil) {
			if db.Customer.Str(seg, int(crid)) != "BUILDING" {
				t.Fatalf("group %d: non-BUILDING customer in lineage", o)
			}
		}
		for _, orid := range obw.TraceOne(int32(o), nil) {
			if db.Orders.Int(okey, int(orid)) != res.Out.Int(ok, o) {
				t.Fatalf("group %d: lineage order key mismatch", o)
			}
		}
	}
	// Lineage cardinalities agree across tables (one rid per table per join row).
	libw, _ := res.Capture.BackwardIndex("lineitem")
	for o := 0; o < res.Out.N; o++ {
		nl := len(libw.TraceOne(int32(o), nil))
		no := len(obw.TraceOne(int32(o), nil))
		nc := len(cbw.TraceOne(int32(o), nil))
		if nl != no || nl != nc || nl != int(res.GroupCounts[o]) {
			t.Fatalf("group %d: cardinalities differ (li=%d o=%d c=%d count=%d)", o, nl, no, nc, res.GroupCounts[o])
		}
	}
}

func TestSPJAForwardBackwardConsistency(t *testing.T) {
	db := testDB(t)
	res, err := exec.Run(db.Q12(), exec.Opts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	// Last table (lineitem) forward is one-to-one; check round trip.
	lifw, err := res.Capture.ForwardIndex("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	libw, _ := res.Capture.BackwardIndex("lineitem")
	if lifw.Kind != lineage.OneToOne {
		t.Fatal("fact-table forward index should be a rid array")
	}
	for rid, o := range lifw.Arr {
		if o < 0 {
			continue
		}
		found := false
		for _, r := range libw.TraceOne(o, nil) {
			if r == int32(rid) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("lineitem rid %d not in backward lineage of its group", rid)
		}
	}
	// Dimension table (orders) forward is one-to-many and must agree with
	// backward.
	ofw, err := res.Capture.ForwardIndex("orders")
	if err != nil {
		t.Fatal(err)
	}
	obw, _ := res.Capture.BackwardIndex("orders")
	for rid := 0; rid < db.Orders.N; rid++ {
		for _, o := range ofw.TraceOne(int32(rid), nil) {
			found := false
			for _, r := range obw.TraceOne(o, nil) {
				if r == int32(rid) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("orders rid %d forward edge not confirmed backward", rid)
			}
		}
	}
}

func TestSPJATablePruning(t *testing.T) {
	db := testDB(t)
	spec := db.Q3()
	// Capture only lineitem backward (tooltip workload, §4.1).
	res, err := exec.Run(spec, exec.Opts{Mode: ops.Inject, TableDirs: []ops.Directions{0, 0, ops.CaptureBackward}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Capture.HasBackward("customer") || res.Capture.HasBackward("orders") {
		t.Fatal("pruned tables must not be captured")
	}
	if res.Capture.HasForward("lineitem") {
		t.Fatal("pruned direction must not be captured")
	}
	if !res.Capture.HasBackward("lineitem") {
		t.Fatal("requested index missing")
	}
	// Results identical to full capture.
	full, err := exec.Run(spec, exec.Opts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != full.Out.N {
		t.Fatal("pruning changed query results")
	}
}

func TestSPJABaselineNoCapture(t *testing.T) {
	db := testDB(t)
	res, err := exec.Run(db.Q10(), exec.Opts{Mode: ops.None})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Capture.Relations()) != 0 {
		t.Fatal("baseline captured lineage")
	}
	if res.Out.N == 0 {
		t.Fatal("Q10 returned no groups")
	}
}

func TestSPJAQ12FilteredCounts(t *testing.T) {
	db := testDB(t)
	res, err := exec.Run(db.Q12(), exec.Opts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N == 0 || res.Out.N > 2 {
		t.Fatalf("Q12 groups = %d, want 1-2 (MAIL, SHIP)", res.Out.N)
	}
	hc := res.Out.Schema.MustCol("high_line_count")
	lc := res.Out.Schema.MustCol("low_line_count")
	for o := 0; o < res.Out.N; o++ {
		total := res.Out.Int(hc, o) + res.Out.Int(lc, o)
		if total != res.GroupCounts[o] {
			t.Fatalf("group %d: high+low = %d, want %d", o, total, res.GroupCounts[o])
		}
	}
}

func TestSPJAErrors(t *testing.T) {
	db := testDB(t)
	if _, err := exec.Run(exec.Spec{}, exec.Opts{}); err == nil {
		t.Error("empty spec should error")
	}
	spec := db.Q3()
	spec.Joins = spec.Joins[:1]
	if _, err := exec.Run(spec, exec.Opts{}); err == nil {
		t.Error("wrong join count should error")
	}
	bad := db.Q1()
	bad.Keys = []exec.KeyRef{{Table: 0, Col: "nope"}}
	if _, err := exec.Run(bad, exec.Opts{}); err == nil {
		t.Error("unknown key column should error")
	}
	bad2 := db.Q1()
	bad2.Aggs = []exec.AggRef{{Fn: ops.Sum, Table: 0, Name: "x"}}
	if _, err := exec.Run(bad2, exec.Opts{}); err == nil {
		t.Error("SUM without arg should error")
	}
	bad3 := db.Q1()
	bad3.Keys = nil
	if _, err := exec.Run(bad3, exec.Opts{}); err == nil {
		t.Error("missing keys should error")
	}
}

func TestSPJASingleIntKeyFastPath(t *testing.T) {
	// A single TInt group key exercises the hashtab fast path.
	rel := storage.NewEmpty("t", storage.Schema{
		{Name: "k", Type: storage.TInt},
		{Name: "v", Type: storage.TFloat},
	})
	rel.AppendRow(1, 1.0)
	rel.AppendRow(2, 2.0)
	rel.AppendRow(1, 3.0)
	res, err := exec.Run(exec.Spec{
		Tables: []exec.TableRef{{Rel: rel}},
		Keys:   []exec.KeyRef{{Table: 0, Col: "k"}},
		Aggs:   []exec.AggRef{{Fn: ops.Count, Table: 0, Name: "c"}},
	}, exec.Opts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != 2 {
		t.Fatalf("groups = %d", res.Out.N)
	}
	bw, _ := res.Capture.BackwardIndex("t")
	for o := 0; o < 2; o++ {
		k := res.Out.Int(0, o)
		for _, r := range bw.TraceOne(int32(o), nil) {
			if rel.Int(0, int(r)) != k {
				t.Fatal("lineage rid has wrong key")
			}
		}
	}
}
