package exec

import (
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/pool"
)

// Morsel-parallel SPJA execution. The join chain is built serially (its
// lineage-annotated hash tables are then shared read-only); the last table's
// scan — the paper's final pipeline, where both the aggregation work and the
// capture writes happen — splits into contiguous rid-range partitions, each
// feeding its own spjaAgg. Partition-local group tables, per-table rid
// lists, and forward indexes merge in partition order, which reproduces the
// serial group discovery order (a group's first occurrence lies in the first
// partition that contains it) and therefore the serial output relation and
// every lineage index exactly.

func runParallel(pipe *pipeline, spec Spec, opts Opts) (Result, error) {
	k := len(spec.Tables)
	last := k - 1
	n := spec.Tables[last].Rel.N
	ranges := pool.Split(n, opts.Workers)

	// The last table's forward index is rid-addressed and partitions own
	// disjoint rid ranges, so all partitions share one array (writing
	// partition-local group slots, rebased after the merge).
	var fwLast []lineage.Rid
	if opts.dirsFor(last).Forward() {
		fwLast = make([]lineage.Rid, n)
		for i := range fwLast {
			fwLast[i] = -1
		}
	}
	locals := make([]*spjaAgg, len(ranges))
	for p := range locals {
		a, err := newSPJAAggShared(spec, opts, fwLast, true)
		if err != nil {
			return Result{}, err
		}
		locals[p] = a
	}

	inject := opts.Mode == ops.Inject
	// Compressed capture: each partition encodes its local backward lists
	// inside the worker (encBW[part][t]); the merge below concatenates the
	// encoded lists per global group without re-encoding.
	encBW := make([][]*lineage.EncodedIndex, len(ranges))
	opts.Pool.RunSplit(ranges, func(part, lo, hi int) {
		a := locals[part]
		pipe.forEachLastRange(lo, hi, func(chain []lineage.Rid, rid int32) {
			slot := a.lookup(chain)
			a.update(slot, chain)
			if inject {
				a.captureRow(slot, chain)
			}
		})
		if opts.Mode == ops.Defer {
			// Partition-local Zγ pass: local counts are exact for the local
			// range, so the local backward indexes preallocate exactly.
			a.prepareDefer()
			pipe.forEachLastRange(lo, hi, func(chain []lineage.Rid, rid int32) {
				a.captureRow(a.probe(chain), chain)
			})
		}
		if opts.Compress && opts.Mode != ops.None {
			encBW[part] = make([]*lineage.EncodedIndex, k)
			for t := 0; t < k; t++ {
				if !a.tableDirs[t].Backward() {
					continue
				}
				if opts.Mode == ops.Defer {
					encBW[part][t] = lineage.EncodeRidIndex(a.deferBW[t])
				} else {
					encBW[part][t] = lineage.EncodeLists(a.groupRids[t])
				}
			}
		}
	})

	// Merge partition tables in partition order. The merged aggregation
	// carries no capture plumbing (Mode None); indexes are stitched from the
	// partition-local structures below.
	merged, err := newSPJAAgg(spec, Opts{Params: opts.Params})
	if err != nil {
		return Result{}, err
	}
	slotMaps := make([][]lineage.Rid, len(locals))
	for p, a := range locals {
		sm := make([]lineage.Rid, a.nGroups)
		for s := int32(0); s < a.nGroups; s++ {
			g := merged.lookup(a.repChain[s])
			sm[s] = g
			merged.counts[g] += a.counts[s]
			for i := range merged.accs {
				merged.accs[i].mergeFrom(g, &a.accs[i], s)
			}
		}
		slotMaps[p] = sm
	}
	nG := int(merged.nGroups)

	res := Result{Out: merged.materialize(), GroupCounts: merged.counts, Capture: lineage.NewCapture()}
	capMode := opts.Mode == ops.Inject || opts.Mode == ops.Defer
	if !capMode {
		return res, nil
	}
	for t := 0; t < k; t++ {
		d := locals[0].tableDirs[t]
		name := spec.Tables[t].Rel.Name
		if d.Backward() {
			if opts.Compress {
				// Compression-aware merge: concatenate the partition-encoded
				// lists per global group — no re-encoding.
				parts := make([]*lineage.EncodedIndex, len(locals))
				for p := range locals {
					parts[p] = encBW[p][t]
				}
				merged := lineage.MergeEncodedBySlot(parts, slotMaps, nG)
				res.Capture.SetBackward(name, lineage.NewEncodedMany(merged))
			} else if opts.Mode == ops.Defer {
				parts := make([]*lineage.RidIndex, len(locals))
				for p, a := range locals {
					parts[p] = a.deferBW[t]
				}
				ix := lineage.MergeIndexesBySlot(parts, slotMaps, nG)
				res.Capture.SetBackward(name, lineage.NewOneToMany(ix))
			} else {
				lists := make([][][]lineage.Rid, len(locals))
				for p, a := range locals {
					lists[p] = a.groupRids[t]
				}
				ix := lineage.MergeListsBySlot(lists, slotMaps, nG)
				res.Capture.SetBackward(name, lineage.NewOneToMany(ix))
			}
		}
		if d.Forward() {
			if t == last {
				// Rebase shared last-table forward entries from local to
				// global slots, each partition covering only its rid range.
				opts.Pool.RunSplit(ranges, func(part, lo, hi int) {
					lineage.SlotRebase(fwLast, lo, hi, slotMaps[part])
				})
				fwIx := lineage.NewOneToOne(fwLast)
				if opts.Compress {
					fwIx = lineage.EncodeIndex(fwIx)
				}
				res.Capture.SetForward(name, fwIx)
			} else {
				pairR := make([][]lineage.Rid, len(locals))
				pairS := make([][]lineage.Rid, len(locals))
				for p, a := range locals {
					pairR[p] = a.fwPairR[t]
					pairS[p] = a.fwPairS[t]
				}
				fw := lineage.MergePairsByRid(pairR, pairS, spec.Tables[t].Rel.N,
					func(part int, s lineage.Rid) lineage.Rid { return slotMaps[part][s] })
				if opts.Compress {
					res.Capture.SetForward(name, lineage.NewEncodedMany(lineage.EncodeRidIndex(fw)))
				} else {
					res.Capture.SetForward(name, lineage.NewOneToMany(fw))
				}
			}
		}
	}
	return res, nil
}
