package exec

import (
	"reflect"
	"sort"
	"testing"

	"smoke/internal/datagen"
	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/plan"
	"smoke/internal/storage"
)

func TestPlanFilterThenGroupBy(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 2000, 10, 5)
	p := plan.GroupBy{
		Child: plan.Filter{Child: plan.Scan{Table: "zipf", Rel: rel}, Pred: expr.LtE(expr.C("v"), expr.F(50))},
		Keys:  []string{"z"},
		Aggs:  []plan.AggDef{{Fn: ops.Count, Name: "c"}},
	}
	res, err := RunPlan(p, PlanOpts{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	// End-to-end lineage must point at *base* rids: every rid in a group's
	// lineage must satisfy the filter and carry the group's key.
	bw, err := res.Capture.BackwardIndex("zipf")
	if err != nil {
		t.Fatal(err)
	}
	vcol := rel.Schema.MustCol("v")
	zcol := rel.Schema.MustCol("z")
	total := 0
	for o := 0; o < res.Out.N; o++ {
		key := res.Out.Int(0, o)
		rids := bw.TraceOne(int32(o), nil)
		total += len(rids)
		for _, r := range rids {
			if rel.Float(vcol, int(r)) >= 50 {
				t.Fatalf("group %d lineage includes filtered-out rid %d", o, r)
			}
			if rel.Int(zcol, int(r)) != key {
				t.Fatalf("group %d lineage includes rid with wrong key", o)
			}
		}
	}
	want := 0
	for i := 0; i < rel.N; i++ {
		if rel.Float(vcol, i) < 50 {
			want++
		}
	}
	if total != want {
		t.Fatalf("lineage covers %d rids, want %d", total, want)
	}
	// Forward: every selected base rid maps to the group holding its key.
	fw, err := res.Capture.ForwardIndex("zipf")
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < int32(rel.N); i++ {
		outs := fw.TraceOne(i, nil)
		if rel.Float(vcol, int(i)) >= 50 {
			if len(outs) != 0 {
				t.Fatalf("filtered rid %d has forward lineage", i)
			}
			continue
		}
		if len(outs) != 1 {
			t.Fatalf("selected rid %d maps to %d groups", i, len(outs))
		}
		if res.Out.Int(0, int(outs[0])) != rel.Int(zcol, int(i)) {
			t.Fatalf("rid %d forward lineage points at wrong group", i)
		}
	}
}

func TestPlanJoinComposesBothSides(t *testing.T) {
	gids := datagen.Gids("gids", 20, 1)
	zipf := datagen.Zipf("zipf", 1.0, 500, 20, 2)
	p := plan.GroupBy{
		Child: plan.Join{
			Left:     plan.Scan{Table: "gids", Rel: gids},
			Right:    plan.Filter{Child: plan.Scan{Table: "zipf", Rel: zipf}, Pred: expr.LtE(expr.C("v"), expr.F(40))},
			LeftKey:  "id",
			RightKey: "z",
		},
		// "id" exists on both sides, so the join qualifies it with the
		// relation name.
		Keys: []string{"gids.id"},
		Aggs: []plan.AggDef{{Fn: ops.Count, Name: "c"}},
	}
	res, err := RunPlan(p, PlanOpts{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	zbw, err := res.Capture.BackwardIndex("zipf")
	if err != nil {
		t.Fatal(err)
	}
	gbw, err := res.Capture.BackwardIndex("gids")
	if err != nil {
		t.Fatal(err)
	}
	zcol := zipf.Schema.MustCol("z")
	vcol := zipf.Schema.MustCol("v")
	for o := 0; o < res.Out.N; o++ {
		key := res.Out.Int(0, o)
		// zipf lineage: matching z, passing filter.
		for _, r := range zbw.TraceOne(int32(o), nil) {
			if zipf.Int(zcol, int(r)) != key || zipf.Float(vcol, int(r)) >= 40 {
				t.Fatalf("group %d: bad zipf lineage rid %d", o, r)
			}
		}
		// gids lineage: the single matching dimension row (duplicated per join row).
		grids := gbw.TraceOne(int32(o), nil)
		for _, r := range grids {
			if gids.Int(0, int(r)) != key {
				t.Fatalf("group %d: bad gids lineage", o)
			}
		}
		if len(grids) != len(zbw.TraceOne(int32(o), nil)) {
			t.Fatalf("group %d: per-table lineage cardinalities differ", o)
		}
	}
}

func TestPlanProjectPreservesLineage(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 100, 5, 9)
	p := plan.Project{
		Child: plan.Filter{Child: plan.Scan{Table: "zipf", Rel: rel}, Pred: expr.LtE(expr.C("v"), expr.F(50))},
		Cols:  []string{"z"},
	}
	res, err := RunPlan(p, PlanOpts{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out.Schema) != 1 || res.Out.Schema[0].Name != "z" {
		t.Fatal("projection schema wrong")
	}
	bw, err := res.Capture.BackwardIndex("zipf")
	if err != nil {
		t.Fatal(err)
	}
	// Output row i's lineage must carry the same z value.
	for i := 0; i < res.Out.N; i++ {
		rids := bw.TraceOne(int32(i), nil)
		if len(rids) != 1 {
			t.Fatalf("projection row %d has %d lineage rids", i, len(rids))
		}
		if rel.Int(rel.Schema.MustCol("z"), int(rids[0])) != res.Out.Int(0, i) {
			t.Fatal("projection lineage mismatched")
		}
	}
}

func TestPlanUnionLineage(t *testing.T) {
	a := storage.NewEmpty("a", storage.Schema{{Name: "k", Type: storage.TInt}})
	for _, v := range []int{1, 2, 2} {
		a.AppendRow(v)
	}
	b := storage.NewEmpty("b", storage.Schema{{Name: "k", Type: storage.TInt}})
	for _, v := range []int{2, 3} {
		b.AppendRow(v)
	}
	p := plan.Union{Left: plan.Scan{Table: "a", Rel: a}, Right: plan.Scan{Table: "b", Rel: b}, Attrs: []string{"k"}}
	res, err := RunPlan(p, PlanOpts{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	vals := append([]int64(nil), res.Out.Cols[0].Ints...)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if !reflect.DeepEqual(vals, []int64{1, 2, 3}) {
		t.Fatalf("union = %v", vals)
	}
	abw, err := res.Capture.BackwardIndex("a")
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < res.Out.N; o++ {
		if res.Out.Int(0, o) == 2 {
			rids := append([]int32(nil), abw.TraceOne(int32(o), nil)...)
			sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
			if !reflect.DeepEqual(rids, []int32{1, 2}) {
				t.Fatalf("lineage of 2 in a = %v", rids)
			}
		}
	}
}

func TestPlanOrderByLimitLineage(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 500, 10, 3)
	p := plan.Limit{
		N: 3,
		Child: plan.OrderBy{
			Keys: []plan.SortKey{{Col: "c", Desc: true}, {Col: "z"}},
			Child: plan.GroupBy{
				Child: plan.Scan{Table: "zipf", Rel: rel},
				Keys:  []string{"z"},
				Aggs:  []plan.AggDef{{Fn: ops.Count, Name: "c"}},
			},
		},
	}
	res, err := RunPlan(p, PlanOpts{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.N != 3 {
		t.Fatalf("limit kept %d rows", res.Out.N)
	}
	cc := res.Out.Schema.MustCol("c")
	for i := 1; i < res.Out.N; i++ {
		if res.Out.Int(cc, i) > res.Out.Int(cc, i-1) {
			t.Fatal("not sorted desc by count")
		}
	}
	if len(res.GroupCounts) != 3 {
		t.Fatalf("group counts not threaded through order/limit: %v", res.GroupCounts)
	}
	// Row 0 is the biggest group; its lineage must carry its key and have
	// cardinality equal to its count.
	bw, err := res.Capture.BackwardIndex("zipf")
	if err != nil {
		t.Fatal(err)
	}
	zcol := rel.Schema.MustCol("z")
	for o := 0; o < res.Out.N; o++ {
		rids := bw.TraceOne(int32(o), nil)
		if int64(len(rids)) != res.Out.Int(cc, o) {
			t.Fatalf("row %d lineage cardinality %d != count %d", o, len(rids), res.Out.Int(cc, o))
		}
		for _, r := range rids {
			if rel.Int(zcol, int(r)) != res.Out.Int(0, o) {
				t.Fatalf("row %d lineage rid %d has wrong key", o, r)
			}
		}
	}
	// Forward lineage of a base rid in a cut-off group is empty.
	fw, err := res.Capture.ForwardIndex("zipf")
	if err != nil {
		t.Fatal(err)
	}
	kept := map[int64]int{}
	for o := 0; o < res.Out.N; o++ {
		kept[res.Out.Int(0, o)] = o
	}
	for i := 0; i < rel.N; i++ {
		outs := fw.TraceOne(int32(i), nil)
		if o, ok := kept[rel.Int(zcol, i)]; ok {
			if len(outs) != 1 || int(outs[0]) != o {
				t.Fatalf("rid %d forward = %v, want [%d]", i, outs, o)
			}
		} else if len(outs) != 0 {
			t.Fatalf("rid %d of a cut-off group has forward lineage %v", i, outs)
		}
	}
}

func TestPlanNoCapture(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 100, 5, 9)
	p := plan.GroupBy{
		Child: plan.Scan{Table: "zipf", Rel: rel},
		Keys:  []string{"z"},
		Aggs:  []plan.AggDef{{Fn: ops.Count, Name: "c"}},
	}
	res, err := RunPlan(p, PlanOpts{Mode: ops.None})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Capture.Relations()) != 0 {
		t.Fatal("capture disabled but indexes present")
	}
	if res.Out.N != 5 {
		t.Fatalf("groups = %d", res.Out.N)
	}
}

func TestPlanErrors(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 10, 2, 1)
	if _, err := RunPlan(plan.Project{Child: plan.Scan{Table: "zipf", Rel: rel}, Cols: []string{"nope"}}, PlanOpts{}); err == nil {
		t.Error("bad projection should error")
	}
	if _, err := RunPlan(plan.Filter{Child: plan.Scan{Table: "zipf", Rel: rel}, Pred: expr.C("z")}, PlanOpts{}); err == nil {
		t.Error("non-boolean filter should error")
	}
	if _, err := RunPlan(plan.GroupBy{
		Child: plan.Scan{Table: "zipf", Rel: rel},
		Keys:  []string{"z"},
		Aggs:  []plan.AggDef{{Fn: ops.Count, Filter: expr.LtE(expr.C("v"), expr.F(1)), Name: "c"}},
	}, PlanOpts{}); err == nil {
		t.Error("filtered aggregate outside a fusible block should error")
	}
}

// TestPlanSPJAOverSubplan runs a fused block whose first input is itself an
// aggregation (the multi-block shape): the block's capture must compose with
// the subplan's end-to-end indexes.
func TestPlanSPJAOverSubplan(t *testing.T) {
	gids := datagen.Gids("gids", 20, 1)
	zipf := datagen.Zipf("zipf", 1.0, 500, 20, 2)
	inner := plan.GroupBy{
		Child: plan.Scan{Table: "zipf", Rel: zipf},
		Keys:  []string{"z"},
		Aggs:  []plan.AggDef{{Fn: ops.Count, Name: "cnt"}},
	}
	p := plan.SPJA{
		Inputs:  []plan.Node{inner, plan.Scan{Table: "gids", Rel: gids}},
		Filters: []expr.Expr{nil, nil},
		Joins:   []plan.SPJAJoin{{LeftInput: 0, LeftCol: "z", RightCol: "id"}},
		Keys:    []plan.SPJAKey{{Input: 1, Col: "id"}},
		Aggs:    []plan.SPJAAgg{{Fn: ops.Sum, Input: 0, Arg: expr.C("cnt"), Name: "total"}},
	}
	res, err := RunPlan(p, PlanOpts{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	// Backward lineage of every output must reach the zipf *base* rows whose
	// z equals the output's id.
	bw, err := res.Capture.BackwardIndex("zipf")
	if err != nil {
		t.Fatal(err)
	}
	zcol := zipf.Schema.MustCol("z")
	total := 0
	for o := 0; o < res.Out.N; o++ {
		id := res.Out.Int(0, o)
		rids := bw.TraceOne(int32(o), nil)
		total += len(rids)
		for _, r := range rids {
			if zipf.Int(zcol, int(r)) != id {
				t.Fatalf("output %d (id=%d): lineage rid %d has wrong z", o, id, r)
			}
		}
		// SUM(cnt) equals the number of base rows traced.
		if got := res.Out.Float(1, o); got != float64(len(rids)) {
			t.Fatalf("output %d: total=%v but %d base rows", o, got, len(rids))
		}
	}
	if total != zipf.N {
		t.Fatalf("composed lineage covers %d of %d base rows", total, zipf.N)
	}
	// Forward: base row -> the single output of its group.
	fw, err := res.Capture.ForwardIndex("zipf")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < zipf.N; i++ {
		outs := fw.TraceOne(int32(i), nil)
		if len(outs) != 1 || res.Out.Int(0, int(outs[0])) != zipf.Int(zcol, i) {
			t.Fatalf("rid %d forward lineage wrong: %v", i, outs)
		}
	}
	// gids is a direct scan input: its capture must be keyed by base name.
	if !res.Capture.HasBackward("gids") || !res.Capture.HasForward("gids") {
		t.Fatal("scan input capture missing")
	}
}
