package exec

import (
	"reflect"
	"sort"
	"testing"

	"smoke/internal/datagen"
	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

func TestPlanFilterThenGroupBy(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 2000, 10, 5)
	plan := GroupByNode{
		Child: FilterNode{Child: ScanNode{Table: rel}, Pred: expr.LtE(expr.C("v"), expr.F(50))},
		Spec:  ops.GroupBySpec{Keys: []string{"z"}, Aggs: []ops.AggSpec{{Fn: ops.Count, Name: "c"}}},
	}
	res, err := RunPlan(plan, PlanOpts{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	// End-to-end lineage must point at *base* rids: every rid in a group's
	// lineage must satisfy the filter and carry the group's key.
	bw, err := res.Capture.BackwardIndex("zipf")
	if err != nil {
		t.Fatal(err)
	}
	vcol := rel.Schema.MustCol("v")
	zcol := rel.Schema.MustCol("z")
	total := 0
	for o := 0; o < res.Out.N; o++ {
		key := res.Out.Int(0, o)
		rids := bw.TraceOne(int32(o), nil)
		total += len(rids)
		for _, r := range rids {
			if rel.Float(vcol, int(r)) >= 50 {
				t.Fatalf("group %d lineage includes filtered-out rid %d", o, r)
			}
			if rel.Int(zcol, int(r)) != key {
				t.Fatalf("group %d lineage includes rid with wrong key", o)
			}
		}
	}
	want := 0
	for i := 0; i < rel.N; i++ {
		if rel.Float(vcol, i) < 50 {
			want++
		}
	}
	if total != want {
		t.Fatalf("lineage covers %d rids, want %d", total, want)
	}
	// Forward: every selected base rid maps to the group holding its key.
	fw, err := res.Capture.ForwardIndex("zipf")
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < int32(rel.N); i++ {
		outs := fw.TraceOne(i, nil)
		if rel.Float(vcol, int(i)) >= 50 {
			if len(outs) != 0 {
				t.Fatalf("filtered rid %d has forward lineage", i)
			}
			continue
		}
		if len(outs) != 1 {
			t.Fatalf("selected rid %d maps to %d groups", i, len(outs))
		}
		if res.Out.Int(0, int(outs[0])) != rel.Int(zcol, int(i)) {
			t.Fatalf("rid %d forward lineage points at wrong group", i)
		}
	}
}

func TestPlanJoinComposesBothSides(t *testing.T) {
	gids := datagen.Gids("gids", 20, 1)
	zipf := datagen.Zipf("zipf", 1.0, 500, 20, 2)
	plan := GroupByNode{
		Child: JoinNode{
			Left:     ScanNode{Table: gids},
			Right:    FilterNode{Child: ScanNode{Table: zipf}, Pred: expr.LtE(expr.C("v"), expr.F(40))},
			LeftKey:  "id",
			RightKey: "z",
		},
		// "id" exists on both sides, so the join qualifies it with the
		// relation name.
		Spec: ops.GroupBySpec{Keys: []string{"gids.id"}, Aggs: []ops.AggSpec{{Fn: ops.Count, Name: "c"}}},
	}
	res, err := RunPlan(plan, PlanOpts{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	zbw, err := res.Capture.BackwardIndex("zipf")
	if err != nil {
		t.Fatal(err)
	}
	gbw, err := res.Capture.BackwardIndex("gids")
	if err != nil {
		t.Fatal(err)
	}
	zcol := zipf.Schema.MustCol("z")
	vcol := zipf.Schema.MustCol("v")
	for o := 0; o < res.Out.N; o++ {
		key := res.Out.Int(0, o)
		// zipf lineage: matching z, passing filter.
		for _, r := range zbw.TraceOne(int32(o), nil) {
			if zipf.Int(zcol, int(r)) != key || zipf.Float(vcol, int(r)) >= 40 {
				t.Fatalf("group %d: bad zipf lineage rid %d", o, r)
			}
		}
		// gids lineage: the single matching dimension row (duplicated per join row).
		grids := gbw.TraceOne(int32(o), nil)
		for _, r := range grids {
			if gids.Int(0, int(r)) != key {
				t.Fatalf("group %d: bad gids lineage", o)
			}
		}
		if len(grids) != len(zbw.TraceOne(int32(o), nil)) {
			t.Fatalf("group %d: per-table lineage cardinalities differ", o)
		}
	}
}

func TestPlanProjectPreservesLineage(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 100, 5, 9)
	plan := ProjectNode{
		Child: FilterNode{Child: ScanNode{Table: rel}, Pred: expr.LtE(expr.C("v"), expr.F(50))},
		Cols:  []string{"z"},
	}
	res, err := RunPlan(plan, PlanOpts{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out.Schema) != 1 || res.Out.Schema[0].Name != "z" {
		t.Fatal("projection schema wrong")
	}
	bw, err := res.Capture.BackwardIndex("zipf")
	if err != nil {
		t.Fatal(err)
	}
	// Output row i's lineage must carry the same z value.
	for i := 0; i < res.Out.N; i++ {
		rids := bw.TraceOne(int32(i), nil)
		if len(rids) != 1 {
			t.Fatalf("projection row %d has %d lineage rids", i, len(rids))
		}
		if rel.Int(rel.Schema.MustCol("z"), int(rids[0])) != res.Out.Int(0, i) {
			t.Fatal("projection lineage mismatched")
		}
	}
}

func TestPlanUnionLineage(t *testing.T) {
	a := storage.NewEmpty("a", storage.Schema{{Name: "k", Type: storage.TInt}})
	for _, v := range []int{1, 2, 2} {
		a.AppendRow(v)
	}
	b := storage.NewEmpty("b", storage.Schema{{Name: "k", Type: storage.TInt}})
	for _, v := range []int{2, 3} {
		b.AppendRow(v)
	}
	plan := UnionNode{Left: ScanNode{Table: a}, Right: ScanNode{Table: b}, Attrs: []string{"k"}}
	res, err := RunPlan(plan, PlanOpts{Mode: ops.Inject})
	if err != nil {
		t.Fatal(err)
	}
	vals := append([]int64(nil), res.Out.Cols[0].Ints...)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if !reflect.DeepEqual(vals, []int64{1, 2, 3}) {
		t.Fatalf("union = %v", vals)
	}
	abw, err := res.Capture.BackwardIndex("a")
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < res.Out.N; o++ {
		if res.Out.Int(0, o) == 2 {
			rids := append([]int32(nil), abw.TraceOne(int32(o), nil)...)
			sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
			if !reflect.DeepEqual(rids, []int32{1, 2}) {
				t.Fatalf("lineage of 2 in a = %v", rids)
			}
		}
	}
}

func TestPlanNoCapture(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 100, 5, 9)
	plan := GroupByNode{
		Child: ScanNode{Table: rel},
		Spec:  ops.GroupBySpec{Keys: []string{"z"}, Aggs: []ops.AggSpec{{Fn: ops.Count, Name: "c"}}},
	}
	res, err := RunPlan(plan, PlanOpts{Mode: ops.None})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Capture.Relations()) != 0 {
		t.Fatal("capture disabled but indexes present")
	}
	if res.Out.N != 5 {
		t.Fatalf("groups = %d", res.Out.N)
	}
}

func TestPlanErrors(t *testing.T) {
	rel := datagen.Zipf("zipf", 1.0, 10, 2, 1)
	if _, err := RunPlan(ProjectNode{Child: ScanNode{Table: rel}, Cols: []string{"nope"}}, PlanOpts{}); err == nil {
		t.Error("bad projection should error")
	}
	if _, err := RunPlan(FilterNode{Child: ScanNode{Table: rel}, Pred: expr.C("z")}, PlanOpts{}); err == nil {
		t.Error("non-boolean filter should error")
	}
}
