package exec_test

import (
	"strings"
	"testing"

	"smoke/internal/exec"
	"smoke/internal/ops"
)

// TestSPJAProvenanceSemantics checks the Appendix E claim end-to-end: the
// aligned backward lists of an SPJA capture yield why-, which-, and
// how-provenance directly.
func TestSPJAProvenanceSemantics(t *testing.T) {
	db := testDB(t)
	res, err := exec.Run(db.Q3(), exec.Opts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	if err != nil {
		t.Fatal(err)
	}
	rels := []string{"customer", "orders", "lineitem"}
	ck := db.Customer.Schema.MustCol("c_custkey")
	ok := db.Orders.Schema.MustCol("o_custkey")
	okey := db.Orders.Schema.MustCol("o_orderkey")
	lk := db.Lineitem.Schema.MustCol("l_orderkey")
	checked := 0
	for o := 0; o < res.Out.N && checked < 25; o++ {
		ws, err := res.Capture.WhyProvenance(rels, int32(o))
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) != int(res.GroupCounts[o]) {
			t.Fatalf("group %d: %d witnesses, want %d", o, len(ws), res.GroupCounts[o])
		}
		// Every witness must be a genuine join row: customer-order and
		// order-lineitem keys agree within the witness.
		for _, w := range ws {
			crid, orid, lrid := w[0], w[1], w[2]
			if db.Customer.Int(ck, int(crid)) != db.Orders.Int(ok, int(orid)) {
				t.Fatalf("group %d: witness joins wrong customer", o)
			}
			if db.Orders.Int(okey, int(orid)) != db.Lineitem.Int(lk, int(lrid)) {
				t.Fatalf("group %d: witness joins wrong order", o)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no groups to check")
	}

	// How-provenance of a group renders one product term per witness.
	how, err := res.Capture.HowProvenance(rels, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(how, "customer[") || !strings.Contains(how, "*orders[") {
		t.Fatalf("how-provenance shape wrong: %q", how)
	}

	// Which-provenance sets are the distinct rids per relation.
	which, err := res.Capture.WhichProvenance(rels, 0)
	if err != nil {
		t.Fatal(err)
	}
	bw, _ := res.Capture.BackwardIndex("customer")
	if len(which["customer"]) > len(bw.TraceOne(0, nil)) {
		t.Fatal("which-provenance cannot exceed edge count")
	}
}
