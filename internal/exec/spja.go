// Package exec executes multi-operator plans with end-to-end lineage
// capture. Its centerpiece is the fused SPJA block executor (§3.3):
// selections and projections pipeline into scans, left-deep pk-fk join chains
// annotate their hash tables with base-relation rid chains, and the final
// aggregation emits a single set of lineage indexes connecting the query
// output directly to every base relation — no intermediate lineage is
// materialized (the propagation technique). RunPlan (plan.go) is the
// physical lowering of the logical plan layer (internal/plan): the
// optimizer's fusion rule decides which subtrees run on this block executor,
// and the non-fusible residue runs operator-at-a-time with index
// composition.
//
// The block executor is morsel-parallel (spja_parallel.go): join chains
// build serially, then the final pipeline — where all aggregation and
// capture work happens — runs over contiguous row-range partitions of the
// last table's scan, each with a partition-local aggregation and
// partition-local lineage, merged in partition order into the exact serial
// result. Workers <= 1 in Opts is the serial specialization.
package exec

import (
	"encoding/binary"
	"fmt"
	"math"

	"smoke/internal/expr"
	"smoke/internal/hashtab"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/pool"
	"smoke/internal/storage"
)

// TableRef is one base relation in an SPJA block with an optional pipelined
// filter.
type TableRef struct {
	Rel    *storage.Relation
	Filter expr.Expr
}

// JoinEdge joins the already-built prefix (tables 0..j) with table j+1:
// prefix-side key LeftTable.LeftCol equals table j+1's RightCol. All
// evaluation-path joins are pk-fk with the key unique on the prefix side, but
// the executor tolerates duplicates.
type JoinEdge struct {
	LeftTable int
	LeftCol   string
	RightCol  string
}

// KeyRef is a group-by key column qualified by its table index.
type KeyRef struct {
	Table int
	Col   string
}

// AggRef is one aggregate of the final aggregation. Arg (and the optional
// Filter, which models SQL's CASE WHEN ... THEN 1 counting idiom) are
// evaluated against the rows of a single table.
type AggRef struct {
	Fn     ops.AggFn
	Table  int
	Arg    expr.Expr
	Filter expr.Expr
	Name   string
}

// Spec is a select-project-join-aggregate block.
type Spec struct {
	Tables []TableRef
	Joins  []JoinEdge
	Keys   []KeyRef
	Aggs   []AggRef
}

// Opts configures SPJA instrumentation.
type Opts struct {
	Mode ops.CaptureMode
	Dirs ops.Directions
	// TableDirs overrides Dirs per table index (input-relation and direction
	// pruning, §4.1); a zero Directions entry disables capture for that table.
	TableDirs []ops.Directions
	// Params binds expression parameters in filters and aggregates.
	Params expr.Params
	// Workers > 1 runs the final pipeline morsel-parallel: the join chain
	// builds serially (its hash tables are then probed read-only), the last
	// table's scan splits into contiguous partitions each feeding a
	// partition-local aggregation with partition-local capture, and the
	// merge (spja_parallel.go) reproduces the serial output and lineage
	// exactly. Workers <= 1 is the serial specialization.
	Workers int
	// Pool schedules the partition kernels; nil runs them inline.
	Pool *pool.Pool
	// Compress encodes the captured indexes into their adaptive compressed
	// forms after capture (serial: the whole capture encodes post-run;
	// parallel: each partition encodes its local backward lists and the merge
	// concatenates encoded lists without re-encoding). Backward/Forward and
	// consuming queries read the encoded indexes in place.
	Compress bool
}

func (o Opts) dirsFor(t int) ops.Directions {
	if o.Mode == ops.None {
		return 0
	}
	if o.TableDirs != nil {
		return o.TableDirs[t]
	}
	return o.Dirs
}

// Result is the output of an SPJA block: the aggregated relation plus the
// end-to-end capture (backward and forward indexes per base relation).
type Result struct {
	Out         *storage.Relation
	Capture     *lineage.Capture
	GroupCounts []int64
}

// chainLevel holds the lineage-annotated hash table of one pipeline breaker:
// every entry maps a join-key value to the chains (tuples of base rids) that
// carry it. Chains are stored column-major: rids[t][c] is the rid of table t
// in chain c. Duplicate keys form linked lists through next.
type chainLevel struct {
	ht     *hashtab.Map // key -> head chain index
	next   []int32      // chain index -> next chain with same key (-1 ends)
	rids   [][]lineage.Rid
	tables []int // which table indexes the chains cover
}

func newChainLevel(tables []int, capacityHint int) *chainLevel {
	l := &chainLevel{ht: hashtab.New(capacityHint), tables: tables}
	l.rids = make([][]lineage.Rid, len(tables))
	return l
}

func (l *chainLevel) addChain(key int64, chain []lineage.Rid) {
	idx := int32(len(l.next))
	for t := range l.rids {
		l.rids[t] = append(l.rids[t], chain[t])
	}
	head, inserted := l.ht.GetOrPut(key, idx)
	if inserted {
		l.next = append(l.next, -1)
	} else {
		// Prepend to the duplicate list.
		l.next = append(l.next, head)
		l.ht.Put(key, idx)
	}
}

// pipeline is a compiled SPJA block: filters, join key columns, and (after
// buildChains) the lineage-annotated hash-table chain covering all tables but
// the last.
type pipeline struct {
	spec         Spec
	filters      []expr.Pred
	leftKeyCols  [][]int64
	rightKeyCols [][]int64
	level        *chainLevel
}

// compilePipeline validates the spec and compiles filters and join keys.
func compilePipeline(spec Spec, params expr.Params) (*pipeline, error) {
	k := len(spec.Tables)
	if k == 0 {
		return nil, fmt.Errorf("exec: SPJA block needs at least one table")
	}
	if len(spec.Joins) != k-1 {
		return nil, fmt.Errorf("exec: %d tables need %d join edges, got %d", k, k-1, len(spec.Joins))
	}
	if len(spec.Keys) == 0 {
		return nil, fmt.Errorf("exec: SPJA block needs group-by keys")
	}
	p := &pipeline{spec: spec}
	p.filters = make([]expr.Pred, k)
	for i, tr := range spec.Tables {
		if tr.Filter != nil {
			f, err := expr.CompilePred(tr.Filter, tr.Rel, params)
			if err != nil {
				return nil, fmt.Errorf("exec: table %d filter: %w", i, err)
			}
			p.filters[i] = f
		}
	}
	p.leftKeyCols = make([][]int64, k-1)
	p.rightKeyCols = make([][]int64, k-1)
	for j, je := range spec.Joins {
		if je.LeftTable < 0 || je.LeftTable > j {
			return nil, fmt.Errorf("exec: join %d references table %d outside prefix", j, je.LeftTable)
		}
		lrel := spec.Tables[je.LeftTable].Rel
		c := lrel.Schema.Col(je.LeftCol)
		if c < 0 || lrel.Schema[c].Type != storage.TInt {
			return nil, fmt.Errorf("exec: join %d left key %s.%s missing or non-int", j, lrel.Name, je.LeftCol)
		}
		p.leftKeyCols[j] = lrel.Cols[c].Ints
		rrel := spec.Tables[j+1].Rel
		c = rrel.Schema.Col(je.RightCol)
		if c < 0 || rrel.Schema[c].Type != storage.TInt {
			return nil, fmt.Errorf("exec: join %d right key %s.%s missing or non-int", j, rrel.Name, je.RightCol)
		}
		p.rightKeyCols[j] = rrel.Cols[c].Ints
	}
	return p, nil
}

// buildChains runs pipelines P0..Pk-2: each scans one table with its filter
// inlined and builds the next lineage-annotated hash table.
func (p *pipeline) buildChains() {
	k := len(p.spec.Tables)
	if k == 1 {
		return
	}
	rel0 := p.spec.Tables[0].Rel
	p.level = newChainLevel([]int{0}, rel0.N)
	key0 := p.leftKeyCols[0]
	chain := make([]lineage.Rid, 1)
	for rid := int32(0); rid < int32(rel0.N); rid++ {
		if p.filters[0] != nil && !p.filters[0](rid) {
			continue
		}
		chain[0] = rid
		p.level.addChain(key0[rid], chain)
	}
	for j := 1; j <= k-2; j++ {
		rel := p.spec.Tables[j].Rel
		prev := p.level
		tables := append(append([]int(nil), prev.tables...), j)
		next := newChainLevel(tables, len(prev.next))
		probeKey := p.rightKeyCols[j-1]
		ltPos := -1
		for pos, t := range tables {
			if t == p.spec.Joins[j].LeftTable {
				ltPos = pos
			}
		}
		nextKey := p.leftKeyCols[j]
		buf := make([]lineage.Rid, len(tables))
		for rid := int32(0); rid < int32(rel.N); rid++ {
			if p.filters[j] != nil && !p.filters[j](rid) {
				continue
			}
			head, ok := prev.ht.Get(probeKey[rid])
			if !ok {
				continue
			}
			for c := head; c >= 0; c = prev.next[c] {
				for pos := range prev.tables {
					buf[pos] = prev.rids[pos][c]
				}
				buf[len(tables)-1] = rid
				next.addChain(nextKey[buf[ltPos]], buf)
			}
		}
		p.level = next
	}
}

// forEachLast runs the final pipeline over the whole last table.
func (p *pipeline) forEachLast(visit func(chain []lineage.Rid, rid int32)) {
	p.forEachLastRange(0, p.spec.Tables[len(p.spec.Tables)-1].Rel.N, visit)
}

// forEachLastRange is the final-pipeline range kernel: scan rids [lo, hi) of
// the last table with its filter inlined, probe the (read-only) chain, and
// visit every joined row (as base-rid chains). Concurrent calls over
// disjoint ranges are safe — the kernel only reads shared state and each
// call owns its chain buffer.
func (p *pipeline) forEachLastRange(lo, hi int, visit func(chain []lineage.Rid, rid int32)) {
	k := len(p.spec.Tables)
	last := k - 1
	if k == 1 {
		chain := make([]lineage.Rid, 1)
		for rid := int32(lo); rid < int32(hi); rid++ {
			if p.filters[last] != nil && !p.filters[last](rid) {
				continue
			}
			chain[0] = rid
			visit(chain, rid)
		}
		return
	}
	probeKey := p.rightKeyCols[last-1]
	buf := make([]lineage.Rid, k)
	for rid := int32(lo); rid < int32(hi); rid++ {
		if p.filters[last] != nil && !p.filters[last](rid) {
			continue
		}
		head, ok := p.level.ht.Get(probeKey[rid])
		if !ok {
			continue
		}
		for c := head; c >= 0; c = p.level.next[c] {
			for pos, t := range p.level.tables {
				buf[t] = p.level.rids[pos][c]
			}
			buf[last] = rid
			visit(buf, rid)
		}
	}
}

// Run executes the SPJA block: chain build serial, final pipeline and
// aggregation morsel-parallel when opts.Workers > 1.
func Run(spec Spec, opts Opts) (Result, error) {
	pipe, err := compilePipeline(spec, opts.Params)
	if err != nil {
		return Result{}, err
	}
	pipe.buildChains()

	if opts.Workers > 1 && spec.Tables[len(spec.Tables)-1].Rel.N > 1 {
		return runParallel(pipe, spec, opts)
	}

	agg, err := newSPJAAgg(spec, opts)
	if err != nil {
		return Result{}, err
	}
	processLast := pipe.forEachLast

	inject := opts.Mode == ops.Inject
	processLast(func(chain []lineage.Rid, rid int32) {
		slot := agg.lookup(chain)
		agg.update(slot, chain)
		if inject {
			agg.captureRow(slot, chain)
		}
	})

	res := Result{Out: agg.materialize(), GroupCounts: agg.counts, Capture: lineage.NewCapture()}

	switch opts.Mode {
	case ops.Inject:
		agg.emitInject(res.Capture)
	case ops.Defer:
		// Rerun the final pipeline, probing the (pinned) hash tables and the
		// aggregation table to recover each chain's group, and fill
		// exactly-sized backward indexes.
		agg.prepareDefer()
		processLast(func(chain []lineage.Rid, rid int32) {
			slot := agg.probe(chain)
			agg.captureRow(slot, chain)
		})
		agg.emitInject(res.Capture)
	}
	if opts.Compress && opts.Mode != ops.None {
		res.Capture.EncodeAll()
	}
	return res, nil
}

// spjaAgg is the instrumented final aggregation of an SPJA block.
type spjaAgg struct {
	spec *Spec
	opts Opts

	// group key compilation
	singleIntKey []int64 // fast path: one TInt key column
	keyTable     int
	keyCols      []KeyRef
	buf          []byte

	ht    *hashtab.Map
	strHT map[string]int32

	nGroups  int32
	repChain [][]lineage.Rid // per group: representative chain (for key output)
	counts   []int64

	accs []spjaAcc

	// capture state: per table, per group rid lists (Inject) and forward
	// indexes.
	tableDirs []ops.Directions
	groupRids [][][]lineage.Rid // [table][group][]rid
	fwLast    []lineage.Rid     // last table: one-to-one
	fwMany    []*lineage.RidIndex
	deferBW   []*lineage.RidIndex // Defer: exact-sized backward indexes
	// Partition-local aggregations collect non-last forward edges as
	// (rid, local slot) pairs instead of filling fwMany — a relation-sized
	// index per partition would multiply memory by the worker count; the
	// merge builds one exactly-sized index from the pairs.
	collectFW        bool
	fwPairR, fwPairS [][]lineage.Rid // [table] parallel pair arrays
}

type spjaAcc struct {
	fn     ops.AggFn
	table  int
	num    expr.NumFn
	filter expr.Pred
	sums   []float64
	mins   []float64
	maxs   []float64
	cnts   []int64 // per-acc count (filtered aggregates can't share counts)
}

func newSPJAAgg(spec Spec, opts Opts) (*spjaAgg, error) {
	return newSPJAAggShared(spec, opts, nil, false)
}

// newSPJAAggShared is the partition-local constructor of the parallel path
// (partitionLocal true): all partitions write last-table forward entries
// into one shared, rid-addressed array (their rid ranges are disjoint)
// instead of each allocating and -1-filling its own, and non-last forward
// edges are collected as pairs rather than relation-sized per-partition
// indexes. Serial newSPJAAgg keeps the direct-index form.
func newSPJAAggShared(spec Spec, opts Opts, sharedFwLast []lineage.Rid, partitionLocal bool) (*spjaAgg, error) {
	a := &spjaAgg{spec: &spec, opts: opts, keyCols: spec.Keys, collectFW: partitionLocal}
	if len(spec.Keys) == 1 {
		kr := spec.Keys[0]
		rel := spec.Tables[kr.Table].Rel
		c := rel.Schema.Col(kr.Col)
		if c < 0 {
			return nil, fmt.Errorf("exec: unknown key column %s", kr.Col)
		}
		if rel.Schema[c].Type == storage.TInt {
			a.singleIntKey = rel.Cols[c].Ints
			a.keyTable = kr.Table
			a.ht = hashtab.New(64)
		}
	}
	if a.ht == nil {
		for _, kr := range spec.Keys {
			rel := spec.Tables[kr.Table].Rel
			if rel.Schema.Col(kr.Col) < 0 {
				return nil, fmt.Errorf("exec: unknown key column %s in %s", kr.Col, rel.Name)
			}
		}
		a.strHT = make(map[string]int32, 64)
	}
	for _, ar := range spec.Aggs {
		if ar.Table < 0 || ar.Table >= len(spec.Tables) {
			return nil, fmt.Errorf("exec: aggregate %q references table %d", ar.Name, ar.Table)
		}
		rel := spec.Tables[ar.Table].Rel
		acc := spjaAcc{fn: ar.Fn, table: ar.Table}
		if ar.Fn != ops.Count {
			if ar.Arg == nil {
				return nil, fmt.Errorf("exec: aggregate %q needs an argument", ar.Name)
			}
			f, err := expr.CompileNum(ar.Arg, rel, opts.Params)
			if err != nil {
				return nil, err
			}
			acc.num = f
		}
		if ar.Filter != nil {
			p, err := expr.CompilePred(ar.Filter, rel, opts.Params)
			if err != nil {
				return nil, err
			}
			acc.filter = p
		}
		a.accs = append(a.accs, acc)
	}
	// Capture plumbing.
	k := len(spec.Tables)
	a.tableDirs = make([]ops.Directions, k)
	for t := 0; t < k; t++ {
		a.tableDirs[t] = opts.dirsFor(t)
	}
	a.groupRids = make([][][]lineage.Rid, k)
	a.fwMany = make([]*lineage.RidIndex, k)
	if a.collectFW {
		a.fwPairR = make([][]lineage.Rid, k)
		a.fwPairS = make([][]lineage.Rid, k)
	}
	for t := 0; t < k; t++ {
		d := a.tableDirs[t]
		if d.Forward() {
			if t == k-1 {
				if sharedFwLast != nil {
					a.fwLast = sharedFwLast
				} else {
					a.fwLast = make([]lineage.Rid, spec.Tables[t].Rel.N)
					for i := range a.fwLast {
						a.fwLast[i] = -1
					}
				}
			} else if a.collectFW {
				// pair arrays grow on demand
			} else {
				a.fwMany[t] = lineage.NewRidIndex(spec.Tables[t].Rel.N)
			}
		}
	}
	return a, nil
}

// encodeKey serializes the (composite or non-int) group key of a chain.
func (a *spjaAgg) encodeKey(chain []lineage.Rid) {
	a.buf = a.buf[:0]
	for _, kr := range a.keyCols {
		rel := a.spec.Tables[kr.Table].Rel
		c := rel.Schema.MustCol(kr.Col)
		rid := chain[kr.Table]
		switch rel.Schema[c].Type {
		case storage.TInt:
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], uint64(rel.Cols[c].Ints[rid]))
			a.buf = append(a.buf, tmp[:]...)
		case storage.TFloat:
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(rel.Cols[c].Floats[rid]))
			a.buf = append(a.buf, tmp[:]...)
		case storage.TString:
			a.buf = append(a.buf, rel.Cols[c].Strs[rid]...)
			a.buf = append(a.buf, 0)
		}
	}
}

func (a *spjaAgg) lookup(chain []lineage.Rid) int32 {
	if a.singleIntKey != nil {
		slot, inserted := a.ht.GetOrPut(a.singleIntKey[chain[a.keyTable]], a.nGroups)
		if inserted {
			a.newGroup(chain)
		}
		return slot
	}
	a.encodeKey(chain)
	if slot, ok := a.strHT[string(a.buf)]; ok {
		return slot
	}
	slot := a.nGroups
	a.strHT[string(a.buf)] = slot
	a.newGroup(chain)
	return slot
}

func (a *spjaAgg) probe(chain []lineage.Rid) int32 {
	if a.singleIntKey != nil {
		slot, _ := a.ht.Get(a.singleIntKey[chain[a.keyTable]])
		return slot
	}
	a.encodeKey(chain)
	return a.strHT[string(a.buf)]
}

func (a *spjaAgg) newGroup(chain []lineage.Rid) {
	a.nGroups++
	a.repChain = append(a.repChain, append([]lineage.Rid(nil), chain...))
	a.counts = append(a.counts, 0)
	for i := range a.accs {
		acc := &a.accs[i]
		switch acc.fn {
		case ops.Sum, ops.Avg:
			acc.sums = append(acc.sums, 0)
			acc.cnts = append(acc.cnts, 0)
		case ops.Min:
			acc.mins = append(acc.mins, math.Inf(1))
		case ops.Max:
			acc.maxs = append(acc.maxs, math.Inf(-1))
		case ops.Count:
			acc.cnts = append(acc.cnts, 0)
		}
	}
	for t := range a.groupRids {
		if a.tableDirs[t].Backward() && a.opts.Mode == ops.Inject {
			a.groupRids[t] = append(a.groupRids[t], nil)
		}
	}
}

func (a *spjaAgg) update(slot int32, chain []lineage.Rid) {
	a.counts[slot]++
	for i := range a.accs {
		acc := &a.accs[i]
		rid := chain[acc.table]
		if acc.filter != nil && !acc.filter(rid) {
			continue
		}
		switch acc.fn {
		case ops.Count:
			acc.cnts[slot]++
		case ops.Sum:
			acc.sums[slot] += acc.num(rid)
			acc.cnts[slot]++
		case ops.Avg:
			acc.sums[slot] += acc.num(rid)
			acc.cnts[slot]++
		case ops.Min:
			if v := acc.num(rid); v < acc.mins[slot] {
				acc.mins[slot] = v
			}
		case ops.Max:
			if v := acc.num(rid); v > acc.maxs[slot] {
				acc.maxs[slot] = v
			}
		}
	}
}

// mergeFrom folds partition-local group s of o into global group g (all
// SPJA aggregates are algebraic, so the merge is exact up to float addition
// order).
func (a *spjaAcc) mergeFrom(g int32, o *spjaAcc, s int32) {
	switch a.fn {
	case ops.Count:
		a.cnts[g] += o.cnts[s]
	case ops.Sum, ops.Avg:
		a.sums[g] += o.sums[s]
		a.cnts[g] += o.cnts[s]
	case ops.Min:
		if o.mins[s] < a.mins[g] {
			a.mins[g] = o.mins[s]
		}
	case ops.Max:
		if o.maxs[s] > a.maxs[g] {
			a.maxs[g] = o.maxs[s]
		}
	}
}

// captureRow writes one output row's lineage edges for every captured table.
func (a *spjaAgg) captureRow(slot int32, chain []lineage.Rid) {
	last := len(a.spec.Tables) - 1
	for t := range a.spec.Tables {
		d := a.tableDirs[t]
		if d == 0 {
			continue
		}
		rid := chain[t]
		if d.Backward() {
			if a.deferBW != nil {
				a.deferBW[t].AppendFast(int(slot), rid)
			} else {
				a.groupRids[t][slot] = lineage.AppendRid(a.groupRids[t][slot], rid)
			}
		}
		if d.Forward() {
			if t == last {
				a.fwLast[rid] = slot
			} else if a.collectFW {
				a.fwPairR[t] = append(a.fwPairR[t], rid)
				a.fwPairS[t] = append(a.fwPairS[t], slot)
			} else {
				a.fwMany[t].Append(int(rid), slot)
			}
		}
	}
}

// prepareDefer allocates exact-sized backward indexes: each table's per-group
// list length equals the group's row count (every join row contributes one
// rid per table).
func (a *spjaAgg) prepareDefer() {
	k := len(a.spec.Tables)
	a.deferBW = make([]*lineage.RidIndex, k)
	c32 := make([]int32, len(a.counts))
	for i, c := range a.counts {
		c32[i] = int32(c)
	}
	for t := 0; t < k; t++ {
		if a.tableDirs[t].Backward() {
			a.deferBW[t] = lineage.NewRidIndexWithCounts(c32)
		}
	}
}

// emitInject moves the accumulated indexes into the capture container,
// reusing the per-group rid lists directly (P4).
func (a *spjaAgg) emitInject(cap_ *lineage.Capture) {
	last := len(a.spec.Tables) - 1
	for t := range a.spec.Tables {
		d := a.tableDirs[t]
		name := a.spec.Tables[t].Rel.Name
		if d.Backward() {
			var ix *lineage.RidIndex
			if a.deferBW != nil && a.deferBW[t] != nil {
				ix = a.deferBW[t]
			} else {
				ix = lineage.NewRidIndex(int(a.nGroups))
				for slot, l := range a.groupRids[t] {
					ix.SetList(slot, l)
				}
			}
			cap_.SetBackward(name, lineage.NewOneToMany(ix))
		}
		if d.Forward() {
			if t == last {
				cap_.SetForward(name, lineage.NewOneToOne(a.fwLast))
			} else {
				cap_.SetForward(name, lineage.NewOneToMany(a.fwMany[t]))
			}
		}
	}
}

// materialize builds the output relation: key columns then aggregates.
func (a *spjaAgg) materialize() *storage.Relation {
	g := int(a.nGroups)
	schema := make(storage.Schema, 0, len(a.keyCols)+len(a.accs))
	for _, kr := range a.keyCols {
		rel := a.spec.Tables[kr.Table].Rel
		c := rel.Schema.MustCol(kr.Col)
		schema = append(schema, storage.Field{Name: kr.Col, Type: rel.Schema[c].Type})
	}
	for i, ar := range a.spec.Aggs {
		name := ar.Name
		if name == "" {
			name = fmt.Sprintf("%s_%d", ar.Fn, i)
		}
		ty := storage.TFloat
		if ar.Fn == ops.Count {
			ty = storage.TInt
		}
		schema = append(schema, storage.Field{Name: name, Type: ty})
	}
	out := storage.NewRelation("spja", schema, g)
	for ki, kr := range a.keyCols {
		rel := a.spec.Tables[kr.Table].Rel
		c := rel.Schema.MustCol(kr.Col)
		switch rel.Schema[c].Type {
		case storage.TInt:
			src, dst := rel.Cols[c].Ints, out.Cols[ki].Ints
			for slot, chain := range a.repChain {
				dst[slot] = src[chain[kr.Table]]
			}
		case storage.TFloat:
			src, dst := rel.Cols[c].Floats, out.Cols[ki].Floats
			for slot, chain := range a.repChain {
				dst[slot] = src[chain[kr.Table]]
			}
		case storage.TString:
			src, dst := rel.Cols[c].Strs, out.Cols[ki].Strs
			for slot, chain := range a.repChain {
				dst[slot] = src[chain[kr.Table]]
			}
		}
	}
	for i := range a.accs {
		acc := &a.accs[i]
		col := len(a.keyCols) + i
		switch acc.fn {
		case ops.Count:
			copy(out.Cols[col].Ints, acc.cnts)
		case ops.Sum:
			copy(out.Cols[col].Floats, acc.sums)
		case ops.Avg:
			dst := out.Cols[col].Floats
			for slot := 0; slot < g; slot++ {
				if acc.cnts[slot] > 0 {
					dst[slot] = acc.sums[slot] / float64(acc.cnts[slot])
				}
			}
		case ops.Min:
			copy(out.Cols[col].Floats, acc.mins)
		case ops.Max:
			copy(out.Cols[col].Floats, acc.maxs)
		}
	}
	return out
}
