package exec_test

import (
	"reflect"
	"sort"
	"testing"

	"smoke/internal/exec"
	"smoke/internal/ops"
)

func TestRunLogicIdxMatchesSmokeCapture(t *testing.T) {
	db := testDB(t)
	for name, spec := range db.Queries() {
		smoke, err := exec.Run(spec, exec.Opts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		logic, annotated, err := exec.RunLogicIdx(spec, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if logic.Out.N != smoke.Out.N {
			t.Fatalf("%s: output cardinality differs", name)
		}
		// The annotated relation is denormalized: one row per join result.
		total := 0
		for _, c := range smoke.GroupCounts {
			total += int(c)
		}
		if annotated.N != total {
			t.Fatalf("%s: annotated N = %d, want %d", name, annotated.N, total)
		}
		// Same end-to-end backward indexes (groups may be ordered
		// identically because both run the same pipelines).
		for _, tbl := range spec.Tables {
			sb, err1 := smoke.Capture.BackwardIndex(tbl.Rel.Name)
			lb, err2 := logic.Capture.BackwardIndex(tbl.Rel.Name)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: missing backward index for %s", name, tbl.Rel.Name)
			}
			for o := 0; o < smoke.Out.N; o++ {
				a := append([]int32(nil), sb.TraceOne(int32(o), nil)...)
				b := append([]int32(nil), lb.TraceOne(int32(o), nil)...)
				sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
				sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s: %s backward differs at group %d", name, tbl.Rel.Name, o)
				}
			}
		}
	}
}
