package exec_test

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"smoke/internal/exec"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/pool"
	"smoke/internal/storage"
	"smoke/internal/tpch"
)

// sameIndex asserts two lineage indexes are element-for-element identical.
func sameIndex(t *testing.T, what string, got, want *lineage.Index) {
	t.Helper()
	if got.Kind != want.Kind {
		t.Fatalf("%s: kind %v, want %v", what, got.Kind, want.Kind)
	}
	if got.Kind == lineage.OneToOne {
		if !reflect.DeepEqual(got.Arr, want.Arr) {
			t.Fatalf("%s: rid arrays differ (len %d vs %d)", what, len(got.Arr), len(want.Arr))
		}
		return
	}
	if got.Many.Len() != want.Many.Len() {
		t.Fatalf("%s: %d entries, want %d", what, got.Many.Len(), want.Many.Len())
	}
	for i := 0; i < want.Many.Len(); i++ {
		g, w := got.Many.List(i), want.Many.List(i)
		if len(g) == 0 && len(w) == 0 {
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s[%d]: %v, want %v", what, i, g, w)
		}
	}
}

func sameCapture(t *testing.T, tag string, got, want *lineage.Capture) {
	t.Helper()
	gr, wr := got.Relations(), want.Relations()
	if len(gr) != len(wr) {
		t.Fatalf("%s: captured relations %v, want %v", tag, gr, wr)
	}
	for _, rel := range wr {
		if want.HasBackward(rel) != got.HasBackward(rel) || want.HasForward(rel) != got.HasForward(rel) {
			t.Fatalf("%s: direction presence differs for %s", tag, rel)
		}
		if want.HasBackward(rel) {
			wix, _ := want.BackwardIndex(rel)
			gix, _ := got.BackwardIndex(rel)
			sameIndex(t, tag+" bw "+rel, gix, wix)
		}
		if want.HasForward(rel) {
			wix, _ := want.ForwardIndex(rel)
			gix, _ := got.ForwardIndex(rel)
			sameIndex(t, tag+" fw "+rel, gix, wix)
		}
	}
}

// TestSPJAParallelMatchesSerial runs every TPC-H evaluation query under all
// capture modes and both directions at several worker counts and requires
// the output relation, group counts, and every backward/forward index to be
// element-for-element identical to the serial run.
func TestSPJAParallelMatchesSerial(t *testing.T) {
	db := tpch.Generate(0.002, 42)
	p := pool.New(4)
	for name, spec := range db.Queries() {
		for _, mode := range []ops.CaptureMode{ops.None, ops.Inject, ops.Defer} {
			for _, dirs := range []ops.Directions{ops.CaptureBackward, ops.CaptureForward, ops.CaptureBoth} {
				serial, err := exec.Run(spec, exec.Opts{Mode: mode, Dirs: dirs})
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 4, 5} {
					par, err := exec.Run(spec, exec.Opts{Mode: mode, Dirs: dirs, Workers: workers, Pool: p})
					if err != nil {
						t.Fatal(err)
					}
					tag := fmt.Sprintf("%s mode=%v dirs=%b w=%d", name, mode, dirs, workers)
					if par.Out.N != serial.Out.N {
						t.Fatalf("%s: %d groups, want %d", tag, par.Out.N, serial.Out.N)
					}
					for c, f := range serial.Out.Schema {
						if f.Type == storage.TFloat {
							// Partial sums accumulate per partition, so float
							// aggregates can differ from serial in the last
							// ulp (addition order); lineage never does.
							for i, w := range serial.Out.Cols[c].Floats {
								g := par.Out.Cols[c].Floats[i]
								if diff := math.Abs(g - w); diff > 1e-9*(1+math.Abs(w)) {
									t.Fatalf("%s: %s[%d] = %v, want %v", tag, f.Name, i, g, w)
								}
							}
							continue
						}
						if !reflect.DeepEqual(par.Out.Cols[c], serial.Out.Cols[c]) {
							t.Fatalf("%s: output column %s differs", tag, f.Name)
						}
					}
					if !reflect.DeepEqual(par.GroupCounts, serial.GroupCounts) {
						t.Fatalf("%s: group counts differ", tag)
					}
					if mode != ops.None {
						sameCapture(t, tag, par.Capture, serial.Capture)
					}
				}
			}
		}
	}
}

// TestSPJAParallelTableDirsPruning checks the §4.1 pruning knobs survive the
// parallel path: per-table direction overrides must prune the same indexes.
func TestSPJAParallelTableDirsPruning(t *testing.T) {
	db := tpch.Generate(0.002, 42)
	p := pool.New(4)
	spec := db.Q3()
	dirs := make([]ops.Directions, len(spec.Tables))
	dirs[len(dirs)-1] = ops.CaptureBackward // only the fact table, backward only
	serial, err := exec.Run(spec, exec.Opts{Mode: ops.Inject, TableDirs: dirs})
	if err != nil {
		t.Fatal(err)
	}
	par, err := exec.Run(spec, exec.Opts{Mode: ops.Inject, TableDirs: dirs, Workers: 4, Pool: p})
	if err != nil {
		t.Fatal(err)
	}
	sameCapture(t, "q3 pruned", par.Capture, serial.Capture)
	if len(par.Capture.Relations()) != 1 {
		t.Fatalf("pruning failed: captured %v", par.Capture.Relations())
	}
}
