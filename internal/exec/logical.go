package exec

import (
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// RunLogicIdx executes an SPJA block with the Logic-Idx baseline strategy
// (§5, Appendix B): the Perm aggregation rewrite joins the aggregation output
// back with the join result, materializing a denormalized annotated relation
// (the aggregation's columns duplicated once per contributing join row, plus
// one rid annotation column per base table), and a final scan of that
// relation builds the same end-to-end indexes Smoke emits.
//
// Per Appendix B the rewrite is tuned: the chain hash tables and the
// aggregation hash table are reused for the re-join instead of being rebuilt,
// so the measured overhead isolates what is intrinsic to the logical
// approach — denormalized materialization and the separate indexing pass.
func RunLogicIdx(spec Spec, params map[string]any) (Result, *storage.Relation, error) {
	pipe, err := compilePipeline(spec, params)
	if err != nil {
		return Result{}, nil, err
	}
	pipe.buildChains()

	agg, err := newSPJAAgg(spec, Opts{Mode: ops.None, Params: params})
	if err != nil {
		return Result{}, nil, err
	}
	pipe.forEachLast(func(chain []lineage.Rid, rid int32) {
		slot := agg.lookup(chain)
		agg.update(slot, chain)
	})
	out := agg.materialize()

	// Re-join: second pass over the probe pipeline, reusing the pinned hash
	// tables, annotating every join row with its output rid and base rids.
	k := len(spec.Tables)
	oids := make([]lineage.Rid, 0, 1024)
	ridCols := make([][]lineage.Rid, k)
	pipe.forEachLast(func(chain []lineage.Rid, rid int32) {
		slot := agg.probe(chain)
		oids = append(oids, slot)
		for t := 0; t < k; t++ {
			ridCols[t] = append(ridCols[t], chain[t])
		}
	})

	// Materialize the denormalized annotated relation O'.
	annotated := out.Gather("annotated", oids)
	annotated.Schema = annotated.Schema.Clone()
	oidCol := storage.Column{Ints: make([]int64, len(oids))}
	for i, o := range oids {
		oidCol.Ints[i] = int64(o)
	}
	annotated.Schema = append(annotated.Schema, storage.Field{Name: "oid", Type: storage.TInt})
	annotated.Cols = append(annotated.Cols, oidCol)
	for t := 0; t < k; t++ {
		col := storage.Column{Ints: make([]int64, len(oids))}
		for i, r := range ridCols[t] {
			col.Ints[i] = int64(r)
		}
		annotated.Schema = append(annotated.Schema, storage.Field{Name: spec.Tables[t].Rel.Name + "_rid", Type: storage.TInt})
		annotated.Cols = append(annotated.Cols, col)
	}

	// Index-building scan over the annotated relation: same end-to-end
	// indexes as Smoke's capture.
	cap_ := lineage.NewCapture()
	last := k - 1
	for t := 0; t < k; t++ {
		name := spec.Tables[t].Rel.Name
		bw := lineage.NewRidIndex(out.N)
		for i, o := range oids {
			bw.Append(int(o), ridCols[t][i])
		}
		cap_.SetBackward(name, lineage.NewOneToMany(bw))
		if t == last {
			fw := make([]lineage.Rid, spec.Tables[t].Rel.N)
			for i := range fw {
				fw[i] = -1
			}
			for i, o := range oids {
				fw[ridCols[t][i]] = o
			}
			cap_.SetForward(name, lineage.NewOneToOne(fw))
		} else {
			fw := lineage.NewRidIndex(spec.Tables[t].Rel.N)
			for i, o := range oids {
				fw.Append(int(ridCols[t][i]), o)
			}
			cap_.SetForward(name, lineage.NewOneToMany(fw))
		}
	}
	return Result{Out: out, Capture: cap_, GroupCounts: agg.counts}, annotated, nil
}
