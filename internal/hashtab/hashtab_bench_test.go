package hashtab

import "testing"

// Ablation: the custom open-addressing table vs Go's built-in map on the
// group-by build-loop access pattern (GetOrPut with mostly-hits).

func BenchmarkGetOrPutCustom(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := New(64)
		next := int32(0)
		for j := 0; j < 100000; j++ {
			k := int64(j % 1000)
			if _, inserted := m.GetOrPut(k, next); inserted {
				next++
			}
		}
	}
}

func BenchmarkGetOrPutStdlibMap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := make(map[int64]int32, 64)
		next := int32(0)
		for j := 0; j < 100000; j++ {
			k := int64(j % 1000)
			if _, ok := m[k]; !ok {
				m[k] = next
				next++
			}
		}
	}
}

// Batched vs per-row probing on the same key stream: GetOrPutBatch amortizes
// the call and hash loop over whole morsel batches.

func BenchmarkGetOrPutBatch(b *testing.B) {
	b.ReportAllocs()
	const batch = 512
	keys := make([]int64, batch)
	slots := make([]int32, batch)
	for i := 0; i < b.N; i++ {
		m := New(64)
		next := int32(0)
		for base := 0; base < 100000; base += batch {
			for j := range keys {
				keys[j] = int64((base + j) % 1000)
			}
			m.GetOrPutBatch(keys, slots, func(j int, key int64) int32 {
				v := next
				next++
				return v
			})
		}
	}
}

func BenchmarkGetBatchAllHits(b *testing.B) {
	b.ReportAllocs()
	const batch = 512
	m := New(1000)
	for k := int64(0); k < 1000; k++ {
		m.Put(k, int32(k))
	}
	keys := make([]int64, batch)
	slots := make([]int32, batch)
	for j := range keys {
		keys[j] = int64(j % 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for reps := 0; reps < 100000/batch; reps++ {
			m.GetBatch(keys, slots)
		}
	}
}
