package hashtab

import "testing"

// Ablation: the custom open-addressing table vs Go's built-in map on the
// group-by build-loop access pattern (GetOrPut with mostly-hits).

func BenchmarkGetOrPutCustom(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := New(64)
		next := int32(0)
		for j := 0; j < 100000; j++ {
			k := int64(j % 1000)
			if _, inserted := m.GetOrPut(k, next); inserted {
				next++
			}
		}
	}
}

func BenchmarkGetOrPutStdlibMap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := make(map[int64]int32, 64)
		next := int32(0)
		for j := 0; j < 100000; j++ {
			k := int64(j % 1000)
			if _, ok := m[k]; !ok {
				m[k] = next
				next++
			}
		}
	}
}
