// Package hashtab provides an open-addressing int64→int32 hash table used by
// the hash-based physical operators (group-by aggregation, hash joins, set
// operations). The engine's hash tables are on the critical path of both
// query execution and lineage capture — Smoke reuses them for capture
// (principle P4) — so they avoid the allocation and hashing overheads of
// Go's generic map in exchange for a fixed key type: operator key columns are
// either int64 values or dictionary codes.
//
// Probe loops reslice the key/value/occupied arrays to a shared power-of-two
// length and index with i & uint64(n-1): the compiler proves every access in
// bounds and drops the checks from the inner loop. The batched entry points
// (GetOrPutBatch, GetBatch) amortize the per-row call and the hash
// computation over whole morsel batches — the group-by kernels hand the
// table hundreds of keys at a time instead of one.
package hashtab

import "smoke/internal/scratch"

// Map is an open-addressing linear-probing hash table from int64 keys to
// int32 values. The zero value is not usable; call New.
//
// Concurrency: methods that insert (Put, GetOrPut, GetOrPutBatch, grow) are
// single-writer. Get and GetBatch are pure reads and may run concurrently
// from many goroutines against a frozen table — the parallel join probe
// depends on this, so batch scratch is pooled per call, never stored on the
// Map.
type Map struct {
	keys     []int64
	vals     []int32
	occupied []bool
	size     int
	maxLoad  int
}

// New returns a map pre-sized for the given number of entries.
func New(capacityHint int) *Map {
	n := 16
	for n < capacityHint*2 {
		n <<= 1
	}
	return &Map{
		keys:     make([]int64, n),
		vals:     make([]int32, n),
		occupied: make([]bool, n),
		maxLoad:  n * 7 / 10,
	}
}

// hash is the splitmix64 finalizer: cheap and well-distributed for both
// sequential keys (orderkeys) and dictionary codes.
func hash(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Len returns the number of entries.
func (m *Map) Len() int { return m.size }

// Get returns the value stored under key.
func (m *Map) Get(key int64) (int32, bool) {
	n := uint64(len(m.keys))
	keys, vals, occ := m.keys[:n], m.vals[:n], m.occupied[:n]
	i := hash(key) & (n - 1)
	for occ[i] {
		if keys[i] == key {
			return vals[i], true
		}
		i = (i + 1) & (n - 1)
	}
	return 0, false
}

// Put stores val under key, replacing any existing value.
func (m *Map) Put(key int64, val int32) {
	if m.size >= m.maxLoad {
		m.grow()
	}
	n := uint64(len(m.keys))
	keys, vals, occ := m.keys[:n], m.vals[:n], m.occupied[:n]
	i := hash(key) & (n - 1)
	for occ[i] {
		if keys[i] == key {
			vals[i] = val
			return
		}
		i = (i + 1) & (n - 1)
	}
	occ[i] = true
	keys[i] = key
	vals[i] = val
	m.size++
}

// GetOrPut returns the existing value for key, or stores val and reports
// inserted = true. This is the single-probe path group-by build loops use:
// one hash computation covers both the lookup and the insert.
func (m *Map) GetOrPut(key int64, val int32) (existing int32, inserted bool) {
	if m.size >= m.maxLoad {
		m.grow()
	}
	n := uint64(len(m.keys))
	keys, vals, occ := m.keys[:n], m.vals[:n], m.occupied[:n]
	i := hash(key) & (n - 1)
	for occ[i] {
		if keys[i] == key {
			return vals[i], false
		}
		i = (i + 1) & (n - 1)
	}
	occ[i] = true
	keys[i] = key
	vals[i] = val
	m.size++
	return val, true
}

// GetOrPutBatch resolves keys[j] to slots[j] for a whole batch, inserting
// misses. A miss calls onNew(j, key) — in batch order, which is input-row
// order — and stores its return value, so group ids are assigned exactly as
// the row-at-a-time loop would assign them (the determinism contract of the
// parallel merge depends on discovery order). Hashing runs as its own tight
// loop over the batch before any probing, and capacity is reserved up front
// so the probe loop never rehashes mid-batch.
func (m *Map) GetOrPutBatch(keys []int64, slots []int32, onNew func(j int, key int64) int32) {
	for m.size+len(keys) > m.maxLoad {
		m.grow()
	}
	hs := hashBatch(keys)
	n := uint64(len(m.keys))
	tk, tv, occ := m.keys[:n], m.vals[:n], m.occupied[:n]
	for j, k := range keys {
		i := hs[j] & (n - 1)
		for {
			if !occ[i] {
				v := onNew(j, k)
				occ[i] = true
				tk[i] = k
				tv[i] = v
				m.size++
				slots[j] = v
				break
			}
			if tk[i] == k {
				slots[j] = tv[i]
				break
			}
			i = (i + 1) & (n - 1)
		}
	}
	scratch.PutWords(hs)
}

// GetBatch resolves keys[j] to slots[j] for a whole batch of keys that are
// all present (the Defer second-pass shape: every key was inserted by the
// aggregation pass). Missing keys write -1.
func (m *Map) GetBatch(keys []int64, slots []int32) {
	hs := hashBatch(keys)
	n := uint64(len(m.keys))
	tk, tv, occ := m.keys[:n], m.vals[:n], m.occupied[:n]
	for j, k := range keys {
		i := hs[j] & (n - 1)
		slots[j] = -1
		for occ[i] {
			if tk[i] == k {
				slots[j] = tv[i]
				break
			}
			i = (i + 1) & (n - 1)
		}
	}
	scratch.PutWords(hs)
}

// hashBatch returns a pooled buffer holding the hashes of keys. The caller
// returns it with scratch.PutWords once probing finishes. Pooled (not cached
// on the Map) so concurrent GetBatch probes of a shared table never share
// scratch.
func hashBatch(keys []int64) []uint64 {
	hs := scratch.Words(len(keys))
	for j, k := range keys {
		hs[j] = hash(k)
	}
	return hs
}

func (m *Map) grow() {
	oldKeys, oldVals, oldOcc := m.keys, m.vals, m.occupied
	n := len(m.keys) * 2
	m.keys = make([]int64, n)
	m.vals = make([]int32, n)
	m.occupied = make([]bool, n)
	m.maxLoad = n * 7 / 10
	m.size = 0
	for i, occ := range oldOcc {
		if occ {
			m.putFresh(oldKeys[i], oldVals[i])
		}
	}
}

// putFresh inserts a key known to be absent (rehash path).
func (m *Map) putFresh(key int64, val int32) {
	n := uint64(len(m.keys))
	keys, occ := m.keys[:n], m.occupied[:n]
	i := hash(key) & (n - 1)
	for occ[i] {
		i = (i + 1) & (n - 1)
	}
	occ[i] = true
	keys[i] = key
	m.vals[i] = val
	m.size++
}

// Range calls f for every entry, in unspecified order.
func (m *Map) Range(f func(key int64, val int32)) {
	for i, occ := range m.occupied {
		if occ {
			f(m.keys[i], m.vals[i])
		}
	}
}
