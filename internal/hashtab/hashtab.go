// Package hashtab provides an open-addressing int64→int32 hash table used by
// the hash-based physical operators (group-by aggregation, hash joins, set
// operations). The engine's hash tables are on the critical path of both
// query execution and lineage capture — Smoke reuses them for capture
// (principle P4) — so they avoid the allocation and hashing overheads of
// Go's generic map in exchange for a fixed key type: operator key columns are
// either int64 values or dictionary codes.
package hashtab

// Map is an open-addressing linear-probing hash table from int64 keys to
// int32 values. The zero value is not usable; call New.
type Map struct {
	keys     []int64
	vals     []int32
	occupied []bool
	mask     uint64
	size     int
	maxLoad  int
}

// New returns a map pre-sized for the given number of entries.
func New(capacityHint int) *Map {
	n := 16
	for n < capacityHint*2 {
		n <<= 1
	}
	return &Map{
		keys:     make([]int64, n),
		vals:     make([]int32, n),
		occupied: make([]bool, n),
		mask:     uint64(n - 1),
		maxLoad:  n * 7 / 10,
	}
}

// hash is the splitmix64 finalizer: cheap and well-distributed for both
// sequential keys (orderkeys) and dictionary codes.
func hash(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Len returns the number of entries.
func (m *Map) Len() int { return m.size }

// Get returns the value stored under key.
func (m *Map) Get(key int64) (int32, bool) {
	i := hash(key) & m.mask
	for m.occupied[i] {
		if m.keys[i] == key {
			return m.vals[i], true
		}
		i = (i + 1) & m.mask
	}
	return 0, false
}

// Put stores val under key, replacing any existing value.
func (m *Map) Put(key int64, val int32) {
	if m.size >= m.maxLoad {
		m.grow()
	}
	i := hash(key) & m.mask
	for m.occupied[i] {
		if m.keys[i] == key {
			m.vals[i] = val
			return
		}
		i = (i + 1) & m.mask
	}
	m.occupied[i] = true
	m.keys[i] = key
	m.vals[i] = val
	m.size++
}

// GetOrPut returns the existing value for key, or stores val and reports
// inserted = true. This is the single-probe path group-by build loops use:
// one hash computation covers both the lookup and the insert.
func (m *Map) GetOrPut(key int64, val int32) (existing int32, inserted bool) {
	if m.size >= m.maxLoad {
		m.grow()
	}
	i := hash(key) & m.mask
	for m.occupied[i] {
		if m.keys[i] == key {
			return m.vals[i], false
		}
		i = (i + 1) & m.mask
	}
	m.occupied[i] = true
	m.keys[i] = key
	m.vals[i] = val
	m.size++
	return val, true
}

func (m *Map) grow() {
	oldKeys, oldVals, oldOcc := m.keys, m.vals, m.occupied
	n := len(m.keys) * 2
	m.keys = make([]int64, n)
	m.vals = make([]int32, n)
	m.occupied = make([]bool, n)
	m.mask = uint64(n - 1)
	m.maxLoad = n * 7 / 10
	m.size = 0
	for i, occ := range oldOcc {
		if occ {
			m.putFresh(oldKeys[i], oldVals[i])
		}
	}
}

// putFresh inserts a key known to be absent (rehash path).
func (m *Map) putFresh(key int64, val int32) {
	i := hash(key) & m.mask
	for m.occupied[i] {
		i = (i + 1) & m.mask
	}
	m.occupied[i] = true
	m.keys[i] = key
	m.vals[i] = val
	m.size++
}

// Range calls f for every entry, in unspecified order.
func (m *Map) Range(f func(key int64, val int32)) {
	for i, occ := range m.occupied {
		if occ {
			f(m.keys[i], m.vals[i])
		}
	}
}
