package hashtab

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	m := New(0)
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
	if _, ok := m.Get(42); ok {
		t.Fatal("Get on empty map should miss")
	}
}

func TestPutGet(t *testing.T) {
	m := New(4)
	m.Put(1, 10)
	m.Put(2, 20)
	m.Put(1, 11) // overwrite
	if v, ok := m.Get(1); !ok || v != 11 {
		t.Fatalf("Get(1) = %d, %v", v, ok)
	}
	if v, ok := m.Get(2); !ok || v != 20 {
		t.Fatalf("Get(2) = %d, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestGetOrPut(t *testing.T) {
	m := New(4)
	v, inserted := m.GetOrPut(5, 50)
	if !inserted || v != 50 {
		t.Fatalf("first GetOrPut = %d, %v", v, inserted)
	}
	v, inserted = m.GetOrPut(5, 99)
	if inserted || v != 50 {
		t.Fatalf("second GetOrPut = %d, %v; must return existing", v, inserted)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestGrowthPreservesEntries(t *testing.T) {
	m := New(2)
	n := 10000
	for i := 0; i < n; i++ {
		m.Put(int64(i*7), int32(i))
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(int64(i * 7)); !ok || v != int32(i) {
			t.Fatalf("Get(%d) = %d, %v", i*7, v, ok)
		}
	}
}

func TestNegativeAndExtremeKeys(t *testing.T) {
	m := New(4)
	keys := []int64{-1, 0, 1, -1 << 62, 1<<62 - 1}
	for i, k := range keys {
		m.Put(k, int32(i))
	}
	for i, k := range keys {
		if v, ok := m.Get(k); !ok || v != int32(i) {
			t.Fatalf("Get(%d) = %d, %v", k, v, ok)
		}
	}
}

func TestRangeVisitsAll(t *testing.T) {
	m := New(4)
	want := map[int64]int32{3: 30, 9: 90, 27: 270}
	for k, v := range want {
		m.Put(k, v)
	}
	got := map[int64]int32{}
	m.Range(func(k int64, v int32) { got[k] = v })
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries", len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range got[%d] = %d, want %d", k, got[k], v)
		}
	}
}

func TestAgainstStdlibMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(0)
		ref := map[int64]int32{}
		for i := 0; i < 3000; i++ {
			k := int64(rng.Intn(500)) - 250
			v := int32(rng.Intn(1 << 20))
			if rng.Intn(2) == 0 {
				m.Put(k, v)
				ref[k] = v
			} else {
				got, insertedGot := m.GetOrPut(k, v)
				want, exists := ref[k]
				if !exists {
					ref[k] = v
					want = v
				}
				if got != want || insertedGot == exists {
					return false
				}
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := m.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
