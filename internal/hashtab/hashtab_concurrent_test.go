package hashtab

import (
	"sync"
	"testing"
)

// TestGetBatchConcurrentProbes pins the read-only contract of GetBatch: many
// goroutines may probe one frozen table at once (the parallel join probe
// does exactly this). A regression that reintroduces shared mutable scratch
// on the Map shows up here as wrong slots or as a -race report.
func TestGetBatchConcurrentProbes(t *testing.T) {
	const n = 10_000
	m := New(n)
	for i := 0; i < n; i++ {
		m.Put(int64(i*3), int32(i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			keys := make([]int64, 512)
			slots := make([]int32, 512)
			for round := 0; round < 50; round++ {
				for j := range keys {
					keys[j] = int64(((g*131 + round*17 + j) % n) * 3)
				}
				m.GetBatch(keys, slots)
				for j := range keys {
					if want := int32(keys[j] / 3); slots[j] != want {
						t.Errorf("goroutine %d: key %d resolved to %d, want %d", g, keys[j], slots[j], want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
