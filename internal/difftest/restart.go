package difftest

import (
	"fmt"
	"math/rand"

	"smoke/internal/core"
	"smoke/internal/diskstore"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// CheckRestart is the crash/restart differential: randomized captured
// queries are retained into a disk store, the store is closed and reopened
// into a fresh DB (a process-equivalent restart — nothing survives but the
// data dir), and every backward and forward trace over the recovered
// results must be element-identical to the pre-restart answer. Raw and
// compressed captures both go through: the disk tier persists the encoded
// chunk representation either way, so this is where "encode-on-demote is
// lossless" meets adversarial query shapes.
func CheckRestart(dir string, seed int64, queries int) error {
	r := rand.New(rand.NewSource(seed))
	ds := GenDataset(r)
	defer ds.DB.Close()

	store, err := diskstore.Open(dir)
	if err != nil {
		return fmt.Errorf("difftest: restart: open store: %w", err)
	}
	if err := store.PutTable(ds.Dim, "g"); err != nil {
		return fmt.Errorf("difftest: restart: persist dim: %w", err)
	}
	if err := store.PutTable(ds.Fact, ""); err != nil {
		return fmt.Errorf("difftest: restart: persist fact: %w", err)
	}

	// Pre-restart: run, trace, retain. want[name] records every trace answer
	// keyed by direction/table for the post-restart comparison.
	type tracePoint struct {
		what  string
		seeds []lineage.Rid
		rids  []lineage.Rid
	}
	want := map[string][]tracePoint{}
	variants := []Variant{
		{Name: "raw", Opts: core.CaptureOptions{Mode: ops.Inject, Parallelism: 1}},
		{Name: "compressed", Opts: core.CaptureOptions{Mode: ops.Inject, Parallelism: 1, Compress: true}},
	}
	for qi := 0; qi < queries; qi++ {
		build, desc, _ := GenQuery(ds, r)
		for _, v := range variants {
			name := fmt.Sprintf("q%d-%s", qi, v.Name)
			res, err := build().Run(v.Opts)
			if err != nil {
				return fmt.Errorf("difftest: restart: seed %d %s (%s): run: %w", seed, name, desc, err)
			}
			var points []tracePoint
			for _, table := range res.Capture().Relations() {
				for _, p := range seedPoints(res, table) {
					rids, err := traceOf(res, p.dir, table, p.seeds)
					if err != nil {
						return fmt.Errorf("difftest: restart: seed %d %s (%s): %s %s: %w", seed, name, desc, p.dir, table, err)
					}
					points = append(points, tracePoint{
						what: p.dir + "/" + table, seeds: p.seeds, rids: rids,
					})
				}
			}
			if _, err := store.PutResult("sRestart", name, &diskstore.Result{
				Out: res.Out, GroupCounts: res.GroupCounts,
				Capture: res.Capture(), Bases: basesOf(res),
			}); err != nil {
				return fmt.Errorf("difftest: restart: seed %d %s (%s): persist: %w", seed, name, desc, err)
			}
			want[name] = points
		}
	}
	if err := store.Close(); err != nil {
		return fmt.Errorf("difftest: restart: close store: %w", err)
	}

	// "Restart": a fresh store over the same dir, a fresh DB, nothing shared.
	store2, err := diskstore.Open(dir)
	if err != nil {
		return fmt.Errorf("difftest: restart: reopen store: %w", err)
	}
	defer store2.Close()
	db2 := core.Open()
	defer db2.Close()
	if got := store2.Tables(); got["dim"] != "g" {
		return fmt.Errorf("difftest: restart: recovered tables %v, want dim with pk g", got)
	}
	sessions := store2.Sessions()
	if len(sessions["sRestart"]) != len(want) {
		return fmt.Errorf("difftest: restart: recovered %d results, want %d", len(sessions["sRestart"]), len(want))
	}
	for name, points := range want {
		ld, err := store2.LoadResult("sRestart", name)
		if err != nil {
			return fmt.Errorf("difftest: restart: load %s: %w", name, err)
		}
		res := core.RestoreResult(db2, ld.Out, ld.GroupCounts, ld.Capture, ld.Bases)
		for _, p := range points {
			dir, table := splitWhat(p.what)
			got, err := traceOf(res, dir, table, p.seeds)
			if err != nil {
				return fmt.Errorf("difftest: restart: %s %s after restart: %w", name, p.what, err)
			}
			if err := diffRids(p.rids, got); err != nil {
				return fmt.Errorf("difftest: restart: %s %s: pre/post restart traces differ: %w", name, p.what, err)
			}
		}
	}
	return nil
}

func splitWhat(what string) (dir, table string) {
	for i := range what {
		if what[i] == '/' {
			return what[:i], what[i+1:]
		}
	}
	return what, ""
}

type seedPoint struct {
	dir   string
	seeds []lineage.Rid
}

// seedPoints picks deterministic trace seeds: backward over output rids,
// forward over base rids — first, middle, last, so boundary chunks of the
// encoded directory are exercised.
func seedPoints(res *core.Result, table string) []seedPoint {
	var pts []seedPoint
	if n := res.Out.N; n > 0 {
		pts = append(pts, seedPoint{dir: "backward", seeds: cornerRids(n)})
	}
	if rel := res.BaseRelation(table); rel != nil && rel.N > 0 {
		pts = append(pts, seedPoint{dir: "forward", seeds: cornerRids(rel.N)})
	}
	return pts
}

func cornerRids(n int) []lineage.Rid {
	rids := []lineage.Rid{0}
	if n > 2 {
		rids = append(rids, lineage.Rid(n/2))
	}
	if n > 1 {
		rids = append(rids, lineage.Rid(n-1))
	}
	return rids
}

func traceOf(res *core.Result, dir, table string, seeds []lineage.Rid) ([]lineage.Rid, error) {
	if dir == "backward" {
		return res.Backward(table, seeds)
	}
	return res.Forward(table, seeds)
}

// basesOf snapshots the base relations a result's capture addresses.
func basesOf(res *core.Result) map[string]*storage.Relation {
	out := map[string]*storage.Relation{}
	for _, table := range res.Capture().Relations() {
		if rel := res.BaseRelation(table); rel != nil {
			out[table] = rel
		}
	}
	return out
}
