package difftest

import (
	"fmt"
	"math/rand"
	"sort"

	"smoke/internal/core"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
)

// StrategyVariant is one capture-strategy configuration under test.
type StrategyVariant struct {
	Name string
	Opts core.CaptureOptions
}

// StrategyVariants enumerates eager/lazy/hybrid × serial/par3 ×
// raw/compressed. Lazy variants run capture-free (Mode zero = None); their
// Compress flag pins that compression is inert without a capture. The
// reference is always the plain serial eager run, built by callers.
func StrategyVariants() []StrategyVariant {
	var vs []StrategyVariant
	for _, st := range []struct {
		name string
		s    core.Strategy
		m    ops.CaptureMode
	}{
		{"eager", core.StrategyEager, ops.Inject},
		{"lazy", core.StrategyLazy, ops.None},
		{"hybrid", core.StrategyHybrid, ops.Inject},
	} {
		for _, par := range []struct {
			name string
			w    int
		}{{"serial", 1}, {"par3", 3}} {
			for _, comp := range []struct {
				name string
				c    bool
			}{{"raw", false}, {"compressed", true}} {
				vs = append(vs, StrategyVariant{
					Name: fmt.Sprintf("%s/%s/%s", st.name, par.name, comp.name),
					Opts: core.CaptureOptions{Strategy: st.s, Mode: st.m, Parallelism: par.w, Compress: comp.c},
				})
			}
		}
	}
	return vs
}

// CheckStrategies is the trace-strategy differential gate: randomized SPJA
// queries run under every strategy variant must produce the same output
// relation as the eager serial reference, and answer sampled single-rid
// backward/forward traces and predicate-seeded backward traces
// element-identically — whether the answer comes from a captured index
// (eager; hybrid backward) or from re-executing the stored plan (lazy;
// hybrid forward). A fixed key-predicate case additionally pins the
// scan-equivalence rewrite (compared as multisets: the rewrite answers in
// global scan order, the index union in group-major order).
func CheckStrategies(seed int64, queries int) error {
	r := rand.New(rand.NewSource(seed))
	ds := GenDataset(r)
	defer ds.DB.Close()
	refOpts := core.CaptureOptions{Mode: ops.Inject, Parallelism: 1}

	for qi := 0; qi < queries; qi++ {
		build, desc, singleTable := GenQuery(ds, r)
		ref, err := build().Run(refOpts)
		if err != nil {
			return fmt.Errorf("difftest: seed %d query %d (%s): reference run: %w", seed, qi, desc, err)
		}
		tables := []struct {
			name  string
			baseN int
		}{{"fact", ds.FactN}}
		if !singleTable {
			tables = append(tables, struct {
				name  string
				baseN int
			}{"dim", ds.DimN})
		}
		for _, v := range StrategyVariants() {
			got, err := build().Run(v.Opts)
			if err != nil {
				return fmt.Errorf("difftest: seed %d query %d (%s) strategy %s: %w", seed, qi, desc, v.Name, err)
			}
			if err := diffRelation(ref.Out, got.Out); err != nil {
				return fmt.Errorf("difftest: seed %d query %d (%s) strategy %s: output: %w", seed, qi, desc, v.Name, err)
			}
			for _, tb := range tables {
				if err := diffStrategyTraces(ref, got, tb.name, tb.baseN); err != nil {
					return fmt.Errorf("difftest: seed %d query %d (%s) strategy %s: %w", seed, qi, desc, v.Name, err)
				}
			}
		}
	}
	return checkScanRewrite(ds)
}

// diffStrategyTraces compares sampled single-rid backward and forward traces
// plus one predicate-seeded backward trace (over the always-present cnt
// aggregate) of got against the eager reference, element-identically.
func diffStrategyTraces(ref, got *core.Result, table string, baseN int) error {
	bstride := 1 + ref.Out.N/24
	for o := 0; o < ref.Out.N; o += bstride {
		rids := []lineage.Rid{lineage.Rid(o)}
		want, err := ref.Backward(table, rids)
		if err != nil {
			return err
		}
		gotL, err := got.Backward(table, rids)
		if err != nil {
			return fmt.Errorf("backward %s output %d: %w", table, o, err)
		}
		if err := diffRids(want, gotL); err != nil {
			return fmt.Errorf("backward lineage of %s output %d: %w", table, o, err)
		}
	}
	fstride := 1 + baseN/32
	for in := 0; in < baseN; in += fstride {
		rids := []lineage.Rid{lineage.Rid(in)}
		want, err := ref.Forward(table, rids)
		if err != nil {
			return err
		}
		gotL, err := got.Forward(table, rids)
		if err != nil {
			return fmt.Errorf("forward %s input %d: %w", table, in, err)
		}
		if err := diffRids(want, gotL); err != nil {
			return fmt.Errorf("forward lineage of %s input %d: %w", table, in, err)
		}
	}
	// Predicate-seeded backward over an aggregate column: not key-covered, so
	// the lazy path re-executes and traces through the rebuilt index — the
	// answer is strictly order-identical to the eager bound trace.
	pred := expr.GeE(expr.C("cnt"), expr.I(2))
	want, err := ref.Trace(core.TraceBackward, table, core.Where(pred))
	if err != nil {
		return err
	}
	gotL, err := got.Trace(core.TraceBackward, table, core.Where(pred))
	if err != nil {
		return fmt.Errorf("pred-seeded backward on %s: %w", table, err)
	}
	if err := diffRids(want, gotL); err != nil {
		return fmt.Errorf("pred-seeded backward lineage of %s: %w", table, err)
	}
	return nil
}

// checkScanRewrite pins the generalized scan-equivalence rewrite: under the
// lazy strategy, a grouping-key-predicate seed over a single-table
// aggregation answers from a filtered base scan without re-aggregation. The
// rewrite yields global scan order while the eager index union is
// group-major, so the comparison is a multiset one (several groups match).
func checkScanRewrite(ds *Dataset) error {
	build := func() *core.Query {
		return ds.DB.Query().From("fact", nil).GroupBy("b").Agg(ops.Count, nil, "cnt")
	}
	ref, err := build().Run(core.CaptureOptions{Mode: ops.Inject})
	if err != nil {
		return fmt.Errorf("difftest: scan-rewrite reference run: %w", err)
	}
	lazy, err := build().Run(core.CaptureOptions{Strategy: core.StrategyLazy})
	if err != nil {
		return fmt.Errorf("difftest: scan-rewrite lazy run: %w", err)
	}
	pred := expr.GeE(expr.C("b"), expr.I(1))
	want, err := ref.Trace(core.TraceBackward, "fact", core.Where(pred))
	if err != nil {
		return fmt.Errorf("difftest: scan-rewrite eager trace: %w", err)
	}
	got, err := lazy.Trace(core.TraceBackward, "fact", core.Where(pred))
	if err != nil {
		return fmt.Errorf("difftest: scan-rewrite lazy trace: %w", err)
	}
	if len(want) == 0 {
		return fmt.Errorf("difftest: scan-rewrite case selected no rows; widen the predicate")
	}
	sortRids(want)
	sortRids(got)
	if err := diffRids(want, got); err != nil {
		return fmt.Errorf("difftest: scan-rewrite lazy trace (as multiset): %w", err)
	}
	return nil
}

func sortRids(rids []lineage.Rid) {
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
}
