package difftest

import (
	"fmt"
	"math/rand"
	"sort"

	"smoke/internal/core"
	"smoke/internal/exec"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/plan"
	"smoke/internal/pool"
	"smoke/internal/sql"
	"smoke/internal/storage"
)

// Multi-block differential checking: randomized plans that the single-block
// facade cannot express — aggregations over joins over grouped subqueries,
// set unions, HAVING/ORDER BY/LIMIT residue — run through both lowerings
// (SPJA-fused and generic) under every capture configuration, and every
// combination must produce output and lineage element-identical to the
// generic/serial/Inject/raw reference. This is the correctness gate for the
// plan optimizer (the fusion rule in particular) and for the parallel
// generic-runner kernels (M:N join probe, set-union capture).

// PlanVariant is one (lowering, capture) configuration of a plan run.
type PlanVariant struct {
	Name    string
	Fused   bool
	Opts    exec.PlanOpts
	workers int
}

// PlanVariants enumerates the configurations; the first entry is the
// reference (generic lowering, serial, Inject, raw).
func PlanVariants(pl *pool.Pool) []PlanVariant {
	var vs []PlanVariant
	for _, fuse := range []struct {
		name string
		f    bool
	}{{"generic", false}, {"fused", true}} {
		for _, par := range []struct {
			name string
			w    int
		}{{"serial", 1}, {"par3", 3}} {
			for _, mode := range []struct {
				name string
				m    ops.CaptureMode
			}{{"inject", ops.Inject}, {"defer", ops.Defer}} {
				for _, comp := range []struct {
					name string
					c    bool
				}{{"raw", false}, {"compressed", true}} {
					v := PlanVariant{
						Name:  fmt.Sprintf("%s/%s/%s/%s", fuse.name, par.name, mode.name, comp.name),
						Fused: fuse.f,
						Opts:  exec.PlanOpts{Mode: mode.m, Compress: comp.c, Workers: par.w},
					}
					if par.w > 1 {
						v.Opts.Pool = pl
					}
					vs = append(vs, v)
				}
			}
		}
	}
	sort.SliceStable(vs, func(i, j int) bool {
		return vs[i].Name == "generic/serial/inject/raw" && vs[j].Name != "generic/serial/inject/raw"
	})
	return vs
}

// genFact2 derives a second fact-shaped relation (for union plans; a union of
// a relation with itself would collide in the per-base capture maps).
func genFact2(r *rand.Rand, n int) *storage.Relation {
	rel := storage.NewRelation("fact2", storage.Schema{
		{Name: "k", Type: storage.TInt},
		{Name: "b", Type: storage.TInt},
		{Name: "s", Type: storage.TString},
		{Name: "v", Type: storage.TFloat},
	}, n)
	for i := 0; i < n; i++ {
		rel.Cols[0].Ints[i] = int64(r.Intn(20))
		rel.Cols[1].Ints[i] = int64(r.Intn(6))
		rel.Cols[2].Strs[i] = fmt.Sprintf("S%d", rel.Cols[1].Ints[i]%3)
		rel.Cols[3].Floats[i] = float64(r.Intn(1000)) / 10
	}
	return rel
}

// GenMultiBlockPlan builds one randomized multi-block logical plan over the
// dataset, returning the (unoptimized) plan and a shape description.
func GenMultiBlockPlan(ds *Dataset, fact2 *storage.Relation, r *rand.Rand) (plan.Node, string) {
	dimScan := plan.Scan{Table: "dim", Rel: ds.Dim}
	factScan := plan.Scan{Table: "fact", Rel: ds.Fact}

	residue := func(n plan.Node, countCol string) (plan.Node, string) {
		desc := ""
		if r.Intn(2) == 0 {
			n = plan.Filter{Child: n, Pred: expr.GeE(expr.C(countCol), expr.I(int64(1+r.Intn(3))))}
			desc += "+having"
		}
		if r.Intn(2) == 0 {
			keys := []plan.SortKey{{Col: countCol, Desc: r.Intn(2) == 0}}
			if s, err := plan.OutSchema(n); err == nil {
				// Tiebreak on every remaining column for a deterministic order.
				for _, f := range s {
					if f.Name != countCol {
						keys = append(keys, plan.SortKey{Col: f.Name})
					}
				}
			}
			n = plan.OrderBy{Child: n, Keys: keys}
			desc += "+orderby"
			if r.Intn(2) == 0 {
				n = plan.Limit{Child: n, N: 1 + r.Intn(5)}
				desc += "+limit"
			}
		}
		return n, desc
	}

	switch r.Intn(3) {
	case 0:
		// Fusible star block: group-by over pk-fk join of two scans.
		left := dimScan
		left.Filter = genDimFilter(r)
		right := factScan
		right.Filter = genFactFilter(r)
		key := []string{"label", "b"}[r.Intn(2)]
		n := plan.Node(plan.GroupBy{
			Child: plan.Join{Left: left, Right: right, LeftKey: "g", RightKey: "k"},
			Keys:  []string{key},
			Aggs: []plan.AggDef{
				{Fn: ops.Count, Name: "cnt"},
				{Fn: ops.Sum, Arg: expr.C("v"), Name: "sv"},
			},
		})
		n, rdesc := residue(n, "cnt")
		return n, "star-block group by " + key + rdesc
	case 1:
		// Aggregate over join over grouped subquery.
		inner := plan.GroupBy{
			Child: plan.Scan{Table: "fact", Rel: ds.Fact, Filter: genFactFilter(r)},
			Keys:  []string{"k"},
			Aggs: []plan.AggDef{
				{Fn: ops.Count, Name: "cnt"},
				{Fn: ops.Max, Arg: expr.C("v"), Name: "mx"},
			},
		}
		var j plan.Join
		if r.Intn(2) == 0 {
			j = plan.Join{Left: inner, Right: dimScan, LeftKey: "k", RightKey: "g"}
		} else {
			j = plan.Join{Left: dimScan, Right: inner, LeftKey: "g", RightKey: "k"}
		}
		n := plan.Node(plan.GroupBy{
			Child: j,
			Keys:  []string{"label"},
			Aggs: []plan.AggDef{
				{Fn: ops.Sum, Arg: expr.C("cnt"), Name: "total"},
				{Fn: ops.Count, Name: "groups"},
			},
		})
		n, rdesc := residue(n, "groups")
		return n, "agg-over-join-over-agg" + rdesc
	default:
		// Group-by over a set union of two filtered scans.
		left := factScan
		left.Filter = genFactFilter(r)
		right := plan.Scan{Table: "fact2", Rel: fact2, Filter: genFactFilter(r)}
		n := plan.Node(plan.GroupBy{
			Child: plan.Union{Left: left, Right: right, Attrs: []string{"b", "s"}},
			Keys:  []string{"s"},
			Aggs:  []plan.AggDef{{Fn: ops.Count, Name: "cnt"}},
		})
		n, rdesc := residue(n, "cnt")
		return n, "group-by over union" + rdesc
	}
}

// multiBlockSQL is the fixed SQL side of the multi-block gate: the acceptance
// shapes (group-by over a join over a grouped subquery with HAVING/ORDER
// BY/LIMIT) exercised through the parser and the SQL lowering.
var multiBlockSQL = []string{
	`SELECT label, COUNT(*) AS c, SUM(v) AS sv
	 FROM dim JOIN fact ON g = k
	 WHERE v < 50 AND w < 80
	 GROUP BY label HAVING c >= 1 ORDER BY c DESC, label LIMIT 3`,
	`SELECT label, SUM(cnt) AS total
	 FROM (SELECT k, COUNT(*) AS cnt FROM fact WHERE b < 5 GROUP BY k) sub
	 JOIN dim ON sub.k = g
	 GROUP BY label ORDER BY label`,
	`SELECT s, COUNT(*) AS c FROM fact WHERE v < 70 GROUP BY s HAVING c >= 1 ORDER BY s LIMIT 4`,
	// Both join sides derive from the same base: per-output lineage merges
	// the two contributions instead of one overwriting the other.
	`SELECT b, SUM(c1) AS s1, SUM(c2) AS s2
	 FROM (SELECT b, COUNT(*) AS c1 FROM fact GROUP BY b) x
	 JOIN (SELECT k, COUNT(*) AS c2 FROM fact GROUP BY k) y ON b = k
	 GROUP BY b ORDER BY b`,
}

// CheckMultiBlock runs one seeded multi-block differential session over
// randomized plans and the fixed multi-block SQL queries.
func CheckMultiBlock(seed int64, plans int) error {
	r := rand.New(rand.NewSource(seed))
	ds := GenDataset(r)
	defer ds.DB.Close()
	fact2 := genFact2(r, 300+r.Intn(700))
	ds.DB.Register(fact2)
	pl := pool.New(3)
	defer pl.Close()

	for qi := 0; qi < plans; qi++ {
		n, desc := GenMultiBlockPlan(ds, fact2, r)
		if err := checkPlanVariants(ds.DB, n, pl, fmt.Sprintf("seed %d plan %d (%s)", seed, qi, desc)); err != nil {
			return err
		}
	}
	for i, src := range multiBlockSQL {
		st, err := sql.Parse(src)
		if err != nil {
			return fmt.Errorf("difftest: sql %d: %w", i, err)
		}
		n, err := sql.Lower(ds.DB, st)
		if err != nil {
			return fmt.Errorf("difftest: sql %d: %w", i, err)
		}
		if err := checkPlanVariants(ds.DB, n, pl, fmt.Sprintf("seed %d sql %d", seed, i)); err != nil {
			return err
		}
	}
	return nil
}

// checkPlanVariants optimizes n once per lowering (fused and generic) and
// runs every capture variant, comparing each against the reference.
func checkPlanVariants(db *core.DB, n plan.Node, pl *pool.Pool, what string) error {
	generic, _ := plan.Optimize(n, plan.Opts{Catalog: db.Catalog(), NoFusion: true})
	fused, _ := plan.Optimize(n, plan.Opts{Catalog: db.Catalog()})

	variants := PlanVariants(pl)
	if variants[0].Name != "generic/serial/inject/raw" {
		return fmt.Errorf("difftest: variant order broken: %q first", variants[0].Name)
	}
	ref, err := exec.RunPlan(generic, variants[0].Opts)
	if err != nil {
		return fmt.Errorf("difftest: %s: reference run: %w", what, err)
	}
	for _, v := range variants[1:] {
		p := generic
		if v.Fused {
			p = fused
		}
		got, err := exec.RunPlan(p, v.Opts)
		if err != nil {
			return fmt.Errorf("difftest: %s variant %s: %w", what, v.Name, err)
		}
		if err := diffPlanResults(ref, got); err != nil {
			return fmt.Errorf("difftest: %s variant %s: %w", what, v.Name, err)
		}
	}
	return nil
}

// diffPlanResults compares output, group counts, and every backward/forward
// trace of got against the reference (element-identical, order and
// duplicates included).
func diffPlanResults(ref, got exec.PlanResult) error {
	return DiffPlanResults(ref, got)
}

// DiffPlanResults is the exported form of the plan-result comparison (the
// bench harness gates its fused-vs-generic timings on it).
func DiffPlanResults(ref, got exec.PlanResult) error {
	if err := diffRelation(ref.Out, got.Out); err != nil {
		return err
	}
	if len(ref.GroupCounts) != len(got.GroupCounts) {
		return fmt.Errorf("group counts: %d vs %d", len(got.GroupCounts), len(ref.GroupCounts))
	}
	for i := range ref.GroupCounts {
		if ref.GroupCounts[i] != got.GroupCounts[i] {
			return fmt.Errorf("group count %d: %d, want %d", i, got.GroupCounts[i], ref.GroupCounts[i])
		}
	}
	refRels := append([]string(nil), ref.Capture.Relations()...)
	gotRels := append([]string(nil), got.Capture.Relations()...)
	sort.Strings(refRels)
	sort.Strings(gotRels)
	if len(refRels) != len(gotRels) {
		return fmt.Errorf("captured relations %v, want %v", gotRels, refRels)
	}
	for i := range refRels {
		if refRels[i] != gotRels[i] {
			return fmt.Errorf("captured relations %v, want %v", gotRels, refRels)
		}
	}
	for _, rel := range refRels {
		for o := 0; o < ref.Out.N; o++ {
			want, err := ref.Capture.Backward(rel, []lineage.Rid{lineage.Rid(o)})
			if err != nil {
				return err
			}
			gotL, err := got.Capture.Backward(rel, []lineage.Rid{lineage.Rid(o)})
			if err != nil {
				return err
			}
			if err := diffRids(want, gotL); err != nil {
				return fmt.Errorf("backward lineage of %s output %d: %w", rel, o, err)
			}
		}
		fwIx, err := ref.Capture.ForwardIndex(rel)
		if err != nil {
			return err
		}
		for in := 0; in < fwIx.Len(); in++ {
			want, err := ref.Capture.Forward(rel, []lineage.Rid{lineage.Rid(in)})
			if err != nil {
				return err
			}
			gotL, err := got.Capture.Forward(rel, []lineage.Rid{lineage.Rid(in)})
			if err != nil {
				return err
			}
			if err := diffRids(want, gotL); err != nil {
				return fmt.Errorf("forward lineage of %s input %d: %w", rel, in, err)
			}
		}
	}
	return nil
}
