package difftest

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"time"

	"smoke/internal/core"
	"smoke/internal/server"
	"smoke/internal/serverclient"
	"smoke/internal/shard"
	"smoke/internal/storage"
)

// ShardCounts is the scatter matrix: 1 (pure proxy — must be byte-exact
// single-node behavior), 2, and 4 (slices meet mid-group, so every merge
// primitive is exercised).
var ShardCounts = []int{1, 2, 4}

// shardStrategies is the capture-strategy axis of the sharded matrix. "auto"
// is deliberately absent: its resolution reads per-node runtime counters, and
// the coordinator fences the (rare) traces whose row order depends on it
// rather than guessing.
var shardStrategies = []string{"eager", "lazy", "hybrid"}

// CheckSharded is the horizontal-scaling differential gate: randomized SPJA
// queries and bound backward/forward traces (rid- and predicate-seeded, plain
// and consuming) must answer element-identically on a sharded coordinator —
// for every shard count × capture strategy × index representation — as on a
// single node. It drives both tiers through their public HTTP API, so the
// whole scatter/gather path is under test: routing, seed translation,
// two-phase merge, scan-decision mirroring, and slot rebasing.
func CheckSharded(seed int64, queries int) error {
	r := rand.New(rand.NewSource(seed))
	ds := GenDataset(r)
	defer ds.DB.Close()
	dimFields, dimRows := wireTable(ds.Dim)
	factFields, factRows := wireTable(ds.Fact)

	ctx := context.Background()
	ref, closeRef, err := startRefServer()
	if err != nil {
		return err
	}
	defer closeRef()
	coords := make([]*serverclient.Client, len(ShardCounts))
	for i, n := range ShardCounts {
		c, closeCoord, err := startCoordServer(n)
		if err != nil {
			return err
		}
		defer closeCoord()
		coords[i] = c
	}
	ingestAll := func(c *serverclient.Client, factDist string) error {
		if err := c.CreateTableDist(ctx, "dim", dimFields, dimRows, "g", "replicate"); err != nil {
			return fmt.Errorf("difftest: sharded seed %d: ingest dim: %w", seed, err)
		}
		if err := c.CreateTableDist(ctx, "fact", factFields, factRows, "", factDist); err != nil {
			return fmt.Errorf("difftest: sharded seed %d: ingest fact: %w", seed, err)
		}
		return nil
	}
	if err := ingestAll(ref, ""); err != nil {
		return err
	}
	for _, c := range coords {
		if err := ingestAll(c, "shard"); err != nil {
			return err
		}
	}

	for _, strategy := range shardStrategies {
		for _, compress := range []bool{false, true} {
			cfg := fmt.Sprintf("strategy=%s compress=%v", strategy, compress)
			refSess, err := ref.NewSession(ctx)
			if err != nil {
				return fmt.Errorf("difftest: sharded seed %d %s: reference session: %w", seed, cfg, err)
			}
			sessions := make([]*serverclient.Session, len(coords))
			for i, c := range coords {
				if sessions[i], err = c.NewSession(ctx); err != nil {
					return fmt.Errorf("difftest: sharded seed %d %s shards=%d: session: %w", seed, cfg, ShardCounts[i], err)
				}
			}
			for qi := 0; qi < queries; qi++ {
				sqlText, keys := genShardSQL(r, ds)
				name := fmt.Sprintf("q%d", qi)
				req := serverclient.QueryRequest{SQL: sqlText, Strategy: strategy, Compress: compress}
				want, err := refSess.Run(ctx, name, req)
				if err != nil {
					return fmt.Errorf("difftest: sharded seed %d %s query %d (%s): reference run: %w", seed, cfg, qi, sqlText, err)
				}
				for i, sess := range sessions {
					got, err := sess.Run(ctx, name, req)
					if err != nil {
						return fmt.Errorf("difftest: sharded seed %d %s shards=%d query %d (%s): run: %w", seed, cfg, ShardCounts[i], qi, sqlText, err)
					}
					if err := diffWire(want, got); err != nil {
						return fmt.Errorf("difftest: sharded seed %d %s shards=%d query %d (%s): %w", seed, cfg, ShardCounts[i], qi, sqlText, err)
					}
				}
				for ti, tr := range genShardTraces(r, ds, keys, want.N) {
					wantT, err := refSess.Trace(ctx, name, tr)
					if err != nil {
						return fmt.Errorf("difftest: sharded seed %d %s query %d (%s) trace %d (%+v): reference: %w", seed, cfg, qi, sqlText, ti, tr, err)
					}
					for i, sess := range sessions {
						gotT, err := sess.Trace(ctx, name, tr)
						if err != nil {
							return fmt.Errorf("difftest: sharded seed %d %s shards=%d query %d (%s) trace %d (%+v): %w", seed, cfg, ShardCounts[i], qi, sqlText, ti, tr, err)
						}
						if err := diffWire(wantT, gotT); err != nil {
							return fmt.Errorf("difftest: sharded seed %d %s shards=%d query %d (%s) trace %d (%+v): %w", seed, cfg, ShardCounts[i], qi, sqlText, ti, tr, err)
						}
					}
				}
			}
			if err := refSess.Close(ctx); err != nil {
				return fmt.Errorf("difftest: sharded seed %d %s: reference session close: %w", seed, cfg, err)
			}
			for i, sess := range sessions {
				if err := sess.Close(ctx); err != nil {
					return fmt.Errorf("difftest: sharded seed %d %s shards=%d: session close: %w", seed, cfg, ShardCounts[i], err)
				}
			}
		}
	}
	return nil
}

// genShardSQL builds one randomized scatterable SPJA statement: a grouped
// aggregation over the sharded fact table, optionally joined against the
// replicated dim. COUNT(DISTINCT), HAVING, ORDER BY, and LIMIT are fenced
// under scatter, so the generator stays inside the supported surface — the
// fences themselves are pinned by the shard package's own tests.
func genShardSQL(r *rand.Rand, ds *Dataset) (string, []string) {
	aggs := "COUNT(*) AS cnt"
	if r.Intn(2) == 0 {
		aggs += ", SUM(v) AS sum_v"
	}
	if r.Intn(2) == 0 {
		aggs += ", MIN(v) AS min_v"
	}
	if r.Intn(3) == 0 {
		aggs += ", AVG(v) AS avg_v"
	}
	where := ""
	switch r.Intn(4) {
	case 0:
	case 1:
		where = fmt.Sprintf(" WHERE v <= %d", r.Intn(100))
	case 2:
		where = fmt.Sprintf(" WHERE b = %d", r.Intn(6))
	default:
		where = fmt.Sprintf(" WHERE s = 'S1' OR v > %d", r.Intn(80))
	}
	if r.Intn(2) == 0 {
		keys := [][]string{{"b"}, {"s"}, {"k"}, {"b", "s"}}[r.Intn(4)]
		cols := keys[0]
		for _, k := range keys[1:] {
			cols += ", " + k
		}
		return fmt.Sprintf("SELECT %s, %s FROM fact%s GROUP BY %s", cols, aggs, where, cols), keys
	}
	// Joins write the sharded fact LAST — the probe side. That is the only
	// join shape the coordinator admits, and it makes every order additive.
	key := []string{"label", "b"}[r.Intn(2)]
	return fmt.Sprintf("SELECT %s, %s FROM dim JOIN fact ON fact.k = dim.g%s GROUP BY %s", key, aggs, where, key), []string{key}
}

// genShardTraces builds the trace battery for one retained result: explicit
// global rids (the seed-translation path), trace-all and key-predicate seeds
// (the scan-decision mirror on single-table bases; per-seed order-exact gather
// on probe-last joins), a non-key predicate seed (always per-seed), filtered
// and consuming variants, and forward traces both rid- and predicate-seeded.
// outN gates rid selection so every seed is globally valid.
func genShardTraces(r *rand.Rand, ds *Dataset, keys []string, outN int) []serverclient.TraceRequest {
	trs := []serverclient.TraceRequest{
		{Direction: "forward", Table: "fact", Rids: []int64{int64(r.Intn(ds.FactN)), int64(r.Intn(ds.FactN))}},
		{Direction: "forward", Table: "fact", SeedWhere: fmt.Sprintf("v < %d", r.Intn(60)), Where: "cnt > 1"},
	}
	trs = append(trs,
		serverclient.TraceRequest{Direction: "backward", Table: "fact"},
		serverclient.TraceRequest{Direction: "backward", Table: "fact", SeedWhere: fmt.Sprintf("cnt >= %d", 1+r.Intn(20))},
	)
	if outN > 0 {
		rids := []int64{int64(r.Intn(outN))}
		if outN > 1 {
			rids = append(rids, int64(r.Intn(outN)))
		}
		trs = append(trs,
			serverclient.TraceRequest{Direction: "backward", Table: "fact", Rids: rids},
			serverclient.TraceRequest{Direction: "backward", Table: "fact", Rids: rids, Where: fmt.Sprintf("b < %d", 1+r.Intn(8))},
			serverclient.TraceRequest{Direction: "backward", Table: "fact", Rids: rids,
				GroupBy: []string{"b"}, Aggs: []serverclient.Agg{{Fn: "count", Name: "n"}, {Fn: "sum", Arg: "v", Name: "sv"}}},
		)
	}
	if pred := keySeedPred(r, keys[0]); pred != "" {
		trs = append(trs,
			serverclient.TraceRequest{Direction: "backward", Table: "fact", SeedWhere: pred},
			serverclient.TraceRequest{Direction: "backward", Table: "fact", SeedWhere: pred,
				GroupBy: []string{"s"}, Aggs: []serverclient.Agg{{Fn: "count", Name: "n"}, {Fn: "max", Arg: "v", Name: "mx"}}},
		)
	}
	return trs
}

// keySeedPred builds a seed predicate over a group-key column — the shape
// whose scan-vs-index decision the coordinator mirrors globally.
func keySeedPred(r *rand.Rand, key string) string {
	switch key {
	case "b", "k":
		return fmt.Sprintf("%s >= %d", key, r.Intn(6))
	case "s":
		return fmt.Sprintf("s = 'S%d'", r.Intn(3))
	case "label":
		return fmt.Sprintf("label = 'L%d'", r.Intn(4))
	}
	return ""
}

// diffWire compares two wire results: schema, cardinality, group counts, and
// every cell — ints and strings exact, floats within relative 1e-9 (parallel
// and merged float addition reassociates).
func diffWire(want, got *serverclient.Result) error {
	if got.N != want.N || len(got.Rows) != len(want.Rows) {
		return fmt.Errorf("rows: %d, want %d", got.N, want.N)
	}
	if len(got.Columns) != len(want.Columns) {
		return fmt.Errorf("columns: %d, want %d", len(got.Columns), len(want.Columns))
	}
	for i := range want.Columns {
		if got.Columns[i] != want.Columns[i] || got.Types[i] != want.Types[i] {
			return fmt.Errorf("schema col %d: %s/%s, want %s/%s", i, got.Columns[i], got.Types[i], want.Columns[i], want.Types[i])
		}
	}
	if len(got.GroupCounts) != len(want.GroupCounts) {
		return fmt.Errorf("group counts: %d, want %d", len(got.GroupCounts), len(want.GroupCounts))
	}
	for i := range want.GroupCounts {
		if got.GroupCounts[i] != want.GroupCounts[i] {
			return fmt.Errorf("group count %d: %d, want %d", i, got.GroupCounts[i], want.GroupCounts[i])
		}
	}
	for ri := range want.Rows {
		for ci := range want.Rows[ri] {
			w, g := want.Rows[ri][ci], got.Rows[ri][ci]
			if wf, ok := w.(float64); ok {
				gf, ok := g.(float64)
				if !ok {
					return fmt.Errorf("row %d col %d: %T, want float64", ri, ci, g)
				}
				if !floatsClose(wf, gf) {
					return fmt.Errorf("row %d col %d: %v, want %v", ri, ci, gf, wf)
				}
				continue
			}
			if g != w {
				return fmt.Errorf("row %d col %d: %v (%T), want %v (%T)", ri, ci, g, g, w, w)
			}
		}
	}
	return nil
}

// wireTable converts a generated relation to the HTTP ingest shape.
func wireTable(rel *storage.Relation) ([]serverclient.Field, [][]any) {
	fields := make([]serverclient.Field, len(rel.Schema))
	for i, f := range rel.Schema {
		switch f.Type {
		case storage.TInt:
			fields[i] = serverclient.Field{Name: f.Name, Type: "int"}
		case storage.TFloat:
			fields[i] = serverclient.Field{Name: f.Name, Type: "float"}
		default:
			fields[i] = serverclient.Field{Name: f.Name, Type: "string"}
		}
	}
	rows := make([][]any, rel.N)
	for r := 0; r < rel.N; r++ {
		row := make([]any, len(rel.Schema))
		for c, f := range rel.Schema {
			switch f.Type {
			case storage.TInt:
				row[c] = rel.Cols[c].Ints[r]
			case storage.TFloat:
				row[c] = rel.Cols[c].Floats[r]
			default:
				row[c] = rel.Cols[c].Strs[r]
			}
		}
		rows[r] = row
	}
	return fields, rows
}

// startRefServer spins up the single-node reference over HTTP.
func startRefServer() (*serverclient.Client, func(), error) {
	db := core.Open(core.WithWorkers(3))
	srv := server.New(server.Config{DB: db})
	ts := httptest.NewServer(srv)
	closeAll := func() {
		ts.Close()
		_ = srv.Close()
		db.Close()
	}
	return serverclient.New(ts.URL, nil), closeAll, nil
}

// startCoordServer spins up an n-shard coordinator over HTTP.
func startCoordServer(n int) (*serverclient.Client, func(), error) {
	coord := shard.New(shard.Config{Shards: n, ShardTimeout: 30 * time.Second})
	ts := httptest.NewServer(coord)
	closeAll := func() {
		ts.Close()
		_ = coord.Close()
	}
	return serverclient.New(ts.URL, nil), closeAll, nil
}
