// Package difftest is a differential lineage-equivalence harness: it
// generates randomized (seeded, reproducible) SPJA queries over generated
// data and runs each one under every capture configuration the engine
// supports — serial and morsel-parallel, Inject and Defer, raw and compressed
// indexes — asserting that every configuration produces the same output
// relation and element-identical lineage as the serial/Inject/raw reference.
//
// The harness is the cross-cutting correctness gate for the optimization
// layers: the morsel merge (internal/lineage/merge.go), the Defer rebuild
// pass, and the encoded representations (internal/lineage/encoded.go) all
// claim exact equivalence with naive serial Inject capture; this is where
// those claims meet adversarial query shapes instead of hand-picked
// fixtures. difftest_test.go runs it under `go test ./...`.
package difftest

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"smoke/internal/core"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/storage"
)

// Variant is one capture configuration under test.
type Variant struct {
	Name string
	Opts core.CaptureOptions
}

// Variants enumerates the configurations. The first entry is the reference:
// serial, Inject, raw indexes — the paper's original capture path.
func Variants() []Variant {
	var vs []Variant
	for _, mode := range []struct {
		name string
		m    ops.CaptureMode
	}{{"inject", ops.Inject}, {"defer", ops.Defer}} {
		for _, par := range []struct {
			name string
			w    int
		}{{"serial", 1}, {"par3", 3}} {
			for _, comp := range []struct {
				name string
				c    bool
			}{{"raw", false}, {"compressed", true}} {
				vs = append(vs, Variant{
					Name: fmt.Sprintf("%s/%s/%s", par.name, mode.name, comp.name),
					Opts: core.CaptureOptions{Mode: mode.m, Parallelism: par.w, Compress: comp.c},
				})
			}
		}
	}
	// Move the reference (serial/inject/raw) to the front.
	sort.SliceStable(vs, func(i, j int) bool { return vs[i].Name == "serial/inject/raw" && vs[j].Name != "serial/inject/raw" })
	return vs
}

// Dataset is a generated dim/fact pair registered in a DB.
type Dataset struct {
	DB    *core.DB
	Dim   *storage.Relation
	Fact  *storage.Relation
	DimN  int
	FactN int
}

// GenDataset builds a randomized pk-fk dataset: dim(g pk, label, w) and
// fact(k fk→dim.g, b, s, v). Sizes and value distributions vary with the
// seed so group counts, duplicate keys, unmatched fks, and empty-ish groups
// all occur across seeds.
func GenDataset(r *rand.Rand) *Dataset {
	dimN := 20 + r.Intn(80)
	factN := 500 + r.Intn(2000)

	dim := storage.NewRelation("dim", storage.Schema{
		{Name: "g", Type: storage.TInt},
		{Name: "label", Type: storage.TString},
		{Name: "w", Type: storage.TFloat},
	}, dimN)
	gs := dim.Cols[0].Ints
	labels := dim.Cols[1].Strs
	ws := dim.Cols[2].Floats
	for i := 0; i < dimN; i++ {
		gs[i] = int64(i)
		labels[i] = fmt.Sprintf("L%d", i%(3+r.Intn(5)))
		ws[i] = math.Round(r.Float64()*1000) / 10
	}

	fact := storage.NewRelation("fact", storage.Schema{
		{Name: "k", Type: storage.TInt},
		{Name: "b", Type: storage.TInt},
		{Name: "s", Type: storage.TString},
		{Name: "v", Type: storage.TFloat},
	}, factN)
	ks := fact.Cols[0].Ints
	bs := fact.Cols[1].Ints
	ss := fact.Cols[2].Strs
	vs := fact.Cols[3].Floats
	// A slice of fks reference beyond the dim domain (unmatched probe rows).
	kDomain := dimN + r.Intn(10)
	bDomain := 2 + r.Intn(10)
	for i := 0; i < factN; i++ {
		ks[i] = int64(r.Intn(kDomain))
		bs[i] = int64(r.Intn(bDomain))
		ss[i] = fmt.Sprintf("S%d", bs[i]%3)
		vs[i] = math.Round(r.Float64()*10000) / 100
	}

	db := core.Open(core.WithWorkers(3))
	db.Register(dim)
	db.Register(fact)
	return &Dataset{DB: db, Dim: dim, Fact: fact, DimN: dimN, FactN: factN}
}

// GenQuery builds one randomized SPJA query against the dataset, returning
// the builder (invoked fresh per run — a core.Query is single-use), a
// human-readable description of its shape for failure messages, and whether
// the query is single-table (consuming queries are only defined over
// single-table results).
func GenQuery(ds *Dataset, r *rand.Rand) (func() *core.Query, string, bool) {
	factFilter := genFactFilter(r)
	if r.Intn(2) == 0 {
		// Single-table aggregation over fact.
		keys := [][]string{{"b"}, {"s"}, {"k"}, {"b", "s"}, {"k", "b"}}[r.Intn(5)]
		aggs := genAggs(r, true)
		desc := fmt.Sprintf("single-table group by %v, %d aggs, filter=%v", keys, len(aggs), factFilter)
		return func() *core.Query {
			q := ds.DB.Query().From("fact", factFilter).GroupBy(keys...)
			for _, a := range aggs {
				q = q.Agg(a.fn, a.arg, a.name)
			}
			return q
		}, desc, true
	}
	// pk-fk join: dim ⋈ fact.
	dimFilter := genDimFilter(r)
	key := []string{"label", "b", "w"}[r.Intn(3)]
	aggs := genAggs(r, false)
	desc := fmt.Sprintf("join group by %s, %d aggs, dimFilter=%v, factFilter=%v", key, len(aggs), dimFilter, factFilter)
	return func() *core.Query {
		q := ds.DB.Query().
			From("dim", dimFilter).
			Join("fact", factFilter, "dim", "g", "k").
			GroupBy(key)
		for _, a := range aggs {
			q = q.Agg(a.fn, a.arg, a.name)
		}
		return q
	}, desc, false
}

type aggDef struct {
	fn   ops.AggFn
	arg  expr.Expr
	name string
}

// genAggs always includes COUNT(*) and adds a random subset of the numeric
// aggregates; CountDistinct only on the single-table path (the fused SPJA
// executor does not support it).
func genAggs(r *rand.Rand, singleTable bool) []aggDef {
	aggs := []aggDef{{ops.Count, nil, "cnt"}}
	if r.Intn(2) == 0 {
		aggs = append(aggs, aggDef{ops.Sum, expr.C("v"), "sum_v"})
	}
	if r.Intn(2) == 0 {
		aggs = append(aggs, aggDef{ops.Min, expr.C("v"), "min_v"})
	}
	if r.Intn(2) == 0 {
		aggs = append(aggs, aggDef{ops.Max, expr.C("v"), "max_v"})
	}
	if r.Intn(3) == 0 {
		aggs = append(aggs, aggDef{ops.Avg, expr.C("v"), "avg_v"})
	}
	if singleTable && r.Intn(3) == 0 {
		aggs = append(aggs, aggDef{ops.CountDistinct, expr.C("b"), "cd_b"})
	}
	return aggs
}

func genFactFilter(r *rand.Rand) expr.Expr {
	switch r.Intn(5) {
	case 0:
		return nil
	case 1:
		return expr.LeE(expr.C("v"), expr.F(float64(r.Intn(100))))
	case 2:
		return expr.EqE(expr.C("b"), expr.I(int64(r.Intn(10))))
	case 3:
		return expr.Or{
			L: expr.EqE(expr.C("s"), expr.S("S1")),
			R: expr.GtE(expr.C("v"), expr.F(float64(r.Intn(80)))),
		}
	default:
		// A sometimes-empty selection: zero-match lineage shapes must agree too.
		return expr.LtE(expr.C("v"), expr.F(float64(r.Intn(3))))
	}
}

func genDimFilter(r *rand.Rand) expr.Expr {
	switch r.Intn(3) {
	case 0:
		return nil
	case 1:
		return expr.LeE(expr.C("w"), expr.F(float64(r.Intn(100))))
	default:
		return expr.EqE(expr.C("label"), expr.S("L1"))
	}
}

// Check runs one seeded differential session: queries randomized SPJA blocks
// and fails (with the offending query shape, variant, and rid) on the first
// divergence from the reference configuration.
func Check(seed int64, queries int) error {
	r := rand.New(rand.NewSource(seed))
	ds := GenDataset(r)
	defer ds.DB.Close()
	variants := Variants()
	if variants[0].Name != "serial/inject/raw" {
		return fmt.Errorf("difftest: variant order broken: %q first", variants[0].Name)
	}

	for qi := 0; qi < queries; qi++ {
		build, desc, singleTable := GenQuery(ds, r)
		ref, err := build().Run(variants[0].Opts)
		if err != nil {
			return fmt.Errorf("difftest: seed %d query %d (%s): reference run: %w", seed, qi, desc, err)
		}
		var refCons *core.Result
		var consSpec ops.GroupBySpec
		if singleTable && ref.Out.N > 0 {
			refCons, consSpec, err = consumeRef(ref)
			if err != nil {
				return fmt.Errorf("difftest: seed %d query %d (%s): reference consuming run: %w", seed, qi, desc, err)
			}
		}
		for _, v := range variants[1:] {
			got, err := build().Run(v.Opts)
			if err != nil {
				return fmt.Errorf("difftest: seed %d query %d (%s) variant %s: %w", seed, qi, desc, v.Name, err)
			}
			if err := diffResults(ref, got); err != nil {
				return fmt.Errorf("difftest: seed %d query %d (%s) variant %s: %w", seed, qi, desc, v.Name, err)
			}
			// Consuming queries must also be equivalent: re-aggregate the
			// backward rid set of output 0 over each variant's own capture,
			// itself captured with the variant's representation.
			if refCons != nil {
				rids, err := got.Backward("fact", []lineage.Rid{0})
				if err != nil {
					return fmt.Errorf("difftest: seed %d query %d (%s) variant %s: consuming rids: %w", seed, qi, desc, v.Name, err)
				}
				// The consuming run inherits the variant's parallelism: rid
				// sets with duplicates exercise the duplicate-tolerant
				// parallel aggregation against the serial reference.
				gotCons, err := got.ConsumeGroupBy(rids, consSpec, core.CaptureOptions{
					Mode: ops.Inject, Compress: v.Opts.Compress, Parallelism: v.Opts.Parallelism,
				})
				if err != nil {
					return fmt.Errorf("difftest: seed %d query %d (%s) variant %s: consuming run: %w", seed, qi, desc, v.Name, err)
				}
				if err := diffResults(refCons, gotCons); err != nil {
					return fmt.Errorf("difftest: seed %d query %d (%s) variant %s: consuming query: %w", seed, qi, desc, v.Name, err)
				}
			}
		}
	}
	return nil
}

// consumeRef runs the reference consuming query (raw, serial Inject) over
// the backward lineage of output 0. Callers only invoke it for non-empty
// single-table results, so every error is a genuine harness failure.
func consumeRef(ref *core.Result) (*core.Result, ops.GroupBySpec, error) {
	spec := ops.GroupBySpec{
		Keys: []string{"b"},
		Aggs: []ops.AggSpec{{Fn: ops.Count, Name: "c"}, {Fn: ops.Max, Arg: expr.C("v"), Name: "m"}},
	}
	rids, err := ref.Backward("fact", []lineage.Rid{0})
	if err != nil {
		return nil, spec, err
	}
	cons, err := ref.ConsumeGroupBy(rids, spec, core.CaptureOptions{Mode: ops.Inject, Parallelism: 1})
	if err != nil {
		return nil, spec, err
	}
	return cons, spec, nil
}

// diffResults compares output and lineage of got against the reference.
func diffResults(ref, got *core.Result) error {
	if err := diffRelation(ref.Out, got.Out); err != nil {
		return err
	}
	if len(ref.GroupCounts) != len(got.GroupCounts) {
		return fmt.Errorf("group counts: %d vs %d", len(got.GroupCounts), len(ref.GroupCounts))
	}
	for i := range ref.GroupCounts {
		if ref.GroupCounts[i] != got.GroupCounts[i] {
			return fmt.Errorf("group count %d: %d, want %d", i, got.GroupCounts[i], ref.GroupCounts[i])
		}
	}

	refRels := append([]string(nil), ref.Capture().Relations()...)
	gotRels := append([]string(nil), got.Capture().Relations()...)
	sort.Strings(refRels)
	sort.Strings(gotRels)
	if len(refRels) != len(gotRels) {
		return fmt.Errorf("captured relations %v, want %v", gotRels, refRels)
	}
	for i := range refRels {
		if refRels[i] != gotRels[i] {
			return fmt.Errorf("captured relations %v, want %v", gotRels, refRels)
		}
	}

	for _, rel := range refRels {
		// Backward: every output rid, element-identical (order and
		// duplicates — transformational semantics).
		for o := 0; o < ref.Out.N; o++ {
			rids := []lineage.Rid{lineage.Rid(o)}
			want, err := ref.Backward(rel, rids)
			if err != nil {
				return err
			}
			gotL, err := got.Backward(rel, rids)
			if err != nil {
				return err
			}
			if err := diffRids(want, gotL); err != nil {
				return fmt.Errorf("backward lineage of %s output %d: %w", rel, o, err)
			}
		}
		// Forward: every input rid.
		fwIx, err := ref.Capture().ForwardIndex(rel)
		if err != nil {
			return err
		}
		for in := 0; in < fwIx.Len(); in++ {
			rids := []lineage.Rid{lineage.Rid(in)}
			want, err := ref.Forward(rel, rids)
			if err != nil {
				return err
			}
			gotL, err := got.Forward(rel, rids)
			if err != nil {
				return err
			}
			if err := diffRids(want, gotL); err != nil {
				return fmt.Errorf("forward lineage of %s input %d: %w", rel, in, err)
			}
		}
	}
	return nil
}

func diffRids(want, got []lineage.Rid) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d rids, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("rid[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}

// diffRelation compares two output relations. Integer and string columns
// must match exactly; float columns tolerate last-ulp drift from
// partition-order float addition in parallel runs.
func diffRelation(want, got *storage.Relation) error {
	if want.N != got.N {
		return fmt.Errorf("output rows: %d, want %d", got.N, want.N)
	}
	if len(want.Schema) != len(got.Schema) {
		return fmt.Errorf("output columns: %d, want %d", len(got.Schema), len(want.Schema))
	}
	for c := range want.Schema {
		if want.Schema[c].Name != got.Schema[c].Name || want.Schema[c].Type != got.Schema[c].Type {
			return fmt.Errorf("schema col %d: %v, want %v", c, got.Schema[c], want.Schema[c])
		}
		switch want.Schema[c].Type {
		case storage.TInt:
			for i := 0; i < want.N; i++ {
				if want.Cols[c].Ints[i] != got.Cols[c].Ints[i] {
					return fmt.Errorf("col %s row %d: %d, want %d", want.Schema[c].Name, i, got.Cols[c].Ints[i], want.Cols[c].Ints[i])
				}
			}
		case storage.TString:
			for i := 0; i < want.N; i++ {
				if want.Cols[c].Strs[i] != got.Cols[c].Strs[i] {
					return fmt.Errorf("col %s row %d: %q, want %q", want.Schema[c].Name, i, got.Cols[c].Strs[i], want.Cols[c].Strs[i])
				}
			}
		case storage.TFloat:
			for i := 0; i < want.N; i++ {
				w, g := want.Cols[c].Floats[i], got.Cols[c].Floats[i]
				if !floatsClose(w, g) {
					return fmt.Errorf("col %s row %d: %v, want %v", want.Schema[c].Name, i, g, w)
				}
			}
		}
	}
	return nil
}

func floatsClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}
