package difftest

import (
	"fmt"
	"math/rand"

	"smoke/internal/exec"
	"smoke/internal/expr"
	"smoke/internal/lineage"
	"smoke/internal/ops"
	"smoke/internal/plan"
	"smoke/internal/pool"
)

// Trace differential checking: randomized backward/forward consuming queries
// (trace-then-aggregate plans) must produce element-identical output and
// lineage across every capture configuration — serial/par3 × Inject/Defer ×
// raw/compressed, through both optimizer lowerings — and the plan path's
// backward consuming queries must match the pre-plan serial path
// (Capture.Backward expansion + serial rid-set aggregation) exactly,
// duplicate rids included. This is the correctness gate for the physical
// trace operator and the duplicate-tolerant parallel aggregation.

// genTracePlan builds one randomized bound or unbound trace-then-aggregate
// plan over the dataset's fact table, returning the plan and a shape
// description. Bound traces reuse ref (an executed base aggregation);
// unbound traces re-execute the source inside the plan.
func genTracePlan(ds *Dataset, base plan.Node, bound *plan.BoundTrace, r *rand.Rand) (plan.Node, string) {
	var (
		node plan.Node
		desc string
	)
	backward := r.Intn(3) > 0 // forward traces are rarer, like the workloads
	if backward {
		bt := plan.Backward{Source: base, Table: "fact", Rel: ds.Fact}
		switch r.Intn(3) {
		case 0:
			// Explicit seeds with duplicates: the consuming (duplicate-rid)
			// case the pre-plan path handled serially.
			n := bound.Out.N
			if n == 0 {
				bt.SeedRids = []lineage.Rid{}
			} else {
				k := 1 + r.Intn(4)
				seeds := make([]lineage.Rid, 0, k+1)
				for i := 0; i < k; i++ {
					seeds = append(seeds, lineage.Rid(r.Intn(n)))
				}
				seeds = append(seeds, seeds[0]) // guaranteed duplicate seed
				bt.SeedRids = seeds
			}
			desc = "backward rid-seeded (dup)"
		case 1:
			bt.SeedPred = expr.GeE(expr.C("cnt"), expr.I(int64(1+r.Intn(3))))
			desc = "backward pred-seeded"
		default:
			desc = "backward all-seeds"
		}
		if r.Intn(2) == 0 {
			bt.Distinct = true
			desc += "+distinct"
		}
		if r.Intn(2) == 0 {
			bound := *bound
			bt.Bound = &bound
			desc += "+bound"
		}
		node = bt
	} else {
		ft := plan.Forward{Source: base, Table: "fact", Rel: ds.Fact}
		if r.Intn(2) == 0 {
			n := ds.Fact.N
			k := 1 + r.Intn(6)
			seeds := make([]lineage.Rid, 0, k+1)
			for i := 0; i < k; i++ {
				seeds = append(seeds, lineage.Rid(r.Intn(n)))
			}
			seeds = append(seeds, seeds[0])
			ft.SeedRids = seeds
			desc = "forward rid-seeded (dup)"
		} else {
			ft.SeedPred = genFactFilter(r)
			if ft.SeedPred == nil {
				ft.SeedPred = expr.LeE(expr.C("v"), expr.F(50))
			}
			desc = "forward pred-seeded"
		}
		if r.Intn(2) == 0 {
			bound := *bound
			ft.Bound = &bound
			desc += "+bound"
		}
		node = ft
	}

	// Consuming aggregation on top (sometimes with a consuming filter the
	// optimizer sinks into the trace), sometimes a bare trace.
	if backward && r.Intn(4) > 0 {
		var child plan.Node = node
		if r.Intn(2) == 0 {
			child = plan.Filter{Child: child, Pred: expr.LeE(expr.C("v"), expr.F(float64(r.Intn(100))))}
			desc += "+filter"
		}
		gb := plan.GroupBy{Child: child, Keys: []string{[]string{"b", "s"}[r.Intn(2)]},
			Aggs: []plan.AggDef{{Fn: ops.Count, Name: "n"}, {Fn: ops.Sum, Arg: expr.C("v"), Name: "sv"}}}
		return gb, desc + "+groupby"
	}
	return node, desc
}

// CheckTrace runs one seeded trace differential session: a base aggregation
// runs once with full capture, and randomized consuming plans over it are
// compared across every capture configuration and against the pre-plan
// serial consuming path.
func CheckTrace(seed int64, queries int) error {
	r := rand.New(rand.NewSource(seed))
	ds := GenDataset(r)
	defer ds.DB.Close()
	pl := pool.New(3)
	defer pl.Close()

	base := plan.Node(plan.GroupBy{
		Child: plan.Scan{Table: "fact", Rel: ds.Fact, Filter: genFactFilter(r)},
		Keys:  []string{"k"},
		Aggs:  []plan.AggDef{{Fn: ops.Count, Name: "cnt"}, {Fn: ops.Max, Arg: expr.C("v"), Name: "mx"}},
	})
	baseRes, err := exec.RunPlan(base, exec.PlanOpts{Mode: ops.Inject})
	if err != nil {
		return fmt.Errorf("difftest: trace seed %d: base run: %w", seed, err)
	}
	bound := &plan.BoundTrace{Out: baseRes.Out, Capture: baseRes.Capture}

	for qi := 0; qi < queries; qi++ {
		n, desc := genTracePlan(ds, base, bound, r)
		what := fmt.Sprintf("trace seed %d plan %d (%s)", seed, qi, desc)
		if err := checkPlanVariants(ds.DB, n, pl, what); err != nil {
			return err
		}
		if err := checkAgainstPrePlanPath(ds, n, bound, what); err != nil {
			return err
		}
	}
	return nil
}

// checkAgainstPrePlanPath compares a GroupBy-over-Backward plan (no
// consuming filter, no distinct — the exact shape Result.ConsumeGroupBy
// serves) against the pre-plan path: serial index expansion
// (Capture.Backward) followed by the serial rid-set aggregation.
func checkAgainstPrePlanPath(ds *Dataset, n plan.Node, bound *plan.BoundTrace, what string) error {
	gb, ok := n.(plan.GroupBy)
	if !ok {
		return nil
	}
	bt, ok := gb.Child.(plan.Backward)
	if !ok || bt.Bound == nil || bt.Distinct || bt.SeedPred != nil || bt.Filter != nil {
		return nil
	}
	seeds := bt.SeedRids
	if seeds == nil {
		seeds = make([]lineage.Rid, bound.Out.N)
		for i := range seeds {
			seeds[i] = lineage.Rid(i)
		}
	}
	expanded, err := bound.Capture.Backward("fact", seeds)
	if err != nil {
		return fmt.Errorf("difftest: %s: pre-plan expansion: %w", what, err)
	}
	if expanded == nil {
		expanded = []lineage.Rid{}
	}
	spec := ops.GroupBySpec{Keys: gb.Keys}
	for i, a := range gb.Aggs {
		spec.Aggs = append(spec.Aggs, ops.AggSpec{Fn: a.Fn, Arg: a.Arg, Name: a.OutName(i)})
	}
	direct, err := ops.HashAgg(ds.Fact, expanded, spec, ops.AggOpts{Mode: ops.Inject, Dirs: ops.CaptureBoth})
	if err != nil {
		return fmt.Errorf("difftest: %s: pre-plan aggregation: %w", what, err)
	}
	got, err := exec.RunPlan(n, exec.PlanOpts{Mode: ops.Inject})
	if err != nil {
		return fmt.Errorf("difftest: %s: plan run: %w", what, err)
	}
	if err := diffRelation(direct.Out, got.Out); err != nil {
		return fmt.Errorf("difftest: %s: plan path diverges from pre-plan path: %w", what, err)
	}
	for o := 0; o < direct.Out.N; o++ {
		want := direct.BW.List(o)
		gotL, err := got.Capture.Backward("fact", []lineage.Rid{lineage.Rid(o)})
		if err != nil {
			return err
		}
		if err := diffRids(want, gotL); err != nil {
			return fmt.Errorf("difftest: %s: backward lineage of output %d diverges from pre-plan path: %w", what, o, err)
		}
	}
	return nil
}
