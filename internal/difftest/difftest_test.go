package difftest

import (
	"math/rand"
	"testing"
)

// TestDifferentialLineageEquivalence is the archetype gate: randomized SPJA
// queries must produce element-identical lineage (and equal output) under
// serial, morsel-parallel, Inject, Defer, and compressed capture.
func TestDifferentialLineageEquivalence(t *testing.T) {
	seeds := []int64{1, 42, 2026}
	queries := 8
	if testing.Short() {
		seeds = seeds[:1]
		queries = 4
	}
	for _, seed := range seeds {
		if err := Check(seed, queries); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMultiBlockDifferentialEquivalence is the plan-layer gate: randomized
// multi-block plans (fusible star blocks with HAVING/ORDER BY/LIMIT residue,
// aggregations over joins over grouped subqueries, group-bys over set unions)
// plus fixed multi-block SQL queries must be element-identical across
// fused/generic lowering × serial/par3 × Inject/Defer × raw/compressed.
func TestMultiBlockDifferentialEquivalence(t *testing.T) {
	seeds := []int64{3, 77, 2027}
	plans := 6
	if testing.Short() {
		seeds = seeds[:1]
		plans = 3
	}
	for _, seed := range seeds {
		if err := CheckMultiBlock(seed, plans); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTraceDifferentialEquivalence is the consuming-query gate: randomized
// backward/forward trace-then-aggregate plans (bound and unbound, rid- and
// predicate-seeded, duplicate seeds included) must be element-identical
// across fused/generic × serial/par3 × Inject/Defer × raw/compressed, and
// the plan path must match the pre-plan serial consuming path exactly.
func TestTraceDifferentialEquivalence(t *testing.T) {
	seeds := []int64{5, 91, 2028}
	queries := 10
	if testing.Short() {
		seeds = seeds[:1]
		queries = 5
	}
	for _, seed := range seeds {
		if err := CheckTrace(seed, queries); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStrategyDifferentialEquivalence is the trace-strategy gate: eager,
// lazy, and hybrid capture (× serial/par3 × raw/compressed) must answer
// rid-seeded and predicate-seeded traces element-identically on randomized
// SPJA plans — the lazy re-execution path and the hybrid directional split
// are indistinguishable from the captured indexes they replace.
func TestStrategyDifferentialEquivalence(t *testing.T) {
	seeds := []int64{9, 53, 2029}
	queries := 6
	if testing.Short() {
		seeds = seeds[:1]
		queries = 3
	}
	for _, seed := range seeds {
		if err := CheckStrategies(seed, queries); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStrategyVariantsCoverTheMatrix pins the strategy matrix: 3 strategies
// × 2 parallelism levels × 2 representations.
func TestStrategyVariantsCoverTheMatrix(t *testing.T) {
	vs := StrategyVariants()
	if len(vs) != 12 {
		t.Fatalf("got %d strategy variants, want 12", len(vs))
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.Name] {
			t.Fatalf("duplicate variant %q", v.Name)
		}
		seen[v.Name] = true
	}
	for _, want := range []string{
		"eager/serial/raw", "lazy/par3/compressed", "hybrid/par3/raw",
		"lazy/serial/raw", "hybrid/serial/compressed",
	} {
		if !seen[want] {
			t.Fatalf("missing variant %q", want)
		}
	}
}

// TestPlanVariantsCoverTheMatrix pins the multi-block matrix: 2 lowerings ×
// 2 parallelism levels × 2 modes × 2 representations, reference first.
func TestPlanVariantsCoverTheMatrix(t *testing.T) {
	vs := PlanVariants(nil)
	if len(vs) != 16 {
		t.Fatalf("got %d plan variants, want 16", len(vs))
	}
	if vs[0].Name != "generic/serial/inject/raw" {
		t.Fatalf("reference variant is %q", vs[0].Name)
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.Name] {
			t.Fatalf("duplicate variant %q", v.Name)
		}
		seen[v.Name] = true
	}
	for _, want := range []string{
		"generic/par3/defer/compressed", "fused/serial/inject/raw",
		"fused/par3/inject/compressed", "fused/par3/defer/raw",
	} {
		if !seen[want] {
			t.Fatalf("missing variant %q", want)
		}
	}
}

// TestVariantsCoverTheMatrix pins the configuration matrix: 2 modes × 2
// parallelism levels × 2 representations, reference first.
func TestVariantsCoverTheMatrix(t *testing.T) {
	vs := Variants()
	if len(vs) != 8 {
		t.Fatalf("got %d variants, want 8", len(vs))
	}
	if vs[0].Name != "serial/inject/raw" {
		t.Fatalf("reference variant is %q", vs[0].Name)
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.Name] {
			t.Fatalf("duplicate variant %q", v.Name)
		}
		seen[v.Name] = true
	}
	for _, want := range []string{
		"serial/inject/raw", "serial/inject/compressed",
		"serial/defer/raw", "serial/defer/compressed",
		"par3/inject/raw", "par3/inject/compressed",
		"par3/defer/raw", "par3/defer/compressed",
	} {
		if !seen[want] {
			t.Fatalf("missing variant %q", want)
		}
	}
}

// TestGenDatasetDeterministic pins seeded reproducibility: the harness must
// generate identical data for identical seeds (failure reports reference the
// seed, so replays have to reproduce the exact session).
func TestGenDatasetDeterministic(t *testing.T) {
	r1 := newSeeded(7)
	r2 := newSeeded(7)
	d1 := GenDataset(r1)
	defer d1.DB.Close()
	d2 := GenDataset(r2)
	defer d2.DB.Close()
	if d1.FactN != d2.FactN || d1.DimN != d2.DimN {
		t.Fatalf("sizes differ: (%d,%d) vs (%d,%d)", d1.DimN, d1.FactN, d2.DimN, d2.FactN)
	}
	for i := 0; i < d1.FactN; i++ {
		if d1.Fact.Cols[0].Ints[i] != d2.Fact.Cols[0].Ints[i] {
			t.Fatalf("fact.k[%d] differs", i)
		}
	}
}

func newSeeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestRestartDifferentialEquivalence is the out-of-core gate: captured
// results persisted to a data dir, reopened in a fresh process-equivalent,
// must answer backward/forward traces element-identically to pre-restart —
// raw and compressed captures both (the disk tier stores the encoded chunk
// representation either way).
func TestRestartDifferentialEquivalence(t *testing.T) {
	seeds := []int64{5, 99}
	queries := 4
	if testing.Short() {
		seeds = seeds[:1]
		queries = 2
	}
	for _, seed := range seeds {
		if err := CheckRestart(t.TempDir(), seed, queries); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedDifferentialEquivalence is the horizontal-scaling gate:
// randomized scatterable SPJA queries and bound backward/forward traces must
// answer element-identically through a sharded coordinator (shards 1, 2, 4 ×
// eager/lazy/hybrid × raw/compressed) as through a single node, end to end
// over the HTTP API.
func TestShardedDifferentialEquivalence(t *testing.T) {
	seeds := []int64{11, 2030}
	queries := 3
	if testing.Short() {
		seeds = seeds[:1]
		queries = 2
	}
	for _, seed := range seeds {
		if err := CheckSharded(seed, queries); err != nil {
			t.Fatal(err)
		}
	}
}
