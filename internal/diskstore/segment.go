package diskstore

// Segment file format. A segment persists either one relation or one retained
// result (output relation + group counts + encoded lineage indexes + base
// relations), laid out mmap-friendly:
//
//	[0, 8)      magic "SMKSEG1\n"
//	[4096, ...) sections, each starting on a 4096-byte page boundary
//	...         JSON directory (segMeta)
//	trailer     uint32 LE directory length | magic (the file's last 12 bytes)
//
// The JSON directory names every section with its absolute offset, length,
// and CRC32. Putting the directory at the tail (like an SSTable footer) means
// every section offset is known before the directory is marshaled, and a
// torn write is detectable from the trailer alone. Page alignment does
// double duty: every section is naturally aligned for the unsafe casts to
// []int64 / []uint32 / []int32 views over the mapping, and an encoded
// index's offs directory sits on its own pages so a trace faults in only the
// directory plus the chunk pages its seeds touch.
//
// Integer sections are native-endian (the store is a cache local to one
// machine, not an interchange format); the magic would have to be versioned
// before a cross-architecture reader could exist.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"unsafe"

	"smoke/internal/lineage"
	"smoke/internal/serr"
	"smoke/internal/storage"
)

const (
	segMagic = "SMKSEG1\n"
	pageSize = 4096
)

type sectionMeta struct {
	Name string `json:"name"`
	Off  int64  `json:"off"`
	Len  int64  `json:"len"`
	CRC  uint32 `json:"crc"`
}

type fieldMeta struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
}

type relMeta struct {
	Name   string      `json:"name"`
	N      int         `json:"n"`
	Fields []fieldMeta `json:"fields"`
}

// indexMeta describes one persisted lineage index. Kind is the physical
// representation: "arr" (raw 1-to-1 rid array), "encarr" (EncodedArr run
// directory), or "encmany" (EncodedIndex chunk store). Raw 1-to-N indexes
// are encoded before they are written — the chunked encoding IS the
// persistence format — so "rawmany" does not exist on disk.
type indexMeta struct {
	Sec  string `json:"sec"` // section-name prefix inside the segment
	Rel  string `json:"rel"`
	Dir  string `json:"dir"`  // "bw" | "fw"
	Kind string `json:"kind"` // "arr" | "encarr" | "encmany"
	N    int    `json:"n"`
	Card int    `json:"card,omitempty"`
}

// baseMeta names one base relation a result's capture refers to and the
// shared relation segment holding its data (a published table's segment, or
// a standalone spill written on first demotion).
type baseMeta struct {
	Table string `json:"table"`
	File  string `json:"file"`
}

type resultMeta struct {
	Out         relMeta     `json:"out"`
	GroupCounts bool        `json:"group_counts,omitempty"`
	Indexes     []indexMeta `json:"indexes"`
	Bases       []baseMeta  `json:"bases,omitempty"`
}

type segMeta struct {
	Kind     string        `json:"kind"` // "relation" | "result"
	Relation *relMeta      `json:"relation,omitempty"`
	Result   *resultMeta   `json:"result,omitempty"`
	Sections []sectionMeta `json:"sections"`
}

// segWriter accumulates named sections, then writes the segment via the
// crash-safe temp + fsync + rename protocol.
type segWriter struct {
	meta     segMeta
	payloads [][]byte
}

func (w *segWriter) add(name string, payload []byte) {
	w.meta.Sections = append(w.meta.Sections, sectionMeta{
		Name: name,
		Len:  int64(len(payload)),
		CRC:  crc32.ChecksumIEEE(payload),
	})
	w.payloads = append(w.payloads, payload)
}

// writeTo writes the finished segment to path atomically: the bytes land in
// path+".tmp", are fsynced, and only then renamed over path; the directory
// entry is fsynced last. A crash at any point leaves either no file or a
// *.tmp orphan (swept at Open), never a half-visible segment.
func (w *segWriter) writeTo(path string) (int64, error) {
	off := int64(pageSize)
	for i := range w.meta.Sections {
		w.meta.Sections[i].Off = off
		off += w.meta.Sections[i].Len
		off = (off + pageSize - 1) / pageSize * pageSize
	}
	metaJSON, err := json.Marshal(&w.meta)
	if err != nil {
		return 0, err
	}

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	bw := bufio.NewWriterSize(f, 1<<20)
	pos := int64(0)
	pad := func(to int64) error {
		var zeros [pageSize]byte
		for pos < to {
			n := to - pos
			if n > pageSize {
				n = pageSize
			}
			if _, err := bw.Write(zeros[:n]); err != nil {
				return err
			}
			pos += n
		}
		return nil
	}
	write := func(b []byte) error {
		_, err := bw.Write(b)
		pos += int64(len(b))
		return err
	}
	err = write([]byte(segMagic))
	for i, p := range w.payloads {
		if err != nil {
			break
		}
		if err = pad(w.meta.Sections[i].Off); err == nil {
			err = write(p)
		}
	}
	if err == nil {
		err = pad(off)
	}
	if err == nil {
		err = write(metaJSON)
	}
	if err == nil {
		var trailer [12]byte
		binary.LittleEndian.PutUint32(trailer[:4], uint32(len(metaJSON)))
		copy(trailer[4:], segMagic)
		err = write(trailer[:])
	}
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, fmt.Errorf("diskstore: write %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	if err := fsyncDir(filepath.Dir(path)); err != nil {
		return 0, err
	}
	return pos, nil
}

// mapSegment is how openSegment brings a segment's bytes in: the platform
// mmap on unix, the whole-file read fallback elsewhere. It is a variable so
// tests on unix can swap in readFileFallback and exercise the portable path
// without a cross-compile.
var mapSegment = mmapFile

// segment is an open, mapped segment file.
type segment struct {
	path  string
	data  []byte
	meta  segMeta
	unmap func() error
}

// openSegment maps path and parses + validates its directory. Directory-like
// sections (offset arrays, run directories, group counts — everything a
// loader will index blindly into) are CRC-verified immediately; bulk payload
// sections are verified only under full=true (tests, explicit verification)
// so opening a large segment does not page the whole file in.
func openSegment(path string, full bool) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(segMagic))+12 {
		return nil, corruptf(path, "file too small (%d bytes)", size)
	}
	data, unmap, err := mapSegment(f, size)
	if err != nil {
		return nil, fmt.Errorf("diskstore: map %s: %w", filepath.Base(path), err)
	}
	s := &segment{path: path, data: data, unmap: unmap}
	if err := s.parse(full); err != nil {
		s.close()
		return nil, err
	}
	return s, nil
}

func (s *segment) parse(full bool) error {
	size := int64(len(s.data))
	if string(s.data[:len(segMagic)]) != segMagic {
		return corruptf(s.path, "bad magic")
	}
	if string(s.data[size-8:]) != segMagic {
		return corruptf(s.path, "bad trailer magic (torn write?)")
	}
	metaLen := int64(binary.LittleEndian.Uint32(s.data[size-12 : size-8]))
	metaOff := size - 12 - metaLen
	if metaLen <= 0 || metaOff < int64(len(segMagic)) {
		return corruptf(s.path, "directory length %d out of bounds", metaLen)
	}
	if err := json.Unmarshal(s.data[metaOff:size-12], &s.meta); err != nil {
		return corruptf(s.path, "directory does not parse: %v", err)
	}
	for _, sec := range s.meta.Sections {
		if sec.Off < pageSize || sec.Len < 0 || sec.Off+sec.Len > metaOff {
			return corruptf(s.path, "section %q [%d,+%d) out of bounds", sec.Name, sec.Off, sec.Len)
		}
		if sec.Off%8 != 0 {
			return corruptf(s.path, "section %q misaligned at offset %d", sec.Name, sec.Off)
		}
		if full || directorySection(sec.Name) {
			if got := crc32.ChecksumIEEE(s.data[sec.Off : sec.Off+sec.Len]); got != sec.CRC {
				return corruptf(s.path, "section %q checksum mismatch", sec.Name)
			}
		}
	}
	return nil
}

// directorySection reports whether a section is indexed blindly by a loader
// (and therefore must be verified at open time). Payload sections — column
// data, chunk bytes — are walked through bounds-checked cursors and can
// defer verification.
func directorySection(name string) bool {
	return strings.HasSuffix(name, ".offs") || strings.HasSuffix(name, ".starts") ||
		strings.HasSuffix(name, ".seq") || strings.HasSuffix(name, ".vals") ||
		strings.HasSuffix(name, ".gc")
}

func (s *segment) close() {
	if s.unmap != nil {
		_ = s.unmap()
		s.unmap = nil
	}
}

func (s *segment) section(name string) ([]byte, error) {
	for _, sec := range s.meta.Sections {
		if sec.Name == name {
			return s.data[sec.Off : sec.Off+sec.Len], nil
		}
	}
	return nil, corruptf(s.path, "missing section %q", name)
}

func corruptf(path, format string, args ...any) error {
	return serr.New(serr.Internal, "diskstore: %s: "+format,
		append([]any{filepath.Base(path)}, args...)...)
}

// ---- typed views over mapped bytes ----
//
// Sections are page-aligned (checked at open), so the element-pointer casts
// below are always aligned. The views alias the mapping: zero copies, and the
// slices stay valid until Store.Close unmaps.

func asInt64s(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func asFloat64s(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func asInt32s(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func asUint32s(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func asBools(b []byte) []bool {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*bool)(unsafe.Pointer(&b[0])), len(b))
}

func int64Bytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
}

func float64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
}

func int32Bytes(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
}

func uint32Bytes(v []uint32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
}

func boolBytes(v []bool) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v))
}

// ---- relation sections ----

func relMetaOf(rel *storage.Relation) relMeta {
	m := relMeta{Name: rel.Name, N: rel.N, Fields: make([]fieldMeta, len(rel.Schema))}
	for i, f := range rel.Schema {
		m.Fields[i] = fieldMeta{Name: f.Name, Type: uint8(f.Type)}
	}
	return m
}

// addRelationSections emits one section per fixed-width column and an
// offs+bytes pair per string column, all under prefix.
func addRelationSections(w *segWriter, prefix string, rel *storage.Relation) {
	for i, f := range rel.Schema {
		name := fmt.Sprintf("%scol%d", prefix, i)
		switch f.Type {
		case storage.TInt:
			w.add(name, int64Bytes(rel.Cols[i].Ints))
		case storage.TFloat:
			w.add(name, float64Bytes(rel.Cols[i].Floats))
		case storage.TString:
			offs := make([]uint32, len(rel.Cols[i].Strs)+1)
			total := 0
			for j, s := range rel.Cols[i].Strs {
				total += len(s)
				offs[j+1] = uint32(total)
			}
			bytes := make([]byte, 0, total)
			for _, s := range rel.Cols[i].Strs {
				bytes = append(bytes, s...)
			}
			w.add(name+".offs", uint32Bytes(offs))
			w.add(name+".bytes", bytes)
		}
	}
}

// loadRelation reconstructs a relation whose fixed-width columns alias the
// mapping directly. String columns allocate the []string headers (16 bytes a
// row) but the character data itself stays mapped (unsafe.String views).
func loadRelation(seg *segment, prefix string, m relMeta) (*storage.Relation, error) {
	rel := &storage.Relation{
		Name:   m.Name,
		N:      m.N,
		Schema: make(storage.Schema, len(m.Fields)),
		Cols:   make([]storage.Column, len(m.Fields)),
	}
	for i, f := range m.Fields {
		rel.Schema[i] = storage.Field{Name: f.Name, Type: storage.Type(f.Type)}
		name := fmt.Sprintf("%scol%d", prefix, i)
		switch storage.Type(f.Type) {
		case storage.TInt:
			b, err := seg.section(name)
			if err != nil {
				return nil, err
			}
			if len(b) != 8*m.N {
				return nil, corruptf(seg.path, "column %q has %d bytes, want %d", name, len(b), 8*m.N)
			}
			rel.Cols[i].Ints = asInt64s(b)
		case storage.TFloat:
			b, err := seg.section(name)
			if err != nil {
				return nil, err
			}
			if len(b) != 8*m.N {
				return nil, corruptf(seg.path, "column %q has %d bytes, want %d", name, len(b), 8*m.N)
			}
			rel.Cols[i].Floats = asFloat64s(b)
		case storage.TString:
			ob, err := seg.section(name + ".offs")
			if err != nil {
				return nil, err
			}
			sb, err := seg.section(name + ".bytes")
			if err != nil {
				return nil, err
			}
			offs := asUint32s(ob)
			if len(offs) != m.N+1 || (m.N > 0 && offs[0] != 0) {
				return nil, corruptf(seg.path, "column %q offset directory malformed", name)
			}
			strs := make([]string, m.N)
			for j := 0; j < m.N; j++ {
				lo, hi := offs[j], offs[j+1]
				if hi < lo || int(hi) > len(sb) {
					return nil, corruptf(seg.path, "column %q offsets out of bounds at row %d", name, j)
				}
				if lo != hi {
					strs[j] = unsafe.String(&sb[lo], int(hi-lo))
				}
			}
			rel.Cols[i].Strs = strs
		default:
			return nil, corruptf(seg.path, "column %q has unknown type %d", name, f.Type)
		}
	}
	return rel, nil
}

// ---- lineage index sections ----

// addIndexSections persists ix under prefix and returns its directory entry.
// Raw 1-to-N indexes are converted to the chunked encoding first: the
// encoded form is the on-disk representation (and what a promoted result
// traces in situ). Raw 1-to-1 arrays stay raw — EncodeArr already decided
// the run directory would not pay for itself.
func addIndexSections(w *segWriter, prefix, rel, dir string, ix *lineage.Index) indexMeta {
	if ix.Kind == lineage.OneToMany {
		ix = lineage.EncodeIndex(ix)
	}
	m := indexMeta{Sec: prefix, Rel: rel, Dir: dir, N: ix.Len()}
	switch ix.Kind {
	case lineage.OneToOne:
		m.Kind = "arr"
		w.add(prefix+".arr", int32Bytes(ix.Arr))
	case lineage.EncodedOne:
		m.Kind = "encarr"
		n, starts, vals, seq := ix.EncArr.Parts()
		m.N = n
		w.add(prefix+".starts", int32Bytes(starts))
		w.add(prefix+".vals", int32Bytes(vals))
		w.add(prefix+".seq", boolBytes(seq))
	case lineage.EncodedMany:
		m.Kind = "encmany"
		offs, data, card := ix.Enc.Parts()
		m.Card = card
		w.add(prefix+".offs", uint32Bytes(offs))
		w.add(prefix+".data", data)
	}
	return m
}

// loadIndex reconstructs a lineage index over the mapping; the encoded forms
// wrap the mapped bytes via FromParts, so traces iterate disk pages directly.
func loadIndex(seg *segment, prefix string, m indexMeta) (*lineage.Index, error) {
	switch m.Kind {
	case "arr":
		b, err := seg.section(prefix + ".arr")
		if err != nil {
			return nil, err
		}
		arr := asInt32s(b)
		if len(arr) != m.N {
			return nil, corruptf(seg.path, "index %q has %d entries, want %d", prefix, len(arr), m.N)
		}
		return lineage.NewOneToOne(arr), nil
	case "encarr":
		sb, err := seg.section(prefix + ".starts")
		if err != nil {
			return nil, err
		}
		vb, err := seg.section(prefix + ".vals")
		if err != nil {
			return nil, err
		}
		qb, err := seg.section(prefix + ".seq")
		if err != nil {
			return nil, err
		}
		e, err := lineage.EncodedArrFromParts(m.N, asInt32s(sb), asInt32s(vb), asBools(qb))
		if err != nil {
			return nil, fmt.Errorf("%s: index %q: %w", filepath.Base(seg.path), prefix, err)
		}
		return lineage.NewEncodedOne(e), nil
	case "encmany":
		ob, err := seg.section(prefix + ".offs")
		if err != nil {
			return nil, err
		}
		db, err := seg.section(prefix + ".data")
		if err != nil {
			return nil, err
		}
		offs := asUint32s(ob)
		if len(offs) != m.N+1 {
			return nil, corruptf(seg.path, "index %q directory has %d offsets, want %d", prefix, len(offs), m.N+1)
		}
		e, err := lineage.EncodedIndexFromParts(offs, db, m.Card)
		if err != nil {
			return nil, fmt.Errorf("%s: index %q: %w", filepath.Base(seg.path), prefix, err)
		}
		return lineage.NewEncodedMany(e), nil
	}
	return nil, corruptf(seg.path, "index %q has unknown kind %q", prefix, m.Kind)
}
