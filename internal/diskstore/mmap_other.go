//go:build !unix

package diskstore

import "os"

// mmapFile on platforms without syscall.Mmap reads the whole segment into
// memory (readFileFallback — shared with the unix test that exercises this
// path through the mapSegment seam).
func mmapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	return readFileFallback(f, size)
}

// fsyncDir is a no-op where directory handles cannot be synced.
func fsyncDir(dir string) error { return nil }
