//go:build !unix

package diskstore

import (
	"io"
	"os"
)

// mmapFile on platforms without syscall.Mmap reads the whole segment into
// memory. Correctness is identical (the loaders only see a []byte); only the
// lazy-paging economics are lost.
func mmapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, nil, err
	}
	return b, func() error { return nil }, nil
}

// fsyncDir is a no-op where directory handles cannot be synced.
func fsyncDir(dir string) error { return nil }
