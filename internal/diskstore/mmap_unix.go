//go:build unix

package diskstore

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only. The returned bytes alias the page cache:
// loading a segment costs no read I/O up front, and a trace over a demoted
// capture faults in only the pages its seed lists touch. The unmap func must
// not run while any slice derived from the mapping is still reachable — the
// Store unmaps only at Close.
func mmapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}

// fsyncDir flushes directory metadata so a rename survives power loss.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
