package diskstore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"smoke/internal/lineage"
	"smoke/internal/storage"
)

func testRelation(name string, n int) *storage.Relation {
	rel := storage.NewRelation(name, storage.Schema{
		{Name: "id", Type: storage.TInt},
		{Name: "v", Type: storage.TFloat},
		{Name: "s", Type: storage.TString},
	}, n)
	for i := 0; i < n; i++ {
		rel.Cols[0].Ints[i] = int64(i * 3)
		rel.Cols[1].Floats[i] = float64(i) + 0.25
		if i%5 != 0 { // leave some empty strings in
			rel.Cols[2].Strs[i] = string(rune('a'+i%26)) + "-row"
		}
	}
	return rel
}

func sameRelation(t *testing.T, got, want *storage.Relation) {
	t.Helper()
	if got.N != want.N || len(got.Schema) != len(want.Schema) {
		t.Fatalf("relation shape: got %dx%d, want %dx%d", got.N, len(got.Schema), want.N, len(want.Schema))
	}
	for i := 0; i < want.N; i++ {
		if !reflect.DeepEqual(got.Row(i), want.Row(i)) {
			t.Fatalf("row %d: got %v, want %v", i, got.Row(i), want.Row(i))
		}
	}
}

func TestTableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rel := testRelation("orders", 137)
	if err := s.PutTable(rel, "id"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh open = process restart.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if pks := s2.Tables(); pks["orders"] != "id" {
		t.Fatalf("recovered tables = %v, want orders with pk id", pks)
	}
	got, err := s2.LoadTable("orders")
	if err != nil {
		t.Fatal(err)
	}
	sameRelation(t, got, rel)
	if err := s2.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// buildResult assembles a result with every index representation that can
// reach disk: a raw 1-to-N backward index (encoded on write), a raw 1-to-1
// forward array, plus pre-encoded forms.
func buildResult(base *storage.Relation) *Result {
	out := testRelation("out", 16)
	bw := lineage.NewRidIndex(out.N)
	for g := 0; g < out.N; g++ {
		for r := g; r < base.N; r += out.N {
			bw.Append(g, lineage.Rid(r))
		}
	}
	fw := make([]lineage.Rid, base.N)
	for r := range fw {
		fw[r] = lineage.Rid(r % out.N)
	}
	cp := lineage.NewCapture()
	cp.SetBackward(base.Name, lineage.NewOneToMany(bw))
	cp.SetForward(base.Name, lineage.NewOneToOne(fw))
	gc := make([]int64, out.N)
	for g := range gc {
		gc[g] = int64(len(bw.List(g)))
	}
	return &Result{Out: out, GroupCounts: gc, Capture: cp,
		Bases: map[string]*storage.Relation{base.Name: base}}
}

func sameTrace(t *testing.T, what string, got, want []lineage.Rid) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rids, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %d, want %d", what, i, got[i], want[i])
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := testRelation("orders", 211)
	if err := s.PutTable(base, "id"); err != nil {
		t.Fatal(err)
	}
	res := buildResult(base)
	if _, err := s.PutResult("s1", "q0", res); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	got, err := s2.LoadResult("s1", "q0")
	if err != nil {
		t.Fatal(err)
	}
	sameRelation(t, got.Out, res.Out)
	if !reflect.DeepEqual(got.GroupCounts, res.GroupCounts) {
		t.Fatalf("group counts differ: %v vs %v", got.GroupCounts, res.GroupCounts)
	}
	sameRelation(t, got.Bases["orders"], base)

	seeds := []lineage.Rid{0, 3, 15}
	wantBW, err := res.Capture.Backward("orders", seeds)
	if err != nil {
		t.Fatal(err)
	}
	gotBW, err := got.Capture.Backward("orders", seeds)
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, "backward", gotBW, wantBW)

	fwSeeds := []lineage.Rid{0, 7, 210}
	wantFW, err := res.Capture.Forward("orders", fwSeeds)
	if err != nil {
		t.Fatal(err)
	}
	gotFW, err := got.Capture.Forward("orders", fwSeeds)
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, "forward", gotFW, wantFW)

	// The recovered backward index must be the encoded representation (the
	// chunk store), and its in-situ trace must match the raw path.
	ix, err := got.Capture.BackwardIndex("orders")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Kind != lineage.EncodedMany {
		t.Fatalf("recovered backward index kind = %v, want EncodedMany", ix.Kind)
	}
	insitu := ix.Enc.TraceInSitu(seeds)
	sameTrace(t, "in-situ backward", insitu.AppendTo(nil), wantBW)

	// The recovered base must be the same object as the recovered table
	// (shared segment, not an embedded copy).
	tbl, err := s2.LoadTable("orders")
	if err != nil {
		t.Fatal(err)
	}
	if got.Bases["orders"] != tbl {
		t.Fatal("result base and table did not dedupe to one loaded relation")
	}
}

func TestOrphanSweepAndDelete(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := testRelation("t", 32)
	if _, err := s.PutResult("s1", "q0", buildResult(base)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutResult("s1", "q1", buildResult(base)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: a stray temp file and an unreferenced
	// segment (renamed but never published).
	for _, junk := range []string{"z999.seg.tmp", "z998.seg"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, junk := range []string{"z999.seg.tmp", "z998.seg"} {
		if _, err := os.Stat(filepath.Join(dir, junk)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived Open", junk)
		}
	}
	if err := s2.DeleteResult("s1", "q0"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.LoadResult("s1", "q0"); err == nil {
		t.Fatal("deleted result still loads")
	}
	if _, err := s2.LoadResult("s1", "q1"); err != nil {
		t.Fatalf("sibling result lost: %v", err)
	}
	if err := s2.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rel := testRelation("t", 64)
	if err := s.PutTable(rel, ""); err != nil {
		t.Fatal(err)
	}
	var file string
	for _, e := range mustReadDir(t, dir) {
		if filepath.Ext(e) == ".seg" {
			file = e
		}
	}
	s.Close()

	// Truncate the trailer: open must refuse the torn segment.
	path := filepath.Join(dir, file)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.LoadTable("t"); err == nil {
		t.Fatal("torn segment loaded without error")
	}
	s2.Close()

	// Restore, then flip a payload byte: full verification must catch it.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	data[pageSize] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.VerifyAll(); err == nil {
		t.Fatal("flipped payload byte passed full verification")
	}
	s3.Close()
}

func TestSessionWatermarkPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetNextSessionID(42)
	base := testRelation("t", 8)
	if _, err := s.PutResult("s2a", "q", buildResult(base)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.NextSessionID(); got != 42 {
		t.Fatalf("next session id = %d, want 42", got)
	}
	if sessions := s2.Sessions(); sessions["s2a"]["q"] <= 0 {
		t.Fatalf("sessions = %v, want s2a/q with positive bytes", sessions)
	}
}

// TestReadFallbackPath swaps the mapSegment seam for readFileFallback — the
// portable (non-unix) loader — and round-trips a table and a result through
// it. Same assertions as the mmap path: traces over the copied bytes must be
// element-identical, so the fallback stays correct without a cross-compile.
func TestReadFallbackPath(t *testing.T) {
	orig := mapSegment
	mapSegment = readFileFallback
	defer func() { mapSegment = orig }()

	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := testRelation("orders", 97)
	if err := s.PutTable(base, "id"); err != nil {
		t.Fatal(err)
	}
	res := buildResult(base)
	if _, err := s.PutResult("s1", "q0", res); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	tbl, err := s2.LoadTable("orders")
	if err != nil {
		t.Fatal(err)
	}
	sameRelation(t, tbl, base)
	got, err := s2.LoadResult("s1", "q0")
	if err != nil {
		t.Fatal(err)
	}
	sameRelation(t, got.Out, res.Out)
	seeds := []lineage.Rid{0, 5, 15}
	wantBW, err := res.Capture.Backward("orders", seeds)
	if err != nil {
		t.Fatal(err)
	}
	gotBW, err := got.Capture.Backward("orders", seeds)
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, "fallback backward", gotBW, wantBW)
	wantFW, err := res.Capture.Forward("orders", []lineage.Rid{1, 42, 96})
	if err != nil {
		t.Fatal(err)
	}
	gotFW, err := got.Capture.Forward("orders", []lineage.Rid{1, 42, 96})
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, "fallback forward", gotFW, wantFW)
}

// TestNoPublishDurability pins the write-behind contract: a PutResultNoPublish
// is invisible after a crash (reopen) until a Publish carries it, and a
// DeleteResultNoPublish stays effective only after Publish too.
func TestNoPublishDurability(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := testRelation("t", 16)
	if _, err := s.PutResultNoPublish("s1", "q0", buildResult(base)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Crash before publish: the segment is an orphan, the manifest empty.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.LoadResult("s1", "q0"); err == nil {
		t.Fatal("unpublished result survived a reopen")
	}
	if _, err := s2.PutResultNoPublish("s1", "q0", buildResult(base)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Publish(); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	// Published: the result survives.
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.LoadResult("s1", "q0"); err != nil {
		t.Fatalf("published result lost: %v", err)
	}
	if !s3.DeleteResultNoPublish("s1", "q0") {
		t.Fatal("delete of a live entry reported no change")
	}
	if s3.DeleteResultNoPublish("s1", "q0") {
		t.Fatal("double delete reported a change")
	}
	if _, err := s3.LoadResult("s1", "q0"); err == nil {
		t.Fatal("deleted entry still loads in-process")
	}
	if err := s3.Publish(); err != nil {
		t.Fatal(err)
	}
	s3.Close()
	s4, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s4.Close()
	if _, err := s4.LoadResult("s1", "q0"); err == nil {
		t.Fatal("published delete did not stick")
	}
}

func mustReadDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}
