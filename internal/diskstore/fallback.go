package diskstore

import (
	"io"
	"os"
)

// readFileFallback loads a whole segment file into memory. It is the portable
// stand-in for mmap: correctness is identical (loaders only ever see a
// []byte), only the lazy-paging economics are lost. It is build-tag-free so
// the non-unix mmapFile can delegate to it and unix tests can still exercise
// it through the mapSegment seam.
func readFileFallback(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, nil, err
	}
	return b, func() error { return nil }, nil
}
