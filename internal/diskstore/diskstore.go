// Package diskstore is the out-of-core tier under the server's session
// registry: columnar relation segments and encoded lineage chunk files in an
// mmap-friendly layout, indexed by a small JSON manifest that is republished
// atomically (temp + fsync + rename) after every mutation. Eviction in the
// registry demotes retained results here instead of tombstoning them, traces
// over demoted captures run in situ over the mapped chunk bytes, and a
// restarted smoked recovers every published table and session from the
// manifest. The encoded lineage representation (internal/lineage/encoded.go)
// is stored byte-identical on disk — persistence is a layout concern, not a
// recode (cf. "Compression and In-Situ Query Processing for Fine-Grained
// Array Lineage").
//
// Crash safety is publish-granular: a segment becomes reachable only by a
// manifest publish that follows its own fsync+rename, so a crash at any
// point leaves the previous manifest and a sweepable orphan, never a
// half-written reachable file. All segment files live flat in the store
// directory; names are store-generated sequence numbers (client-supplied
// table/result names appear only inside the manifest), so no path escapes it.
package diskstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"smoke/internal/lineage"
	"smoke/internal/serr"
	"smoke/internal/storage"
)

// Result is the exchange shape between the registry and the store: the parts
// of a retained result that must survive a restart. The server converts to
// and from core.Result at the demotion boundary.
type Result struct {
	Out         *storage.Relation
	GroupCounts []int64
	Capture     *lineage.Capture
	// Bases holds the base relations the capture's indexes refer to, by
	// table name. Forward traces re-resolve seed rids against these after a
	// restart, so they persist with the result (shared segments when the
	// relation is a published table).
	Bases map[string]*storage.Relation
}

type tableEntry struct {
	File string `json:"file"`
	PK   string `json:"pk,omitempty"`
}

type resultEntry struct {
	File  string   `json:"file"`
	Bytes int64    `json:"bytes"`
	Bases []string `json:"bases,omitempty"` // standalone base segments referenced
}

type sessionEntry struct {
	Results map[string]resultEntry `json:"results"`
}

type manifest struct {
	Version       int                      `json:"version"`
	Seq           uint64                   `json:"seq"`
	NextSessionID uint64                   `json:"next_session_id"`
	Tables        map[string]tableEntry    `json:"tables"`
	Sessions      map[string]*sessionEntry `json:"sessions"`
}

const manifestName = "manifest.json"

// Store is the on-disk tier rooted at one directory. All methods are safe
// for concurrent use. Segment writes (PutResult, PutTable) run off the
// store mutex — the lock covers only manifest bookkeeping and file-name
// reservation — so loads (promotions, table reads) never stall behind an
// in-flight spill. The server funnels all result writes through one
// background flusher goroutine and batches manifest publishes with the
// *NoPublish variants.
type Store struct {
	mu   sync.Mutex
	dir  string
	man  manifest
	segs []*segment // every live mapping; unmapped only at Close

	// relFiles remembers which segment file a live *Relation was written to
	// (or loaded from), so a capture whose base is a published table
	// references the table's segment instead of re-embedding the data.
	relFiles map[*storage.Relation]string
	// relByFile dedups loads: results sharing a base segment share the
	// loaded *Relation.
	relByFile map[string]*storage.Relation
}

// Open opens (or initializes) a store directory: loads the manifest, drops
// manifest entries whose segment files are missing, and sweeps orphaned
// segment and temp files left by a crash between segment rename and manifest
// publish.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:       dir,
		man:       manifest{Version: 1, Tables: map[string]tableEntry{}, Sessions: map[string]*sessionEntry{}},
		relFiles:  map[*storage.Relation]string{},
		relByFile: map[string]*storage.Relation{},
	}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &s.man); err != nil {
			return nil, fmt.Errorf("diskstore: %s is corrupt: %w", manifestName, err)
		}
		if s.man.Tables == nil {
			s.man.Tables = map[string]tableEntry{}
		}
		if s.man.Sessions == nil {
			s.man.Sessions = map[string]*sessionEntry{}
		}
	case os.IsNotExist(err):
		// Fresh store; first publish creates the manifest.
	default:
		return nil, err
	}
	s.dropMissing()
	if err := s.sweepOrphans(); err != nil {
		return nil, err
	}
	return s, nil
}

// dropMissing removes manifest entries whose backing file vanished (partial
// corruption, manual deletion): recovery is best-effort per entry, not
// all-or-nothing.
func (s *Store) dropMissing() {
	exists := func(file string) bool {
		_, err := os.Stat(filepath.Join(s.dir, file))
		return err == nil
	}
	for name, t := range s.man.Tables {
		if !exists(t.File) {
			delete(s.man.Tables, name)
		}
	}
	for sid, se := range s.man.Sessions {
		for name, re := range se.Results {
			ok := exists(re.File)
			for _, b := range re.Bases {
				ok = ok && exists(b)
			}
			if !ok {
				delete(se.Results, name)
			}
		}
		if len(se.Results) == 0 {
			delete(s.man.Sessions, sid)
		}
	}
}

// referenced returns every segment file the manifest reaches.
func (s *Store) referenced() map[string]bool {
	ref := map[string]bool{}
	for _, t := range s.man.Tables {
		ref[t.File] = true
	}
	for _, se := range s.man.Sessions {
		for _, re := range se.Results {
			ref[re.File] = true
			for _, b := range re.Bases {
				ref[b] = true
			}
		}
	}
	return ref
}

// sweepOrphans deletes *.tmp files and unreferenced *.seg files. Called at
// Open (crash leftovers) and after manifest publishes that dropped entries.
// Deleting a file that a live promotion still has mapped is safe on unix —
// the mapping holds the inode — and the fallback loader copied the bytes.
func (s *Store) sweepOrphans() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	ref := s.referenced()
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			_ = os.Remove(filepath.Join(s.dir, name))
		case strings.HasSuffix(name, ".seg") && !ref[name]:
			_ = os.Remove(filepath.Join(s.dir, name))
		}
	}
	return nil
}

// publish atomically replaces the manifest, then sweeps newly unreferenced
// segments. Caller holds s.mu.
func (s *Store) publishLocked() error {
	raw, err := json.MarshalIndent(&s.man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := f.Write(raw)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return err
	}
	if err := fsyncDir(s.dir); err != nil {
		return err
	}
	return s.sweepOrphans()
}

func (s *Store) nextFile(prefix string) string {
	s.man.Seq++
	return fmt.Sprintf("%s%06d.seg", prefix, s.man.Seq)
}

func (s *Store) open(file string, full bool) (*segment, error) {
	seg, err := openSegment(filepath.Join(s.dir, file), full)
	if err != nil {
		return nil, err
	}
	s.segs = append(s.segs, seg)
	return seg, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close unmaps every mapping the store handed out. It must only be called
// once no relation or index loaded from this store is still in use.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segs {
		seg.close()
	}
	s.segs = nil
	return nil
}

// NextSessionID returns the persisted session-id watermark.
func (s *Store) NextSessionID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.NextSessionID
}

// SetNextSessionID records the registry's session-id watermark in the
// in-memory manifest; it rides out with the next publish. Persisting it
// lazily is safe: a session becomes recoverable only via a PutResult, whose
// publish carries the watermark that already covers the session's own id.
func (s *Store) SetNextSessionID(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id > s.man.NextSessionID {
		s.man.NextSessionID = id
	}
}

// Publish forces a manifest publish (shutdown flush).
func (s *Store) Publish() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.publishLocked()
}

// ---- tables ----

// PutTable persists a base table (ingest write-through) and publishes. The
// relation pointer is remembered so captures over this table reference its
// segment instead of embedding a copy. The segment write runs off the store
// mutex; only name reservation and the manifest commit hold it.
func (s *Store) PutTable(rel *storage.Relation, pk string) error {
	s.mu.Lock()
	w := &segWriter{meta: segMeta{Kind: "relation"}}
	m := relMetaOf(rel)
	w.meta.Relation = &m
	addRelationSections(w, "", rel)
	file := s.nextFile("t")
	s.mu.Unlock()

	if _, err := w.writeTo(filepath.Join(s.dir, file)); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.man.Tables[rel.Name] = tableEntry{File: file, PK: pk}
	s.relFiles[rel] = file
	s.relByFile[file] = rel
	return s.publishLocked()
}

// Tables returns the published table names and their primary keys.
func (s *Store) Tables() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.man.Tables))
	for name, t := range s.man.Tables {
		out[name] = t.PK
	}
	return out
}

// LoadTable maps a published table. Fixed-width columns alias the mapping.
func (s *Store) LoadTable(name string) (*storage.Relation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.man.Tables[name]
	if !ok {
		return nil, serr.New(serr.NotFound, "diskstore: no table %q", name)
	}
	rel, err := s.loadRelFileLocked(t.File)
	if err != nil {
		return nil, err
	}
	return rel, nil
}

func (s *Store) loadRelFileLocked(file string) (*storage.Relation, error) {
	if rel, ok := s.relByFile[file]; ok {
		return rel, nil
	}
	seg, err := s.open(file, false)
	if err != nil {
		return nil, err
	}
	if seg.meta.Kind != "relation" || seg.meta.Relation == nil {
		return nil, corruptf(seg.path, "expected a relation segment, got %q", seg.meta.Kind)
	}
	rel, err := loadRelation(seg, "", *seg.meta.Relation)
	if err != nil {
		return nil, err
	}
	s.relByFile[file] = rel
	s.relFiles[rel] = file
	return rel, nil
}

// ---- results ----

// PutResult persists one retained result under (session, name) and publishes.
// Base relations already backed by a segment (published tables, previously
// spilled bases) are referenced; others are written once as standalone
// relation segments and shared by pointer identity across results. Returns
// the result's on-disk footprint (its segment plus referenced standalone
// base segments).
func (s *Store) PutResult(session, name string, r *Result) (int64, error) {
	bytes, err := s.putResult(session, name, r)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.publishLocked(); err != nil {
		return 0, err
	}
	return bytes, nil
}

// PutResultNoPublish persists a result without publishing the manifest: the
// segment bytes are durably on disk (written + fsynced), but unreachable
// after a crash until the next Publish. The server's background flusher
// batches several puts per publish this way.
func (s *Store) PutResultNoPublish(session, name string, r *Result) (int64, error) {
	return s.putResult(session, name, r)
}

// putResult writes the result's segments and updates the in-memory manifest.
// It runs in three phases so the segment I/O — the expensive part — never
// holds the store mutex: (1) locked, build the section writers and reserve
// file names (including standalone base segments for relations not yet
// backed by one); (2) unlocked, write and fsync the segment files;
// (3) locked, record the manifest entry. Concurrent loads therefore never
// stall behind a spill. The base-file reservations of phase 1 are
// optimistic — a failed write removes them again, and the then-orphaned
// files are swept at the next publish. The server funnels all result writes
// through one flusher goroutine, so two concurrent puts cannot race on
// reserving the same base relation.
func (s *Store) putResult(session, name string, r *Result) (int64, error) {
	s.mu.Lock()
	var baseFiles []string
	w := &segWriter{meta: segMeta{Kind: "result"}}
	rm := &resultMeta{Out: relMetaOf(r.Out)}
	addRelationSections(w, "out/", r.Out)
	if r.GroupCounts != nil {
		rm.GroupCounts = true
		w.add("gc", int64Bytes(r.GroupCounts))
	}

	baseNames := make([]string, 0, len(r.Bases))
	for t := range r.Bases {
		baseNames = append(baseNames, t)
	}
	sort.Strings(baseNames)
	type baseWrite struct {
		w    *segWriter
		rel  *storage.Relation
		file string
	}
	var writes []baseWrite
	for _, t := range baseNames {
		rel := r.Bases[t]
		file, ok := s.relFiles[rel]
		if !ok {
			// First spill of this relation: write it once as a standalone
			// segment; later results sharing the pointer reference it.
			bw := &segWriter{meta: segMeta{Kind: "relation"}}
			bm := relMetaOf(rel)
			bw.meta.Relation = &bm
			addRelationSections(bw, "", rel)
			file = s.nextFile("r")
			s.relFiles[rel] = file
			s.relByFile[file] = rel
			writes = append(writes, baseWrite{w: bw, rel: rel, file: file})
		}
		// Every referenced base file is recorded in the manifest entry —
		// that is what keeps a superseded table segment alive (and
		// recoverable) while a retained capture still points at it.
		baseFiles = append(baseFiles, file)
		rm.Bases = append(rm.Bases, baseMeta{Table: t, File: file})
	}

	if r.Capture != nil {
		for i, t := range r.Capture.Relations() {
			if r.Capture.HasBackward(t) {
				ix, _ := r.Capture.BackwardIndex(t)
				sec := fmt.Sprintf("ix%d.bw", i)
				rm.Indexes = append(rm.Indexes, addIndexSections(w, sec, t, "bw", ix))
			}
			if r.Capture.HasForward(t) {
				ix, _ := r.Capture.ForwardIndex(t)
				sec := fmt.Sprintf("ix%d.fw", i)
				rm.Indexes = append(rm.Indexes, addIndexSections(w, sec, t, "fw", ix))
			}
		}
	}
	w.meta.Result = rm
	file := s.nextFile("s")
	s.mu.Unlock()

	// Phase 2: segment I/O off the lock. On failure the base reservations
	// roll back so relFiles never points at a file that was not written.
	unreserve := func() {
		s.mu.Lock()
		for _, bw := range writes {
			delete(s.relFiles, bw.rel)
			delete(s.relByFile, bw.file)
		}
		s.mu.Unlock()
	}
	for _, bw := range writes {
		if _, err := bw.w.writeTo(filepath.Join(s.dir, bw.file)); err != nil {
			unreserve()
			return 0, err
		}
	}
	var standalone int64
	for _, bf := range baseFiles {
		if strings.HasPrefix(bf, "r") { // standalone: charged to this result
			if st, err := os.Stat(filepath.Join(s.dir, bf)); err == nil {
				standalone += st.Size()
			}
		}
	}
	n, err := w.writeTo(filepath.Join(s.dir, file))
	if err != nil {
		unreserve()
		return 0, err
	}

	// Phase 3: manifest commit.
	s.mu.Lock()
	defer s.mu.Unlock()
	se := s.man.Sessions[session]
	if se == nil {
		se = &sessionEntry{Results: map[string]resultEntry{}}
		s.man.Sessions[session] = se
	}
	bytes := n + standalone
	se.Results[name] = resultEntry{File: file, Bytes: bytes, Bases: baseFiles}
	return bytes, nil
}

// Sessions returns the recoverable sessions: session id → result name →
// on-disk bytes.
func (s *Store) Sessions() map[string]map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]map[string]int64, len(s.man.Sessions))
	for sid, se := range s.man.Sessions {
		rs := make(map[string]int64, len(se.Results))
		for name, re := range se.Results {
			rs[name] = re.Bytes
		}
		out[sid] = rs
	}
	return out
}

// LoadResult maps a demoted result back in. The output relation's
// fixed-width columns and every lineage index alias the mapping; traces over
// the encoded indexes run in situ on the mapped chunk bytes.
func (s *Store) LoadResult(session, name string) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	se := s.man.Sessions[session]
	if se == nil {
		return nil, serr.New(serr.NotFound, "diskstore: no session %q", session)
	}
	re, ok := se.Results[name]
	if !ok {
		return nil, serr.New(serr.NotFound, "diskstore: session %q has no result %q", session, name)
	}
	seg, err := s.open(re.File, false)
	if err != nil {
		return nil, err
	}
	if seg.meta.Kind != "result" || seg.meta.Result == nil {
		return nil, corruptf(seg.path, "expected a result segment, got %q", seg.meta.Kind)
	}
	rm := seg.meta.Result
	out, err := loadRelation(seg, "out/", rm.Out)
	if err != nil {
		return nil, err
	}
	r := &Result{Out: out, Bases: map[string]*storage.Relation{}}
	if rm.GroupCounts {
		b, err := seg.section("gc")
		if err != nil {
			return nil, err
		}
		r.GroupCounts = asInt64s(b)
	}
	for _, bm := range rm.Bases {
		rel, err := s.loadRelFileLocked(bm.File)
		if err != nil {
			return nil, err
		}
		r.Bases[bm.Table] = rel
	}
	if len(rm.Indexes) > 0 {
		cp := lineage.NewCapture()
		for _, im := range rm.Indexes {
			ix, err := loadIndex(seg, im.Sec, im)
			if err != nil {
				return nil, err
			}
			if im.Dir == "bw" {
				cp.SetBackward(im.Rel, ix)
			} else {
				cp.SetForward(im.Rel, ix)
			}
		}
		r.Capture = cp
	}
	return r, nil
}

// DeleteResult drops a demoted result from the manifest and publishes; its
// segment (and any base segment no longer referenced) is swept.
func (s *Store) DeleteResult(session, name string) error {
	if !s.DeleteResultNoPublish(session, name) {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.publishLocked()
}

// DeleteResultNoPublish drops a result's manifest entry without publishing;
// it reports whether anything changed. The deleted segment stays on disk
// (and sweepable) until the next Publish.
func (s *Store) DeleteResultNoPublish(session, name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	se := s.man.Sessions[session]
	if se == nil {
		return false
	}
	if _, ok := se.Results[name]; !ok {
		return false
	}
	delete(se.Results, name)
	if len(se.Results) == 0 {
		delete(s.man.Sessions, session)
	}
	return true
}

// DeleteSession drops every demoted result of a session and publishes.
func (s *Store) DeleteSession(session string) error {
	if !s.DeleteSessionNoPublish(session) {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.publishLocked()
}

// DeleteSessionNoPublish drops a session's manifest entry without
// publishing; it reports whether anything changed.
func (s *Store) DeleteSessionNoPublish(session string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.man.Sessions[session]; !ok {
		return false
	}
	delete(s.man.Sessions, session)
	return true
}

// VerifyAll re-opens every referenced segment with full checksum
// verification (tests and offline fsck; never on the serving path).
func (s *Store) VerifyAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for file := range s.referenced() {
		seg, err := openSegment(filepath.Join(s.dir, file), true)
		if err != nil {
			return err
		}
		seg.close()
	}
	return nil
}
