package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSplitCoversRange(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 4}, {3, 4}, {4, 4}, {10, 3}, {100, 8}, {7, 1}, {5, 0},
	} {
		rs := Split(tc.n, tc.parts)
		next := 0
		for i, r := range rs {
			if r.Part != i {
				t.Fatalf("Split(%d,%d): part %d has id %d", tc.n, tc.parts, i, r.Part)
			}
			if r.Lo != next {
				t.Fatalf("Split(%d,%d): gap at %d", tc.n, tc.parts, r.Lo)
			}
			if r.Hi < r.Lo {
				t.Fatalf("Split(%d,%d): inverted range %+v", tc.n, tc.parts, r)
			}
			next = r.Hi
		}
		if next != tc.n {
			t.Fatalf("Split(%d,%d): covers [0,%d)", tc.n, tc.parts, next)
		}
		if tc.parts >= 1 && len(rs) > tc.parts {
			t.Fatalf("Split(%d,%d): %d ranges", tc.n, tc.parts, len(rs))
		}
	}
}

func TestNilPoolRunsSerially(t *testing.T) {
	var p *Pool
	var order []int
	p.RunRanges(10, 4, func(part, lo, hi int) { order = append(order, part) })
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool ran parts out of order: %v", order)
		}
	}
}

func TestRunRangesVisitsEveryRow(t *testing.T) {
	p := New(4)
	seen := make([]int32, 1000)
	p.RunRanges(len(seen), 8, func(part, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("row %d visited %d times", i, c)
		}
	}
}

func TestCloseReleasesWorkersAndStaysUsable(t *testing.T) {
	p := New(3)
	var n atomic.Int32
	p.RunRanges(100, 3, func(part, lo, hi int) { n.Add(int32(hi - lo)) })
	p.Close()
	p.Close() // idempotent
	// After Close, RunRanges still completes — inline on the caller.
	p.RunRanges(100, 3, func(part, lo, hi int) { n.Add(int32(hi - lo)) })
	if n.Load() != 200 {
		t.Fatalf("visited %d rows, want 200", n.Load())
	}
	var nilPool *Pool
	nilPool.Close() // nil-safe
	New(2).Close()  // close before first use
}

// Close racing in-flight RunRanges must not panic ("send on closed
// channel"): the channel close is deferred to the last active run, and runs
// observing a closed pool fall back to inline execution.
func TestCloseDuringRunRanges(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		p := New(2)
		var wg sync.WaitGroup
		var total atomic.Int64
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.RunRanges(200, 4, func(part, lo, hi int) {
					total.Add(int64(hi - lo))
				})
			}()
		}
		p.Close() // races the submissions above
		wg.Wait()
		if total.Load() != 4*200 {
			t.Fatalf("trial %d: visited %d rows, want %d", trial, total.Load(), 4*200)
		}
	}
}

// Concurrent RunRanges calls from many goroutines must all complete (the
// caller always runs one partition itself, so a busy pool cannot deadlock).
func TestConcurrentRunRanges(t *testing.T) {
	p := New(2)
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.RunRanges(100, 4, func(part, lo, hi int) {
				total.Add(int64(hi - lo))
			})
		}()
	}
	wg.Wait()
	if total.Load() != 16*100 {
		t.Fatalf("total rows %d, want %d", total.Load(), 16*100)
	}
}
