package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSplitCoversRange(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 4}, {3, 4}, {4, 4}, {10, 3}, {100, 8}, {7, 1}, {5, 0},
	} {
		rs := Split(tc.n, tc.parts)
		next := 0
		for i, r := range rs {
			if r.Part != i {
				t.Fatalf("Split(%d,%d): part %d has id %d", tc.n, tc.parts, i, r.Part)
			}
			if r.Lo != next {
				t.Fatalf("Split(%d,%d): gap at %d", tc.n, tc.parts, r.Lo)
			}
			if r.Hi < r.Lo {
				t.Fatalf("Split(%d,%d): inverted range %+v", tc.n, tc.parts, r)
			}
			next = r.Hi
		}
		if next != tc.n {
			t.Fatalf("Split(%d,%d): covers [0,%d)", tc.n, tc.parts, next)
		}
		if tc.parts >= 1 && len(rs) > tc.parts {
			t.Fatalf("Split(%d,%d): %d ranges", tc.n, tc.parts, len(rs))
		}
	}
}

func TestNilPoolRunsSerially(t *testing.T) {
	var p *Pool
	var order []int
	p.RunRanges(10, 4, func(part, lo, hi int) { order = append(order, part) })
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool ran parts out of order: %v", order)
		}
	}
}

func TestRunRangesVisitsEveryRow(t *testing.T) {
	p := New(4)
	seen := make([]int32, 1000)
	p.RunRanges(len(seen), 8, func(part, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("row %d visited %d times", i, c)
		}
	}
}

func TestCloseReleasesWorkersAndStaysUsable(t *testing.T) {
	p := New(3)
	var n atomic.Int32
	p.RunRanges(100, 3, func(part, lo, hi int) { n.Add(int32(hi - lo)) })
	p.Close()
	p.Close() // idempotent
	// After Close, RunRanges still completes — inline on the caller.
	p.RunRanges(100, 3, func(part, lo, hi int) { n.Add(int32(hi - lo)) })
	if n.Load() != 200 {
		t.Fatalf("visited %d rows, want 200", n.Load())
	}
	var nilPool *Pool
	nilPool.Close() // nil-safe
	New(2).Close()  // close before first use
}

// Close racing in-flight RunRanges must not panic ("send on closed
// channel"): the channel close is deferred to the last active run, and runs
// observing a closed pool fall back to inline execution.
func TestCloseDuringRunRanges(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		p := New(2)
		var wg sync.WaitGroup
		var total atomic.Int64
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.RunRanges(200, 4, func(part, lo, hi int) {
					total.Add(int64(hi - lo))
				})
			}()
		}
		p.Close() // races the submissions above
		wg.Wait()
		if total.Load() != 4*200 {
			t.Fatalf("trial %d: visited %d rows, want %d", trial, total.Load(), 4*200)
		}
	}
}

// Fair-share dispatch: with several active runs, the scheduler hands out one
// task per run per cycle (round-robin), so a late-arriving query is not
// queued behind an earlier query's entire backlog. This drives takeLocked
// directly — the scheduling decision is deterministic even though worker
// execution is not.
func TestFairShareDispatchOrder(t *testing.T) {
	p := New(1)
	var order []string
	mk := func(label string, n int) *runQ {
		var wg sync.WaitGroup
		wg.Add(n)
		return &runQ{
			kernel: func(part, lo, hi int) { order = append(order, label) },
			ranges: Split(n, n),
			wg:     &wg,
		}
	}
	// Enqueue directly (bypassing submit so no workers race the test).
	a, b := mk("a", 3), mk("b", 2)
	p.runs = append(p.runs, a, b)
	p.pending = len(a.ranges) + len(b.ranges)
	for p.pending > 0 {
		q, r := p.takeLocked()
		q.kernel(r.Part, r.Lo, r.Hi)
		q.wg.Done()
	}
	want := []string{"a", "b", "a", "b", "a"}
	if len(order) != len(want) {
		t.Fatalf("dispatched %d tasks, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v (round-robin across runs)", order, want)
		}
	}
	if len(p.runs) != 0 {
		t.Fatalf("%d exhausted runs left in ring", len(p.runs))
	}
}

// A late-arriving run must complete even while an earlier run with a much
// larger backlog is in flight (end-to-end fairness smoke under -race).
func TestLateRunProgressesUnderLoad(t *testing.T) {
	p := New(2)
	defer p.Close()
	var big, small atomic.Int32
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.RunRanges(4000, 8, func(part, lo, hi int) { big.Add(int32(hi - lo)) })
	}()
	go func() {
		defer wg.Done()
		p.RunRanges(40, 8, func(part, lo, hi int) { small.Add(int32(hi - lo)) })
	}()
	wg.Wait()
	if big.Load() != 4000 || small.Load() != 40 {
		t.Fatalf("big=%d small=%d, want 4000/40", big.Load(), small.Load())
	}
}

// Concurrent RunRanges calls from many goroutines must all complete (the
// caller always runs one partition itself, so a busy pool cannot deadlock).
func TestConcurrentRunRanges(t *testing.T) {
	p := New(2)
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.RunRanges(100, 4, func(part, lo, hi int) {
				total.Add(int64(hi - lo))
			})
		}()
	}
	wg.Wait()
	if total.Load() != 16*100 {
		t.Fatalf("total rows %d, want %d", total.Load(), 16*100)
	}
}
