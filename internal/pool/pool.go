// Package pool provides the shared worker pool behind the engine's
// morsel-driven parallelism. A Pool owns a fixed set of long-lived worker
// goroutines; executors submit range tasks (morsels — contiguous row ranges)
// and block until their own tasks drain. A DB's pool bounds the execution
// parallelism added on top of the querying goroutines themselves: each
// RunSplit caller also runs one partition inline (the no-deadlock
// guarantee), so the hard bound with q concurrent queries is workers + q.
//
// Scheduling is fair-share: each in-flight RunSplit is a run with its own
// task queue, and workers dispatch round-robin across the active runs — one
// task per run per cycle — instead of draining a global FIFO. A query that
// arrives while a large query is executing starts making progress on the
// next dispatch rather than waiting behind the entire earlier queue, which
// is what keeps per-request latency bounded when many server requests share
// one pool.
//
// Determinism contract: RunRanges always splits [0, n) into contiguous
// ranges in order and reports the partition id to the kernel, so callers can
// merge partition-local results in partition order and produce output (and
// lineage) identical to a serial run. Fair-share dispatch reorders only
// which partition executes when, never what any partition computes.
package pool

import (
	"runtime"
	"sync"
)

// Pool is a fixed-size worker pool. The zero value is not usable; call New.
// A nil *Pool is valid everywhere and means "run serially inline".
type Pool struct {
	workers int

	mu      sync.Mutex
	cond    *sync.Cond
	runs    []*runQ // active runs with undispatched tasks (round-robin ring)
	rr      int     // ring cursor: index of the run that dispatches next
	pending int     // undispatched tasks across all runs
	started bool
	closed  bool
}

// runQ is one RunSplit's queue of undispatched morsels. Dispatch is
// closure-free: a run carries one kernel and a slice of value ranges, so
// submitting an r-way split allocates one runQ instead of r-1 wrapper
// closures (per-morsel allocations were fixed overhead every parallel
// operator paid). Invariant: a runQ is in the ring iff next < len(ranges).
type runQ struct {
	kernel func(part, lo, hi int)
	ranges []Range
	next   int
	wg     *sync.WaitGroup
}

// New returns a pool that will run at most n tasks concurrently (in addition
// to the submitting goroutine, which also executes one partition of every
// RunRanges call). n <= 0 defaults to GOMAXPROCS.
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: n}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Workers returns the pool's parallelism bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// submit registers one run and lazily spawns the worker goroutines on first
// parallel use (a workers=1 DB never pays for idle goroutines). It reports
// false once the pool is closed; callers then run everything inline.
func (p *Pool) submit(q *runQ) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	if !p.started {
		p.started = true
		for i := 0; i < p.workers; i++ {
			go p.worker()
		}
	}
	p.runs = append(p.runs, q)
	p.pending += len(q.ranges)
	p.mu.Unlock()
	p.cond.Broadcast()
	return true
}

// worker dispatches tasks until the pool is closed and drained. Tasks
// submitted before Close still run — the submitting RunSplit is blocked on
// them — so workers only exit once nothing is pending.
func (p *Pool) worker() {
	p.mu.Lock()
	for {
		for !p.closed && p.pending == 0 {
			p.cond.Wait()
		}
		if p.pending == 0 { // closed and drained
			p.mu.Unlock()
			return
		}
		q, r := p.takeLocked()
		p.mu.Unlock()
		q.kernel(r.Part, r.Lo, r.Hi)
		q.wg.Done()
		p.mu.Lock()
	}
}

// takeLocked pops the next morsel in round-robin order across active runs:
// each dispatch takes one range from the cursor's run, then advances the
// cursor, so r concurrent runs each receive ~1/r of the worker cycles
// regardless of queue lengths. Requires p.mu held and p.pending > 0.
func (p *Pool) takeLocked() (*runQ, Range) {
	if p.rr >= len(p.runs) {
		p.rr = 0
	}
	q := p.runs[p.rr]
	r := q.ranges[q.next]
	q.next++
	p.pending--
	if q.next == len(q.ranges) {
		// The run is fully dispatched: drop it from the ring. The cursor now
		// points at the run that was next anyway.
		p.runs = append(p.runs[:p.rr], p.runs[p.rr+1:]...)
	} else {
		p.rr++
	}
	return q, r
}

// Close releases the worker goroutines. It is idempotent, nil-safe, and
// safe to call while RunSplit/RunRanges calls are in flight: already
// submitted tasks drain first (their submitters are blocked on them), and
// runs started after Close execute inline on the caller.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Range is one contiguous morsel of [0, n).
type Range struct {
	Part   int // partition index, dense in [0, Parts)
	Lo, Hi int // half-open row range
}

// Split partitions [0, n) into at most parts contiguous ranges of
// near-equal size (never more ranges than rows). parts <= 1 or n <= 1 yields
// a single range.
func Split(n, parts int) []Range {
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	out := make([]Range, 0, parts)
	lo := 0
	for i := 0; i < parts; i++ {
		hi := lo + (n-lo)/(parts-i)
		if i == parts-1 {
			hi = n
		}
		out = append(out, Range{Part: i, Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// RunRanges splits [0, n) into up to parts contiguous ranges and invokes
// kernel once per range, concurrently, returning the ranges after every
// kernel call finishes.
func (p *Pool) RunRanges(n, parts int, kernel func(part, lo, hi int)) []Range {
	ranges := Split(n, parts)
	p.RunSplit(ranges, kernel)
	return ranges
}

// RunSplit invokes kernel once per pre-computed range (see Split),
// concurrently, and blocks until every kernel call finishes. Callers that
// need per-partition state sized before execution Split first, allocate,
// then RunSplit. The submitting goroutine runs the last partition itself
// (and everything, when the pool is nil or the split collapses to one
// range), so RunSplit never deadlocks even if all pool workers are busy with
// other queries. Kernels must not call back into the pool.
func (p *Pool) RunSplit(ranges []Range, kernel func(part, lo, hi int)) {
	// Inline fast path: a nil pool, a single range, or a workers<=1 pool has
	// no parallelism to exploit — skip goroutine dispatch entirely so the
	// serial configuration pays zero submit/wakeup/WaitGroup overhead.
	if p == nil || len(ranges) <= 1 || p.workers <= 1 {
		for _, r := range ranges {
			kernel(r.Part, r.Lo, r.Hi)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ranges) - 1)
	q := &runQ{kernel: kernel, ranges: ranges[:len(ranges)-1], wg: &wg}
	if !p.submit(q) { // closed pool: inline fallback
		for _, r := range q.ranges {
			kernel(r.Part, r.Lo, r.Hi)
			wg.Done()
		}
	}
	last := ranges[len(ranges)-1]
	kernel(last.Part, last.Lo, last.Hi)
	wg.Wait()
}
