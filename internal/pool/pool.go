// Package pool provides the shared worker pool behind the engine's
// morsel-driven parallelism. A Pool owns a fixed set of long-lived worker
// goroutines; executors submit range tasks (morsels — contiguous row ranges)
// and block until their own tasks drain. Tasks from concurrent queries
// interleave freely on the same workers, so a DB's pool bounds the
// execution parallelism added on top of the querying goroutines themselves:
// each RunSplit caller also runs one partition inline (the no-deadlock
// guarantee), so the hard bound with q concurrent queries is workers + q.
//
// Determinism contract: RunRanges always splits [0, n) into contiguous
// ranges in order and reports the partition id to the kernel, so callers can
// merge partition-local results in partition order and produce output (and
// lineage) identical to a serial run.
package pool

import (
	"runtime"
	"sync"
)

// Pool is a fixed-size worker pool. The zero value is not usable; call New.
// A nil *Pool is valid everywhere and means "run serially inline".
type Pool struct {
	workers int

	mu     sync.Mutex
	tasks  chan func()
	closed bool
	active int // in-flight RunSplit calls holding the task channel
}

// New returns a pool that will run at most n tasks concurrently (in addition
// to the submitting goroutine, which also executes one partition of every
// RunRanges call). n <= 0 defaults to GOMAXPROCS.
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers returns the pool's parallelism bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// start lazily spawns the worker goroutines on first parallel use, so a
// workers=1 DB never pays for idle goroutines. It returns the task channel
// and takes an active reference on it (released by finish), or nil once the
// pool is closed (callers then run everything inline).
func (p *Pool) start() chan func() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	if p.tasks == nil {
		tasks := make(chan func(), 4*p.workers)
		p.tasks = tasks
		for i := 0; i < p.workers; i++ {
			go func() {
				for f := range tasks {
					f()
				}
			}()
		}
	}
	p.active++
	return p.tasks
}

// finish releases start's active reference; the last in-flight run after a
// Close performs the deferred channel close.
func (p *Pool) finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.active--
	if p.closed && p.active == 0 && p.tasks != nil {
		close(p.tasks)
		p.tasks = nil
	}
}

// Close releases the worker goroutines. It is idempotent, nil-safe, and
// safe to call while RunSplit/RunRanges calls are in flight: the task
// channel is only closed once no run holds it (the last one closes it on
// the way out), and runs started after Close execute inline on the caller.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	if p.active == 0 && p.tasks != nil {
		close(p.tasks)
		p.tasks = nil
	}
}

// Range is one contiguous morsel of [0, n).
type Range struct {
	Part   int // partition index, dense in [0, Parts)
	Lo, Hi int // half-open row range
}

// Split partitions [0, n) into at most parts contiguous ranges of
// near-equal size (never more ranges than rows). parts <= 1 or n <= 1 yields
// a single range.
func Split(n, parts int) []Range {
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	out := make([]Range, 0, parts)
	lo := 0
	for i := 0; i < parts; i++ {
		hi := lo + (n-lo)/(parts-i)
		if i == parts-1 {
			hi = n
		}
		out = append(out, Range{Part: i, Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// RunRanges splits [0, n) into up to parts contiguous ranges and invokes
// kernel once per range, concurrently, returning the ranges after every
// kernel call finishes.
func (p *Pool) RunRanges(n, parts int, kernel func(part, lo, hi int)) []Range {
	ranges := Split(n, parts)
	p.RunSplit(ranges, kernel)
	return ranges
}

// RunSplit invokes kernel once per pre-computed range (see Split),
// concurrently, and blocks until every kernel call finishes. Callers that
// need per-partition state sized before execution Split first, allocate,
// then RunSplit. The submitting goroutine runs the last partition itself
// (and everything, when the pool is nil or the split collapses to one
// range), so RunSplit never deadlocks even if all pool workers are busy with
// other queries. Kernels must not call back into the pool.
func (p *Pool) RunSplit(ranges []Range, kernel func(part, lo, hi int)) {
	if p == nil || len(ranges) == 1 {
		for _, r := range ranges {
			kernel(r.Part, r.Lo, r.Hi)
		}
		return
	}
	tasks := p.start()
	if tasks == nil { // closed pool: inline fallback
		for _, r := range ranges {
			kernel(r.Part, r.Lo, r.Hi)
		}
		return
	}
	defer p.finish()
	var wg sync.WaitGroup
	for _, r := range ranges[:len(ranges)-1] {
		r := r
		wg.Add(1)
		tasks <- func() {
			defer wg.Done()
			kernel(r.Part, r.Lo, r.Hi)
		}
	}
	last := ranges[len(ranges)-1]
	kernel(last.Part, last.Lo, last.Hi)
	wg.Wait()
}
