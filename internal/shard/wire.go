package shard

import (
	"bytes"
	"encoding/json"
	"math"
	"strconv"
	"strings"

	"smoke/internal/expr"
	"smoke/internal/serr"
	"smoke/internal/storage"
)

// wireResult mirrors the server's result body (internal/server resultJSON):
// the coordinator decodes shard replies into it and encodes its own merged
// replies from it, so the sharded API is byte-shape identical to a single
// node's.
type wireResult struct {
	Columns []string `json:"columns"`
	Types   []string `json:"types"`
	Rows    [][]any  `json:"rows"`
	N       int      `json:"row_count"`
	// GroupCounts carries each group's input cardinality on grouped results.
	// Shard replies must include it for the coordinator's two-phase
	// aggregation merge (AVG reweighting needs the partial group sizes).
	GroupCounts  []int64 `json:"group_counts,omitempty"`
	Cached       bool    `json:"cached,omitempty"`
	Explain      string  `json:"explain,omitempty"`
	Retained     string  `json:"retained,omitempty"`
	StrategyUsed string  `json:"strategy_used,omitempty"`
}

// decodeResult parses a shard's 2xx reply body. Numbers decode with
// UseNumber and are then normalized by column type (int64 / float64), so
// merge arithmetic never round-trips large int64 values through float64.
func decodeResult(body []byte) (*wireResult, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	var w wireResult
	if err := dec.Decode(&w); err != nil {
		return nil, serr.New(serr.Internal, "shard: undecodable shard reply: %v", err)
	}
	for _, row := range w.Rows {
		for c := range row {
			n, ok := row[c].(json.Number)
			if !ok || c >= len(w.Types) {
				continue
			}
			switch w.Types[c] {
			case "int":
				if v, err := n.Int64(); err == nil {
					row[c] = v
				}
			case "float":
				if v, err := n.Float64(); err == nil {
					row[c] = v
				}
			}
		}
	}
	return &w, nil
}

// unmarshalNumber decodes JSON with UseNumber, the same int64-exact number
// handling the single-node server applies to request bodies.
func unmarshalNumber(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	return dec.Decode(v)
}

// errorFromShard rebuilds the structured error a shard answered with, so the
// coordinator's reply carries the same kind, message, and SQL position the
// shard produced — proxying must not flatten a 404 or a positioned 400 into
// an opaque 500.
func errorFromShard(shardID int, status int, body []byte) error {
	var eb struct {
		Error struct {
			Kind    string `json:"kind"`
			Message string `json:"message"`
			Pos     *int   `json:"pos"`
		} `json:"error"`
	}
	if json.Unmarshal(body, &eb) != nil || eb.Error.Kind == "" {
		return serr.New(serr.Internal, "shard: shard %d answered %d with an unreadable error body", shardID, status)
	}
	kind := serr.ParseKind(eb.Error.Kind)
	if eb.Error.Pos != nil {
		return serr.At(kind, *eb.Error.Pos, "%s", eb.Error.Message)
	}
	return serr.New(kind, "%s", eb.Error.Message)
}

// relationOf rebuilds a storage relation from a wire result so the
// coordinator can compile and evaluate seed predicates against a merged
// output (backward seeds) exactly the way a single node evaluates them
// against its own output relation.
func relationOf(name string, columns, types []string, rows [][]any) (*storage.Relation, error) {
	schema := make(storage.Schema, len(columns))
	for c, col := range columns {
		schema[c].Name = col
		switch types[c] {
		case "int":
			schema[c].Type = storage.TInt
		case "float":
			schema[c].Type = storage.TFloat
		case "string":
			schema[c].Type = storage.TString
		default:
			return nil, serr.New(serr.Internal, "shard: column %q has unknown wire type %q", col, types[c])
		}
	}
	rel := storage.NewRelation(name, schema, len(rows))
	for i, row := range rows {
		if len(row) != len(schema) {
			return nil, serr.New(serr.Internal, "shard: merged row %d has %d values for %d columns", i, len(row), len(schema))
		}
		for c, f := range schema {
			switch f.Type {
			case storage.TInt:
				v, ok := row[c].(int64)
				if !ok {
					return nil, serr.New(serr.Internal, "shard: merged row %d column %s: want int64, got %T", i, f.Name, row[c])
				}
				rel.Cols[c].Ints[i] = v
			case storage.TFloat:
				v, ok := row[c].(float64)
				if !ok {
					return nil, serr.New(serr.Internal, "shard: merged row %d column %s: want float64, got %T", i, f.Name, row[c])
				}
				rel.Cols[c].Floats[i] = v
			case storage.TString:
				v, ok := row[c].(string)
				if !ok {
					return nil, serr.New(serr.Internal, "shard: merged row %d column %s: want string, got %T", i, f.Name, row[c])
				}
				rel.Cols[c].Strs[i] = v
			}
		}
	}
	return rel, nil
}

// paramsOf converts wire parameters to expression parameters with the same
// rules the single-node server applies (integral numbers bind as int64), so
// a seed predicate evaluated at the coordinator sees the identical bindings
// a shard would.
func paramsOf(in map[string]any) (expr.Params, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := expr.Params{}
	for k, v := range in {
		switch n := v.(type) {
		case string, bool:
			out[k] = n
		case json.Number:
			if i, err := n.Int64(); err == nil {
				if f, ferr := n.Float64(); ferr == nil && float64(i) != f {
					out[k] = f
				} else {
					out[k] = i
				}
				continue
			}
			f, err := n.Float64()
			if err != nil {
				return nil, serr.New(serr.Invalid, "shard: parameter %q: %v", k, err)
			}
			out[k] = f
		case float64:
			out[k] = n
		case int64:
			out[k] = n
		case int:
			out[k] = int64(n)
		default:
			return nil, serr.New(serr.Invalid, "shard: parameter %q has unsupported type %T", k, v)
		}
	}
	return out, nil
}

// encodeKey builds the group-identity string of a key tuple. Float keys
// encode by exact bit pattern and strings are length-prefixed, so distinct
// tuples can never collide through formatting.
func encodeKey(keys []any) string {
	var b strings.Builder
	for _, k := range keys {
		switch v := k.(type) {
		case int64:
			b.WriteByte('i')
			b.WriteString(strconv.FormatInt(v, 10))
		case float64:
			b.WriteByte('f')
			b.WriteString(strconv.FormatUint(math.Float64bits(v), 16))
		case string:
			b.WriteByte('s')
			b.WriteString(strconv.Itoa(len(v)))
			b.WriteByte(':')
			b.WriteString(v)
		default:
			b.WriteByte('?')
		}
		b.WriteByte('|')
	}
	return b.String()
}
