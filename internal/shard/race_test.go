package shard_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"smoke/internal/serverclient"
)

// TestConcurrentShardStress drives the coordinator from 8 goroutines mixing
// ingest (table replacement), scattered queries, retained runs, backward and
// forward traces, and session drops — the shapes that share the coordinator's
// table book and session registry. Run under -race this pins the coordinator's
// synchronization: the only acceptable failures are structured server errors
// (a trace can race a session drop to a 404/410); transport failures, panics,
// and hangs are bugs.
func TestConcurrentShardStress(t *testing.T) {
	ctx := context.Background()
	_, c := startCoord(t, 4)
	ingest(t, c, "shard")

	const (
		workers = 8
		iters   = 12
	)
	structured := func(tag string, err error) error {
		if err == nil {
			return nil
		}
		var se *serverclient.Error
		if !errors.As(err, &se) {
			return fmt.Errorf("%s: unstructured error %T: %v", tag, err, err)
		}
		return nil
	}

	// Each iteration sends up to 4 verdicts (run + two traces + drop).
	errCh := make(chan error, workers*iters*4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 4 {
				case 0: // stateless scattered query
					_, err := c.Query(ctx, serverclient.QueryRequest{
						SQL: "SELECT k, COUNT(*) AS cnt, SUM(v) AS sv FROM fact GROUP BY k"})
					errCh <- structured(fmt.Sprintf("w%d i%d query", w, i), err)
				case 1: // session lifecycle: run, trace both directions, drop
					sess, err := c.NewSession(ctx)
					if err != nil {
						errCh <- structured(fmt.Sprintf("w%d i%d session", w, i), err)
						continue
					}
					name := fmt.Sprintf("r%d_%d", w, i)
					if _, err := sess.Run(ctx, name, serverclient.QueryRequest{
						SQL: "SELECT b, COUNT(*) AS cnt FROM fact GROUP BY b"}); err != nil {
						errCh <- structured(fmt.Sprintf("w%d i%d run", w, i), err)
						_ = sess.Close(ctx)
						continue
					}
					_, terr := sess.Trace(ctx, name, serverclient.TraceRequest{
						Direction: "backward", Table: "fact", Rids: []int64{0}})
					errCh <- structured(fmt.Sprintf("w%d i%d backward", w, i), terr)
					_, ferr := sess.Trace(ctx, name, serverclient.TraceRequest{
						Direction: "forward", Table: "fact", SeedWhere: "b = 2"})
					errCh <- structured(fmt.Sprintf("w%d i%d forward", w, i), ferr)
					errCh <- structured(fmt.Sprintf("w%d i%d drop", w, i), sess.Close(ctx))
				case 2: // table replacement racing readers
					dimSchema, factSchema, dimRows, factRows := testData()
					_ = dimSchema
					_ = dimRows
					err := c.CreateTableDist(ctx, "fact", factSchema, factRows, "", "shard")
					errCh <- structured(fmt.Sprintf("w%d i%d ingest", w, i), err)
				default: // joins + healthz probes
					_, err := c.Query(ctx, serverclient.QueryRequest{
						SQL: "SELECT label, SUM(v) AS sv FROM dim JOIN fact ON fact.k = dim.g GROUP BY label"})
					errCh <- structured(fmt.Sprintf("w%d i%d join", w, i), err)
					_, herr := c.Health(ctx)
					errCh <- structured(fmt.Sprintf("w%d i%d health", w, i), herr)
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Error(err)
		}
	}
}
