package shard

import (
	"smoke/internal/expr"
	"smoke/internal/ops"
	"smoke/internal/serr"
	"smoke/internal/sql"
)

// route is the coordinator's execution decision for one SQL statement.
type route int

const (
	// routeProxy runs the statement on exactly one shard (replicated tables
	// only — any shard holds the full inputs, so its answer IS the answer).
	routeProxy route = iota
	// routeScatter runs the statement on every shard over its rid-range slice
	// and gathers with the two-phase grouped merge.
	routeScatter
)

// analysis is what the coordinator knows about a statement after deciding
// how to run it. For scattered statements it carries the merge recipe: the
// output schema is group keys (GROUP BY order) first, then aggregates
// (select order) — plan.OutSchema's contract — so nKeys+aggs fully describe
// how to fold the partial rows.
type analysis struct {
	route   route
	sharded string      // dist=shard table the statement reads ("" for proxy)
	tbl     *table      // its placement snapshot at analysis time
	nKeys   int         // outer statement's group-key count
	keys    []string    // outer statement's group-key columns, in GROUP BY order
	aggs    []ops.AggFn // outer statement's aggregates in select order
	// scanOK marks statements whose bound backward traces the engine may
	// answer with the scan-and-filter rewrite (plan shape: group-by over an
	// optionally filtered scan of the sharded table); scanPreds are the
	// statement-side predicates that rewrite folds into the scan.
	scanOK    bool
	scanPreds []expr.Expr
}

// analyze decides how to execute stmt over the current placement and fences
// off shapes whose scatter-gather would not be element-identical to a single
// node. The fences are deliberate 422s, not silent wrong answers:
//
//   - at most one dist=shard table per statement, and it must be the
//     outermost FROM source (join sides and subqueries see partial rows
//     otherwise);
//   - COUNT(DISTINCT) does not decompose over disjoint slices without a
//     distinct-set exchange;
//   - HAVING / ORDER BY / LIMIT filter or cut on values that are only
//     correct after the merge;
//   - LINEAGE FORWARD output is the traced query's output — global groups a
//     shard cannot see whole;
//   - LINEAGE BACKWARD is scatterable only when it traces into the sharded
//     table itself and its seed predicate reads group-key columns only
//     (key values are whole on every shard; partial aggregates are not).
//
// Statements touching no sharded table take routeProxy unchanged.
func (c *Coordinator) analyze(stmt *sql.Stmt, tables map[string]*table) (*analysis, error) {
	shardedRefs := map[string]bool{}
	collectSharded(stmt, tables, shardedRefs)
	if len(shardedRefs) == 0 {
		return &analysis{route: routeProxy}, nil
	}
	if len(shardedRefs) > 1 {
		return nil, serr.New(serr.Unsupported, "shard: statement reads %d sharded tables; at most one is supported", len(shardedRefs))
	}
	var sharded string
	for name := range shardedRefs {
		sharded = name
	}
	if err := checkScatterable(stmt, sharded, tables, true); err != nil {
		return nil, err
	}
	a := &analysis{route: routeScatter, sharded: sharded, tbl: tables[sharded], nKeys: len(stmt.GroupBy)}
	for _, k := range stmt.GroupBy {
		a.keys = append(a.keys, k.Col)
	}
	for _, it := range stmt.Items {
		if it.Agg != nil {
			a.aggs = append(a.aggs, it.Agg.Fn)
		}
	}
	a.scanPreds, a.scanOK = scanEquivShape(stmt, sharded)
	return a, nil
}

// scanEquivShape mirrors the optimizer's trace-rewrite precondition
// (plan.traceScanEquiv) on the AST: the statement's plan is a group-by over
// an optionally filtered scan of the sharded table — no joins, and any
// lineage source collapses to a scan itself. It returns the statement-side
// predicates that fold into the rewritten scan (the inner traced query's
// WHERE, the lineage seed predicate, the outer WHERE), deepest first. The
// coordinator uses it to make the eager trace's scan-vs-index decision with
// GLOBAL seed counts, the way a single node decides with its own.
func scanEquivShape(stmt *sql.Stmt, sharded string) ([]expr.Expr, bool) {
	if stmt == nil || len(stmt.Joins) > 0 {
		return nil, false
	}
	var preds []expr.Expr
	f := stmt.From
	switch {
	case f.Table == sharded:
	case f.Trace != nil && f.Trace.Backward:
		inner, ok := scanEquivShape(f.Trace.Sub, sharded)
		if !ok {
			return nil, false
		}
		preds = append(preds, inner...)
		if f.Trace.Seed != nil {
			preds = append(preds, f.Trace.Seed)
		}
	default:
		return nil, false
	}
	if stmt.Where != nil {
		preds = append(preds, stmt.Where)
	}
	return preds, true
}

// collectSharded walks every FROM source of stmt (recursively through
// subqueries and lineage subs) and records referenced dist=shard tables.
func collectSharded(stmt *sql.Stmt, tables map[string]*table, out map[string]bool) {
	sources := []sql.FromItem{stmt.From}
	for _, j := range stmt.Joins {
		sources = append(sources, j.Source)
	}
	for _, f := range sources {
		if f.Table != "" {
			if t, ok := tables[f.Table]; ok && t.dist == "shard" {
				out[f.Table] = true
			}
		}
		if f.Sub != nil {
			collectSharded(f.Sub, tables, out)
		}
		if f.Trace != nil {
			if t, ok := tables[f.Trace.Table]; ok && t.dist == "shard" {
				out[f.Trace.Table] = true
			}
			if f.Trace.Sub != nil {
				collectSharded(f.Trace.Sub, tables, out)
			}
		}
	}
}

// checkScatterable validates one statement level of a scattered plan. outer
// marks the top-level statement (lineage subs recurse with outer=false; the
// grouped merge applies only at the top, but the fences apply throughout).
func checkScatterable(stmt *sql.Stmt, sharded string, tables map[string]*table, outer bool) error {
	if stmt.Having != nil {
		return serr.New(serr.Unsupported, "shard: HAVING over a sharded table filters on partial aggregates; not supported")
	}
	if len(stmt.OrderBy) > 0 || stmt.Limit >= 0 {
		return serr.New(serr.Unsupported, "shard: ORDER BY / LIMIT over a sharded table cut before the merge; not supported")
	}
	for _, it := range stmt.Items {
		if it.Agg != nil && (it.Agg.Fn == ops.CountDistinct || it.Agg.Distinct) {
			return serr.New(serr.Unsupported, "shard: COUNT(DISTINCT) does not decompose across shards; not supported")
		}
	}

	// Join statements: the sharded table must be the LAST join source. Both
	// hash-join kernels build on the left prefix and PROBE the right table,
	// so the last source drives the output order — group discovery and every
	// per-group lineage list follow its scan order. With the sharded slice
	// last, each shard's orders are its slice's rid orders, which concatenate
	// across the rid-contiguous slices into exactly the single node's global
	// orders (and the build prefix — replicated full copies — is identical
	// everywhere). With the sharded table anywhere EARLIER it sits on the
	// build side: output order then follows a replicated probe table,
	// interleaving the shards' build rows in a way values-only partials
	// cannot reconstruct, so that shape is fenced.
	if len(stmt.Joins) > 0 {
		last := stmt.Joins[len(stmt.Joins)-1].Source
		if last.Table != sharded {
			return serr.New(serr.Unsupported,
				"shard: the sharded table %q must be the LAST join source (the probe side); write FROM <replicated> JOIN ... JOIN %s", sharded, sharded)
		}
		prefix := append([]sql.FromItem{stmt.From}, joinSources(stmt.Joins[:len(stmt.Joins)-1])...)
		for _, s := range prefix {
			if s.Table == "" {
				return serr.New(serr.Unsupported, "shard: JOIN sources under sharding must be plain tables")
			}
			t, ok := tables[s.Table]
			if !ok {
				continue // unknown table: let the shard answer its own 404
			}
			if t.dist != "replicate" {
				return serr.New(serr.Unsupported, "shard: JOIN prefix table %q must be replicated; only the probe-side table shards", s.Table)
			}
		}
		return nil
	}

	// Join-free statements: the sharded table must be the FROM source itself —
	// either the base table or a LINEAGE BACKWARD trace into it.
	f := stmt.From
	switch {
	case f.Table == sharded:
		// Scan of the sharded slice — the canonical scatter shape.
	case f.Trace != nil:
		tr := f.Trace
		if !tr.Backward {
			return serr.New(serr.Unsupported, "shard: LINEAGE FORWARD over a sharded table needs the traced output whole; not supported")
		}
		if tr.Table != sharded {
			return serr.New(serr.Unsupported, "shard: LINEAGE BACKWARD OF %q under sharding must trace into the sharded table %q", tr.Table, sharded)
		}
		if tr.Sub == nil {
			return serr.New(serr.Internal, "shard: lineage source without a traced query")
		}
		if err := checkScatterable(tr.Sub, sharded, tables, false); err != nil {
			return err
		}
		if _, ok := scanEquivShape(tr.Sub, sharded); !ok {
			// A non-collapsible lineage source (the traced query joins) expands
			// per seed over each shard's LOCAL group order — a row order no
			// merge can map back to the single node's global expansion.
			return serr.New(serr.Unsupported,
				"shard: LINEAGE BACKWARD under sharding requires a single-table traced query (the scan-collapsible shape); traced joins expand in per-shard order")
		}
		if tr.Seed != nil {
			if err := seedReadsKeysOnly(tr.Seed, tr.Sub); err != nil {
				return err
			}
		}
	case f.Sub != nil:
		return serr.New(serr.Unsupported, "shard: FROM-subquery reading a sharded table aggregates partial rows; not supported")
	default:
		return serr.New(serr.Unsupported, "shard: the sharded table %q must be the outermost FROM source", sharded)
	}
	return nil
}

// joinSources projects the source items of a join list.
func joinSources(joins []sql.Join) []sql.FromItem {
	out := make([]sql.FromItem, len(joins))
	for i, j := range joins {
		out[i] = j.Source
	}
	return out
}

// seedReadsKeysOnly fences a backward-trace seed predicate to the traced
// query's group-key columns. Key values are identical for a group on every
// shard that holds part of it, so a shard-side seed evaluation selects
// exactly the global groups; aggregate columns are partial shard-side and
// would select the wrong groups.
func seedReadsKeysOnly(seed expr.Expr, traced *sql.Stmt) error {
	keys := map[string]bool{}
	for _, k := range traced.GroupBy {
		keys[k.Col] = true
	}
	// Aggregate aliases shadow nothing — they are the non-key columns.
	aggAliases := map[string]bool{}
	for _, it := range traced.Items {
		if it.Agg != nil && it.Agg.Alias != "" {
			aggAliases[it.Agg.Alias] = true
		}
	}
	for _, col := range expr.Columns(seed) {
		if aggAliases[col] || !keys[col] {
			return serr.New(serr.Unsupported,
				"shard: backward-trace seed column %q is not a group key of the traced query; shard-local aggregate values are partial", col)
		}
	}
	return nil
}
