package shard

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"

	"smoke/internal/core"
	"smoke/internal/serr"
	"smoke/internal/server"
)

// node is one in-process shard: a full engine (its own DB, worker pool,
// session registry, and cache) behind the standard server handler stack. The
// coordinator speaks to it through the handler seam, never by reaching into
// the server's internals, so a node is behaviorally identical to a remote
// smoked process — and the seam is the fault-injection point: tests swap in
// a wedged or failing handler, and nil marks the shard down.
type node struct {
	id  int
	db  *core.DB
	srv *server.Server

	mu      sync.RWMutex
	handler http.Handler // nil: the shard is down

	// Coordinator-side per-shard counters (surfaced in /healthz).
	calls    atomic.Uint64
	failures atomic.Uint64
}

func (n *node) currentHandler() http.Handler {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.handler
}

// setHandler swaps the shard's request handler. Tests use it to inject
// faults; nil simulates a killed shard.
func (n *node) setHandler(h http.Handler) {
	n.mu.Lock()
	n.handler = h
	n.mu.Unlock()
}

// callResult is one shard HTTP exchange.
type callResult struct {
	status int
	body   []byte
}

func (r *callResult) ok() bool { return r.status >= 200 && r.status < 300 }

// invoke runs one request against the shard's handler stack with the
// caller's deadline. The handler runs on its own goroutine so a wedged shard
// cannot wedge the coordinator: when ctx expires first the call returns a
// structured Unavailable (HTTP 503) naming the shard, and the stuck
// goroutine is abandoned with its private recorder — it can never write
// into a reply the coordinator already sent.
func (n *node) invoke(ctx context.Context, method, path string, body []byte, contentType string) (*callResult, error) {
	n.calls.Add(1)
	h := n.currentHandler()
	if h == nil {
		n.failures.Add(1)
		return nil, serr.New(serr.Unavailable, "shard: shard %d is down; partial results are not served", n.id)
	}
	req := httptest.NewRequest(method, path, bytes.NewReader(body)).WithContext(ctx)
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	done := make(chan *callResult, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				// The server recovers its own panics; this guards injected
				// test handlers so a fault simulation can never kill the
				// coordinator process.
				done <- &callResult{status: http.StatusInternalServerError}
			}
		}()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		done <- &callResult{status: rec.Code, body: rec.Body.Bytes()}
	}()
	select {
	case res := <-done:
		if !res.ok() {
			n.failures.Add(1)
		}
		return res, nil
	case <-ctx.Done():
		n.failures.Add(1)
		return nil, serr.New(serr.Unavailable,
			"shard: shard %d did not answer %s %s before the coordinator deadline; partial results are not served",
			n.id, method, path)
	}
}

// callJSON invokes a shard and decodes a 2xx reply as a result body. Non-2xx
// replies come back as the shard's own structured error.
func (c *Coordinator) callJSON(ctx context.Context, n *node, method, path string, body []byte) (*wireResult, error) {
	res, err := n.invoke(ctx, method, path, body, "application/json")
	if err != nil {
		c.shardTimeouts.Add(1)
		return nil, err
	}
	if !res.ok() {
		c.shardErrors.Add(1)
		return nil, errorFromShard(n.id, res.status, res.body)
	}
	return decodeResult(res.body)
}

// scatter fans one request wave out to the given shards concurrently and
// gathers the per-shard replies in shard order. The whole wave shares one
// deadline; the first shard failure (down, timed out, or answering an error
// status) cancels the remaining calls and surfaces as the wave's error, so a
// half-answered wave never yields a silently partial gather.
func (c *Coordinator) scatter(ctx context.Context, shards []int, build func(shard int) (method, path string, body []byte)) ([]*wireResult, error) {
	c.scatters.Add(1)
	wctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()

	results := make([]*wireResult, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			method, path, body := build(s)
			res, err := c.callJSON(wctx, c.nodes[s], method, path, body)
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()
	// A shard's own error (a deterministic 4xx, say) outranks Unavailable:
	// when one shard fails fast the cancellation cascades to its siblings as
	// deadline errors, and reporting those would bury the actual cause.
	var unavailable error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if serr.KindOf(err) != serr.Unavailable {
			return nil, err
		}
		if unavailable == nil {
			unavailable = err
		}
	}
	if unavailable != nil {
		return nil, unavailable
	}
	return results, nil
}
