package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"smoke/internal/expr"
	"smoke/internal/serr"
)

// session is the coordinator's view of one client session. The shards hold
// the real state — every shard has a same-named peer session created eagerly
// at POST /v1/sessions — and the coordinator remembers only placement: which
// shard is the session's consistent-hash home (where replicated-only work
// runs, so its retained captures and later traces meet on one node) and, for
// each retained name, whether the result lives whole on the home shard or
// scattered across all of them.
type session struct {
	id       string
	shardIDs []string // per-shard peer session ids, indexed by shard
	home     int

	mu      sync.RWMutex
	results map[string]*placement
}

// placement records how a retained result was produced, which is what a
// later trace against it needs to route itself.
type placement struct {
	scattered bool
	// Scattered placements keep the merge artifacts: the sharded table the
	// result reads, the merged grouped output (global seed validation and
	// seed-predicate evaluation run against it), its group-key count, and the
	// gather map translating global slots ↔ per-shard partial rows.
	table  string
	nKeys  int
	merged *wireResult
	gm     *gatherMap
	// tbl snapshots the sharded table AS OF the run — the capture-time
	// relation and rid-range starts. Traces translate seeds against this
	// snapshot, not the live book, exactly as a single node's bound trace
	// reads the relation instance the result was captured against even after
	// the table is re-ingested.
	tbl *table
	// Scan-decision mirror: the outer group-key columns, the statement-side
	// predicates a scan rewrite folds in (analysis.scanPreds), whether the
	// plan shape admits that rewrite at all, and the resolved capture
	// strategy ("eager", "lazy", "hybrid", or "auto"). Together these let
	// the coordinator take the engine's scan-vs-index trace decision with
	// global seed counts.
	keys      []string
	scanPreds []expr.Expr
	scanOK    bool
	strategy  string
}

func (s *session) setPlacement(name string, p *placement) {
	s.mu.Lock()
	s.results[name] = p
	s.mu.Unlock()
}

func (s *session) placementOf(name string) *placement {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.results[name]
}

// handleNewSession creates a peer session on EVERY shard, picks the home by
// consistent hash over the coordinator-level id, and answers that id. Eager
// creation means a later scattered retain never races shard-by-shard session
// setup.
func (c *Coordinator) handleNewSession(w http.ResponseWriter, r *http.Request) {
	if err := c.enter(); err != nil {
		writeError(w, err)
		return
	}
	defer c.exit()
	id := fmt.Sprintf("cs-%d", c.sessSeq.Add(1))

	ctx, cancel := context.WithTimeout(r.Context(), c.timeout)
	defer cancel()
	type created struct {
		id  string
		ttl int
	}
	replies := make([]*created, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := n.invoke(ctx, http.MethodPost, "/v1/sessions", nil, "application/json")
			if err != nil {
				errs[i] = err
				return
			}
			if !res.ok() {
				errs[i] = errorFromShard(n.id, res.status, res.body)
				return
			}
			var body struct {
				ID  string `json:"id"`
				TTL int    `json:"ttl_seconds"`
			}
			if err := json.Unmarshal(res.body, &body); err != nil {
				errs[i] = serr.New(serr.Internal, "shard: shard %d session reply: %v", n.id, err)
				return
			}
			replies[i] = &created{id: body.ID, ttl: body.TTL}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			writeError(w, err)
			return
		}
	}
	// Each shard mints its own id; remember the per-shard mapping so every
	// later session-scoped call can rewrite its path for the shard it hits.
	sess := &session{
		id:      id,
		home:    c.ring.owner(id),
		results: map[string]*placement{},
	}
	sess.shardIDs = make([]string, len(c.nodes))
	for i, rep := range replies {
		sess.shardIDs[i] = rep.id
	}
	c.mu.Lock()
	c.sessions[id] = sess
	c.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":          id,
		"ttl_seconds": replies[0].ttl,
	})
}

// lookupSession resolves a coordinator session id.
func (c *Coordinator) lookupSession(id string) (*session, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.sessions[id]
	if !ok {
		return nil, c.missingSessionErr(id)
	}
	return s, nil
}

// missingSessionErr mirrors the single-node registry's 410-vs-404 split
// without a tombstone set: coordinator ids are minted from a monotonic
// counter, so a well-formed id at or below the current sequence that is
// absent from the map must have been created here and since dropped — Gone,
// telling the client to open a new session. Anything else never existed.
func (c *Coordinator) missingSessionErr(id string) error {
	var seq uint64
	if _, err := fmt.Sscanf(id, "cs-%d", &seq); err == nil && seq >= 1 && seq <= c.sessSeq.Load() {
		return serr.New(serr.Gone, "shard: session %s was dropped; open a new session", id)
	}
	return serr.New(serr.NotFound, "shard: unknown session %q", id)
}

// handleDropSession drops the coordinator session and scatters the delete to
// every shard. A shard that already expired its peer answers 404 — that is
// success for a delete, not a failure to surface.
func (c *Coordinator) handleDropSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	sess, ok := c.sessions[id]
	if ok {
		delete(c.sessions, id)
	}
	c.mu.Unlock()
	if !ok {
		writeError(w, c.missingSessionErr(id))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.timeout)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, len(c.nodes))
	for i, n := range c.nodes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := n.invoke(ctx, http.MethodDelete, "/v1/sessions/"+sess.shardIDs[i], nil, "")
			if err != nil {
				errs[i] = err
				return
			}
			if !res.ok() && res.status != http.StatusNotFound {
				errs[i] = errorFromShard(n.id, res.status, res.body)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			writeError(w, err)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}
