package shard

import (
	"fmt"
	"testing"
)

// TestRingDeterministic: the same key maps to the same shard across
// independently built rings — placement must be a pure function of
// (key, shard count).
func TestRingDeterministic(t *testing.T) {
	a, b := newRing(4), newRing(4)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("session-%d", i)
		if a.owner(key) != b.owner(key) {
			t.Fatalf("ring placement of %q differs across identical rings", key)
		}
	}
}

// TestRingBalance: with 64 vnodes per shard, no shard should own a wildly
// disproportionate share of keys.
func TestRingBalance(t *testing.T) {
	r := newRing(4)
	counts := make([]int, 4)
	const n = 10000
	for i := 0; i < n; i++ {
		counts[r.owner(fmt.Sprintf("cs-%d", i))]++
	}
	for s, got := range counts {
		if got < n/10 || got > n/2 {
			t.Fatalf("shard %d owns %d of %d keys — ring is badly imbalanced: %v", s, got, n, counts)
		}
	}
}

// TestRingBounds: every shard id returned is in range, including keys
// hashing past the last ring point (the wraparound).
func TestRingBounds(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7} {
		r := newRing(shards)
		for i := 0; i < 500; i++ {
			s := r.owner(fmt.Sprintf("k%d", i))
			if s < 0 || s >= shards {
				t.Fatalf("ring(%d) produced out-of-range shard %d", shards, s)
			}
		}
	}
}

// TestSplitStarts: contiguous cover with remainder spread over the first
// shards.
func TestSplitStarts(t *testing.T) {
	cases := []struct {
		n, shards int
		want      []int
	}{
		{10, 4, []int{0, 3, 6, 8, 10}},
		{8, 4, []int{0, 2, 4, 6, 8}},
		{3, 4, []int{0, 1, 2, 3, 3}},
		{0, 2, []int{0, 0, 0}},
		{7, 1, []int{0, 7}},
	}
	for _, c := range cases {
		got := splitStarts(c.n, c.shards)
		if len(got) != len(c.want) {
			t.Fatalf("splitStarts(%d,%d) = %v, want %v", c.n, c.shards, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("splitStarts(%d,%d) = %v, want %v", c.n, c.shards, got, c.want)
			}
		}
	}
}

// TestOwnerOf: rid → shard range lookup, including the last rid.
func TestOwnerOf(t *testing.T) {
	tb := &table{starts: splitStarts(10, 4)} // [0 3 6 8 10]
	wants := []int{0, 0, 0, 1, 1, 1, 2, 2, 3, 3}
	for rid, want := range wants {
		if got := tb.ownerOf(rid); got != want {
			t.Fatalf("ownerOf(%d) = %d, want %d", rid, got, want)
		}
	}
}
